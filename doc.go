// Package tcpstall reproduces "Demystifying and Mitigating TCP
// Stalls at the Server Side" (Zhou et al., CoNEXT 2015) as a
// self-contained Go library:
//
//   - internal/core — TAPO, the trace-driven stall classifier
//     (the paper's measurement contribution);
//   - internal/mitigation — S-RTO (Algorithm 1) with TLP and native
//     Linux recovery as comparators;
//   - internal/tcpsim, internal/netem, internal/sim — the simulated
//     server TCP stack, network paths and discrete-event engine that
//     stand in for the production testbed;
//   - internal/packet, internal/pcap, internal/trace — wire-format
//     codecs so everything runs on real .pcap bytes;
//   - internal/workload, internal/experiments — the three service
//     models and the drivers that regenerate every table and figure
//     of the paper's evaluation.
//
// The root package carries the repository-level benchmarks
// (bench_test.go): one benchmark per table and figure, plus the
// ablations discussed in DESIGN.md.
package tcpstall
