package tcpstall_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablations over the design parameters DESIGN.md calls out. Each
// iteration regenerates the experiment end to end (workload →
// simulation → trace → TAPO analysis → aggregation) at a reduced
// flow count, so the benchmarks double as a repeatable regression
// harness for the whole pipeline:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/experiments"
	"tcpstall/internal/mitigation"
	"tcpstall/internal/pipeline"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

const benchFlows = 60

var (
	benchOnce sync.Once
	benchDS   []*experiments.Dataset
)

// datasets builds the shared evaluation dataset once; the per-table
// benchmarks then measure the aggregation work.
func datasets(b *testing.B) []*experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = experiments.BuildAll(experiments.Options{Seed: 20141222, FlowsOverride: benchFlows})
	})
	return benchDS
}

// BenchmarkDatasetGeneration measures the full pipeline for one
// service: workload draw, packet-level simulation and TAPO analysis.
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.BuildDataset(workload.WebSearch(), int64(i+1), 20)
	}
}

func BenchmarkTable1(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1(ds)
	}
}

func BenchmarkFigure1(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure1(ds)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(int64(i + 1))
	}
}

func BenchmarkFigure3(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(ds)
	}
}

func BenchmarkTable3(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(ds)
	}
}

func BenchmarkTable4(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(ds)
	}
}

func BenchmarkTable5(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5(ds)
	}
}

func BenchmarkTable6(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table6(ds)
	}
}

func BenchmarkTable7(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table7(ds)
	}
}

func BenchmarkFigure6(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(ds)
	}
}

func BenchmarkFigure7(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(ds)
	}
}

func BenchmarkFigure10(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure10(ds)
	}
}

func BenchmarkFigure11(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure11(ds)
	}
}

func BenchmarkFigure12(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure12(ds)
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table8(int64(i+1), 40, 40)
	}
}

func BenchmarkTable9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table9(int64(i+1), 40, 20)
	}
}

// --- parallel pipeline ---

var (
	pipeFlowsOnce sync.Once
	pipeFlows     []*trace.Flow
)

// pipelineFlows generates the web-search trace set the pipeline
// benchmarks analyze, once per process.
func pipelineFlows(b *testing.B) []*trace.Flow {
	b.Helper()
	pipeFlowsOnce.Do(func() {
		res := workload.Generate(workload.WebSearch(), 20141222,
			workload.GenOptions{Flows: 240})
		for _, r := range res {
			if r.Flow != nil {
				pipeFlows = append(pipeFlows, r.Flow)
			}
		}
	})
	return pipeFlows
}

// BenchmarkPipeline measures flow-sharded TAPO analysis throughput at
// 1/2/4/8 workers over the same web-search workload; the 1-worker
// variant is the sequential baseline the speedup is read against.
// Speedup tracks physical cores: on a multicore machine the 4-worker
// variant analyzes >= 2x the pkts/s of the baseline, while on a
// single-CPU box (GOMAXPROCS=1) all variants converge — the batched
// handoff keeps the pool's overhead to a few percent rather than
// letting per-flow channel sends dominate these microsecond-sized
// analyses.
func BenchmarkPipeline(b *testing.B) {
	flows := pipelineFlows(b)
	var pkts int64
	for _, f := range flows {
		pkts += int64(len(f.Records))
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pipeline.Run(pipeline.FromFlows(flows), pipeline.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Analyses) != len(flows) {
					b.Fatalf("analyzed %d of %d flows", len(res.Analyses), len(flows))
				}
			}
			b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkPipelineGenerate measures the full generate-and-analyze
// path (simulation sharded too) at 1/4 workers.
func BenchmarkPipelineGenerate(b *testing.B) {
	for _, w := range []int{1, 4} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := workload.Generate(workload.WebSearch(), int64(i+1),
					workload.GenOptions{Flows: 40, Workers: w})
				if _, err := pipeline.Run(pipeline.FromResults(res), pipeline.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablations (DESIGN.md §5) ---

// ablationRun evaluates one S-RTO configuration over the short-flow
// workload and reports mean latency via b.ReportMetric.
func ablationRun(b *testing.B, cfg mitigation.SRTOConfig) {
	b.Helper()
	var totalMS float64
	var n int
	for i := 0; i < b.N; i++ {
		res := workload.Generate(workload.CloudStorageShort(), int64(i+1), workload.GenOptions{
			Flows:      30,
			SkipTraces: true,
			NewRecovery: func() tcpsim.Recovery {
				return mitigation.NewSRTO(cfg)
			},
		})
		for _, r := range res {
			if r.Metrics.Done {
				totalMS += float64(r.Metrics.FlowLatency().Milliseconds())
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(totalMS/float64(n), "ms/flow")
	}
}

func BenchmarkAblationSRTOT1_5(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 5, T2: 5})
}

func BenchmarkAblationSRTOT1_10(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 10, T2: 5})
}

func BenchmarkAblationSRTOT1_20(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 20, T2: 5})
}

func BenchmarkAblationSRTOT2_1(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 10, T2: 1})
}

func BenchmarkAblationSRTOT2_10(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 10, T2: 10})
}

func BenchmarkAblationSRTOMult15(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 10, T2: 5, RTTMultiple: 1.5})
}

func BenchmarkAblationSRTOMult3(b *testing.B) {
	ablationRun(b, mitigation.SRTOConfig{T1: 10, T2: 5, RTTMultiple: 3})
}

// BenchmarkAblationTau compares the stall-detection threshold
// multiplier τ (the paper uses 2).
func BenchmarkAblationTau(b *testing.B) {
	for _, tau := range []float64{1.5, 2, 3} {
		tau := tau
		b.Run(tauName(tau), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Tau = tau
			var stalls int
			for i := 0; i < b.N; i++ {
				res := workload.Generate(workload.WebSearch(), int64(i+1), workload.GenOptions{Flows: 20})
				for _, r := range res {
					if r.Flow != nil {
						stalls += len(core.Analyze(r.Flow, cfg).Stalls)
					}
				}
			}
			b.ReportMetric(float64(stalls)/float64(b.N), "stalls/run")
		})
	}
}

func tauName(tau float64) string {
	switch tau {
	case 1.5:
		return "tau=1.5"
	case 2:
		return "tau=2"
	default:
		return "tau=3"
	}
}

// BenchmarkAblationDupThresh compares the adaptive reordering
// threshold against the fixed value of 3 on a reordering path.
func BenchmarkAblationDupThresh(b *testing.B) {
	for _, adapt := range []bool{false, true} {
		adapt := adapt
		name := "fixed"
		if adapt {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var retrans int
			for i := 0; i < b.N; i++ {
				svc := workload.WebSearch()
				svc.ReorderProb = 0.05
				res := workload.Generate(svc, int64(i+1), workload.GenOptions{
					Flows:      20,
					SkipTraces: true,
					Mutate: func(c *tcpsim.ConnConfig) {
						c.Sender.AdaptDupThresh = adapt
					},
				})
				for _, r := range res {
					retrans += r.Metrics.Sender.Retransmissions
				}
			}
			b.ReportMetric(float64(retrans)/float64(b.N), "retrans/run")
		})
	}
}

// BenchmarkAblationDelAckVsMinRTO exercises the delayed-ACK vs
// min-RTO interaction (the ACK-delay stall cause): latency of a
// 15-segment flow as the client's delack timer crosses the RTO.
func BenchmarkAblationDelAckVsMinRTO(b *testing.B) {
	for _, delack := range []time.Duration{40 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond} {
		delack := delack
		b.Run(delack.String(), func(b *testing.B) {
			var totalMS float64
			var n int
			for i := 0; i < b.N; i++ {
				svc := workload.WebSearch()
				svc.DelAck = []workload.WeightedDur{{Value: delack, Weight: 1}}
				res := workload.Generate(svc, int64(i+1), workload.GenOptions{Flows: 20, SkipTraces: true})
				for _, r := range res {
					if r.Metrics.Done {
						totalMS += float64(r.Metrics.FlowLatency().Milliseconds())
						n++
					}
				}
			}
			if n > 0 {
				b.ReportMetric(totalMS/float64(n), "ms/flow")
			}
		})
	}
}

// BenchmarkAblationCongestionControl compares Reno-style congestion
// avoidance (the evaluation's default, matching the paper's Section
// 3.1 description) against CUBIC (the 2.6.32 kernel's actual
// default) on the cloud-storage workload.
func BenchmarkAblationCongestionControl(b *testing.B) {
	for _, name := range []string{"reno", "cubic"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var totalMS float64
			var n int
			for i := 0; i < b.N; i++ {
				res := workload.Generate(workload.CloudStorage(), int64(i+1), workload.GenOptions{
					Flows:      15,
					SkipTraces: true,
					Mutate: func(c *tcpsim.ConnConfig) {
						if name == "cubic" {
							c.Sender.CC = tcpsim.NewCubic()
						}
					},
				})
				for _, r := range res {
					if r.Metrics.Done {
						totalMS += float64(r.Metrics.FlowLatency().Milliseconds())
						n++
					}
				}
			}
			if n > 0 {
				b.ReportMetric(totalMS/float64(n), "ms/flow")
			}
		})
	}
}

// BenchmarkAblationPacing reproduces the Section-4.3 suggestion:
// pacing a window across the RTT reduces the burst losses behind
// continuous-loss stalls at shallow bottleneck queues.
func BenchmarkAblationPacing(b *testing.B) {
	for _, pacing := range []bool{false, true} {
		pacing := pacing
		name := "burst"
		if pacing {
			name = "paced"
		}
		b.Run(name, func(b *testing.B) {
			var contLoss, rtos int
			for i := 0; i < b.N; i++ {
				svc := workload.CloudStorage()
				svc.QueueLimit = 20 // shallow buffer
				res := workload.Generate(svc, int64(i+1), workload.GenOptions{
					Flows: 10,
					Mutate: func(c *tcpsim.ConnConfig) {
						c.Sender.Pacing = pacing
					},
				})
				for _, r := range res {
					if r.Flow == nil {
						continue
					}
					rtos += r.Metrics.Sender.RTOFirings
					a := core.Analyze(r.Flow, core.DefaultConfig())
					for _, st := range a.Stalls {
						if st.RetransCause == core.RetransContinuousLoss {
							contLoss++
						}
					}
				}
			}
			b.ReportMetric(float64(contLoss)/float64(b.N), "contloss/run")
			b.ReportMetric(float64(rtos)/float64(b.N), "rto/run")
		})
	}
}
