// Mitigation: compare native Linux recovery, TLP and S-RTO on an
// identical short-flow workload — the experiment behind the paper's
// Table 8, at example scale.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"

	"tcpstall/internal/mitigation"
	"tcpstall/internal/stats"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/workload"
)

func main() {
	const flows = 200
	svc := workload.CloudStorageShort()
	fmt.Printf("running %d short cloud-storage flows under 3 recovery strategies...\n\n", flows)

	table := stats.NewTable("Latency by recovery strategy:",
		"strategy", "p50", "p90", "p95", "mean", "RTO firings", "retrans")
	var baseline float64
	for _, kind := range []mitigation.Kind{mitigation.KindNative, mitigation.KindTLP, mitigation.KindSRTO} {
		kind := kind
		res := workload.Generate(svc, 99, workload.GenOptions{
			Flows:      flows,
			SkipTraces: true,
			NewRecovery: func() tcpsim.Recovery {
				switch kind {
				case mitigation.KindTLP:
					return mitigation.NewTLP(mitigation.TLPConfig{})
				case mitigation.KindSRTO:
					return mitigation.NewSRTO(mitigation.SRTOConfig{T1: 10, T2: 5})
				default:
					return tcpsim.NativeRecovery{}
				}
			},
		})
		lat := stats.NewSample(flows)
		var rtos, retrans int
		for _, r := range res {
			if !r.Metrics.Done {
				continue
			}
			lat.Add(float64(r.Metrics.FlowLatency().Milliseconds()))
			rtos += r.Metrics.Sender.RTOFirings
			retrans += r.Metrics.Sender.Retransmissions
		}
		if kind == mitigation.KindNative {
			baseline = lat.Mean()
		}
		table.AddRow(string(kind),
			fmt.Sprintf("%.0fms", lat.Quantile(0.5)),
			fmt.Sprintf("%.0fms", lat.Quantile(0.9)),
			fmt.Sprintf("%.0fms", lat.Quantile(0.95)),
			fmt.Sprintf("%.0fms (%+.1f%%)", lat.Mean(), 100*(lat.Mean()-baseline)/baseline),
			fmt.Sprintf("%d", rtos),
			fmt.Sprintf("%d", retrans),
		)
	}
	fmt.Println(table.String())
	fmt.Println("S-RTO converts timeout stalls (including the f-double stalls TLP")
	fmt.Println("cannot reach) into 2·RTT probe retransmissions.")
}
