// Pcapinspect: write a synthetic capture to a real .pcap file, read
// it back through the packet and pcap codecs, and inspect per-flow
// stall context — the full offline path a real capture would follow.
//
//	go run ./examples/pcapinspect
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"tcpstall/internal/core"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

func main() {
	path := filepath.Join(os.TempDir(), "pcapinspect-demo.pcap")

	// 1. Synthesize a small cloud-storage workload and export it as
	//    a standard pcap (openable in tcpdump/tshark).
	results := workload.Generate(workload.CloudStorage(), 5, workload.GenOptions{Flows: 12})
	var flows []*trace.Flow
	for _, r := range results {
		if r.Flow != nil {
			flows = append(flows, r.Flow)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := trace.ExportPcap(f, flows, trace.ExportConfig{}); err != nil {
		panic(err)
	}
	f.Close()
	st, _ := os.Stat(path)
	fmt.Printf("wrote %d flows to %s (%d bytes)\n", len(flows), path, st.Size())

	// 2. Read it back: parse Ethernet/IPv4/TCP frames, reassemble
	//    flows from the server's vantage point.
	in, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	defer in.Close()
	imported, err := trace.ImportPcap(in, trace.ImportConfig{ServerPort: 80})
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-imported %d flows\n\n", len(imported))

	// 3. Analyze each flow and show its stall context.
	for _, fl := range imported {
		a := core.Analyze(fl, core.DefaultConfig())
		fmt.Printf("flow %-22s %7.1fKB %4d pkts  rtt %3.0fms  stalls %d (%.0f%% stalled)\n",
			a.FlowID, float64(a.DataBytes)/1000, len(fl.Records),
			a.AvgRTT(), len(a.Stalls), 100*a.StalledFraction())
		for _, s := range a.Stalls {
			cause := s.Cause.String()
			if s.Cause == core.CauseTimeoutRetrans {
				cause += "/" + s.RetransCause.String()
			}
			fmt.Printf("    %8.2fs %6dms %-28s in_flight=%d rwnd=%d\n",
				s.Start.Seconds(), s.Duration.Milliseconds(), cause, s.InFlight, s.Rwnd)
		}
	}
}
