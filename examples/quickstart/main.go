// Quickstart: simulate one TCP flow over a lossy path, capture the
// server-side trace, and classify its stalls with TAPO.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

func main() {
	// 1. A simulator, a bidirectional path with 4% random loss, and
	//    a connection serving one 200KB response.
	s := sim.New()
	rng := sim.NewRNG(1)
	down := netem.New(s, rng, netem.Config{
		Delay: 50 * time.Millisecond,
		Loss:  netem.Bernoulli{P: 0.04},
	})
	up := netem.New(s, rng, netem.Config{Delay: 50 * time.Millisecond})

	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),   // Linux-2.6.32-style stack
		Receiver: tcpsim.DefaultReceiverConfig(), // modern desktop client
		Requests: []tcpsim.Request{{Size: 200_000}},
	}

	// 2. Capture what tcpdump on the server would see.
	col := trace.NewCollector("quickstart", "demo")
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, col)
	conn.Start()
	s.Run()

	m := conn.Metrics()
	fmt.Printf("transfer done=%v latency=%v retransmissions=%d\n",
		m.Done, m.FlowLatency().Round(time.Millisecond), m.Sender.Retransmissions)

	// 3. Run the TAPO analysis on the trace.
	a := core.Analyze(col.Flow, core.DefaultConfig())
	fmt.Printf("trace: %d packets, %d data segments, avg RTT %.0fms\n",
		len(col.Flow.Records), a.DataPackets, a.AvgRTT())
	fmt.Printf("stalls: %d (%.1f%% of flow lifetime)\n",
		len(a.Stalls), 100*a.StalledFraction())
	for i, st := range a.Stalls {
		cause := st.Cause.String()
		if st.Cause == core.CauseTimeoutRetrans {
			cause += "/" + st.RetransCause.String()
		}
		fmt.Printf("  stall %d: at %v for %v — %s (state %v, in_flight %d)\n",
			i+1, st.Start, st.Duration.Round(time.Millisecond), cause, st.CaState, st.InFlight)
	}
}
