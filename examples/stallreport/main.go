// Stallreport: generate a full service workload (the paper's
// software-download model, the one richest in client pathologies) and
// produce the Table-3/Table-5 style stall report, then drill into the
// most-stalled flow.
//
//	go run ./examples/stallreport
package main

import (
	"fmt"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/stats"
	"tcpstall/internal/workload"
)

func main() {
	svc := workload.SoftwareDownload()
	fmt.Printf("generating %d %s flows...\n", 150, svc.Name)
	results := workload.Generate(svc, 2014, workload.GenOptions{Flows: 150})

	var analyses []*core.FlowAnalysis
	var worst *core.FlowAnalysis
	for _, r := range results {
		if r.Flow == nil {
			continue
		}
		a := core.Analyze(r.Flow, core.DefaultConfig())
		analyses = append(analyses, a)
		if worst == nil || a.TotalStallTime > worst.TotalStallTime {
			worst = a
		}
	}

	rep := core.NewReport(analyses)
	fmt.Printf("\n%d flows, %d stalled, %d stalls, %s total stall time\n",
		rep.Flows, rep.FlowsStalled, rep.TotalStalls, rep.TotalStallTime.Round(time.Second))

	t := stats.NewTable("Stall cause breakdown:", "cause", "volume %", "time %")
	for _, c := range []core.Cause{
		core.CauseDataUnavailable, core.CauseResourceConstraint,
		core.CauseClientIdle, core.CauseZeroWindow,
		core.CausePacketDelay, core.CauseTimeoutRetrans, core.CauseUndetermined,
	} {
		t.AddRow(c.String(), stats.Percent(rep.CausePctCount(c)), stats.Percent(rep.CausePctTime(c)))
	}
	fmt.Println(t.String())

	rt := stats.NewTable("Retransmission-stall breakdown:", "cause", "volume %", "time %")
	for _, c := range []core.RetransCause{
		core.RetransDouble, core.RetransTail, core.RetransSmallCwnd,
		core.RetransSmallRwnd, core.RetransContinuousLoss,
		core.RetransAckDelayLoss, core.RetransUndetermined,
	} {
		rt.AddRow(c.String(), stats.Percent(rep.RetransPctCount(c)), stats.Percent(rep.RetransPctTime(c)))
	}
	fmt.Println(rt.String())

	if worst != nil && len(worst.Stalls) > 0 {
		fmt.Printf("worst flow %s: stalled %s of %s (%.0f%%)\n",
			worst.FlowID,
			worst.TotalStallTime.Round(time.Millisecond),
			worst.TransmissionTime.Round(time.Millisecond),
			100*worst.StalledFraction())
		for _, st := range worst.Stalls {
			cause := st.Cause.String()
			if st.Cause == core.CauseTimeoutRetrans {
				cause += "/" + st.RetransCause.String()
			}
			fmt.Printf("  %8.2fs +%6dms  %s\n",
				st.Start.Seconds(), st.Duration.Milliseconds(), cause)
		}
	}
}
