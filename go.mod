module tcpstall

go 1.22
