package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// tailMain follows a head's SSE event stream and prints one line per
// event: the terminal twin of the dashboard's live feed. It reconnects
// with Last-Event-ID on stream loss, so a head restart or a network
// blip loses liveness, not history still in the ring.
func tailMain(args []string) int {
	fs := flag.NewFlagSet("tapoctl tail", flag.ExitOnError)
	headAddr := fs.String("head", "localhost:7077", "fleet head host:port")
	since := fs.Uint64("since", 0, "replay retained events after this ID first (0 = all retained)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	last := *since
	for attempt := 0; ; attempt++ {
		err := tailOnce(ctx, *headAddr, &last)
		if ctx.Err() != nil {
			return 0
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapoctl tail: %v (reconnecting)\n", err)
		}
		select {
		case <-ctx.Done():
			return 0
		case <-time.After(2 * time.Second):
		}
	}
}

// tailOnce streams one connection's worth of events, advancing *last
// as events print so a reconnect resumes where this one stopped.
func tailOnce(ctx context.Context, headAddr string, last *uint64) error {
	url := fmt.Sprintf("http://%s/fleet/events/stream?since=%d", headAddr, *last)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("head returned %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev tailEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue
		}
		printEvent(ev)
		if ev.ID > *last {
			*last = ev.ID
		}
	}
	return sc.Err()
}

// tailEvent mirrors fleet.Event; decoding locally keeps the tail loop
// honest about what it actually reads off the wire.
type tailEvent struct {
	ID         uint64  `json:"id"`
	TimeMS     int64   `json:"time_ms"`
	Type       string  `json:"type"`
	Member     string  `json:"member,omitempty"`
	Service    string  `json:"service,omitempty"`
	Cause      string  `json:"cause,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	FlowHash   uint32  `json:"flow_hash,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

func printEvent(ev tailEvent) {
	when := "--:--:--"
	if ev.TimeMS != 0 {
		when = time.UnixMilli(ev.TimeMS).Format("15:04:05")
	}
	switch ev.Type {
	case "stall":
		fmt.Printf("%s  %-15s %-12s %s %s %.0fms flow=%08x\n",
			when, ev.Type, ev.Member, ev.Service, ev.Cause, ev.DurationMS, ev.FlowHash)
	default:
		sep := ""
		if ev.Member != "" && ev.Detail != "" {
			sep = " "
		}
		fmt.Printf("%s  %-15s %s%s%s\n", when, ev.Type, ev.Member, sep, ev.Detail)
	}
}
