// Command tapoctl is the fleet head: one control plane for many
// tapod members. Members register for an epoch, push cumulative
// snapshots of their stall aggregates on a heartbeat, and receive
// config updates in the responses; tapoctl merges everything into
// fleet-wide totals and serves them.
//
// Endpoints:
//
//	POST /fleet/register       member registration (epoch assignment)
//	POST /fleet/push           member snapshot push + heartbeat
//	GET  /fleet/members        every known member, live and dead
//	GET  /fleet/stalls         fleet-wide stall totals, cumulative + rolling window (?service=)
//	GET  /fleet/services       per-service rollup
//	GET  /fleet/stats          the head's own protocol accounting
//	GET  /fleet/timeseries     per-interval delta rings: fleet, services, members (?service=)
//	GET  /fleet/events         event ring backlog (?since=ID)
//	GET  /fleet/events/stream  live event stream (SSE)
//	GET  /fleet/config         current config downlink
//	POST /fleet/config         merge settings, bump the config version
//	GET  /dashboard            embedded operator dashboard
//	GET  /metrics              Prometheus text exposition (tapoctl_*, fleet_*)
//	GET  /healthz              liveness
//
// Config keys understood by members: sample_one_in,
// max_records_per_flow, triage, flight. Unknown keys are counted and
// ignored member-side, so a newer head can speak to older members.
//
// Usage:
//
//	tapoctl [-listen :7077] [-expiry 60s] [-config triage=off,sample_one_in=4]
//	tapoctl tail [-head localhost:7077] [-since 0]
//
// The tail subcommand follows a running head's event stream and
// prints one line per event — the terminal twin of the dashboard's
// live feed.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcpstall/internal/fleet"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "tail" {
		os.Exit(tailMain(os.Args[2:]))
	}
	listen := flag.String("listen", ":7077", "HTTP listen address for the fleet API and /metrics")
	expiry := flag.Duration("expiry", fleet.DefaultExpiry, "retire members silent this long")
	preset := flag.String("config", "", "initial config downlink as k=v pairs, comma-separated (e.g. triage=off,sample_one_in=4)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	logger := newLogger(*logFormat)

	head := fleet.NewHead(fleet.HeadConfig{Expiry: *expiry})
	if *preset != "" {
		settings, err := parsePreset(*preset)
		if err != nil {
			logger.Error("bad -config", "err", err)
			os.Exit(2)
		}
		v := head.SetConfig(settings)
		logger.Info("config preset installed", "version", v, "settings", settings)
	}

	srv := &http.Server{Addr: *listen, Handler: fleet.NewHandler(head)}
	go func() {
		logger.Info("fleet head serving", "listen", *listen, "expiry", *expiry)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("signal received, shutting down")

	// Retire members that died during the run so the final state log is
	// honest, then terminate the SSE streams — Shutdown waits for open
	// requests, and an event stream never finishes on its own.
	head.Sweep()
	head.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)

	st := head.Stats()
	logger.Info("final fleet state",
		"members", st.Members,
		"registrations", st.Registrations,
		"restarts", st.Restarts,
		"expiries", st.Expiries,
		"pushes", st.Pushes,
		"rejects", st.Rejects,
		"snapshot_bytes", st.SnapshotBytes,
		"merge_p99_ms", st.MergeP99MS)
}

// parsePreset turns "k=v,k2=v2" into a settings map, inferring value
// types the way JSON would: integers and booleans become typed, the
// rest stay strings (the member's parser accepts "on"/"off" spellings
// for the boolean knobs).
func parsePreset(s string) (map[string]any, error) {
	out := map[string]any{}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, &flagError{pair}
		}
		if n, err := strconv.Atoi(v); err == nil {
			out[k] = n
		} else if b, err := strconv.ParseBool(v); err == nil {
			out[k] = b
		} else {
			out[k] = v
		}
	}
	return out, nil
}

type flagError struct{ pair string }

func (e *flagError) Error() string { return "expected k=v, got " + strconv.Quote(e.pair) }

// newLogger configures the process-wide slog logger; "json" selects
// machine-readable output for log shippers, anything else human text.
func newLogger(format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}
