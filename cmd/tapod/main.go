// Command tapod is the online form of tapo: a daemon that watches a
// live stream of server-side packet records, runs each flow through
// the incremental TAPO analyzer as packets arrive, and serves the
// results over HTTP — Prometheus metrics on /metrics, flow and stall
// state on the JSON admin API.
//
// Two sources are built in:
//
//	tapod -pcap capture.pcap [-speed 10]   replay a capture, paced by
//	                                       its own timestamps
//	tapod -gen web-search [-flows 200]     synthesize live traffic from
//	                                       a service model
//
// Two-phase triage (-triage, default on for -gen sources) keeps
// healthy flows on a cheap fast path — a handful of counters plus a
// bounded ring of recent records — and promotes a flow to the full
// incremental analyzer only when a stall symptom fires, replaying the
// ring so verdicts stay byte-identical to always-on analysis.
//
// Memory is bounded end to end: the flow table caps active flows (LRU
// eviction), every flow caps its analyzer records, and the per-shard
// ingest rings cap queued packets; every drop is counted in /metrics.
// SIGINT/SIGTERM drain the rings, flush every live flow, and print a
// final summary before exiting.
//
// Fleet mode (-head) attaches the daemon to a tapoctl head: it
// registers for an epoch, pushes cumulative snapshots of its stall
// aggregates every -push-interval, and applies config the head sends
// back (sampling rate, record caps, triage/flight toggles) between
// records — so one control plane steers many tapods. Each push also
// carries a bounded digest of recent stall events (-digest, default
// 256 per push) that feeds the head's live event stream and dashboard;
// the digest is visibility only and never enters the fleet totals.
//
// Self-observability: by default every flow carries a flight recorder
// (disable with -flight=false), so /debug/flows/{id}/trace serves
// per-stall evidence — the decision path and packet window behind each
// verdict. -pprof mounts the Go profiler under /debug/pprof/, /metrics
// includes the daemon's own runtime gauges, and all diagnostics go
// through log/slog (-log-format text|json).
//
// Usage:
//
//	tapod [-listen :9090] (-pcap file | -gen service) [-head http://ctl:7077] [options]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/fleet"
	"tcpstall/internal/flight"
	"tcpstall/internal/live"
	"tcpstall/internal/trace"
	"tcpstall/internal/triage"
	"tcpstall/internal/workload"
)

func main() {
	listen := flag.String("listen", ":9090", "HTTP listen address for /metrics and the admin API")
	pcapPath := flag.String("pcap", "", "replay this capture file as the record source")
	port := flag.Uint("port", 80, "server TCP port in the capture (identifies direction)")
	speed := flag.Float64("speed", 0, "replay/generation pace: 1 = real time, 10 = 10x, 0 = unpaced")
	gen := flag.String("gen", "", "synthesize live traffic from this service model (cloud-storage, software-download, web-search)")
	flows := flag.Int("flows", 100, "with -gen: connections to run")
	conc := flag.Int("concurrency", 16, "with -gen: simultaneous connections")
	seed := flag.Int64("seed", 1, "with -gen: workload seed")
	tau := flag.Float64("tau", 2, "stall threshold multiplier in min(tau*SRTT, RTO)")
	shards := flag.Int("shards", 0, "flow-table shards (0: one per CPU)")
	maxFlows := flag.Int("max-flows", 0, "active-flow cap across all shards (0: default 65536)")
	maxRecs := flag.Int("max-records", 0, "per-flow analyzer record cap (0: default 100000, -1: unlimited)")
	idle := flag.Duration("idle", 5*time.Minute, "evict flows idle this long")
	window := flag.Duration("window", time.Minute, "rolling aggregation window")
	ringSize := flag.Int("ring", 0, "per-shard ingest ring size (0: default 4096)")
	shed := flag.Bool("shed", false, "drop records when rings fill instead of applying backpressure")
	triageMode := flag.String("triage", "auto", "two-phase triage: on, off, or auto (on with -gen, off with -pcap)")
	triageRing := flag.Int("triage-ring", 0, "triage per-flow ring of recent records (0: default 1024)")
	flightOn := flag.Bool("flight", true, "attach a flight recorder to every flow (serves /debug/flows/{id}/trace)")
	flightK := flag.Int("flight-k", 0, "flight packet-window radius around each stall gap (0: default)")
	flightRing := flag.Int("flight-ring", 0, "flight event-ring size per flow (0: default)")
	headURL := flag.String("head", "", "fleet mode: push snapshots to this tapoctl head URL")
	memberID := flag.String("member-id", "", "with -head: fleet member identity (default: hostname + listen address)")
	pushInterval := flag.Duration("push-interval", fleet.DefaultPushInterval, "with -head: snapshot push interval")
	digest := flag.Int("digest", 0, "with -head: stall events digested per push for the head's event stream (0: default 256, -1: disable)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	logger := newLogger(*logFormat)

	if (*pcapPath == "") == (*gen == "") {
		fmt.Fprintln(os.Stderr, "tapod: exactly one of -pcap or -gen is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	lcfg := live.Config{
		Shards:            *shards,
		MaxFlows:          *maxFlows,
		MaxRecordsPerFlow: *maxRecs,
		IdleTimeout:       *idle,
		Window:            *window,
		RingSize:          *ringSize,
		DigestSize:        *digest,
		Analysis:          cfg,
		OnFlow: func(reason string, a *core.FlowAnalysis) {
			// LRU displacement means the flow table is too small for
			// the offered load — the one eviction worth warning about.
			if reason == live.EvictLRU {
				logger.Warn("flow displaced by LRU pressure: raise -max-flows or lower -idle",
					"flow", a.FlowID, "records", a.DataPackets, "stalls", len(a.Stalls))
			}
		},
	}
	// Triage defaults on for live generation (the healthy-heavy case it
	// exists for) and off for pcap replay, where full always-on
	// analysis of a finite capture is usually what's wanted.
	triageOn := false
	switch *triageMode {
	case "on":
		triageOn = true
	case "auto":
		triageOn = *gen != ""
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "tapod: -triage must be on, off or auto (got %q)\n", *triageMode)
		os.Exit(2)
	}
	// In fleet mode both subsystems are always CONSTRUCTED — the head
	// may enable them at runtime — and the flags set their initial
	// on/off state instead.
	if *flightOn || *headURL != "" {
		lcfg.Flight = &flight.Config{WindowK: *flightK, RingSize: *flightRing}
	}
	if triageOn || *headURL != "" {
		lcfg.Triage = &triage.Config{RingCap: *triageRing}
	}
	m := live.New(lcfg)
	if *headURL != "" {
		m.SetTriageEnabled(triageOn)
		m.SetFlightEnabled(*flightOn)
	}
	m.Start()

	mux := http.NewServeMux()
	mux.Handle("/", live.NewHandler(m))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		logger.Info("serving metrics and admin API", "listen", *listen,
			"flight", *flightOn, "pprof", *pprofOn)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ingest := m.IngestWait
	if *shed {
		ingest = m.Ingest
	}

	var member *fleet.Member
	if *headURL != "" {
		id := *memberID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "tapod"
			}
			id = host + *listen
		}
		var err error
		member, err = fleet.NewMember(fleet.MemberConfig{
			ID:           id,
			Head:         *headURL,
			Monitor:      m,
			PushInterval: *pushInterval,
		})
		if err != nil {
			logger.Error("fleet member setup failed", "err", err)
			os.Exit(2)
		}
		ingest = member.WrapIngestEvent(ingest)
		logger.Info("fleet member mode", "head", *headURL, "id", id, "push_interval", *pushInterval)
		go func() {
			// Run exits on registration failure; keep retrying so a head
			// that comes up late (or restarts) is joined automatically.
			for ctx.Err() == nil {
				if err := member.Run(ctx); err != nil && ctx.Err() == nil {
					logger.Warn("fleet push loop error, retrying", "err", err)
					select {
					case <-time.After(*pushInterval):
					case <-ctx.Done():
					}
				}
			}
		}()
	}
	go watchDrops(ctx, m, logger)

	var err error
	switch {
	case *pcapPath != "":
		err = replayPcap(ctx, m, *pcapPath, uint16(*port), *speed, ingest)
	default:
		err = generate(ctx, *gen, *seed, workload.StreamOptions{
			Flows:       *flows,
			Concurrency: *conc,
			Speed:       *speed,
		}, ingest, logger)
	}
	if err != nil && ctx.Err() == nil {
		logger.Error("record source failed", "err", err)
	}

	if ctx.Err() != nil {
		logger.Info("signal received, draining")
	}
	// Drain: flush every live flow, send the final fleet push, stop
	// the HTTP plane, report.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if member != nil {
		// Close settles the monitor and pushes the final snapshot, so
		// the head retires this epoch with exact totals.
		if err := member.Close(shutdownCtx); err != nil {
			logger.Warn("final fleet push failed", "err", err)
		}
	} else {
		m.Close()
	}
	srv.Shutdown(shutdownCtx)
	report(m, member)
}

// newLogger configures the process-wide slog logger; "json" selects
// machine-readable output for log shippers, anything else human text.
func newLogger(format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}

// watchDrops surfaces drop accounting as it happens rather than only
// in the final report: any growth in shed records or record-cap
// truncation in a 10s interval earns one warning.
func watchDrops(ctx context.Context, m *live.Monitor, logger *slog.Logger) {
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	var lastRing, lastCap uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s := m.Snapshot()
			if s.RingDrops > lastRing {
				logger.Warn("ingest rings shedding records: source outpaces analysis",
					"dropped", s.RingDrops-lastRing, "total", s.RingDrops)
			}
			if s.RecordsCapDrop > lastCap {
				logger.Warn("per-flow record cap truncating flows: raise -max-records",
					"dropped", s.RecordsCapDrop-lastCap, "flows_truncated", s.FlowsTruncated)
			}
			lastRing, lastCap = s.RingDrops, s.RecordsCapDrop
		}
	}
}

// replayPcap streams a capture through the monitor, paced by the
// capture's own timestamps when speed > 0.
func replayPcap(ctx context.Context, m *live.Monitor, path string, port uint16, speed float64, ingest func(trace.RecordEvent) bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	wallStart := time.Now()
	return trace.ImportPcapRecords(f, trace.ImportConfig{ServerPort: port}, func(ev trace.RecordEvent) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if speed > 0 {
			target := wallStart.Add(time.Duration(float64(ev.Rec.T) / speed))
			if d := time.Until(target); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		ingest(ev)
		return nil
	})
}

// generate runs a service model live into the monitor.
func generate(ctx context.Context, name string, seed int64, opt workload.StreamOptions, ingest func(trace.RecordEvent) bool, logger *slog.Logger) error {
	var svc workload.Service
	found := false
	for _, s := range workload.Services() {
		if s.Name == name {
			svc, found = s, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown service %q (want cloud-storage, software-download or web-search)", name)
	}
	logger.Info("generating connections", "service", name, "flows", opt.Flows)
	n := workload.Stream(ctx, svc, seed, opt, func(ev trace.RecordEvent) { ingest(ev) })
	logger.Info("source finished", "records", n)
	return nil
}

// report prints the final snapshot as JSON on stdout.
func report(m *live.Monitor, member *fleet.Member) {
	s := m.Snapshot()
	stalls := map[string]map[string]uint64{}
	for k, n := range s.StallCount {
		svc := k.Service
		if svc == "" {
			svc = "(none)"
		}
		if stalls[svc] == nil {
			stalls[svc] = map[string]uint64{}
		}
		stalls[svc][k.Cause.String()] = n
	}
	retrans := map[string]uint64{}
	for c, n := range s.RetransCount {
		retrans[c.String()] = n
	}
	out := map[string]any{
		"uptime_s":         s.Uptime.Seconds(),
		"records_ingested": s.Ingested,
		"records_fed":      s.RecordsFed,
		"ring_drops":       s.RingDrops,
		"record_cap_drops": s.RecordsCapDrop,
		"flows_seen":       s.FlowsSeen,
		"flows_evicted":    s.FlowsEvicted,
		"flows_truncated":  s.FlowsTruncated,
		"stalls":           stalls,
		"retransmission":   retrans,
	}
	if s.TriageFastRecords > 0 || len(s.TriagePromotions) > 0 {
		out["triage"] = map[string]any{
			"fast_records":         s.TriageFastRecords,
			"promotions":           s.TriagePromotions,
			"repromotions":         s.TriageRepromotions,
			"demotions":            s.TriageDemotions,
			"truncated_promotions": s.TriageTruncatedPromotions,
			"promoted_flows":       s.PromotedFlows,
			"parked_flows":         s.ParkedFlows,
		}
	}
	if s.DurationsMS != nil && s.DurationsMS.N() > 0 {
		out["stall_duration_ms"] = map[string]any{
			"count": s.DurationsMS.N(),
			"mean":  s.DurationsMS.Mean(),
			"p50":   s.DurationsMS.Quantile(0.50),
			"p99":   s.DurationsMS.Quantile(0.99),
		}
	}
	if member != nil {
		out["fleet"] = member.Stats()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
