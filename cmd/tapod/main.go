// Command tapod is the online form of tapo: a daemon that watches a
// live stream of server-side packet records, runs each flow through
// the incremental TAPO analyzer as packets arrive, and serves the
// results over HTTP — Prometheus metrics on /metrics, flow and stall
// state on the JSON admin API.
//
// Two sources are built in:
//
//	tapod -pcap capture.pcap [-speed 10]   replay a capture, paced by
//	                                       its own timestamps
//	tapod -gen web-search [-flows 200]     synthesize live traffic from
//	                                       a service model
//
// Memory is bounded end to end: the flow table caps active flows (LRU
// eviction), every flow caps its analyzer records, and the per-shard
// ingest rings cap queued packets; every drop is counted in /metrics.
// SIGINT/SIGTERM drain the rings, flush every live flow, and print a
// final summary before exiting.
//
// Usage:
//
//	tapod [-listen :9090] (-pcap file | -gen service) [options]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/live"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

func main() {
	listen := flag.String("listen", ":9090", "HTTP listen address for /metrics and the admin API")
	pcapPath := flag.String("pcap", "", "replay this capture file as the record source")
	port := flag.Uint("port", 80, "server TCP port in the capture (identifies direction)")
	speed := flag.Float64("speed", 0, "replay/generation pace: 1 = real time, 10 = 10x, 0 = unpaced")
	gen := flag.String("gen", "", "synthesize live traffic from this service model (cloud-storage, software-download, web-search)")
	flows := flag.Int("flows", 100, "with -gen: connections to run")
	conc := flag.Int("concurrency", 16, "with -gen: simultaneous connections")
	seed := flag.Int64("seed", 1, "with -gen: workload seed")
	tau := flag.Float64("tau", 2, "stall threshold multiplier in min(tau*SRTT, RTO)")
	shards := flag.Int("shards", 0, "flow-table shards (0: one per CPU)")
	maxFlows := flag.Int("max-flows", 0, "active-flow cap across all shards (0: default 65536)")
	maxRecs := flag.Int("max-records", 0, "per-flow analyzer record cap (0: default 100000, -1: unlimited)")
	idle := flag.Duration("idle", 5*time.Minute, "evict flows idle this long")
	window := flag.Duration("window", time.Minute, "rolling aggregation window")
	ringSize := flag.Int("ring", 0, "per-shard ingest ring size (0: default 4096)")
	shed := flag.Bool("shed", false, "drop records when rings fill instead of applying backpressure")
	flag.Parse()

	if (*pcapPath == "") == (*gen == "") {
		fmt.Fprintln(os.Stderr, "tapod: exactly one of -pcap or -gen is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	m := live.New(live.Config{
		Shards:            *shards,
		MaxFlows:          *maxFlows,
		MaxRecordsPerFlow: *maxRecs,
		IdleTimeout:       *idle,
		Window:            *window,
		RingSize:          *ringSize,
		Analysis:          cfg,
	})
	m.Start()

	srv := &http.Server{Addr: *listen, Handler: live.NewHandler(m)}
	go func() {
		fmt.Fprintf(os.Stderr, "tapod: serving /metrics on %s\n", *listen)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "tapod:", err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ingest := m.IngestWait
	if *shed {
		ingest = m.Ingest
	}

	var err error
	switch {
	case *pcapPath != "":
		err = replayPcap(ctx, m, *pcapPath, uint16(*port), *speed, ingest)
	default:
		err = generate(ctx, *gen, *seed, workload.StreamOptions{
			Flows:       *flows,
			Concurrency: *conc,
			Speed:       *speed,
		}, ingest)
	}
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "tapod:", err)
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tapod: signal received, draining")
	}
	// Drain: flush every live flow, stop the HTTP plane, report.
	m.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	report(m)
}

// replayPcap streams a capture through the monitor, paced by the
// capture's own timestamps when speed > 0.
func replayPcap(ctx context.Context, m *live.Monitor, path string, port uint16, speed float64, ingest func(trace.RecordEvent) bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	wallStart := time.Now()
	return trace.ImportPcapRecords(f, trace.ImportConfig{ServerPort: port}, func(ev trace.RecordEvent) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if speed > 0 {
			target := wallStart.Add(time.Duration(float64(ev.Rec.T) / speed))
			if d := time.Until(target); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		ingest(ev)
		return nil
	})
}

// generate runs a service model live into the monitor.
func generate(ctx context.Context, name string, seed int64, opt workload.StreamOptions, ingest func(trace.RecordEvent) bool) error {
	var svc workload.Service
	found := false
	for _, s := range workload.Services() {
		if s.Name == name {
			svc, found = s, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown service %q (want cloud-storage, software-download or web-search)", name)
	}
	fmt.Fprintf(os.Stderr, "tapod: generating %d %s connections\n", opt.Flows, name)
	n := workload.Stream(ctx, svc, seed, opt, func(ev trace.RecordEvent) { ingest(ev) })
	fmt.Fprintf(os.Stderr, "tapod: source finished, %d records emitted\n", n)
	return nil
}

// report prints the final snapshot as JSON on stdout.
func report(m *live.Monitor) {
	s := m.Snapshot()
	stalls := map[string]map[string]uint64{}
	for k, n := range s.StallCount {
		svc := k.Service
		if svc == "" {
			svc = "(none)"
		}
		if stalls[svc] == nil {
			stalls[svc] = map[string]uint64{}
		}
		stalls[svc][k.Cause.String()] = n
	}
	retrans := map[string]uint64{}
	for c, n := range s.RetransCount {
		retrans[c.String()] = n
	}
	out := map[string]any{
		"uptime_s":         s.Uptime.Seconds(),
		"records_ingested": s.Ingested,
		"records_fed":      s.RecordsFed,
		"ring_drops":       s.RingDrops,
		"record_cap_drops": s.RecordsCapDrop,
		"flows_seen":       s.FlowsSeen,
		"flows_evicted":    s.FlowsEvicted,
		"flows_truncated":  s.FlowsTruncated,
		"stalls":           stalls,
		"retransmission":   retrans,
	}
	if s.DurationsMS != nil && s.DurationsMS.N() > 0 {
		out["stall_duration_ms"] = map[string]any{
			"count": s.DurationsMS.N(),
			"mean":  s.DurationsMS.Mean(),
			"p50":   s.DurationsMS.Quantile(0.50),
			"p99":   s.DurationsMS.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
