package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"tcpstall/internal/core"
	"tcpstall/internal/explain"
	"tcpstall/internal/flight"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// explainMain is the `tapo explain` subcommand: it re-analyzes a
// capture with the flight recorder attached and prints, for each
// stall, the decision path that produced the verdict plus the packet
// window around the silent gap.
func explainMain(args []string) {
	fs := flag.NewFlagSet("tapo explain", flag.ExitOnError)
	port := fs.Uint("port", 80, "server TCP port (identifies direction)")
	flowID := fs.String("flow", "", "only flows whose ID contains this substring")
	stallID := fs.Int("stall", -1, "only the stall with this ID (requires -flow)")
	winK := fs.Int("k", 0, "packet-window radius around each gap (0: recorder default)")
	ring := fs.Int("ring", 0, "event-ring size per flow (0: recorder default)")
	traceOut := fs.String("trace-out", "", "write time/sequence samples + verdicts as JSONL to this file")
	demo := fs.Bool("demo", false, "explain a synthetic web-search trace instead of a file")
	tau := fs.Float64("tau", 2, "stall threshold multiplier in min(tau*SRTT, RTO)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tapo explain [-flow ID] [-stall N] [-k N] [-trace-out f.jsonl] capture.pcap")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	logger := newLogger(*logFormat)

	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	fcfg := flight.Config{WindowK: *winK, RingSize: *ring}

	var flows []*trace.Flow
	switch {
	case *demo:
		logger.Info("synthesizing web-search flows", "flows", 20)
		gen := workload.Generate(workload.WebSearch(), 42, workload.GenOptions{Flows: 20})
		for _, g := range gen {
			flows = append(flows, g.Flow)
		}
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		flows, err = trace.ImportPcap(f, trace.ImportConfig{ServerPort: uint16(*port)})
		if err != nil {
			fatal(err)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}

	var out *os.File
	if *traceOut != "" {
		var err error
		out, err = os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
	}

	shown := 0
	for _, f := range flows {
		if *flowID != "" && !strings.Contains(f.ID, *flowID) {
			continue
		}
		a, rec := core.AnalyzeFlight(f, cfg, fcfg)
		if out != nil {
			if err := explain.WriteTraceJSONL(out, f, a, rec); err != nil {
				fatal(err)
			}
		}
		if len(a.Stalls) == 0 && *flowID == "" {
			continue // unfiltered runs show only flows that stalled
		}
		if shown > 0 {
			fmt.Println()
		}
		if *stallID >= 0 {
			printOneStall(a, rec, *stallID)
		} else {
			explain.Flow(os.Stdout, a, rec)
		}
		shown++
	}
	if shown == 0 {
		logger.Warn("nothing to explain", "flows", len(flows), "flow_filter", *flowID)
	}
	if out != nil {
		logger.Info("wrote trace samples", "path", *traceOut)
	}
}

func printOneStall(a *core.FlowAnalysis, rec *flight.Recorder, id int) {
	for i := range a.Stalls {
		st := &a.Stalls[i]
		if st.ID != id {
			continue
		}
		var ev *flight.Evidence
		if st.Evidence != nil {
			ev = rec.Evidence(st.Evidence.Stall)
		}
		fmt.Printf("flow %s\n", a.FlowID)
		explain.Stall(os.Stdout, st, ev)
		return
	}
	fmt.Printf("flow %s has no stall #%d (%d stalls total)\n", a.FlowID, id, len(a.Stalls))
}

// newLogger builds the process logger; "json" selects machine-
// readable output for log shippers, anything else human text.
func newLogger(format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}
