// Command tapo is the TCP stall diagnosis tool of the paper: it reads
// server-side packet captures (classic .pcap), reconstructs every
// flow's congestion state, detects stalls — gaps exceeding
// min(2·SRTT, RTO) — and classifies each stall's root cause with the
// Figure-5 decision tree plus the Table-5 retransmission breakdown.
//
// Flows are analyzed on a parallel worker pool (one worker per CPU by
// default); results are merged deterministically by flow key, so the
// output is identical for every -workers value.
//
// Usage:
//
//	tapo [-port N] [-workers N] [-v] capture.pcap
//	tapo -demo              # run on a freshly synthesized trace
//	tapo explain [-flow ID] [-stall N] [-trace-out f.jsonl] capture.pcap
//
// The explain subcommand re-analyzes with the flight recorder
// attached and narrates each stall: the Figure-5/Table-5 decision
// path with the concrete values that chose every branch, and the
// packet window around the silent gap.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/pipeline"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		explainMain(os.Args[2:])
		return
	}
	port := flag.Uint("port", 80, "server TCP port (identifies direction)")
	workers := flag.Int("workers", 0, "analysis worker count (0: one per CPU)")
	verbose := flag.Bool("v", false, "print every stall of every flow")
	jsonOut := flag.Bool("json", false, "emit the full analysis as JSON on stdout")
	demo := flag.Bool("demo", false, "analyze a synthetic web-search trace instead of a file")
	tau := flag.Float64("tau", 2, "stall threshold multiplier in min(tau*SRTT, RTO)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	logger := newLogger(*logFormat)

	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	opt := pipeline.Options{Workers: *workers, Config: cfg}

	var res *pipeline.Result
	var err error
	switch {
	case *demo:
		logger.Info("synthesizing web-search flows", "flows", 80)
		gen := workload.Generate(workload.WebSearch(), 42,
			workload.GenOptions{Flows: 80, Workers: *workers})
		res, err = pipeline.Run(pipeline.FromResults(gen), opt)
	case flag.NArg() == 1:
		f, oerr := os.Open(flag.Arg(0))
		if oerr != nil {
			fatal(oerr)
		}
		defer f.Close()
		// Streaming import: flows are analyzed while the capture is
		// still being read.
		res, err = pipeline.Run(
			pipeline.FromPcap(f, trace.ImportConfig{ServerPort: uint16(*port)}), opt)
	default:
		fmt.Fprintln(os.Stderr, "usage: tapo [-port N] [-workers N] [-v] capture.pcap | tapo -demo")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if *verbose && !*jsonOut {
		for _, a := range res.Analyses {
			if len(a.Stalls) == 0 {
				continue
			}
			fmt.Printf("flow %s: %d stalls, %.1f%% of lifetime stalled\n",
				a.FlowID, len(a.Stalls), 100*a.StalledFraction())
			for _, st := range a.Stalls {
				cause := st.Cause.String()
				if st.Cause == core.CauseTimeoutRetrans {
					cause += "/" + st.RetransCause.String()
					if st.RetransCause == core.RetransDouble {
						cause += "(" + st.DoubleKind.String() + ")"
					}
				}
				fmt.Printf("  %9.3fs +%6.0fms  %-32s state=%v in_flight=%d rwnd=%d\n",
					st.Start.Seconds(), float64(st.Duration)/float64(time.Millisecond),
					cause, st.CaState, st.InFlight, st.Rwnd)
			}
		}
	}

	if *jsonOut {
		buf, merr := core.MarshalAnalyses(res.Analyses)
		if merr != nil {
			fatal(merr)
		}
		if _, werr := os.Stdout.Write(buf); werr != nil {
			fatal(werr)
		}
		return
	}
	report(res.Report)
}

func report(r *core.Report) {
	fmt.Printf("\n%d flows, %d stalled (%.1f%%), %d stalls, %.1fs total stall time\n",
		r.Flows, r.FlowsStalled, 100*float64(r.FlowsStalled)/float64(max(r.Flows, 1)),
		r.TotalStalls, r.TotalStallTime.Seconds())

	t := stats.NewTable("\nStall causes:", "category", "cause", "# %", "time %")
	for _, c := range []core.Cause{
		core.CauseDataUnavailable, core.CauseResourceConstraint,
		core.CauseClientIdle, core.CauseZeroWindow,
		core.CausePacketDelay, core.CauseTimeoutRetrans, core.CauseUndetermined,
	} {
		t.AddRow(core.CategoryOf(c).String(), c.String(),
			stats.Percent(r.CausePctCount(c)), stats.Percent(r.CausePctTime(c)))
	}
	fmt.Println(t.String())

	if r.CountByCause[core.CauseTimeoutRetrans] > 0 {
		rt := stats.NewTable("Timeout-retransmission breakdown:", "cause", "# %", "time %")
		for _, c := range []core.RetransCause{
			core.RetransDouble, core.RetransTail, core.RetransSmallCwnd,
			core.RetransSmallRwnd, core.RetransContinuousLoss,
			core.RetransAckDelayLoss, core.RetransUndetermined,
		} {
			rt.AddRow(c.String(),
				stats.Percent(r.RetransPctCount(c)), stats.Percent(r.RetransPctTime(c)))
		}
		fmt.Println(rt.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tapo:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
