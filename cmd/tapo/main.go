// Command tapo is the TCP stall diagnosis tool of the paper: it reads
// server-side packet captures (classic .pcap), reconstructs every
// flow's congestion state, detects stalls — gaps exceeding
// min(2·SRTT, RTO) — and classifies each stall's root cause with the
// Figure-5 decision tree plus the Table-5 retransmission breakdown.
//
// Usage:
//
//	tapo [-port N] [-v] capture.pcap
//	tapo -demo              # run on a freshly synthesized trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

func main() {
	port := flag.Uint("port", 80, "server TCP port (identifies direction)")
	verbose := flag.Bool("v", false, "print every stall of every flow")
	jsonOut := flag.Bool("json", false, "emit the full analysis as JSON on stdout")
	demo := flag.Bool("demo", false, "analyze a synthetic web-search trace instead of a file")
	tau := flag.Float64("tau", 2, "stall threshold multiplier in min(tau*SRTT, RTO)")
	flag.Parse()

	var flows []*trace.Flow
	switch {
	case *demo:
		fmt.Fprintln(os.Stderr, "synthesizing 80 web-search flows...")
		for _, r := range workload.Generate(workload.WebSearch(), 42, workload.GenOptions{Flows: 80}) {
			if r.Flow != nil {
				flows = append(flows, r.Flow)
			}
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var ierr error
		flows, ierr = trace.ImportPcap(f, trace.ImportConfig{ServerPort: uint16(*port)})
		if ierr != nil {
			fatal(ierr)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tapo [-port N] [-v] capture.pcap | tapo -demo")
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	var analyses []*core.FlowAnalysis
	for _, fl := range flows {
		a := core.Analyze(fl, cfg)
		analyses = append(analyses, a)
		if *verbose && !*jsonOut && len(a.Stalls) > 0 {
			fmt.Printf("flow %s: %d stalls, %.1f%% of lifetime stalled\n",
				a.FlowID, len(a.Stalls), 100*a.StalledFraction())
			for _, st := range a.Stalls {
				cause := st.Cause.String()
				if st.Cause == core.CauseTimeoutRetrans {
					cause += "/" + st.RetransCause.String()
					if st.RetransCause == core.RetransDouble {
						cause += "(" + st.DoubleKind.String() + ")"
					}
				}
				fmt.Printf("  %9.3fs +%6.0fms  %-32s state=%v in_flight=%d rwnd=%d\n",
					st.Start.Seconds(), float64(st.Duration)/float64(time.Millisecond),
					cause, st.CaState, st.InFlight, st.Rwnd)
			}
		}
	}

	if *jsonOut {
		if err := emitJSON(os.Stdout, analyses); err != nil {
			fatal(err)
		}
		return
	}
	report(analyses)
}

// jsonStall is the machine-readable stall record.
type jsonStall struct {
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Cause      string  `json:"cause"`
	Retrans    string  `json:"retrans_cause,omitempty"`
	DoubleKind string  `json:"double_kind,omitempty"`
	CaState    string  `json:"ca_state"`
	InFlight   int     `json:"in_flight"`
	Rwnd       int     `json:"rwnd"`
}

// jsonFlow is the machine-readable per-flow analysis.
type jsonFlow struct {
	ID            string      `json:"id"`
	Service       string      `json:"service,omitempty"`
	DataBytes     int64       `json:"data_bytes"`
	DataPackets   int         `json:"data_packets"`
	Retrans       int         `json:"retransmissions"`
	AvgRTTms      float64     `json:"avg_rtt_ms"`
	AvgRTOms      float64     `json:"avg_rto_ms,omitempty"`
	InitRwnd      int         `json:"init_rwnd"`
	ZeroRwnd      bool        `json:"zero_rwnd_seen"`
	TransmissionS float64     `json:"transmission_s"`
	StalledS      float64     `json:"stalled_s"`
	Stalls        []jsonStall `json:"stalls"`
}

func emitJSON(w *os.File, analyses []*core.FlowAnalysis) error {
	out := make([]jsonFlow, 0, len(analyses))
	for _, a := range analyses {
		jf := jsonFlow{
			ID:            a.FlowID,
			Service:       a.Service,
			DataBytes:     a.DataBytes,
			DataPackets:   a.DataPackets,
			Retrans:       a.RetransPackets,
			AvgRTTms:      a.AvgRTT(),
			AvgRTOms:      a.AvgRTO(),
			InitRwnd:      a.InitRwnd,
			ZeroRwnd:      a.ZeroRwndSeen,
			TransmissionS: a.TransmissionTime.Seconds(),
			StalledS:      a.TotalStallTime.Seconds(),
			Stalls:        []jsonStall{},
		}
		for _, st := range a.Stalls {
			js := jsonStall{
				StartMS:    st.Start.Milliseconds(),
				DurationMS: float64(st.Duration) / float64(time.Millisecond),
				Cause:      st.Cause.String(),
				CaState:    st.CaState.String(),
				InFlight:   st.InFlight,
				Rwnd:       st.Rwnd,
			}
			if st.Cause == core.CauseTimeoutRetrans {
				js.Retrans = st.RetransCause.String()
				if st.RetransCause == core.RetransDouble {
					js.DoubleKind = st.DoubleKind.String()
				}
			}
			jf.Stalls = append(jf.Stalls, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func report(analyses []*core.FlowAnalysis) {
	r := core.NewReport(analyses)
	fmt.Printf("\n%d flows, %d stalled (%.1f%%), %d stalls, %.1fs total stall time\n",
		r.Flows, r.FlowsStalled, 100*float64(r.FlowsStalled)/float64(max(r.Flows, 1)),
		r.TotalStalls, r.TotalStallTime.Seconds())

	t := stats.NewTable("\nStall causes:", "category", "cause", "# %", "time %")
	for _, c := range []core.Cause{
		core.CauseDataUnavailable, core.CauseResourceConstraint,
		core.CauseClientIdle, core.CauseZeroWindow,
		core.CausePacketDelay, core.CauseTimeoutRetrans, core.CauseUndetermined,
	} {
		t.AddRow(core.CategoryOf(c).String(), c.String(),
			stats.Percent(r.CausePctCount(c)), stats.Percent(r.CausePctTime(c)))
	}
	fmt.Println(t.String())

	if r.CountByCause[core.CauseTimeoutRetrans] > 0 {
		rt := stats.NewTable("Timeout-retransmission breakdown:", "cause", "# %", "time %")
		for _, c := range []core.RetransCause{
			core.RetransDouble, core.RetransTail, core.RetransSmallCwnd,
			core.RetransSmallRwnd, core.RetransContinuousLoss,
			core.RetransAckDelayLoss, core.RetransUndetermined,
		} {
			rt.AddRow(c.String(),
				stats.Percent(r.RetransPctCount(c)), stats.Percent(r.RetransPctTime(c)))
		}
		fmt.Println(rt.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tapo:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
