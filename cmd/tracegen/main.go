// Command tracegen synthesizes service workloads and writes them as
// standard .pcap captures, ready for tcpdump/tshark or for analysis
// with the tapo command.
//
// Usage:
//
//	tracegen -service web-search -flows 100 -o trace.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

func main() {
	service := flag.String("service", "web-search",
		"service model: cloud-storage | software-download | web-search")
	flows := flag.Int("flows", 50, "number of flows to generate")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("o", "trace.pcap", "output pcap path")
	flag.Parse()

	var svc workload.Service
	switch *service {
	case "cloud-storage":
		svc = workload.CloudStorage()
	case "software-download":
		svc = workload.SoftwareDownload()
	case "web-search":
		svc = workload.WebSearch()
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown service %q\n", *service)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating %d %s flows (seed %d)...\n", *flows, svc.Name, *seed)
	results := workload.Generate(svc, *seed, workload.GenOptions{Flows: *flows})
	var fl []*trace.Flow
	var pkts int
	for _, r := range results {
		if r.Flow != nil {
			fl = append(fl, r.Flow)
			pkts += len(r.Flow.Records)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.ExportPcap(f, fl, trace.ExportConfig{}); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d flows (%d packets) to %s\n", len(fl), pkts, *out)
}
