// Command livebench measures the live monitoring pipeline and writes
// the results as JSON (BENCH_live.json in CI). Three numbers matter:
//
//   - monitor throughput: records/sec through the sharded flow table
//     via the blocking ingest path, worker goroutines running;
//   - ingest latency: p50/p99 of a single IngestWait call under load;
//   - batch vs incremental: records/sec through core.Analyze versus
//     NewIncremental Feed/Flush over the same flows — the streaming
//     analyzer's overhead relative to the batch path it reimplements.
//
// With -min-rate, the process exits non-zero when monitor throughput
// lands below the floor — the CI smoke gate.
//
// Usage:
//
//	livebench [-quick] [-out BENCH_live.json] [-min-rate 100000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/live"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

type result struct {
	Quick      bool `json:"quick"`
	GoMaxProcs int  `json:"gomaxprocs"`
	Flows      int  `json:"flows"`
	Records    int  `json:"records"`

	MonitorRecordsPerSec float64 `json:"monitor_records_per_sec"`
	MonitorElapsedMS     float64 `json:"monitor_elapsed_ms"`
	IngestP50Us          float64 `json:"ingest_p50_us"`
	IngestP99Us          float64 `json:"ingest_p99_us"`

	BatchRecordsPerSec       float64 `json:"batch_records_per_sec"`
	IncrementalRecordsPerSec float64 `json:"incremental_records_per_sec"`
	IncrementalOverhead      float64 `json:"incremental_overhead_ratio"`
}

func main() {
	quick := flag.Bool("quick", false, "smaller dataset and fewer repetitions (CI smoke)")
	out := flag.String("out", "", "write the JSON result to this file (default stdout only)")
	minRate := flag.Float64("min-rate", 0, "exit non-zero when monitor records/sec is below this")
	flag.Parse()

	perSvc := 60
	reps := 5
	if *quick {
		perSvc = 25
		reps = 3
	}

	fmt.Fprintln(os.Stderr, "livebench: generating workload...")
	var flows []*trace.Flow
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 11, workload.GenOptions{Flows: perSvc}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
	}
	var events []trace.RecordEvent
	for _, f := range flows {
		for i := range f.Records {
			events = append(events, trace.RecordEvent{
				FlowID:   f.ID,
				Service:  f.Service,
				MSS:      f.MSS,
				InitRwnd: f.InitRwnd,
				Rec:      f.Records[i],
			})
		}
	}
	res := result{Quick: *quick, GoMaxProcs: runtime.GOMAXPROCS(0), Flows: len(flows), Records: len(events)}
	fmt.Fprintf(os.Stderr, "livebench: %d flows, %d records\n", len(flows), len(events))

	res.MonitorRecordsPerSec, res.MonitorElapsedMS, res.IngestP50Us, res.IngestP99Us = benchMonitor(events, reps)
	res.BatchRecordsPerSec = benchBatch(flows, reps)
	res.IncrementalRecordsPerSec = benchIncremental(flows, reps)
	if res.IncrementalRecordsPerSec > 0 {
		res.IncrementalOverhead = res.BatchRecordsPerSec / res.IncrementalRecordsPerSec
	}

	b, _ := json.MarshalIndent(&res, "", "  ")
	fmt.Println(string(b))
	if *out != "" {
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "livebench:", err)
			os.Exit(1)
		}
	}
	if *minRate > 0 && res.MonitorRecordsPerSec < *minRate {
		fmt.Fprintf(os.Stderr, "livebench: FAIL monitor %.0f records/sec < floor %.0f\n",
			res.MonitorRecordsPerSec, *minRate)
		os.Exit(1)
	}
}

// benchMonitor pushes the event set through a running Monitor reps
// times and reports the best run's throughput plus per-call ingest
// latency quantiles sampled across all runs.
func benchMonitor(events []trace.RecordEvent, reps int) (rate, elapsedMS, p50us, p99us float64) {
	lat := stats.NewSample(len(events) * reps)
	best := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		m := live.New(live.Config{RingSize: 1 << 14})
		m.Start()
		// Sample every 64th call so timer overhead doesn't dominate
		// the measured loop.
		start := time.Now()
		for i := range events {
			if i%64 == 0 {
				t0 := time.Now()
				m.IngestWait(events[i])
				lat.Add(float64(time.Since(t0)) / float64(time.Microsecond))
			} else {
				m.IngestWait(events[i])
			}
		}
		feed := time.Since(start)
		m.Close()
		if feed < best {
			best = feed
		}
	}
	rate = float64(len(events)) / best.Seconds()
	return rate, float64(best) / float64(time.Millisecond), lat.Quantile(0.50), lat.Quantile(0.99)
}

func benchBatch(flows []*trace.Flow, reps int) float64 {
	var records int
	for _, f := range flows {
		records += len(f.Records)
	}
	best := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, f := range flows {
			core.Analyze(f, core.Config{})
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(records*1) / best.Seconds()
}

func benchIncremental(flows []*trace.Flow, reps int) float64 {
	var records int
	for _, f := range flows {
		records += len(f.Records)
	}
	best := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, f := range flows {
			inc := core.NewIncremental(core.Config{})
			inc.SetMeta(core.FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
			for i := range f.Records {
				inc.Feed(&f.Records[i])
			}
			inc.Flush()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(records) / best.Seconds()
}
