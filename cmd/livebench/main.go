// Command livebench measures the live monitoring pipeline and writes
// the results as JSON (BENCH_live.json in CI). Four numbers matter:
//
//   - monitor throughput: records/sec through the sharded flow table
//     via the blocking ingest path, worker goroutines running;
//   - ingest latency: p50/p99 of a single IngestWait call under load;
//   - batch vs incremental: records/sec through core.Analyze versus
//     NewIncremental Feed/Flush over the same flows — the streaming
//     analyzer's overhead relative to the batch path it reimplements;
//   - flight overhead: the incremental analyzer with a flight
//     recorder attached versus without — the price of evidence;
//   - triage speedup: two-phase triage versus always-on analysis on a
//     healthy-heavy traffic mix (the paper's regime: stalls are rare
//     events buried in massive healthy traffic).
//
// Derived ratios that cannot be computed (a zero or unmeasured
// denominator, a non-finite quotient) are reported as -1 — a sentinel
// the gates skip — rather than JSON-invalid NaN/Inf or a silent 0
// that would trip a floor.
//
// Gates (each exits non-zero when violated):
//
//	-min-rate N          monitor throughput floor (CI smoke)
//	-flight-min-rate N   recorder-enabled throughput floor
//	-triage-min-ratio F  triage speedup floor on the healthy-heavy mix
//	                     (CI uses 3)
//	-max-allocs-per-record F  fail when the always-on monitor pipeline
//	                     allocates more than F heap objects per record
//	                     (CI uses 2; the hot-path allocation budget)
//	-baseline FILE       compare against a previous BENCH_live.json:
//	-max-regress F       fail when incremental (recorder disabled)
//	                     throughput regressed more than F (e.g. 0.02)
//	                     versus the baseline — the recorder's nil fast
//	                     path must stay near-zero cost.
//
// Usage:
//
//	livebench [-quick] [-out BENCH_live.json] [-min-rate 100000]
//	          [-flight-min-rate 100000] [-baseline BENCH_live.json -max-regress 0.02]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"runtime"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/flight"
	"tcpstall/internal/live"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/triage"
	"tcpstall/internal/workload"
)

type result struct {
	Quick      bool `json:"quick"`
	GoMaxProcs int  `json:"gomaxprocs"`
	Flows      int  `json:"flows"`
	Records    int  `json:"records"`

	MonitorRecordsPerSec float64 `json:"monitor_records_per_sec"`
	MonitorElapsedMS     float64 `json:"monitor_elapsed_ms"`
	IngestP50Us          float64 `json:"ingest_p50_us"`
	IngestP99Us          float64 `json:"ingest_p99_us"`

	// MonitorAllocsPerRecord is heap allocations per record across the
	// always-on monitor's whole pipeline (batch intake, shard
	// processing, eviction), measured with ReadMemStats deltas over the
	// final rep; TriageAllocsPerRecord is the same for the two-phase
	// mix. -1 when unmeasurable.
	MonitorAllocsPerRecord float64 `json:"monitor_allocs_per_record"`
	TriageAllocsPerRecord  float64 `json:"triage_allocs_per_record"`

	BatchRecordsPerSec       float64 `json:"batch_records_per_sec"`
	IncrementalRecordsPerSec float64 `json:"incremental_records_per_sec"`
	IncrementalOverhead      float64 `json:"incremental_overhead_ratio"`

	// FlightRecordsPerSec drives the same incremental loop with a
	// flight recorder attached; FlightOverhead is disabled/enabled —
	// how much slower evidence capture makes the analyzer.
	FlightRecordsPerSec float64 `json:"flight_records_per_sec"`
	FlightOverhead      float64 `json:"flight_overhead_ratio"`

	// Healthy-heavy triage scenario: the same monitor fed a traffic
	// mix that is overwhelmingly pathology-free (workload.Healthy)
	// with a thin slice of standard sick flows — the regime two-phase
	// triage exists for. TriageRecordsPerSec runs with triage on,
	// MixMonitorRecordsPerSec always-on over the identical events;
	// TriageSpeedup is their ratio (CI gates it ≥ 3).
	MixFlows                int     `json:"mix_flows"`
	MixRecords              int     `json:"mix_records"`
	TriageRecordsPerSec     float64 `json:"triage_records_per_sec"`
	MixMonitorRecordsPerSec float64 `json:"mix_monitor_records_per_sec"`
	// TriageOverMonitor is the gated ratio: triage throughput on the
	// healthy-heavy mix over the always-on monitor_records_per_sec
	// baseline above (CI requires ≥ 3). TriageSpeedup isolates the
	// two-phase split itself: always-on over the identical mix through
	// the identical batch-ingest path.
	TriageOverMonitor         float64 `json:"triage_over_monitor_ratio"`
	TriageSpeedup             float64 `json:"triage_speedup_ratio"`
	TriagePromotionRate       float64 `json:"triage_promotion_rate"`
	TriageTruncatedPromotions uint64  `json:"triage_truncated_promotions"`
}

func main() {
	quick := flag.Bool("quick", false, "smaller dataset and fewer repetitions (CI smoke)")
	out := flag.String("out", "", "write the JSON result to this file (default stdout only)")
	minRate := flag.Float64("min-rate", 0, "exit non-zero when monitor records/sec is below this")
	flightMinRate := flag.Float64("flight-min-rate", 0, "exit non-zero when recorder-enabled records/sec is below this")
	triageMinRatio := flag.Float64("triage-min-ratio", 0, "exit non-zero when healthy-heavy triage records/sec is below this multiple of the always-on monitor baseline")
	maxAllocs := flag.Float64("max-allocs-per-record", -1, "exit non-zero when the always-on monitor allocates more than this many heap objects per record (<0 disables)")
	baseline := flag.String("baseline", "", "compare against this previous BENCH_live.json")
	maxRegress := flag.Float64("max-regress", 0.02, "with -baseline: max allowed fractional regression of recorder-disabled incremental throughput")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	logger := newLogger(*logFormat)

	perSvc := 60
	reps := 5
	if *quick {
		perSvc = 25
		reps = 3
	}

	logger.Info("generating workload", "flows_per_service", perSvc)
	var flows []*trace.Flow
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 11, workload.GenOptions{Flows: perSvc}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
	}
	var events []trace.RecordEvent
	for _, f := range flows {
		for i := range f.Records {
			events = append(events, trace.RecordEvent{
				FlowID:   f.ID,
				Service:  f.Service,
				MSS:      f.MSS,
				InitRwnd: f.InitRwnd,
				Rec:      f.Records[i],
			})
		}
	}
	res := result{Quick: *quick, GoMaxProcs: runtime.GOMAXPROCS(0), Flows: len(flows), Records: len(events)}
	logger.Info("workload ready", "flows", len(flows), "records", len(events))

	res.MonitorRecordsPerSec, res.MonitorElapsedMS, res.IngestP50Us, res.IngestP99Us, res.MonitorAllocsPerRecord = benchMonitor(events, reps)
	res.BatchRecordsPerSec = benchBatch(flows, reps)
	res.IncrementalRecordsPerSec = benchIncremental(flows, reps, false)
	res.FlightRecordsPerSec = benchIncremental(flows, reps, true)
	res.IncrementalOverhead = ratio(res.BatchRecordsPerSec, res.IncrementalRecordsPerSec)
	res.FlightOverhead = ratio(res.IncrementalRecordsPerSec, res.FlightRecordsPerSec)

	mixEvents, mixFlows := healthyHeavyMix(perSvc, *quick)
	res.MixFlows, res.MixRecords = mixFlows, len(mixEvents)
	logger.Info("healthy-heavy mix ready", "flows", mixFlows, "records", len(mixEvents))
	var snap live.Snapshot
	res.TriageRecordsPerSec, res.TriageAllocsPerRecord, snap = benchMix(mixEvents, reps, true)
	res.MixMonitorRecordsPerSec, _, _ = benchMix(mixEvents, reps, false)
	res.TriageSpeedup = ratio(res.TriageRecordsPerSec, res.MixMonitorRecordsPerSec)
	res.TriageOverMonitor = ratio(res.TriageRecordsPerSec, res.MonitorRecordsPerSec)
	var promotions uint64
	for _, n := range snap.TriagePromotions {
		promotions += n
	}
	// First-time promotions can't be negative, but compute in floats so
	// a counter glitch surfaces as the sentinel, not a 2^64 rate.
	res.TriagePromotionRate = ratio(float64(promotions)-float64(snap.TriageRepromotions), float64(snap.FlowsSeen))
	res.TriageTruncatedPromotions = snap.TriageTruncatedPromotions

	b, _ := json.MarshalIndent(&res, "", "  ")
	fmt.Println(string(b))
	if *out != "" {
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			logger.Error("write failed", "path", *out, "err", err)
			os.Exit(1)
		}
	}

	fail := false
	if *minRate > 0 && res.MonitorRecordsPerSec < *minRate {
		logger.Error("FAIL monitor throughput below floor",
			"records_per_sec", res.MonitorRecordsPerSec, "floor", *minRate)
		fail = true
	}
	if *flightMinRate > 0 && res.FlightRecordsPerSec < *flightMinRate {
		logger.Error("FAIL recorder-enabled throughput below floor",
			"records_per_sec", res.FlightRecordsPerSec, "floor", *flightMinRate)
		fail = true
	}
	if *triageMinRatio > 0 && res.TriageOverMonitor >= 0 && res.TriageOverMonitor < *triageMinRatio {
		logger.Error("FAIL triage throughput below floor on the healthy-heavy mix",
			"triage_records_per_sec", res.TriageRecordsPerSec,
			"monitor_records_per_sec", res.MonitorRecordsPerSec,
			"ratio", res.TriageOverMonitor, "floor", *triageMinRatio)
		fail = true
	}
	if *maxAllocs >= 0 && res.MonitorAllocsPerRecord >= 0 && res.MonitorAllocsPerRecord > *maxAllocs {
		logger.Error("FAIL monitor pipeline allocates above the per-record budget",
			"allocs_per_record", res.MonitorAllocsPerRecord, "budget", *maxAllocs)
		fail = true
	}
	if *baseline != "" && !checkBaseline(logger, *baseline, &res, *maxRegress) {
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// newLogger configures slog; "json" for log shippers, text otherwise.
func newLogger(format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}

// checkBaseline enforces the recorder fast-path gate: with the
// recorder disabled, the incremental analyzer must stay within
// maxRegress of the baseline run's throughput.
func checkBaseline(logger *slog.Logger, path string, res *result, maxRegress float64) bool {
	b, err := os.ReadFile(path)
	if err != nil {
		logger.Error("baseline unreadable", "path", path, "err", err)
		return false
	}
	var base result
	if err := json.Unmarshal(b, &base); err != nil {
		logger.Error("baseline unparsable", "path", path, "err", err)
		return false
	}
	if base.IncrementalRecordsPerSec <= 0 {
		logger.Warn("baseline has no incremental rate; skipping regression gate", "path", path)
		return true
	}
	floor := base.IncrementalRecordsPerSec * (1 - maxRegress)
	if res.IncrementalRecordsPerSec < floor {
		logger.Error("FAIL recorder-disabled incremental throughput regressed past the gate",
			"records_per_sec", res.IncrementalRecordsPerSec,
			"baseline", base.IncrementalRecordsPerSec,
			"max_regress", maxRegress)
		return false
	}
	logger.Info("baseline gate passed",
		"records_per_sec", res.IncrementalRecordsPerSec,
		"baseline", base.IncrementalRecordsPerSec,
		"max_regress", maxRegress)
	return true
}

// ratio returns num/den, or the -1 sentinel when the denominator is
// not positive or the quotient is not finite. The gates treat -1 as
// "not measurable" and skip; serializing NaN/Inf would corrupt the
// JSON, and a silent 0 would trip every floor.
func ratio(num, den float64) float64 {
	if den <= 0 {
		return -1
	}
	q := num / den
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return -1
	}
	return q
}

// benchChunk is the batch-intake granularity: the chunk size a replay
// source hands IngestBatchWait, matching the shard drain batch.
const benchChunk = 512

// benchMonitor pushes the event set through a running Monitor reps
// times over the batch intake path — the line-rate path replay and
// generation sources use — and reports the best run's throughput plus
// heap allocations per record across the final rep's whole pipeline
// (intake, shard processing, eviction; ReadMemStats deltas, so shard
// goroutine allocations count too). Per-call latency quantiles come
// from one extra per-record IngestWait pass, sampled every 64th call
// so timer overhead doesn't dominate the measured loop.
func benchMonitor(events []trace.RecordEvent, reps int) (rate, elapsedMS, p50us, p99us, allocsPerRec float64) {
	best := time.Duration(1 << 62)
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		m := live.New(live.Config{RingSize: 1 << 14})
		m.Start()
		last := r == reps-1
		if last {
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		for i := 0; i < len(events); i += benchChunk {
			end := i + benchChunk
			if end > len(events) {
				end = len(events)
			}
			m.IngestBatchWait(events[i:end])
		}
		feed := time.Since(start)
		m.Close()
		if last {
			runtime.ReadMemStats(&ms1)
		}
		if feed < best {
			best = feed
		}
	}
	allocsPerRec = ratio(float64(ms1.Mallocs-ms0.Mallocs), float64(len(events)))

	lat := stats.NewSample(len(events)/64 + 1)
	m := live.New(live.Config{RingSize: 1 << 14})
	m.Start()
	for i := range events {
		if i%64 == 0 {
			t0 := time.Now()
			m.IngestWait(events[i])
			lat.Add(float64(time.Since(t0)) / float64(time.Microsecond))
		} else {
			m.IngestWait(events[i])
		}
	}
	m.Close()

	rate = float64(len(events)) / best.Seconds()
	return rate, float64(best) / float64(time.Millisecond), lat.Quantile(0.50), lat.Quantile(0.99), allocsPerRec
}

// healthyHeavyMix builds the triage benchmark's traffic: for every
// service, a large population of pathology-free flows
// (workload.Healthy) plus ~3% standard sick flows, their records
// interleaved round-robin so every shard sees the mix.
func healthyHeavyMix(perSvc int, quick bool) ([]trace.RecordEvent, int) {
	healthyPer := perSvc * 4
	sickPer := healthyPer / 32
	if sickPer < 1 {
		sickPer = 1
	}
	var flows []*trace.Flow
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(workload.Healthy(svc), 13, workload.GenOptions{Flows: healthyPer}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
		for _, fr := range workload.Generate(svc, 17, workload.GenOptions{Flows: sickPer}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
	}
	var evs []trace.RecordEvent
	for round := 0; ; round++ {
		fed := false
		for _, f := range flows {
			if round < len(f.Records) {
				evs = append(evs, trace.RecordEvent{
					FlowID:   f.ID,
					Service:  f.Service,
					MSS:      f.MSS,
					InitRwnd: f.InitRwnd,
					Rec:      f.Records[round],
				})
				fed = true
			}
		}
		if !fed {
			break
		}
	}
	return evs, len(flows)
}

// benchMix pushes the healthy-heavy events through a Monitor reps
// times — triage two-phase or always-on — reporting the best run's
// throughput, the final rep's allocations per record, and the final
// run's counter snapshot.
func benchMix(events []trace.RecordEvent, reps int, triaged bool) (rate, allocsPerRec float64, snap live.Snapshot) {
	best := time.Duration(1 << 62)
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		cfg := live.Config{RingSize: 1 << 14}
		if triaged {
			cfg.Triage = &triage.Config{}
		}
		m := live.New(cfg)
		m.Start()
		last := r == reps-1
		if last {
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		for i := 0; i < len(events); i += benchChunk {
			end := i + benchChunk
			if end > len(events) {
				end = len(events)
			}
			m.IngestBatchWait(events[i:end])
		}
		feed := time.Since(start)
		m.Close()
		if last {
			runtime.ReadMemStats(&ms1)
		}
		if feed < best {
			best = feed
		}
		snap = m.Snapshot()
	}
	allocsPerRec = ratio(float64(ms1.Mallocs-ms0.Mallocs), float64(len(events)))
	return float64(len(events)) / best.Seconds(), allocsPerRec, snap
}

func benchBatch(flows []*trace.Flow, reps int) float64 {
	var records int
	for _, f := range flows {
		records += len(f.Records)
	}
	best := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, f := range flows {
			core.Analyze(f, core.Config{})
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(records*1) / best.Seconds()
}

// benchIncremental measures the streaming analyzer; withFlight
// attaches a default-config flight recorder to every flow, which is
// exactly what tapod -flight does per admitted flow.
func benchIncremental(flows []*trace.Flow, reps int, withFlight bool) float64 {
	var records int
	for _, f := range flows {
		records += len(f.Records)
	}
	best := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, f := range flows {
			inc := core.NewIncremental(core.Config{})
			inc.SetMeta(core.FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
			if withFlight {
				inc.SetRecorder(flight.NewRecorder(flight.Config{}))
			}
			for i := range f.Records {
				inc.Feed(&f.Records[i])
			}
			inc.Flush()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(records) / best.Seconds()
}
