// Command fleetbench measures the fleet tier: N in-process tapod
// members (each a live.Monitor wrapped in a fleet.Member) feeding a
// single tapoctl head over real loopback HTTP, and writes the results
// as JSON (BENCH_fleet.json in CI).
//
// The headline number is the scale ratio. Each member first feeds its
// event share ALONE — serially, with its push ticker running — so the
// per-member rate isolates what the fleet layer costs (snapshotting,
// JSON marshaling, HTTP pushes, config checks on the ingest path)
// from how many cores the machine happens to have. The aggregate is
// the sum of those per-member rates; the ratio divides it by N times
// the single-member baseline measured the same way. On an ideal
// machine the ratio is 1.0; CI gates it at 0.8. A fully concurrent
// run (all members feeding at once) is also reported, but only
// informationally — on a small CI box it measures core count, not the
// fleet layer.
//
// The head-side number is merge latency: every accepted push folds
// the fleet's retired and live snapshots into fresh totals under the
// head lock, and the p50/p99 of that merge (in ms) comes from the
// head's own reservoir. CI gates the p99 at 5ms.
//
// Members run with stall-event digests at the default size, so both
// gated numbers include the observability layer's cost end to end —
// capture in the monitor, shipping on the wire, event-ring ingestion
// at the head. The stall_events* fields report that traffic.
//
// Gates (each exits non-zero when violated):
//
//	-min-scale F         aggregate serial-isolation throughput must be
//	                     at least F × members × single-member baseline
//	                     (CI uses 0.8)
//	-max-merge-p99-ms F  head merge latency p99 ceiling (CI uses 5)
//
// Usage:
//
//	fleetbench [-quick] [-members 8] [-out BENCH_fleet.json]
//	           [-min-scale 0.8] [-max-merge-p99-ms 5]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"tcpstall/internal/fleet"
	"tcpstall/internal/live"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

type result struct {
	Quick      bool `json:"quick"`
	GoMaxProcs int  `json:"gomaxprocs"`
	Members    int  `json:"members"`

	FlowsPerMember   int `json:"flows_per_member"`
	RecordsPerMember int `json:"records_per_member"`

	// SingleRecordsPerSec is the baseline: one member, feeding alone,
	// pushes running. AggregateRecordsPerSec sums the serial-isolation
	// per-member rates; ScaleRatio = aggregate / (members × single),
	// the gated number. ConcurrentRecordsPerSec runs every member at
	// once and is informational only (it measures core count).
	SingleRecordsPerSec     float64 `json:"single_records_per_sec"`
	AggregateRecordsPerSec  float64 `json:"aggregate_records_per_sec"`
	ScaleRatio              float64 `json:"scale_ratio"`
	ConcurrentRecordsPerSec float64 `json:"concurrent_records_per_sec"`

	MergeP50MS float64 `json:"merge_p50_ms"`
	MergeP99MS float64 `json:"merge_p99_ms"`
	MergeCount int     `json:"merge_count"`

	Pushes              uint64  `json:"pushes"`
	FinalPushes         uint64  `json:"final_pushes"`
	SnapshotBytes       uint64  `json:"snapshot_bytes"`
	SnapshotBytesPerSec float64 `json:"snapshot_bytes_per_sec"`

	// Event-digest overhead. Members run with digests at the default
	// size, so every gated number above already includes the cost of
	// capturing, shipping, and ingesting stall events; these report how
	// much event traffic that was.
	StallEvents        uint64  `json:"stall_events"`
	StallEventsPerPush float64 `json:"stall_events_per_push"`
	DigestDropped      uint64  `json:"digest_dropped"`
	EventsPublished    uint64  `json:"events_published"`

	FleetIngested uint64  `json:"fleet_records_ingested"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

func main() {
	quick := flag.Bool("quick", false, "smaller dataset and fewer repetitions (CI smoke)")
	members := flag.Int("members", 8, "fleet size")
	out := flag.String("out", "", "write the JSON result to this file (default stdout only)")
	pushInterval := flag.Duration("push-interval", 50*time.Millisecond, "member push ticker during feeds")
	minScale := flag.Float64("min-scale", 0, "exit non-zero when scale_ratio is below this (CI uses 0.8)")
	maxMergeP99 := flag.Float64("max-merge-p99-ms", 0, "exit non-zero when head merge p99 exceeds this many ms (CI uses 5)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	logger := newLogger(*logFormat)
	if *members < 1 {
		logger.Error("need at least one member", "members", *members)
		os.Exit(2)
	}

	// Shares must comfortably exceed the monitor ring (16K records) so
	// ring backpressure engages and the feed loop measures processing,
	// not queueing.
	perSvc := 30
	reps := 3
	if *quick {
		perSvc = 12
		reps = 2
	}

	// Every member feeds the IDENTICAL share — same events, its own
	// monitor — so each per-member rate measures the same work and the
	// aggregate is exactly comparable to N × the single baseline.
	// (Generation seeds shift flow pathology mixes enough to move the
	// analyzer cost several-fold, which would poison the ratio.)
	share := memberEvents(100, perSvc)
	res := result{
		Quick:            *quick,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Members:          *members,
		FlowsPerMember:   perSvc * len(workload.Services()),
		RecordsPerMember: len(share),
	}
	logger.Info("workload ready", "members", *members,
		"flows_per_member", res.FlowsPerMember, "records_per_member", len(share))

	head := fleet.NewHead(fleet.HeadConfig{})
	srv, headURL, err := serveHead(head)
	if err != nil {
		logger.Error("head listen failed", "err", err)
		os.Exit(1)
	}
	defer srv.Close()
	logger.Info("fleet head serving", "url", headURL)
	benchStart := time.Now()

	// Phase 1: single-member baseline, best of reps. Each rep is a full
	// incarnation — register, feed, final push — so re-registration and
	// epoch retirement are part of what gets measured.
	rate, err := bestRate(headURL, "bench-single", *pushInterval, share, reps)
	if err != nil {
		logger.Error("baseline member failed", "err", err)
		os.Exit(1)
	}
	res.SingleRecordsPerSec = rate
	logger.Info("single-member baseline", "records_per_sec", rate)

	// Phase 2: serial isolation — each member feeds its share alone,
	// best of the same rep count as the baseline. The sum approximates
	// fleet aggregate throughput with the machine out of the picture;
	// the gate compares it to N × baseline.
	for i := 0; i < *members; i++ {
		rate, err := bestRate(headURL, fmt.Sprintf("bench-m%d", i), *pushInterval, share, reps)
		if err != nil {
			logger.Error("fleet member failed", "member", i, "err", err)
			os.Exit(1)
		}
		res.AggregateRecordsPerSec += rate
	}
	res.ScaleRatio = ratio(res.AggregateRecordsPerSec, float64(*members)*res.SingleRecordsPerSec)
	logger.Info("serial-isolation fleet",
		"aggregate_records_per_sec", res.AggregateRecordsPerSec, "scale_ratio", res.ScaleRatio)

	// Phase 3: all members at once — wall-clock aggregate, reported but
	// not gated (it saturates cores long before the fleet layer).
	res.ConcurrentRecordsPerSec = feedConcurrent(logger, headURL, *pushInterval, share, *members)
	logger.Info("concurrent fleet", "records_per_sec", res.ConcurrentRecordsPerSec)

	elapsed := time.Since(benchStart)
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	st := head.Stats()
	res.MergeP50MS = st.MergeP50MS
	res.MergeP99MS = st.MergeP99MS
	res.MergeCount = st.MergeCount
	res.Pushes = st.Pushes
	res.FinalPushes = st.FinalPushes
	res.SnapshotBytes = st.SnapshotBytes
	res.SnapshotBytesPerSec = ratio(float64(st.SnapshotBytes), elapsed.Seconds())
	res.StallEvents = st.StallEvents
	res.StallEventsPerPush = ratio(float64(st.StallEvents), float64(st.Pushes))
	res.DigestDropped = st.DigestDropped
	res.EventsPublished = st.EventsPublished
	if tot, err := head.Totals(); err == nil {
		res.FleetIngested = tot.Ingested
	}

	b, _ := json.MarshalIndent(&res, "", "  ")
	fmt.Println(string(b))
	if *out != "" {
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			logger.Error("write failed", "path", *out, "err", err)
			os.Exit(1)
		}
	}

	fail := false
	if *minScale > 0 && res.ScaleRatio >= 0 && res.ScaleRatio < *minScale {
		logger.Error("FAIL fleet aggregate below the scale floor",
			"aggregate_records_per_sec", res.AggregateRecordsPerSec,
			"single_records_per_sec", res.SingleRecordsPerSec,
			"scale_ratio", res.ScaleRatio, "floor", *minScale)
		fail = true
	}
	if *maxMergeP99 > 0 && res.MergeCount > 0 && res.MergeP99MS > *maxMergeP99 {
		logger.Error("FAIL head merge latency p99 above ceiling",
			"merge_p99_ms", res.MergeP99MS, "ceiling", *maxMergeP99)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// memberEvents generates one member's share: flowsPerSvc flows of
// every workload service, flattened into the record-event stream a
// capture source would feed.
func memberEvents(seed int64, flowsPerSvc int) []trace.RecordEvent {
	var evs []trace.RecordEvent
	for _, svc := range workload.Services() {
		evs = appendFlows(evs, svc, seed, flowsPerSvc)
	}
	return evs
}

func appendFlows(evs []trace.RecordEvent, svc workload.Service, seed int64, flows int) []trace.RecordEvent {
	for _, fr := range workload.Generate(svc, seed, workload.GenOptions{Flows: flows}) {
		f := fr.Flow
		for i := range f.Records {
			evs = append(evs, trace.RecordEvent{
				FlowID:   f.ID,
				Service:  f.Service,
				MSS:      f.MSS,
				InitRwnd: f.InitRwnd,
				Rec:      f.Records[i],
			})
		}
	}
	return evs
}

// benchChunk matches the batch-intake granularity replay sources use.
const benchChunk = 512

// bestRate runs reps full member incarnations and keeps the fastest.
func bestRate(headURL, id string, interval time.Duration, events []trace.RecordEvent, reps int) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		rate, err := feedMember(headURL, id, interval, events)
		if err != nil {
			return 0, err
		}
		slog.Info("rep", "id", id, "rep", r, "rate", rate)
		if rate > best {
			best = rate
		}
	}
	return best, nil
}

// feedMember runs one full member incarnation against the head:
// register, feed every event through the member's batch path (config
// apply + sampling + monitor intake) with the push ticker running,
// then close (settle + final push). Returns the feed-loop throughput.
func feedMember(headURL, id string, interval time.Duration, events []trace.RecordEvent) (float64, error) {
	mon := live.New(live.Config{RingSize: 1 << 14})
	mon.Start()
	mb, err := fleet.NewMember(fleet.MemberConfig{
		ID: id, Head: headURL, Monitor: mon, PushInterval: interval,
	})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = mb.Run(ctx) // Register + ticker pushes until cancel
	}()

	start := time.Now()
	for i := 0; i < len(events); i += benchChunk {
		end := i + benchChunk
		if end > len(events) {
			end = len(events)
		}
		mb.IngestBatch(events[i:end])
	}
	feed := time.Since(start)
	cancel()
	wg.Wait()
	closeCtx, closeCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer closeCancel()
	if err := mb.Close(closeCtx); err != nil {
		return 0, err
	}
	return ratio(float64(len(events)), feed.Seconds()), nil
}

// feedConcurrent runs every member's feed at the same time and
// returns wall-clock aggregate throughput. A member failure logs and
// zeros the result rather than aborting — this phase is informational.
func feedConcurrent(logger *slog.Logger, headURL string, interval time.Duration, share []trace.RecordEvent, members int) float64 {
	var wg sync.WaitGroup
	errs := make([]error, members)
	total := members * len(share)
	start := time.Now()
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = feedMember(headURL, fmt.Sprintf("bench-c%d", i), interval, share)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			logger.Error("concurrent member failed", "member", i, "err", err)
			return 0
		}
	}
	return ratio(float64(total), elapsed.Seconds())
}

// serveHead exposes the head on a loopback listener so members push
// over the same HTTP stack production uses.
func serveHead(head *fleet.Head) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: fleet.NewHandler(head)}
	go func() {
		// Serve returns ErrServerClosed once main's deferred srv.Close
		// fires; anything else means the bench lost its head mid-run,
		// which otherwise surfaces only as every member timing out.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("head server failed", "err", err)
		}
	}()
	return srv, "http://" + ln.Addr().String(), nil
}

// ratio returns num/den, or -1 when the denominator is not positive —
// the sentinel the gates skip, rather than JSON-invalid NaN/Inf.
func ratio(num, den float64) float64 {
	if den <= 0 {
		return -1
	}
	return num / den
}

// newLogger configures slog; "json" for log shippers, text otherwise.
func newLogger(format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}
