// Command srtobench is the mitigation A/B harness: it runs a service
// workload under native Linux recovery, TLP and S-RTO with identical
// seeds and reports latency quantiles and retransmission overhead
// (Tables 8 and 9), plus optional S-RTO parameter sweeps for the
// ablations discussed in DESIGN.md.
//
// Usage:
//
//	srtobench [-flows N] [-seed N]
//	srtobench -sweep t1     # T1 activation-threshold sweep
//	srtobench -sweep t2     # cwnd-halving-guard sweep
//	srtobench -sweep mult   # probe-timer multiple sweep
//	srtobench -all          # all five strategies incl. TCP-NCL, Early Retransmit
package main

import (
	"flag"
	"fmt"
	"os"

	"tcpstall/internal/experiments"
	"tcpstall/internal/mitigation"
	"tcpstall/internal/stats"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/workload"
)

func main() {
	flows := flag.Int("flows", 400, "flows per strategy")
	seed := flag.Int64("seed", 777, "RNG seed")
	sweep := flag.String("sweep", "", "ablation sweep: t1 | t2 | mult")
	all := flag.Bool("all", false, "compare all five strategies (native, ER, TLP, TCP-NCL, S-RTO)")
	flag.Parse()

	if *all {
		compareAll(*seed, *flows)
		return
	}

	switch *sweep {
	case "":
		_, t8 := experiments.Table8(*seed, *flows, *flows)
		fmt.Println(t8)
		_, t9 := experiments.Table9(*seed, *flows, *flows/2)
		fmt.Println(t9)
		_, fr := experiments.FloorRegimeComparison(*seed, *flows)
		fmt.Println(fr)
		_, tp := experiments.LargeFlowThroughput(*seed, *flows/2)
		fmt.Println(tp)
	case "t1":
		sweepParam("T1", []int{2, 5, 10, 20, 1 << 20}, func(v int) mitigation.SRTOConfig {
			return mitigation.SRTOConfig{T1: v, T2: 5}
		}, *seed, *flows)
	case "t2":
		sweepParam("T2", []int{1, 3, 5, 10, 1 << 20}, func(v int) mitigation.SRTOConfig {
			return mitigation.SRTOConfig{T1: 10, T2: v}
		}, *seed, *flows)
	case "mult":
		ms := []float64{1.5, 2, 3, 4}
		t := stats.NewTable("S-RTO probe-timer multiple sweep (cloud-storage short flows).",
			"multiple", "mean latency", "p90", "retrans ratio")
		for _, m := range ms {
			mean, p90, ratio := runOne(*seed, *flows, mitigation.SRTOConfig{T1: 10, T2: 5, RTTMultiple: m})
			t.AddRow(fmt.Sprintf("%.1f·RTT", m),
				fmt.Sprintf("%.0fms", mean), fmt.Sprintf("%.0fms", p90),
				fmt.Sprintf("%.2f%%", ratio))
		}
		fmt.Println(t.String())
	default:
		fmt.Fprintf(os.Stderr, "srtobench: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

func sweepParam(name string, values []int, cfg func(int) mitigation.SRTOConfig, seed int64, flows int) {
	t := stats.NewTable(fmt.Sprintf("S-RTO %s sweep (cloud-storage short flows).", name),
		name, "mean latency", "p90", "retrans ratio")
	for _, v := range values {
		label := fmt.Sprintf("%d", v)
		if v >= 1<<20 {
			label = "∞"
		}
		mean, p90, ratio := runOne(seed, flows, cfg(v))
		t.AddRow(label, fmt.Sprintf("%.0fms", mean), fmt.Sprintf("%.0fms", p90),
			fmt.Sprintf("%.2f%%", ratio))
	}
	fmt.Println(t.String())
}

// compareAll runs all five recovery strategies (the paper's three
// plus the related-work comparators) on identical short-flow
// workloads.
func compareAll(seed int64, flows int) {
	strategies := []struct {
		name string
		make func() tcpsim.Recovery
	}{
		{"linux", func() tcpsim.Recovery { return tcpsim.NativeRecovery{} }},
		{"early-retransmit", func() tcpsim.Recovery { return mitigation.EarlyRetransmit{} }},
		{"tlp", func() tcpsim.Recovery { return mitigation.NewTLP(mitigation.TLPConfig{}) }},
		{"tcp-ncl", func() tcpsim.Recovery { return mitigation.NewNCL(mitigation.NCLConfig{}) }},
		{"srto", func() tcpsim.Recovery { return mitigation.NewSRTO(mitigation.SRTOConfig{T1: 10, T2: 5}) }},
	}
	t := stats.NewTable("All strategies on cloud-storage short flows (identical workload).",
		"strategy", "p50", "p90", "mean", "RTO firings", "retrans ratio")
	for _, st := range strategies {
		res := workload.Generate(workload.CloudStorageShort(), seed, workload.GenOptions{
			Flows:       flows,
			SkipTraces:  true,
			NewRecovery: st.make,
		})
		lat := stats.NewSample(flows)
		var rtos int
		var retrans, total float64
		for _, r := range res {
			if !r.Metrics.Done {
				continue
			}
			lat.Add(float64(r.Metrics.FlowLatency().Milliseconds()))
			rtos += r.Metrics.Sender.RTOFirings
			retrans += float64(r.Metrics.Sender.Retransmissions)
			total += float64(r.Metrics.Sender.DataSegmentsSent)
		}
		t.AddRow(st.name,
			fmt.Sprintf("%.0fms", lat.Quantile(0.5)),
			fmt.Sprintf("%.0fms", lat.Quantile(0.9)),
			fmt.Sprintf("%.0fms", lat.Mean()),
			fmt.Sprintf("%d", rtos),
			fmt.Sprintf("%.2f%%", 100*retrans/total))
	}
	fmt.Println(t.String())
}

// runOne evaluates one S-RTO configuration on the cloud-storage
// short-flow population.
func runOne(seed int64, flows int, cfg mitigation.SRTOConfig) (meanMS, p90MS, retransPct float64) {
	res := workload.Generate(workload.CloudStorageShort(), seed, workload.GenOptions{
		Flows:      flows,
		SkipTraces: true,
		NewRecovery: func() tcpsim.Recovery {
			return mitigation.NewSRTO(cfg)
		},
	})
	lat := stats.NewSample(len(res))
	var retrans, total float64
	for _, r := range res {
		if !r.Metrics.Done {
			continue
		}
		lat.Add(float64(r.Metrics.FlowLatency().Milliseconds()))
		retrans += float64(r.Metrics.Sender.Retransmissions)
		total += float64(r.Metrics.Sender.DataSegmentsSent)
	}
	if total == 0 {
		total = 1
	}
	return lat.Mean(), lat.Quantile(0.9), 100 * retrans / total
}
