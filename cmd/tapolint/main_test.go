package main

import (
	"go/token"
	"strings"
	"testing"

	"tcpstall/internal/lint"
)

// TestListGolden pins the -list output: all ten analyzers, in
// registration order, with their one-line contracts. A new analyzer
// or a doc rewrite must update this table deliberately.
func TestListGolden(t *testing.T) {
	const want = `seqsafe    flags raw uint32 sequence-number ordering/subtraction outside internal/seqspace
detclock   forbids wall-clock, global math/rand and map-order output in deterministic packages
lockcheck  verifies ` + "`// guarded by`" + ` field annotations against actual lock acquisitions
evpurity   flight observers must not mutate analyzer state; recorder-guarded code must not steer analysis
jsontags   serialized structs carry complete, snake_case, duplicate-free json tags
hotalloc   flags heap-allocating constructs in functions marked tapo:hotpath
lockorder  whole-program lock-acquisition graph must be acyclic (deadlock freedom)
goexit     every goroutine launch must have a provable termination path
wirefreeze wire structs and BENCH schemas must match the committed fingerprint snapshot
metricsreg exporter metric families: valid names, no duplicates, HELP/TYPE pairs, docs in sync
`
	var sb strings.Builder
	listAnalyzers(&sb)
	if got := sb.String(); got != want {
		t.Errorf("-list output drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSelectAnalyzers covers the -only spec: defaults, subsets with
// whitespace, and the unknown-name error path.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers) {
		t.Fatalf("empty spec: got %d analyzers, err %v", len(all), err)
	}
	sub, err := selectAnalyzers(" lockorder, goexit ")
	if err != nil || len(sub) != 2 || sub[0].Name != "lockorder" || sub[1].Name != "goexit" {
		t.Fatalf("subset spec: got %v, err %v", sub, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer did not error")
	}
}

// TestRenderJSON pins the -json wire shape CI's job summary is
// generated from.
func TestRenderJSON(t *testing.T) {
	var sb strings.Builder
	renderJSON(&sb, []lint.Diagnostic{{
		Analyzer: "goexit",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "leaky",
	}})
	want := `[
  {
    "file": "x.go",
    "line": 3,
    "col": 7,
    "analyzer": "goexit",
    "message": "leaky"
  }
]
`
	if got := sb.String(); got != want {
		t.Errorf("json shape drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	sb.Reset()
	renderJSON(&sb, nil)
	if got := sb.String(); got != "[]\n" {
		t.Errorf("empty findings: got %q, want %q", got, "[]\n")
	}
}

// TestRenderAllows: reasoned directives pass, reasonless ones are
// counted and marked.
func TestRenderAllows(t *testing.T) {
	var sb strings.Builder
	bad := renderAllows(&sb, []lint.Allow{
		{Pos: token.Position{Filename: "a.go", Line: 1}, Analyzer: "hotalloc", Reason: "cold path"},
		{Pos: token.Position{Filename: "b.go", Line: 2}, Analyzer: "goexit"},
	})
	if bad != 1 {
		t.Fatalf("bad count = %d, want 1", bad)
	}
	out := sb.String()
	if !strings.Contains(out, "cold path") || !strings.Contains(out, "(NO REASON)") {
		t.Errorf("unexpected audit output:\n%s", out)
	}
	if !strings.Contains(out, "2 directive(s), 1 without a reason") {
		t.Errorf("missing summary line:\n%s", out)
	}
}
