// Command tapolint runs the repo's invariant analyzers (seqsafe,
// detclock, lockcheck, evpurity, jsontags, hotalloc) over the given
// packages and exits nonzero when any finding survives. It is the CI
// gate behind every refactor: the invariants it enforces
// (wraparound-safe sequence arithmetic, deterministic simulation,
// lock discipline, observer purity, wire-format hygiene, hot-path
// allocation budgets) are exactly the unwritten rules whose silent
// violation would invalidate the reproduction.
//
// Usage:
//
//	go run ./cmd/tapolint ./...
//	go run ./cmd/tapolint -only seqsafe,detclock ./internal/core/
//
// Suppress a finding with a justified directive on the same line or
// the line above: //lint:allow <analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcpstall/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tapolint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapolint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapolint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tapolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
