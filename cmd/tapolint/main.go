// Command tapolint runs the repo's invariant analyzers over the given
// packages and exits nonzero when any finding survives. It is the CI
// gate behind every refactor: the per-package invariants
// (wraparound-safe sequence arithmetic, deterministic simulation,
// lock discipline, observer purity, wire-format hygiene, hot-path
// allocation budgets) and the whole-program ones (deadlock-free lock
// ordering, goroutine termination, wire-format freeze, metrics
// registry hygiene) are exactly the unwritten rules whose silent
// violation would invalidate the reproduction.
//
// Usage:
//
//	go run ./cmd/tapolint ./...
//	go run ./cmd/tapolint -only seqsafe,detclock ./internal/core/
//	go run ./cmd/tapolint -only lockorder,goexit,wirefreeze,metricsreg ./...
//	go run ./cmd/tapolint -json ./...
//	go run ./cmd/tapolint -allows ./...
//	go run ./cmd/tapolint -update-wirefreeze ./...
//
// Suppress a finding with a justified directive on the same line or
// the line above: //lint:allow <analyzer> <reason>. The reason is not
// optional: -allows audits every directive in the tree and exits
// nonzero on any that carries no justification.
//
// -update-wirefreeze regenerates the committed wire-surface snapshot
// (internal/lint/testdata/wirefreeze/wire.json) after an intentional
// protocol change; bump fleet.WireVersion in the same commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcpstall/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	allows := flag.Bool("allows", false, "audit //lint:allow directives; exit nonzero on reasonless ones")
	updateWF := flag.Bool("update-wirefreeze", false, "regenerate the wire-surface snapshot instead of checking it")
	flag.Parse()

	if *list {
		listAnalyzers(os.Stdout)
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapolint: %v\n", err)
		os.Exit(2)
	}
	if *updateWF {
		lint.WirefreezeUpdate = true
		if *only == "" {
			analyzers = []*lint.Analyzer{lint.Wirefreeze}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapolint: %v\n", err)
		os.Exit(2)
	}

	if *allows {
		if bad := renderAllows(os.Stdout, lint.Allows(pkgs)); bad > 0 {
			fmt.Fprintf(os.Stderr, "tapolint: %d lint:allow directive(s) without a reason\n", bad)
			os.Exit(1)
		}
		return
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapolint: %v\n", err)
		os.Exit(2)
	}
	if *updateWF {
		fmt.Fprintf(os.Stderr, "tapolint: wrote wirefreeze snapshot\n")
	}
	if *jsonOut {
		renderJSON(os.Stdout, diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tapolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// listAnalyzers renders the -list table: one analyzer per line,
// registration order, name column wide enough for the longest.
func listAnalyzers(w io.Writer) {
	width := 0
	for _, a := range lint.Analyzers {
		if len(a.Name) > width {
			width = len(a.Name)
		}
	}
	for _, a := range lint.Analyzers {
		fmt.Fprintf(w, "%-*s %s\n", width, a.Name, a.Doc)
	}
}

// selectAnalyzers resolves a -only spec, or all analyzers for "".
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.Analyzers, nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := lint.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonFinding is the -json wire shape; stable field names so CI job
// summaries can be generated from it.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// renderJSON writes the findings as a JSON array ([] when clean).
func renderJSON(w io.Writer, diags []lint.Diagnostic) {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// renderAllows prints every escape hatch in the tree with its
// justification and returns how many carry none.
func renderAllows(w io.Writer, allows []lint.Allow) (bad int) {
	for _, a := range allows {
		reason := a.Reason
		if reason == "" {
			reason = "(NO REASON)"
			bad++
		}
		fmt.Fprintf(w, "%s: %s: %s\n", a.Pos, a.Analyzer, reason)
	}
	fmt.Fprintf(w, "%d directive(s), %d without a reason\n", len(allows), bad)
	return bad
}
