// Command experiments regenerates the paper's evaluation: every table
// and figure from "Demystifying and Mitigating TCP Stalls at the
// Server Side" (CoNEXT 2015), computed over a synthetic dataset
// produced by the workload models.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-flows N] [-only LIST]
//
// -only selects a comma-separated subset, e.g.
// "table1,figure3,table8". Default: everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcpstall/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 20141222, "root RNG seed")
	scale := flag.Float64("scale", 0.5, "dataset size multiplier")
	flows := flag.Int("flows", 0, "fixed per-service flow count (overrides -scale)")
	abFlows := flag.Int("abflows", 400, "flows per strategy for Tables 8/9")
	workers := flag.Int("workers", 0, "simulation/analysis worker count (0: one per CPU)")
	only := flag.String("only", "", "comma-separated experiment subset (e.g. table1,figure3)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	needDataset := false
	for _, k := range []string{"table1", "figure1", "figure3", "table3", "figure6",
		"table4", "table5", "figure7", "table6", "figure10", "table7", "figure11", "figure12"} {
		if sel(k) {
			needDataset = true
			break
		}
	}

	var ds []*experiments.Dataset
	if needDataset {
		fmt.Fprintf(os.Stderr, "generating dataset (seed=%d scale=%.2f flows=%d workers=%d)...\n", *seed, *scale, *flows, *workers)
		ds = experiments.BuildAll(experiments.Options{Seed: *seed, Scale: *scale, FlowsOverride: *flows, Workers: *workers})
	}

	if needDataset && sel("table1") {
		_, out := experiments.Table1(ds)
		fmt.Println(out)
	}
	if needDataset && sel("figure1") {
		_, _, _, out := experiments.Figure1(ds)
		fmt.Println(out)
	}
	if sel("figure2") {
		_, out := experiments.Figure2(*seed)
		fmt.Println(out)
	}
	if needDataset {
		if sel("figure3") {
			_, out := experiments.Figure3(ds)
			fmt.Println(out)
		}
		if sel("table3") {
			_, out := experiments.Table3(ds)
			fmt.Println(out)
		}
		if sel("figure6") {
			_, out := experiments.Figure6(ds)
			fmt.Println(out)
		}
		if sel("table4") {
			_, out := experiments.Table4(ds)
			fmt.Println(out)
		}
		if sel("table5") {
			_, out := experiments.Table5(ds)
			fmt.Println(out)
		}
		if sel("figure7") {
			_, _, out := experiments.Figure7(ds)
			fmt.Println(out)
		}
		if sel("table6") {
			_, out := experiments.Table6(ds)
			fmt.Println(out)
		}
		if sel("figure10") {
			_, _, out := experiments.Figure10(ds)
			fmt.Println(out)
		}
		if sel("table7") {
			_, out := experiments.Table7(ds)
			fmt.Println(out)
		}
		if sel("figure11") {
			_, out := experiments.Figure11(ds)
			fmt.Println(out)
		}
		if sel("figure12") {
			_, out := experiments.Figure12(ds)
			fmt.Println(out)
		}
	}
	if sel("table8") {
		fmt.Fprintln(os.Stderr, "running strategy A/B for Table 8...")
		_, out := experiments.Table8(*seed, *abFlows, *abFlows)
		fmt.Println(out)
	}
	if sel("table9") {
		fmt.Fprintln(os.Stderr, "running strategy A/B for Table 9...")
		_, out := experiments.Table9(*seed, *abFlows, *abFlows/2)
		fmt.Println(out)
	}
	if sel("floorregime") {
		fmt.Fprintln(os.Stderr, "running floor-regime A/B...")
		_, out := experiments.FloorRegimeComparison(*seed, *abFlows)
		fmt.Println(out)
	}
	if sel("throughput") {
		_, out := experiments.LargeFlowThroughput(*seed, *abFlows/2)
		fmt.Println(out)
	}
	if sel("validate") {
		fmt.Fprintln(os.Stderr, "running ground-truth differential validation...")
		_, out := experiments.ValidationTable(experiments.Options{
			Seed: *seed, Scale: *scale, FlowsOverride: *flows, Workers: *workers,
		})
		fmt.Println(out)
	}
}
