package packet

import (
	"bytes"
	"testing"
)

// FuzzParseTCP checks the TCP header decoder never panics and, when
// it accepts input, reports a payload that is a suffix of the input
// past a sane header length.
func FuzzParseTCP(f *testing.F) {
	// Minimal header, no options.
	f.Add([]byte{
		0x30, 0x39, 0x00, 0x50, // ports 12345 -> 80
		0x00, 0x00, 0x00, 0x01, // seq
		0x00, 0x00, 0x00, 0x00, // ack
		0x50, 0x02, 0xff, 0xff, // data offset 5, SYN, window
		0x00, 0x00, 0x00, 0x00, // checksum, urgent
	})
	// Header with MSS + SACK-permitted + timestamps options and payload.
	var tcp TCPHeader
	tcp.SrcPort, tcp.DstPort = 443, 50000
	tcp.Flags = FlagACK
	tcp.Options.HasMSS = true
	tcp.Options.MSS = 1460
	tcp.Options.SACKPermitted = true
	tcp.Options.HasTimestamps = true
	tcp.Options.TSVal, tcp.Options.TSEcr = 100, 200
	payload := []byte("payload")
	ctx := V4Context([4]byte{10, 0, 0, 1}, [4]byte{100, 64, 0, 1}, tcp.HeaderLen()+len(payload))
	f.Add(tcp.AppendTo(nil, payload, ctx))
	// Truncated and junk variants.
	f.Add([]byte{0x50})
	f.Add(bytes.Repeat([]byte{0xff}, 60))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h TCPHeader
		payload, err := h.DecodeFromBytes(data)
		if err != nil {
			return
		}
		// The wire data offset governs where the payload starts;
		// HeaderLen() re-encodes options and may normalize padding.
		dataOff := int(data[12]>>4) * 4
		if dataOff < 20 || dataOff > len(data) {
			t.Fatalf("accepted data offset %d for %d input bytes", dataOff, len(data))
		}
		if !bytes.Equal(payload, data[dataOff:]) {
			t.Fatalf("payload is not the post-header suffix")
		}
	})
}

// FuzzParseIPv4 checks the IPv4 decoder never panics and only accepts
// headers that fit the input.
func FuzzParseIPv4(f *testing.F) {
	var ip IPv4
	ip.Src = [4]byte{10, 0, 0, 1}
	ip.Dst = [4]byte{100, 64, 0, 1}
	ip.Protocol = IPProtoTCP
	ip.TTL = 64
	f.Add(ip.AppendTo(nil, 20))
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0x46, 0x00}, 15))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h IPv4
		if _, err := h.DecodeFromBytes(data); err != nil {
			return
		}
		if hl := h.HeaderLen(); hl < 20 || hl > len(data) {
			t.Fatalf("accepted header length %d for %d input bytes", hl, len(data))
		}
	})
}

// FuzzDecodeFrame checks the full Ethernet-to-TCP frame decoder on
// arbitrary bytes.
func FuzzDecodeFrame(f *testing.F) {
	var eth Ethernet
	var ip IPv4
	ip.TTL = 64
	tcp := TCPHeader{SrcPort: 80, DstPort: 12345, Flags: FlagACK}
	f.Add(EncodeTCPv4(&eth, &ip, &tcp, []byte("hello")))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 14))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		_ = fr.Decode(data) // must not panic
	})
}
