package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv6HeaderLen is the length of the fixed IPv6 header.
const IPv6HeaderLen = 40

// IPv6 is the fixed IPv6 header. Extension headers are not modeled;
// NextHeader must identify the transport directly for Frame parsing.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   IPProto
	HopLimit     uint8
	Src          [16]byte
	Dst          [16]byte
}

// DecodeFromBytes parses the header and returns the payload
// (truncated to PayloadLen when the buffer carries trailing padding).
func (ip *IPv6) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < IPv6HeaderLen {
		return nil, fmt.Errorf("ipv6: %w (%d bytes)", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 6 {
		return nil, fmt.Errorf("ipv6: %w (version %d)", ErrBadVersion, v)
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xfffff
	ip.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = IPProto(data[6])
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])
	end := IPv6HeaderLen + int(ip.PayloadLen)
	if end > len(data) {
		end = len(data)
	}
	return data[IPv6HeaderLen:end], nil
}

// AppendTo serializes the header onto b, computing PayloadLen from
// payloadLen. It returns the extended slice.
func (ip *IPv6) AppendTo(b []byte, payloadLen int) []byte {
	vtf := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xfffff
	b = binary.BigEndian.AppendUint32(b, vtf)
	b = binary.BigEndian.AppendUint16(b, uint16(payloadLen))
	b = append(b, byte(ip.NextHeader), ip.HopLimit)
	b = append(b, ip.Src[:]...)
	b = append(b, ip.Dst[:]...)
	return b
}
