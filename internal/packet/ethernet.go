package packet

import (
	"encoding/binary"
	"fmt"
)

// EthernetHeaderLen is the length of an Ethernet II header.
const EthernetHeaderLen = 14

// MAC is a 6-byte Ethernet hardware address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// DecodeFromBytes parses the header and returns the payload that
// follows it.
func (e *Ethernet) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < EthernetHeaderLen {
		return nil, fmt.Errorf("ethernet: %w (%d bytes)", ErrTruncated, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	return data[EthernetHeaderLen:], nil
}

// AppendTo serializes the header onto b and returns the extended
// slice.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(e.Type))
}
