// Package packet implements wire-format encoding and decoding for the
// protocol layers the toolkit touches: Ethernet II, IPv4, IPv6 and
// TCP (including the options the stall analysis depends on: MSS,
// window scale, SACK-permitted, SACK blocks and timestamps).
//
// The design follows the decoding-layer style popularized by gopacket:
// each header type has DecodeFromBytes and an AppendTo serializer, and
// the Frame helper parses a full Ethernet/IP/TCP stack without
// allocating per-layer objects.
//
// Everything here is stdlib-only; this is the substrate that lets the
// TAPO classifier consume real pcap bytes rather than simulator
// structs.
package packet

import (
	"errors"
	"fmt"
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrBadVersion  = errors.New("packet: unexpected IP version")
	ErrBadHeader   = errors.New("packet: malformed header")
	ErrUnsupported = errors.New("packet: unsupported layer")
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes understood by the Frame parser.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeIPv6 EtherType = 0x86DD
)

// IPProto identifies the transport protocol of an IP packet.
type IPProto uint8

// IP protocol numbers understood by the Frame parser.
const (
	IPProtoTCP IPProto = 6
	IPProtoUDP IPProto = 17
)

func (p IPProto) String() string {
	switch p {
	case IPProtoTCP:
		return "TCP"
	case IPProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}
