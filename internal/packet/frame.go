package packet

import "fmt"

// Frame is a fully parsed Ethernet/IP/TCP stack. After a successful
// Decode, exactly one of IP4/IP6 is valid (see IsIPv6) and TCP and
// Payload are set when the transport is TCP.
type Frame struct {
	Eth     Ethernet
	IP4     IPv4
	IP6     IPv6
	IsIPv6  bool
	HasTCP  bool
	TCP     TCPHeader
	Payload []byte
}

// Decode parses an Ethernet frame down to the TCP payload. Non-IP and
// non-TCP frames decode as far as possible with HasTCP=false; they
// are not an error unless malformed.
func (f *Frame) Decode(data []byte) error {
	f.HasTCP = false
	f.Payload = nil
	rest, err := f.Eth.DecodeFromBytes(data)
	if err != nil {
		return err
	}
	var proto IPProto
	switch f.Eth.Type {
	case EtherTypeIPv4:
		f.IsIPv6 = false
		if rest, err = f.IP4.DecodeFromBytes(rest); err != nil {
			return err
		}
		proto = f.IP4.Protocol
	case EtherTypeIPv6:
		f.IsIPv6 = true
		if rest, err = f.IP6.DecodeFromBytes(rest); err != nil {
			return err
		}
		proto = f.IP6.NextHeader
	default:
		return fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, uint16(f.Eth.Type))
	}
	if proto != IPProtoTCP {
		return nil
	}
	if f.Payload, err = f.TCP.DecodeFromBytes(rest); err != nil {
		return err
	}
	f.HasTCP = true
	return nil
}

// EncodeTCPv4 serializes a complete Ethernet/IPv4/TCP frame with a
// correct IP header checksum and TCP checksum.
func EncodeTCPv4(eth *Ethernet, ip *IPv4, tcp *TCPHeader, payload []byte) []byte {
	segLen := tcp.HeaderLen() + len(payload)
	buf := make([]byte, 0, EthernetHeaderLen+ip.HeaderLen()+segLen)
	eth2 := *eth
	eth2.Type = EtherTypeIPv4
	ip2 := *ip
	ip2.Protocol = IPProtoTCP
	buf = eth2.AppendTo(buf)
	buf = ip2.AppendTo(buf, segLen)
	ctx := V4Context(ip2.Src, ip2.Dst, segLen)
	return tcp.AppendTo(buf, payload, ctx)
}

// EncodeTCPv6 serializes a complete Ethernet/IPv6/TCP frame with a
// correct TCP checksum.
func EncodeTCPv6(eth *Ethernet, ip *IPv6, tcp *TCPHeader, payload []byte) []byte {
	segLen := tcp.HeaderLen() + len(payload)
	buf := make([]byte, 0, EthernetHeaderLen+IPv6HeaderLen+segLen)
	eth2 := *eth
	eth2.Type = EtherTypeIPv6
	ip2 := *ip
	ip2.NextHeader = IPProtoTCP
	buf = eth2.AppendTo(buf)
	buf = ip2.AppendTo(buf, segLen)
	ctx := V6Context(ip2.Src, ip2.Dst, segLen)
	return tcp.AppendTo(buf, payload, ctx)
}
