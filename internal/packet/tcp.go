package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCPHeaderLen is the length of an option-less TCP header.
const TCPHeaderLen = 20

// TCPFlags is the 8-bit TCP flag field.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Has reports whether all bits in f2 are set.
func (f TCPFlags) Has(f2 TCPFlags) bool { return f&f2 == f2 }

// String renders the set flags in tcpdump-ish shorthand.
func (f TCPFlags) String() string {
	if f == 0 {
		return "."
	}
	var b strings.Builder
	for _, p := range []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "F"}, {FlagSYN, "S"}, {FlagRST, "R"}, {FlagPSH, "P"},
		{FlagACK, "A"}, {FlagURG, "U"}, {FlagECE, "E"}, {FlagCWR, "C"},
	} {
		if f.Has(p.bit) {
			b.WriteString(p.name)
		}
	}
	return b.String()
}

// TCP option kinds.
const (
	OptKindEOL           = 0
	OptKindNOP           = 1
	OptKindMSS           = 2
	OptKindWScale        = 3
	OptKindSACKPermitted = 4
	OptKindSACK          = 5
	OptKindTimestamps    = 8
)

// SACKBlock is one SACK edge pair [Left, Right).
type SACKBlock struct {
	Left  uint32
	Right uint32
}

// MaxSACKBlocks is the most blocks that fit in the option space.
const MaxSACKBlocks = 4

// SACKList stores up to MaxSACKBlocks SACK edge pairs inline. The
// wire format cannot carry more than 4 blocks in one header, so the
// backing array lives inside the struct: copying a SACKList (and so a
// Segment or TCPOptions) is a plain value copy with no heap backing
// to allocate or alias. Append silently drops blocks past the cap,
// which is exactly what a real header would have done on encode.
//
// Unused slots are always zero, so values with equal visible content
// compare equal with == and reflect.DeepEqual.
type SACKList struct {
	n      uint8
	blocks [MaxSACKBlocks]SACKBlock
}

// SACKBlocks builds a SACKList from loose blocks (test convenience).
// Blocks past MaxSACKBlocks are dropped.
func SACKBlocks(blocks ...SACKBlock) SACKList {
	var l SACKList
	for _, b := range blocks {
		l.Append(b)
	}
	return l
}

// Len reports the number of stored blocks.
func (l SACKList) Len() int { return int(l.n) }

// At returns block i; i must be < Len().
func (l SACKList) At(i int) SACKBlock { return l.blocks[i] }

// Slice returns the stored blocks aliased over the receiver's inline
// array — no allocation. The slice is invalidated by Reset/Append.
func (l *SACKList) Slice() []SACKBlock { return l.blocks[:l.n] }

// Append adds one block, dropping it silently once the list is full.
func (l *SACKList) Append(b SACKBlock) {
	if l.n < MaxSACKBlocks {
		l.blocks[l.n] = b
		l.n++
	}
}

// Reset empties the list, zeroing the backing array so stale blocks
// from a recycled frame can never leak into the next decode.
func (l *SACKList) Reset() { *l = SACKList{} }

// String renders the visible blocks like a slice would.
func (l SACKList) String() string { return fmt.Sprint(l.blocks[:l.n]) }

// TCPOptions carries the parsed TCP options relevant to the analysis.
// Unknown options are skipped on decode and not round-tripped.
type TCPOptions struct {
	MSS           uint16 // 0 when absent
	HasMSS        bool
	WScale        uint8 // shift count
	HasWScale     bool
	SACKPermitted bool
	SACK          SACKList // empty when absent
	TSVal, TSEcr  uint32
	HasTimestamps bool
}

// TCPHeader is a TCP header plus parsed options.
type TCPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    TCPFlags
	Window   uint16
	Checksum uint16
	Urgent   uint16
	Options  TCPOptions
}

// maxOptionSpace is the most option bytes a TCP header can carry
// (data offset is 4 bits of 32-bit words: 60 − 20).
const maxOptionSpace = 40

// fixedOptionsLen reports the bytes used by everything except SACK
// blocks, unpadded.
func (t *TCPHeader) fixedOptionsLen() int {
	n := 0
	if t.Options.HasMSS {
		n += 4
	}
	if t.Options.HasWScale {
		n += 3
	}
	if t.Options.SACKPermitted {
		n += 2
	}
	if t.Options.HasTimestamps {
		n += 10
	}
	return n
}

// sackBlocksThatFit reports how many SACK blocks the header will
// actually encode: min(len, MaxSACKBlocks, space left after the other
// options). This mirrors real stacks, where timestamps squeeze the
// SACK option down to 3 blocks.
func (t *TCPHeader) sackBlocksThatFit() int {
	ns := t.Options.SACK.Len()
	if ns == 0 {
		return 0
	}
	budget := (maxOptionSpace - t.fixedOptionsLen() - 2) / 8
	if ns > budget {
		ns = budget
	}
	if ns < 0 {
		ns = 0
	}
	return ns
}

// optionsLen reports the encoded option bytes, padded to 4.
func (t *TCPHeader) optionsLen() int {
	n := t.fixedOptionsLen()
	if ns := t.sackBlocksThatFit(); ns > 0 {
		n += 2 + 8*ns
	}
	return (n + 3) &^ 3
}

// HeaderLen reports the encoded header length including options.
func (t *TCPHeader) HeaderLen() int { return TCPHeaderLen + t.optionsLen() }

// DecodeFromBytes parses the header and returns the payload.
func (t *TCPHeader) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < TCPHeaderLen {
		return nil, fmt.Errorf("tcp: %w (%d bytes)", ErrTruncated, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < TCPHeaderLen {
		return nil, fmt.Errorf("tcp: %w (data offset %d)", ErrBadHeader, dataOff)
	}
	if len(data) < dataOff {
		return nil, fmt.Errorf("tcp: %w (offset %d > %d bytes)", ErrTruncated, dataOff, len(data))
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = TCPOptions{}
	if err := t.decodeOptions(data[TCPHeaderLen:dataOff]); err != nil {
		return nil, err
	}
	return data[dataOff:], nil
}

func (t *TCPHeader) decodeOptions(opts []byte) error {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptKindEOL:
			return nil
		case OptKindNOP:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return fmt.Errorf("tcp: %w (option kind %d)", ErrTruncated, kind)
		}
		olen := int(opts[1])
		if olen < 2 || olen > len(opts) {
			return fmt.Errorf("tcp: %w (option kind %d len %d)", ErrBadHeader, kind, olen)
		}
		body := opts[2:olen]
		switch kind {
		case OptKindMSS:
			if len(body) != 2 {
				return fmt.Errorf("tcp: %w (MSS option len %d)", ErrBadHeader, olen)
			}
			t.Options.MSS = binary.BigEndian.Uint16(body)
			t.Options.HasMSS = true
		case OptKindWScale:
			if len(body) != 1 {
				return fmt.Errorf("tcp: %w (WScale option len %d)", ErrBadHeader, olen)
			}
			t.Options.WScale = body[0]
			t.Options.HasWScale = true
		case OptKindSACKPermitted:
			if len(body) != 0 {
				return fmt.Errorf("tcp: %w (SACK-permitted len %d)", ErrBadHeader, olen)
			}
			t.Options.SACKPermitted = true
		case OptKindSACK:
			if len(body)%8 != 0 || len(body) == 0 {
				return fmt.Errorf("tcp: %w (SACK option len %d)", ErrBadHeader, olen)
			}
			for i := 0; i < len(body); i += 8 {
				t.Options.SACK.Append(SACKBlock{
					Left:  binary.BigEndian.Uint32(body[i:]),
					Right: binary.BigEndian.Uint32(body[i+4:]),
				})
			}
		case OptKindTimestamps:
			if len(body) != 8 {
				return fmt.Errorf("tcp: %w (timestamps len %d)", ErrBadHeader, olen)
			}
			t.Options.TSVal = binary.BigEndian.Uint32(body[0:4])
			t.Options.TSEcr = binary.BigEndian.Uint32(body[4:8])
			t.Options.HasTimestamps = true
		default:
			// Unknown option: skip.
		}
		opts = opts[olen:]
	}
	return nil
}

// appendOptions serializes options (NOP-padded to 4 bytes).
func (t *TCPHeader) appendOptions(b []byte) []byte {
	start := len(b)
	if t.Options.HasMSS {
		b = append(b, OptKindMSS, 4)
		b = binary.BigEndian.AppendUint16(b, t.Options.MSS)
	}
	if t.Options.SACKPermitted {
		b = append(b, OptKindSACKPermitted, 2)
	}
	if t.Options.HasWScale {
		b = append(b, OptKindWScale, 3, t.Options.WScale)
	}
	if t.Options.HasTimestamps {
		b = append(b, OptKindTimestamps, 10)
		b = binary.BigEndian.AppendUint32(b, t.Options.TSVal)
		b = binary.BigEndian.AppendUint32(b, t.Options.TSEcr)
	}
	if n := t.sackBlocksThatFit(); n > 0 {
		b = append(b, OptKindSACK, byte(2+8*n))
		for _, blk := range t.Options.SACK.Slice()[:n] {
			b = binary.BigEndian.AppendUint32(b, blk.Left)
			b = binary.BigEndian.AppendUint32(b, blk.Right)
		}
	}
	for (len(b)-start)%4 != 0 {
		b = append(b, OptKindNOP)
	}
	return b
}

// checksumContext carries the pseudo-header inputs needed to compute
// the TCP checksum.
type checksumContext struct {
	sum uint32
	ok  bool
}

// V4Context returns the checksum context for a TCPv4 segment of total
// length segLen (header + payload).
func V4Context(src, dst [4]byte, segLen int) checksumContext {
	return checksumContext{sum: pseudoHeaderSumV4(src, dst, IPProtoTCP, segLen), ok: true}
}

// V6Context returns the checksum context for a TCPv6 segment.
func V6Context(src, dst [16]byte, segLen int) checksumContext {
	return checksumContext{sum: pseudoHeaderSumV6(src, dst, IPProtoTCP, segLen), ok: true}
}

// AppendTo serializes the header and payload onto b, computing the
// checksum from ctx when provided (zero checksum otherwise). It
// returns the extended slice.
func (t *TCPHeader) AppendTo(b []byte, payload []byte, ctx checksumContext) []byte {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	hlen := t.HeaderLen()
	b = append(b, byte(hlen/4)<<4, byte(t.Flags))
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	b = t.appendOptions(b)
	if got := len(b) - start; got != hlen {
		panic(fmt.Sprintf("tcp: encoded header %d bytes, computed %d", got, hlen))
	}
	b = append(b, payload...)
	if ctx.ok {
		sum := partialSum(b[start:], ctx.sum)
		binary.BigEndian.PutUint16(b[start+16:], finalizeSum(sum))
	}
	return b
}

// VerifyChecksum reports whether raw (the full TCP segment bytes)
// carries a valid checksum under ctx.
func VerifyChecksum(raw []byte, ctx checksumContext) bool {
	if !ctx.ok || len(raw) < TCPHeaderLen {
		return false
	}
	return finalizeSum(partialSum(raw, ctx.sum)) == 0
}

// String renders a one-line summary, tcpdump style.
func (t *TCPHeader) String() string {
	return fmt.Sprintf("%d > %d [%s] seq=%d ack=%d win=%d",
		t.SrcPort, t.DstPort, t.Flags, t.Seq, t.Ack, t.Window)
}
