package packet

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum over data,
// continuing from an initial partial sum. Pass 0 to start fresh.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// partialSum folds data into a running 32-bit partial sum without
// finalizing; used to chain the pseudo-header and segment sums.
func partialSum(data []byte, sum uint32) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// finalizeSum folds carries and complements a partial sum.
func finalizeSum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSumV4 returns the partial checksum of the IPv4
// pseudo-header for the given transport segment length.
func pseudoHeaderSumV4(src, dst [4]byte, proto IPProto, segLen int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(segLen)
	return sum
}

// pseudoHeaderSumV6 returns the partial checksum of the IPv6
// pseudo-header for the given transport segment length.
func pseudoHeaderSumV6(src, dst [16]byte, proto IPProto, segLen int) uint32 {
	var sum uint32
	for i := 0; i < 16; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(src[i:]))
		sum += uint32(binary.BigEndian.Uint16(dst[i:]))
	}
	sum += uint32(segLen)
	sum += uint32(proto)
	return sum
}
