package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Vector(t *testing.T) {
	// Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7
	// have one's-complement sum 0xddf2, checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd final byte is padded with a zero byte on the right.
	if got, want := Checksum([]byte{0x12}, 0), ^uint16(0x1200); got != want {
		t.Errorf("Checksum odd = %#04x, want %#04x", got, want)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// Embedding the checksum makes the total sum verify to 0.
	data := []byte{0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00,
		0x40, 0x06, 0x00, 0x00, 0xac, 0x10, 0x0a, 0x63,
		0xac, 0x10, 0x0a, 0x0c}
	sum := Checksum(data, 0)
	binary.BigEndian.PutUint16(data[10:], sum)
	if Checksum(data, 0) != 0 {
		t.Error("checksummed header does not verify to zero")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:  MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:  MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55},
		Type: EtherTypeIPv4,
	}
	b := e.AppendTo(nil)
	if len(b) != EthernetHeaderLen {
		t.Fatalf("encoded %d bytes", len(b))
	}
	var got Ethernet
	payload, err := got.DecodeFromBytes(append(b, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip: got %+v, want %+v", got, e)
	}
	if !bytes.Equal(payload, []byte{0xde, 0xad}) {
		t.Errorf("payload = %x", payload)
	}
	if got.Src.String() != "00:11:22:33:44:55" {
		t.Errorf("MAC string = %q", got.Src)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if _, err := e.DecodeFromBytes(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS:      0x10,
		ID:       0xbeef,
		Flags:    IPv4DontFragment,
		TTL:      64,
		Protocol: IPProtoTCP,
		Src:      [4]byte{10, 0, 0, 1},
		Dst:      [4]byte{192, 168, 1, 2},
	}
	payload := []byte("hello world!")
	raw := ip.AppendTo(nil, len(payload))
	raw = append(raw, payload...)

	var got IPv4
	gotPayload, err := got.DecodeFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.TTL != 64 ||
		got.Protocol != IPProtoTCP || got.ID != 0xbeef ||
		got.Flags != IPv4DontFragment || got.TOS != 0x10 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.TotalLen != uint16(IPv4HeaderLen+len(payload)) {
		t.Errorf("TotalLen = %d", got.TotalLen)
	}
	if !got.VerifyChecksum(raw) {
		t.Error("checksum does not verify")
	}
	// Corrupt a byte: checksum must fail.
	raw[8] ^= 0xff
	if got.VerifyChecksum(raw) {
		t.Error("corrupted header verified")
	}
}

func TestIPv4Options(t *testing.T) {
	ip := IPv4{TTL: 1, Protocol: IPProtoUDP, Options: []byte{1, 1, 1, 1}}
	raw := ip.AppendTo(nil, 0)
	if len(raw) != 24 {
		t.Fatalf("encoded %d bytes, want 24", len(raw))
	}
	var got IPv4
	if _, err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, []byte{1, 1, 1, 1}) {
		t.Errorf("options = %x", got.Options)
	}
	defer func() {
		if recover() == nil {
			t.Error("unaligned options should panic on encode")
		}
	}()
	bad := IPv4{Options: []byte{1}}
	bad.AppendTo(nil, 0)
}

func TestIPv4TotalLenTruncatesPadding(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtoTCP}
	raw := ip.AppendTo(nil, 3)
	raw = append(raw, 'a', 'b', 'c')
	// Ethernet minimum-frame padding after the IP datagram:
	raw = append(raw, 0, 0, 0, 0)
	var got IPv4
	payload, err := got.DecodeFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "abc" {
		t.Errorf("payload = %q, want abc (padding stripped)", payload)
	}
}

func TestIPv4Malformed(t *testing.T) {
	var ip IPv4
	if _, err := ip.DecodeFromBytes(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if _, err := ip.DecodeFromBytes(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
	bad[0] = 0x42 // IHL 2 (8 bytes) < 20
	if _, err := ip.DecodeFromBytes(bad); !errors.Is(err, ErrBadHeader) {
		t.Errorf("IHL: %v", err)
	}
	bad[0] = 0x4f // IHL 15 (60 bytes) > buffer
	if _, err := ip.DecodeFromBytes(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("IHL overflow: %v", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := IPv6{
		TrafficClass: 0xab,
		FlowLabel:    0xcdef1,
		NextHeader:   IPProtoTCP,
		HopLimit:     255,
	}
	ip.Src[15] = 1
	ip.Dst[0] = 0xfe
	payload := []byte{1, 2, 3}
	raw := ip.AppendTo(nil, len(payload))
	raw = append(raw, payload...)
	var got IPv6
	gotPayload, err := got.DecodeFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrafficClass != 0xab || got.FlowLabel != 0xcdef1 ||
		got.NextHeader != IPProtoTCP || got.HopLimit != 255 ||
		got.Src != ip.Src || got.Dst != ip.Dst {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.PayloadLen != 3 || !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload: len=%d %x", got.PayloadLen, gotPayload)
	}
}

func TestIPv6Malformed(t *testing.T) {
	var ip IPv6
	if _, err := ip.DecodeFromBytes(make([]byte, 39)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 40)
	bad[0] = 0x40
	if _, err := ip.DecodeFromBytes(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
}

func TestTCPFlagString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SA" {
		t.Errorf("flags = %q", got)
	}
	if got := TCPFlags(0).String(); got != "." {
		t.Errorf("zero flags = %q", got)
	}
	if !(FlagSYN | FlagACK).Has(FlagSYN) {
		t.Error("Has(SYN) = false")
	}
	if (FlagSYN).Has(FlagSYN | FlagACK) {
		t.Error("Has should require all bits")
	}
}

func TestTCPRoundTripBasic(t *testing.T) {
	h := TCPHeader{
		SrcPort: 443, DstPort: 51234,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagACK | FlagPSH, Window: 65535, Urgent: 7,
	}
	payload := []byte("GET / HTTP/1.1\r\n")
	raw := h.AppendTo(nil, payload, checksumContext{})
	var got TCPHeader
	gotPayload, err := got.DecodeFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
	if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort ||
		got.Seq != h.Seq || got.Ack != h.Ack || got.Flags != h.Flags ||
		got.Window != h.Window || got.Urgent != h.Urgent {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
	if got.HeaderLen() != 20 {
		t.Errorf("HeaderLen = %d", got.HeaderLen())
	}
}

func TestTCPRoundTripAllOptions(t *testing.T) {
	h := TCPHeader{
		SrcPort: 80, DstPort: 12345,
		Seq: 1000, Ack: 2000, Flags: FlagSYN | FlagACK, Window: 5840,
		Options: TCPOptions{
			MSS: 1460, HasMSS: true,
			WScale: 7, HasWScale: true,
			SACKPermitted: true,
			TSVal:         111111, TSEcr: 222222, HasTimestamps: true,
		},
	}
	raw := h.AppendTo(nil, nil, checksumContext{})
	var got TCPHeader
	if _, err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	o := got.Options
	if !o.HasMSS || o.MSS != 1460 {
		t.Errorf("MSS: %+v", o)
	}
	if !o.HasWScale || o.WScale != 7 {
		t.Errorf("WScale: %+v", o)
	}
	if !o.SACKPermitted {
		t.Error("SACKPermitted lost")
	}
	if !o.HasTimestamps || o.TSVal != 111111 || o.TSEcr != 222222 {
		t.Errorf("timestamps: %+v", o)
	}
}

func TestTCPSACKBlocks(t *testing.T) {
	h := TCPHeader{
		SrcPort: 1, DstPort: 2, Flags: FlagACK, Ack: 5000,
		Options: TCPOptions{SACK: SACKBlocks(
			SACKBlock{Left: 6000, Right: 7000},
			SACKBlock{Left: 8000, Right: 9000},
			SACKBlock{Left: 10000, Right: 11000},
		)},
	}
	raw := h.AppendTo(nil, nil, checksumContext{})
	var got TCPHeader
	if _, err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Options.SACK.Len() != 3 {
		t.Fatalf("SACK blocks = %d", got.Options.SACK.Len())
	}
	for i, want := range h.Options.SACK.Slice() {
		if got.Options.SACK.At(i) != want {
			t.Errorf("SACK[%d] = %+v, want %+v", i, got.Options.SACK.At(i), want)
		}
	}
}

func TestTCPSACKBlockLimit(t *testing.T) {
	blocks := make([]SACKBlock, 6)
	for i := range blocks {
		blocks[i] = SACKBlock{Left: uint32(i * 100), Right: uint32(i*100 + 50)}
	}
	h := TCPHeader{Flags: FlagACK, Options: TCPOptions{SACK: SACKBlocks(blocks...)}}
	raw := h.AppendTo(nil, nil, checksumContext{})
	var got TCPHeader
	if _, err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Options.SACK.Len() != MaxSACKBlocks {
		t.Errorf("encoded %d SACK blocks, want cap at %d", got.Options.SACK.Len(), MaxSACKBlocks)
	}
}

func TestTCPChecksumV4(t *testing.T) {
	src := [4]byte{10, 1, 1, 1}
	dst := [4]byte{10, 2, 2, 2}
	h := TCPHeader{SrcPort: 80, DstPort: 999, Seq: 1, Flags: FlagACK, Window: 100}
	payload := []byte("payload-bytes")
	segLen := h.HeaderLen() + len(payload)
	raw := h.AppendTo(nil, payload, V4Context(src, dst, segLen))
	if !VerifyChecksum(raw, V4Context(src, dst, segLen)) {
		t.Error("good segment does not verify")
	}
	raw[len(raw)-1] ^= 1
	if VerifyChecksum(raw, V4Context(src, dst, segLen)) {
		t.Error("corrupted segment verified")
	}
}

func TestTCPChecksumV6(t *testing.T) {
	var src, dst [16]byte
	src[15], dst[15] = 1, 2
	h := TCPHeader{SrcPort: 443, DstPort: 1000, Flags: FlagSYN}
	segLen := h.HeaderLen()
	raw := h.AppendTo(nil, nil, V6Context(src, dst, segLen))
	if !VerifyChecksum(raw, V6Context(src, dst, segLen)) {
		t.Error("v6 segment does not verify")
	}
}

func TestTCPDecodeMalformed(t *testing.T) {
	var h TCPHeader
	if _, err := h.DecodeFromBytes(make([]byte, 19)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[12] = 0x40 // data offset 4 words = 16 bytes < 20
	if _, err := h.DecodeFromBytes(bad); !errors.Is(err, ErrBadHeader) {
		t.Errorf("offset: %v", err)
	}
	bad[12] = 0xf0 // 60 bytes > buffer
	if _, err := h.DecodeFromBytes(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("offset overflow: %v", err)
	}
	// Option with bad length byte.
	withOpt := make([]byte, 24)
	withOpt[12] = 0x60 // 24-byte header
	withOpt[20] = OptKindMSS
	withOpt[21] = 200 // longer than remaining option space
	if _, err := h.DecodeFromBytes(withOpt); !errors.Is(err, ErrBadHeader) {
		t.Errorf("bad option len: %v", err)
	}
	// EOL terminates option parsing cleanly.
	withOpt[20] = OptKindEOL
	withOpt[21] = 0
	if _, err := h.DecodeFromBytes(withOpt); err != nil {
		t.Errorf("EOL: %v", err)
	}
	// Unknown option is skipped.
	withOpt[20] = 254
	withOpt[21] = 4
	if _, err := h.DecodeFromBytes(withOpt); err != nil {
		t.Errorf("unknown option: %v", err)
	}
}

func TestFrameTCPv4(t *testing.T) {
	eth := Ethernet{Src: MAC{1}, Dst: MAC{2}}
	ip := IPv4{TTL: 64, Src: [4]byte{1, 2, 3, 4}, Dst: [4]byte{5, 6, 7, 8}}
	tcp := TCPHeader{SrcPort: 80, DstPort: 5555, Seq: 42, Flags: FlagACK | FlagPSH, Window: 1000}
	payload := []byte("response body")
	raw := EncodeTCPv4(&eth, &ip, &tcp, payload)

	var f Frame
	if err := f.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !f.HasTCP || f.IsIPv6 {
		t.Fatalf("HasTCP=%v IsIPv6=%v", f.HasTCP, f.IsIPv6)
	}
	if f.TCP.SrcPort != 80 || f.TCP.Seq != 42 {
		t.Errorf("TCP = %+v", f.TCP)
	}
	if string(f.Payload) != "response body" {
		t.Errorf("payload = %q", f.Payload)
	}
	if f.IP4.Src != ip.Src || f.IP4.Dst != ip.Dst {
		t.Errorf("IP = %+v", f.IP4)
	}
	if !f.IP4.VerifyChecksum(raw[EthernetHeaderLen:]) {
		t.Error("IP checksum")
	}
	segLen := f.TCP.HeaderLen() + len(f.Payload)
	if !VerifyChecksum(raw[EthernetHeaderLen+f.IP4.HeaderLen():],
		V4Context(f.IP4.Src, f.IP4.Dst, segLen)) {
		t.Error("TCP checksum")
	}
}

func TestFrameTCPv6(t *testing.T) {
	eth := Ethernet{}
	ip := IPv6{HopLimit: 64}
	ip.Src[0], ip.Dst[0] = 0x20, 0x20
	tcp := TCPHeader{SrcPort: 443, DstPort: 1234, Flags: FlagSYN,
		Options: TCPOptions{MSS: 1440, HasMSS: true}}
	raw := EncodeTCPv6(&eth, &ip, &tcp, nil)
	var f Frame
	if err := f.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !f.HasTCP || !f.IsIPv6 {
		t.Fatalf("HasTCP=%v IsIPv6=%v", f.HasTCP, f.IsIPv6)
	}
	if !f.TCP.Options.HasMSS || f.TCP.Options.MSS != 1440 {
		t.Errorf("options = %+v", f.TCP.Options)
	}
}

func TestFrameNonTCP(t *testing.T) {
	eth := Ethernet{Type: EtherTypeIPv4}
	ip := IPv4{TTL: 1, Protocol: IPProtoUDP}
	buf := eth.AppendTo(nil)
	buf = ip.AppendTo(buf, 0)
	var f Frame
	if err := f.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if f.HasTCP {
		t.Error("UDP frame claims TCP")
	}
}

func TestFrameUnsupportedEtherType(t *testing.T) {
	eth := Ethernet{Type: 0x0806} // ARP
	buf := eth.AppendTo(nil)
	var f Frame
	if err := f.Decode(buf); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

// Property: TCP header round-trips through encode/decode for
// arbitrary field values and option subsets.
func TestPropertyTCPRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8,
		window uint16, mss uint16, wscale uint8, hasMSS, hasWS, sackPerm, hasTS bool,
		tsval, tsecr uint32, nsack uint8) bool {
		h := TCPHeader{
			SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags: TCPFlags(flags), Window: window,
			Options: TCPOptions{
				MSS: mss, HasMSS: hasMSS,
				WScale: wscale, HasWScale: hasWS,
				SACKPermitted: sackPerm,
				TSVal:         tsval, TSEcr: tsecr, HasTimestamps: hasTS,
			},
		}
		if !hasMSS {
			h.Options.MSS = 0
		}
		if !hasWS {
			h.Options.WScale = 0
		}
		if !hasTS {
			h.Options.TSVal, h.Options.TSEcr = 0, 0
		}
		n := int(nsack % (MaxSACKBlocks + 1))
		for i := 0; i < n; i++ {
			h.Options.SACK.Append(
				SACKBlock{Left: seq + uint32(i)*1000, Right: seq + uint32(i)*1000 + 500})
		}
		raw := h.AppendTo(nil, nil, checksumContext{})
		var got TCPHeader
		if _, err := got.DecodeFromBytes(raw); err != nil {
			return false
		}
		got.Checksum = 0
		if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort ||
			got.Seq != h.Seq || got.Ack != h.Ack ||
			got.Flags != h.Flags || got.Window != h.Window {
			return false
		}
		o, w := got.Options, h.Options
		if o.HasMSS != w.HasMSS || o.MSS != w.MSS ||
			o.HasWScale != w.HasWScale || o.WScale != w.WScale ||
			o.SACKPermitted != w.SACKPermitted ||
			o.HasTimestamps != w.HasTimestamps || o.TSVal != w.TSVal || o.TSEcr != w.TSEcr {
			return false
		}
		if o.SACK.Len() != h.sackBlocksThatFit() {
			return false
		}
		for i := 0; i < o.SACK.Len(); i++ {
			if o.SACK.At(i) != w.SACK.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decoder never panics on arbitrary bytes.
func TestPropertyDecodeNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		var fr Frame
		_ = fr.Decode(data)
		var tcp TCPHeader
		_, _ = tcp.DecodeFromBytes(data)
		var ip IPv4
		_, _ = ip.DecodeFromBytes(data)
		var ip6 IPv6
		_, _ = ip6.DecodeFromBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: checksummed v4 frames always verify; flipping any byte of
// the TCP segment breaks verification.
func TestPropertyChecksumDetectsCorruption(t *testing.T) {
	f := func(seq uint32, payload []byte, flip uint16) bool {
		if len(payload) > 1200 {
			payload = payload[:1200]
		}
		src := [4]byte{192, 0, 2, 1}
		dst := [4]byte{192, 0, 2, 2}
		h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: seq, Flags: FlagACK}
		segLen := h.HeaderLen() + len(payload)
		ctx := V4Context(src, dst, segLen)
		raw := h.AppendTo(nil, payload, ctx)
		if !VerifyChecksum(raw, ctx) {
			return false
		}
		// XOR-ing one byte with 0x55 changes its 16-bit word by less
		// than 0xffff in magnitude, so it can never alias in
		// one's-complement arithmetic: verification must fail.
		i := int(flip) % len(raw)
		raw[i] ^= 0x55
		return !VerifyChecksum(raw, ctx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTCPHeaderString(t *testing.T) {
	h := TCPHeader{SrcPort: 80, DstPort: 1234, Seq: 5, Ack: 6, Flags: FlagACK, Window: 7}
	want := "80 > 1234 [A] seq=5 ack=6 win=7"
	if got := h.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestIPProtoString(t *testing.T) {
	if IPProtoTCP.String() != "TCP" || IPProtoUDP.String() != "UDP" {
		t.Error("proto strings")
	}
	if IPProto(99).String() != "proto(99)" {
		t.Errorf("unknown proto = %q", IPProto(99).String())
	}
}
