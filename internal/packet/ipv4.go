package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header. Options are preserved as raw bytes.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Checksum uint16
	Src      [4]byte
	Dst      [4]byte
	Options  []byte // raw, length must be a multiple of 4
}

// IPv4 flag bits.
const (
	IPv4DontFragment  = 0x2
	IPv4MoreFragments = 0x1
)

// HeaderLen reports the encoded header length including options.
func (ip *IPv4) HeaderLen() int { return IPv4HeaderLen + len(ip.Options) }

// DecodeFromBytes parses the header and returns the payload
// (truncated to TotalLen when the buffer carries trailing padding).
func (ip *IPv4) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < IPv4HeaderLen {
		return nil, fmt.Errorf("ipv4: %w (%d bytes)", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("ipv4: %w (version %d)", ErrBadVersion, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return nil, fmt.Errorf("ipv4: %w (IHL %d)", ErrBadHeader, ihl)
	}
	if len(data) < ihl {
		return nil, fmt.Errorf("ipv4: %w (IHL %d > %d bytes)", ErrTruncated, ihl, len(data))
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	flagsFrag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(flagsFrag >> 13)
	ip.FragOff = flagsFrag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProto(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	if ihl > IPv4HeaderLen {
		ip.Options = append(ip.Options[:0], data[IPv4HeaderLen:ihl]...)
	} else {
		ip.Options = nil
	}
	end := int(ip.TotalLen)
	if end < ihl || end > len(data) {
		end = len(data)
	}
	return data[ihl:end], nil
}

// AppendTo serializes the header onto b, computing TotalLen from
// payloadLen and filling in the header checksum. It returns the
// extended slice.
func (ip *IPv4) AppendTo(b []byte, payloadLen int) []byte {
	if len(ip.Options)%4 != 0 {
		panic("ipv4: options length must be a multiple of 4")
	}
	hlen := ip.HeaderLen()
	start := len(b)
	b = append(b, byte(4<<4|hlen/4), ip.TOS)
	total := hlen + payloadLen
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b = append(b, ip.TTL, byte(ip.Protocol))
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, ip.Src[:]...)
	b = append(b, ip.Dst[:]...)
	b = append(b, ip.Options...)
	sum := Checksum(b[start:start+hlen], 0)
	binary.BigEndian.PutUint16(b[start+10:], sum)
	return b
}

// VerifyChecksum reports whether the decoded header bytes carry a
// valid header checksum. It re-serializes deterministically, so it is
// valid only for headers produced by this package or standard stacks.
func (ip *IPv4) VerifyChecksum(raw []byte) bool {
	hlen := int(raw[0]&0x0f) * 4
	if len(raw) < hlen {
		return false
	}
	return Checksum(raw[:hlen], 0) == 0
}
