// Package seqspace implements TCP sequence-number arithmetic. Wire
// sequence numbers are 32-bit and wrap: a flow that starts at a random
// ISN near 2^32−1, or transfers more than 4 GiB, reuses numeric
// values, so raw uint32 comparisons silently invert. Two tools fix
// that everywhere the repo reasons about sequence space:
//
//   - modular comparisons (Less, LessEq, Diff) in the style of
//     RFC 793 §3.3 / RFC 1982: a is before b when the signed 32-bit
//     difference a−b is negative, which is correct as long as the two
//     values are within 2^31 of each other (always true inside one
//     flight window);
//
//   - an Unwrapper that maps wire values onto monotonic 64-bit stream
//     offsets, so scoreboards and maps can key by a value that never
//     collides across wraps.
package seqspace

// Bias is the epoch added to the first unwrapped value. Starting one
// full epoch up keeps legitimately-backward values (a zero-window
// probe at snd_una−1, a DSACK below the ISN, hostile garbage in a
// fuzzed pcap) from underflowing uint64 arithmetic: the reference can
// never travel more than 2^31−1 backward of where it has been.
const Bias = uint64(1) << 32

// Less reports whether wire sequence a is strictly before b in
// modular 32-bit arithmetic.
func Less(a, b uint32) bool { return int32(a-b) < 0 }

// LessEq reports whether a is at or before b.
func LessEq(a, b uint32) bool { return int32(a-b) <= 0 }

// Diff is the signed modular distance a−b (positive when a is after
// b). Callers must guarantee |a−b| < 2^31, which holds for any two
// values inside one window.
func Diff(a, b uint32) int32 { return int32(a - b) }

// Max returns the later of a and b in modular order.
func Max(a, b uint32) uint32 {
	if Less(a, b) {
		return b
	}
	return a
}

// Expand places a wire value in the first epoch, Bias|seq. It is the
// value Unwrap returns for the first sequence number it sees; use it
// to seed offsets that must agree with an Unwrapper initialized at the
// same wire value.
func Expand(seq uint32) uint64 { return Bias | uint64(seq) }

// Unwrapper maps wire sequence numbers onto monotonic uint64 stream
// offsets. The first value observed lands at Expand(first); every
// later value is placed within ±2^31 of the highest offset seen, so
// in-window values (data, ACKs, SACK edges, probes at snd_una−1) all
// unwrap consistently across any number of 2^32 wraps.
//
// The low 32 bits of every returned offset equal the wire value, so
// converting an offset back for the wire is uint32(off).
type Unwrapper struct {
	ref  uint64
	init bool
}

// Initialized reports whether the unwrapper has seen a value.
func (u *Unwrapper) Initialized() bool { return u.init }

// Unwrap returns the stream offset of seq. The reference only moves
// forward (to the highest offset returned), so values up to 2^31−1
// behind the latest point keep resolving to their original offsets.
func (u *Unwrapper) Unwrap(seq uint32) uint64 {
	if !u.init {
		u.init = true
		u.ref = Expand(seq)
		return u.ref
	}
	d := int32(seq - uint32(u.ref))
	v := uint64(int64(u.ref) + int64(d))
	if v > u.ref {
		u.ref = v
	}
	return v
}
