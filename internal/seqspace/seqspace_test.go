package seqspace

import (
	"math/rand"
	"testing"
)

// TestLessAroundWrap checks the modular order at the exact wrap point:
// any positive in-window step must order forward even when the raw
// uint32 comparison inverts.
func TestLessAroundWrap(t *testing.T) {
	cases := []struct {
		a, b uint32
		less bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, false},
		{0xFFFFFFFF, 0, true},           // wrap by one
		{0, 0xFFFFFFFF, false},          // and its inverse
		{0xFFFFFF00, 0x00000100, true},  // wrap across a window
		{0x00000100, 0xFFFFFF00, false}, //
		{0x7FFFFFFF, 0x80000000, true},  // mid-space boundary
		{0, 0x7FFFFFFF, true},           // max forward distance
		{0xFFFFFFFF, 0x7FFFFFFE, true},  // max forward across wrap
	}
	// The exact half-space distance (2^31) is ambiguous by design
	// (RFC 1982 leaves it undefined); antisymmetry holds only for
	// |a−b| < 2^31, which every case above respects.
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.less {
			t.Errorf("Less(%#x, %#x) = %v, want %v", c.a, c.b, got, c.less)
		}
		if c.a != c.b {
			if Less(c.a, c.b) == Less(c.b, c.a) {
				t.Errorf("Less not antisymmetric at %#x, %#x", c.a, c.b)
			}
		}
		if got := LessEq(c.a, c.b); got != (c.less || c.a == c.b) {
			t.Errorf("LessEq(%#x, %#x) = %v", c.a, c.b, got)
		}
	}
}

// TestLessProperty: for random base points anywhere in the space —
// including straddling the wrap — every step d in (0, 2^31) orders
// forward and Diff recovers it.
func TestLessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		a := uint32(rng.Uint64())
		d := uint32(rng.Int63n(1<<31-1) + 1)
		b := a + d // modular
		if !Less(a, b) {
			t.Fatalf("Less(%#x, %#x) false for step %d", a, b, d)
		}
		if Less(b, a) {
			t.Fatalf("Less(%#x, %#x) true backwards for step %d", b, a, d)
		}
		if got := Diff(b, a); got != int32(d) {
			t.Fatalf("Diff(%#x, %#x) = %d, want %d", b, a, got, d)
		}
		if Max(a, b) != b || Max(b, a) != b {
			t.Fatalf("Max(%#x, %#x) broken", a, b)
		}
	}
}

// TestUnwrapperMonotonicAcrossWrap walks a stream that starts near
// 2^32−1 and crosses the wrap several times; offsets must grow
// strictly and keep the wire value in the low 32 bits.
func TestUnwrapperMonotonicAcrossWrap(t *testing.T) {
	var u Unwrapper
	start := uint32(0xFFFFFC00) // 1 KiB short of the wrap
	if got := u.Unwrap(start); got != Expand(start) {
		t.Fatalf("first Unwrap = %#x, want Expand = %#x", got, Expand(start))
	}
	prev := Expand(start)
	seq := start
	for i := 0; i < 10_000_000; i += 1460 {
		seq += 1460 // wraps repeatedly
		off := u.Unwrap(seq)
		if off <= prev {
			t.Fatalf("offset not monotonic at step %d: %#x then %#x", i, prev, off)
		}
		if off-prev != 1460 {
			t.Fatalf("offset step = %d, want 1460", off-prev)
		}
		if uint32(off) != seq {
			t.Fatalf("low bits lost: off=%#x seq=%#x", off, seq)
		}
		prev = off
	}
}

// TestUnwrapperBackwardStable: values behind the reference (old ACKs,
// DSACK edges, the zero-window probe at snd_una−1) resolve to the
// offsets they had before, and never advance the reference.
func TestUnwrapperBackwardStable(t *testing.T) {
	var u Unwrapper
	isn := uint32(0xFFFFFFF0)
	base := u.Unwrap(isn)

	// Advance past the wrap.
	ahead := u.Unwrap(isn + 50_000)
	if ahead != base+50_000 {
		t.Fatalf("forward unwrap = %#x, want %#x", ahead, base+50_000)
	}
	// A probe one byte below the base must come out one below, not
	// 2^32−1 above.
	if got := u.Unwrap(isn - 1); got != base-1 {
		t.Errorf("Unwrap(isn-1) = %#x, want %#x", got, base-1)
	}
	// Re-unwrapping an old value is stable.
	if got := u.Unwrap(isn + 1000); got != base+1000 {
		t.Errorf("old value moved: %#x want %#x", got, base+1000)
	}
	// And the reference did not regress: forward still works.
	if got := u.Unwrap(isn + 50_001); got != base+50_001 {
		t.Errorf("reference regressed: %#x want %#x", got, base+50_001)
	}
}

// TestUnwrapperNoUnderflow: even a maximal backward step from the
// initial reference stays above zero thanks to the epoch bias, so
// hostile input cannot underflow offsets into huge positives.
func TestUnwrapperNoUnderflow(t *testing.T) {
	var u Unwrapper
	u.Unwrap(0)
	off := u.Unwrap(1 << 31) // d = −2^31 … or +2^31? int32(2^31) = −2^31
	if off != Expand(0)-(1<<31) {
		t.Fatalf("backward half-space = %#x", off)
	}
	if off > Expand(0) {
		t.Fatal("backward step moved forward")
	}
}

// TestUnwrapperRandomWalk: random in-window forward steps with
// occasional backward references mimic a real flow (data advancing,
// ACK/SACK edges trailing); the unwrapped order must match the
// modular order against the running maximum.
func TestUnwrapperRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var u Unwrapper
	seq := uint32(rng.Uint64())
	off := u.Unwrap(seq)
	for i := 0; i < 100_000; i++ {
		if rng.Intn(4) == 0 {
			// Look back up to 64 KiB (an old ACK).
			back := uint32(rng.Intn(65536))
			got := u.Unwrap(seq - back)
			if got != off-uint64(back) {
				t.Fatalf("backward ref wrong at step %d: got %#x want %#x", i, got, off-uint64(back))
			}
			continue
		}
		step := uint32(rng.Intn(65536))
		seq += step
		got := u.Unwrap(seq)
		if got != off+uint64(step) {
			t.Fatalf("forward step wrong at %d: got %#x want %#x", i, got, off+uint64(step))
		}
		off = got
	}
}
