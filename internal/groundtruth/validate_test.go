package groundtruth_test

import (
	"strings"
	"testing"

	"tcpstall/internal/core"
	"tcpstall/internal/groundtruth"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// The paper reports ~97% agreement between TAPO and
// kernel-instrumented ground truth (§3.4). The simulator equivalent
// must hold at least 95% per service — with random ISNs, so the whole
// wire view exercises arbitrary (including wrapping) sequence spaces.
// This is the CI regression gate for every analyzer/classifier
// change.
func TestDifferentialAgreement(t *testing.T) {
	for _, svc := range workload.Services() {
		svc := svc
		t.Run(svc.Name, func(t *testing.T) {
			res := workload.Generate(svc, 7, workload.GenOptions{Flows: 100, WithTruth: true})
			var flows []*trace.Flow
			var truths []*groundtruth.FlowTruth
			for _, r := range res {
				if r.Truth == nil {
					t.Fatal("WithTruth yielded a nil truth log")
				}
				flows = append(flows, r.Flow)
				truths = append(truths, r.Truth)
			}
			rep := groundtruth.Validate(flows, truths, core.DefaultConfig())
			if rep.Flows != len(flows) {
				t.Fatalf("graded %d of %d flows", rep.Flows, len(flows))
			}
			if rep.Stalls == 0 {
				t.Fatal("no stalls graded; the gate is vacuous")
			}
			if acc := rep.Accuracy(); acc < 0.95 {
				t.Errorf("agreement %.2f%% < 95%%\n%s", 100*acc, rep)
			}
			t.Logf("\n%s", rep)
		})
	}
}

// Every disagreement in a validation report must carry the flight
// evidence behind TAPO's (wrong) verdict: a non-empty decision path
// and a renderable narrative. This is what makes a dropped-accuracy
// CI failure debuggable from its log alone.
func TestDisagreementsCarryEvidence(t *testing.T) {
	rep := groundtruth.NewReport()
	for _, svc := range workload.Services() {
		res := workload.Generate(svc, 7, workload.GenOptions{Flows: 100, WithTruth: true})
		var flows []*trace.Flow
		var truths []*groundtruth.FlowTruth
		for _, r := range res {
			flows = append(flows, r.Flow)
			truths = append(truths, r.Truth)
		}
		rep.Merge(groundtruth.Validate(flows, truths, core.DefaultConfig()))
	}
	if rep.Stalls-rep.Agree != len(rep.Disagreements) {
		t.Fatalf("%d stalls, %d agree, but %d disagreements recorded",
			rep.Stalls, rep.Agree, len(rep.Disagreements))
	}
	if len(rep.Disagreements) == 0 {
		t.Skip("perfect agreement this seed; nothing to check")
	}
	for i := range rep.Disagreements {
		d := &rep.Disagreements[i]
		if d.Truth == d.Predicted {
			t.Errorf("disagreement %d agrees with itself: %+v", i, d)
		}
		if d.Evidence == nil {
			t.Errorf("disagreement %d (flow %s stall %d) has no evidence", i, d.FlowID, d.Stall)
			continue
		}
		if len(d.Evidence.Decision) == 0 {
			t.Errorf("disagreement %d evidence has an empty decision path", i)
		}
		if d.Evidence.Ref.Stall != d.Stall {
			t.Errorf("disagreement %d evidence ref %d != stall %d", i, d.Evidence.Ref.Stall, d.Stall)
		}
		s := d.String()
		if !strings.Contains(s, "truth=") || !strings.Contains(s, "tapo=") {
			t.Errorf("disagreement narrative missing verdicts: %q", s)
		}
	}
	// The report's own rendering surfaces them too.
	if !strings.Contains(rep.String(), "disagreements (") {
		t.Errorf("report String() omits the disagreement section:\n%s", rep)
	}
}

// Truth recording must observe every event family somewhere in the
// dataset — a silent recording regression would hollow out the gate
// while agreement stayed high.
func TestTruthEventCoverage(t *testing.T) {
	seen := map[groundtruth.EventKind]bool{}
	for _, svc := range workload.Services() {
		res := workload.Generate(svc, 7, workload.GenOptions{Flows: 60, WithTruth: true, SkipTraces: true})
		for _, r := range res {
			for _, e := range r.Truth.Events {
				seen[e.Kind] = true
			}
		}
	}
	for _, k := range []groundtruth.EventKind{
		groundtruth.EventRTOFire, groundtruth.EventRetrans,
		groundtruth.EventZeroWindow, groundtruth.EventAppWrite,
		groundtruth.EventRequest, groundtruth.EventDrop,
	} {
		if !seen[k] {
			t.Errorf("event kind %d never recorded across all services", k)
		}
	}
}
