package groundtruth

import (
	"fmt"
	"sort"
	"strings"

	"tcpstall/internal/core"
	"tcpstall/internal/flight"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// Cause labels one TAPO-detected stall with the simulator's actual
// cause, by matching the stall-ending record against the recorded
// events at the same virtual instant. The precedence mirrors TAPO's
// Figure-5 walk so agreement means "right for the right reason":
//
//  1. the advertised window was zero when the silence began;
//  2. the stall ends with a retransmission the sender actually put on
//     the wire at that instant (matched by time AND wire seq, so a
//     partial-ACK-triggered retransmission coinciding with an
//     incoming ack does not mislabel the ack);
//  3. the stall ends with a delayed application write (head delay →
//     data unavailable, mid-response pause → resource constraint);
//  4. the stall ends with a client request arriving (no data
//     outstanding → client idle, otherwise the request was merely
//     late → packet delay);
//  5. otherwise an incoming segment broke the silence → packet delay;
//     anything else is undetermined.
func (ft *FlowTruth) Cause(f *trace.Flow, st *core.Stall) core.Cause {
	if ft.ZeroAt(st.Start) {
		return core.CauseZeroWindow
	}
	end := &f.Records[st.EndRecIdx]
	if end.Dir == tcpsim.DirOut && end.Seg.Len > 0 {
		for i := range ft.Events {
			e := &ft.Events[i]
			if e.T == st.End && e.Kind == EventRetrans && e.WireSeq == end.Seg.Seq {
				return core.CauseTimeoutRetrans
			}
		}
		for i := range ft.Events {
			e := &ft.Events[i]
			if e.T == st.End && e.Kind == EventAppWrite {
				if e.Write == tcpsim.WriteAfterHeadDelay {
					return core.CauseDataUnavailable
				}
				return core.CauseResourceConstraint
			}
		}
	}
	if end.Dir == tcpsim.DirIn && end.Seg.Len > 0 {
		for i := range ft.Events {
			e := &ft.Events[i]
			if e.T == st.End && e.Kind == EventRequest {
				if e.Outstanding {
					return core.CausePacketDelay
				}
				return core.CauseClientIdle
			}
		}
	}
	if end.Dir == tcpsim.DirIn {
		return core.CausePacketDelay
	}
	return core.CauseUndetermined
}

// Disagreement is one stall where TAPO's wire-only verdict differs
// from the simulator's privileged truth, carrying the flight-recorder
// evidence so the misclassification can be debugged from the report
// alone: which Figure-5/Table-5 branches fired, with which values.
type Disagreement struct {
	FlowID     string
	Stall      int // monotonic per-flow stall ID
	Truth      core.Cause
	Predicted  core.Cause
	Start, End sim.Time
	// Evidence is TAPO's decision path and packet window for this
	// stall; nil when grading ran without a recorder or the evidence
	// entry was evicted from the per-flow ring.
	Evidence *flight.Evidence
}

// String renders the disagreement with its decision path, one branch
// per line.
func (d *Disagreement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow %s stall #%d [%.3fs..%.3fs]: truth=%s tapo=%s",
		d.FlowID, d.Stall, d.Start.Seconds(), d.End.Seconds(), d.Truth, d.Predicted)
	if d.Evidence == nil {
		b.WriteString("\n    (no evidence captured)")
		return b.String()
	}
	for _, step := range d.Evidence.Decision {
		b.WriteString("\n    ")
		b.WriteString(step.String())
	}
	return b.String()
}

// Report aggregates a differential-validation run: the confusion
// matrix between ground-truth causes (rows) and TAPO's classification
// (columns), over every stall of every graded flow.
type Report struct {
	Flows  int
	Stalls int
	Agree  int
	// Confusion counts stalls per (truth, predicted) cause pair.
	Confusion map[[2]core.Cause]int
	// Disagreements lists every graded stall where truth != predicted,
	// each with its flight evidence (when a recorder was attached).
	Disagreements []Disagreement
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{Confusion: make(map[[2]core.Cause]int)}
}

// Accuracy is the aggregate classification agreement in [0, 1];
// 1 when no stalls were graded.
func (r *Report) Accuracy() float64 {
	if r.Stalls == 0 {
		return 1
	}
	return float64(r.Agree) / float64(r.Stalls)
}

// Merge folds another report's counts into r.
func (r *Report) Merge(o *Report) {
	r.Flows += o.Flows
	r.Stalls += o.Stalls
	r.Agree += o.Agree
	for k, v := range o.Confusion {
		r.Confusion[k] += v
	}
	r.Disagreements = append(r.Disagreements, o.Disagreements...)
}

// AddFlow grades one analyzed flow against its truth log. rec, when
// non-nil, supplies the flight evidence attached to each disagreement
// (it must be the recorder that observed a's analysis).
func (r *Report) AddFlow(f *trace.Flow, ft *FlowTruth, a *core.FlowAnalysis, rec *flight.Recorder) {
	r.Flows++
	for i := range a.Stalls {
		st := &a.Stalls[i]
		truth := ft.Cause(f, st)
		r.Stalls++
		if truth == st.Cause {
			r.Agree++
		} else {
			d := Disagreement{
				FlowID:    a.FlowID,
				Stall:     st.ID,
				Truth:     truth,
				Predicted: st.Cause,
				Start:     st.Start,
				End:       st.End,
			}
			if rec != nil {
				d.Evidence = rec.Evidence(st.ID)
			}
			r.Disagreements = append(r.Disagreements, d)
		}
		r.Confusion[[2]core.Cause{truth, st.Cause}]++
	}
}

// Validate runs TAPO over each flow with a flight recorder attached
// and grades every stall; flows and truths are parallel slices (a nil
// truth skips the flow). Every disagreement in the report carries its
// evidence — the decision path behind the wrong verdict.
func Validate(flows []*trace.Flow, truths []*FlowTruth, cfg core.Config) *Report {
	rep := NewReport()
	for i, f := range flows {
		if f == nil || i >= len(truths) || truths[i] == nil {
			continue
		}
		// Offline grading keeps evidence for every stall: a flow can't
		// stall more often than it has records, so this cap never
		// evicts.
		a, rec := core.AnalyzeFlight(f, cfg, flight.Config{MaxStalls: len(f.Records) + 1})
		rep.AddFlow(f, truths[i], a, rec)
	}
	return rep
}

// causesIn lists the causes appearing in the matrix, in declaration
// order (the stable Figure-5 order).
func (r *Report) causesIn() []core.Cause {
	seen := map[core.Cause]bool{}
	for k := range r.Confusion {
		seen[k[0]] = true
		seen[k[1]] = true
	}
	var cs []core.Cause
	for c := range seen {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// String renders the confusion matrix (rows: ground truth, columns:
// TAPO) with the aggregate agreement, in the repo's table style.
func (r *Report) String() string {
	cs := r.causesIn()
	var b strings.Builder
	fmt.Fprintf(&b, "Differential validation: %d flows, %d stalls, agreement %.2f%%\n",
		r.Flows, r.Stalls, 100*r.Accuracy())
	if len(cs) == 0 {
		return b.String()
	}
	w := len("truth\\tapo")
	for _, c := range cs {
		if n := len(c.String()); n > w {
			w = n
		}
	}
	fmt.Fprintf(&b, "%*s", w, "truth\\tapo")
	for _, c := range cs {
		fmt.Fprintf(&b, "  %*s", w, c)
	}
	b.WriteByte('\n')
	for _, truth := range cs {
		fmt.Fprintf(&b, "%*s", w, truth)
		for _, pred := range cs {
			fmt.Fprintf(&b, "  %*d", w, r.Confusion[[2]core.Cause{truth, pred}])
		}
		b.WriteByte('\n')
	}
	if len(r.Disagreements) > 0 {
		const show = 8
		fmt.Fprintf(&b, "disagreements (%d, showing %d):\n",
			len(r.Disagreements), min(show, len(r.Disagreements)))
		for i := range r.Disagreements {
			if i == show {
				break
			}
			fmt.Fprintf(&b, "  %s\n", r.Disagreements[i].String())
		}
	}
	return b.String()
}
