// Package groundtruth records what the simulator actually did to each
// flow — RTO firings, retransmissions, zero-window episodes,
// application write delays, request arrivals, netem drops — and
// grades TAPO's wire-only stall classifications against those
// privileged facts. This is the repo's analogue of the paper's §3.4
// kernel-instrumented validation, where TAPO agreed with ground truth
// on ~97% of stalls: every future analyzer change is checked against
// the same oracle.
package groundtruth

import (
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// EventKind tags one recorded truth event.
type EventKind int

// Event kinds.
const (
	// EventRTOFire: the sender's retransmission timer expired.
	EventRTOFire EventKind = iota
	// EventRetrans: a data segment was retransmitted (WireSeq set).
	EventRetrans
	// EventZeroWindow: the receiver's advertised window transitioned
	// (Zero reports the new state).
	EventZeroWindow
	// EventAppWrite: the server application handed delayed bytes to
	// TCP (Write distinguishes head delay from mid-response pause).
	EventAppWrite
	// EventRequest: a client request reached the server (Outstanding
	// reports whether response data was still unacked).
	EventRequest
	// EventDrop: the emulated network dropped a packet.
	EventDrop
)

// Event is one privileged simulator fact with its virtual timestamp.
type Event struct {
	T    sim.Time
	Kind EventKind
	// WireSeq is the retransmitted segment's wire sequence number
	// (EventRetrans only).
	WireSeq uint32
	// Zero is the window state after an EventZeroWindow transition.
	Zero bool
	// Write is the delayed-write kind for EventAppWrite.
	Write tcpsim.AppWriteKind
	// Outstanding is the unacked-data state at an EventRequest.
	Outstanding bool
}

// FlowTruth is the per-flow ground-truth event log, in event order
// (the simulator emits them chronologically).
type FlowTruth struct {
	Events []Event
}

// ZeroAt reports whether the receiver's advertised window was zero at
// time t (state of the last transition at or before t).
func (ft *FlowTruth) ZeroAt(t sim.Time) bool {
	zero := false
	for i := range ft.Events {
		e := &ft.Events[i]
		if e.T > t {
			break
		}
		if e.Kind == EventZeroWindow {
			zero = e.Zero
		}
	}
	return zero
}

// Recorder accumulates a FlowTruth. It implements tcpsim.TruthSink
// and doubles as a netem OnDrop hook; all callbacks run on the flow's
// simulator goroutine, so no locking is needed.
type Recorder struct {
	sm    *sim.Simulator
	truth FlowTruth
}

// NewRecorder builds a recorder; the simulator timestamps drop
// events (the netem hook does not carry a time).
func NewRecorder(s *sim.Simulator) *Recorder { return &Recorder{sm: s} }

// Truth returns the accumulated event log.
func (r *Recorder) Truth() *FlowTruth { return &r.truth }

// RTOFire implements tcpsim.TruthSink.
func (r *Recorder) RTOFire(t sim.Time) {
	r.truth.Events = append(r.truth.Events, Event{T: t, Kind: EventRTOFire})
}

// RetransSent implements tcpsim.TruthSink.
func (r *Recorder) RetransSent(t sim.Time, wireSeq uint32) {
	r.truth.Events = append(r.truth.Events, Event{T: t, Kind: EventRetrans, WireSeq: wireSeq})
}

// ZeroWindow implements tcpsim.TruthSink.
func (r *Recorder) ZeroWindow(t sim.Time, zero bool) {
	r.truth.Events = append(r.truth.Events, Event{T: t, Kind: EventZeroWindow, Zero: zero})
}

// AppWrite implements tcpsim.TruthSink.
func (r *Recorder) AppWrite(t sim.Time, kind tcpsim.AppWriteKind) {
	r.truth.Events = append(r.truth.Events, Event{T: t, Kind: EventAppWrite, Write: kind})
}

// RequestArrival implements tcpsim.TruthSink.
func (r *Recorder) RequestArrival(t sim.Time, outstanding bool) {
	r.truth.Events = append(r.truth.Events, Event{T: t, Kind: EventRequest, Outstanding: outstanding})
}

// Drop is a netem OnDrop hook; the packet itself is irrelevant, only
// that the network ate one at this instant.
func (r *Recorder) Drop(any) {
	r.truth.Events = append(r.truth.Events, Event{T: r.sm.Now(), Kind: EventDrop})
}
