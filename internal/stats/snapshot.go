package stats

import "fmt"

// This file is the serialization boundary for the fleet tier: each
// accumulator gets a plain, JSON-tagged State twin that round-trips
// losslessly, so a tapod member can ship its rolling aggregates to the
// tapoctl head and the head can reconstruct a mergeable value on the
// other side. The invariant the fleet protocol rests on (pinned by
// TestSnapshotRoundTripMerge) is
//
//	Merge(FromState(a.State()), FromState(b.State())) == direct Merge(a, b)
//
// for every accumulator, including the empty and single-sample edges.

// HistogramState is the wire form of a Histogram. Counts has one
// entry per bound plus the trailing +Inf bucket; the observation
// count is implied (it equals the sum of Counts), so it cannot drift
// out of sync with the buckets in transit.
type HistogramState struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
}

// State snapshots the histogram into its wire form. The returned
// slices are copies; mutating them does not affect h.
func (h *Histogram) State() HistogramState {
	return HistogramState{
		Bounds: append([]float64{}, h.bounds...),
		Counts: append([]uint64{}, h.counts...),
		Sum:    h.sum,
	}
}

// HistogramFromState reconstructs a Histogram from its wire form,
// validating the invariants NewHistogram enforces plus the
// bounds/counts length contract — wire data is untrusted input.
func HistogramFromState(st HistogramState) (*Histogram, error) {
	for i := 1; i < len(st.Bounds); i++ {
		if st.Bounds[i] <= st.Bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram state bounds not strictly ascending at index %d", i)
		}
	}
	if len(st.Counts) != len(st.Bounds)+1 {
		return nil, fmt.Errorf("stats: histogram state has %d counts for %d bounds (want %d)",
			len(st.Counts), len(st.Bounds), len(st.Bounds)+1)
	}
	h := NewHistogram(append([]float64{}, st.Bounds...))
	var n uint64
	for i, c := range st.Counts {
		h.counts[i] = c
		n += c
	}
	h.n = n
	h.sum = st.Sum
	return h, nil
}

// SummaryState is the wire form of a Summary. SumSq rides along so
// StdDev survives the round trip.
type SummaryState struct {
	N     int     `json:"n"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	SumSq float64 `json:"sum_sq"`
}

// State snapshots the summary into its wire form.
func (s *Summary) State() SummaryState {
	return SummaryState{N: s.N, Sum: s.Sum, Min: s.Min, Max: s.Max, SumSq: s.sumSq}
}

// SummaryFromState reconstructs a Summary from its wire form. A
// negative count is rejected: merging it would silently corrupt every
// downstream mean.
func SummaryFromState(st SummaryState) (Summary, error) {
	if st.N < 0 {
		return Summary{}, fmt.Errorf("stats: summary state has negative count %d", st.N)
	}
	return Summary{N: st.N, Sum: st.Sum, Min: st.Min, Max: st.Max, sumSq: st.SumSq}, nil
}

// SampleState is the wire form of a Sample: the retained observations
// in ascending order. Order carries no information (Sample sorts
// lazily before every order-derived query), so the sorted form is the
// canonical one and serializing is deterministic.
type SampleState struct {
	Values []float64 `json:"values"`
}

// State snapshots the sample into its wire form. The returned slice
// is a copy.
func (s *Sample) State() SampleState {
	return SampleState{Values: append([]float64{}, s.Values()...)}
}

// SampleFromState reconstructs a Sample from its wire form.
func SampleFromState(st SampleState) *Sample {
	out := NewSample(len(st.Values))
	out.AddAll(st.Values)
	return out
}
