package stats

import "math"

// Histogram counts observations against fixed ascending bucket upper
// bounds, with an implicit +Inf bucket at the end. Unlike Sample it
// retains no observations, so it is cheap enough for per-record hot
// paths (the live monitor's rolling windows) and merges in O(buckets).
// The cumulative-count layout matches what a Prometheus histogram
// exposition needs.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	n      uint64
	sum    float64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is retained; callers must not modify it.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Bounds returns the bucket upper bounds (shared; read-only).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Add folds one observation in.
func (h *Histogram) Add(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
}

// N reports the observation count.
func (h *Histogram) N() uint64 { return h.n }

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the observation mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Count reports the count in bucket i (i == len(Bounds()) is +Inf).
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Cumulative reports the count of observations ≤ bounds[i]; for
// i == len(Bounds()) it reports N. This is the `le` series of a
// Prometheus histogram.
func (h *Histogram) Cumulative(i int) uint64 {
	var c uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return c
}

// Clone returns an independent copy of h. The bounds slice is shared
// (read-only by contract); counts are copied.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds: h.bounds,
		counts: append([]uint64{}, h.counts...),
		n:      h.n,
		sum:    h.sum,
	}
}

// Merge folds another histogram into h. Both must share bounds
// (typically both built by the same NewHistogram call site); merging
// is associative and commutative, so per-shard histograms combine
// into the same totals regardless of sharding.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if len(o.counts) != len(h.counts) {
		panic("stats: merging histograms with different bucket layouts")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset zeroes the counts, retaining the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Returns 0 when
// empty. Observations in the +Inf bucket clamp to the highest finite
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the highest finite bound.
				if len(h.bounds) == 0 {
					return math.Inf(1)
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			within := rank - float64(cum-c)
			frac := within / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	if len(h.bounds) == 0 {
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}
