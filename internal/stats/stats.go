// Package stats provides the small statistical toolkit the
// measurement study needs: empirical CDFs, quantiles, and running
// summaries, plus text renderers that print tables and CDF series the
// way the paper reports them.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a running mean/min/max/count without retaining
// samples.
type Summary struct {
	N     int
	Sum   float64
	Min   float64
	Max   float64
	sumSq float64
}

// Add folds a sample into the summary.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
	s.sumSq += v * v
}

// Mean reports the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Merge folds another summary into s. The operation is associative
// and commutative, so per-worker summaries built by the parallel
// pipeline combine into the same totals regardless of how the work
// was sharded.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.N == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
	s.Sum += o.Sum
	s.sumSq += o.sumSq
}

// StdDev reports the population standard deviation (0 when empty).
func (s *Summary) StdDev() float64 {
	if s.N == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Sample is a growable collection of float64 observations supporting
// quantiles and CDF evaluation. It sorts lazily.
type Sample struct {
	data   []float64
	sorted bool
}

// NewSample returns an empty sample, optionally pre-sized.
func NewSample(capacity int) *Sample {
	return &Sample{data: make([]float64, 0, capacity)}
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.data = append(s.data, v)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(vs []float64) {
	s.data = append(s.data, vs...)
	s.sorted = false
}

// Merge appends another sample's observations into s. Order-derived
// quantities (quantiles, CDF, Values) are identical however the
// observations were sharded across merges, since the sample sorts
// before evaluating them.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.data) == 0 {
		return
	}
	s.data = append(s.data, o.data...)
	s.sorted = false
}

// Reset empties the sample, retaining its storage.
func (s *Sample) Reset() {
	s.data = s.data[:0]
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.data) }

// Values returns the observations in ascending order. The returned
// slice aliases internal storage; do not modify it.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.data
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.data)
		s.sorted = true
	}
}

// Mean reports the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.data {
		sum += v
	}
	return sum / float64(len(s.data))
}

// Quantile reports the q-quantile (q in [0,1]) with linear
// interpolation between order statistics. Returns 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.data[0]
	}
	if q >= 1 {
		return s.data[len(s.data)-1]
	}
	pos := q * float64(len(s.data)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.data[lo]
	}
	frac := pos - float64(lo)
	return s.data[lo]*(1-frac) + s.data[hi]*frac
}

// Median is Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CDF reports the empirical distribution function F(x) = P(X ≤ x).
func (s *Sample) CDF(x float64) float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.sort()
	// Count of values ≤ x.
	n := sort.Search(len(s.data), func(i int) bool { return s.data[i] > x })
	return float64(n) / float64(len(s.data))
}

// CDFPoint is one (x, F(x)) evaluation of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDFSeries evaluates the empirical CDF on the given grid of x values.
func (s *Sample) CDFSeries(grid []float64) []CDFPoint {
	pts := make([]CDFPoint, len(grid))
	for i, x := range grid {
		pts[i] = CDFPoint{X: x, F: s.CDF(x)}
	}
	return pts
}

// LinearGrid returns n+1 evenly spaced points covering [lo, hi].
func LinearGrid(lo, hi float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	grid := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		grid[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return grid
}

// LogGrid returns n+1 logarithmically spaced points covering [lo, hi].
// lo and hi must be positive.
func LogGrid(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("stats: LogGrid bounds must be positive")
	}
	if n < 1 {
		n = 1
	}
	grid := make([]float64, n+1)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i <= n; i++ {
		grid[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n))
	}
	return grid
}

// Percent formats a ratio as a percentage with one decimal, e.g. 0.345
// → "34.5". Used by the paper-style tables.
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f", ratio*100)
}
