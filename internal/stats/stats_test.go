package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestQuantile(t *testing.T) {
	s := NewSample(0)
	if s.Quantile(0.5) != 0 {
		t.Error("empty sample quantile should be 0")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.9, 90.1},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Median() != s.Quantile(0.5) {
		t.Error("Median != Quantile(0.5)")
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{1, 2, 2, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := s.CDF(c.x); got != c.want {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFSeries(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{10, 20, 30})
	pts := s.CDFSeries([]float64{5, 15, 35})
	want := []float64{0, 1.0 / 3, 1}
	for i, p := range pts {
		if p.F != want[i] {
			t.Errorf("pts[%d].F = %v, want %v", i, p.F, want[i])
		}
	}
}

func TestGrids(t *testing.T) {
	g := LinearGrid(0, 10, 5)
	if len(g) != 6 || g[0] != 0 || g[5] != 10 || g[3] != 6 {
		t.Errorf("LinearGrid = %v", g)
	}
	lg := LogGrid(1, 10000, 4)
	if len(lg) != 5 {
		t.Fatalf("LogGrid len = %d", len(lg))
	}
	for i, want := range []float64{1, 10, 100, 1000, 10000} {
		if math.Abs(lg[i]-want)/want > 1e-9 {
			t.Errorf("LogGrid[%d] = %v, want %v", i, lg[i], want)
		}
	}
	if !sort.Float64sAreSorted(lg) {
		t.Error("LogGrid not sorted")
	}
	defer func() {
		if recover() == nil {
			t.Error("LogGrid with non-positive bound should panic")
		}
	}()
	LogGrid(0, 1, 3)
}

func TestGridsDegenerate(t *testing.T) {
	if g := LinearGrid(0, 1, 0); len(g) != 2 {
		t.Errorf("LinearGrid n<1 should clamp: %v", g)
	}
	if g := LogGrid(1, 2, 0); len(g) != 2 {
		t.Errorf("LogGrid n<1 should clamp: %v", g)
	}
}

// Properties of the empirical CDF: monotone, 0 below min, 1 at max.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := NewSample(len(vals))
		s.AddAll(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if s.CDF(math.Nextafter(sorted[0], math.Inf(-1))) != 0 {
			return false
		}
		if s.CDF(sorted[len(sorted)-1]) != 1 {
			return false
		}
		prev := -1.0
		for _, x := range sorted {
			f := s.CDF(x)
			if f < prev {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantile and CDF are approximate inverses.
func TestPropertyQuantileCDFInverse(t *testing.T) {
	f := func(seed uint8) bool {
		s := NewSample(100)
		for i := 0; i < 100; i++ {
			s.Add(float64((int(seed)+i*37)%101) / 10)
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			x := s.Quantile(q)
			if s.CDF(x) < q-0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X: demo", "service", "#", "T")
	tab.AddRow("cloud stor.", "8.5", "22.8")
	tab.AddRow("web search", "65.9") // short row pads
	tab.Caption = "caption line"
	out := tab.String()
	for _, want := range []string{"Table X: demo", "service", "cloud stor.", "22.8", "caption line", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows + caption
	if len(lines) != 6 {
		t.Errorf("line count = %d, want 6:\n%s", len(lines), out)
	}
}

func TestRenderCDFs(t *testing.T) {
	s1, s2 := NewSample(0), NewSample(0)
	s1.AddAll([]float64{1, 2, 3})
	s2.AddAll([]float64{2, 3, 4})
	grid := []float64{1, 2, 3, 4}
	out := RenderCDFs("Figure X", "x(ms)", []string{"a", "b"},
		[][]CDFPoint{s1.CDFSeries(grid), s2.CDFSeries(grid)})
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "x(ms)") {
		t.Errorf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "0.333") {
		t.Errorf("missing F values:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched names/series should panic")
		}
	}()
	RenderCDFs("t", "x", []string{"a"}, nil)
}

func TestPercent(t *testing.T) {
	if got := Percent(0.345); got != "34.5" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0); got != "0.0" {
		t.Errorf("Percent(0) = %q", got)
	}
}

func TestFormatX(t *testing.T) {
	cases := map[float64]string{
		5:      "5",
		123:    "123",
		1.5:    "1.50",
		0.25:   "0.2500",
		1456.7: "1457",
	}
	for x, want := range cases {
		if got := formatX(x); got != want {
			t.Errorf("formatX(%v) = %q, want %q", x, got, want)
		}
	}
}
