package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// encodeDecodeHist pushes a histogram through its wire form plus a
// JSON round trip — exactly what a fleet push does.
func encodeDecodeHist(t *testing.T, h *Histogram) *Histogram {
	t.Helper()
	b, err := json.Marshal(h.State())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st HistogramState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	out, err := HistogramFromState(st)
	if err != nil {
		t.Fatalf("from state: %v", err)
	}
	return out
}

func histsEqual(a, b *Histogram) bool {
	if a.N() != b.N() || a.Sum() != b.Sum() {
		return false
	}
	if !reflect.DeepEqual(a.Bounds(), b.Bounds()) {
		return false
	}
	for i := 0; i <= len(a.Bounds()); i++ {
		if a.Count(i) != b.Count(i) {
			return false
		}
	}
	return true
}

func TestHistogramSnapshotRoundTripMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := map[string][2][]float64{
		"both_populated": {{0.5, 5, 50, 500, 7}, {2, 20, 200}},
		"empty_left":     {{}, {3, 30}},
		"empty_right":    {{1, 1000}, {}},
		"both_empty":     {{}, {}},
		"single_sample":  {{42}, {0.1}},
	}
	for name, obs := range cases {
		t.Run(name, func(t *testing.T) {
			a, b := NewHistogram(bounds), NewHistogram(bounds)
			for _, v := range obs[0] {
				a.Add(v)
			}
			for _, v := range obs[1] {
				b.Add(v)
			}
			// Direct merge of the live accumulators.
			direct := NewHistogram(bounds)
			direct.Merge(a)
			direct.Merge(b)
			// Merge of the encode→decode twins.
			wired := NewHistogram(bounds)
			wired.Merge(encodeDecodeHist(t, a))
			wired.Merge(encodeDecodeHist(t, b))
			if !histsEqual(direct, wired) {
				t.Errorf("wire merge diverged: direct n=%d sum=%g, wired n=%d sum=%g",
					direct.N(), direct.Sum(), wired.N(), wired.Sum())
			}
			if direct.N() > 0 && wired.Quantile(0.99) != direct.Quantile(0.99) {
				t.Errorf("p99 diverged: direct %g wired %g", direct.Quantile(0.99), wired.Quantile(0.99))
			}
		})
	}
}

func TestHistogramFromStateRejectsCorruptWire(t *testing.T) {
	if _, err := HistogramFromState(HistogramState{
		Bounds: []float64{10, 5}, Counts: []uint64{0, 0, 0},
	}); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := HistogramFromState(HistogramState{
		Bounds: []float64{1, 2}, Counts: []uint64{1, 2},
	}); err == nil {
		t.Error("short counts accepted")
	}
	if _, err := HistogramFromState(HistogramState{Counts: []uint64{3}}); err != nil {
		t.Errorf("boundless histogram (single +Inf bucket) rejected: %v", err)
	}
}

func TestHistogramStateCopies(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Add(1.5)
	st := h.State()
	st.Counts[1] = 999
	st.Bounds[0] = -1
	if h.Count(1) == 999 || h.Bounds()[0] == -1 {
		t.Error("State aliases internal storage")
	}
}

func TestSummarySnapshotRoundTripMerge(t *testing.T) {
	cases := map[string][2][]float64{
		"both_populated": {{3, -1, 4, 1, 5}, {9, 2, 6}},
		"empty_left":     {{}, {7}},
		"empty_right":    {{-2.5}, {}},
		"both_empty":     {{}, {}},
		"single_sample":  {{0}, {0}},
	}
	for name, obs := range cases {
		t.Run(name, func(t *testing.T) {
			var a, b Summary
			for _, v := range obs[0] {
				a.Add(v)
			}
			for _, v := range obs[1] {
				b.Add(v)
			}
			var direct Summary
			direct.Merge(a)
			direct.Merge(b)

			var wired Summary
			for _, src := range []*Summary{&a, &b} {
				bts, err := json.Marshal(src.State())
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				var st SummaryState
				if err := json.Unmarshal(bts, &st); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				dec, err := SummaryFromState(st)
				if err != nil {
					t.Fatalf("from state: %v", err)
				}
				wired.Merge(dec)
			}
			if wired != direct {
				t.Errorf("wire merge diverged: direct %+v wired %+v", direct, wired)
			}
			if math.Abs(wired.StdDev()-direct.StdDev()) > 1e-12 {
				t.Errorf("stddev diverged: direct %g wired %g", direct.StdDev(), wired.StdDev())
			}
		})
	}
}

func TestSummaryFromStateRejectsNegativeCount(t *testing.T) {
	if _, err := SummaryFromState(SummaryState{N: -1, Sum: 3}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestSampleSnapshotRoundTripMerge(t *testing.T) {
	cases := map[string][2][]float64{
		"both_populated": {{5, 1, 3}, {4, 2}},
		"empty_left":     {{}, {8, 6}},
		"both_empty":     {{}, {}},
		"single_sample":  {{2.5}, {}},
	}
	for name, obs := range cases {
		t.Run(name, func(t *testing.T) {
			a, b := NewSample(0), NewSample(0)
			a.AddAll(obs[0])
			b.AddAll(obs[1])

			direct := NewSample(0)
			direct.Merge(a)
			direct.Merge(b)

			wired := NewSample(0)
			for _, src := range []*Sample{a, b} {
				bts, err := json.Marshal(src.State())
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				var st SampleState
				if err := json.Unmarshal(bts, &st); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				wired.Merge(SampleFromState(st))
			}
			if !reflect.DeepEqual(direct.Values(), wired.Values()) {
				t.Errorf("wire merge diverged: direct %v wired %v", direct.Values(), wired.Values())
			}
			if direct.Len() > 0 && direct.Quantile(0.5) != wired.Quantile(0.5) {
				t.Errorf("median diverged")
			}
		})
	}
}
