package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// result tables. Cells are strings; numeric formatting is the
// caller's concern.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// NewTable returns a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with box-drawing-free ASCII alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Caption != "" {
		b.WriteString(t.Caption)
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCDFs renders one or more named CDF series side by side on a
// shared x grid, one row per grid point. All series must be evaluated
// on the same grid.
func RenderCDFs(title, xLabel string, names []string, series [][]CDFPoint) string {
	if len(names) != len(series) {
		panic("stats: names/series length mismatch")
	}
	t := NewTable(title, append([]string{xLabel}, names...)...)
	if len(series) == 0 || len(series[0]) == 0 {
		return t.String()
	}
	for i := range series[0] {
		row := make([]string, 0, 1+len(series))
		row = append(row, formatX(series[0][i].X))
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s[i].F))
		}
		t.AddRow(row...)
	}
	return t.String()
}

func formatX(x float64) string {
	switch {
	case x == float64(int64(x)) && x < 1e7:
		return fmt.Sprintf("%d", int64(x))
	case x >= 100:
		return fmt.Sprintf("%.0f", x)
	case x >= 1:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}
