package stats

import (
	"math"
	"testing"
)

// Edge cases the analysis pipeline actually produces: services with
// no stalls (empty series), a single flow (one sample), and metrics
// that never vary (constant series).

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := s.Median(); got != 0 {
		t.Errorf("empty Median = %v, want 0", got)
	}
	if got := s.CDF(1); got != 0 {
		t.Errorf("empty CDF = %v, want 0", got)
	}
}

func TestSampleSingle(t *testing.T) {
	s := NewSample(1)
	s.Add(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("single-sample Quantile(%v) = %v, want 42", q, got)
		}
	}
	if got := s.Mean(); got != 42 {
		t.Errorf("Mean = %v, want 42", got)
	}
	if got := s.CDF(41.9); got != 0 {
		t.Errorf("CDF below sample = %v, want 0", got)
	}
	if got := s.CDF(42); got != 1 {
		t.Errorf("CDF at sample = %v, want 1", got)
	}
}

func TestSampleConstant(t *testing.T) {
	s := NewSample(10)
	for i := 0; i < 10; i++ {
		s.Add(7)
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.999, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("constant Quantile(%v) = %v, want 7", q, got)
		}
	}
	if got := s.Mean(); got != 7 {
		t.Errorf("constant Mean = %v, want 7", got)
	}
}

func TestSummaryEmptyAndConstant(t *testing.T) {
	var sum Summary
	if got := sum.Mean(); got != 0 {
		t.Errorf("empty Summary Mean = %v, want 0", got)
	}
	if got := sum.StdDev(); got != 0 {
		t.Errorf("empty Summary StdDev = %v, want 0", got)
	}
	for i := 0; i < 5; i++ {
		sum.Add(3)
	}
	if got := sum.Mean(); got != 3 {
		t.Errorf("constant Summary Mean = %v, want 3", got)
	}
	if got := sum.StdDev(); got != 0 {
		t.Errorf("constant Summary StdDev = %v, want 0", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	if h.N() != 0 || h.Sum() != 0 {
		t.Fatalf("empty N/Sum = %d/%v", h.N(), h.Sum())
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	for i := 0; i <= 3; i++ {
		if got := h.Cumulative(i); got != 0 {
			t.Errorf("empty Cumulative(%d) = %d", i, got)
		}
	}
}

func TestHistogramSingleAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Add(5)
	if h.N() != 1 || h.Count(1) != 1 {
		t.Fatalf("N=%d counts=%v", h.N(), []uint64{h.Count(0), h.Count(1), h.Count(2), h.Count(3)})
	}
	// Quantile interpolates within (1, 10].
	if q := h.Quantile(0.5); q <= 1 || q > 10 {
		t.Errorf("Quantile(0.5) = %v, want in (1,10]", q)
	}

	// An observation beyond every bound lands in +Inf and clamps.
	h.Add(1e9)
	if h.Count(3) != 1 {
		t.Errorf("+Inf bucket count = %d, want 1", h.Count(3))
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("overflow Quantile(0.99) = %v, want clamp to 100", got)
	}
	if got := h.Cumulative(3); got != 2 {
		t.Errorf("Cumulative(+Inf) = %d, want 2", got)
	}
}

func TestHistogramConstantSeries(t *testing.T) {
	h := NewHistogram([]float64{50, 100, 200})
	for i := 0; i < 1000; i++ {
		h.Add(75)
	}
	// Every quantile lies in the one occupied bucket (50, 100].
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got <= 50 || got > 100 {
			t.Errorf("constant Quantile(%v) = %v, want in (50,100]", q, got)
		}
	}
	if got := h.Mean(); got != 75 {
		t.Errorf("Mean = %v, want 75", got)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Add(0.5)
	b.Add(1.5)
	b.Add(99)
	a.Merge(b)
	if a.N() != 3 {
		t.Fatalf("merged N = %d, want 3", a.N())
	}
	if a.Count(0) != 1 || a.Count(1) != 1 || a.Count(2) != 1 {
		t.Errorf("merged counts = %d,%d,%d", a.Count(0), a.Count(1), a.Count(2))
	}
	if got, want := a.Sum(), 101.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged Sum = %v, want %v", got, want)
	}
	a.Merge(nil) // no-op
	if a.N() != 3 {
		t.Errorf("nil merge changed N to %d", a.N())
	}
	a.Reset()
	if a.N() != 0 || a.Sum() != 0 || a.Cumulative(2) != 0 {
		t.Errorf("Reset left N=%d Sum=%v", a.N(), a.Sum())
	}

	defer func() {
		if recover() == nil {
			t.Error("layout-mismatched Merge did not panic")
		}
	}()
	c := NewHistogram([]float64{1, 2, 3})
	c.Add(1) // empty merges are no-ops; only a populated mismatch panics
	a.Merge(c)
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}
