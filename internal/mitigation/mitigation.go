// Package mitigation implements the loss-recovery strategies the
// paper evaluates on production servers: S-RTO (the paper's
// contribution, Algorithm 1), TLP (Tail Loss Probe, the comparator)
// and the native Linux behaviour (a no-op over the simulator's
// built-in RFC 6298 + fast retransmit machinery).
//
// Strategies attach to a tcpsim.Sender and manage their own probe
// timers, mirroring the paper's deployment where the kernel switched
// strategy via sysctl.
package mitigation

import (
	"time"

	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// Kind names a strategy for harness switching.
type Kind string

// The strategies of Tables 8 and 9.
const (
	KindNative Kind = "linux"
	KindTLP    Kind = "tlp"
	KindSRTO   Kind = "srto"
)

// New builds a fresh strategy instance of the given kind with
// defaults. SRTOConfig/TLPConfig offer full control.
func New(kind Kind) tcpsim.Recovery {
	switch kind {
	case KindTLP:
		return NewTLP(TLPConfig{})
	case KindSRTO:
		return NewSRTO(SRTOConfig{})
	default:
		return tcpsim.NativeRecovery{}
	}
}

// --- TLP ---

// TLPConfig parameterizes the Tail Loss Probe.
type TLPConfig struct {
	// MinPTO floors the probe timeout (10ms per the TLP design).
	MinPTO time.Duration
	// WCDelAck is the worst-case delayed-ACK allowance added when a
	// single segment is outstanding.
	WCDelAck time.Duration
}

// TLP is the Tail Loss Probe: when the sender is in the Open state
// with outstanding data and nothing happens for ~2·SRTT, transmit one
// probe (new data if available, else the last segment) to buy a
// SACK/ACK that converts a would-be timeout into fast recovery. TLP
// is Open-state-only, which is exactly why it cannot mitigate the
// paper's f-double stalls (the sender sits in Recovery).
type TLP struct {
	cfg   TLPConfig
	snd   *tcpsim.Sender
	timer *sim.Timer
	// fired tracks that a probe was already sent in this episode; at
	// most one probe per flight.
	fired bool
	// Probes counts transmitted probes.
	Probes int
}

// NewTLP builds a TLP strategy.
func NewTLP(cfg TLPConfig) *TLP {
	if cfg.MinPTO <= 0 {
		cfg.MinPTO = 10 * time.Millisecond
	}
	if cfg.WCDelAck <= 0 {
		cfg.WCDelAck = 200 * time.Millisecond
	}
	return &TLP{cfg: cfg}
}

// Name implements tcpsim.Recovery.
func (t *TLP) Name() string { return string(KindTLP) }

// Attach implements tcpsim.Recovery.
func (t *TLP) Attach(s *tcpsim.Sender) {
	t.snd = s
	t.timer = sim.NewTimer(s.Sim(), t.onPTO)
}

func (t *TLP) pto() time.Duration {
	srtt := t.snd.SRTT()
	if srtt <= 0 {
		return t.snd.RTO()
	}
	pto := 2 * srtt
	if t.snd.PacketsOut() == 1 {
		if alt := srtt*3/2 + t.cfg.WCDelAck; alt > pto {
			pto = alt
		}
	}
	if pto < t.cfg.MinPTO {
		pto = t.cfg.MinPTO
	}
	return pto
}

func (t *TLP) rearm() {
	if t.snd.State() == tcpsim.StateOpen && t.snd.HasOutstanding() && !t.fired {
		pto := t.pto()
		if pto >= t.snd.RTO() {
			// The native RTO fires first; probing buys nothing.
			t.timer.Stop()
			return
		}
		t.timer.Reset(pto)
	} else {
		t.timer.Stop()
	}
}

// OnSent implements tcpsim.Recovery.
func (t *TLP) OnSent(bool) { t.rearm() }

// OnAck implements tcpsim.Recovery.
func (t *TLP) OnAck() {
	t.fired = false // ACK progress opens a new probe episode
	t.rearm()
}

// OnRTO implements tcpsim.Recovery.
func (t *TLP) OnRTO() { t.timer.Stop() }

func (t *TLP) onPTO() {
	if t.snd.State() != tcpsim.StateOpen || !t.snd.HasOutstanding() {
		return
	}
	t.fired = true
	if t.snd.ProbeSendNewOrLast() {
		t.Probes++
	}
	// Hand over to the regular retransmission timer.
	t.snd.RearmRTO()
}

// --- S-RTO ---

// SRTOConfig parameterizes Smart-RTO. Zero values take the paper's
// deployed settings.
type SRTOConfig struct {
	// T1 activates the probe timer only when packets_out < T1
	// (5 for web search, 10 for cloud storage in the deployment).
	T1 int
	// T2 guards the cwnd halving on trigger.
	T2 int
	// RTTMultiple scales the probe timer (2·RTT in the paper, the
	// same threshold used to define stalls).
	RTTMultiple float64
}

// SRTO is the paper's Smart-RTO (Algorithm 1): a second, slightly
// more aggressive retransmission timer that fires at 2·RTT when a
// timeout retransmission is likely — few packets outstanding and the
// head segment not already recovered by a native timeout — and
// retransmits the first unacknowledged segment. Unlike TLP it also
// works in Disorder/Recovery, so it mitigates f-double and ACK-delay
// stalls, not just tail losses.
type SRTO struct {
	cfg   SRTOConfig
	snd   *tcpsim.Sender
	timer *sim.Timer
	// probed/probedUna enforce the fallback rule: if the S-RTO
	// retransmission of the current head is itself dropped, recovery
	// is left to the native RTO rather than probing again.
	probed    bool
	probedUna uint32
	// Triggers counts probe firings that retransmitted data.
	Triggers int
}

// NewSRTO builds an S-RTO strategy.
func NewSRTO(cfg SRTOConfig) *SRTO {
	if cfg.T1 <= 0 {
		cfg.T1 = 10
	}
	if cfg.T2 <= 0 {
		cfg.T2 = 5
	}
	if cfg.RTTMultiple <= 0 {
		cfg.RTTMultiple = 2
	}
	return &SRTO{cfg: cfg}
}

// Name implements tcpsim.Recovery.
func (s *SRTO) Name() string { return string(KindSRTO) }

// Attach implements tcpsim.Recovery.
func (s *SRTO) Attach(snd *tcpsim.Sender) {
	s.snd = snd
	s.timer = sim.NewTimer(snd.Sim(), s.trigger)
}

// set implements procedure SET_SRTO: arm the probe timer at
// RTTMultiple·RTT when a timeout retransmission is likely; otherwise
// leave recovery to the native RTO.
func (s *SRTO) set() {
	if !s.snd.HasOutstanding() {
		s.timer.Stop()
		return
	}
	if s.probed && (s.snd.SndUna() == s.probedUna || s.snd.State() != tcpsim.StateOpen) {
		// One probe per recovery episode: if the probe did not settle
		// things (head unmoved, or the episode it opened is still
		// running), fall back to the native RTO. Serializing probes
		// across a multi-loss window would repair one hole per 2·RTT
		// — slower than the RTO's one-sweep slow-start recovery.
		s.timer.Stop()
		return
	}
	if s.snd.FirstUnackedRTORetransmitted() || s.snd.PacketsOut() >= s.cfg.T1 {
		// Algorithm 1 line 5: timer ← native_rto (the regular RTO
		// timer is already armed by the sender).
		s.timer.Stop()
		return
	}
	srtt := s.snd.SRTT()
	if srtt <= 0 || s.snd.RTTSamples() < 2 {
		// Warmup: a 2·RTT timer built on one or two samples fires
		// spuriously on jittery paths; leave early losses to the
		// native RTO.
		s.timer.Stop()
		return
	}
	d := time.Duration(s.cfg.RTTMultiple * float64(srtt))
	if rto := s.snd.RTO(); d >= rto {
		s.timer.Stop()
		return
	}
	s.timer.Reset(d)
}

// trigger implements procedure TRIGGER_SRTO.
func (s *SRTO) trigger() {
	if !s.snd.HasOutstanding() {
		return
	}
	s.probed = true
	s.probedUna = s.snd.SndUna()
	wasRecovery := s.snd.State() == tcpsim.StateRecovery
	// Enter Recovery first so the episode snapshot (for DSACK undo)
	// captures the pre-reduction cwnd.
	s.snd.EnterRecoveryExternal()
	if !s.snd.ProbeRetransmitFirstUnacked() {
		return
	}
	s.Triggers++
	if s.snd.Cwnd() > s.cfg.T2 && !wasRecovery {
		s.snd.SetCwnd(s.snd.Cwnd() / 2)
	}
	// timer ← native_rto: fall back to the regular RTO for the next
	// recovery step.
	s.snd.RearmRTO()
}

// OnSent implements tcpsim.Recovery.
func (s *SRTO) OnSent(bool) { s.set() }

// OnAck implements tcpsim.Recovery.
func (s *SRTO) OnAck() {
	if s.probed && s.snd.SndUna() != s.probedUna && s.snd.State() == tcpsim.StateOpen {
		s.probed = false // episode settled: new probe budget
	}
	s.set()
}

// OnRTO implements tcpsim.Recovery.
func (s *SRTO) OnRTO() { s.timer.Stop() }
