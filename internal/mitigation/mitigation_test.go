package mitigation

import (
	"testing"
	"time"

	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// lab builds a 40ms-RTT connection with a drop plan keyed on distinct
// data-segment copies: dropPlan[seq ordinal] = how many leading
// copies of that distinct segment to swallow.
type lab struct {
	sim  *sim.Simulator
	conn *tcpsim.Conn
}

func newLab(seed int64, size int64, strategy tcpsim.Recovery, dropPlan map[int]int, mutate func(*tcpsim.ConnConfig)) *lab {
	s := sim.New()
	rng := sim.NewRNG(seed)
	down := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	up := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: size}},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, nil)
	if strategy != nil {
		conn.Sender().SetRecovery(strategy)
	}
	// Interpose on the sender output to implement the drop plan.
	inner := conn.Sender().Output
	distinct := 0
	ordinalOf := map[uint32]int{}
	copies := map[uint32]int{}
	conn.Sender().Output = func(seg *tcpsim.Segment) {
		if seg.Len > 0 {
			if _, ok := ordinalOf[seg.Seq]; !ok {
				distinct++
				ordinalOf[seg.Seq] = distinct
			}
			copies[seg.Seq]++
			if n, ok := dropPlan[ordinalOf[seg.Seq]]; ok && copies[seg.Seq] <= n {
				return // swallowed by the "network"
			}
		}
		inner(seg)
	}
	return &lab{sim: s, conn: conn}
}

func (l *lab) run(t *testing.T) *tcpsim.ConnMetrics {
	t.Helper()
	l.conn.Start()
	l.sim.Run()
	m := l.conn.Metrics()
	if !m.Done {
		t.Fatal("transfer did not complete")
	}
	return m
}

func TestNativeTailLossNeedsRTO(t *testing.T) {
	// 3-segment flow, last segment dropped once.
	l := newLab(1, 3*1460, nil, map[int]int{3: 1}, nil)
	m := l.run(t)
	if m.Sender.RTOFirings == 0 {
		t.Error("native: tail loss should require RTO")
	}
}

func TestTLPRecoversTailLossWithoutRTO(t *testing.T) {
	tlp := NewTLP(TLPConfig{WCDelAck: 50 * time.Millisecond})
	l := newLab(1, 3*1460, tlp, map[int]int{3: 1}, nil)
	m := l.run(t)
	if m.Sender.RTOFirings != 0 {
		t.Errorf("TLP: RTO fired %d times; probe should have recovered the tail", m.Sender.RTOFirings)
	}
	if tlp.Probes == 0 {
		t.Error("TLP sent no probes")
	}
	if m.Sender.ProbeRetransmits == 0 && m.Sender.DataSegmentsSent <= 3 {
		t.Error("no probe transmission recorded")
	}
}

func TestTLPFasterThanNativeOnTailLoss(t *testing.T) {
	nat := newLab(1, 3*1460, nil, map[int]int{3: 1}, nil).run(t)
	tlp := newLab(1, 3*1460, NewTLP(TLPConfig{WCDelAck: 50 * time.Millisecond}), map[int]int{3: 1}, nil).run(t)
	if tlp.FlowLatency() >= nat.FlowLatency() {
		t.Errorf("TLP latency %v not better than native %v", tlp.FlowLatency(), nat.FlowLatency())
	}
}

func TestSRTORecoversTailLossWithoutRTO(t *testing.T) {
	srto := NewSRTO(SRTOConfig{T1: 10, T2: 5})
	l := newLab(1, 3*1460, srto, map[int]int{3: 1}, nil)
	m := l.run(t)
	if m.Sender.RTOFirings != 0 {
		t.Errorf("S-RTO: RTO fired %d times", m.Sender.RTOFirings)
	}
	if srto.Triggers == 0 {
		t.Error("S-RTO never triggered")
	}
}

// The paper's central claim for S-RTO vs TLP: an f-double stall — a
// fast-retransmitted segment dropped again, sender in Recovery —
// is untouched by TLP (Open-state only) but mitigated by S-RTO.
func TestFDoubleTLPCannotHelp(t *testing.T) {
	// 15 KB flow; drop segment 8 twice (original + fast retransmit).
	nat := newLab(2, 15_000, nil, map[int]int{8: 2}, nil).run(t)
	if nat.Sender.RTOFirings == 0 {
		t.Fatal("native: f-double must need an RTO (test setup broken otherwise)")
	}
	tlp := newLab(2, 15_000, NewTLP(TLPConfig{WCDelAck: 50 * time.Millisecond}), map[int]int{8: 2}, nil).run(t)
	if tlp.Sender.RTOFirings == 0 {
		t.Error("TLP should NOT be able to avoid the f-double RTO (Open-state only)")
	}
}

func TestFDoubleSRTOHelps(t *testing.T) {
	srto := NewSRTO(SRTOConfig{T1: 10, T2: 5})
	m := newLab(2, 15_000, srto, map[int]int{8: 2}, nil).run(t)
	if m.Sender.RTOFirings != 0 {
		t.Errorf("S-RTO: RTO fired %d times on f-double; probe should have recovered", m.Sender.RTOFirings)
	}
	if srto.Triggers == 0 {
		t.Error("S-RTO never triggered")
	}
}

func TestSRTOLatencyBeatsTLPOnFDouble(t *testing.T) {
	tlp := newLab(2, 15_000, NewTLP(TLPConfig{WCDelAck: 50 * time.Millisecond}), map[int]int{8: 2}, nil).run(t)
	srto := newLab(2, 15_000, NewSRTO(SRTOConfig{}), map[int]int{8: 2}, nil).run(t)
	if srto.FlowLatency() >= tlp.FlowLatency() {
		t.Errorf("S-RTO %v should beat TLP %v on f-double stalls",
			srto.FlowLatency(), tlp.FlowLatency())
	}
}

func TestSRTOT1Gate(t *testing.T) {
	// With T1 = 1 the probe can never arm (packets_out ≥ 1 whenever
	// data is outstanding), so behaviour must match native.
	srto := NewSRTO(SRTOConfig{T1: 1, T2: 5})
	m := newLab(3, 3*1460, srto, map[int]int{3: 1}, nil).run(t)
	if srto.Triggers != 0 {
		t.Errorf("T1=1 should disable probing; got %d triggers", srto.Triggers)
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("with probing disabled the RTO must fire")
	}
}

func TestSRTOCwndHalvingGuard(t *testing.T) {
	// Trigger with a small cwnd (≤ T2): cwnd must not be halved.
	srto := NewSRTO(SRTOConfig{T1: 10, T2: 5})
	l := newLab(4, 3*1460, srto, map[int]int{3: 1}, nil)
	snd := l.conn.Sender()
	l.run(t)
	// cwnd after recovery from IW=3 tail loss stays ≥ 2.
	if snd.Cwnd() < 2 {
		t.Errorf("cwnd = %d after guarded trigger", snd.Cwnd())
	}
	if srto.Triggers == 0 {
		t.Fatal("expected a trigger")
	}
	if snd.State() == tcpsim.StateLoss {
		t.Error("S-RTO should have kept the sender out of Loss state")
	}
}

func TestSRTOFallsBackToNativeRTOOnDoubleProbeLoss(t *testing.T) {
	// Drop the tail segment 3 times: original, then the S-RTO probe.
	// The third copy must come from the native RTO.
	srto := NewSRTO(SRTOConfig{T1: 10, T2: 5})
	m := newLab(5, 3*1460, srto, map[int]int{3: 2}, nil).run(t)
	if srto.Triggers != 1 {
		t.Errorf("S-RTO triggers = %d, want exactly 1 (no re-probe of the same head)", srto.Triggers)
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("native RTO must take over after the probe is lost")
	}
}

func TestTLPOneProbePerEpisode(t *testing.T) {
	// Black-holing the tail twice: TLP probes once, then the RTO
	// takes over.
	tlp := NewTLP(TLPConfig{WCDelAck: 50 * time.Millisecond})
	m := newLab(6, 3*1460, tlp, map[int]int{3: 2}, nil).run(t)
	if tlp.Probes != 1 {
		t.Errorf("TLP probes = %d, want 1", tlp.Probes)
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("RTO must fire after the probe is lost")
	}
}

func TestRetransmissionOverheadOrdering(t *testing.T) {
	// Across a lossy run, retransmission counts should order
	// native ≤ TLP ≤ S-RTO-ish (both probes add some overhead, as in
	// Table 9). Allow equality.
	loss := func() map[int]int { return map[int]int{5: 1, 12: 1} }
	nat := newLab(7, 60_000, nil, loss(), nil).run(t)
	tlp := newLab(7, 60_000, NewTLP(TLPConfig{}), loss(), nil).run(t)
	srto := newLab(7, 60_000, NewSRTO(SRTOConfig{}), loss(), nil).run(t)
	if tlp.Sender.Retransmissions < nat.Sender.Retransmissions {
		t.Errorf("TLP retrans %d < native %d", tlp.Sender.Retransmissions, nat.Sender.Retransmissions)
	}
	if srto.Sender.Retransmissions < nat.Sender.Retransmissions {
		t.Errorf("S-RTO retrans %d < native %d", srto.Sender.Retransmissions, nat.Sender.Retransmissions)
	}
}

func TestNewFactory(t *testing.T) {
	if New(KindNative).Name() != "linux" {
		t.Error("native name")
	}
	if New(KindTLP).Name() != "tlp" {
		t.Error("tlp name")
	}
	if New(KindSRTO).Name() != "srto" {
		t.Error("srto name")
	}
	if New(Kind("bogus")).Name() != "linux" {
		t.Error("unknown kind should default to native")
	}
}

func TestStrategiesDoNotBreakCleanTransfers(t *testing.T) {
	for _, kind := range []Kind{KindNative, KindTLP, KindSRTO} {
		m := newLab(8, 200_000, New(kind), nil, nil).run(t)
		if m.Sender.RTOFirings != 0 {
			t.Errorf("%s: RTO on clean path", kind)
		}
		if m.Receiver.BytesReceived != 200_000 {
			t.Errorf("%s: received %d", kind, m.Receiver.BytesReceived)
		}
		// Spurious probe retransmissions on a clean path should be
		// zero: nothing stalls for 2·SRTT when ACKs flow.
		if m.Sender.ProbeRetransmits > 2 {
			t.Errorf("%s: %d probe retransmissions on a clean path", kind, m.Sender.ProbeRetransmits)
		}
	}
}

func TestSRTOHelpsAckDelayStall(t *testing.T) {
	// 500ms delayed ACK with an established RTT: native spuriously
	// RTO-retransmits (entering Loss, cwnd=1); S-RTO probes at 2·RTT
	// and avoids the Loss state entirely.
	mutate := func(c *tcpsim.ConnConfig) {
		c.Receiver.DelAckDelay = 500 * time.Millisecond
	}
	nat := newLab(9, 15*1460, nil, nil, mutate).run(t)
	if nat.Sender.RTOFirings == 0 {
		t.Fatal("native: expected a spurious RTO from the 500ms delack")
	}
	srto := NewSRTO(SRTOConfig{})
	m := newLab(9, 15*1460, srto, nil, mutate).run(t)
	if m.Sender.RTOFirings != 0 {
		t.Errorf("S-RTO: RTO fired %d times; probe should preempt it", m.Sender.RTOFirings)
	}
}

func TestNCLRecoversTailLossWithoutCwndReduction(t *testing.T) {
	ncl := NewNCL(NCLConfig{})
	l := newLab(20, 3*1460, ncl, map[int]int{3: 1}, nil)
	snd := l.conn.Sender()
	m := l.run(t)
	if m.Sender.RTOFirings != 0 {
		t.Errorf("NCL: RTO fired %d times", m.Sender.RTOFirings)
	}
	if ncl.Probes == 0 {
		t.Fatal("NCL never probed")
	}
	// Non-congestion assumption: no Loss state, no cwnd collapse.
	if snd.State() == tcpsim.StateLoss {
		t.Error("NCL should not enter Loss")
	}
	if snd.Cwnd() < 2 {
		t.Errorf("cwnd = %d; NCL must not reduce the window", snd.Cwnd())
	}
}

func TestNCLOneProbeThenNativeRTO(t *testing.T) {
	ncl := NewNCL(NCLConfig{})
	m := newLab(21, 3*1460, ncl, map[int]int{3: 2}, nil).run(t)
	if ncl.Probes != 1 {
		t.Errorf("NCL probes = %d, want 1 (CD timer takes over)", ncl.Probes)
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("native RTO must fire after the probe is lost")
	}
}

func TestNCLName(t *testing.T) {
	if NewNCL(NCLConfig{}).Name() != "tcp-ncl" {
		t.Error("name")
	}
}

func TestEarlyRetransmitStrategy(t *testing.T) {
	// 2-segment flow, first dropped: with ER the lone dupack triggers
	// fast retransmit instead of an RTO.
	var er EarlyRetransmit
	if er.Name() != "early-retransmit" {
		t.Error("name")
	}
	m := newLab(22, 2*1460, er, map[int]int{1: 1}, nil).run(t)
	if m.Sender.RTOFirings != 0 {
		t.Errorf("ER: RTO fired %d times, want fast retransmit", m.Sender.RTOFirings)
	}
	if m.Sender.FastRetransmits == 0 {
		t.Error("ER: no fast retransmit")
	}
	// Hook no-ops must not panic.
	er.OnSent(false)
	er.OnAck()
	er.OnRTO()
}

func TestNCLDoesNoHarmCleanPath(t *testing.T) {
	nat := newLab(23, 100_000, nil, nil, nil).run(t)
	ncl := newLab(23, 100_000, NewNCL(NCLConfig{}), nil, nil).run(t)
	if ncl.FlowLatency() > nat.FlowLatency() {
		t.Errorf("NCL %v slower than native %v on a clean path",
			ncl.FlowLatency(), nat.FlowLatency())
	}
	if ncl.Sender.Retransmissions != 0 {
		t.Errorf("NCL retransmitted %d on a clean path", ncl.Sender.Retransmissions)
	}
}
