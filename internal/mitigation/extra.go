package mitigation

import (
	"time"

	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// Extra strategies beyond the paper's Table-8 contenders, drawn from
// its related-work discussion (Section 6): TCP-NCL's dual-timer
// recovery and RFC 5827 Early Retransmit. They plug into the same
// Recovery interface so the A/B harness can range over all of them.

// NCLConfig parameterizes the simplified TCP-NCL strategy.
type NCLConfig struct {
	// RTTMultiple scales the early retransmission-delay timer
	// (default 2·SRTT, mirroring the other probes).
	RTTMultiple float64
}

// NCL is a simplified TCP-NCL (Lai, Leung, Li 2009): a second, more
// aggressive retransmission timer under the assumption that the loss
// is NON-congestion — so unlike S-RTO it neither reduces cwnd nor
// enters Recovery on its early retransmission. Only if the native RTO
// subsequently fires is the loss treated as congestion (the "CD
// timer" role), with the full native response.
type NCL struct {
	cfg   NCLConfig
	snd   *tcpsim.Sender
	timer *sim.Timer

	probed    bool
	probedUna uint32
	// Probes counts early retransmissions.
	Probes int
}

// NewNCL builds the strategy.
func NewNCL(cfg NCLConfig) *NCL {
	if cfg.RTTMultiple <= 0 {
		cfg.RTTMultiple = 2
	}
	return &NCL{cfg: cfg}
}

// Name implements tcpsim.Recovery.
func (n *NCL) Name() string { return "tcp-ncl" }

// Attach implements tcpsim.Recovery.
func (n *NCL) Attach(snd *tcpsim.Sender) {
	n.snd = snd
	n.timer = sim.NewTimer(snd.Sim(), n.fire)
}

func (n *NCL) rearm() {
	if !n.snd.HasOutstanding() {
		n.timer.Stop()
		return
	}
	if n.probed && n.snd.SndUna() == n.probedUna {
		// One early retransmission per head; then the CD (native
		// RTO) decides.
		n.timer.Stop()
		return
	}
	srtt := n.snd.SRTT()
	if srtt <= 0 || n.snd.RTTSamples() < 2 {
		n.timer.Stop()
		return
	}
	d := time.Duration(n.cfg.RTTMultiple * float64(srtt))
	if d >= n.snd.RTO() {
		n.timer.Stop()
		return
	}
	n.timer.Reset(d)
}

func (n *NCL) fire() {
	if !n.snd.HasOutstanding() {
		return
	}
	n.probed = true
	n.probedUna = n.snd.SndUna()
	// Non-congestion assumption: retransmit without any window or
	// state change.
	if n.snd.ProbeRetransmitFirstUnacked() {
		n.Probes++
	}
	n.snd.RearmRTO()
}

// OnSent implements tcpsim.Recovery.
func (n *NCL) OnSent(bool) { n.rearm() }

// OnAck implements tcpsim.Recovery.
func (n *NCL) OnAck() {
	if n.probed && n.snd.SndUna() != n.probedUna {
		n.probed = false
	}
	n.rearm()
}

// OnRTO implements tcpsim.Recovery.
func (n *NCL) OnRTO() { n.timer.Stop() }

// EarlyRetransmit enables RFC 5827 on the attached sender: when fewer
// than four segments are outstanding and no new data is available,
// the fast-retransmit dupack threshold drops to outstanding−1. It is
// a sender-behaviour switch rather than a probe timer, so the
// Recovery hooks are no-ops.
type EarlyRetransmit struct{}

// Name implements tcpsim.Recovery.
func (EarlyRetransmit) Name() string { return "early-retransmit" }

// Attach implements tcpsim.Recovery.
func (EarlyRetransmit) Attach(s *tcpsim.Sender) { s.SetEarlyRetransmit(true) }

// OnSent implements tcpsim.Recovery.
func (EarlyRetransmit) OnSent(bool) {}

// OnAck implements tcpsim.Recovery.
func (EarlyRetransmit) OnAck() {}

// OnRTO implements tcpsim.Recovery.
func (EarlyRetransmit) OnRTO() {}
