package trace

import (
	"io"
	"time"

	"tcpstall/internal/pcap"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// RecordEvent is one packet record tagged with its flow identity —
// the unit streaming consumers (the live monitor) ingest. Unlike a
// Flow, a stream of RecordEvents needs no per-flow record retention:
// the producer's memory is bounded by connection count, not trace
// length.
type RecordEvent struct {
	// FlowID identifies the connection; for pcap sources it carries
	// the same "#n" generation suffix the flow importer uses when a
	// client endpoint reconnects.
	FlowID  string
	Service string
	// MSS is the flow's negotiated MSS as known so far (0 = unknown;
	// consumers default to 1460).
	MSS int
	// InitRwnd is the client's SYN-advertised window when this event
	// carries the SYN (0 otherwise).
	InitRwnd int
	// Rec is the packet record itself.
	Rec Record
	// FlowDone marks the record that completes the connection (an RST,
	// or the final teardown ACK after FINs both ways), letting
	// consumers evict the flow's state immediately.
	FlowDone bool
}

// RecordSource streams tagged records, calling emit once per record
// in capture order. An emit error aborts the source, which must
// return it. It mirrors pipeline.Source one layer down: flows are the
// batch unit, records are the live unit.
type RecordSource func(emit func(RecordEvent) error) error

// recFlow is the per-connection state the record streamer keeps: the
// identity and teardown progress, never the records.
type recFlow struct {
	id  string
	mss int
	td  teardown
}

// ImportPcapRecords reads a capture and hands every TCP record to h
// in capture order, tagged with its connection identity. Memory is
// bounded by the number of concurrently open connections (a few
// dozen bytes each), not by trace length — this is the streaming
// source the live monitor replays captures through.
//
// Like ImportPcapStream, a client endpoint reappearing after its
// connection completed starts a new flow with a "#n" generation
// suffix.
func ImportPcapRecords(r io.Reader, cfg ImportConfig, h func(RecordEvent) error) error {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return err
	}
	if cfg.ServerPort == 0 {
		cfg.ServerPort = 80
	}
	raw := pr.Header().LinkType == pcap.LinkTypeRaw
	flows := map[flowKey]*recFlow{}
	gens := map[flowKey]int{}
	d := demux{gens: gens} // for flowID rendering only
	var base timeBase
	for {
		pkt, err := pr.ReadPacket()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		dr, ok := decodeTCP(pkt.Data, raw, cfg.ServerPort)
		if !ok {
			continue
		}
		st, ok := flows[dr.key]
		if !ok {
			st = &recFlow{id: d.flowID(dr.key, dr.ipv6), mss: 1460}
			flows[dr.key] = st
		}
		if dr.mss > 0 {
			st.mss = dr.mss
		}
		ev := RecordEvent{
			FlowID:  st.id,
			Service: "pcap",
			MSS:     st.mss,
			Rec: Record{
				T:   base.rel(pkt.Timestamp),
				Dir: dr.dir,
				Seg: dr.seg,
			},
		}
		if dr.dir == tcpsim.DirIn && dr.seg.Flags.Has(synFlag) {
			ev.InitRwnd = dr.seg.Wnd
		}
		if st.td.observe(dr.dir, &dr.seg) {
			ev.FlowDone = true
			delete(flows, dr.key)
			gens[dr.key]++
		}
		if err := h(ev); err != nil {
			return err
		}
	}
}

// timeBase anchors capture timestamps to the first packet, like the
// flow demux does.
type timeBase struct {
	base time.Time
	have bool
}

func (tb *timeBase) rel(t time.Time) sim.Time {
	if !tb.have {
		tb.base = t
		tb.have = true
	}
	return sim.Time(t.Sub(tb.base))
}
