package trace

import (
	"bytes"
	"testing"
	"time"

	"tcpstall/internal/netem"
	"tcpstall/internal/packet"
	"tcpstall/internal/pcap"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// simFlow runs one simulated connection and returns its collected
// flow.
func simFlow(t *testing.T, seed int64, size int64, downLoss netem.LossModel) *Flow {
	t.Helper()
	s := sim.New()
	rng := sim.NewRNG(seed)
	down := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond, Loss: downLoss})
	up := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	col := NewCollector("t-0", "test")
	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: size}},
	}
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, col)
	conn.Start()
	s.Run()
	if !conn.Metrics().Done {
		t.Fatal("sim flow did not complete")
	}
	col.Flow.Done = true
	col.Flow.Latency = conn.Metrics().FlowLatency()
	return col.Flow
}

func TestCollectorBasics(t *testing.T) {
	f := simFlow(t, 1, 30_000, nil)
	if len(f.Records) == 0 {
		t.Fatal("no records")
	}
	if f.InitRwnd != tcpsim.DefaultReceiverConfig().InitRwnd {
		t.Errorf("InitRwnd = %d", f.InitRwnd)
	}
	if f.DataBytes() != 30_000 {
		t.Errorf("DataBytes = %d", f.DataBytes())
	}
	if want := (30_000 + 1459) / 1460; f.OutDataPackets() != want {
		t.Errorf("OutDataPackets = %d, want %d", f.OutDataPackets(), want)
	}
	if f.Duration() <= 0 {
		t.Error("Duration <= 0")
	}
	if f.String() == "" {
		t.Error("String empty")
	}
}

func TestOutDataPacketsCountsRetransmissions(t *testing.T) {
	clean := simFlow(t, 2, 30_000, nil)
	lossy := simFlow(t, 2, 30_000, netem.DropList(5))
	if lossy.OutDataPackets() != clean.OutDataPackets()+1 {
		t.Errorf("retransmission not visible: clean=%d lossy=%d",
			clean.OutDataPackets(), lossy.OutDataPackets())
	}
	if lossy.DataBytes() != clean.DataBytes() {
		t.Errorf("DataBytes must ignore retransmissions: %d vs %d",
			lossy.DataBytes(), clean.DataBytes())
	}
}

func TestSortByTime(t *testing.T) {
	f := &Flow{Records: []Record{
		{T: sim.Time(3 * time.Second)},
		{T: sim.Time(1 * time.Second)},
		{T: sim.Time(2 * time.Second)},
	}}
	f.SortByTime()
	for i := 1; i < 3; i++ {
		if f.Records[i].T < f.Records[i-1].T {
			t.Fatal("not sorted")
		}
	}
}

func TestPcapRoundTrip(t *testing.T) {
	orig := simFlow(t, 3, 50_000, netem.DropList(7))
	var buf bytes.Buffer
	if err := ExportPcap(&buf, []*Flow{orig}, ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	flows, err := ImportPcap(&buf, ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("imported %d flows", len(flows))
	}
	got := flows[0]
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(orig.Records))
	}
	if got.InitRwnd != orig.InitRwnd {
		t.Errorf("InitRwnd %d, want %d", got.InitRwnd, orig.InitRwnd)
	}
	if got.DataBytes() != orig.DataBytes() {
		t.Errorf("DataBytes %d, want %d", got.DataBytes(), orig.DataBytes())
	}
	for i := range got.Records {
		g, w := got.Records[i], orig.Records[i]
		if g.Dir != w.Dir {
			t.Fatalf("record %d dir %v, want %v", i, g.Dir, w.Dir)
		}
		if g.Seg.Seq != w.Seg.Seq || g.Seg.Ack != w.Seg.Ack || g.Seg.Len != w.Seg.Len {
			t.Fatalf("record %d seg %+v, want %+v", i, g.Seg, w.Seg)
		}
		if g.Seg.Flags != w.Seg.Flags {
			t.Fatalf("record %d flags %v, want %v", i, g.Seg.Flags, w.Seg.Flags)
		}
		if g.Seg.Wnd != clampWnd(w.Seg.Wnd) {
			t.Fatalf("record %d wnd %d, want %d", i, g.Seg.Wnd, w.Seg.Wnd)
		}
		if g.Seg.SACK.Len() != w.Seg.SACK.Len() {
			t.Fatalf("record %d SACK count %d, want %d", i, g.Seg.SACK.Len(), w.Seg.SACK.Len())
		}
		for bi := 0; bi < g.Seg.SACK.Len(); bi++ {
			if g.Seg.SACK.At(bi) != w.Seg.SACK.At(bi) {
				t.Fatalf("record %d SACK[%d] mismatch", i, bi)
			}
		}
		// Timestamps survive at millisecond resolution.
		dt := time.Duration(g.Seg.TSVal - w.Seg.TSVal)
		if dt < 0 {
			dt = -dt
		}
		if w.Seg.TSVal != 0 && dt > time.Millisecond {
			t.Fatalf("record %d TSVal drift %v", i, dt)
		}
		// Capture times survive (ns resolution), rebased to the
		// first frame.
		want := w.T.Add(-time.Duration(orig.Records[0].T))
		if g.T != want {
			t.Fatalf("record %d time %v, want %v (rebased)", i, g.T, want)
		}
	}
}

func clampWnd(w int) int {
	if w > 65535 {
		return 65535
	}
	if w < 0 {
		return 0
	}
	return w
}

func TestPcapMultiFlow(t *testing.T) {
	f1 := simFlow(t, 4, 20_000, nil)
	f2 := simFlow(t, 5, 40_000, nil)
	var buf bytes.Buffer
	if err := ExportPcap(&buf, []*Flow{f1, f2}, ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	flows, err := ImportPcap(&buf, ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("imported %d flows, want 2", len(flows))
	}
	sizes := map[int64]bool{flows[0].DataBytes(): true, flows[1].DataBytes(): true}
	if !sizes[20_000] || !sizes[40_000] {
		t.Errorf("flow sizes wrong: %v", sizes)
	}
}

func TestExportedFramesAreValid(t *testing.T) {
	f := simFlow(t, 6, 10_000, nil)
	var buf bytes.Buffer
	if err := ExportPcap(&buf, []*Flow{f}, ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	// Every frame must decode and carry valid checksums.
	flows, err := ImportPcap(bytes.NewReader(buf.Bytes()), ImportConfig{})
	if err != nil || len(flows) != 1 {
		t.Fatalf("import: %v", err)
	}
	// Deep-validate checksums via raw re-read.
	r, _ := newRawReader(buf.Bytes())
	n := 0
	for _, data := range r {
		var fr packet.Frame
		if err := fr.Decode(data); err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		if !fr.IP4.VerifyChecksum(data[packet.EthernetHeaderLen:]) {
			t.Fatalf("frame %d: bad IP checksum", n)
		}
		segLen := int(fr.IP4.TotalLen) - fr.IP4.HeaderLen()
		ctx := packet.V4Context(fr.IP4.Src, fr.IP4.Dst, segLen)
		seg := data[packet.EthernetHeaderLen+fr.IP4.HeaderLen():]
		if !packet.VerifyChecksum(seg, ctx) {
			t.Fatalf("frame %d: bad TCP checksum", n)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no frames")
	}
}

// newRawReader extracts raw frame bytes from a pcap buffer (helper
// for checksum validation).
func newRawReader(data []byte) ([][]byte, error) {
	r, err := pcap.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	pkts, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(pkts))
	for _, p := range pkts {
		out = append(out, p.Data)
	}
	return out, nil
}

func TestTimestampTickConversion(t *testing.T) {
	if tsTicks(0) != 0 {
		t.Error("zero time must map to zero tick")
	}
	if ticksToTime(0) != 0 {
		t.Error("zero tick must map to zero time")
	}
	tm := sim.Time(1234 * time.Millisecond)
	if got := ticksToTime(tsTicks(tm)); got != tm {
		t.Errorf("tick round trip: %v != %v", got, tm)
	}
}

func TestClampU16(t *testing.T) {
	if clampU16(-5) != 0 || clampU16(70000) != 65535 || clampU16(100) != 100 {
		t.Error("clampU16")
	}
}

func TestImportRawIPPcap(t *testing.T) {
	// Hand-build a raw-IP capture: one IPv4 TCP segment each way.
	var buf bytes.Buffer
	w, err := pcap.NewWriterHeader(&buf, pcap.Header{LinkType: pcap.LinkTypeRaw})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0).UTC()
	mk4 := func(srcPort, dstPort uint16, seq uint32, payload int) []byte {
		ip := packet.IPv4{TTL: 64, Protocol: packet.IPProtoTCP,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}}
		if srcPort != 80 {
			ip.Src, ip.Dst = ip.Dst, ip.Src
		}
		tcp := packet.TCPHeader{SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Flags: packet.FlagACK, Window: 1000}
		segLen := tcp.HeaderLen() + payload
		raw := ip.AppendTo(nil, segLen)
		return tcp.AppendTo(raw, make([]byte, payload), packet.V4Context(ip.Src, ip.Dst, segLen))
	}
	w.WritePacket(pcap.Packet{Timestamp: base, Data: mk4(80, 4242, 1, 500)})
	w.WritePacket(pcap.Packet{Timestamp: base.Add(time.Millisecond), Data: mk4(4242, 80, 1, 0)})

	flows, err := ImportPcap(&buf, ImportConfig{ServerPort: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if len(f.Records) != 2 {
		t.Fatalf("records = %d", len(f.Records))
	}
	if f.Records[0].Dir != tcpsim.DirOut || f.Records[0].Seg.Len != 500 {
		t.Errorf("record 0 = %+v", f.Records[0])
	}
	if f.Records[1].Dir != tcpsim.DirIn {
		t.Errorf("record 1 dir = %v", f.Records[1].Dir)
	}
}

func TestImportIPv6Pcap(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriterHeader(&buf, pcap.Header{LinkType: pcap.LinkTypeEthernet})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0).UTC()
	var srv, cli [16]byte
	srv[15], cli[15] = 1, 2
	mk6 := func(out bool, seq uint32, payload int) []byte {
		eth := packet.Ethernet{}
		ip := packet.IPv6{HopLimit: 64, NextHeader: packet.IPProtoTCP}
		tcp := packet.TCPHeader{Flags: packet.FlagACK, Window: 900, Seq: seq}
		if out {
			ip.Src, ip.Dst = srv, cli
			tcp.SrcPort, tcp.DstPort = 80, 555
		} else {
			ip.Src, ip.Dst = cli, srv
			tcp.SrcPort, tcp.DstPort = 555, 80
		}
		return packet.EncodeTCPv6(&eth, &ip, &tcp, make([]byte, payload))
	}
	w.WritePacket(pcap.Packet{Timestamp: base, Data: mk6(true, 1, 700)})
	w.WritePacket(pcap.Packet{Timestamp: base.Add(time.Millisecond), Data: mk6(false, 1, 0)})

	flows, err := ImportPcap(&buf, ImportConfig{ServerPort: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if len(f.Records) != 2 {
		t.Fatalf("records = %d", len(f.Records))
	}
	if f.Records[0].Seg.Len != 700 {
		t.Errorf("v6 payload len = %d (from PayloadLen field)", f.Records[0].Seg.Len)
	}
	if f.Records[1].Dir != tcpsim.DirIn {
		t.Error("direction")
	}
}

func TestImportSkipsGarbageFrames(t *testing.T) {
	var buf bytes.Buffer
	w, _ := pcap.NewWriterHeader(&buf, pcap.Header{LinkType: pcap.LinkTypeRaw})
	base := time.Unix(1700000000, 0).UTC()
	w.WritePacket(pcap.Packet{Timestamp: base, Data: []byte{0xff, 0x00}}) // bogus version
	w.WritePacket(pcap.Packet{Timestamp: base, Data: nil})                // empty
	w.WritePacket(pcap.Packet{Timestamp: base, Data: []byte{0x45, 0x00}}) // truncated v4
	flows, err := ImportPcap(&buf, ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 0 {
		t.Errorf("flows = %d from garbage", len(flows))
	}
}

// TestPcapRoundTripBackToBackSACK is the regression test for the SACK
// reuse bug: consecutive SACK-carrying ACKs where a later record
// carries FEWER blocks than its predecessor. With slice-append reuse
// in the export/import structs, a stale block from the previous
// record would survive into the next one and silently corrupt the
// scoreboard walk; inline SACK storage plus the explicit reset makes
// each record's list exact.
func TestPcapRoundTripBackToBackSACK(t *testing.T) {
	sack := func(blocks ...packet.SACKBlock) packet.SACKList {
		return packet.SACKBlocks(blocks...)
	}
	ms := func(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }
	f := &Flow{ID: "t-0", Service: "test", MSS: 1460, InitRwnd: 65535, Done: true}
	f.Records = []Record{
		{T: ms(0), Dir: tcpsim.DirIn, Seg: tcpsim.Segment{Flags: packet.FlagSYN, Seq: 0, Wnd: 65535}},
		{T: ms(1), Dir: tcpsim.DirOut, Seg: tcpsim.Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: 0, Ack: 1, Wnd: 65535}},
		{T: ms(2), Dir: tcpsim.DirIn, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1, Ack: 1, Wnd: 65535}},
		{T: ms(3), Dir: tcpsim.DirOut, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1, Ack: 1, Len: 1460, Wnd: 65535}},
		{T: ms(4), Dir: tcpsim.DirOut, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1461, Ack: 1, Len: 1460, Wnd: 65535}},
		// Three blocks, then one, then none, then two: every
		// transition where stale state could leak.
		{T: ms(5), Dir: tcpsim.DirIn, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1, Ack: 1, Wnd: 65535,
			SACK: sack(packet.SACKBlock{Left: 2921, Right: 4381},
				packet.SACKBlock{Left: 5841, Right: 7301},
				packet.SACKBlock{Left: 8761, Right: 10221})}},
		{T: ms(6), Dir: tcpsim.DirIn, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1, Ack: 1, Wnd: 65535,
			SACK: sack(packet.SACKBlock{Left: 2921, Right: 5841})}},
		{T: ms(7), Dir: tcpsim.DirIn, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1, Ack: 5841, Wnd: 65535}},
		{T: ms(8), Dir: tcpsim.DirIn, Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 1, Ack: 5841, Wnd: 65535,
			SACK: sack(packet.SACKBlock{Left: 7301, Right: 8761},
				packet.SACKBlock{Left: 10221, Right: 11681})}},
	}
	var buf bytes.Buffer
	if err := ExportPcap(&buf, []*Flow{f}, ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	flows, err := ImportPcap(&buf, ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("imported %d flows", len(flows))
	}
	got := flows[0]
	if len(got.Records) != len(f.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(f.Records))
	}
	for i := range got.Records {
		g, w := got.Records[i].Seg.SACK, f.Records[i].Seg.SACK
		if g != w {
			t.Errorf("record %d SACK %v, want %v (stale blocks leaked?)", i, g, w)
		}
	}
}
