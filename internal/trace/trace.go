// Package trace defines the server-side packet record format the
// TAPO analysis consumes, collects records from simulated
// connections, and converts flows to and from real pcap files so the
// classifier runs identically on synthetic and captured traffic.
package trace

import (
	"fmt"
	"sort"

	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// Record is one packet as seen at the server NIC.
type Record struct {
	T   sim.Time
	Dir tcpsim.Dir
	Seg tcpsim.Segment
}

// IsData reports whether the record carries payload bytes.
func (r *Record) IsData() bool { return r.Seg.Len > 0 }

// Flow is one TCP connection's server-side record sequence plus
// metadata the workload layer attaches.
type Flow struct {
	// ID identifies the flow in reports.
	ID string
	// Service labels the generating service ("cloud-storage", …).
	Service string
	// Records in capture order.
	Records []Record
	// InitRwnd is the client's SYN-advertised window (bytes); 0 when
	// no SYN was captured.
	InitRwnd int
	// Done reports whether the transfer completed (simulator ground
	// truth; true for imported pcaps).
	Done bool
	// Latency is the simulator-measured flow latency (ground truth
	// for Table 8); zero for imported pcaps.
	Latency sim.Duration
	// MSS for the flow (default 1460).
	MSS int
	// Truncated marks a flow whose collector hit its record cap:
	// Records holds only the first MaxRecords packets and
	// DroppedRecords counts the rest. Analyses of truncated flows
	// cover the retained prefix only.
	Truncated bool
	// DroppedRecords counts records discarded by the collector cap.
	DroppedRecords int
}

// Duration reports last-record time minus first-record time.
func (f *Flow) Duration() sim.Duration {
	if len(f.Records) < 2 {
		return 0
	}
	return f.Records[len(f.Records)-1].T.Sub(f.Records[0].T)
}

// DataBytes sums outgoing payload bytes excluding retransmissions
// (max contiguous stream coverage). Sequence numbers are unwrapped
// onto 64-bit offsets so random ISNs and >4 GiB flows measure
// correctly.
func (f *Flow) DataBytes() int64 {
	var u seqspace.Unwrapper
	var maxEnd uint64
	var base uint64
	first := true
	for i := range f.Records {
		r := &f.Records[i]
		if r.Dir != tcpsim.DirOut || r.Seg.Len == 0 {
			continue
		}
		off := u.Unwrap(r.Seg.Seq)
		if first {
			base = off
			maxEnd = off
			first = false
		}
		if end := off + uint64(r.Seg.Len); end > maxEnd {
			maxEnd = end
		}
	}
	if first {
		return 0
	}
	return int64(maxEnd - base)
}

// OutDataPackets counts outgoing payload-carrying records (including
// retransmissions).
func (f *Flow) OutDataPackets() int {
	n := 0
	for i := range f.Records {
		if f.Records[i].Dir == tcpsim.DirOut && f.Records[i].Seg.Len > 0 {
			n++
		}
	}
	return n
}

// SortByTime orders records chronologically (stable).
func (f *Flow) SortByTime() {
	sort.SliceStable(f.Records, func(i, j int) bool {
		return f.Records[i].T < f.Records[j].T
	})
}

func (f *Flow) String() string {
	return fmt.Sprintf("flow %s (%s): %d records, %d data bytes, %.1fs",
		f.ID, f.Service, len(f.Records), f.DataBytes(), f.Duration().Seconds())
}

// Collector implements tcpsim.TraceSink, accumulating records into a
// Flow.
type Collector struct {
	Flow *Flow
	// MaxRecords caps the flow's record slice (0 = unlimited). Once
	// the cap is reached, later records are dropped and counted in
	// Flow.DroppedRecords and the flow is marked Truncated — so a
	// single elephant flow cannot grow memory without bound in live
	// mode, and the truncation is explicit rather than silent.
	MaxRecords int
}

// NewCollector builds a collector for a new flow.
func NewCollector(id, service string) *Collector {
	return &Collector{Flow: &Flow{ID: id, Service: service, MSS: 1460}}
}

// Record implements tcpsim.TraceSink.
func (c *Collector) Record(t sim.Time, dir tcpsim.Dir, seg tcpsim.Segment) {
	if c.MaxRecords > 0 && len(c.Flow.Records) >= c.MaxRecords {
		c.Flow.Truncated = true
		c.Flow.DroppedRecords++
		return
	}
	c.Flow.Records = append(c.Flow.Records, Record{T: t, Dir: dir, Seg: seg})
	if dir == tcpsim.DirIn && seg.Flags.Has(synFlag) && c.Flow.InitRwnd == 0 {
		c.Flow.InitRwnd = seg.Wnd
	}
}
