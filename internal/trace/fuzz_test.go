package trace

import (
	"bytes"
	"testing"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// seedCapture builds a small two-flow capture via the real exporter so
// the fuzzer starts from structurally valid pcap bytes.
func seedCapture(tb testing.TB) []byte {
	rec := func(ms int, dir tcpsim.Dir, flags packet.TCPFlags, seq, ack uint32, n int) Record {
		return Record{
			T:   sim.Time(time.Duration(ms) * time.Millisecond),
			Dir: dir,
			Seg: tcpsim.Segment{Flags: flags, Seq: seq, Ack: ack, Len: n, Wnd: 65535},
		}
	}
	flows := []*Flow{
		{ID: "a", Service: "seed", MSS: 1460, Records: []Record{
			rec(0, tcpsim.DirIn, packet.FlagSYN, 0, 0, 0),
			rec(10, tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, 0, 1, 0),
			rec(20, tcpsim.DirIn, packet.FlagACK, 1, 1, 0),
			rec(30, tcpsim.DirOut, packet.FlagACK, 1, 1, 1460),
			rec(50, tcpsim.DirIn, packet.FlagACK, 1, 1461, 0),
			rec(60, tcpsim.DirOut, packet.FlagFIN|packet.FlagACK, 1461, 1, 0),
			rec(70, tcpsim.DirIn, packet.FlagFIN|packet.FlagACK, 1, 1462, 0),
		}},
		{ID: "b", Service: "seed", MSS: 1460, Records: []Record{
			rec(5, tcpsim.DirIn, packet.FlagSYN, 0, 0, 0),
			rec(15, tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, 0, 1, 0),
			rec(25, tcpsim.DirOut, packet.FlagRST, 1, 1, 0),
		}},
		// Server ISN a few KB below 2^32 so the data stream wraps
		// mid-flow: seeds the mutator with modular sequence arithmetic.
		{ID: "c", Service: "seed", MSS: 1460, Records: []Record{
			rec(0, tcpsim.DirIn, packet.FlagSYN, 0xCAFE0000, 0, 0),
			rec(10, tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, 0xFFFFF000, 0xCAFE0001, 0),
			rec(20, tcpsim.DirIn, packet.FlagACK, 0xCAFE0001, 0xFFFFF001, 0),
			rec(30, tcpsim.DirOut, packet.FlagACK, 0xFFFFF001, 0xCAFE0001, 1460),
			rec(40, tcpsim.DirOut, packet.FlagACK, 0xFFFFF001+1460, 0xCAFE0001, 1460),
			rec(50, tcpsim.DirOut, packet.FlagACK, 0xFFFFF001+2920, 0xCAFE0001, 1460), // crosses 2^32
			rec(60, tcpsim.DirIn, packet.FlagACK, 0xCAFE0001, 285, 0),                 // 0xFFFFF001+4380 mod 2^32
			rec(70, tcpsim.DirOut, packet.FlagFIN|packet.FlagACK, 285, 0xCAFE0001, 0),
		}},
	}
	var buf bytes.Buffer
	if err := ExportPcap(&buf, flows, ExportConfig{}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzImportPcap feeds arbitrary bytes to both importers. The
// contract under attack: they must return an error, never panic, and
// whenever the batch importer succeeds the streaming importer must
// reassemble the same total record count.
func FuzzImportPcap(f *testing.F) {
	valid := seedCapture(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	f.Add(valid[:24])
	f.Add([]byte{})
	// Header with a hostile record length follows in mutations.
	hostile := append([]byte{}, valid[:24+8]...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		flows, err := ImportPcap(bytes.NewReader(data), ImportConfig{})
		var batchRecords int
		for _, fl := range flows {
			batchRecords += len(fl.Records)
		}

		var streamRecords int
		serr := ImportPcapStream(bytes.NewReader(data), ImportConfig{}, func(fl *Flow) error {
			streamRecords += len(fl.Records)
			return nil
		})
		if (err == nil) != (serr == nil) {
			t.Fatalf("batch err = %v, stream err = %v", err, serr)
		}
		if err == nil && batchRecords != streamRecords {
			t.Fatalf("batch reassembled %d records, stream %d", batchRecords, streamRecords)
		}
	})
}
