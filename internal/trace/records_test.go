package trace

import (
	"bytes"
	"testing"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

func TestCollectorMaxRecords(t *testing.T) {
	c := NewCollector("cap", "test")
	c.MaxRecords = 5
	for i := 0; i < 8; i++ {
		c.Record(sim.Time(i), tcpsim.DirOut, tcpsim.Segment{Seq: uint32(i * 1460), Len: 1460})
	}
	if got := len(c.Flow.Records); got != 5 {
		t.Errorf("retained %d records, want 5", got)
	}
	if !c.Flow.Truncated {
		t.Error("flow not marked Truncated")
	}
	if c.Flow.DroppedRecords != 3 {
		t.Errorf("DroppedRecords = %d, want 3", c.Flow.DroppedRecords)
	}
}

func TestCollectorUnlimitedByDefault(t *testing.T) {
	c := NewCollector("nocap", "test")
	for i := 0; i < 1000; i++ {
		c.Record(sim.Time(i), tcpsim.DirOut, tcpsim.Segment{Seq: uint32(i), Len: 1})
	}
	if len(c.Flow.Records) != 1000 || c.Flow.Truncated || c.Flow.DroppedRecords != 0 {
		t.Errorf("default collector truncated: %d records, truncated=%v dropped=%d",
			len(c.Flow.Records), c.Flow.Truncated, c.Flow.DroppedRecords)
	}
}

// TestImportPcapRecordsMatchesFlows replays a two-connection capture
// through the per-record streamer and checks every event matches the
// flow importer's assembly: same IDs (including the generation
// suffix), same records in the same order, and FlowDone exactly where
// the streaming flow importer completes a connection.
func TestImportPcapRecordsMatchesFlows(t *testing.T) {
	c := newCapture(t)
	// Connection A: handshake, data, RST teardown, then the endpoint
	// reconnects (generation #2).
	c.frame(false, clientA, packet.FlagSYN, 100, 0, 0)
	c.frame(true, clientA, packet.FlagSYN|packet.FlagACK, 500, 101, 0)
	c.frame(false, clientA, packet.FlagACK, 101, 501, 0)
	c.frame(true, clientA, packet.FlagACK, 501, 101, 1460)
	// Connection B interleaves.
	c.frame(false, clientB, packet.FlagSYN, 9000, 0, 0)
	c.frame(true, clientB, packet.FlagSYN|packet.FlagACK, 40, 9001, 0)
	c.frame(false, clientA, packet.FlagRST, 101, 0, 0)
	c.frame(false, clientA, packet.FlagSYN, 7000, 0, 0) // generation 2
	c.frame(true, clientB, packet.FlagACK, 41, 9001, 1000)

	var evs []RecordEvent
	err := ImportPcapRecords(bytes.NewReader(c.buf.Bytes()), ImportConfig{}, func(ev RecordEvent) error {
		evs = append(evs, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 9 {
		t.Fatalf("streamed %d events, want 9", len(evs))
	}

	// Reassemble per flow and compare against the streaming flow
	// importer, whose generation-splitting semantics the record
	// streamer shares.
	byID := map[string][]Record{}
	var order []string
	for _, ev := range evs {
		if _, ok := byID[ev.FlowID]; !ok {
			order = append(order, ev.FlowID)
		}
		byID[ev.FlowID] = append(byID[ev.FlowID], ev.Rec)
	}
	flows := c.stream()
	if len(flows) != len(order) {
		t.Fatalf("record stream saw %d flows (%v), flow importer %d", len(order), order, len(flows))
	}
	for _, f := range flows {
		recs, ok := byID[f.ID]
		if !ok {
			t.Errorf("flow %q missing from record stream (have %v)", f.ID, order)
			continue
		}
		if len(recs) != len(f.Records) {
			t.Errorf("flow %q: %d streamed records, want %d", f.ID, len(recs), len(f.Records))
			continue
		}
		for i := range recs {
			if recs[i].T != f.Records[i].T || recs[i].Dir != f.Records[i].Dir ||
				recs[i].Seg.Seq != f.Records[i].Seg.Seq || recs[i].Seg.Len != f.Records[i].Seg.Len {
				t.Errorf("flow %q record %d differs: %+v vs %+v", f.ID, i, recs[i], f.Records[i])
			}
		}
	}

	// FlowDone fires on connection A's RST and nowhere else in this
	// capture (B never tears down; A#2 never completes).
	var doneIDs []string
	for _, ev := range evs {
		if ev.FlowDone {
			doneIDs = append(doneIDs, ev.FlowID)
		}
	}
	if len(doneIDs) != 1 || doneIDs[0] != "100.64.0.1:12345" {
		t.Errorf("FlowDone events = %v, want exactly [100.64.0.1:12345]", doneIDs)
	}

	// The generation suffix must match the flow importer's.
	if _, ok := byID["100.64.0.1:12345#2"]; !ok {
		t.Errorf("reconnected endpoint missing #2 generation: %v", order)
	}

	// SYN events must carry the client's advertised window.
	if evs[0].InitRwnd == 0 {
		t.Error("client SYN event carries no InitRwnd")
	}
}
