package trace

import (
	"bytes"
	"testing"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/pcap"
)

// capture hand-builds an Ethernet/IPv4/TCP pcap, one frame at a time,
// so tests control teardown shapes the simulator never produces.
type capture struct {
	t   *testing.T
	buf bytes.Buffer
	pw  *pcap.Writer
	now time.Time
}

func newCapture(t *testing.T) *capture {
	c := &capture{t: t, now: time.Date(2014, 12, 22, 18, 0, 0, 0, time.UTC)}
	pw, err := pcap.NewWriter(&c.buf, pcap.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	c.pw = pw
	return c
}

var (
	serverIP = [4]byte{10, 0, 0, 1}
	clientA  = [4]byte{100, 64, 0, 1}
	clientB  = [4]byte{100, 64, 0, 2}
)

const (
	serverPort = 80
	clientPort = 12345
)

// frame appends one packet. fromServer selects direction; payloadLen
// bytes of zeros ride along.
func (c *capture) frame(fromServer bool, clientIP [4]byte, flags packet.TCPFlags, seq, ack uint32, payloadLen int) {
	c.now = c.now.Add(time.Millisecond)
	tcp := packet.TCPHeader{Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	var eth packet.Ethernet
	var ip packet.IPv4
	ip.TTL = 64
	if fromServer {
		ip.Src, ip.Dst = serverIP, clientIP
		tcp.SrcPort, tcp.DstPort = serverPort, clientPort
	} else {
		ip.Src, ip.Dst = clientIP, serverIP
		tcp.SrcPort, tcp.DstPort = clientPort, serverPort
	}
	data := packet.EncodeTCPv4(&eth, &ip, &tcp, make([]byte, payloadLen))
	if err := c.pw.WritePacket(pcap.Packet{Timestamp: c.now, Data: data}); err != nil {
		c.t.Fatal(err)
	}
}

// stream runs ImportPcapStream over the capture and returns flows in
// emission order.
func (c *capture) stream() []*Flow {
	var out []*Flow
	err := ImportPcapStream(bytes.NewReader(c.buf.Bytes()), ImportConfig{}, func(f *Flow) error {
		out = append(out, f)
		return nil
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return out
}

// TestStreamEmitsOnRST: a reset closes the connection immediately, so
// packets from the same client endpoint afterwards open a second flow
// carrying the "#2" generation suffix.
func TestStreamEmitsOnRST(t *testing.T) {
	c := newCapture(t)
	c.frame(false, clientA, packet.FlagSYN, 0, 0, 0)
	c.frame(true, clientA, packet.FlagSYN|packet.FlagACK, 0, 1, 0)
	c.frame(false, clientA, packet.FlagACK, 1, 1, 0)
	c.frame(true, clientA, packet.FlagRST, 1, 1, 0)
	// Same endpoint comes back: must be a distinct flow.
	c.frame(false, clientA, packet.FlagSYN, 0, 0, 0)
	c.frame(true, clientA, packet.FlagSYN|packet.FlagACK, 0, 1, 0)

	flows := c.stream()
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2", len(flows))
	}
	if n := len(flows[0].Records); n != 4 {
		t.Errorf("first flow has %d records, want 4", n)
	}
	if n := len(flows[1].Records); n != 2 {
		t.Errorf("second flow has %d records, want 2", n)
	}
	if flows[0].ID == flows[1].ID {
		t.Errorf("reincarnated flow shares ID %q with its predecessor", flows[0].ID)
	}
	if want := flows[0].ID + "#2"; flows[1].ID != want {
		t.Errorf("second flow ID = %q, want %q", flows[1].ID, want)
	}
}

// TestStreamEmitsOnFINTeardown: after FINs in both directions, the
// final pure ACK completes the flow mid-capture.
func TestStreamEmitsOnFINTeardown(t *testing.T) {
	c := newCapture(t)
	// Flow A: full handshake, one data segment, full FIN teardown.
	c.frame(false, clientA, packet.FlagSYN, 0, 0, 0)
	c.frame(true, clientA, packet.FlagSYN|packet.FlagACK, 0, 1, 0)
	c.frame(false, clientA, packet.FlagACK, 1, 1, 0)
	c.frame(true, clientA, packet.FlagACK, 1, 1, 100)
	c.frame(false, clientA, packet.FlagACK, 1, 101, 0)
	c.frame(true, clientA, packet.FlagFIN|packet.FlagACK, 101, 1, 0)
	c.frame(false, clientA, packet.FlagFIN|packet.FlagACK, 1, 102, 0)
	c.frame(true, clientA, packet.FlagACK, 102, 2, 0) // completes A
	// Flow B stays open past EOF.
	c.frame(false, clientB, packet.FlagSYN, 0, 0, 0)
	c.frame(true, clientB, packet.FlagSYN|packet.FlagACK, 0, 1, 0)

	flows := c.stream()
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2", len(flows))
	}
	if n := len(flows[0].Records); n != 8 {
		t.Errorf("torn-down flow has %d records, want 8", n)
	}
	if n := len(flows[1].Records); n != 2 {
		t.Errorf("EOF-flushed flow has %d records, want 2", n)
	}
}

// TestStreamFINWithoutFinalACKFlushesAtEOF: the simulator's teardown
// shape — both FINs, no trailing ACK — must NOT complete early, so
// any late packets still join the same flow and streaming stays
// identical to batch import.
func TestStreamFINWithoutFinalACKFlushesAtEOF(t *testing.T) {
	c := newCapture(t)
	c.frame(false, clientA, packet.FlagSYN, 0, 0, 0)
	c.frame(true, clientA, packet.FlagSYN|packet.FlagACK, 0, 1, 0)
	c.frame(false, clientA, packet.FlagACK, 1, 1, 0)
	c.frame(true, clientA, packet.FlagFIN|packet.FlagACK, 1, 1, 0)
	c.frame(false, clientA, packet.FlagFIN|packet.FlagACK, 1, 2, 0)

	flows := c.stream()
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	if n := len(flows[0].Records); n != 5 {
		t.Errorf("flow has %d records, want 5", n)
	}
}

// TestStreamMatchesBatchImport: over an interleaved two-client
// capture, the streaming importer reassembles exactly the flows the
// batch importer does, record for record.
func TestStreamMatchesBatchImport(t *testing.T) {
	c := newCapture(t)
	c.frame(false, clientA, packet.FlagSYN, 0, 0, 0)
	c.frame(false, clientB, packet.FlagSYN, 0, 0, 0)
	c.frame(true, clientA, packet.FlagSYN|packet.FlagACK, 0, 1, 0)
	c.frame(true, clientB, packet.FlagSYN|packet.FlagACK, 0, 1, 0)
	c.frame(false, clientA, packet.FlagACK, 1, 1, 0)
	c.frame(true, clientB, packet.FlagACK, 1, 1, 500)
	c.frame(true, clientA, packet.FlagACK, 1, 1, 300)
	c.frame(false, clientB, packet.FlagACK, 1, 501, 0)
	c.frame(false, clientA, packet.FlagACK, 1, 301, 0)

	streamed := c.stream()
	batch, err := ImportPcap(bytes.NewReader(c.buf.Bytes()), ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d flows, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].ID != batch[i].ID {
			t.Errorf("flow %d: streamed ID %q, batch ID %q", i, streamed[i].ID, batch[i].ID)
		}
		if len(streamed[i].Records) != len(batch[i].Records) {
			t.Errorf("flow %s: streamed %d records, batch %d",
				batch[i].ID, len(streamed[i].Records), len(batch[i].Records))
			continue
		}
		for j := range batch[i].Records {
			sr, br := streamed[i].Records[j], batch[i].Records[j]
			if sr.T != br.T || sr.Dir != br.Dir || sr.Seg.Seq != br.Seg.Seq ||
				sr.Seg.Len != br.Seg.Len || sr.Seg.Flags != br.Seg.Flags {
				t.Errorf("flow %s record %d: streamed %+v, batch %+v", batch[i].ID, j, sr, br)
			}
		}
	}
}
