package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/pcap"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

const synFlag = packet.FlagSYN

// ExportConfig controls pcap generation.
type ExportConfig struct {
	// ServerIP/ServerPort are the server endpoint written into every
	// frame. Defaults: 10.0.0.1:80.
	ServerIP   [4]byte
	ServerPort uint16
	// BaseTime anchors sim time 0 to an absolute capture time.
	// Defaults to 2014-12-22 18:00 UTC (the dataset's first day).
	BaseTime time.Time
	// Snaplen caps captured bytes per frame (default: full frames).
	Snaplen uint32
}

func (c *ExportConfig) defaults() {
	if c.ServerIP == ([4]byte{}) {
		c.ServerIP = [4]byte{10, 0, 0, 1}
	}
	if c.ServerPort == 0 {
		c.ServerPort = 80
	}
	if c.BaseTime.IsZero() {
		c.BaseTime = time.Date(2014, 12, 22, 18, 0, 0, 0, time.UTC)
	}
}

// clientAddr derives a distinct client endpoint for flow index i.
func clientAddr(i int) ([4]byte, uint16) {
	ip := [4]byte{100, byte(64 + (i>>14)&0x3f), byte((i >> 7) & 0x7f), byte(1 + i&0x7f)}
	port := uint16(10000 + i%50000)
	return ip, port
}

// tsTicks converts virtual time to RFC 7323 millisecond ticks,
// offset so tick 0 is distinguishable from "no timestamp".
func tsTicks(t sim.Time) uint32 {
	if t == 0 {
		return 0
	}
	return uint32(time.Duration(t)/time.Millisecond) + 1
}

func ticksToTime(ticks uint32) sim.Time {
	if ticks == 0 {
		return 0
	}
	return sim.Time(time.Duration(ticks-1) * time.Millisecond)
}

// ExportPcap writes flows as one Ethernet/IPv4/TCP capture. Payloads
// are zero-filled to the recorded lengths, so the file opens in
// tcpdump/tshark with correct sequence analysis.
func ExportPcap(w io.Writer, flows []*Flow, cfg ExportConfig) error {
	cfg.defaults()
	hdr := pcap.Header{LinkType: pcap.LinkTypeEthernet, Snaplen: cfg.Snaplen, Nanosecond: true}
	pw, err := pcap.NewWriterHeader(w, hdr)
	if err != nil {
		return err
	}
	serverMAC := packet.MAC{0x02, 0, 0, 0, 0, 1}
	clientMAC := packet.MAC{0x02, 0, 0, 0, 0, 2}

	// Merge all records into one timeline for a realistic capture.
	type item struct {
		t    sim.Time
		flow int
		rec  *Record
	}
	var items []item
	for fi, f := range flows {
		for ri := range f.Records {
			items = append(items, item{f.Records[ri].T, fi, &f.Records[ri]})
		}
	}
	// Stable sort by time (preserves intra-flow order).
	sort.SliceStable(items, func(i, j int) bool { return items[i].t < items[j].t })

	var ipID uint16
	for _, it := range items {
		f := flows[it.flow]
		cip, cport := clientAddr(it.flow)
		r := it.rec
		tcp := packet.TCPHeader{
			Seq:    r.Seg.Seq,
			Ack:    r.Seg.Ack,
			Flags:  r.Seg.Flags,
			Window: clampU16(r.Seg.Wnd),
		}
		if r.Seg.TSVal != 0 || r.Seg.TSEcr != 0 {
			tcp.Options.HasTimestamps = true
			tcp.Options.TSVal = tsTicks(r.Seg.TSVal)
			tcp.Options.TSEcr = tsTicks(r.Seg.TSEcr)
		}
		// Reset before copying: tcp is rebuilt per record today, but
		// a recycled header with a stale block would silently corrupt
		// the importer's scoreboard walk, so make the contract
		// explicit. Inline storage means this is a plain value copy.
		tcp.Options.SACK.Reset()
		tcp.Options.SACK = r.Seg.SACK
		if r.Seg.Flags.Has(packet.FlagSYN) {
			tcp.Options.HasMSS = true
			tcp.Options.MSS = uint16(mssOf(f))
			tcp.Options.SACKPermitted = true
		}
		var eth packet.Ethernet
		var ip packet.IPv4
		ip.TTL = 64
		ipID++
		ip.ID = ipID
		if r.Dir == tcpsim.DirOut {
			eth.Src, eth.Dst = serverMAC, clientMAC
			ip.Src, ip.Dst = cfg.ServerIP, cip
			tcp.SrcPort, tcp.DstPort = cfg.ServerPort, cport
		} else {
			eth.Src, eth.Dst = clientMAC, serverMAC
			ip.Src, ip.Dst = cip, cfg.ServerIP
			tcp.SrcPort, tcp.DstPort = cport, cfg.ServerPort
		}
		payload := make([]byte, r.Seg.Len)
		frame := packet.EncodeTCPv4(&eth, &ip, &tcp, payload)
		err := pw.WritePacket(pcap.Packet{
			Timestamp: cfg.BaseTime.Add(time.Duration(it.t)),
			Data:      frame,
		})
		if err != nil {
			return fmt.Errorf("exporting flow %s: %w", f.ID, err)
		}
	}
	return nil
}

func mssOf(f *Flow) int {
	if f.MSS > 0 {
		return f.MSS
	}
	return 1460
}

func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v)
}

// ImportConfig controls pcap parsing.
type ImportConfig struct {
	// ServerPort identifies the server side of each connection
	// (default 80). Frames with this source port are DirOut.
	ServerPort uint16
}

// FlowHandler consumes one completed flow. Returning an error aborts
// the import and propagates the error to the caller.
type FlowHandler func(*Flow) error

// flowKey identifies a connection by the client endpoint.
type flowKey struct {
	ip   [16]byte // IPv4 addresses mapped into the low 4 bytes
	port uint16
}

// flowState is a demux entry: the flow under assembly plus the
// teardown tracking that lets the streaming importer emit it early.
type flowState struct {
	flow *Flow
	td   teardown
}

// demux reassembles per-connection flows from decoded frames. With
// emitEarly set it completes flows as soon as the capture shows the
// connection is over (RST, or both FINs followed by a pure ACK);
// otherwise every flow is held until flush.
type demux struct {
	cfg       ImportConfig
	emitEarly bool

	flows    map[flowKey]*flowState
	order    []flowKey
	gens     map[flowKey]int // completed generations per key
	base     time.Time
	haveBase bool
}

func newDemux(cfg ImportConfig, emitEarly bool) *demux {
	if cfg.ServerPort == 0 {
		cfg.ServerPort = 80
	}
	return &demux{
		cfg:       cfg,
		emitEarly: emitEarly,
		flows:     map[flowKey]*flowState{},
		gens:      map[flowKey]int{},
	}
}

// flowID renders the demux key as a flow identifier, suffixed with
// the generation ordinal when the same endpoint reappears after its
// connection completed.
func (d *demux) flowID(k flowKey, ipv6 bool) string {
	var id string
	if ipv6 {
		id = fmt.Sprintf("[%x]:%d", k.ip, k.port)
	} else {
		id = fmt.Sprintf("%d.%d.%d.%d:%d", k.ip[0], k.ip[1], k.ip[2], k.ip[3], k.port)
	}
	if g := d.gens[k]; g > 0 {
		id = fmt.Sprintf("%s#%d", id, g+1)
	}
	return id
}

// decodedRecord is one parsed TCP packet attributed to a connection.
type decodedRecord struct {
	key  flowKey
	dir  tcpsim.Dir
	seg  tcpsim.Segment
	ipv6 bool
	mss  int // from SYN options; 0 when absent
}

// decodeTCP parses one captured frame down to a keyed TCP record from
// the server's vantage point. It is the shared front half of the
// flow-assembling demux and the per-record streaming importer.
func decodeTCP(data []byte, raw bool, serverPort uint16) (decodedRecord, bool) {
	var dr decodedRecord
	fr, ok := decodeFrame(data, raw)
	if !ok {
		return dr, false
	}
	var srcIP, dstIP [16]byte
	if fr.IsIPv6 {
		srcIP, dstIP = fr.IP6.Src, fr.IP6.Dst
	} else {
		copy(srcIP[:4], fr.IP4.Src[:])
		copy(dstIP[:4], fr.IP4.Dst[:])
	}
	switch {
	case fr.TCP.SrcPort == serverPort:
		dr.dir = tcpsim.DirOut
		dr.key = flowKey{dstIP, fr.TCP.DstPort}
	case fr.TCP.DstPort == serverPort:
		dr.dir = tcpsim.DirIn
		dr.key = flowKey{srcIP, fr.TCP.SrcPort}
	default:
		return dr, false
	}
	dr.ipv6 = fr.IsIPv6
	// Payload length from the IP length fields (snaplen-proof).
	var segLen int
	if fr.IsIPv6 {
		segLen = int(fr.IP6.PayloadLen) - fr.TCP.HeaderLen()
	} else {
		segLen = int(fr.IP4.TotalLen) - fr.IP4.HeaderLen() - fr.TCP.HeaderLen()
	}
	if segLen < 0 {
		segLen = len(fr.Payload)
	}
	dr.seg = tcpsim.Segment{
		Flags: fr.TCP.Flags,
		Seq:   fr.TCP.Seq,
		Ack:   fr.TCP.Ack,
		Len:   segLen,
		Wnd:   int(fr.TCP.Window),
	}
	if fr.TCP.Options.HasTimestamps {
		dr.seg.TSVal = ticksToTime(fr.TCP.Options.TSVal)
		dr.seg.TSEcr = ticksToTime(fr.TCP.Options.TSEcr)
	}
	// Value copy — dr.seg was freshly assigned above, and inline
	// storage guarantees the blocks never alias the decode frame,
	// even when fr is recycled across packets.
	dr.seg.SACK = fr.TCP.Options.SACK
	if fr.TCP.Options.HasMSS && fr.TCP.Options.MSS > 0 {
		dr.mss = int(fr.TCP.Options.MSS)
	}
	return dr, true
}

// teardown tracks connection-close progress and reports whether the
// segment at hand completes the connection. An RST closes it
// outright; after FINs in both directions, the next pure ACK (the
// teardown's final acknowledgment) closes it. A FIN-only teardown
// with no trailing ACK — the simulator's shape — never reports
// completion and is handled at flush/EOF by the callers.
type teardown struct {
	finOut, finIn bool
}

func (td *teardown) observe(dir tcpsim.Dir, seg *tcpsim.Segment) (done bool) {
	switch {
	case seg.Flags.Has(packet.FlagRST):
		return true
	case seg.Flags.Has(packet.FlagFIN):
		if dir == tcpsim.DirOut {
			td.finOut = true
		} else {
			td.finIn = true
		}
	case td.finOut && td.finIn && seg.Len == 0 && !seg.Flags.Has(packet.FlagSYN):
		return true
	}
	return false
}

// add folds one captured record in and returns a flow that just
// completed, if any.
func (d *demux) add(pkt pcap.Packet, raw bool) *Flow {
	dr, ok := decodeTCP(pkt.Data, raw, d.cfg.ServerPort)
	if !ok {
		return nil
	}
	k := dr.key
	if !d.haveBase {
		d.base = pkt.Timestamp
		d.haveBase = true
	}
	st, ok := d.flows[k]
	if !ok {
		st = &flowState{
			flow: &Flow{
				ID:      d.flowID(k, dr.ipv6),
				Service: "pcap",
				Done:    true,
				MSS:     1460,
			},
		}
		d.flows[k] = st
		d.order = append(d.order, k)
	}
	f := st.flow
	if dr.mss > 0 {
		f.MSS = dr.mss
	}
	if dr.dir == tcpsim.DirIn && dr.seg.Flags.Has(packet.FlagSYN) && f.InitRwnd == 0 {
		f.InitRwnd = dr.seg.Wnd
	}
	f.Records = append(f.Records, Record{
		T:   sim.Time(pkt.Timestamp.Sub(d.base)),
		Dir: dr.dir,
		Seg: dr.seg,
	})
	if !d.emitEarly {
		return nil
	}
	if st.td.observe(dr.dir, &dr.seg) {
		return d.complete(k)
	}
	return nil
}

// complete detaches and returns the flow for k.
func (d *demux) complete(k flowKey) *Flow {
	st := d.flows[k]
	delete(d.flows, k)
	d.gens[k]++
	return st.flow
}

// flush returns the incomplete flows in first-seen order. A key can
// appear in order once per generation, so delete as we emit to keep
// each remaining flow to a single emission.
func (d *demux) flush() []*Flow {
	flows := make([]*Flow, 0, len(d.flows))
	for _, k := range d.order {
		if st, ok := d.flows[k]; ok {
			flows = append(flows, st.flow)
			delete(d.flows, k)
		}
	}
	d.flows = map[flowKey]*flowState{}
	d.order = nil
	return flows
}

// ImportPcapStream reads a capture and hands each reassembled flow to
// h as soon as it completes: on a RST, after a full FIN handshake, or
// — for flows still open when the capture ends — at EOF in
// first-seen order. This is the streaming entry point the analysis
// pipeline demuxes from; it holds only open flows in memory instead
// of the whole capture.
//
// If packets for a client endpoint arrive after its connection
// completed, they start a new flow whose ID carries a "#n" generation
// suffix.
func ImportPcapStream(r io.Reader, cfg ImportConfig, h FlowHandler) error {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return err
	}
	raw := pr.Header().LinkType == pcap.LinkTypeRaw
	d := newDemux(cfg, true)
	for {
		pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if f := d.add(pkt, raw); f != nil {
			if err := h(f); err != nil {
				return err
			}
		}
	}
	for _, f := range d.flush() {
		if err := h(f); err != nil {
			return err
		}
	}
	return nil
}

// ImportPcap reads a capture and reassembles per-connection flows
// from the server's vantage point. Ethernet and raw-IP link types are
// supported; IPv4 and IPv6 frames both decode. Non-TCP frames are
// skipped. Flows are returned in first-seen order, each holding every
// packet of its client endpoint.
func ImportPcap(r io.Reader, cfg ImportConfig) ([]*Flow, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	raw := pr.Header().LinkType == pcap.LinkTypeRaw
	d := newDemux(cfg, false)
	for {
		pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		d.add(pkt, raw)
	}
	return d.flush(), nil
}

// decodeFrame parses one captured record down to TCP, handling both
// Ethernet and raw-IP link layers.
func decodeFrame(data []byte, rawIP bool) (*packet.Frame, bool) {
	var fr packet.Frame
	if !rawIP {
		if err := fr.Decode(data); err != nil || !fr.HasTCP {
			return nil, false
		}
		return &fr, true
	}
	if len(data) == 0 {
		return nil, false
	}
	switch data[0] >> 4 {
	case 4:
		rest, err := fr.IP4.DecodeFromBytes(data)
		if err != nil || fr.IP4.Protocol != packet.IPProtoTCP {
			return nil, false
		}
		if _, err := fr.TCP.DecodeFromBytes(rest); err != nil {
			return nil, false
		}
		fr.HasTCP = true
		return &fr, true
	case 6:
		rest, err := fr.IP6.DecodeFromBytes(data)
		if err != nil || fr.IP6.NextHeader != packet.IPProtoTCP {
			return nil, false
		}
		if _, err := fr.TCP.DecodeFromBytes(rest); err != nil {
			return nil, false
		}
		fr.IsIPv6 = true
		fr.HasTCP = true
		return &fr, true
	default:
		return nil, false
	}
}
