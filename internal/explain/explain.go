// Package explain renders flight-recorder evidence into the
// human-readable stall narratives behind `tapo explain`: for every
// stall, the classification verdict, the Figure-5/Table-5 decision
// path with the concrete variable values that chose each branch, the
// ±K packet window around the silent gap, and the analyzer events
// recorded near it.
package explain

import (
	"fmt"
	"io"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/flight"
)

// Flow renders the narrative for every stall of one analyzed flow.
// Output is deterministic: the golden-explain CI gate pins it per
// Figure-5 family.
func Flow(w io.Writer, a *core.FlowAnalysis, rec *flight.Recorder) {
	fmt.Fprintf(w, "flow %s", a.FlowID)
	if a.Service != "" {
		fmt.Fprintf(w, " (%s)", a.Service)
	}
	fmt.Fprintf(w, ": %d records-worth of data in %.3fs, %d stalls, %.1f%% of lifetime stalled\n",
		a.DataPackets, a.TransmissionTime.Seconds(), len(a.Stalls), 100*a.StalledFraction())
	if len(a.Stalls) == 0 {
		return
	}
	for i := range a.Stalls {
		st := &a.Stalls[i]
		var ev *flight.Evidence
		if st.Evidence != nil {
			ev = rec.Evidence(st.Evidence.Stall)
		}
		fmt.Fprintln(w)
		Stall(w, st, ev)
	}
	if rec != nil && rec.EvidenceDrops() > 0 {
		fmt.Fprintf(w, "\n(evidence for %d earlier stalls evicted by the per-flow cap)\n",
			rec.EvidenceDrops())
	}
}

// Stall renders one stall's narrative. A nil evidence falls back to
// the verdict-only summary (recorder disabled or evidence evicted).
func Stall(w io.Writer, st *core.Stall, ev *flight.Evidence) {
	label := causeLabel(st)
	fmt.Fprintf(w, "stall #%d: %s\n", st.ID, label)
	fmt.Fprintf(w, "  when:  %.6fs -> %.6fs  (%s of silence)\n",
		st.Start.Seconds(), st.End.Seconds(), fmtDur(st.Duration))
	fmt.Fprintf(w, "  state: ca=%v in_flight=%d pkts_out=%d rwnd=%d cwnd~%d\n",
		st.CaState, st.InFlight, st.PacketsOut, st.Rwnd, st.CwndEst)
	if st.Cause == core.CauseTimeoutRetrans && st.Position >= 0 {
		fmt.Fprintf(w, "  lost segment position: %.2f of the flow's data packets\n", st.Position)
	}
	if ev == nil {
		fmt.Fprintf(w, "  (no evidence captured — recorder disabled or entry evicted)\n")
		return
	}

	fmt.Fprintf(w, "  decision path (Figure 5 / Table 5):\n")
	for i, step := range ev.Decision {
		fmt.Fprintf(w, "    %2d. %s\n", i+1, step.String())
	}

	fmt.Fprintf(w, "  packet window (records %d..%d around the gap):\n",
		ev.Window[0].Idx, ev.Window[len(ev.Window)-1].Idx)
	fmt.Fprintf(w, "    %5s %12s %-3s %6s %11s %11s %7s %s\n",
		"rec", "t(s)", "dir", "len", "seq", "ack", "rwnd", "flags")
	for _, s := range ev.Window {
		if s.Idx == ev.EndIdx {
			fmt.Fprintf(w, "    %s %s silence %s\n", "-----", fmtDur(ev.Duration()), "-----")
		}
		mark := ""
		if s.Idx == ev.EndIdx {
			mark = "  <- cur_pkt"
		}
		fmt.Fprintf(w, "    %5d %12.6f %-3s %6d %11d %11d %7d %s%s\n",
			s.Idx, s.T.Seconds(), s.Dir, s.Len, s.Seq, s.Ack, s.Wnd, s.Flags, mark)
	}

	if len(ev.Events) > 0 {
		fmt.Fprintf(w, "  analyzer events near the stall:\n")
		for _, e := range ev.Events {
			fmt.Fprintf(w, "    %5d %12.6f %-6s %-20s %d %d %d\n",
				e.Idx, e.T.Seconds(), e.Kind, e.Name, e.A, e.B, e.C)
		}
	}
	if ev.EventDrops > 0 {
		fmt.Fprintf(w, "  (event ring overwrote %d earlier events of this flow)\n", ev.EventDrops)
	}
	if ev.Provisional {
		fmt.Fprintf(w, "  (provisional: classification not yet settled by flow end)\n")
	}
}

func causeLabel(st *core.Stall) string {
	s := st.Cause.String()
	if st.Cause == core.CauseTimeoutRetrans {
		s += "/" + st.RetransCause.String()
		if st.RetransCause == core.RetransDouble {
			s += "(" + st.DoubleKind.String() + ")"
		}
		if st.RetransCause == core.RetransTail {
			s += "(in " + st.TailState.String() + ")"
		}
	}
	return s
}

// fmtDur renders durations at millisecond resolution so narratives
// stay stable across nanosecond-level jitter in regenerated fixtures.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
