package explain

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tcpstall/internal/core"
	"tcpstall/internal/flight"
	"tcpstall/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden explain narratives")

func loadGolden(t *testing.T, name string) []*trace.Flow {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "core", "testdata", name+".pcap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	flows, err := trace.ImportPcap(f, trace.ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("golden pcap contains no flows")
	}
	return flows
}

// The explain narrative for each Figure-5 family's golden pcap is
// pinned byte-for-byte. Regenerate with -update after an intentional
// classifier or renderer change.
func TestGoldenExplain(t *testing.T) {
	for _, name := range []string{"golden_server", "golden_client", "golden_network"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			for i, fl := range loadGolden(t, name) {
				if i > 0 {
					buf.WriteByte('\n')
				}
				a, rec := core.AnalyzeFlight(fl, core.DefaultConfig(), flight.Config{})
				Flow(&buf, a, rec)
			}
			goldenPath := filepath.Join("testdata", name+".explain.txt")
			if *update {
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("explain narrative of %s diverges from %s (got %d bytes, want %d); run with -update after intentional changes",
					name, goldenPath, buf.Len(), len(want))
			}
		})
	}
}

// Every golden narrative must show a complete story: a decision path
// whose steps carry concrete variables, and a packet window with the
// cur_pkt marker.
func TestExplainShowsDecisionPath(t *testing.T) {
	flows := loadGolden(t, "golden_network")
	a, rec := core.AnalyzeFlight(flows[0], core.DefaultConfig(), flight.Config{})
	if len(a.Stalls) == 0 {
		t.Fatal("golden_network flow has no stalls")
	}
	var buf bytes.Buffer
	Flow(&buf, a, rec)
	out := buf.String()
	for _, want := range []string{
		"decision path (Figure 5 / Table 5):",
		"cur_pkt is outgoing data",
		"copies_before=",
		"<- cur_pkt",
		"silence",
		"analyzer events near the stall:",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("narrative missing %q:\n%s", want, out[:min(len(out), 2000)])
		}
	}
}

// A stall without evidence (disabled recorder) must still render a
// verdict-only summary rather than panicking.
func TestExplainWithoutEvidence(t *testing.T) {
	flows := loadGolden(t, "golden_client")
	a := core.Analyze(flows[0], core.DefaultConfig())
	if len(a.Stalls) == 0 {
		t.Fatal("no stalls")
	}
	var buf bytes.Buffer
	Flow(&buf, a, nil)
	if !bytes.Contains(buf.Bytes(), []byte("no evidence captured")) {
		t.Errorf("missing disabled-recorder fallback:\n%s", buf.String())
	}
}

// The JSONL export must hold one pkt line per record, in order, and
// one stall line per classified stall carrying its evidence.
func TestWriteTraceJSONL(t *testing.T) {
	flows := loadGolden(t, "golden_network")
	fl := flows[0]
	a, rec := core.AnalyzeFlight(fl, core.DefaultConfig(), flight.Config{})
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, fl, a, rec); err != nil {
		t.Fatal(err)
	}
	pkts, stalls := 0, 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lastIdx := -1
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
			Idx  int    `json:"idx"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad JSONL line: %v: %s", err, sc.Text())
		}
		switch probe.Type {
		case "pkt":
			if probe.Idx != lastIdx+1 {
				t.Fatalf("pkt lines out of order: idx %d after %d", probe.Idx, lastIdx)
			}
			lastIdx = probe.Idx
			pkts++
		case "stall":
			var line StallLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatal(err)
			}
			if line.Evidence == nil || len(line.Evidence.Decision) == 0 {
				t.Errorf("stall %d exported without evidence", line.ID)
			}
			stalls++
		default:
			t.Fatalf("unknown line type %q", probe.Type)
		}
	}
	if pkts != len(fl.Records) {
		t.Errorf("pkt lines = %d, records = %d", pkts, len(fl.Records))
	}
	if stalls != len(a.Stalls) {
		t.Errorf("stall lines = %d, stalls = %d", stalls, len(a.Stalls))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
