package explain

import (
	"bufio"
	"encoding/json"
	"io"

	"tcpstall/internal/core"
	"tcpstall/internal/flight"
	"tcpstall/internal/trace"
)

// PktLine is one tcptrace-style time/sequence sample: a single
// captured record, tagged so plotting tools can split directions and
// overlay stall spans.
type PktLine struct {
	Type string  `json:"type"` // "pkt"
	Flow string  `json:"flow"`
	Idx  int     `json:"idx"`
	TS   float64 `json:"t_s"`
	Dir  string  `json:"dir"`
	Seq  uint32  `json:"seq"`
	Ack  uint32  `json:"ack"`
	Len  int     `json:"len"`
	Wnd  int     `json:"rwnd"`
	Flag string  `json:"flags"`
	Sack int     `json:"sack_blocks,omitempty"`
}

// StallLine marks one classified stall span, carrying the evidence
// (decision path + window) inline when the recorder held it.
type StallLine struct {
	Type     string               `json:"type"` // "stall"
	Flow     string               `json:"flow"`
	ID       int                  `json:"id"`
	StartS   float64              `json:"start_s"`
	EndS     float64              `json:"end_s"`
	Cause    string               `json:"cause"`
	SubCause string               `json:"sub_cause,omitempty"`
	Evidence *flight.EvidenceJSON `json:"evidence,omitempty"`
}

// WriteTraceJSONL streams the flow as JSON lines: every record as a
// "pkt" time/sequence sample, and after each stall's closing record a
// "stall" line with the verdict and (when available) the full
// evidence. Lines appear in capture order, so a reader can replay the
// flow and the verdicts in one pass.
func WriteTraceJSONL(w io.Writer, f *trace.Flow, a *core.FlowAnalysis, rec *flight.Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	stallAt := make(map[int][]*core.Stall, len(a.Stalls))
	for i := range a.Stalls {
		st := &a.Stalls[i]
		stallAt[st.EndRecIdx] = append(stallAt[st.EndRecIdx], st)
	}
	for i := range f.Records {
		r := &f.Records[i]
		if err := enc.Encode(PktLine{
			Type: "pkt", Flow: a.FlowID, Idx: i, TS: r.T.Seconds(),
			Dir: r.Dir.String(), Seq: r.Seg.Seq, Ack: r.Seg.Ack, Len: r.Seg.Len,
			Wnd: r.Seg.Wnd, Flag: r.Seg.Flags.String(), Sack: r.Seg.SACK.Len(),
		}); err != nil {
			return err
		}
		for _, st := range stallAt[i] {
			line := StallLine{
				Type: "stall", Flow: a.FlowID, ID: st.ID,
				StartS: st.Start.Seconds(), EndS: st.End.Seconds(),
				Cause: st.Cause.String(),
			}
			if st.Cause == core.CauseTimeoutRetrans {
				line.SubCause = st.RetransCause.String()
			}
			if st.Evidence != nil {
				if ev := rec.Evidence(st.Evidence.Stall); ev != nil {
					j := ev.JSON()
					line.Evidence = &j
				}
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
