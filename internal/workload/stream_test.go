package workload

import (
	"context"
	"sync"
	"testing"

	"tcpstall/internal/trace"
)

// TestStreamMatchesGenerate pins the live streamer to the batch
// generator: same service, same seed, record-for-record identical
// flows — only the delivery changes.
func TestStreamMatchesGenerate(t *testing.T) {
	svc := WebSearch()
	const seed, n = 42, 6

	var mu sync.Mutex
	got := map[string][]trace.Record{}
	emitted := Stream(context.Background(), svc, seed, StreamOptions{Flows: n}, func(ev trace.RecordEvent) {
		mu.Lock()
		got[ev.FlowID] = append(got[ev.FlowID], ev.Rec)
		mu.Unlock()
		if ev.Service != svc.Name {
			t.Errorf("event service = %q, want %q", ev.Service, svc.Name)
		}
	})

	want := Generate(svc, seed, GenOptions{Flows: n})
	if len(got) != n {
		t.Fatalf("streamed %d flows, want %d", len(got), n)
	}
	var total uint64
	for _, fr := range want {
		f := fr.Flow
		recs, ok := got[f.ID]
		if !ok {
			t.Fatalf("flow %s missing from stream", f.ID)
		}
		total += uint64(len(recs))
		if len(recs) != len(f.Records) {
			t.Fatalf("flow %s: streamed %d records, generated %d", f.ID, len(recs), len(f.Records))
		}
		for i := range recs {
			a, b := recs[i], f.Records[i]
			if a.T != b.T || a.Dir != b.Dir || a.Seg.Seq != b.Seg.Seq ||
				a.Seg.Ack != b.Seg.Ack || a.Seg.Len != b.Seg.Len ||
				a.Seg.Flags != b.Seg.Flags || a.Seg.Wnd != b.Seg.Wnd ||
				a.Seg.SACK != b.Seg.SACK {
				t.Fatalf("flow %s record %d: stream %+v != generate %+v", f.ID, i, a, b)
			}
		}
	}
	if emitted != total {
		t.Errorf("Stream reported %d records, flows hold %d", emitted, total)
	}
}

// TestStreamCancel verifies a cancelled context stops the run early.
func TestStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := Stream(ctx, WebSearch(), 1, StreamOptions{Flows: 4}, func(trace.RecordEvent) {})
	if n != 0 {
		t.Errorf("cancelled stream emitted %d records", n)
	}
}
