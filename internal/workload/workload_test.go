package workload

import (
	"math"
	"testing"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/tcpsim"
)

func TestGenerateReproducible(t *testing.T) {
	a := Generate(WebSearch(), 7, GenOptions{Flows: 20})
	b := Generate(WebSearch(), 7, GenOptions{Flows: 20})
	for i := range a {
		if a[i].Metrics.FlowLatency() != b[i].Metrics.FlowLatency() {
			t.Fatalf("flow %d latency differs", i)
		}
		if len(a[i].Flow.Records) != len(b[i].Flow.Records) {
			t.Fatalf("flow %d record count differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(WebSearch(), 1, GenOptions{Flows: 10})
	b := Generate(WebSearch(), 2, GenOptions{Flows: 10})
	same := 0
	for i := range a {
		if a[i].Metrics.FlowLatency() == b[i].Metrics.FlowLatency() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestServiceShapesMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	type expect struct {
		svc        Service
		sizeLo     float64
		sizeHi     float64
		rttLo      float64 // ms
		rttHi      float64
		lossMaxPct float64
	}
	cases := []expect{
		{CloudStorage(), 600_000, 4_000_000, 90, 235, 8},
		{SoftwareDownload(), 60_000, 300_000, 90, 235, 8},
		{WebSearch(), 7_000, 35_000, 60, 180, 6},
	}
	for _, c := range cases {
		n := 120
		res := Generate(c.svc, 42, GenOptions{Flows: n})
		var bytes, rttSum, rttN float64
		done := 0
		for _, r := range res {
			if !r.Metrics.Done {
				continue
			}
			done++
			bytes += float64(r.Metrics.BytesServed)
			a := core.Analyze(r.Flow, core.DefaultConfig())
			if v := a.AvgRTT(); v > 0 {
				rttSum += v
				rttN++
			}
		}
		if done < n*9/10 {
			t.Errorf("%s: only %d/%d flows completed", c.svc.Name, done, n)
		}
		avgSize := bytes / float64(done)
		if avgSize < c.sizeLo || avgSize > c.sizeHi {
			t.Errorf("%s: avg size %.0f outside [%v, %v]", c.svc.Name, avgSize, c.sizeLo, c.sizeHi)
		}
		avgRTT := rttSum / rttN
		if avgRTT < c.rttLo || avgRTT > c.rttHi {
			t.Errorf("%s: avg RTT %.0fms outside [%v, %v]", c.svc.Name, avgRTT, c.rttLo, c.rttHi)
		}
	}
}

func TestInitRwndMixture(t *testing.T) {
	res := Generate(SoftwareDownload(), 11, GenOptions{Flows: 150})
	small := 0
	for _, r := range res {
		if r.Flow.InitRwnd < 12*1460 {
			small++
		}
	}
	frac := float64(small) / float64(len(res))
	// Figure 6: ~18% of software-download flows below ~10 MSS.
	if math.Abs(frac-0.18) > 0.10 {
		t.Errorf("small init-rwnd fraction = %.2f, want ≈0.18", frac)
	}
}

func TestShortFlowsFinishFast(t *testing.T) {
	res := Generate(WebSearch(), 13, GenOptions{Flows: 60})
	slow := 0
	for _, r := range res {
		if !r.Metrics.Done {
			t.Fatalf("flow did not complete")
		}
		if r.Metrics.FlowLatency() > 10*time.Second {
			slow++
		}
	}
	if slow > len(res)/5 {
		t.Errorf("%d/%d web-search flows took >10s", slow, len(res))
	}
}

func TestSkipTraces(t *testing.T) {
	res := Generate(WebSearch(), 3, GenOptions{Flows: 5, SkipTraces: true})
	for _, r := range res {
		if r.Flow != nil {
			t.Fatal("trace collected despite SkipTraces")
		}
		if r.Metrics == nil {
			t.Fatal("metrics missing")
		}
	}
}

func TestServicesList(t *testing.T) {
	svcs := Services()
	if len(svcs) != 3 {
		t.Fatalf("services = %d", len(svcs))
	}
	names := map[string]bool{}
	for _, s := range svcs {
		names[s.Name] = true
	}
	for _, want := range []string{"cloud-storage", "software-download", "web-search"} {
		if !names[want] {
			t.Errorf("missing service %s", want)
		}
	}
}

func TestCloudStorageShortPopulation(t *testing.T) {
	res := Generate(CloudStorageShort(), 3, GenOptions{Flows: 100, SkipTraces: true})
	for _, r := range res {
		if r.Metrics.BytesServed >= ShortFlowLimit {
			t.Fatalf("short-flow variant produced %d bytes", r.Metrics.BytesServed)
		}
	}
}

func TestMutateHook(t *testing.T) {
	calls := 0
	Generate(WebSearch(), 4, GenOptions{
		Flows:      5,
		SkipTraces: true,
		Mutate: func(c *tcpsim.ConnConfig) {
			calls++
			if c.Sender.MSS != 1460 {
				t.Errorf("mutate sees MSS %d", c.Sender.MSS)
			}
		},
	})
	if calls != 5 {
		t.Errorf("Mutate called %d times", calls)
	}
}

func TestDeadlineOption(t *testing.T) {
	// An absurdly short deadline aborts connections.
	res := Generate(CloudStorage(), 5, GenOptions{Flows: 5, SkipTraces: true,
		Deadline: 50 * time.Millisecond})
	for _, r := range res {
		if r.Metrics.Done {
			t.Fatal("flow completed under a 50ms deadline")
		}
	}
}
