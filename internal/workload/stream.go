package workload

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// StreamOptions tune a live generation run.
type StreamOptions struct {
	// Flows is the number of connections to run (default
	// Service.DefaultFlows).
	Flows int
	// Concurrency bounds the simultaneously-running connections
	// (default 16). Each runs on its own goroutine and simulator.
	Concurrency int
	// Speed maps virtual time onto the wall clock: 1.0 replays each
	// connection in real time, 10 at 10x. <= 0 runs unpaced (as fast
	// as the simulators step) — the benchmark mode.
	Speed float64
	// Deadline caps each connection's virtual runtime (default 300s,
	// as in Generate).
	Deadline time.Duration
}

// Stream runs the service model live, emitting every packet record as
// its connection produces it — the same flows, bit-for-bit, that
// Generate(svc, seed, …) would collect, but delivered as a stream of
// trace.RecordEvents for the live monitor instead of accumulated
// flows. Connections are paced against the wall clock by
// opt.Speed via sim.Simulator.NextAt.
//
// emit is called from up to opt.Concurrency goroutines, one per
// connection, so it must be safe for concurrent use; events within
// one flow always arrive in order from a single goroutine. Stream
// returns when every connection has finished or ctx is cancelled, and
// reports how many records were emitted.
func Stream(ctx context.Context, svc Service, seed int64, opt StreamOptions, emit func(trace.RecordEvent)) uint64 {
	n := opt.Flows
	if n <= 0 {
		n = svc.DefaultFlows
	}
	conc := opt.Concurrency
	if conc <= 0 {
		conc = 16
	}
	if conc > n {
		conc = n
	}
	// Sub-seeds are drawn sequentially up front, exactly as Generate
	// does, so flow i here is flow i there.
	root := sim.NewRNG(seed)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = root.Int63()
	}

	var emitted atomic.Uint64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				emitted.Add(streamOne(ctx, svc, seeds[i], i, opt, emit))
			}
		}()
	}
	wg.Wait()
	return emitted.Load()
}

// eventSink forwards each packet straight off the simulated wire.
type eventSink struct {
	flowID  string
	service string
	mss     int
	emit    func(trace.RecordEvent)
	count   uint64
}

func (es *eventSink) Record(t sim.Time, dir tcpsim.Dir, seg tcpsim.Segment) {
	ev := trace.RecordEvent{
		FlowID:  es.flowID,
		Service: es.service,
		MSS:     es.mss,
		Rec:     trace.Record{T: t, Dir: dir, Seg: seg},
	}
	// The client's SYN carries its initial advertised window, the
	// fact the zero-window classifier anchors on.
	if dir == tcpsim.DirIn && seg.Flags.Has(packet.FlagSYN) {
		ev.InitRwnd = seg.Wnd
	}
	es.count++
	es.emit(ev)
}

// streamOne runs one connection, pacing its event loop against the
// wall clock.
func streamOne(ctx context.Context, svc Service, seed int64, idx int, opt StreamOptions, emit func(trace.RecordEvent)) uint64 {
	es := &eventSink{
		flowID:  fmt.Sprintf("%s-%05d", svc.Name, idx),
		service: svc.Name,
		mss:     svc.MSS,
		emit:    emit,
	}
	bc := buildConn(svc, seed, GenOptions{Deadline: opt.Deadline}, es)
	done := false
	bc.conn.OnDone = func(*tcpsim.ConnMetrics) { done = true }
	bc.conn.Start()

	// The wall-clock reads below are the point of this function: it
	// replays virtual-time events at real-time speed for the live
	// monitor demo. Flow contents stay seed-deterministic; only the
	// pacing (opt.Speed > 0, off in every test) touches the clock.
	//lint:allow detclock real-time pacing of the live event stream
	wallStart := time.Now()
	for !done && ctx.Err() == nil {
		at, ok := bc.s.NextAt()
		if !ok || at > sim.Time(bc.deadline) {
			break
		}
		if opt.Speed > 0 {
			target := wallStart.Add(time.Duration(float64(at) / opt.Speed))
			//lint:allow detclock real-time pacing of the live event stream
			if d := time.Until(target); d > 0 {
				select {
				//lint:allow detclock real-time pacing of the live event stream
				case <-time.After(d):
				case <-ctx.Done():
					return es.count
				}
			}
		}
		bc.s.Step()
	}
	return es.count
}
