// Package workload models the three Qihoo 360 services the paper
// measured — cloud storage, software download and web search — as
// distributions over flow sizes, request patterns, path
// characteristics (RTT, jitter, bursty loss, bottleneck queues) and
// client behaviours (initial receive window, delayed-ACK timer,
// application read rate). Each model is calibrated against Table 1
// and the client pathologies of Sections 3–4 (Figure 6 init-rwnd
// mixture, 500ms delayed ACKs, slow readers).
package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tcpstall/internal/groundtruth"
	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// WeightedInt is a value with a selection weight.
type WeightedInt struct {
	Value  int
	Weight float64
}

// WeightedDur is a duration with a selection weight.
type WeightedDur struct {
	Value  time.Duration
	Weight float64
}

func pickInt(rng *sim.RNG, choices []WeightedInt) int {
	w := make([]float64, len(choices))
	for i, c := range choices {
		w[i] = c.Weight
	}
	return choices[rng.Choice(w)].Value
}

func pickDur(rng *sim.RNG, choices []WeightedDur) time.Duration {
	w := make([]float64, len(choices))
	for i, c := range choices {
		w[i] = c.Weight
	}
	return choices[rng.Choice(w)].Value
}

// Service is a generative model of one front-end service.
type Service struct {
	// Name labels flows ("cloud-storage", "software-download",
	// "web-search").
	Name string

	// DefaultFlows is the dataset size the experiments use, scaled
	// down from the paper's 2.2M/0.9M/3.3M in the same proportions.
	DefaultFlows int

	// Request/response model.
	RequestsMin, RequestsMax int     // files per connection
	RespSizeMean             float64 // bytes, log-normal mean
	RespSizeSigma            float64
	RespSizeMin, RespSizeMax int64
	IdleMean                 time.Duration // think time between requests (long tail)
	// IdleLongProb is the fraction of think times drawn from the
	// long-tail IdleMean; the rest are short (sub-threshold).
	IdleLongProb  float64
	HeadDelayProb float64 // P(back-end fetch delay)
	HeadDelayMean time.Duration
	PauseProb     float64 // P(mid-response server stall)
	PauseMean     time.Duration

	// Path model.
	RTTMean    time.Duration // log-normal per-flow base RTT
	RTTSigma   float64
	RTTMin     time.Duration
	JitterFrac float64 // per-packet jitter as a fraction of RTT
	// WirelessProb flows ride an access link with heavy-tailed
	// exponential jitter (mean WirelessJitterRTT × one-way delay per
	// direction), inflating RTTVAR and the RTO far above the RTT.
	WirelessProb      float64
	WirelessJitterRTT float64
	// ReorderProb/ReorderExtraRTT model occasional heavy per-packet
	// delay (as a multiple of the one-way delay) — the source of the
	// paper's numerous short packet-delay stalls.
	ReorderProb     float64
	ReorderExtraRTT float64
	// Delay spikes on the ACK path (mean interval / extra-delay as a
	// multiple of the flow RTT / duration): RTT-variation episodes.
	SpikeEvery    time.Duration
	SpikeExtraRTT float64
	SpikeDur      time.Duration
	// Loss bursts on the data path (outage episodes at the
	// bottleneck): mean interval / duration / in-burst drop rate.
	BurstEvery  time.Duration
	BurstDur    time.Duration
	BurstLossP  float64
	LossGB      float64 // Gilbert-Elliott P(good→bad), scales loss rate
	LossBG      float64
	LossBad     float64
	AckLossProb float64 // uplink Bernoulli ACK loss
	// Bandwidth bounds the downlink (bytes/s, log-normal);
	// QueueLimit the bottleneck buffer in packets.
	BandwidthMean  float64
	BandwidthSigma float64
	QueueLimit     int

	// Client model.
	InitRwndMSS []WeightedInt // Figure 6 mixture (in MSS)
	BufAutoTune bool          // modern clients grow the buffer
	DelAck      []WeightedDur
	// SlowReaderProb clients drain at SlowReadFrac × bandwidth
	// (disk-bound old client software) and stall reading entirely
	// every ReadPauseEvery for ReadPauseMean (disk flushes) — the
	// behaviour behind zero-window stalls.
	SlowReaderProb float64
	SlowReadFrac   float64
	ReadPauseEvery time.Duration
	ReadPauseMean  time.Duration

	// MSS for all flows.
	MSS int
}

// CloudStorage returns the cloud-storage model: large multi-file
// transfers over shared connections (1.7MB average), 143ms RTT, ~4%
// bursty loss, mostly modern clients.
func CloudStorage() Service {
	return Service{
		Name:          "cloud-storage",
		DefaultFlows:  1100,
		RequestsMin:   1,
		RequestsMax:   4,
		RespSizeMean:  850_000,
		RespSizeSigma: 1.1,
		RespSizeMin:   8_000,
		RespSizeMax:   20_000_000,
		IdleMean:      2500 * time.Millisecond,
		IdleLongProb:  0.10,
		HeadDelayProb: 0.55,
		HeadDelayMean: 450 * time.Millisecond,
		PauseProb:     0.10,
		PauseMean:     450 * time.Millisecond,

		RTTMean:           118 * time.Millisecond,
		RTTSigma:          0.45,
		RTTMin:            15 * time.Millisecond,
		JitterFrac:        0.20,
		WirelessProb:      0.45,
		WirelessJitterRTT: 1.1,
		ReorderProb:       0.01,
		ReorderExtraRTT:   1.5,
		SpikeEvery:        1500 * time.Millisecond,
		SpikeExtraRTT:     1.2,
		SpikeDur:          200 * time.Millisecond,
		BurstEvery:        9 * time.Second,
		BurstDur:          300 * time.Millisecond,
		BurstLossP:        0.7,
		LossGB:            0.0065,
		LossBG:            0.40,
		LossBad:           0.55,
		AckLossProb:       0.01,
		BandwidthMean:     700_000,
		BandwidthSigma:    0.8,
		QueueLimit:        70,

		InitRwndMSS: []WeightedInt{
			{45, 0.12}, {182, 0.30}, {648, 0.33}, {1297, 0.25},
		},
		BufAutoTune: true,
		DelAck: []WeightedDur{
			{40 * time.Millisecond, 0.85}, {200 * time.Millisecond, 0.15},
		},
		SlowReaderProb: 0.15,
		SlowReadFrac:   0.35,
		ReadPauseEvery: 1500 * time.Millisecond,
		ReadPauseMean:  1200 * time.Millisecond,
		MSS:            1460,
	}
}

// CloudStorageShort narrows the cloud-storage model to its
// short-flow population (control flows and small-file retrievals
// under 200KB) — the subset Table 8 evaluates latency on. Sampling it
// directly gives the A/B comparison statistical weight that filtering
// the full mix cannot.
func CloudStorageShort() Service {
	svc := CloudStorage()
	svc.Name = "cloud-storage"
	svc.RequestsMin, svc.RequestsMax = 1, 1
	svc.RespSizeMean = 28_000
	svc.RespSizeSigma = 0.9
	svc.RespSizeMin = 2_000
	svc.RespSizeMax = ShortFlowLimit - 10_000
	// Control flows cross the same ~4%-loss paths the paper measured
	// (Table 1); without long-flow self-congestion, the random
	// component must carry that rate itself.
	svc.LossGB = 0.022
	svc.BurstEvery = 5 * time.Second
	return svc
}

// SoftwareDownload returns the software-download model: single-file
// 129KB-average transfers, old client software with tiny initial
// windows, slow disk-bound readers and long delayed-ACK timers.
func SoftwareDownload() Service {
	return Service{
		Name:          "software-download",
		DefaultFlows:  450,
		RequestsMin:   1,
		RequestsMax:   1,
		RespSizeMean:  129_000,
		RespSizeSigma: 1.0,
		RespSizeMin:   4_000,
		RespSizeMax:   4_000_000,
		HeadDelayProb: 0.30,
		HeadDelayMean: 350 * time.Millisecond,
		PauseProb:     0.45,
		PauseMean:     800 * time.Millisecond,

		RTTMean:           120 * time.Millisecond,
		RTTSigma:          0.45,
		RTTMin:            15 * time.Millisecond,
		JitterFrac:        0.20,
		WirelessProb:      0.45,
		WirelessJitterRTT: 1.1,
		ReorderProb:       0.01,
		ReorderExtraRTT:   1.5,
		SpikeEvery:        1600 * time.Millisecond,
		SpikeExtraRTT:     1.2,
		SpikeDur:          200 * time.Millisecond,
		BurstEvery:        4 * time.Second,
		BurstDur:          350 * time.Millisecond,
		BurstLossP:        0.6,
		LossGB:            0.005,
		LossBG:            0.40,
		LossBad:           0.55,
		AckLossProb:       0.02,
		BandwidthMean:     550_000,
		BandwidthSigma:    0.8,
		QueueLimit:        60,

		// Figure 6: 18% below 10 MSS, some at 2 MSS (4096 bytes).
		InitRwndMSS: []WeightedInt{
			{2, 0.04}, {5, 0.05}, {11, 0.09},
			{45, 0.27}, {182, 0.35}, {648, 0.20},
		},
		BufAutoTune: false,
		DelAck: []WeightedDur{
			{40 * time.Millisecond, 0.67},
			{200 * time.Millisecond, 0.30},
			{500 * time.Millisecond, 0.03},
		},
		SlowReaderProb: 0.40,
		SlowReadFrac:   0.35,
		ReadPauseEvery: 800 * time.Millisecond,
		ReadPauseMean:  600 * time.Millisecond,
		MSS:            1460,
	}
}

// WebSearch returns the web-search model: interactive short flows
// (14KB average, some single-packet), dynamic content fetched from
// back-end servers, modern browsers.
func WebSearch() Service {
	return Service{
		Name:          "web-search",
		DefaultFlows:  1650,
		RequestsMin:   1,
		RequestsMax:   1,
		RespSizeMean:  14_000,
		RespSizeSigma: 1.2,
		RespSizeMin:   400,
		RespSizeMax:   250_000,
		HeadDelayProb: 0.85,
		HeadDelayMean: 120 * time.Millisecond,

		RTTMean:           95 * time.Millisecond,
		RTTSigma:          0.45,
		RTTMin:            10 * time.Millisecond,
		JitterFrac:        0.20,
		WirelessProb:      0.45,
		WirelessJitterRTT: 1.1,
		ReorderProb:       0.01,
		ReorderExtraRTT:   1.5,
		SpikeEvery:        3500 * time.Millisecond,
		SpikeExtraRTT:     1.2,
		SpikeDur:          150 * time.Millisecond,
		BurstEvery:        2200 * time.Millisecond,
		BurstDur:          500 * time.Millisecond,
		BurstLossP:        0.17,
		LossGB:            0.0005,
		LossBG:            0.15,
		LossBad:           0.55,
		AckLossProb:       0.01,
		BandwidthMean:     900_000,
		BandwidthSigma:    0.7,
		QueueLimit:        50,

		InitRwndMSS: []WeightedInt{
			{45, 0.12}, {182, 0.33}, {364, 0.30}, {1297, 0.25},
		},
		BufAutoTune: true,
		DelAck: []WeightedDur{
			{40 * time.Millisecond, 0.60}, {200 * time.Millisecond, 0.40},
		},
		MSS: 1460,
	}
}

// Services returns the three paper services in presentation order.
func Services() []Service {
	return []Service{CloudStorage(), SoftwareDownload(), WebSearch()}
}

// Healthy derives a pathology-free variant of a service: single
// request per connection (no think-time silences), a clean low-jitter
// path with no loss, reordering, delay spikes or wireless access
// jitter, fast delayed ACKs only, and no slow readers. The RTT floor
// is raised to 60ms so the 40ms delayed ACK sits well under the
// analyzer's min(τ·SRTT, RTO) stall threshold — flows from this model
// neither stall nor look like they might, which makes it the healthy
// bulk of the triage benchmark's traffic mix.
func Healthy(base Service) Service {
	s := base
	s.Name = base.Name + "-healthy"
	s.RequestsMin, s.RequestsMax = 1, 1
	s.IdleMean, s.IdleLongProb = 0, 0
	s.HeadDelayProb, s.HeadDelayMean = 0, 0
	s.PauseProb, s.PauseMean = 0, 0
	if s.RTTMin < 60*time.Millisecond {
		s.RTTMin = 60 * time.Millisecond
	}
	if s.RTTMean < s.RTTMin {
		s.RTTMean = s.RTTMin
	}
	s.JitterFrac = 0.05
	s.WirelessProb, s.WirelessJitterRTT = 0, 0
	s.ReorderProb, s.ReorderExtraRTT = 0, 0
	s.SpikeEvery, s.SpikeExtraRTT, s.SpikeDur = 0, 0, 0
	s.BurstEvery, s.BurstDur, s.BurstLossP = 0, 0, 0
	s.LossGB, s.LossBG, s.LossBad = 0, 0, 0
	s.AckLossProb = 0
	// A fast, lightly-loaded bottleneck with ample buffering: no
	// congestion drops, no bufferbloat-driven ACK silences.
	s.BandwidthMean = 8_000_000
	s.BandwidthSigma = 0.2
	s.QueueLimit = 4096
	s.DelAck = []WeightedDur{{40 * time.Millisecond, 1}}
	s.SlowReaderProb, s.SlowReadFrac = 0, 0
	s.ReadPauseEvery, s.ReadPauseMean = 0, 0
	return s
}

// FlowResult couples a generated flow's trace with its simulator
// ground truth.
type FlowResult struct {
	Flow    *trace.Flow
	Metrics *tcpsim.ConnMetrics
	// Truth is the privileged event log for differential validation;
	// nil unless GenOptions.WithTruth was set.
	Truth *groundtruth.FlowTruth
}

// ShortFlowLimit is the paper's short/large flow boundary (200KB).
const ShortFlowLimit = 200_000

// GenOptions tune a generation run.
type GenOptions struct {
	// Flows overrides Service.DefaultFlows when positive.
	Flows int
	// NewRecovery, when set, installs a fresh loss-recovery strategy
	// on every connection (native behaviour otherwise).
	NewRecovery func() tcpsim.Recovery
	// Collect disables trace collection when false-like needed; by
	// default traces are collected.
	SkipTraces bool
	// Deadline caps each connection's virtual runtime (default
	// 300s).
	Deadline time.Duration
	// Mutate, when set, adjusts each connection's configuration
	// after the service model has filled it (ablation hooks). It may
	// be called from several goroutines at once; closures must be
	// safe for concurrent use (NewRecovery likewise).
	Mutate func(*tcpsim.ConnConfig)
	// Workers bounds the simulation pool; <= 0 means
	// runtime.GOMAXPROCS(0), 1 forces a sequential run.
	Workers int
	// WithTruth records each flow's ground-truth events (RTO firings,
	// retransmissions, zero-window episodes, app writes, request
	// arrivals, netem drops) into FlowResult.Truth.
	WithTruth bool
}

// Generate runs n independent connections of the service and returns
// their flows and metrics. The same seed reproduces the same dataset
// bit-for-bit, and — because every flow derives its randomness from
// its own sub-seed — two runs with different recovery strategies see
// identical workloads and paths (the paper's A/B setup).
//
// Connections simulate concurrently on opt.Workers goroutines. Every
// flow's sub-seed is drawn sequentially up front and its result lands
// at its own index, so the output is identical for every worker
// count, including the sequential run.
func Generate(svc Service, seed int64, opt GenOptions) []FlowResult {
	n := opt.Flows
	if n <= 0 {
		n = svc.DefaultFlows
	}
	root := sim.NewRNG(seed)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = root.Int63()
	}
	results := make([]FlowResult, n)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i] = genOne(svc, seeds[i], i, opt)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = genOne(svc, seeds[i], i, opt)
			}
		}()
	}
	wg.Wait()
	return results
}

// builtConn is one fully-wired connection ready to run on its own
// simulator instance.
type builtConn struct {
	s        *sim.Simulator
	conn     *tcpsim.Conn
	rec      *groundtruth.Recorder
	deadline time.Duration
}

// buildConn wires one connection — path, receiver, application
// exchange — from a service model and sub-seed. Extracted from genOne
// so the batch generator and the live streamer (Stream) share one
// construction path; the RNG draw order in here is frozen by the
// golden traces.
func buildConn(svc Service, seed int64, opt GenOptions, sink tcpsim.TraceSink) builtConn {
	s := sim.New()
	rng := sim.NewRNG(seed)

	// Path parameters.
	rtt := time.Duration(rng.LogNormalMean(float64(svc.RTTMean), svc.RTTSigma))
	if rtt < svc.RTTMin {
		rtt = svc.RTTMin
	}
	oneWay := rtt / 2
	jitter := time.Duration(svc.JitterFrac * float64(oneWay))
	bw := int64(rng.LogNormalMean(svc.BandwidthMean, svc.BandwidthSigma))
	if bw < 64_000 {
		bw = 64_000
	}
	downLoss := &netem.GilbertElliott{
		PGoodToBad: svc.LossGB * rng.Uniform(0.5, 1.5),
		PBadToGood: svc.LossBG,
		LossBad:    svc.LossBad,
	}
	var jitterExp time.Duration
	if svc.WirelessProb > 0 && rng.Bool(svc.WirelessProb) {
		// Scale the base delay down so the measured RTT (base +
		// mean exponential jitter) stays calibrated to Table 1.
		oneWay = time.Duration(float64(oneWay) / (1 + svc.WirelessJitterRTT))
		jitterExp = time.Duration(svc.WirelessJitterRTT * float64(oneWay))
	}
	down := netem.New(s, rng, netem.Config{
		Delay:        oneWay,
		Jitter:       jitter,
		JitterExp:    jitterExp,
		Loss:         downLoss,
		Bandwidth:    bw,
		QueueLimit:   svc.QueueLimit,
		ReorderProb:  svc.ReorderProb,
		ReorderExtra: time.Duration(svc.ReorderExtraRTT * float64(oneWay)),
		BurstEvery:   svc.BurstEvery,
		BurstDur:     svc.BurstDur,
		BurstLossP:   svc.BurstLossP,
		FIFOEnforce:  true,
	})
	up := netem.New(s, rng, netem.Config{
		Delay:        oneWay,
		Jitter:       jitter / 2,
		JitterExp:    jitterExp,
		Loss:         netem.Bernoulli{P: svc.AckLossProb},
		ReorderProb:  svc.ReorderProb,
		ReorderExtra: time.Duration(svc.ReorderExtraRTT * float64(oneWay)),
		SpikeEvery:   svc.SpikeEvery,
		SpikeExtra:   time.Duration(svc.SpikeExtraRTT * float64(rtt)),
		SpikeDur:     svc.SpikeDur,
		FIFOEnforce:  true,
	})

	// Client parameters.
	initRwnd := pickInt(rng, svc.InitRwndMSS) * svc.MSS
	rcv := tcpsim.ReceiverConfig{
		MSS:          svc.MSS,
		InitRwnd:     initRwnd,
		DelAckDelay:  pickDur(rng, svc.DelAck),
		AckEvery:     2,
		SACK:         true,
		ReadInterval: 10 * time.Millisecond,
	}
	if svc.BufAutoTune {
		buf := initRwnd * 4
		if buf > 262_144 {
			buf = 262_144
		}
		if buf < initRwnd {
			buf = initRwnd
		}
		rcv.BufSize = buf
	} else {
		rcv.BufSize = initRwnd
	}
	if svc.SlowReaderProb > 0 && rng.Bool(svc.SlowReaderProb) {
		rcv.ReadRate = int64(svc.SlowReadFrac * float64(bw))
		if rcv.ReadRate < 20_000 {
			rcv.ReadRate = 20_000
		}
		// Periodic read stalls (disk flushes) over the first minute:
		// the source of zero-window episodes.
		if svc.ReadPauseEvery > 0 {
			at := time.Duration(rng.Exponential(float64(svc.ReadPauseEvery)))
			for at < time.Minute {
				rcv.ReadPauses = append(rcv.ReadPauses, tcpsim.ReadPause{
					At:  at,
					Dur: time.Duration(rng.Exponential(float64(svc.ReadPauseMean))),
				})
				at += time.Duration(rng.Exponential(float64(svc.ReadPauseEvery)))
			}
		}
	}

	// Application exchange.
	nReq := svc.RequestsMin
	if svc.RequestsMax > svc.RequestsMin {
		nReq += rng.Intn(svc.RequestsMax - svc.RequestsMin + 1)
	}
	reqs := make([]tcpsim.Request, 0, nReq)
	for r := 0; r < nReq; r++ {
		size := int64(rng.LogNormalMean(svc.RespSizeMean, svc.RespSizeSigma))
		if size < svc.RespSizeMin {
			size = svc.RespSizeMin
		}
		if size > svc.RespSizeMax {
			size = svc.RespSizeMax
		}
		req := tcpsim.Request{Size: size}
		if r > 0 && svc.IdleMean > 0 {
			if rng.Bool(svc.IdleLongProb) {
				req.IdleBefore = time.Duration(rng.Exponential(float64(svc.IdleMean)))
			} else {
				req.IdleBefore = time.Duration(rng.Uniform(0, 250)) * time.Millisecond
			}
		}
		if rng.Bool(svc.HeadDelayProb) {
			req.HeadDelay = time.Duration(rng.Exponential(float64(svc.HeadDelayMean)))
		}
		if svc.PauseProb > 0 && rng.Bool(svc.PauseProb) {
			at := int64(rng.Uniform(0.2, 0.8) * float64(size))
			req.Pauses = []tcpsim.AppPause{{
				AfterBytes: at,
				Duration:   time.Duration(rng.Exponential(float64(svc.PauseMean))),
			}}
		}
		reqs = append(reqs, req)
	}

	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: rcv,
		Requests: reqs,
	}
	cfg.Sender.MSS = svc.MSS
	if opt.Deadline > 0 {
		cfg.Deadline = opt.Deadline
	}
	// Random ISNs, as real stacks use. Forked LAST, after every other
	// setup draw (the netem paths fork their own RNGs above), so the
	// flow's dynamics are bit-identical to the ISN-0 era — only the
	// wire sequence numbers are offset.
	cfg.ISNRng = rng.Fork()
	var rec *groundtruth.Recorder
	if opt.WithTruth {
		rec = groundtruth.NewRecorder(s)
		cfg.Truth = rec
		down.OnDrop = rec.Drop
		up.OnDrop = rec.Drop
	}
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}

	conn := tcpsim.NewLinkedConn(s, cfg, down, up, sink)
	if opt.NewRecovery != nil {
		conn.Sender().SetRecovery(opt.NewRecovery())
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = 300 * time.Second
	}
	return builtConn{s: s, conn: conn, rec: rec, deadline: deadline}
}

// genOne simulates one connection on its own simulator instance.
func genOne(svc Service, seed int64, idx int, opt GenOptions) FlowResult {
	var sink tcpsim.TraceSink
	var col *trace.Collector
	if !opt.SkipTraces {
		col = trace.NewCollector(fmt.Sprintf("%s-%05d", svc.Name, idx), svc.Name)
		col.Flow.MSS = svc.MSS
		sink = col
	}
	bc := buildConn(svc, seed, opt, sink)
	s, conn := bc.s, bc.conn
	done := false
	conn.OnDone = func(*tcpsim.ConnMetrics) { done = true }
	conn.Start()
	// Spike processes self-perpetuate, so step the clock in slices
	// until the connection finishes (or hits its own deadline).
	for !done && s.Now() <= sim.Time(bc.deadline) {
		s.RunFor(time.Second)
	}

	res := FlowResult{Metrics: conn.Metrics()}
	if bc.rec != nil {
		res.Truth = bc.rec.Truth()
	}
	if col != nil {
		col.Flow.Done = conn.Metrics().Done
		col.Flow.Latency = conn.Metrics().FlowLatency()
		res.Flow = col.Flow
	}
	return res
}
