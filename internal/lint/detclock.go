package lint

import (
	"go/ast"
	"go/types"
)

// Detclock enforces the deterministic-run contract of the simulator
// and analysis packages: one seed, one output, on any machine at any
// time of day. In those packages it forbids
//
//   - wall-clock reads and timers (time.Now, Since, Until, After,
//     Tick, Sleep, AfterFunc, NewTimer, NewTicker) — virtual time
//     comes from internal/sim;
//   - the global math/rand (and math/rand/v2) state — randomness must
//     flow through a seeded sim.RNG (rand.New over an explicit
//     source is fine);
//   - output emitted directly inside a range over a map, whose
//     iteration order is deliberately randomized by the runtime.
//
// The daemon and CLI edges (cmd/*, internal/live, internal/explain,
// …) legitimately touch the wall clock and are out of scope; inside a
// deterministic package a justified escape hatch is
// `//lint:allow detclock <reason>`.
var Detclock = &Analyzer{
	Name: "detclock",
	Doc:  "forbids wall-clock, global math/rand and map-order output in deterministic packages",
	Run:  runDetclock,
}

// detPackages are the module packages under the deterministic
// contract (subpackages included).
var detPackages = []string{
	"internal/sim",
	"internal/tcpsim",
	"internal/netem",
	"internal/workload",
	"internal/core",
	"internal/groundtruth",
	// The triage fast path sits on the line-rate record path but is
	// pure record-time logic: its promotion decisions must replay
	// bit-identically from a trace, so it is bound like the analyzer
	// even though its caller (internal/live) is not.
	"internal/triage",
}

// InDeterministicPackage reports whether pkgPath is bound by the
// detclock contract.
func InDeterministicPackage(pkgPath string) bool {
	for _, p := range detPackages {
		if pkgIs(pkgPath, modulePkg(p)) {
			return true
		}
	}
	return false
}

// forbiddenFuncs maps package path → function names that read or
// schedule against ambient nondeterministic state.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now": "", "Since": "", "Until": "", "After": "", "Tick": "",
		"Sleep": "", "AfterFunc": "", "NewTimer": "", "NewTicker": "",
	},
	"math/rand": {
		"Seed": "", "Int": "", "Intn": "", "Int31": "", "Int31n": "",
		"Int63": "", "Int63n": "", "Uint32": "", "Uint64": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "",
		"Int64N": "", "Uint": "", "UintN": "", "Uint32": "", "Uint32N": "",
		"Uint64": "", "Uint64N": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "N": "",
	},
}

func runDetclock(pass *Pass) error {
	if !InDeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			// Any reference — call or stored function value — to a
			// forbidden package function leaks ambient state.
			obj, ok := pass.Info.Uses[x.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods (e.g. a seeded *rand.Rand) draw from
				// explicit state, not the ambient globals.
				return true
			}
			if names, ok := forbiddenFuncs[obj.Pkg().Path()]; ok {
				if _, bad := names[obj.Name()]; bad {
					pass.Reportf(x.Pos(),
						"%s.%s breaks the deterministic-run contract; use the injected sim clock/RNG",
						obj.Pkg().Name(), obj.Name())
				}
			}
		case *ast.RangeStmt:
			checkMapOrderOutput(pass, x)
		}
		return true
	})
	return nil
}

// checkMapOrderOutput flags output emitted directly inside a range
// over a map: the runtime randomizes iteration order, so anything
// printed or written in the loop body differs run to run. The
// sanctioned shape — collect keys, sort, then emit — does not write
// inside the range body and is not flagged.
func checkMapOrderOutput(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObjOf(pass.Info, call)
		if f == nil {
			return true
		}
		if isOutputFunc(f) {
			pass.Reportf(call.Pos(),
				"output inside a range over a map follows randomized iteration order; collect and sort keys first")
		}
		return true
	})
}

// isOutputFunc recognizes the fmt print family and Write/WriteString
// style sinks.
func isOutputFunc(f *types.Func) bool {
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		switch f.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch f.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
