package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, lint.Lockcheck, "testdata/lockcheck/l", "tcpstall/internal/live/l")
}
