package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

// TestLockorder seeds the fleet-shaped deadlock: two mutex-owning
// types reaching into each other under their own locks (one cycle
// report at its first edge), a self-reacquisition through a helper,
// and the clean one-way/released/*Locked shapes as guards.
func TestLockorder(t *testing.T) {
	linttest.Run(t, lint.Lockorder, "testdata/lockorder/lo", "tcpstall/internal/fleet/lo")
}
