package lint

import (
	"go/ast"
	"reflect"
	"regexp"
	"strconv"
	"strings"
)

// Jsontags keeps the serialized surfaces consistent. Any struct that
// opts into JSON serialization (at least one field carries a json
// tag) must carry the complete contract:
//
//   - every exported, non-embedded field is tagged (or explicitly
//     excluded with `json:"-"`) — an untagged field silently leaks a
//     Go-cased name onto the wire;
//   - tag names are snake_case (lowercase letters, digits,
//     underscores, starting with a letter);
//   - no two fields share a name;
//   - unexported fields carry no json tag (encoding/json ignores
//     them, so the tag is a lie).
//
// Structs with no json tags at all are not serialized types and are
// left alone.
var Jsontags = &Analyzer{
	Name: "jsontags",
	Doc:  "serialized structs carry complete, snake_case, duplicate-free json tags",
	Run:  runJsontags,
}

var snakeRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runJsontags(pass *Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		checkStructTags(pass, st)
		return true
	})
	return nil
}

func jsonTagOf(field *ast.Field) (val string, ok bool) {
	if field.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(raw).Lookup("json")
}

func checkStructTags(pass *Pass, st *ast.StructType) {
	tagged := 0
	for _, f := range st.Fields.List {
		if _, ok := jsonTagOf(f); ok {
			tagged++
		}
	}
	if tagged == 0 {
		return
	}
	seen := map[string]string{}
	for _, f := range st.Fields.List {
		val, hasTag := jsonTagOf(f)
		if len(f.Names) == 0 {
			// Embedded fields inline their own (already checked) tags.
			continue
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				if hasTag && val != "-" {
					pass.Reportf(name.Pos(),
						"json tag on unexported field %s has no effect; encoding/json skips it", name.Name)
				}
				continue
			}
			if !hasTag {
				pass.Reportf(name.Pos(),
					"exported field %s of a serialized struct lacks a json tag; the Go name would leak onto the wire", name.Name)
				continue
			}
			tagName, _, _ := strings.Cut(val, ",")
			switch {
			case tagName == "-" && val == "-":
				continue
			case tagName == "":
				pass.Reportf(name.Pos(),
					"json tag on %s names no key, so the Go field name leaks onto the wire; name it explicitly", name.Name)
				continue
			case !snakeRe.MatchString(tagName):
				pass.Reportf(name.Pos(), "json tag %q is not snake_case", tagName)
			}
			if prev, dup := seen[tagName]; dup {
				pass.Reportf(name.Pos(), "json tag %q duplicates field %s", tagName, prev)
			} else {
				seen[tagName] = name.Name
			}
		}
	}
}
