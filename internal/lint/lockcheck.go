package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockcheck verifies the repo's `// guarded by` annotations. Two
// annotation forms exist:
//
//   - `// guarded by <mu>` where <mu> names a sibling field of
//     sync.Mutex or sync.RWMutex type. Every access to the field must
//     then occur (a) after a `<base>.<mu>.Lock()` (or RLock) on the
//     same base expression earlier in the same function, (b) inside a
//     function following the *Locked suffix convention (the caller
//     holds the lock), or (c) on a freshly constructed value that is
//     not yet shared (the enclosing function built the base with a
//     composite literal or new).
//   - any other `// guarded by …` prose documents an external
//     contract (e.g. a single-owner structure guarded by its owner's
//     lock). Lockcheck then verifies the field is unexported, so the
//     contract cannot be bypassed from outside the package.
//
// The check is intra-procedural by design: a function that takes the
// named lock anywhere before the access is presumed to still hold it.
// That approximation catches the real regression class — a new code
// path touching shared state with no lock in sight — without a
// whole-program lock graph.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "verifies `// guarded by` field annotations against actual lock acquisitions",
	Run:  runLockcheck,
}

// strictGuardRe extracts the sibling-mutex form of the annotation.
var strictGuardRe = regexp.MustCompile(`(?m)guarded by ([A-Za-z_][A-Za-z0-9_]*)\.?\s*$`)

// proseGuardRe recognizes any guarded-by prose.
var proseGuardRe = regexp.MustCompile(`guarded by\s+\S`)

// guardInfo describes one annotated field.
type guardInfo struct {
	mutex string // sibling mutex field name; "" for prose/external form
	field string
}

func runLockcheck(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLocks(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards parses every struct field annotation, reporting
// malformed contracts (a strict guard naming no sibling mutex, a
// prose guard on an exported field) as it goes.
func collectGuards(pass *Pass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	pass.Preorder(func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			text := commentText(field.Doc) + "\n" + commentText(field.Comment)
			if !proseGuardRe.MatchString(text) {
				continue
			}
			m := strictGuardRe.FindStringSubmatch(text)
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if m == nil {
					// External-contract prose: encapsulation is the only
					// machine-checkable half, so demand it.
					if name.IsExported() {
						pass.Reportf(name.Pos(),
							"field %s declares an external guarded-by contract but is exported; unexport it or name a sibling mutex", name.Name)
					}
					guards[obj] = guardInfo{field: name.Name}
					continue
				}
				mu := m[1]
				if !hasSiblingMutex(st, mu) {
					pass.Reportf(name.Pos(),
						"field %s is `guarded by %s` but the struct has no sync.Mutex/RWMutex field %q", name.Name, mu, mu)
					continue
				}
				guards[obj] = guardInfo{mutex: mu, field: name.Name}
			}
		}
		return true
	})
	return guards
}

func commentText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	// Match line by line so `guarded by mu` anchors at a line end.
	var lines []string
	for _, c := range cg.List {
		lines = append(lines, strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
	}
	return strings.Join(lines, "\n")
}

// hasSiblingMutex reports whether the struct declares field mu of a
// sync mutex type.
func hasSiblingMutex(st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			return isMutexExpr(field.Type)
		}
	}
	return false
}

func isMutexExpr(e ast.Expr) bool {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && base.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// lockEvent is one mu.Lock()/RLock() call site.
type lockEvent struct {
	base  string // rendered base expression, e.g. "sh"
	mutex string // mutex field name, e.g. "mu"
	pos   token.Pos
}

// checkFuncLocks verifies every annotated-field access in one
// function against the locks that function takes.
func checkFuncLocks(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]guardInfo) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	var locks []lockEvent
	fresh := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if ev, ok := asLockCall(x); ok {
				locks = append(locks, ev)
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) || !isFreshValue(rhs) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					if obj := identObj(pass.Info, id); obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		g, annotated := guards[obj]
		if !annotated || g.mutex == "" {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if o := identObj(pass.Info, root); o != nil && fresh[o] {
				return true
			}
		}
		base := types.ExprString(sel.X)
		for _, ev := range locks {
			if ev.mutex == g.mutex && ev.base == base && ev.pos < sel.Pos() {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s.%s, which is not locked on this path (lock it, rename the func *Locked, or justify with lint:allow)",
			base, g.field, base, g.mutex)
		return true
	})
}

// asLockCall matches `<base>.<mu>.Lock()` and RLock.
func asLockCall(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return lockEvent{}, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{
		base:  types.ExprString(inner.X),
		mutex: inner.Sel.Name,
		pos:   call.Pos(),
	}, true
}

// isFreshValue recognizes right-hand sides that construct a new,
// unshared value: &T{…}, T{…}, new(T).
func isFreshValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// identObj resolves an identifier to its object, whether it is a use
// or a definition site.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
