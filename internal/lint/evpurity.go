package lint

import (
	"go/ast"
	"go/types"
)

// Evpurity enforces the flight recorder's observe-don't-steer
// contract from both sides.
//
// Analyzer side (internal/core): a run with a recorder attached must
// be branch-identical to a run without one — that is the invariant
// TestAnalyzeFlightMatchesAnalyze pins at runtime, and this analyzer
// pins statically. Inside any region that executes only when a
// recorder is attached (an `if a.rec != nil { … }` body, the tail of
// a function after `if a.rec == nil { return }`, an Enabled() guard),
// code may build evidence but must not change analyzer state:
//
//   - assignments may target only variables declared inside the
//     region or values of flight types (a Trail being filled, an
//     Evidence ref being attached);
//   - calls may reach the flight package, or same-package functions
//     that provably do not write through their receiver/parameters
//     (computed transitively over the package's static call graph);
//   - dynamic calls through stored function values, goroutine
//     launches and channel sends are flagged outright.
//
// Cross-package callees outside flight are presumed pure — the
// deliberate approximation that keeps the check intra-package.
//
// Flight side (internal/flight): observer entry points receive
// pointers into live analyzer state (records, trails). They must
// not write through any pointer/slice/map parameter — a Recorder
// mutates only itself.
//
// Triage side (internal/triage): the fast path observes every record
// the monitor will later replay into the full analyzer. Observe and
// its helpers get the same contract as flight observers — copy into
// the ring, never write through the record — or replay would feed
// the analyzer records the fast path had silently rewritten.
var Evpurity = &Analyzer{
	Name: "evpurity",
	Doc:  "flight observers must not mutate analyzer state; recorder-guarded code must not steer analysis",
	Run:  runEvpurity,
}

func runEvpurity(pass *Pass) error {
	switch {
	case pkgIs(pass.Pkg.Path(), modulePkg("internal/flight")),
		pkgIs(pass.Pkg.Path(), modulePkg("internal/triage")):
		checkObserverParams(pass)
	case pkgIs(pass.Pkg.Path(), modulePkg("internal/core")):
		checkRecorderGuards(pass)
	}
	return nil
}

// --- flight side ---

// checkObserverParams flags writes through pointer-typed parameters
// in flight functions.
func checkObserverParams(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramObjs(pass, fd, false)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if obj := writeThrough(pass, lhs); obj != nil && params[obj] {
							pass.Reportf(lhs.Pos(),
								"observer writes through its parameter %s; flight code must mutate only the recorder", obj.Name())
						}
					}
				case *ast.IncDecStmt:
					if obj := writeThrough(pass, x.X); obj != nil && params[obj] {
						pass.Reportf(x.Pos(),
							"observer writes through its parameter %s; flight code must mutate only the recorder", obj.Name())
					}
				}
				return true
			})
		}
	}
}

// paramObjs collects the reference-typed (pointer/slice/map)
// parameter objects of fd; withRecv includes the receiver.
func paramObjs(pass *Pass, fd *ast.FuncDecl, withRecv bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				switch obj.Type().Underlying().(type) {
				case *types.Pointer, *types.Slice, *types.Map:
					out[obj] = true
				}
			}
		}
	}
	add(fd.Type.Params)
	if withRecv {
		add(fd.Recv)
	}
	return out
}

// writeThrough returns the root object when lhs writes *through* a
// reference (selector, index or dereference chain); assigning to the
// bare identifier itself only rebinds a local and returns nil.
func writeThrough(pass *Pass, lhs ast.Expr) types.Object {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return nil
	}
	root := rootIdent(lhs)
	if root == nil {
		return nil
	}
	return identObj(pass.Info, root)
}

// --- core side ---

// checkRecorderGuards walks every function, locating recorder-guarded
// regions and validating the statements inside them.
func checkRecorderGuards(pass *Pass) {
	writers := packageWriters(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkGuardRegions(pass, fd.Body.List, writers)
		}
	}
}

// walkGuardRegions scans a statement list for recorder-attachment
// guards and checks each guarded region.
func walkGuardRegions(pass *Pass, stmts []ast.Stmt, writers map[*types.Func]bool) {
	for i, s := range stmts {
		ifs, ok := s.(*ast.IfStmt)
		if ok {
			switch guardKind(pass, ifs.Cond) {
			case guardAttached:
				checkGuardedRegion(pass, ifs.Body.List, writers)
				if ifs.Else != nil {
					walkGuardRegions(pass, elseStmts(ifs.Else), writers)
				}
				continue
			case guardDetached:
				walkGuardRegions(pass, ifs.Body.List, writers)
				if terminates(ifs.Body) {
					// `if rec == nil { return }`: the rest of this block
					// runs only with a recorder attached.
					checkGuardedRegion(pass, stmts[i+1:], writers)
					return
				}
				continue
			}
		}
		// Recurse into nested unguarded scopes.
		for _, body := range nestedBlocks(s) {
			walkGuardRegions(pass, body, writers)
		}
	}
}

type guard int

const (
	guardNone     guard = iota
	guardAttached       // condition true ⇒ recorder attached
	guardDetached       // condition true ⇒ recorder absent
)

// guardKind classifies a condition as a recorder-attachment test:
// `x != nil` / `x == nil` on a *flight.Recorder, or `x.Enabled()` /
// `!x.Enabled()`.
func guardKind(pass *Pass, cond ast.Expr) guard {
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		var other ast.Expr
		if isNilIdent(pass, x.X) {
			other = x.Y
		} else if isNilIdent(pass, x.Y) {
			other = x.X
		} else {
			return guardNone
		}
		t := pass.Info.TypeOf(other)
		if !isRecorderPtr(t) {
			return guardNone
		}
		switch x.Op.String() {
		case "!=":
			return guardAttached
		case "==":
			return guardDetached
		}
	case *ast.CallExpr:
		if isEnabledCall(pass, x) {
			return guardAttached
		}
	case *ast.UnaryExpr:
		if x.Op.String() == "!" {
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && isEnabledCall(pass, call) {
				return guardDetached
			}
		}
	}
	return guardNone
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

func isRecorderPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Recorder" && pkgIs(n.Obj().Pkg().Path(), modulePkg("internal/flight"))
}

func isEnabledCall(pass *Pass, call *ast.CallExpr) bool {
	f := funcObjOf(pass.Info, call)
	if f == nil || f.Name() != "Enabled" || f.Pkg() == nil {
		return false
	}
	return pkgIs(f.Pkg().Path(), modulePkg("internal/flight"))
}

// terminates reports whether a block always transfers control out.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// elseStmts flattens an else arm into a statement list.
func elseStmts(s ast.Stmt) []ast.Stmt {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return x.List
	default:
		return []ast.Stmt{x}
	}
}

// nestedBlocks lists the statement lists nested one level inside s.
func nestedBlocks(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch x := s.(type) {
	case *ast.BlockStmt:
		out = append(out, x.List)
	case *ast.ForStmt:
		out = append(out, x.Body.List)
	case *ast.RangeStmt:
		out = append(out, x.Body.List)
	case *ast.IfStmt:
		out = append(out, x.Body.List)
		if x.Else != nil {
			out = append(out, elseStmts(x.Else))
		}
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{x.Stmt})
	}
	return out
}

// checkGuardedRegion validates every statement of one recorder-only
// region.
func checkGuardedRegion(pass *Pass, stmts []ast.Stmt, writers map[*types.Func]bool) {
	if len(stmts) == 0 {
		return
	}
	lo, hi := stmts[0].Pos(), stmts[len(stmts)-1].End()
	inRegion := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lo && obj.Pos() < hi
	}
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					checkGuardedWrite(pass, lhs, inRegion)
				}
			case *ast.IncDecStmt:
				checkGuardedWrite(pass, x.X, inRegion)
			case *ast.SendStmt:
				pass.Reportf(x.Pos(), "channel send inside a recorder-attached region steers execution; move it outside the guard")
			case *ast.GoStmt:
				pass.Reportf(x.Pos(), "goroutine launched inside a recorder-attached region; move it outside the guard")
			case *ast.CallExpr:
				checkGuardedCall(pass, x, writers)
			}
			return true
		})
	}
}

// checkGuardedWrite validates one assignment target inside a guarded
// region: block-locals and flight-typed destinations only.
func checkGuardedWrite(pass *Pass, lhs ast.Expr, inRegion func(types.Object) bool) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := identObj(pass.Info, id)
		if inRegion(obj) || isFlightType(pass.Info.TypeOf(lhs)) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"assignment to %s inside a recorder-attached region; the nil-recorder run would diverge", id.Name)
		return
	}
	root := rootIdent(lhs)
	if root != nil {
		if obj := identObj(pass.Info, root); inRegion(obj) {
			return
		}
	}
	if isFlightType(pass.Info.TypeOf(lhs)) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"write to %s inside a recorder-attached region; the nil-recorder run would diverge", types.ExprString(lhs))
}

// checkGuardedCall validates one call inside a guarded region.
func checkGuardedCall(pass *Pass, call *ast.CallExpr, writers map[*types.Func]bool) {
	// Conversions are value-producing, not effectful.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch x := fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[x.Sel]
	default:
		// Calling a computed expression (e.g. a returned closure).
		pass.Reportf(call.Pos(), "dynamic call inside a recorder-attached region cannot be proven effect-free")
		return
	}
	switch o := obj.(type) {
	case *types.Builtin, *types.TypeName, nil:
		return
	case *types.Var:
		pass.Reportf(call.Pos(),
			"call through stored function value %s inside a recorder-attached region cannot be proven effect-free", o.Name())
	case *types.Func:
		pkg := o.Pkg()
		if pkg == nil {
			return
		}
		if pkgIs(pkg.Path(), modulePkg("internal/flight")) {
			return
		}
		if pkg.Path() == pass.Pkg.Path() && writers[o] {
			pass.Reportf(call.Pos(),
				"%s writes analyzer state and is called inside a recorder-attached region", o.Name())
		}
	}
}

// packageWriters computes, transitively over the package's static
// call graph, which functions write through their receiver or
// parameters (or package-level state). Writes to flight-typed
// destinations do not count: filling a Trail is the observer's job.
func packageWriters(pass *Pass) map[*types.Func]bool {
	type fnInfo struct {
		writes bool
		calls  []*types.Func
	}
	infos := map[*types.Func]*fnInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{}
			infos[fobj] = fi
			owned := paramObjs(pass, fd, true)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if writerTarget(pass, lhs, owned) {
							fi.writes = true
						}
					}
				case *ast.IncDecStmt:
					if writerTarget(pass, x.X, owned) {
						fi.writes = true
					}
				case *ast.CallExpr:
					if callee := funcObjOf(pass.Info, x); callee != nil &&
						callee.Pkg() != nil && callee.Pkg().Path() == pass.Pkg.Path() {
						fi.calls = append(fi.calls, callee)
					}
				}
				return true
			})
		}
	}
	// Propagate writer-ness up the call graph to a fixed point.
	changed := true
	for changed {
		changed = false
		for _, fi := range infos {
			if fi.writes {
				continue
			}
			for _, callee := range fi.calls {
				if ci, ok := infos[callee]; ok && ci.writes {
					fi.writes = true
					changed = true
					break
				}
			}
		}
	}
	out := map[*types.Func]bool{}
	for f, fi := range infos {
		out[f] = fi.writes
	}
	return out
}

// writerTarget reports whether lhs writes through a receiver/param
// reference or a package-level variable, excluding flight-typed
// destinations.
func writerTarget(pass *Pass, lhs ast.Expr, owned map[types.Object]bool) bool {
	lhs = ast.Unparen(lhs)
	if isFlightType(pass.Info.TypeOf(lhs)) {
		return false
	}
	if id, ok := lhs.(*ast.Ident); ok {
		obj := identObj(pass.Info, id)
		v, isVar := obj.(*types.Var)
		return isVar && v.Parent() == pass.Pkg.Scope()
	}
	obj := writeThrough(pass, lhs)
	if obj == nil {
		return false
	}
	if owned[obj] {
		return true
	}
	v, isVar := obj.(*types.Var)
	return isVar && v.Parent() == pass.Pkg.Scope()
}
