package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestSeqsafe(t *testing.T) {
	linttest.Run(t, lint.Seqsafe, "testdata/seqsafe/bad", "tcpstall/internal/core/seqbad")
}

func TestSeqsafeExemptsSeqspace(t *testing.T) {
	// The same raw arithmetic inside internal/seqspace is the
	// implementation, not a violation.
	linttest.Run(t, lint.Seqsafe, "testdata/seqsafe/exempt", "tcpstall/internal/seqspace/exempt")
}
