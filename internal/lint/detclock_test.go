package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestDetclock(t *testing.T) {
	linttest.Run(t, lint.Detclock, "testdata/detclock/det", "tcpstall/internal/tcpsim/det")
}

func TestDetclockTriage(t *testing.T) {
	// The triage fast path joined the deterministic set: wall-clock
	// promotion deadlines or sampled demotions must be flagged there.
	linttest.Run(t, lint.Detclock, "testdata/detclock/triage", "tcpstall/internal/triage/triage")
}

func TestDetclockSkipsDaemonEdges(t *testing.T) {
	// The daemon/CLI layers legitimately pace against the wall clock;
	// the same calls there are silent.
	linttest.Run(t, lint.Detclock, "testdata/detclock/edge", "tcpstall/cmd/tapod/edge")
}

func TestDeterministicPackageSet(t *testing.T) {
	for _, p := range []string{
		"tcpstall/internal/sim", "tcpstall/internal/tcpsim",
		"tcpstall/internal/netem", "tcpstall/internal/workload",
		"tcpstall/internal/core", "tcpstall/internal/groundtruth",
		"tcpstall/internal/triage", "tcpstall/internal/core/sub",
	} {
		if !lint.InDeterministicPackage(p) {
			t.Errorf("%s should be under the deterministic contract", p)
		}
	}
	for _, p := range []string{
		"tcpstall/internal/live", "tcpstall/internal/flight",
		"tcpstall/cmd/tapod", "tcpstall/internal/corex",
	} {
		if lint.InDeterministicPackage(p) {
			t.Errorf("%s should not be under the deterministic contract", p)
		}
	}
}
