package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestJsontags(t *testing.T) {
	linttest.Run(t, lint.Jsontags, "testdata/jsontags/j", "tcpstall/internal/live/j")
}

// TestJsontagsFleetWire covers the fleet protocol shapes: the
// seeded package mirrors internal/fleet/wire.go's structs with the
// drift modes a hand-evolved wire format grows (untagged counter,
// Go-cased tag, duplicated key, tag on an unexported field), plus
// clean protocol structs as false-positive guards.
func TestJsontagsFleetWire(t *testing.T) {
	linttest.Run(t, lint.Jsontags, "testdata/jsontags/fleetwire", "tcpstall/internal/fleet/fleetwire")
}
