package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestJsontags(t *testing.T) {
	linttest.Run(t, lint.Jsontags, "testdata/jsontags/j", "tcpstall/internal/live/j")
}

// TestJsontagsFleetWire covers the fleet protocol shapes: the
// seeded package mirrors internal/fleet/wire.go's structs with the
// drift modes a hand-evolved wire format grows (untagged counter,
// Go-cased tag, duplicated key, tag on an unexported field), plus
// clean protocol structs as false-positive guards.
func TestJsontagsFleetWire(t *testing.T) {
	linttest.Run(t, lint.Jsontags, "testdata/jsontags/fleetwire", "tcpstall/internal/fleet/fleetwire")
}

// TestJsontagsObsWire covers the observability wire types layered on
// the fleet protocol — the stall-event digest, the head's merged event
// stream, and the time-series payloads — with the drift a growing
// event schema collects (untagged hash field, camelCase tag from a JS
// client, duplicate key after a rename, cursor hidden on an unexported
// field), plus the clean series shapes as false-positive guards.
func TestJsontagsObsWire(t *testing.T) {
	linttest.Run(t, lint.Jsontags, "testdata/jsontags/obswire", "tcpstall/internal/fleet/obswire")
}
