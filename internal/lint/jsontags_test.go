package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestJsontags(t *testing.T) {
	linttest.Run(t, lint.Jsontags, "testdata/jsontags/j", "tcpstall/internal/live/j")
}
