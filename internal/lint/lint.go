package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run reports findings through
// the Pass; returning an error aborts the whole lint run (reserved
// for internal failures, not findings). An analyzer sets exactly one
// of Run (invoked once per package) or RunProgram (invoked once with
// every loaded package — for cross-package properties like lock-order
// cycles that no single compilation unit can see).
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass) error
	RunProgram func(*ProgramPass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Preorder walks every file of the pass in depth-first order.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// ProgramPass carries the whole loaded program through one
// whole-program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records one finding at pos, resolved through pkg's fileset.
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records one finding at an already-resolved position — for
// findings anchored outside Go source, like a stale metric row in
// README.md.
func (p *ProgramPass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers is the full tapolint suite in reporting order.
var Analyzers = []*Analyzer{
	Seqsafe, Detclock, Lockcheck, Evpurity, Jsontags, Hotalloc,
	Lockorder, Goexit, Wirefreeze, Metricsreg,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

// allowRe matches the directive comment form. The directive must be
// the whole comment: `//lint:allow <analyzer> <reason...>`.
var allowRe = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// collectAllows parses every //lint:allow directive in the package,
// keyed by file:line.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string][]allowDirective {
	out := map[string][]allowDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := allowDirective{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: pos}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				out[key] = append(out[key], d)
			}
		}
	}
	return out
}

// Run applies the analyzers to every package and returns the
// surviving findings, sorted by position. //lint:allow directives
// with a reason suppress matching findings on their own line or the
// line below; a reasonless directive is reported as a finding itself.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var perPkg, program []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			program = append(program, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	// Allow directives merge across packages (keys carry the filename)
	// so whole-program findings can be suppressed at their source line
	// exactly like per-package ones.
	merged := map[string][]allowDirective{}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range perPkg {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		allows := collectAllows(pkg.Fset, pkg.Files)
		for key, ds := range allows {
			merged[key] = append(merged[key], ds...)
		}
		for _, d := range diags {
			if suppressed(allows, d) {
				continue
			}
			all = append(all, d)
		}
		// A directive without a justification defeats the audit trail:
		// surface it whether or not it matched anything.
		for _, ds := range allows {
			for _, dir := range ds {
				if dir.reason == "" {
					all = append(all, Diagnostic{
						Analyzer: "lint",
						Pos:      dir.pos,
						Message:  fmt.Sprintf("lint:allow %s needs a reason", dir.analyzer),
					})
				}
			}
		}
	}
	var progDiags []Diagnostic
	for _, a := range program {
		pp := &ProgramPass{Analyzer: a, Pkgs: pkgs, diags: &progDiags}
		if err := a.RunProgram(pp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, d := range progDiags {
		if suppressed(merged, d) {
			continue
		}
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// suppressed reports whether a reasoned allow directive on the
// finding's line, or the line above it, names the finding's analyzer.
func suppressed(allows map[string][]allowDirective, d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, line)
		for _, dir := range allows[key] {
			if dir.analyzer == d.Analyzer && dir.reason != "" {
				return true
			}
		}
	}
	return false
}

// Allow is one //lint:allow directive, surfaced by the -allows audit.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Allows lists every //lint:allow directive in the packages, sorted
// by position. Reasonless directives come back with Reason == "" so
// the caller can fail the audit on them.
func Allows(pkgs []*Package) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		for _, ds := range collectAllows(pkg.Fset, pkg.Files) {
			for _, d := range ds {
				out = append(out, Allow{Pos: d.pos, Analyzer: d.analyzer, Reason: d.reason})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// --- shared type/path helpers used by the analyzers ---

// pkgIs reports whether pkgPath is importPath or a package under it.
func pkgIs(pkgPath, importPath string) bool {
	return pkgPath == importPath || strings.HasPrefix(pkgPath, importPath+"/")
}

// modulePkg converts a repo-relative package name to its import path.
func modulePkg(rel string) string { return path.Join("tcpstall", rel) }

// isFlightType reports whether t is (a pointer to) a named type
// declared in internal/flight.
func isFlightType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkgIs(pkg.Path(), modulePkg("internal/flight"))
}

// funcObjOf resolves the statically-known callee of a call, or nil
// for dynamic calls, conversions and builtins.
func funcObjOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// rootIdent walks to the leftmost identifier of a selector/index/star
// chain, or nil when the base is not identifier-rooted.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
