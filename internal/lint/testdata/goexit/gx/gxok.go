package gx

import (
	"context"
	"sync"
	"sync/atomic"
)

// gxok.go: false-positive guards — every sanctioned long-lived
// goroutine shape in the repo must pass.

// CtxLoop selects on ctx.Done: the canonical long-lived shape.
func CtxLoop(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				use(v)
			}
		}
	}()
}

// Workers is the bounded-counter idiom: a top-level conditional
// return bounds the headerless loop.
func Workers(n int64) {
	var next atomic.Int64
	for w := 0; w < 4; w++ {
		go func() {
			for {
				i := next.Add(1) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
}

// W owns its input channel and Close closes it, so run's receive is
// a proven termination signal — ownership wired to shutdown.
type W struct {
	in chan int
}

func (w *W) run() {
	for {
		select {
		case v, ok := <-w.in:
			if !ok {
				return
			}
			use(v)
		}
	}
}

// Start launches the named method; its body resolves cross-function.
func (w *W) Start() { go w.run() }

// Close terminates the run goroutine.
func (w *W) Close() { close(w.in) }

// Fanout ranges over a channel it closes itself: the close is in
// view on the same local object.
func Fanout(vals []int) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range jobs {
			use(v)
		}
	}()
	for _, v := range vals {
		jobs <- v
	}
	close(jobs)
	wg.Wait()
}

// Burst: bounded loops need no signal at all.
func Burst() {
	go func() {
		for i := 0; i < 100; i++ {
			work(int64(i))
		}
	}()
}

// pump conditions its loop and selects on ctx: clean both ways.
func pump(ctx context.Context, in chan int) {
	for ctx.Err() == nil {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			use(v)
		}
	}
}

// StartPump launches a named function with arguments.
func StartPump(ctx context.Context, in chan int) {
	go pump(ctx, in)
}

// Straightline goroutines with no loop terminate trivially.
func Straightline(done chan struct{}) {
	go func() {
		poll()
		close(done)
	}()
}

// WaitThenSignal blocks on a done-like receive at loop top level.
var stop = make(chan struct{})

// StopAll closes stop, proving the bare receive below terminates.
func StopAll() { close(stop) }

// Sentinel parks until stop closes, looping around spurious wakeups.
func Sentinel() {
	go func() {
		for {
			<-stop
			return
		}
	}()
}
