// Package gx seeds goroutine-leak violations for goexit: unbounded
// loops with no exit signal, ranges over channels nobody closes, and
// launches the analyzer cannot resolve to a body — next to the
// sanctioned long-lived shapes as false-positive guards.
package gx

import "time"

func use(int)    {}
func poll()      {}
func work(int64) {}

// Spin leaks: an unbounded loop with no done/ctx signal and no
// conditional exit.
func Spin() {
	go func() { // want `no provable termination path`
		for {
			poll()
		}
	}()
}

// SpinTrue: `for true` is the same loop in a trenchcoat.
func SpinTrue() {
	go func() { // want `no provable termination path`
		for true {
			poll()
		}
	}()
}

// Keepalive is the SSE-heartbeat leak this analyzer exists for: the
// ticker case never terminates the loop and nothing else can.
func Keepalive() {
	tick := time.NewTicker(time.Second)
	go func() { // want `no provable termination path`
		for {
			select {
			case <-tick.C:
				poll()
			}
		}
	}()
}

// orphan is never closed by anyone in the program.
var orphan = make(chan int)

// Drain leaks: the range blocks forever once senders stop.
func Drain() {
	go func() { // want `range over a channel`
		for v := range orphan {
			use(v)
		}
	}()
}

type server interface{ Serve() }

// Opaque launches through an interface: no body to analyze.
func Opaque(s server) {
	go s.Serve() // want `no body in the analyzed program`
}

// Dyn launches a func value: not statically resolvable.
func Dyn(fn func()) {
	go fn() // want `not statically resolvable`
}
