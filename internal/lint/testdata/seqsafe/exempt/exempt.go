// Package exempt stands in for internal/seqspace itself: the one
// place raw modular arithmetic is the implementation, not a bug.
// Loaded as tcpstall/internal/seqspace/exempt, so no findings.
package exempt

func Less(seqA, seqB uint32) bool { return int32(seqA-seqB) < 0 }

func Diff(seqA, seqB uint32) int32 { return int32(seqA - seqB) }
