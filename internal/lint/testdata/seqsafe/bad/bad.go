// Package bad seeds seqsafe violations and false-positive guards.
package bad

type segment struct {
	Seq uint32
	Ack uint32
	Len int
}

type sackBlock struct {
	Left  uint32
	Right uint32
}

func violations(seq, ack uint32, seg segment, blk sackBlock) {
	if seq < ack { // want `raw uint32 sequence comparison wraps at 2\^32`
		_ = seq
	}
	if seg.Seq >= seg.Ack { // want `seqspace\.Less/LessEq`
		_ = seg
	}
	d := seq - ack // want `raw uint32 sequence subtraction wraps at 2\^32`
	_ = d
	if blk.Left > blk.Right { // want `use seqspace\.Less`
		_ = blk
	}
	if uint32(seq) <= ack { // want `seqspace\.Less/LessEq`
		_ = seq
	}
}

func sndNxt() uint32 { return 7 }

func accessorViolation(una uint32) {
	if sndNxt() > una { // want `seqspace\.Less/LessEq`
		return
	}
}

// falsePositiveGuards must produce no findings: equality tests,
// comparisons against constants, non-sequence names, and unwrapped
// 64-bit offsets are all wrap-safe or out of scope.
func falsePositiveGuards(seq, ack uint32, crcA, crcB uint32, offSeq, offAck uint64, n int) {
	if seq == ack { // equality is wrap-agnostic
		_ = seq
	}
	if seq > 0 { // presence check against a constant
		_ = seq
	}
	if crcA < crcB { // uint32 but not sequence-named
		_ = crcA
	}
	if offSeq < offAck { // unwrapped uint64 offsets compare linearly
		_ = offSeq
	}
	if n < 3 { // plain int
		_ = n
	}
	sum := seq + 1 // addition is modular by design
	_ = sum
}
