// Package triage seeds detclock violations inside the triage fast
// path's package tree (loaded as tcpstall/internal/triage/triage):
// promotion decisions must be a pure function of record time, never
// of the wall clock or ambient randomness.
package triage

import (
	"math/rand"
	"time"
)

type flow struct {
	lastT    time.Duration
	lastSymT time.Duration
}

// promoteOnWallQuiet decides promotion against the daemon's wall
// clock instead of record time — a replayed trace would promote
// different flows depending on the machine's load.
func (f *flow) promoteOnWallQuiet() bool {
	deadline := time.Now() // want `time\.Now breaks the deterministic-run contract`
	_ = deadline
	select {
	case <-time.After(time.Millisecond): // want `time\.After breaks the deterministic-run contract`
		return true
	default:
	}
	return false
}

// sampledDemotion demotes a random subset of quiet flows — the
// cardinal sin for a path whose equivalence proof needs every record
// to take the same branch on every run.
func (f *flow) sampledDemotion() bool {
	return rand.Float64() < 0.01 // want `rand\.Float64 breaks the deterministic-run contract`
}

// recordTimeOnly is the sanctioned shape: thresholds and quiet spells
// are plain duration arithmetic over record timestamps.
func (f *flow) recordTimeOnly(now time.Duration, threshold time.Duration) bool {
	return now-f.lastT > threshold // duration arithmetic has no clock
}
