// Package det seeds detclock violations inside a deterministic
// package path (loaded as tcpstall/internal/tcpsim/det).
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now breaks the deterministic-run contract`
	time.Sleep(time.Millisecond) // want `time\.Sleep breaks the deterministic-run contract`
	return time.Since(start)     // want `time\.Since breaks the deterministic-run contract`
}

// storedDefault leaks wall time without even calling it.
var storedDefault = time.Now // want `time\.Now breaks the deterministic-run contract`

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn breaks the deterministic-run contract`
}

func mapOrderOutput(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want `randomized iteration order`
	}
	return b.String()
}

// falsePositiveGuards: seeded RNGs, duration arithmetic, time.Time
// values and the collect-then-sort idiom are all deterministic.
func falsePositiveGuards(m map[string]int, t0 time.Time) string {
	rng := rand.New(rand.NewSource(42)) // explicit seed: reproducible
	_ = rng.Intn(10)
	d := 3 * time.Second // duration arithmetic has no clock
	_ = t0.Add(d)        // manipulating a supplied time value is fine

	var keys []string
	for k := range m { // collecting for a sort is the sanctioned shape
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

func justified() time.Time {
	//lint:allow detclock this helper feeds the wall-clock admin plane, not analysis
	return time.Now()
}
