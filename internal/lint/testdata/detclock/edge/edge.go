// Package edge stands in for a daemon/CLI package (loaded as
// tcpstall/cmd/tapod/edge): wall clocks are legitimate there, so
// detclock must stay silent.
package edge

import (
	"math/rand"
	"time"
)

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func Pace(d time.Duration) {
	time.Sleep(d)
}
