// Package fleetwire seeds jsontags violations shaped like the fleet
// protocol structs in internal/fleet/wire.go — the drift modes a
// hand-evolved wire format actually grows: a new counter added without
// a tag, a Go-cased tag pasted from a field name, a copy-pasted tag
// colliding with an existing key, a version field "hidden" on an
// unexported member. The clean structs double as false-positive
// guards: the real protocol shapes must keep linting clean.
package fleetwire

// Snapshot mirrors the member push payload.
type Snapshot struct {
	Version  int    `json:"version"`
	MemberID string `json:"member_id"`
	Epoch    uint64 `json:"epoch"`
	Seq      uint64 `json:"seq"`
	Final    bool   `json:"final,omitempty"`

	ActiveFlows int               `json:"active_flows"`
	Ingested    uint64            `json:"records_ingested"`
	RingDrops   uint64            // want `lacks a json tag`
	FlowsSeen   uint64            `json:"FlowsSeen"`        // want `not snake_case`
	Evicted     map[string]uint64 `json:"records_ingested"` // want `duplicates field Ingested`

	Stalls []StallCounter `json:"stalls,omitempty"`
}

// StallCounter is one (service, cause) cell — kept clean, a guard.
type StallCounter struct {
	Service string  `json:"service"`
	Cause   string  `json:"cause"`
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
}

// RegisterResponse drifts by hiding wire state on an unexported
// field and by a tag that names no key.
type RegisterResponse struct {
	Epoch  uint64         `json:"epoch"`
	Config *ConfigUpdate  `json:"config,omitempty"`
	epoch  uint64         `json:"epoch_internal"` // want `json tag on unexported field`
	Extra  map[string]any `json:",omitempty"`     // want `names no key`
}

// ConfigUpdate is clean — a false-positive guard for map-valued
// fields and omitempty.
type ConfigUpdate struct {
	Version  uint64         `json:"version"`
	Settings map[string]any `json:"settings,omitempty"`
	Internal int            `json:"-"`
}

// headState never serializes: an untagged struct stays out of scope
// even when its shape matches a wire struct.
type headState struct {
	epoch   uint64
	lastSeq uint64
	done    bool
}

func use(h headState) uint64 { return h.epoch + h.lastSeq }

var _ = use(headState{})
