// Package j seeds jsontags violations and false-positive guards.
package j

import "time"

// Wire opts into serialization, so the whole contract applies.
type Wire struct {
	FlowID   string  `json:"flow_id"`
	StartS   float64 `json:"start_s"`
	Leak     int     // want `lacks a json tag`
	CamelTag int     `json:"camelTag"`   // want `not snake_case`
	Dup      int     `json:"flow_id"`    // want `duplicates field FlowID`
	Unnamed  int     `json:",omitempty"` // want `names no key`
	hidden   int     `json:"hidden"`     // want `json tag on unexported field`
	Skipped  int     `json:"-"`
}

// Embedded structs inline their own contract.
type Envelope struct {
	Wire
	Extra string `json:"extra"`
}

// Plain structs never serialized carry no tags and are left alone.
type Plain struct {
	Name    string
	Started time.Time
	count   int
}

func use(p Plain) int { return p.count }

var _ = use(Plain{})
