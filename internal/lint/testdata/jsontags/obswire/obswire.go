// Package obswire seeds jsontags violations shaped like the
// observability wire types in internal/fleet — the stall-event digest
// (wire.go), the event stream (events.go), and the time-series layer
// (series.go). The drift modes are the ones a growing event schema
// actually collects: a field added without a tag, a camelCased tag
// copied from a JS client, a duplicate key from a rename that kept the
// old tag, and wire state on an unexported field. The clean structs
// are false-positive guards: the real observability shapes must keep
// linting clean.
package obswire

// StallEvent mirrors the digest entry members attach to pushes.
type StallEvent struct {
	TimeMS     int64   `json:"time_ms"`
	Service    string  `json:"service,omitempty"`
	Cause      string  `json:"cause"`
	DurationMS float64 `json:"durationMs"` // want `not snake_case`
	FlowHash   uint32  // want `lacks a json tag`
}

// Event mirrors the head's merged stream entry.
type Event struct {
	ID     uint64 `json:"id"`
	TimeMS int64  `json:"time_ms"`
	Type   string `json:"type"`
	Member string `json:"member,omitempty"`
	Detail string `json:"type"` // want `duplicates field Type`
}

// EventsResponse drifts by hiding the cursor on an unexported field.
type EventsResponse struct {
	Events  []Event `json:"events"`
	Next    uint64  `json:"next"`
	Dropped uint64  `json:"dropped,omitempty"`
	cursor  uint64  `json:"cursor"` // want `json tag on unexported field`
}

// SeriesPoint is clean — a false-positive guard for omitempty-heavy
// numeric shapes.
type SeriesPoint struct {
	TimeMS       int64             `json:"time_ms"`
	Pushes       uint64            `json:"pushes"`
	Stalls       uint64            `json:"stalls"`
	StallSeconds float64           `json:"stall_seconds"`
	Causes       map[string]uint64 `json:"causes,omitempty"`
	DurP50MS     float64           `json:"dur_p50_ms,omitempty"`
	DurP99MS     float64           `json:"dur_p99_ms,omitempty"`
}

// SeriesResponse is clean — map-of-slices values stay guarded.
type SeriesResponse struct {
	StepS    float64                  `json:"step_s"`
	Buckets  int                      `json:"buckets"`
	Fleet    []SeriesPoint            `json:"fleet,omitempty"`
	Services map[string][]SeriesPoint `json:"services,omitempty"`
}

// seriesBucket never serializes: untagged accumulator structs stay
// out of scope even when their shape matches a wire struct.
type seriesBucket struct {
	epoch  int64
	stalls uint64
}

func use(b seriesBucket) int64 { return b.epoch + int64(b.stalls) }

var _ = use(seriesBucket{})
