// Package triageside seeds triage-side evpurity violations (loaded
// as tcpstall/internal/triage/triageside). The fast path buffers the
// records the monitor later replays into the full analyzer, so like
// a flight observer it must copy what it is shown and never write
// through the record.
package triageside

type record struct {
	Seq uint32
	Len int
}

type ring struct {
	slots []record
	head  int
}

// Observe copies the record into the ring — the sanctioned shape.
func (r *ring) Observe(rec *record) {
	r.slots = append(r.slots, *rec)
}

// Normalize rewrites the record in place before buffering it: replay
// would feed the analyzer a record the wire never carried.
func (r *ring) Normalize(rec *record) {
	rec.Len = 0 // want `observer writes through its parameter rec`
}

// CoalesceInto compacts through a slice parameter that aliases the
// caller's backing array.
func CoalesceInto(recs []record) {
	recs[0] = record{} // want `observer writes through its parameter recs`
}

// Rebind only rebinds the parameter variable to a fresh record — not
// a write through the caller's pointer.
func Rebind(rec *record) int {
	rec = &record{Len: 1}
	return rec.Len
}
