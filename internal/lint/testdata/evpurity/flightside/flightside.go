// Package flightside seeds observer-side evpurity violations (loaded
// as tcpstall/internal/flight/flightside).
package flightside

type record struct {
	Seq uint32
	Len int
}

type ring struct {
	samples []record
	drops   map[string]int
}

// Observe copies what it is shown — the sanctioned shape.
func (r *ring) Observe(rec *record) {
	r.samples = append(r.samples, *rec)
}

// Mutate writes through its parameter: the analyzer's record would
// change under it.
func (r *ring) Mutate(rec *record) {
	rec.Len = 0 // want `observer writes through its parameter rec`
}

// Scrub writes through a slice parameter.
func Scrub(recs []record) {
	recs[0] = record{} // want `observer writes through its parameter recs`
}

// Count mutates a map parameter.
func Count(drops map[string]int) {
	drops["x"]++ // want `observer writes through its parameter drops`
}

// Rebind only rebinds the local parameter variable — not a write
// through it.
func Rebind(rec *record) int {
	rec = &record{Len: 1}
	return rec.Len
}
