// Package coreside seeds analyzer-side evpurity violations (loaded
// as tcpstall/internal/core/coreside).
package coreside

import (
	"tcpstall/internal/flight"
	"tcpstall/internal/sim"
)

type analyzer struct {
	rec    *flight.Recorder
	nRecs  int
	cwnd   int
	hook   func(int)
	events chan int
}

// sanctioned patterns: flight calls, region-locals, flight-typed
// destinations, calls to pure same-package helpers.
func (a *analyzer) goodEmit(t sim.Time) {
	if a.rec != nil {
		id := int64(a.nRecs) // region-local: fine
		a.rec.Emit(a.nRecs, t, flight.KindAck, "ack", id, 0, 0)
	}
}

func (a *analyzer) goodTrail() *flight.Trail {
	var tr *flight.Trail
	if a.rec != nil {
		tr = &flight.Trail{} // flight-typed destination: fine
	}
	tr.Note("context", flight.V("cwnd", a.cwnd))
	return tr
}

func (a *analyzer) goodEarlyReturn(t sim.Time) {
	if a.rec == nil {
		return
	}
	a.rec.Emit(a.nRecs, t, flight.KindCwnd, "cwnd", int64(a.readCwnd()), 0, 0)
}

func (a *analyzer) readCwnd() int { return a.cwnd }

// violations: the nil-recorder run would diverge.
func (a *analyzer) badCounter() {
	if a.rec != nil {
		a.nRecs++ // want `write to a\.nRecs inside a recorder-attached region`
	}
}

func (a *analyzer) badAssign(t sim.Time) {
	if a.rec == nil {
		return
	}
	a.cwnd = 0 // want `write to a\.cwnd inside a recorder-attached region`
	a.rec.Emit(a.nRecs, t, flight.KindCwnd, "cwnd", 0, 0, 0)
}

func (a *analyzer) bumpCwnd() { a.cwnd++ }

func (a *analyzer) badWriterCall() {
	if a.rec != nil {
		a.bumpCwnd() // want `bumpCwnd writes analyzer state`
	}
}

func (a *analyzer) badDynamic() {
	if a.rec != nil {
		a.hook(1) // want `call through stored function value hook`
	}
}

func (a *analyzer) badSend() {
	if a.rec.Enabled() {
		a.events <- 1 // want `channel send inside a recorder-attached region`
	}
}
