// Package l seeds lockcheck violations and false-positive guards.
package l

import "sync"

type table struct {
	mu sync.Mutex
	// flows is the live flow map. guarded by mu
	flows map[string]int
	// hits counts lookups. guarded by mu
	hits int
	// phantom claims a guard that does not exist. guarded by gone
	phantom int // want `no sync\.Mutex/RWMutex field "gone"`
	// Shared documents an external contract but leaks outside the
	// package. guarded by the owner's lock (external)
	Shared int // want `external guarded-by contract but is exported`
}

func newTable() *table {
	t := &table{flows: map[string]int{}}
	t.flows["boot"] = 1 // fresh value: not yet shared, no lock needed
	return t
}

func (t *table) lookup(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits++ // locked above: fine
	return t.flows[id]
}

// evictLocked follows the caller-holds convention.
func (t *table) evictLocked(id string) {
	delete(t.flows, id)
}

func (t *table) racyRead(id string) int {
	return t.flows[id] // want `guarded by t\.mu, which is not locked on this path`
}

func (t *table) racyCount() {
	t.hits++ // want `guarded by t\.mu, which is not locked on this path`
}

func (t *table) wrongInstance(o *table) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return o.flows["x"] // want `o\.flows is guarded by o\.mu`
}

func (t *table) justified() int {
	//lint:allow lockcheck snapshot tolerates torn reads by design
	return t.hits
}
