// Package hot seeds violations for the hotalloc analyzer: every
// allocating construct inside a tapo:hotpath function must be
// flagged, identical constructs outside must stay silent, and a
// justified allow must suppress.
package hot

import "fmt"

type rec struct {
	seq uint32
	len int
}

type sink interface{ consume(any) }

var global []rec

// observe is on the per-record path.
//
// tapo:hotpath
func observe(r *rec, out []rec) []rec {
	out = append(out, *r) // want `append may grow its backing array in hotpath observe`
	buf := make([]rec, 8) // want `make allocates in hotpath observe`
	_ = buf
	p := new(rec) // want `new allocates in hotpath observe`
	_ = p
	return out
}

// feed mixes boxing shapes.
//
// tapo:hotpath
func feed(s sink, r *rec) {
	s.consume(rec{seq: r.seq})  // want `composite literal boxed into an interface heap-allocates in hotpath feed`
	s.consume(&rec{seq: r.seq}) // want `composite literal boxed into an interface heap-allocates in hotpath feed`
	var x any = rec{len: 1}     // want `composite literal boxed into an interface heap-allocates in hotpath feed`
	_ = x
	y := any(rec{len: 2}) // want `composite literal boxed into an interface heap-allocates in hotpath feed`
	_ = y
	fmt.Println(rec{len: 3}) // want `composite literal boxed into an interface heap-allocates in hotpath feed`
}

// capture closes over its argument.
//
// tapo:hotpath
func capture(r *rec) func() int {
	return func() int { return r.len } // want `closure heap-allocates its captures in hotpath capture`
}

// allowed records why its append cannot reallocate.
//
// tapo:hotpath
func allowed(out []rec, r *rec) []rec {
	//lint:allow hotalloc caller guarantees spare capacity; see ring invariant
	return append(out, *r)
}

// cold does all of the same things with no marker: none of it is in
// scope, so none of it may be flagged.
func cold(s sink, r *rec) {
	global = append(global, *r)
	_ = make([]rec, 4)
	_ = new(rec)
	s.consume(rec{})
	_ = func() int { return r.len }
}

// hot is marked but clean: pure field math, value copies, calls.
//
// tapo:hotpath
func hot(r *rec, out *rec) int {
	*out = *r
	out.seq++
	return out.len + fieldOf(out)
}

func fieldOf(r *rec) int { return r.len }
