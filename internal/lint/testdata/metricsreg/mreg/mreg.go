// Package mreg seeds exporter drift for metricsreg: duplicate and
// orphaned TYPE lines, illegal family/label names, samples for
// undeclared families, and an emitted family the docs never mention
// — interleaved with clean, documented families as false-positive
// guards. The paired docs file (docs.md) carries one stale row.
package mreg

import "fmt"

// sink collects exposition lines like the real exporters' printf
// helper does.
var sink []string

func p(format string, args ...any) { sink = append(sink, fmt.Sprintf(format, args...)) }

// Emit renders the seeded exposition surface.
func Emit() {
	// Clean, documented family: a false-positive guard.
	p("# HELP tapod_mreg_flows_active Active flows.\n")
	p("# TYPE tapod_mreg_flows_active gauge\n")
	p("tapod_mreg_flows_active %d\n", 4)

	// Labeled clean family.
	p("# HELP tapod_mreg_drops_total Dropped records by reason.\n")
	p("# TYPE tapod_mreg_drops_total counter\n")
	p("tapod_mreg_drops_total{reason=%q} %d\n", "ring", 2)

	// Declared twice: the second TYPE is drift.
	p("# TYPE tapod_mreg_flows_active gauge\n") // want `declared more than once`

	// TYPE with no HELP anywhere.
	p("# TYPE tapod_mreg_orphan_total counter\n") // want `no HELP line`
	p("tapod_mreg_orphan_total %d\n", 3)

	// Illegal family name.
	p("# TYPE tapod_mreg-bad gauge\n") // want `invalid Prometheus metric name`

	// Illegal metric type.
	p("# TYPE tapod_mreg_wrong_kind gaugee\n") // want `invalid type`
	p("# HELP tapod_mreg_wrong_kind Typo'd type keeps the family.\n")

	// Illegal label name on a declared family.
	p("tapod_mreg_drops_total{bad-label=%q} %d\n", "x", 1) // want `invalid Prometheus label name`

	// Sample with no declaration anywhere.
	p("tapod_mreg_ghost_total %d\n", 9) // want `no # TYPE declaration`

	// Emitted but absent from the docs tables.
	p("# HELP tapod_mreg_secret_total Not in the docs.\n")
	p("# TYPE tapod_mreg_secret_total counter\n") // want `not documented`
	p("tapod_mreg_secret_total %d\n", 7)

	// Indirect declaration: the writeHistogram renderer pattern, where
	// the family name only ever appears as a plain argument literal.
	writeHist(p, "tapod_mreg_lat_ms")
}

// writeHist mirrors live.writeHistogram: HELP/TYPE through %s.
func writeHist(w func(string, ...any), name string) {
	w("# HELP %s Latency distribution.\n", name)
	w("# TYPE %s histogram\n", name)
	w("%s_bucket{le=%q} %d\n", name, "1", 1)
	w("%s_sum %d\n", name, 1)
	w("%s_count %d\n", name, 1)
}

// The paired docs file documents every family above except the
// secret one, plus one row for an exporter that no longer exists:
// want@docs.md `docs mention metric family tapod_mreg_gone_total`
