// Package lo seeds a lock-order cycle shaped like the fleet head /
// event ring pair: two mutex-owning types that each reach into the
// other while holding their own lock. Either direction alone is a
// legal nesting; together they deadlock two goroutines that take the
// locks in opposite order.
package lo

import "sync"

// A is the head-like side of the cycle.
type A struct {
	mu sync.Mutex
	n  int // guarded by mu
	b  *B
}

// B is the ring-like side.
type B struct {
	mu sync.RWMutex
	m  int // guarded by mu
	a  *A
}

// Bump locks A then reaches into B: the A.mu → B.mu half.
func (a *A) Bump() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	a.b.notify() // want `lock-order cycle`
}

func (b *B) notify() {
	b.mu.Lock()
	b.m++
	b.mu.Unlock()
}

// Peek read-locks B then calls back into A: B.mu → A.mu closes it.
func (b *B) Peek() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.a.count()
}

func (a *A) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
