package lo

import "sync"

// ok.go: false-positive guards — consistent one-way nesting, locks
// released before the next take, the *Locked convention, and
// function-local mutexes must all stay clean.

// Outer consistently nests Inner under its own lock.
type Outer struct {
	mu sync.Mutex
	in *Inner
}

// Inner is always the second lock taken, never the first.
type Inner struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Touch and Reset both order Outer.mu → Inner.mu; a one-way edge,
// however many sites contribute it, is not a cycle.
func (o *Outer) Touch() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.bump()
}

func (o *Outer) Reset() {
	o.mu.Lock()
	o.in.bump()
	o.mu.Unlock()
}

func (i *Inner) bump() {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

// After takes Inner.mu only once Outer.mu is released: a plain
// Unlock drops the hold, so no Inner → Outer edge exists.
func (i *Inner) After(o *Outer) {
	o.mu.Lock()
	o.mu.Unlock()
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

// addLocked is entered holding Inner.mu by convention; it takes no
// further lock, so the seed contributes no edge.
func (i *Inner) addLocked(v int) {
	i.n += v
}

// Feed routes through the *Locked convention the way the fleet
// head's publishLocked does — still strictly one-way.
func (i *Inner) Feed(v int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.addLocked(v)
}

// Scratch uses a function-local mutex, which cannot participate in a
// cross-function ordering cycle.
func Scratch() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return 1
}
