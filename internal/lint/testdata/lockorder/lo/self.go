package lo

import "sync"

// S re-enters its own non-reentrant lock through a helper: the
// single-goroutine deadlock, reported as a self-edge cycle.
type S struct {
	mu    sync.Mutex
	items []int // guarded by mu
}

// Add holds mu (deferred unlock) across a call that locks mu again.
func (s *S) Add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, v)
	if s.size() > 8 { // want `lock-order cycle`
		s.items = s.items[1:]
	}
}

func (s *S) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
