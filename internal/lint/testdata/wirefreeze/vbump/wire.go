// Package fleet bumps WireVersion without regenerating the snapshot:
// the fields still fingerprint identically to ok/, so the only drift
// is the version constant itself — which must still be a finding, or
// a bump could silently ride along with nothing recorded.
package fleet

const WireVersion = 2 // want `snapshot was taken at`

// Snapshot is byte-for-byte the ok/ shape.
type Snapshot struct {
	Version  int            `json:"version"`
	MemberID string         `json:"member_id"`
	Stalls   []StallCounter `json:"stalls,omitempty"`
}

// StallCounter is byte-for-byte the ok/ shape.
type StallCounter struct {
	Service string `json:"service"`
	Cause   string `json:"cause"`
	Count   uint64 `json:"count"`
}
