// Package fleet drifts from the frozen ok/ snapshot without bumping
// WireVersion: a renamed/retyped counter field and a brand-new struct
// grafted onto the root. Both must surface as findings.
package fleet

// WireVersion was NOT bumped for the drift below.
const WireVersion = 1

// Snapshot grew a field, changing its fingerprint.
type Snapshot struct { // want `changed .* without regenerating`
	Version  int            `json:"version"`
	MemberID string         `json:"member_id"`
	Stalls   []StallCounter `json:"stalls,omitempty"`
	Extra    *Extra         `json:"extra,omitempty"`
}

// StallCounter renamed Count to Total — the mixed-version poison.
type StallCounter struct { // want `changed .* without regenerating`
	Service string `json:"service"`
	Cause   string `json:"cause"`
	Total   uint64 `json:"total"`
}

// Extra is new wire surface the snapshot has never seen.
type Extra struct { // want `new \(or renamed\)`
	Note string `json:"note"`
}
