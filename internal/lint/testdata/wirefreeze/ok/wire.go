// Package fleet mirrors the wire-surface shape for wirefreeze tests:
// a versioned root struct reaching a nested cell type. The test
// freezes this package into a snapshot, then checks it clean — the
// false-positive guard — and checks the drifted siblings against the
// same snapshot.
package fleet

// WireVersion gates the protocol, as in the real internal/fleet.
const WireVersion = 1

// Snapshot is the frozen root.
type Snapshot struct {
	Version  int            `json:"version"`
	MemberID string         `json:"member_id"`
	Stalls   []StallCounter `json:"stalls,omitempty"`
}

// StallCounter is one (service, cause) cell.
type StallCounter struct {
	Service string `json:"service"`
	Cause   string `json:"cause"`
	Count   uint64 `json:"count"`
}
