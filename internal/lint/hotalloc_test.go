package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, lint.Hotalloc, "testdata/hotalloc/hot", "tcpstall/internal/triage/hot")
}
