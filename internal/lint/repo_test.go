package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
)

// TestRepoClean runs every analyzer over the whole module and requires
// zero findings. This is the tier-1 enforcement point: reintroducing a
// raw uint32 sequence comparison in internal/core, or a time.Now() in
// internal/tcpsim, fails this test (and CI) even before the dedicated
// tapolint job runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	pkgs, err := lint.Load("../..", "tcpstall/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	}
}
