package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one source-typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listMeta is the subset of `go list -json` output the loader needs.
type listMeta struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on the patterns and
// returns the decoded package stream. Export data is compiled into
// the build cache as a side effect, which is exactly what the
// type-checking importer feeds on.
func goList(dir string, patterns []string) ([]listMeta, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []listMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if m.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", m.ImportPath, m.Error.Err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// exportImporter builds a types.Importer that resolves every import
// from the export files go list reported.
func exportImporter(fset *token.FileSet, metas []listMeta) types.Importer {
	exports := map[string]string{}
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheck parses and checks one package's files against the
// importer, returning the filled Package.
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typechecking %s: %v", importPath, typeErrs[0])
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load resolves the patterns with the go tool and typechecks every
// matched (non-dependency) package from source, with all dependencies
// satisfied from compiled export data. dir anchors the go tool's
// working directory; "" means the current directory (which must be
// inside the module).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, metas)
	var pkgs []*Package
	for _, m := range metas {
		if m.DepOnly || m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and typechecks the .go files of one directory — a
// testdata package the go tool refuses to see — pretending the
// package lives at asPath. Imports are resolved the same way Load
// resolves them, so testdata may import module packages.
func LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var metas []listMeta
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		metas, err = goList(dir, paths)
		if err != nil {
			return nil, err
		}
	}
	imp := exportImporter(fset, metas)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(asPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typechecking %s: %v", dir, typeErrs[0])
	}
	return &Package{Path: asPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleRoot derives the on-disk module root from any loaded module
// package whose directory actually ends in its import-path suffix
// (testdata packages loaded under an assumed path do not, and are
// skipped). Empty when no package qualifies.
func moduleRoot(pkgs []*Package) string {
	for _, p := range pkgs {
		if p.Dir == "" || !pkgIs(p.Path, "tcpstall") {
			continue
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, "tcpstall"), "/")
		if rel == "" {
			return p.Dir
		}
		suffix := string(filepath.Separator) + filepath.FromSlash(rel)
		if root, ok := strings.CutSuffix(p.Dir, suffix); ok {
			return root
		}
	}
	return ""
}
