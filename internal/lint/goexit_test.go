package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

// TestGoexit seeds the goroutine-leak shapes (headerless loops with
// no signal, the SSE-keepalive ticker loop, a range over a channel
// nobody closes, unresolvable launches) against the sanctioned
// long-lived idioms: ctx.Done selects, bounded-counter workers,
// channels closed by an owning Close, and plain bounded loops.
func TestGoexit(t *testing.T) {
	linttest.Run(t, lint.Goexit, "testdata/goexit/gx", "tcpstall/internal/live/gx")
}
