package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Wirefreeze pins the fleet wire protocol and the BENCH JSON schemas
// to a committed snapshot. Every struct reachable from the roots —
// fleet.Snapshot and the register/push/config/events/timeseries wire
// types, plus the livebench/fleetbench report structs — is
// fingerprinted (field names, fully-qualified field types, json
// tags; order-insensitive hash) and compared against
// internal/lint/testdata/wirefreeze/wire.json, which also records
// the WireVersion the snapshot was taken at.
//
// Renaming a field, changing its type, or touching its json tag
// changes the hash, and the analyzer fails until the change is made
// deliberate: bump WireVersion in internal/fleet/wire.go and
// regenerate with `go run ./cmd/tapolint -update-wirefreeze ./...`.
// Bumping the version without regenerating (or vice versa) is also a
// finding, so protocol drift between mixed-version tapods is a
// compile-time event, not a 3 a.m. aggregation mystery.
//
// The check runs only when every root package is loaded (a partial
// `tapolint ./internal/core/...` run has nothing to compare); the
// update flag likewise requires the full program so it can never
// commit a partial snapshot.
var Wirefreeze = &Analyzer{
	Name:       "wirefreeze",
	Doc:        "wire structs and BENCH schemas must match the committed fingerprint snapshot",
	RunProgram: runWirefreeze,
}

// WireRoot names one struct whose reachable closure is frozen.
type WireRoot struct{ Pkg, Type string }

// Wirefreeze seams, settable by cmd/tapolint and tests: the root set,
// the snapshot location (empty means
// <module>/internal/lint/testdata/wirefreeze/wire.json), and whether
// this run regenerates the snapshot instead of checking it.
var (
	WirefreezeRoots = []WireRoot{
		{modulePkg("internal/fleet"), "Snapshot"},
		{modulePkg("internal/fleet"), "RegisterRequest"},
		{modulePkg("internal/fleet"), "RegisterResponse"},
		{modulePkg("internal/fleet"), "PushResponse"},
		{modulePkg("internal/fleet"), "ConfigUpdate"},
		{modulePkg("internal/fleet"), "Event"},
		{modulePkg("internal/fleet"), "EventsResponse"},
		{modulePkg("internal/fleet"), "SeriesResponse"},
		{modulePkg("cmd/livebench"), "result"},
		{modulePkg("cmd/fleetbench"), "result"},
	}
	WirefreezeSnapshot string
	WirefreezeUpdate   bool
)

// wireVersionPkg is the package whose WireVersion constant gates the
// protocol; kept separate from the roots so testdata loaded under an
// assumed path resolves its own constant.
var wireVersionPkg = modulePkg("internal/fleet")

// wireSnapshot is the committed file format.
type wireSnapshot struct {
	WireVersion int64             `json:"wire_version"`
	Types       map[string]string `json:"types"`
}

func runWirefreeze(pp *ProgramPass) error {
	byPath := map[string]*Package{}
	for _, p := range pp.Pkgs {
		byPath[p.Path] = p
	}
	for _, r := range WirefreezeRoots {
		if byPath[r.Pkg] == nil {
			return nil // partial load: nothing trustworthy to compare
		}
	}
	fleetPkg := byPath[wireVersionPkg]
	version, versionPos, ok := wireVersionOf(fleetPkg)
	if !ok {
		pp.Reportf(fleetPkg, fleetPkg.Files[0].Pos(),
			"package %s declares no integer WireVersion constant; the wire protocol must be versioned", wireVersionPkg)
		return nil
	}

	hashes := map[string]string{}
	decls := map[string]struct {
		pkg *Package
		pos token.Pos
	}{}
	for _, r := range WirefreezeRoots {
		pkg := byPath[r.Pkg]
		obj := pkg.Types.Scope().Lookup(r.Type)
		if obj == nil {
			pp.Reportf(pkg, pkg.Files[0].Pos(), "wirefreeze root %s.%s does not exist", r.Pkg, r.Type)
			continue
		}
		collectWireTypes(obj.Type(), hashes)
	}
	// Anchor findings at declarations where the source is loaded.
	for _, pkg := range pp.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					key := wireKey(pkg.Path, ts.Name.Name)
					if _, tracked := hashes[key]; tracked {
						decls[key] = struct {
							pkg *Package
							pos token.Pos
						}{pkg, ts.Name.Pos()}
					}
				}
			}
		}
	}

	snapPath := WirefreezeSnapshot
	if snapPath == "" {
		root := moduleRoot(pp.Pkgs)
		if root == "" {
			return fmt.Errorf("wirefreeze: cannot resolve module root for snapshot path")
		}
		snapPath = filepath.Join(root, "internal", "lint", "testdata", "wirefreeze", "wire.json")
	}

	if WirefreezeUpdate {
		return writeWireSnapshot(snapPath, wireSnapshot{WireVersion: version, Types: hashes})
	}

	var snap wireSnapshot
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		pp.Reportf(fleetPkg, versionPos,
			"no wirefreeze snapshot at %s; commit one with `go run ./cmd/tapolint -update-wirefreeze ./...`", snapPath)
		return nil
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("wirefreeze: parsing %s: %w", snapPath, err)
	}

	reportAt := func(key, format string, args ...any) {
		if d, ok := decls[key]; ok {
			pp.Reportf(d.pkg, d.pos, format, args...)
		} else {
			pp.Reportf(fleetPkg, versionPos, format, args...)
		}
	}
	drift := false
	for _, key := range sortedWireKeys(hashes) {
		want, known := snap.Types[key]
		switch {
		case !known:
			drift = true
			reportAt(key, "wire struct %s is new (or renamed) and not in the wirefreeze snapshot; bump WireVersion and regenerate with -update-wirefreeze", key)
		case want != hashes[key]:
			drift = true
			reportAt(key, "wire struct %s changed (fingerprint %s, snapshot %s) without regenerating the wirefreeze snapshot; bump WireVersion and run -update-wirefreeze", key, hashes[key], want)
		}
	}
	for _, key := range sortedWireKeys(snap.Types) {
		if _, still := hashes[key]; !still {
			drift = true
			reportAt(key, "wire struct %s was removed from the wire surface but is still in the wirefreeze snapshot; bump WireVersion and regenerate with -update-wirefreeze", key)
		}
	}
	if drift && version != snap.WireVersion {
		// The version was bumped but the snapshot is stale: the drift
		// findings above already demand regeneration. Without a bump
		// the same findings demand both — either way the fix is
		// explicit. Nothing extra to report here.
		return nil
	}
	if !drift && version != snap.WireVersion {
		pp.Reportf(fleetPkg, versionPos,
			"WireVersion is %d but the wirefreeze snapshot was taken at %d; regenerate with -update-wirefreeze", version, snap.WireVersion)
	}
	return nil
}

// wireVersionOf resolves the WireVersion constant and its position.
func wireVersionOf(pkg *Package) (int64, token.Pos, bool) {
	obj := pkg.Types.Scope().Lookup("WireVersion")
	c, ok := obj.(*types.Const)
	if !ok {
		return 0, token.NoPos, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	if !ok {
		return 0, token.NoPos, false
	}
	return v, obj.Pos(), true
}

// collectWireTypes walks the type graph from one root, fingerprinting
// every named module struct it reaches. Export data preserves struct
// tags, so reachable types in packages loaded only as dependencies
// fingerprint identically to source-loaded ones.
func collectWireTypes(t types.Type, hashes map[string]string) {
	switch x := types.Unalias(t).(type) {
	case *types.Pointer:
		collectWireTypes(x.Elem(), hashes)
	case *types.Slice:
		collectWireTypes(x.Elem(), hashes)
	case *types.Array:
		collectWireTypes(x.Elem(), hashes)
	case *types.Map:
		collectWireTypes(x.Key(), hashes)
		collectWireTypes(x.Elem(), hashes)
	case *types.Named:
		obj := x.Obj()
		if obj.Pkg() == nil || !pkgIs(obj.Pkg().Path(), "tcpstall") {
			return
		}
		key := wireKey(obj.Pkg().Path(), obj.Name())
		if _, done := hashes[key]; done {
			return
		}
		st, ok := x.Underlying().(*types.Struct)
		if !ok {
			hashes[key] = fingerprintLines([]string{types.TypeString(x.Underlying(), wireQualifier)})
			return
		}
		var lines []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			lines = append(lines, f.Name()+"|"+types.TypeString(f.Type(), wireQualifier)+"|"+st.Tag(i))
		}
		hashes[key] = fingerprintLines(lines)
		for i := 0; i < st.NumFields(); i++ {
			collectWireTypes(st.Field(i).Type(), hashes)
		}
	}
}

// wireKey names a type module-relatively, so a testdata package
// loaded under an assumed module path produces comparable keys.
func wireKey(pkgPath, name string) string {
	return strings.TrimPrefix(strings.TrimPrefix(pkgPath, "tcpstall"), "/") + "." + name
}

func wireQualifier(p *types.Package) string { return p.Path() }

// fingerprintLines hashes the sorted field lines: reordering fields
// is not drift, renaming or retyping them is.
func fingerprintLines(lines []string) string {
	sorted := append([]string(nil), lines...)
	sort.Strings(sorted)
	sum := sha256.Sum256([]byte(strings.Join(sorted, "\n")))
	return fmt.Sprintf("%x", sum[:8])
}

func sortedWireKeys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeWireSnapshot(path string, snap wireSnapshot) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
