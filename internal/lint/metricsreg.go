package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metricsreg audits the hand-rolled Prometheus exporters. The
// exposition text in internal/live and internal/fleet is built from
// string literals (`# TYPE …` headers, sample lines with fmt verbs
// for the values), so the full metric surface is statically visible;
// this analyzer collects it and enforces:
//
//   - family and label names match Prometheus syntax
//     ([a-zA-Z_:][a-zA-Z0-9_:]*, labels without the colon);
//   - `# TYPE` uses a legal metric type and no family is declared
//     twice (within a package or across the two exporters);
//   - every `# TYPE` has a `# HELP` and vice versa;
//   - every sample line with a tapod_/tapoctl_/fleet_ family (after
//     stripping _bucket/_sum/_count) belongs to a declared family —
//     a string literal that IS exactly a family name (the
//     writeHistogram call pattern) declares one;
//   - the documented metric tables stay honest, both ways: every
//     emitted family appears backticked in README.md/DESIGN.md, and
//     every backticked tapod_/tapoctl_/fleet_ name in the docs is
//     actually emitted. The docs direction only runs when every
//     scope package is loaded, so partial runs cannot cry stale.
var Metricsreg = &Analyzer{
	Name:       "metricsreg",
	Doc:        "exporter metric families: valid names, no duplicates, HELP/TYPE pairs, docs in sync",
	RunProgram: runMetricsreg,
}

// Metricsreg seams for cmd/tapolint and tests: which packages hold
// exporters, and which documents carry the metric tables (empty
// means README.md and DESIGN.md at the module root).
var (
	MetricsregScope = []string{modulePkg("internal/live"), modulePkg("internal/fleet")}
	MetricsregDocs  []string
)

var (
	metricNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe   = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	typeLineRe    = regexp.MustCompile(`^# TYPE ([^ ]+) ([^ ]+)$`)
	helpLineRe    = regexp.MustCompile(`^# HELP ([^ ]+) (.+)$`)
	sampleLineRe  = regexp.MustCompile(`^([A-Za-z_:%][A-Za-z0-9_:%]*)(\{([^}]*)\})?[ ].*\S`)
	docMetricRe   = regexp.MustCompile("`([a-zA-Z_:][a-zA-Z0-9_:]*)`")
	metricsPrefix = []string{"tapod_", "tapoctl_", "fleet_"}
)

var promMetricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// metricFamily is one declared family with its declaration site.
type metricFamily struct {
	name string
	pkg  *Package
	pos  token.Pos
}

func runMetricsreg(pp *ProgramPass) error {
	inScope := map[string]bool{}
	for _, s := range MetricsregScope {
		inScope[s] = true
	}
	var scoped []*Package
	for _, pkg := range pp.Pkgs {
		if inScope[pkg.Path] {
			scoped = append(scoped, pkg)
		}
	}
	if len(scoped) == 0 {
		return nil
	}

	declared := map[string]metricFamily{} // family → first TYPE/indirect decl
	helped := map[string]bool{}
	type usage struct {
		family string
		pkg    *Package
		pos    token.Pos
	}
	var uses []usage

	for _, pkg := range scoped {
		pkg := pkg
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				text, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				// A literal that is exactly a family name is the
				// indirect-declaration pattern: the name handed to a
				// renderer like writeHistogram that emits its own
				// HELP/TYPE through %s.
				if hasMetricsPrefix(text) && metricNameRe.MatchString(text) {
					if prev, dup := declared[text]; dup {
						pp.Reportf(pkg, lit.Pos(), "metric family %s declared more than once (first at %s)",
							text, prev.pkg.Fset.Position(prev.pos))
					} else {
						declared[text] = metricFamily{name: text, pkg: pkg, pos: lit.Pos()}
						helped[text] = true // renderer emits HELP with the name
					}
					return true
				}
				for _, line := range strings.Split(text, "\n") {
					line = strings.TrimSpace(line)
					if line == "" {
						continue
					}
					if m := typeLineRe.FindStringSubmatch(line); m != nil {
						name, mtype := m[1], m[2]
						if strings.Contains(name, "%") {
							continue // renderer template; name checked at its call site
						}
						if !metricNameRe.MatchString(name) {
							pp.Reportf(pkg, lit.Pos(), "invalid Prometheus metric name %q in TYPE line", name)
							continue
						}
						if !promMetricTypes[mtype] {
							pp.Reportf(pkg, lit.Pos(), "metric family %s has invalid type %q in TYPE line", name, mtype)
						}
						if prev, dup := declared[name]; dup {
							pp.Reportf(pkg, lit.Pos(), "metric family %s declared more than once (first at %s)",
								name, prev.pkg.Fset.Position(prev.pos))
						} else {
							declared[name] = metricFamily{name: name, pkg: pkg, pos: lit.Pos()}
						}
						continue
					}
					if m := helpLineRe.FindStringSubmatch(line); m != nil {
						if !strings.Contains(m[1], "%") {
							helped[m[1]] = true
						}
						continue
					}
					m := sampleLineRe.FindStringSubmatch(line)
					if m == nil {
						continue
					}
					name, labels := m[1], m[3]
					if labels != "" {
						checkLabels(pp, pkg, lit.Pos(), name, labels)
					}
					if strings.Contains(name, "%") || !hasMetricsPrefix(name) {
						continue
					}
					if !metricNameRe.MatchString(name) {
						pp.Reportf(pkg, lit.Pos(), "invalid Prometheus metric name %q in sample line", name)
						continue
					}
					uses = append(uses, usage{family: sampleFamily(name), pkg: pkg, pos: lit.Pos()})
				}
				return true
			})
		}
	}

	for name, fam := range declared {
		if !helped[name] {
			pp.Reportf(fam.pkg, fam.pos, "metric family %s has a TYPE line but no HELP line", name)
		}
	}
	reportedUndeclared := map[string]bool{}
	for _, u := range uses {
		if _, ok := declared[u.family]; !ok && !reportedUndeclared[u.family] {
			reportedUndeclared[u.family] = true
			pp.Reportf(u.pkg, u.pos, "sample line emits family %s with no # TYPE declaration", u.family)
		}
	}

	// Docs cross-check: only meaningful over the full exporter set.
	if len(scoped) != len(MetricsregScope) {
		return nil
	}
	docs := MetricsregDocs
	if docs == nil {
		root := moduleRoot(pp.Pkgs)
		if root == "" {
			return nil
		}
		docs = []string{filepath.Join(root, "README.md"), filepath.Join(root, "DESIGN.md")}
	}
	type docRef struct {
		pos token.Position
	}
	documented := map[string]docRef{}
	for _, path := range docs {
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("metricsreg: reading %s: %w", path, err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			for _, m := range docMetricRe.FindAllStringSubmatch(line, -1) {
				if !hasMetricsPrefix(m[1]) {
					continue
				}
				if _, ok := documented[m[1]]; !ok {
					documented[m[1]] = docRef{pos: token.Position{Filename: path, Line: i + 1}}
				}
			}
		}
	}
	for _, name := range sortedFamilies(declared) {
		if _, ok := documented[name]; !ok {
			fam := declared[name]
			pp.Reportf(fam.pkg, fam.pos,
				"metric family %s is not documented in the README.md/DESIGN.md metric tables", name)
		}
	}
	var docNames []string
	for name := range documented {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if _, ok := declared[sampleFamily(name)]; !ok {
			pp.ReportAt(documented[name].pos,
				"docs mention metric family %s which no exporter emits", name)
		}
	}
	return nil
}

func hasMetricsPrefix(s string) bool {
	for _, p := range metricsPrefix {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// sampleFamily strips the histogram/summary sample suffixes so
// tapod_x_bucket, _sum and _count all resolve to family tapod_x.
func sampleFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			return base
		}
	}
	return name
}

func checkLabels(pp *ProgramPass, pkg *Package, pos token.Pos, family, labels string) {
	for _, part := range strings.Split(labels, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, _, ok := strings.Cut(part, "=")
		if !ok {
			pp.Reportf(pkg, pos, "malformed label %q on metric %s", part, family)
			continue
		}
		if !labelNameRe.MatchString(key) {
			pp.Reportf(pkg, pos, "invalid Prometheus label name %q on metric %s", key, family)
		}
	}
}

func sortedFamilies(m map[string]metricFamily) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
