package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goexit demands a provable termination path for every goroutine
// launch. A `go` statement passes when its body — a function literal,
// or the body of a statically-resolved function anywhere in the
// loaded program — contains no unbounded loop, or when every
// unbounded loop it does contain has a visible exit:
//
//   - a select (or direct receive) on a done-like channel: the
//     result of ctx.Done() for any context.Context, or a channel
//     field/variable that some function in the program close()s —
//     which is how ownership by a type whose Close is wired into
//     tapod/tapoctl shutdown is proven (the shard loop exits because
//     Monitor.Close closes shard.in);
//   - a top-level conditional return/break — the bounded
//     worker-counter idiom (`for { i := next.Add(1); if i >= n
//     { return } … }`);
//   - a loop condition at all: `for cond {}` and three-clause loops
//     are presumed bounded (`for {}` and `for true {}` are not), and
//     `for range` over a non-channel is finite by construction. A
//     range over a channel needs a proven close like any receive.
//
// A `go` whose target cannot be resolved to a body in the loaded
// program (an external function, a method value through an
// interface) is flagged: tapolint cannot prove it terminates, so
// either wrap it in a literal that ties it to shutdown or record the
// external lifecycle with lint:allow. The analysis is one level deep
// by design — the goroutine's own body — so a launch that hides its
// loop behind a helper call names that helper instead (the helper's
// body is what gets analyzed when it resolves).
var Goexit = &Analyzer{
	Name:       "goexit",
	Doc:        "every goroutine launch must have a provable termination path",
	RunProgram: runGoexit,
}

// goexitIndex is the whole-program context a single launch is judged
// against: which channels are provably closed, and where function
// bodies live.
type goexitIndex struct {
	closedKeys map[string]bool        // structural field / package-var keys with a close()
	closedObjs map[types.Object]bool  // local/param channel objects with a close()
	bodies     map[string]*goexitBody // types.Func FullName → body
}

type goexitBody struct {
	pkg  *Package
	body *ast.BlockStmt
}

func runGoexit(pp *ProgramPass) error {
	idx := &goexitIndex{
		closedKeys: map[string]bool{},
		closedObjs: map[types.Object]bool{},
		bodies:     map[string]*goexitBody{},
	}
	for _, pkg := range pp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
					idx.bodies[fn.FullName()] = &goexitBody{pkg: pkg, body: fd.Body}
				}
			}
		}
		pkg := pkg
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if b, _ := pkg.Info.Uses[id].(*types.Builtin); b == nil || b.Name() != "close" {
					return true
				}
				idx.recordClose(pkg, call.Args[0])
				return true
			})
		}
	}

	for _, pkg := range pp.Pkgs {
		pkg := pkg
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pp, idx, pkg, gs)
				return true
			})
		}
	}
	return nil
}

// recordClose indexes one close(x) call under every name the channel
// can later be matched by.
func (idx *goexitIndex) recordClose(pkg *Package, arg ast.Expr) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[x.Sel]; obj != nil {
			idx.closedObjs[obj] = true
		}
		if named := namedOf(typeOf(pkg.Info, x.X)); named != nil {
			idx.closedKeys[fieldLockKey(named, x.Sel.Name)] = true
		}
	case *ast.Ident:
		obj := identObj(pkg.Info, x)
		if obj == nil {
			return
		}
		idx.closedObjs[obj] = true
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			idx.closedKeys[obj.Pkg().Path()+"."+obj.Name()] = true
		}
	}
}

// checkGoStmt resolves one launch to a body and judges it.
func checkGoStmt(pp *ProgramPass, idx *goexitIndex, pkg *Package, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	bodyPkg := pkg
	target := "goroutine"
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := funcObjOf(pkg.Info, gs.Call); fn != nil {
		target = fn.Name()
		if b := idx.bodies[fn.FullName()]; b != nil {
			body, bodyPkg = b.body, b.pkg
		} else {
			pp.Reportf(pkg, gs.Pos(),
				"go %s launches a function with no body in the analyzed program; tapolint cannot prove it terminates — tie it to shutdown in a literal or justify with lint:allow",
				fn.Name())
			return
		}
	} else {
		pp.Reportf(pkg, gs.Pos(),
			"goroutine target is not statically resolvable; tapolint cannot prove it terminates — name the function directly or justify with lint:allow")
		return
	}
	if loop, msg := firstUnprovenLoop(idx, bodyPkg, body); msg != "" {
		line := bodyPkg.Fset.Position(loop.Pos()).Line
		pp.Reportf(pkg, gs.Pos(),
			"%s has no provable termination path: %s (line %d); select on a done/ctx channel, bound the loop, or justify with lint:allow",
			target, msg, line)
	}
}

// firstUnprovenLoop scans a goroutine body (not descending into
// nested function literals, which run on other goroutines or not at
// all) for the first loop whose termination cannot be shown.
func firstUnprovenLoop(idx *goexitIndex, pkg *Package, body *ast.BlockStmt) (ast.Node, string) {
	var badNode ast.Node
	var badMsg string
	ast.Inspect(body, func(n ast.Node) bool {
		if badMsg != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if !forIsInfinite(pkg, x) {
				return true
			}
			if loopHasExit(idx, pkg, x.Body) {
				return true
			}
			badNode, badMsg = x, "unbounded for-loop with no done/ctx select or conditional exit"
			return false
		case *ast.RangeStmt:
			t := typeOf(pkg.Info, x.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			if doneLike(idx, pkg, x.X) {
				return true
			}
			badNode, badMsg = x, "range over a channel no one provably close()s"
			return false
		}
		return true
	})
	return badNode, badMsg
}

// forIsInfinite reports whether the loop can only exit through its
// body: `for {}` or `for true {}`. Any real condition or three-clause
// header is presumed bounded — that is the analyzer's documented
// optimism; the pessimism lives in the headerless case.
func forIsInfinite(pkg *Package, f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	if tv, ok := pkg.Info.Types[f.Cond]; ok && tv.Value != nil {
		return tv.Value.String() == "true"
	}
	return false
}

// loopHasExit accepts either exit idiom: a top-level if that
// returns/breaks (bounded-counter workers), or a select/receive with
// a done-like channel anywhere in the loop body.
func loopHasExit(idx *goexitIndex, pkg *Package, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if ifStmt, ok := stmt.(*ast.IfStmt); ok && subtreeEscapes(ifStmt) {
			return true
		}
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			for _, clause := range x.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if ch := recvChannel(cc.Comm); ch != nil && doneLike(idx, pkg, ch) {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// A bare blocking receive from a done-like channel.
			if x.Op.String() == "<-" && doneLike(idx, pkg, x.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// subtreeEscapes reports whether a statement subtree contains a
// return or break (ignoring nested function literals and loops,
// whose breaks do not exit the loop under test).
func subtreeEscapes(root ast.Stmt) bool {
	esc := false
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.ReturnStmt:
			esc = true
			return false
		case *ast.BranchStmt:
			if x.Tok.String() == "break" || x.Tok.String() == "goto" {
				esc = true
				return false
			}
		}
		return !esc
	})
	return esc
}

// recvChannel extracts the channel expression of a comm clause's
// receive, if the clause is a receive.
func recvChannel(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				return u.X
			}
		}
	}
	return nil
}

// doneLike reports whether a channel expression is a termination
// signal: ctx.Done() for any context, or a channel some function in
// the program provably close()s.
func doneLike(idx *goexitIndex, pkg *Package, ch ast.Expr) bool {
	switch x := ast.Unparen(ch).(type) {
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return false
		}
		return isContextType(typeOf(pkg.Info, sel.X))
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[x.Sel]; obj != nil && idx.closedObjs[obj] {
			return true
		}
		if named := namedOf(typeOf(pkg.Info, x.X)); named != nil {
			return idx.closedKeys[fieldLockKey(named, x.Sel.Name)]
		}
	case *ast.Ident:
		obj := identObj(pkg.Info, x)
		if obj == nil {
			return false
		}
		if idx.closedObjs[obj] {
			return true
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return idx.closedKeys[obj.Pkg().Path()+"."+obj.Name()]
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	return strings.TrimPrefix(types.TypeString(t, nil), "*") == "context.Context"
}
