package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotalloc enforces the hot-path allocation budget. A function whose
// doc comment carries the `tapo:hotpath` marker declares itself on
// the per-record path of the live monitor (triage Observe, the
// incremental analyzer's Feed loop): it must not allocate in steady
// state, because at line rate every per-record allocation becomes GC
// pressure that the paper's always-on monitoring budget cannot
// absorb. Inside a marked body the analyzer flags the constructs the
// compiler turns into heap allocations:
//
//   - the allocating builtins: append (may grow the backing array),
//     make, and new;
//   - function literals, whose captured variables move to the heap
//     with the closure;
//   - composite literals (and &T{...} forms) passed, assigned or
//     converted to interface types — the boxing allocates.
//
// The check is a marker audit, not escape analysis: an append into
// pre-sized spare capacity never allocates at run time but is still
// flagged, because the marker promises the reader the function cannot
// allocate, and a justified `//lint:allow hotalloc <reason>` is
// exactly the place to record why a flagged construct is safe.
// Functions without the marker are out of scope, and marked functions
// are not followed into their callees: the marker names the audited
// surface.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap-allocating constructs in functions marked tapo:hotpath",
	Run:  runHotalloc,
}

// hotpathMark is the doc-comment marker that opts a function into the
// audit.
const hotpathMark = "tapo:hotpath"

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathMark(fd.Doc) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func hasHotpathMark(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, hotpathMark) {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(),
				"closure heap-allocates its captures in hotpath %s", name)
			// The closure itself is the finding; its body runs under
			// the same report, so don't walk into it.
			return false
		case *ast.CallExpr:
			checkHotCall(pass, x, name)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i < len(x.Lhs) {
					checkHotBoxing(pass, rhs, pass.Info.TypeOf(x.Lhs[i]), name)
				}
			}
		case *ast.ValueSpec:
			for _, v := range x.Values {
				checkHotBoxing(pass, v, pass.Info.TypeOf(x.Type), name)
			}
		}
		return true
	})
}

// checkHotCall flags the allocating builtins and composite-literal
// arguments boxed into interface parameters.
func checkHotCall(pass *Pass, call *ast.CallExpr, name string) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(),
					"append may grow its backing array in hotpath %s; preallocate or recycle through an arena", name)
			case "make":
				pass.Reportf(call.Pos(),
					"make allocates in hotpath %s; hoist the allocation out of the per-record path", name)
			case "new":
				pass.Reportf(call.Pos(),
					"new allocates in hotpath %s; hoist the allocation out of the per-record path", name)
			}
			return
		}
	}
	// Conversion to an interface type: any(T{...}) and friends.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			checkHotBoxing(pass, call.Args[0], tv.Type, name)
		}
		return
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkHotBoxing(pass, arg, pt, name)
	}
}

// checkHotBoxing reports expr when it is a composite literal (or its
// address) landing in an interface-typed slot — the conversion copies
// the value to the heap.
func checkHotBoxing(pass *Pass, expr ast.Expr, dst types.Type, name string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	e := expr
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		e = u.X
	}
	if _, ok := e.(*ast.CompositeLit); !ok {
		return
	}
	pass.Reportf(expr.Pos(),
		"composite literal boxed into an interface heap-allocates in hotpath %s", name)
}
