// Package lint is TAPO's in-repo static-analysis suite: a small,
// dependency-free analysis framework (modelled on the shape of
// golang.org/x/tools/go/analysis, but built only on the standard
// library's go/ast, go/types and `go list -export`) plus the
// analyzers that enforce the repo's own correctness invariants.
//
// The paper's methodology stands or falls on faithfully mimicking
// kernel TCP state from the wire. Several of the rules that make the
// reproduction sound are invisible to the compiler:
//
//   - seqsafe: wire sequence numbers are modular uint32 values; a raw
//     <, >, <=, >= or - on them silently inverts at the 2^32 wrap.
//     Outside internal/seqspace every ordered comparison or distance
//     must go through seqspace.Less/LessEq/Diff or an Unwrapper.
//   - detclock: the simulator, analyzer and ground-truth packages are
//     deterministic by contract — one seed, one output. time.Now,
//     wall-clock timers, the global math/rand state and output emitted
//     in map-iteration order all break that silently.
//   - lockcheck: fields annotated `// guarded by <mu>` must only be
//     touched with the named sibling mutex held (or from a function
//     following the *Locked caller-holds convention, or during
//     construction before the value is shared).
//   - evpurity: the flight recorder observes the analyzer, never
//     steers it. Code guarded by recorder attachment must not mutate
//     analyzer state, so the nil-recorder run is branch-identical;
//     flight observers must not write through the values they are
//     shown.
//   - jsontags: structs serialized on the HTTP/JSONL surfaces carry
//     complete, snake_case, duplicate-free json tags.
//   - hotalloc: functions marked `tapo:hotpath` sit on the live
//     monitor's per-record path and promise not to allocate; the
//     allocating builtins, closures and interface boxing inside them
//     are flagged so the promise is audited, not assumed.
//
// Run the whole suite with:
//
//	go run ./cmd/tapolint ./...
//
// A finding can be suppressed — with a mandatory justification — by a
// directive on the same line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// A reasonless directive is itself a finding. Test files are not
// analyzed: the invariants guard the production analysis paths, and
// tests legitimately reach for wall clocks and raw wire values.
package lint
