package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

// TestWirefreeze drives the full freeze workflow against a seeded
// protocol package: -update-wirefreeze freezes ok/, ok/ then checks
// clean (false-positive guard), bad/ drifts a field rename and a new
// struct without a version bump, and vbump/ bumps the version
// without regenerating. The real repo snapshot is exercised by
// TestRepoClean.
func TestWirefreeze(t *testing.T) {
	oldRoots, oldSnap, oldUpd := lint.WirefreezeRoots, lint.WirefreezeSnapshot, lint.WirefreezeUpdate
	defer func() {
		lint.WirefreezeRoots, lint.WirefreezeSnapshot, lint.WirefreezeUpdate = oldRoots, oldSnap, oldUpd
	}()
	lint.WirefreezeRoots = []lint.WireRoot{{Pkg: "tcpstall/internal/fleet", Type: "Snapshot"}}
	snap := filepath.Join(t.TempDir(), "wire.json")
	lint.WirefreezeSnapshot = snap

	lint.WirefreezeUpdate = true
	linttest.Run(t, lint.Wirefreeze, "testdata/wirefreeze/ok", "tcpstall/internal/fleet")
	lint.WirefreezeUpdate = false
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("update mode did not write the snapshot: %v", err)
	}

	t.Run("clean", func(t *testing.T) {
		linttest.Run(t, lint.Wirefreeze, "testdata/wirefreeze/ok", "tcpstall/internal/fleet")
	})
	t.Run("drift", func(t *testing.T) {
		linttest.Run(t, lint.Wirefreeze, "testdata/wirefreeze/bad", "tcpstall/internal/fleet")
	})
	t.Run("version-bump-without-regen", func(t *testing.T) {
		linttest.Run(t, lint.Wirefreeze, "testdata/wirefreeze/vbump", "tcpstall/internal/fleet")
	})
}

// TestWirefreezeMissingSnapshot: with no committed snapshot the
// analyzer demands one rather than passing vacuously.
func TestWirefreezeMissingSnapshot(t *testing.T) {
	oldRoots, oldSnap := lint.WirefreezeRoots, lint.WirefreezeSnapshot
	defer func() { lint.WirefreezeRoots, lint.WirefreezeSnapshot = oldRoots, oldSnap }()
	lint.WirefreezeRoots = []lint.WireRoot{{Pkg: "tcpstall/internal/fleet", Type: "Snapshot"}}
	lint.WirefreezeSnapshot = filepath.Join(t.TempDir(), "absent.json")

	pkg, err := lint.LoadDir("testdata/wirefreeze/ok", "tcpstall/internal/fleet")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.Wirefreeze})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one missing-snapshot finding, got %v", diags)
	}
}
