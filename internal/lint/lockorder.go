package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder builds a whole-program lock-acquisition graph and fails
// on any cycle. Nodes are mutexes identified structurally —
// `pkg.Type.field` for a sync.Mutex/RWMutex struct field,
// `pkg.var` for a package-level mutex — so the same lock is one node
// no matter which package observes it. Edges come from two sources:
//
//   - direct nesting: a function that calls `b.mu2.Lock()` while an
//     earlier `a.mu1.Lock()` in the same body is still outstanding
//     contributes mu1 → mu2 (a plain Unlock releases; a deferred
//     Unlock holds to function end);
//   - calls: a function holding mu1 that calls (transitively, over
//     the go/types-resolved static call graph) anything acquiring mu2
//     contributes mu1 → mu2 at the call site.
//
// Functions following the *Locked suffix convention are seeded as
// holding their receiver's primary mutex — the `// guarded by`
// annotated field named mu, or the only candidate when that is
// unambiguous — which is how the guarded-by contracts feed the
// graph: publishLocked counts as holding Head.mu even though the
// Lock() call is in its caller. A type with several mutexes seeds
// only the primary: registerLocked holds Member.mu by convention,
// and demonstrably not the batchMu its own body acquires.
//
// A cycle — including a self-edge, which is a single-goroutine
// re-acquisition deadlock on Go's non-reentrant mutexes — is reported
// once, at its lexicographically first edge, listing every edge with
// its acquisition site. The walk is intra-procedurally linear (no
// path sensitivity); the held-set approximation is the same one
// lockcheck documents.
var Lockorder = &Analyzer{
	Name:       "lockorder",
	Doc:        "whole-program lock-acquisition graph must be acyclic (deadlock freedom)",
	RunProgram: runLockorder,
}

// loAcq is one lock acquisition with a representative site.
type loAcq struct {
	pkg *Package
	pos token.Pos
}

// loCall is one static call site with the locks held across it.
type loCall struct {
	callee string // types.Func FullName
	held   []string
	pkg    *Package
	pos    token.Pos
}

// loEdge is one ordered pair in the acquisition graph.
type loEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
}

// loSummary is the per-function abstraction the fixpoint runs on.
type loSummary struct {
	acquires map[string]loAcq
	calls    []loCall
	edges    []loEdge
}

func runLockorder(pp *ProgramPass) error {
	summaries := map[string]*loSummary{}
	for _, pkg := range pp.Pkgs {
		annotated := annotatedMutexes(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				summarizeLocks(summaries, pkg, fd, fn, annotated)
			}
		}
	}

	edges := resolveLockEdges(summaries)
	reportLockCycles(pp, edges)
	return nil
}

// annotatedMutexes maps each named struct type in pkg to the set of
// sibling mutexes its `// guarded by <mu>` annotations name.
func annotatedMutexes(pkg *Package) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					text := commentText(field.Doc) + "\n" + commentText(field.Comment)
					m := strictGuardRe.FindStringSubmatch(text)
					if m == nil || !hasSiblingMutex(st, m[1]) {
						continue
					}
					if out[ts.Name.Name] == nil {
						out[ts.Name.Name] = map[string]bool{}
					}
					out[ts.Name.Name][m[1]] = true
				}
			}
		}
	}
	return out
}

// summarizeLocks walks one function body in source order, tracking
// the held-lock set through Lock/Unlock pairs and recording direct
// nesting edges plus every static call with its held snapshot.
// Function literals run at an unknown time with an unknown held-set
// (a cancel closure built under a lock fires long after it is
// released), so each gets its own anonymous summary with nothing
// held instead of inheriting the enclosing walk's state.
func summarizeLocks(summaries map[string]*loSummary, pkg *Package, fd *ast.FuncDecl, fn *types.Func, annotated map[string]map[string]bool) {
	name := fn.FullName()
	seed := lockedSeed(pkg, fd, fn, annotated)
	// A *Locked function that explicitly acquires one of its
	// receiver's mutexes demonstrably does not already hold it: the
	// suffix convention names the other one. Dropping the acquired
	// mutex from the seed avoids fabricating a self-deadlock out of
	// registerLocked taking batchMu while convention-holding mu.
	if len(seed) > 0 {
		selfAcquired := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if key, kind := mutexCallKey(pkg, call); kind == "lock" {
					selfAcquired[key] = true
				}
			}
			return true
		})
		kept := seed[:0]
		for _, k := range seed {
			if !selfAcquired[k] {
				kept = append(kept, k)
			}
		}
		seed = kept
	}
	lits := summarizeLockBody(summaries, pkg, fd.Body, name, seed)
	for i := 0; i < len(lits); i++ {
		lits = append(lits, summarizeLockBody(summaries, pkg, lits[i].Body,
			fmt.Sprintf("%s$%d", name, i+1), nil)...)
	}
}

// summarizeLockBody walks one body (function or literal) and stores
// its summary under name, returning the literals it skipped over for
// the caller to summarize separately.
func summarizeLockBody(summaries map[string]*loSummary, pkg *Package, body *ast.BlockStmt, name string, seed []string) []*ast.FuncLit {
	s := &loSummary{acquires: map[string]loAcq{}}
	held := map[string]bool{}
	for _, k := range seed {
		held[k] = true
	}
	deferred := map[*ast.CallExpr]bool{}
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, x)
			return false
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.CallExpr:
			key, kind := mutexCallKey(pkg, x)
			switch kind {
			case "lock":
				for _, h := range sortedKeysOf(held) {
					s.edges = append(s.edges, loEdge{from: h, to: key, pkg: pkg, pos: x.Pos()})
				}
				if _, ok := s.acquires[key]; !ok {
					s.acquires[key] = loAcq{pkg: pkg, pos: x.Pos()}
				}
				held[key] = true
			case "unlock":
				if !deferred[x] {
					delete(held, key)
				}
			default:
				if callee := funcObjOf(pkg.Info, x); callee != nil {
					s.calls = append(s.calls, loCall{
						callee: callee.FullName(),
						held:   sortedKeysOf(held),
						pkg:    pkg,
						pos:    x.Pos(),
					})
				}
			}
		}
		return true
	})
	summaries[name] = s
	return lits
}

// lockedSeed returns the lock key a *Locked-convention function is
// entered holding: its receiver's primary mutex. The bare Locked
// suffix names one lock, so a type with several mutexes seeds the
// annotated field called mu (the repo-wide primary-mutex name), or
// whichever candidate is unambiguous; when no single mutex can be
// singled out, nothing is seeded — the caller's held-set at the call
// site still contributes the edges.
func lockedSeed(pkg *Package, fd *ast.FuncDecl, fn *types.Func, annotated map[string]map[string]bool) []string {
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	named := namedOf(recv.Type())
	if named == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	want := annotated[named.Obj().Name()]
	var candidates []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !isMutexType(f.Type()) {
			continue
		}
		if want != nil && !want[f.Name()] {
			continue
		}
		if f.Name() == "mu" {
			return []string{fieldLockKey(named, f.Name())}
		}
		candidates = append(candidates, fieldLockKey(named, f.Name()))
	}
	if len(candidates) == 1 {
		return candidates
	}
	return nil
}

// mutexCallKey classifies a call as a mutex acquisition or release
// and returns the lock's structural key. kind is "lock", "unlock" or
// "" (not a trackable mutex operation).
func mutexCallKey(pkg *Package, call *ast.CallExpr) (key, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	// The receiver expression must itself be mutex-typed; this also
	// covers embedded sync.Mutex via a named lockable type.
	if !isMutexType(typeOf(pkg.Info, sel.X)) {
		return "", ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		named := namedOf(typeOf(pkg.Info, x.X))
		if named == nil {
			return "", ""
		}
		return fieldLockKey(named, x.Sel.Name), kind
	case *ast.Ident:
		obj := identObj(pkg.Info, x)
		if obj == nil || obj.Pkg() == nil {
			return "", ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), kind
		}
	}
	// Function-local mutexes cannot participate in a cross-function
	// ordering cycle under this model; ignore them.
	return "", ""
}

// fieldLockKey names a mutex field of a named type structurally.
func fieldLockKey(named *types.Named, field string) string {
	pkgPath := ""
	if p := named.Obj().Pkg(); p != nil {
		pkgPath = p.Path()
	}
	return pkgPath + "." + named.Obj().Name() + "." + field
}

// namedOf unwraps pointers/aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func sortedKeysOf(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// resolveLockEdges closes the per-function summaries over the static
// call graph: each function's transitive acquisition set is the
// fixpoint of its own acquisitions plus its callees', and every call
// made with locks held contributes held → transitively-acquired
// edges at the call site.
func resolveLockEdges(summaries map[string]*loSummary) []loEdge {
	names := make([]string, 0, len(summaries))
	for name := range summaries {
		names = append(names, name)
	}
	sort.Strings(names)

	trans := map[string]map[string]loAcq{}
	for name, s := range summaries {
		t := map[string]loAcq{}
		for k, a := range s.acquires {
			t[k] = a
		}
		trans[name] = t
	}
	for changed := true; changed; {
		changed = false
		for _, name := range names {
			t := trans[name]
			for _, c := range summaries[name].calls {
				for k, a := range trans[c.callee] {
					if _, ok := t[k]; !ok {
						t[k] = a
						changed = true
					}
				}
			}
		}
	}

	var edges []loEdge
	for _, name := range names {
		s := summaries[name]
		edges = append(edges, s.edges...)
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			acq := trans[c.callee]
			for _, h := range c.held {
				for _, k := range sortedAcqKeys(acq) {
					edges = append(edges, loEdge{from: h, to: k, pkg: c.pkg, pos: c.pos})
				}
			}
		}
	}
	return edges
}

func sortedAcqKeys(m map[string]loAcq) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reportLockCycles finds strongly connected components of the edge
// set and reports each component holding a cycle exactly once.
func reportLockCycles(pp *ProgramPass, edges []loEdge) {
	// Deduplicate to one representative edge per ordered pair,
	// keeping the first in (from, to, position) order for stable
	// messages across runs.
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.pkg.Fset.Position(a.pos).String() < b.pkg.Fset.Position(b.pos).String()
	})
	adj := map[string][]loEdge{}
	seen := map[[2]string]bool{}
	var nodes []string
	nodeSeen := map[string]bool{}
	for _, e := range edges {
		pair := [2]string{e.from, e.to}
		if seen[pair] {
			continue
		}
		seen[pair] = true
		adj[e.from] = append(adj[e.from], e)
		for _, n := range []string{e.from, e.to} {
			if !nodeSeen[n] {
				nodeSeen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)

	for _, scc := range stronglyConnected(nodes, adj) {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var cyc []loEdge
		for _, n := range scc {
			for _, e := range adj[n] {
				if inSCC[e.to] && (len(scc) > 1 || e.to == e.from) {
					cyc = append(cyc, e)
				}
			}
		}
		if len(cyc) == 0 {
			continue
		}
		sort.Slice(cyc, func(i, j int) bool {
			if cyc[i].from != cyc[j].from {
				return cyc[i].from < cyc[j].from
			}
			return cyc[i].to < cyc[j].to
		})
		var parts []string
		for _, e := range cyc {
			parts = append(parts, fmt.Sprintf("%s → %s (%s)",
				shortLockKey(e.from), shortLockKey(e.to),
				e.pkg.Fset.Position(e.pos)))
		}
		first := cyc[0]
		pp.Reportf(first.pkg, first.pos,
			"lock-order cycle (potential deadlock): %s; break the cycle or justify with lint:allow",
			strings.Join(parts, ", "))
	}
}

// shortLockKey trims the module path for readable messages while
// keeping keys unambiguous enough in practice (last path element).
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// stronglyConnected is an iterative Tarjan over string nodes,
// returning only components that can contain a cycle (size > 1, or a
// single node with a self-edge — the caller re-checks the latter).
func stronglyConnected(nodes []string, adj map[string][]loEdge) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		ei   int
	}
	for _, start := range nodes {
		if _, ok := index[start]; ok {
			continue
		}
		frames := []frame{{node: start}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.node]) {
				w := adj[f.node][f.ei].to
				f.ei++
				if _, ok := index[w]; !ok {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
			if low[f.node] == index[f.node] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.node {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
