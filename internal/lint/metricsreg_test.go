package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

// TestMetricsreg scopes the analyzer to a seeded exporter package
// with its own docs file: duplicate/orphaned TYPE lines, illegal
// family and label names, samples for undeclared families, one
// emitted-but-undocumented family, one documented-but-gone docs row,
// and the indirect writeHistogram declaration pattern as a guard.
func TestMetricsreg(t *testing.T) {
	oldScope, oldDocs := lint.MetricsregScope, lint.MetricsregDocs
	defer func() { lint.MetricsregScope, lint.MetricsregDocs = oldScope, oldDocs }()
	lint.MetricsregScope = []string{"tcpstall/internal/live/mreg"}
	lint.MetricsregDocs = []string{"testdata/metricsreg/docs.md"}

	linttest.Run(t, lint.Metricsreg, "testdata/metricsreg/mreg", "tcpstall/internal/live/mreg")
}
