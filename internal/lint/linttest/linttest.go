// Package linttest runs lint analyzers against seeded testdata
// packages, in the style of golang.org/x/tools/go/analysis/analysistest
// but stdlib-only. A testdata package marks each expected finding
// with a comment on the offending line:
//
//	seq < ack // want `wraps at 2\^32`
//
// Each backquoted chunk is a regexp that must match exactly one
// finding on that line; findings with no matching want, and wants
// with no matching finding, fail the test. Lines without a want
// comment are false-positive guards: any finding there fails too.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"tcpstall/internal/lint"
)

var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads the testdata package in dir as if it lived at asPath
// (path-sensitive analyzers key on the import path) and checks the
// analyzer's findings against the package's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		re   *regexp.Regexp
		line int
		file string
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					wants = append(wants, &want{re: re, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.line == d.Pos.Line && w.file == d.Pos.Filename && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s wanted a finding matching %q, got none", fmt.Sprintf("%s:%d", w.file, w.line), w.re)
		}
	}
}
