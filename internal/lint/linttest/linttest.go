// Package linttest runs lint analyzers against seeded testdata
// packages, in the style of golang.org/x/tools/go/analysis/analysistest
// but stdlib-only. A testdata package marks each expected finding
// with a comment on the offending line:
//
//	seq < ack // want `wraps at 2\^32`
//
// Each backquoted chunk is a regexp that must match exactly one
// finding on that line; findings with no matching want, and wants
// with no matching finding, fail the test. Lines without a want
// comment are false-positive guards: any finding there fails too.
//
// Whole-program analyzers can anchor findings outside Go source
// (metricsreg flags stale rows in README.md). Those are expected
// with the file-suffix form, which matches one finding in any file
// whose name ends with the suffix, on any line:
//
//	// want@docs.md `docs mention metric family`
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"tcpstall/internal/lint"
)

var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads the testdata package in dir as if it lived at asPath
// (path-sensitive analyzers key on the import path) and checks the
// analyzer's findings against the package's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	problems, err := Check(a, dir, asPath)
	if err != nil {
		t.Fatalf("%s on %s: %v", a.Name, dir, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// Check is the harness core, split from Run so its own error paths
// are testable: a fatal error (unloadable testdata, malformed want
// comment) comes back as err, expectation mismatches as problems.
func Check(a *lint.Analyzer, dir, asPath string) (problems []string, err error) {
	pkg, err := lint.LoadDir(dir, asPath)
	if err != nil {
		return nil, fmt.Errorf("loading testdata: %w", err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		return nil, fmt.Errorf("running analyzer: %w", err)
	}

	type want struct {
		re     *regexp.Regexp
		line   int
		file   string // exact filename, or "" for suffix form
		suffix string
		hit    bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var suffix string
				switch {
				case strings.HasPrefix(text, "want "):
				case strings.HasPrefix(text, "want@"):
					rest := strings.TrimPrefix(text, "want@")
					i := strings.IndexAny(rest, " \t")
					if i < 0 {
						return nil, fmt.Errorf("%s: want@ comment needs a file suffix and a `regexp`", pkg.Fset.Position(c.Pos()))
					}
					suffix = rest[:i]
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s: want comment carries no `regexp`", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					w := &want{re: re, line: pos.Line, file: pos.Filename, suffix: suffix}
					if suffix != "" {
						w.file = ""
					}
					wants = append(wants, w)
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || !w.re.MatchString(d.Message) {
				continue
			}
			if w.suffix != "" {
				if !strings.HasSuffix(d.Pos.Filename, w.suffix) {
					continue
				}
			} else if w.line != d.Pos.Line || w.file != d.Pos.Filename {
				continue
			}
			w.hit = true
			matched = true
			break
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			where := fmt.Sprintf("%s:%d", w.file, w.line)
			if w.suffix != "" {
				where = "file ending " + w.suffix
			}
			problems = append(problems, fmt.Sprintf("%s wanted a finding matching %q, got none", where, w.re))
		}
	}
	return problems, nil
}
