// Package badwant carries a malformed expectation: the want regexp
// does not compile, which the harness must surface as a fatal error,
// not a silent pass.
package badwant

var X = 1 // want `unclosed [`
