// Package noregexp carries a want comment with no backquoted regexp
// at all — an expectation that can never match anything is a typo,
// and the harness must say so.
package noregexp

var Z = 2 // want a finding about Z
