// Package broken does not type-check: the harness must report the
// load failure instead of running the analyzer on garbage.
package broken

var Y = undefinedIdentifier
