package linttest

import (
	"strings"
	"testing"

	"tcpstall/internal/lint"
)

// TestCheckBadWantRegexp: a want comment whose regexp does not
// compile must come back as a fatal error naming the position, not
// as a silent pass or a mismatch list.
func TestCheckBadWantRegexp(t *testing.T) {
	_, err := Check(lint.Jsontags, "testdata/badwant", "tcpstall/internal/lint/badwant")
	if err == nil {
		t.Fatal("expected an error for a non-compiling want regexp")
	}
	if !strings.Contains(err.Error(), "bad want regexp") {
		t.Errorf("error should name the bad regexp, got: %v", err)
	}
	if !strings.Contains(err.Error(), "badwant.go:") {
		t.Errorf("error should carry the comment position, got: %v", err)
	}
}

// TestCheckWantWithoutRegexp: a want comment with no backquoted
// pattern is an expectation that can never match — a typo the
// harness must refuse.
func TestCheckWantWithoutRegexp(t *testing.T) {
	_, err := Check(lint.Jsontags, "testdata/noregexp", "tcpstall/internal/lint/noregexp")
	if err == nil {
		t.Fatal("expected an error for a want comment with no `regexp`")
	}
	if !strings.Contains(err.Error(), "no `regexp`") {
		t.Errorf("error should explain the missing pattern, got: %v", err)
	}
}

// TestCheckBrokenPackage: testdata that fails to type-check must
// surface the load error instead of analyzing garbage.
func TestCheckBrokenPackage(t *testing.T) {
	_, err := Check(lint.Jsontags, "testdata/broken", "tcpstall/internal/lint/broken")
	if err == nil {
		t.Fatal("expected a load error for a package that does not type-check")
	}
	if !strings.Contains(err.Error(), "loading testdata") {
		t.Errorf("error should be attributed to loading, got: %v", err)
	}
}

// TestCheckMissingDir: a nonexistent testdata directory is a load
// error, not a pass with zero wants.
func TestCheckMissingDir(t *testing.T) {
	if _, err := Check(lint.Jsontags, "testdata/no-such-dir", "tcpstall/x"); err == nil {
		t.Fatal("expected an error for a missing testdata directory")
	}
}
