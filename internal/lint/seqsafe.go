package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Seqsafe flags raw ordered comparisons and subtraction on uint32
// TCP sequence/ack values outside internal/seqspace. Wire sequence
// numbers are modular: `a < b` inverts when the flow wraps 2^32, and
// `a - b` is only a distance after int32 reinterpretation. The
// wrap-safe forms are seqspace.Less/LessEq/Diff, or unwrapping to
// uint64 stream offsets with a seqspace.Unwrapper.
//
// An operand is sequence-like when its uint32-typed expression is
// named like a sequence variable (seq/ack/isn/una/nxt/sack, or a
// SACK block edge). Equality tests and comparisons against constants
// are exempt: they are presence checks, not ordering.
var Seqsafe = &Analyzer{
	Name: "seqsafe",
	Doc:  "flags raw uint32 sequence-number ordering/subtraction outside internal/seqspace",
	Run:  runSeqsafe,
}

// seqNameRe matches identifiers that carry wire sequence values.
var seqNameRe = regexp.MustCompile(`(?i)(seq|ack|isn|una|nxt|sack)`)

// seqEdgeRe matches the SACK block edge field names on their own.
var seqEdgeRe = regexp.MustCompile(`^(Left|Right)$`)

func runSeqsafe(pass *Pass) error {
	if pkgIs(pass.Pkg.Path(), modulePkg("internal/seqspace")) {
		return nil
	}
	pass.Preorder(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.SUB:
		default:
			return true
		}
		if !isUint32(pass, be.X) || !isUint32(pass, be.Y) {
			return true
		}
		// Constant operands are presence/sanity checks (seq > 0), not
		// modular ordering.
		if isConst(pass, be.X) || isConst(pass, be.Y) {
			return true
		}
		if !seqNamed(be.X) && !seqNamed(be.Y) {
			return true
		}
		verb, fix := "comparison", "seqspace.Less/LessEq"
		if be.Op == token.SUB {
			verb, fix = "subtraction", "seqspace.Diff"
		}
		pass.Reportf(be.OpPos,
			"raw uint32 sequence %s wraps at 2^32; use %s or a seqspace.Unwrapper", verb, fix)
		return true
	})
	return nil
}

func isUint32(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint32
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// seqNamed reports whether the expression's name marks it as a wire
// sequence value. It looks through parens and conversions and keys on
// the final identifier: x, pkt.Seq, s.SndNxt(), blk.Left.
func seqNamed(e ast.Expr) bool {
	name := ""
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		// A conversion or accessor: uint32(off), s.SndNxt().
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		// uint32(x) conversions: judge the converted expression.
		if name == "uint32" && len(x.Args) == 1 {
			return seqNamed(x.Args[0])
		}
	}
	if name == "" {
		return false
	}
	return seqNameRe.MatchString(name) || seqEdgeRe.MatchString(name)
}
