package lint_test

import (
	"testing"

	"tcpstall/internal/lint"
	"tcpstall/internal/lint/linttest"
)

func TestEvpurityCoreSide(t *testing.T) {
	linttest.Run(t, lint.Evpurity, "testdata/evpurity/coreside", "tcpstall/internal/core/coreside")
}

func TestEvpurityFlightSide(t *testing.T) {
	linttest.Run(t, lint.Evpurity, "testdata/evpurity/flightside", "tcpstall/internal/flight/flightside")
}

func TestEvpurityTriageSide(t *testing.T) {
	linttest.Run(t, lint.Evpurity, "testdata/evpurity/triageside", "tcpstall/internal/triage/triageside")
}

func TestEvpurityOutOfScopePagesSilentGuard(t *testing.T) {
	// The triageside patterns outside the triage path (e.g. under
	// internal/live) stay policy-free.
	pkg, err := lint.LoadDir("testdata/evpurity/triageside", "tcpstall/internal/live/triageside")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.Evpurity})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("expected no findings outside triage, got %v", diags)
	}
}

func TestEvpurityOutOfScopePackagesSilent(t *testing.T) {
	// The same guarded-mutation patterns outside core/flight (e.g. the
	// live aggregation layer counting flight drops) are policy-free.
	pkg, err := lint.LoadDir("testdata/evpurity/coreside", "tcpstall/internal/live/coreside")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.Evpurity})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("expected no findings outside core/flight, got %v", diags)
	}
}
