package triage

// Arena recycles flow ring backings. In triage mode the per-flow
// rings dominate the monitor's heap, and short-lived flows would
// otherwise allocate a fresh ring ladder (16, 32, … RingCap slots)
// each, churning the GC at connection rate. A shard hands its Arena
// to every Flow it creates and calls Release when the flow closes;
// the next flow's grow reuses the returned backing instead of
// allocating.
//
// Not safe for concurrent use: each live shard owns exactly one
// Arena, mirroring the ownership rule for Flow itself.
type Arena struct {
	// free holds returned backings keyed by capacity. Rings grow
	// through a fixed ladder of sizes, so exact-size reuse hits
	// almost always.
	free map[int][][]slot
	held int
}

// arenaMaxHeld bounds the total slices an Arena retains so a burst of
// closed flows cannot pin memory forever; beyond it, Release lets the
// GC take the backing.
const arenaMaxHeld = 256

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][][]slot)}
}

// get returns a backing of exactly n slots, recycled when available.
// Returned slots are zeroed (put clears them), so a recycled ring is
// indistinguishable from a fresh one.
func (a *Arena) get(n int) []slot {
	if a != nil {
		if l := a.free[n]; len(l) > 0 {
			s := l[len(l)-1]
			l[len(l)-1] = nil
			a.free[n] = l[:len(l)-1]
			a.held--
			return s
		}
	}
	return make([]slot, n)
}

// put hands a backing back for reuse. Slots are cleared so no flow
// history leaks into the next owner.
func (a *Arena) put(s []slot) {
	if a == nil || len(s) == 0 || a.held >= arenaMaxHeld {
		return
	}
	clear(s)
	a.free[len(s)] = append(a.free[len(s)], s)
	a.held++
}

// Held reports how many backings the arena currently retains
// (observability for tests and the monitor's self-metrics).
func (a *Arena) Held() int {
	if a == nil {
		return 0
	}
	return a.held
}

// NewFlowIn returns a fast-path tracker whose ring backings come from
// and return to a (which may be nil, degrading to NewFlow behavior).
func NewFlowIn(cfg Config, a *Arena) *Flow {
	f := NewFlow(cfg)
	f.arena = a
	return f
}

// Release returns the flow's ring to its arena. The flow must not be
// used afterwards; the live monitor calls this when it evicts a flow.
func (f *Flow) Release() {
	if f.ring != nil {
		f.arena.put(f.ring)
		f.ring = nil
	}
}
