package triage

import (
	"testing"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// rec builds one record at t milliseconds.
func rec(tms int, dir tcpsim.Dir, seg tcpsim.Segment) trace.Record {
	return trace.Record{
		T:   sim.Time(time.Duration(tms) * time.Millisecond),
		Dir: dir,
		Seg: seg,
	}
}

// handshake returns the canonical opening exchange ending at 20ms
// with a 10ms handshake RTT sample seeded: client SYN at 0, server
// SYN-ACK at 10, client ACK at 20.
func handshake() []trace.Record {
	return []trace.Record{
		rec(0, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagSYN, Seq: 100, Wnd: 65535}),
		rec(10, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: 0, Ack: 101, Wnd: 65535}),
		rec(20, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: 1, Wnd: 65535}),
	}
}

func feedAll(f *Flow, recs []trace.Record) Symptom {
	last := SymNone
	for i := range recs {
		sym, _, _ := f.Observe(&recs[i])
		if sym != SymNone {
			last = sym
		}
	}
	return last
}

func TestDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.RingCap != 1024 || c.Tau != 2 || c.MinRTO != 200*time.Millisecond ||
		c.InitRTO != time.Second || c.DupBurst != 2 || c.DemoteAfter != 2*time.Second {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c := (Config{RingCap: 1}).WithDefaults(); c.RingCap != 2 {
		t.Fatalf("RingCap=1 must clamp to 2, got %d", c.RingCap)
	}
}

// TestThresholdBeforeRTT: before any RTT sample the gap threshold is
// InitRTO — a sub-InitRTO gap stays quiet, anything beyond promotes.
func TestThresholdBeforeRTT(t *testing.T) {
	f := NewFlow(Config{})
	r0 := rec(0, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535})
	if sym, _, _ := f.Observe(&r0); sym != SymNone {
		t.Fatalf("first record raised %v", sym)
	}
	r1 := rec(999, tcpsim.DirOut, tcpsim.Segment{Seq: 1001, Len: 1000, Wnd: 65535})
	if sym, _, _ := f.Observe(&r1); sym == SymGap {
		t.Fatalf("999ms gap under InitRTO=1s raised SymGap")
	}
	r2 := rec(2001, tcpsim.DirOut, tcpsim.Segment{Seq: 2001, Len: 1000, Wnd: 65535})
	if sym, _, _ := f.Observe(&r2); sym != SymGap {
		t.Fatalf("1002ms gap over InitRTO did not raise SymGap")
	}
}

// TestHandshakeSeedLowersThreshold: the SYN-ACK→ACK handshake sample
// (10ms here) drops the gap threshold to min(2·10ms, 10ms+MinRTO) =
// 20ms.
func TestHandshakeSeedLowersThreshold(t *testing.T) {
	f := NewFlow(Config{})
	feedAll(f, handshake())
	if rtt, ok := f.MinRTT(); !ok || rtt != 10*time.Millisecond {
		t.Fatalf("handshake seed: got (%v,%v), want (10ms,true)", rtt, ok)
	}
	// 19ms gap: under 2·minRTT, quiet.
	r := rec(39, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535})
	if sym, _, _ := f.Observe(&r); sym != SymNone {
		t.Fatalf("19ms gap raised %v", sym)
	}
	// 21ms gap: over 2·minRTT = 20ms, promotes.
	r = rec(60, tcpsim.DirOut, tcpsim.Segment{Seq: 1001, Len: 1000, Wnd: 65535})
	if sym, _, _ := f.Observe(&r); sym != SymGap {
		t.Fatalf("21ms gap did not raise SymGap")
	}
}

// TestThresholdMinRTOCap: for a large minRTT the threshold is
// minRTT+MinRTO, not 2·minRTT — so an ordinary one-RTT quiet period
// never promotes, but the analyzer's RTO floor is still respected.
func TestThresholdMinRTOCap(t *testing.T) {
	f := NewFlow(Config{})
	f.sample(500 * time.Millisecond)
	if got, want := f.threshold(), 700*time.Millisecond; got != want {
		t.Fatalf("threshold=%v, want %v (minRTT+MinRTO)", got, want)
	}
	f2 := NewFlow(Config{})
	f2.sample(50 * time.Millisecond)
	if got, want := f2.threshold(), 100*time.Millisecond; got != want {
		t.Fatalf("threshold=%v, want %v (2·minRTT)", got, want)
	}
}

// TestTSEcrSample: an ack-advance with TSEcr takes the exact
// analyzer sample; the minimum only ratchets down.
func TestTSEcrSample(t *testing.T) {
	f := NewFlow(Config{})
	recs := handshake()
	recs = append(recs,
		rec(30, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535,
			TSVal: sim.Time(30 * time.Millisecond)}),
		rec(38, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: 1001, Wnd: 65535,
			TSEcr: sim.Time(30 * time.Millisecond)}),
	)
	feedAll(f, recs)
	if rtt, _ := f.MinRTT(); rtt != 8*time.Millisecond {
		t.Fatalf("TSEcr sample: minRTT=%v, want 8ms", rtt)
	}
}

// TestSurrogateSample: without timestamps, an ack-advance samples the
// time since the latest data send — a lower bound of the analyzer's
// edge sample.
func TestSurrogateSample(t *testing.T) {
	f := NewFlow(Config{})
	recs := []trace.Record{
		rec(0, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535}),
		rec(5, tcpsim.DirOut, tcpsim.Segment{Seq: 1001, Len: 1000, Wnd: 65535}),
		rec(12, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Ack: 2001, Wnd: 65535}),
	}
	feedAll(f, recs)
	// 12ms − 5ms (latest send) = 7ms, ≤ the true edge RTT of 12ms.
	if rtt, ok := f.MinRTT(); !ok || rtt != 7*time.Millisecond {
		t.Fatalf("surrogate sample: got (%v,%v), want (7ms,true)", rtt, ok)
	}
}

func TestSymRetrans(t *testing.T) {
	f := NewFlow(Config{})
	recs := []trace.Record{
		rec(0, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535}),
		rec(1, tcpsim.DirOut, tcpsim.Segment{Seq: 1001, Len: 1000, Wnd: 65535}),
	}
	feedAll(f, recs)
	r := rec(2, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535})
	if sym, _, _ := f.Observe(&r); sym != SymRetrans {
		t.Fatalf("resend below edge raised %v, want SymRetrans", sym)
	}
}

func TestSymZeroWindow(t *testing.T) {
	f := NewFlow(Config{})
	r0 := rec(0, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535})
	f.Observe(&r0)
	r := rec(1, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Ack: 1001, Wnd: 0})
	if sym, _, _ := f.Observe(&r); sym != SymZeroWindow {
		t.Fatalf("zero window raised %v", sym)
	}
}

// TestSymDupAck: repeated pure ACKs at the cumulative edge with SACK
// promote at DupBurst; plain window updates (changed Wnd, no SACK) do
// not count.
func TestSymDupAck(t *testing.T) {
	f := NewFlow(Config{})
	recs := []trace.Record{
		rec(0, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535}),
		rec(1, tcpsim.DirOut, tcpsim.Segment{Seq: 1001, Len: 1000, Wnd: 65535}),
		rec(2, tcpsim.DirOut, tcpsim.Segment{Seq: 2001, Len: 1000, Wnd: 65535}),
		rec(10, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Ack: 1001, Wnd: 65535}),
	}
	feedAll(f, recs)
	dup := func(tms int) trace.Record {
		return rec(tms, tcpsim.DirIn, tcpsim.Segment{
			Flags: packet.FlagACK, Ack: 1001, Wnd: 65535,
			SACK: packet.SACKBlocks(packet.SACKBlock{Left: 2001, Right: 3001}),
		})
	}
	d1 := dup(11)
	if sym, _, _ := f.Observe(&d1); sym != SymNone {
		t.Fatalf("first dupack raised %v", sym)
	}
	d2 := dup(12)
	if sym, _, _ := f.Observe(&d2); sym != SymDupAck {
		t.Fatalf("second dupack raised %v, want SymDupAck", sym)
	}

	// Window updates at the edge are not dupacks.
	g := NewFlow(Config{})
	feedAll(g, recs)
	w := rec(11, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Ack: 1001, Wnd: 70000})
	g.Observe(&w)
	w2 := rec(12, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Ack: 1001, Wnd: 80000})
	if sym, _, _ := g.Observe(&w2); sym == SymDupAck {
		t.Fatalf("window updates counted as dupacks")
	}
}

// TestSymNoAdvance: records keep flowing (so no SymGap) while the
// cumulative ACK stays pinned past the hold threshold.
func TestSymNoAdvance(t *testing.T) {
	f := NewFlow(Config{})
	recs := append(handshake(),
		rec(30, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 1000, Wnd: 65535}),
	)
	feedAll(f, recs)
	// minRTT=10ms → threshold 20ms → hold max(80ms, MinRTO=200ms) =
	// 200ms. Feed keepalive-style window updates every 15ms (< 20ms
	// gap threshold) until the pin exceeds the hold.
	last := SymNone
	for tms := 45; tms < 300; tms += 15 {
		r := rec(tms, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 65535 + tms})
		sym, _, _ := f.Observe(&r)
		if sym != SymNone {
			last = sym
			break
		}
	}
	if last != SymNoAdvance {
		t.Fatalf("pinned ACK raised %v, want SymNoAdvance", last)
	}
}

// TestRingGrowthAndOverwrite pins the ring mechanics: geometric
// growth from 16, capacity clamp, oldest-first overwrite, and
// absolute index accounting.
func TestRingGrowthAndOverwrite(t *testing.T) {
	f := NewFlow(Config{RingCap: 32})
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, rec(i, tcpsim.DirOut, tcpsim.Segment{Seq: uint32(1 + i*100), Len: 100, Wnd: 65535}))
	}
	for i := range recs {
		f.Observe(&recs[i])
	}
	if f.Total() != 100 {
		t.Fatalf("Total=%d", f.Total())
	}
	if got := f.RingStart(); got != 100-32 {
		t.Fatalf("RingStart=%d, want %d", got, 100-32)
	}
	// Attach truncates (history lost) and replay yields exactly the
	// retained suffix in order.
	if !f.Attach() {
		t.Fatal("Attach on an overflowed ring must report truncation")
	}
	if !f.Truncated() {
		t.Fatal("Truncated() false after truncating attach")
	}
	var got []trace.Record
	f.ReplayUnfed(func(r *trace.Record) { got = append(got, *r) })
	if len(got) != 32 {
		t.Fatalf("replayed %d records, want 32", len(got))
	}
	for i, r := range got {
		want := recs[100-32+i]
		if r.T != want.T || r.Seg.Seq != want.Seg.Seq {
			t.Fatalf("replay[%d] = {T:%v Seq:%d}, want {T:%v Seq:%d}",
				i, r.T, r.Seg.Seq, want.T, want.Seg.Seq)
		}
	}
	if f.Fed() != f.Total() {
		t.Fatalf("Fed=%d after full replay, want %d", f.Fed(), f.Total())
	}
}

// TestAttachWithinRingNotTruncated: promotion while the whole history
// is still buffered replays from record zero and reports no loss.
func TestAttachWithinRingNotTruncated(t *testing.T) {
	f := NewFlow(Config{RingCap: 64})
	for i := 0; i < 10; i++ {
		r := rec(i, tcpsim.DirOut, tcpsim.Segment{Seq: uint32(1 + i*100), Len: 100, Wnd: 65535})
		f.Observe(&r)
	}
	if f.Attach() {
		t.Fatal("Attach within ring capacity reported truncation")
	}
	n := 0
	f.ReplayUnfed(func(*trace.Record) { n++ })
	if n != 10 {
		t.Fatalf("replayed %d, want 10", n)
	}
}

// TestSpillWhileParked: once attached, ring overflow hands back the
// record the analyzer has not consumed, pre-accounted as fed.
func TestSpillWhileParked(t *testing.T) {
	f := NewFlow(Config{RingCap: 4})
	mk := func(i int) trace.Record {
		return rec(i, tcpsim.DirOut, tcpsim.Segment{
			Seq: uint32(1 + i*100), Len: 100, Wnd: 65535,
			SACK: packet.SACKBlocks(packet.SACKBlock{Left: uint32(i), Right: uint32(i + 1)}),
		})
	}
	for i := 0; i < 4; i++ {
		r := mk(i)
		if _, _, spilled := f.Observe(&r); spilled {
			t.Fatalf("spill before attach at record %d", i)
		}
	}
	f.Attach()
	f.ReplayUnfed(func(*trace.Record) {}) // fed = 4
	// Park (caller-side concept): stop replaying. Next 4 observes fill
	// the ring again without spill (fed stays ahead of ringStart until
	// unfed records are at the head).
	for i := 4; i < 8; i++ {
		r := mk(i)
		_, _, spilled := f.Observe(&r)
		if spilled {
			t.Fatalf("record %d spilled while unfed suffix still fits", i)
		}
	}
	// Ring now holds [4,8), fed=4: the next overflow overwrites record
	// 4, which is unfed → must spill it.
	r := mk(8)
	_, spill, spilled := f.Observe(&r)
	if !spilled {
		t.Fatal("overwriting an unfed record did not spill")
	}
	if spill.Seg.Seq != 401 {
		t.Fatalf("spilled Seq=%d, want 401 (record 4)", spill.Seg.Seq)
	}
	if spill.Seg.SACK.Len() != 1 || spill.Seg.SACK.At(0).Left != 4 {
		t.Fatalf("spilled SACK=%v, want [{4 5}]", spill.Seg.SACK)
	}
	if f.Fed() != 5 {
		t.Fatalf("Fed=%d after spill, want 5", f.Fed())
	}
	// Replaying now yields records 5..8 — no duplicates, no holes.
	var seqs []uint32
	f.ReplayUnfed(func(r *trace.Record) { seqs = append(seqs, r.Seg.Seq) })
	want := []uint32{501, 601, 701, 801}
	if len(seqs) != len(want) {
		t.Fatalf("replayed %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("replayed %v, want %v", seqs, want)
		}
	}
}

// TestSACKInlineCopy: buffered SACK blocks must not alias the
// caller's record — the caller may reuse it immediately.
func TestSACKInlineCopy(t *testing.T) {
	f := NewFlow(Config{RingCap: 8})
	r := rec(0, tcpsim.DirIn, tcpsim.Segment{
		Flags: packet.FlagACK, Ack: 1, Wnd: 65535,
		SACK: packet.SACKBlocks(packet.SACKBlock{Left: 10, Right: 20}),
	})
	f.Observe(&r)
	r.Seg.SACK = packet.SACKBlocks(packet.SACKBlock{Left: 999, Right: 1000}) // caller reuses its record
	f.Attach()
	f.ReplayUnfed(func(r *trace.Record) {
		if r.Seg.SACK.Len() != 1 || r.Seg.SACK.At(0).Left != 10 {
			t.Fatalf("replayed SACK %v aliases caller memory", r.Seg.SACK)
		}
	})
}

// TestZeroAlloc: the steady-state fast path — Observe on a flow whose
// ring has grown to capacity — performs zero heap allocations per
// record, the property that makes triage line-rate.
func TestZeroAlloc(t *testing.T) {
	f := NewFlow(Config{RingCap: 16})
	// Pre-grow the ring past the geometric phase.
	for i := 0; i < 32; i++ {
		r := rec(i, tcpsim.DirOut, tcpsim.Segment{Seq: uint32(1 + i*100), Len: 100, Wnd: 65535})
		f.Observe(&r)
	}
	r := rec(33, tcpsim.DirIn, tcpsim.Segment{
		Flags: packet.FlagACK, Ack: 1001, Wnd: 65535,
		SACK: packet.SACKBlocks(packet.SACKBlock{Left: 5000, Right: 6000}),
	})
	allocs := testing.AllocsPerRun(100, func() {
		f.Observe(&r)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per record in steady state, want 0", allocs)
	}
}

// TestWrappedISN: sequence math near the 2^32 wrap must not
// misclassify in-order sends as retransmissions.
func TestWrappedISN(t *testing.T) {
	f := NewFlow(Config{})
	const isn = 0xFFFFFF00
	recs := []trace.Record{
		rec(0, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: isn, Wnd: 65535}),
		rec(1, tcpsim.DirOut, tcpsim.Segment{Seq: isn + 1, Len: 200, Wnd: 65535}),
		rec(2, tcpsim.DirOut, tcpsim.Segment{Seq: isn + 201, Len: 200, Wnd: 65535}), // crosses wrap
		rec(3, tcpsim.DirOut, tcpsim.Segment{Seq: 145, Len: 200, Wnd: 65535}),       // post-wrap
	}
	for i := range recs {
		if sym, _, _ := f.Observe(&recs[i]); sym != SymNone {
			t.Fatalf("wrapped in-order send %d raised %v", i, sym)
		}
	}
	if f.DataBytes() != 600 {
		t.Fatalf("DataBytes=%d across wrap, want 600", f.DataBytes())
	}
	// A genuine retransmission after the wrap is still caught.
	r := rec(4, tcpsim.DirOut, tcpsim.Segment{Seq: 145, Len: 200, Wnd: 65535})
	if sym, _, _ := f.Observe(&r); sym != SymRetrans {
		t.Fatalf("post-wrap retransmission raised %v", sym)
	}
}

// TestSymptomClock: LastSymptom/SinceSymptom drive the caller's
// demotion decision.
func TestSymptomClock(t *testing.T) {
	f := NewFlow(Config{})
	r0 := rec(0, tcpsim.DirOut, tcpsim.Segment{Seq: 1, Len: 100, Wnd: 65535})
	f.Observe(&r0)
	r1 := rec(5000, tcpsim.DirOut, tcpsim.Segment{Seq: 101, Len: 100, Wnd: 65535})
	if sym, _, _ := f.Observe(&r1); sym != SymGap {
		t.Fatal("5s gap did not promote")
	}
	if f.LastSymptom() != SymGap {
		t.Fatalf("LastSymptom=%v", f.LastSymptom())
	}
	now := sim.Time(7 * time.Second)
	if got := f.SinceSymptom(now); got != 2*time.Second {
		t.Fatalf("SinceSymptom=%v, want 2s", got)
	}
}

func TestSymptomStrings(t *testing.T) {
	want := map[Symptom]string{
		SymNone: "none", SymGap: "gap", SymRetrans: "retrans",
		SymZeroWindow: "zero_window", SymDupAck: "dupack", SymNoAdvance: "no_advance",
	}
	for s, n := range want {
		if s.String() != n {
			t.Fatalf("%d.String()=%q, want %q", s, s.String(), n)
		}
	}
	if Symptom(200).String() != "unknown" {
		t.Fatal("out-of-range symptom must stringify as unknown")
	}
}

// TestSatInt: the saturating narrowing helper clamps at the platform
// maximum instead of wrapping negative — the fast path narrows
// ever-growing uint64 counters to int in several places, and a wrap
// would turn retained() negative or send a ring index out of range.
func TestSatInt(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	cases := []struct {
		in   uint64
		want int
	}{
		{0, 0},
		{123, 123},
		{uint64(maxInt), maxInt},
		{uint64(maxInt) + 1, maxInt},
		{^uint64(0), maxInt},
	}
	for _, c := range cases {
		if got := satInt(c.in); got != c.want {
			t.Fatalf("satInt(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestCountersPast2to31: total/ringStart/fed are absolute uint64
// indices that only grow for the life of a flow. Advance them past
// 2^31 and 2^32 — preserving the ring invariants, so the state is one
// a sufficiently long-lived connection genuinely reaches — and check
// that retained accounting, attach, replay indexing and continued
// observation all still behave. Before the saturating helpers, the
// int narrowings here truncated on 32-bit platforms.
func TestCountersPast2to31(t *testing.T) {
	f := NewFlow(Config{RingCap: 32})
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, rec(i, tcpsim.DirOut, tcpsim.Segment{Seq: uint32(1 + i*100), Len: 100, Wnd: 65535}))
	}
	for i := range recs {
		f.Observe(&recs[i])
	}
	const jump = uint64(1)<<32 + uint64(1)<<31
	f.total += jump
	f.ringStart += jump
	f.outDataSegs += jump
	if got := f.retained(); got != 32 {
		t.Fatalf("retained=%d past 2^31, want 32", got)
	}
	if got := f.OutDataSegments(); got <= 0 {
		t.Fatalf("OutDataSegments=%d past 2^31, want positive", got)
	}
	if !f.Attach() {
		t.Fatal("Attach on an overflowed ring must report truncation")
	}
	var got []trace.Record
	f.ReplayUnfed(func(r *trace.Record) { got = append(got, *r) })
	if len(got) != 32 {
		t.Fatalf("replayed %d records, want 32", len(got))
	}
	for i, r := range got {
		want := recs[100-32+i]
		if r.T != want.T || r.Seg.Seq != want.Seg.Seq {
			t.Fatalf("replay[%d] = {T:%v Seq:%d}, want {T:%v Seq:%d}",
				i, r.T, r.Seg.Seq, want.T, want.Seg.Seq)
		}
	}
	if f.Fed() != f.Total() {
		t.Fatalf("Fed=%d after full replay, want %d", f.Fed(), f.Total())
	}
	// The flow keeps working at these indices: a fresh record lands in
	// the ring, replay hands over exactly that record.
	r := rec(100, tcpsim.DirOut, tcpsim.Segment{Seq: uint32(1 + 100*100), Len: 100, Wnd: 65535})
	f.Observe(&r)
	n := 0
	f.ReplayUnfed(func(rr *trace.Record) {
		n++
		if rr.Seg.Seq != r.Seg.Seq {
			t.Fatalf("replayed Seq=%d, want %d", rr.Seg.Seq, r.Seg.Seq)
		}
	})
	if n != 1 {
		t.Fatalf("replayed %d records after one new observe, want 1", n)
	}
}
