// Package triage implements the cheap always-on phase of two-phase
// live monitoring. The paper's premise is that stalls are rare events
// buried in massive healthy traffic, yet the full analyzer
// (core.Incremental) pays a per-segment scoreboard walk on every ACK
// of every flow. A triage.Flow instead tracks a handful of per-flow
// counters — bytes and segments per direction, the cumulative-ACK
// edge, a dupACK streak, a minimum-RTT estimate, the inter-record
// idle clock — with zero per-record heap allocation and no
// scoreboard, plus a bounded ring of recent raw records. When a stall
// symptom fires (Observe returns non-SymNone) the caller promotes the
// flow: the ring is replayed into a freshly constructed full analyzer
// so it sees the exact history it would have seen always-on.
//
// The correctness contract is one-sided and deliberate: the fast
// path may promote healthy flows (wasted work, never wrong answers),
// but it must never let a flow stall without promoting it. SymGap
// carries that guarantee — see threshold for the argument that the
// fast gap threshold is a lower bound of the analyzer's
// min(τ·SRTT, RTO) at every record.
package triage

import (
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// Symptom is the reason a flow looks sick enough for full analysis.
type Symptom uint8

// Symptoms, in detection precedence order (one per record).
const (
	SymNone       Symptom = iota
	SymGap                // inter-record silence exceeded the conservative fast threshold
	SymRetrans            // outgoing data below the send edge (retransmission or probe)
	SymZeroWindow         // client advertised a zero receive window
	SymDupAck             // duplicate-ACK streak reached Config.DupBurst
	SymNoAdvance          // data outstanding, cumulative ACK pinned beyond the hold threshold
)

var symptomNames = [...]string{
	SymNone:       "none",
	SymGap:        "gap",
	SymRetrans:    "retrans",
	SymZeroWindow: "zero_window",
	SymDupAck:     "dupack",
	SymNoAdvance:  "no_advance",
}

func (s Symptom) String() string {
	if int(s) < len(symptomNames) {
		return symptomNames[s]
	}
	return "unknown"
}

// Config tunes the fast path. The zero value selects the documented
// defaults; Tau/MinRTO/InitRTO should mirror the core.Config the
// promoted analyzers run with, so the conservative-threshold argument
// holds against the analyzer actually in use.
type Config struct {
	// RingCap bounds the per-flow ring of recent raw records
	// (default 1024, minimum 2). A promotion whose symptom evidence
	// predates the ring replays from the ring start instead of the
	// flow start — conservative, and counted by the caller via
	// Attach's truncated result.
	RingCap int
	// Tau is the analyzer's stall-threshold multiplier (default 2).
	Tau float64
	// MinRTO mirrors core.Config.MinRTO (default 200ms).
	MinRTO time.Duration
	// InitRTO mirrors core.Config.InitRTO (default 1s): the gap
	// threshold before any RTT sample exists.
	InitRTO time.Duration
	// DupBurst is the duplicate-ACK streak that promotes (default 2
	// — below the analyzer's fast-retransmit threshold of 3, so the
	// full analyzer is watching before recovery begins).
	DupBurst int
	// DemoteAfter is how long (in record time) a promoted flow must
	// stay symptom-free before the caller may park its analyzer
	// (default 2s).
	DemoteAfter time.Duration
}

// WithDefaults returns the configuration with the documented
// defaults filled in (callers embedding a Config can normalize it
// once, up front).
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.RingCap <= 0 {
		c.RingCap = 1024
	}
	if c.RingCap < 2 {
		// A stall is a gap between two records; the closing pair must
		// always survive in the ring.
		c.RingCap = 2
	}
	if c.Tau <= 0 {
		c.Tau = 2
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.InitRTO <= 0 {
		c.InitRTO = time.Second
	}
	if c.DupBurst <= 0 {
		c.DupBurst = 2
	}
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 2 * time.Second
	}
	return c
}

// slot is one buffered record, stored field-flat and pointer-free:
// the rings dominate the monitor's heap in triage mode, and an array
// the garbage collector never has to scan keeps GC cost independent
// of how much history the fast path retains. SACK blocks live inline
// in the Segment itself (packet.SACKList caps at the wire limit of
// 4), so storing and materializing a record is a plain value copy:
// retained records never alias caller memory and the steady-state
// push allocates nothing.
type slot struct {
	t     sim.Time
	tsVal sim.Time
	tsEcr sim.Time
	seq   uint32
	ack   uint32
	len   int32
	wnd   int32
	flags packet.TCPFlags
	dir   tcpsim.Dir
	sack  packet.SACKList
}

// Flow is one connection's fast-path state. Not safe for concurrent
// use: the live monitor owns each Flow from a single shard goroutine.
type Flow struct {
	cfg Config

	// Counters.
	total       uint64
	outSegs     uint64
	inSegs      uint64
	outDataSegs uint64
	outBytes    uint64
	inBytes     uint64
	firstT      sim.Time
	lastT       sim.Time

	// Sequence tracking, all in unwrapped 64-bit offsets of the
	// server's data stream (out Seq, in Ack share one space, as in
	// the analyzer).
	u           seqspace.Unwrapper
	haveOut     bool
	firstOutOff uint64
	sndNxt      uint64
	haveAck     bool
	ackHi       uint64

	lastAdvanceT sim.Time
	haveOutData  bool
	lastOutDataT sim.Time
	dupStreak    int
	prevWnd      int
	haveWnd      bool

	// Minimum-RTT estimate: a lower bound of the analyzer's SRTT,
	// fed by the same handshake seed and TSEcr samples plus a
	// send-edge surrogate (see observe).
	minRTT     time.Duration
	hasRTT     bool
	synackAt   sim.Time
	haveSynack bool
	rttSeeded  bool

	lastSym      Symptom
	lastSymptomT sim.Time

	// Ring of recent raw records: absolute indices [ringStart,
	// total) are retained, ring[head] holds ringStart. fed is the
	// absolute index of the next record not yet replayed into the
	// promoted analyzer (meaningful once attached).
	ring      []slot
	head      int
	ringStart uint64
	fed       uint64
	attached  bool
	truncated bool

	// arena, when set, recycles ring backings across flows (see
	// Arena). Nil means plain allocation.
	arena *Arena
}

// NewFlow returns a fast-path tracker. The ring grows geometrically
// up to cfg.RingCap as records arrive.
func NewFlow(cfg Config) *Flow {
	return &Flow{cfg: cfg.withDefaults()}
}

// Config reports the defaulted configuration in effect.
func (f *Flow) Config() Config { return f.cfg }

// Observe feeds one record through the fast path: it updates the
// counters, buffers the record in the ring, and reports the stall
// symptom the record raised (SymNone almost always). When the flow is
// attached and the full ring had to overwrite a record the promoted
// analyzer has not consumed yet, that record is returned as spill
// (spilled=true) and already accounted as fed — the caller must feed
// it to the parked analyzer before the next Observe, which keeps
// repromotion byte-identical to always-on analysis at bounded lag.
//
// tapo:hotpath
func (f *Flow) Observe(r *trace.Record) (sym Symptom, spill trace.Record, spilled bool) {
	sym = f.observe(r)
	spill, spilled = f.buffer(r)
	f.total++
	return sym, spill, spilled
}

// observe updates the fast state and detects symptoms. Checks run
// against the pre-record state, exactly as the analyzer evaluates its
// stall threshold before processing the record that closes the gap.
//
// tapo:hotpath
func (f *Flow) observe(r *trace.Record) Symptom {
	sym := SymNone
	if f.total > 0 && r.T.Sub(f.lastT) > f.threshold() {
		sym = SymGap
	}
	seg := &r.Seg
	switch r.Dir {
	case tcpsim.DirOut:
		f.outSegs++
		if seg.Len == 0 {
			// Pure ACK, probe, FIN — or the SYN-ACK carrying the
			// server's ISN, which seeds the unwrapper as in the
			// analyzer so the first data byte lands next to it.
			if seg.Flags.Has(packet.FlagSYN) {
				f.u.Unwrap(seg.Seq)
				f.synackAt = r.T
				f.haveSynack = true
			}
			break
		}
		off := f.u.Unwrap(seg.Seq)
		end := off + uint64(seg.Len)
		if f.haveOut && off < f.sndNxt && sym == SymNone {
			// Data below the send edge: a retransmission or a
			// zero-window probe. Either way the full analyzer should
			// be watching.
			sym = SymRetrans
		}
		if !f.haveOut {
			f.haveOut = true
			f.firstOutOff = off
			f.sndNxt = end
			f.lastAdvanceT = r.T
		} else if end > f.sndNxt {
			f.sndNxt = end
		}
		f.outDataSegs++
		f.outBytes += uint64(seg.Len)
		f.haveOutData = true
		f.lastOutDataT = r.T
	case tcpsim.DirIn:
		f.inSegs++
		f.inBytes += uint64(seg.Len)
		if seg.Flags.Has(packet.FlagSYN) {
			f.prevWnd = seg.Wnd
			f.haveWnd = true
			break
		}
		// Handshake RTT seed: the first post-SYN incoming segment
		// acknowledges the SYN-ACK — the same seed, under the same
		// guard, as the analyzer's.
		if !f.rttSeeded && f.haveSynack && f.synackAt > 0 {
			f.rttSeeded = true
			f.sample(r.T.Sub(f.synackAt))
		}
		if seg.Wnd == 0 && sym == SymNone {
			sym = SymZeroWindow
		}
		if seg.Flags.Has(packet.FlagACK) && f.haveOut {
			ack := f.u.Unwrap(seg.Ack)
			switch {
			case !f.haveAck || ack > f.ackHi:
				f.haveAck = true
				f.ackHi = ack
				f.lastAdvanceT = r.T
				f.dupStreak = 0
				// RTT sampling. The TSEcr sample is the analyzer's
				// own; without timestamps, the time since the most
				// recent data send is a lower bound of the analyzer's
				// ack-edge sample (the edge segment was sent no later
				// than the latest segment), floored at 1ns so a
				// same-instant burst still covers the analyzer's
				// positive sample.
				if seg.TSEcr > 0 {
					f.sample(r.T.Sub(seg.TSEcr))
				} else if f.haveOutData {
					s := r.T.Sub(f.lastOutDataT)
					if s <= 0 {
						s = time.Nanosecond
					}
					f.sample(s)
				}
			case ack == f.ackHi && seg.Len == 0 && f.outstanding() &&
				(seg.SACK.Len() > 0 || seg.Wnd == f.prevWnd):
				// The analyzer's duplicate-ACK test, minus the
				// scoreboard: window updates don't count.
				f.dupStreak++
				if f.dupStreak >= f.cfg.DupBurst && sym == SymNone {
					sym = SymDupAck
				}
			}
		}
		f.prevWnd = seg.Wnd
		f.haveWnd = true
	}
	if sym == SymNone && f.haveOutData && f.outstanding() &&
		r.T.Sub(f.lastAdvanceT) > f.noAdvanceHold() {
		sym = SymNoAdvance
	}
	if f.total == 0 {
		f.firstT = r.T
	}
	f.lastT = r.T
	if sym != SymNone {
		f.lastSym = sym
		f.lastSymptomT = r.T
	}
	return sym
}

// outstanding reports whether sent data is not yet cumulatively
// acknowledged.
//
// tapo:hotpath
func (f *Flow) outstanding() bool {
	return f.haveOut && (!f.haveAck || f.ackHi < f.sndNxt)
}

// threshold is the fast gap threshold, a provable lower bound of the
// analyzer's min(τ·SRTT, RTO) at every record:
//
//   - minRTT ≤ SRTT: every RTT sample the analyzer takes has a fast
//     sample ≤ it at the same record (handshake and TSEcr samples are
//     identical; the ack-edge sample is lower-bounded by the
//     send-edge surrogate), and SRTT is a convex combination of the
//     analyzer's samples, hence ≥ their minimum ≥ minRTT. So
//     τ·minRTT ≤ τ·SRTT.
//   - minRTT + MinRTO ≤ SRTT + max(4·RTTVAR, MinRTO) = RTO, and RTO
//     backoff only inflates the right-hand side.
//   - Before the fast path has a sample the analyzer has none either
//     (fast samples are a superset), so its threshold is its RTO,
//     which starts at InitRTO and only grows until the first sample.
//
// Therefore every record that closes a stall in the full analyzer
// raises SymGap here: no stall escapes promotion.
//
// tapo:hotpath
func (f *Flow) threshold() time.Duration {
	if !f.hasRTT {
		return f.cfg.InitRTO
	}
	th := time.Duration(f.cfg.Tau * float64(f.minRTT))
	if alt := f.minRTT + f.cfg.MinRTO; alt < th {
		th = alt
	}
	return th
}

// noAdvanceHold is the SymNoAdvance patience: well above the gap
// threshold, so it only catches flows whose records keep flowing
// while the cumulative ACK stays pinned.
//
// tapo:hotpath
func (f *Flow) noAdvanceHold() time.Duration {
	h := 4 * f.threshold()
	if h < f.cfg.MinRTO {
		h = f.cfg.MinRTO
	}
	return h
}

// sample folds one RTT lower-bound sample in, ignoring non-positive
// values exactly as the analyzer's rttSample does.
//
// tapo:hotpath
func (f *Flow) sample(s time.Duration) {
	if s <= 0 {
		return
	}
	if !f.hasRTT || s < f.minRTT {
		f.minRTT = s
		f.hasRTT = true
	}
}

// satInt narrows a uint64 to int, saturating at MaxInt instead of
// truncating. The ring invariants keep every narrowed difference
// below RingCap, but on 32-bit platforms a broken invariant would
// otherwise wrap silently into a negative index.
//
// tapo:hotpath
func satInt(u uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if u > uint64(maxInt) {
		return maxInt
	}
	return int(u)
}

// retained is the number of records currently in the ring.
//
// tapo:hotpath
func (f *Flow) retained() int { return satInt(f.total - f.ringStart) }

// buffer appends r to the ring, growing it geometrically up to
// RingCap, then overwriting the oldest record. Steady state (ring at
// capacity) allocates nothing; growth is delegated to grow so the
// amortized allocation stays off this path's body.
//
// tapo:hotpath
func (f *Flow) buffer(r *trace.Record) (spill trace.Record, spilled bool) {
	n := f.retained()
	if n == len(f.ring) && len(f.ring) < f.cfg.RingCap {
		f.grow()
	}
	if n == len(f.ring) {
		// Full at capacity: the oldest record is overwritten. If the
		// flow is attached and that record was never fed to its
		// analyzer (the flow is parked), hand it back for immediate
		// trickle-feeding so exactness survives at bounded lag.
		if f.attached && f.fed == f.ringStart {
			// materialize is a value copy (SACK inline), so the spill
			// stays valid after the slot is overwritten below.
			spill = f.materialize(f.head)
			spilled = true
			f.fed++
		}
		f.write(f.head, r)
		f.head = (f.head + 1) % len(f.ring)
		f.ringStart++
		return spill, spilled
	}
	f.write((f.head+n)%len(f.ring), r)
	return spill, spilled
}

// grow doubles the ring (capped at RingCap), re-laying retained
// records out from slot 0. The outgrown backing goes back to the
// arena for the next flow.
func (f *Flow) grow() {
	newCap := 2 * len(f.ring)
	if newCap == 0 {
		newCap = 16
	}
	if newCap > f.cfg.RingCap {
		newCap = f.cfg.RingCap
	}
	fresh := f.arena.get(newCap)
	n := f.retained()
	for i := 0; i < n; i++ {
		fresh[i] = f.ring[(f.head+i)%len(f.ring)]
	}
	f.arena.put(f.ring)
	f.ring = fresh
	f.head = 0
}

// write stores r into slot i, SACK blocks included — one flat value
// copy, no pointers, no allocation.
//
// tapo:hotpath
func (f *Flow) write(i int, r *trace.Record) {
	s := &f.ring[i]
	s.t = r.T
	s.tsVal = r.Seg.TSVal
	s.tsEcr = r.Seg.TSEcr
	s.seq = r.Seg.Seq
	s.ack = r.Seg.Ack
	s.len = int32(r.Seg.Len)
	s.wnd = int32(r.Seg.Wnd)
	s.flags = r.Seg.Flags
	s.dir = r.Dir
	s.sack = r.Seg.SACK
}

// materialize rebuilds slot i's record by value: the result owns its
// SACK blocks and stays valid after the slot is overwritten.
//
// tapo:hotpath
func (f *Flow) materialize(i int) trace.Record {
	s := &f.ring[i]
	return trace.Record{
		T:   s.t,
		Dir: s.dir,
		Seg: tcpsim.Segment{
			Flags: s.flags,
			Seq:   s.seq,
			Ack:   s.ack,
			Len:   int(s.len),
			Wnd:   int(s.wnd),
			SACK:  s.sack,
			TSVal: s.tsVal,
			TSEcr: s.tsEcr,
		},
	}
}

// Attach marks the flow promoted: from now on ReplayUnfed feeds the
// buffered suffix (and, via Observe's spill, ring overflow while
// parked trickle-feeds). It reports whether THIS attach lost history
// — the symptom's earliest evidence predates the ring, so the
// analyzer replays from the ring start instead of the flow start.
// Attach is idempotent; repromotion after a park never truncates,
// because spill keeps fed inside the ring.
func (f *Flow) Attach() (truncated bool) {
	if f.fed < f.ringStart {
		f.fed = f.ringStart
		f.truncated = true
		truncated = true
	}
	f.attached = true
	return truncated
}

// ReplayUnfed hands every buffered record the analyzer has not seen
// yet to fn, in capture order. The record pointer is only valid for
// the duration of the call (the value is a self-contained copy — its
// SACK blocks are inline). Promoted callers invoke it once per
// Observe (feeding exactly the new record); repromotion replays the
// whole parked suffix.
func (f *Flow) ReplayUnfed(fn func(*trace.Record)) {
	for f.fed < f.total {
		// fed-ringStart < len(ring) by the ring invariant; the modulo
		// keeps the narrowing provably in range even on 32-bit ints.
		i := (f.head + satInt((f.fed-f.ringStart)%uint64(len(f.ring)))) % len(f.ring)
		r := f.materialize(i)
		fn(&r)
		f.fed++
	}
}

// Accessors. All report fast-path state only.

// Total is the number of records observed (and buffered).
func (f *Flow) Total() uint64 { return f.total }

// Fed is the absolute index of the next record not yet replayed.
func (f *Flow) Fed() uint64 { return f.fed }

// Attached reports whether the flow has ever been promoted.
func (f *Flow) Attached() bool { return f.attached }

// Truncated reports whether any promotion replayed from a ring that
// had already dropped history.
func (f *Flow) Truncated() bool { return f.truncated }

// RingStart is the absolute index of the oldest retained record.
func (f *Flow) RingStart() uint64 { return f.ringStart }

// FirstT/LastT bound the observed records (zero before the first).
func (f *Flow) FirstT() sim.Time { return f.firstT }
func (f *Flow) LastT() sim.Time  { return f.lastT }

// DataBytes is the server data-stream span covered so far.
func (f *Flow) DataBytes() int64 {
	if !f.haveOut {
		return 0
	}
	return int64(f.sndNxt - f.firstOutOff)
}

// OutDataSegments counts outgoing data segments. For a flow that
// never raised SymRetrans every one is distinct (a repeat would sit
// below the send edge), so this equals the analyzer's DataPackets.
func (f *Flow) OutDataSegments() int { return satInt(f.outDataSegs) }

// LastSymptom is the most recent non-SymNone symptom (SymNone before
// the first).
func (f *Flow) LastSymptom() Symptom { return f.lastSym }

// SinceSymptom reports the record time elapsed since the last
// symptom.
func (f *Flow) SinceSymptom(now sim.Time) time.Duration {
	return now.Sub(f.lastSymptomT)
}

// MinRTT reports the current RTT lower-bound estimate (0, false
// before any sample).
func (f *Flow) MinRTT() (time.Duration, bool) { return f.minRTT, f.hasRTT }
