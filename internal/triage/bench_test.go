package triage

import (
	"testing"

	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

func benchRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = rec(i, tcpsim.DirOut, tcpsim.Segment{Seq: uint32(1 + i*100), Len: 100, Wnd: 65535})
	}
	return recs
}

// BenchmarkObserve measures the triage fast path in steady state: the
// ring is past its geometric growth, so every record is counter math
// plus one pointer-free slot copy. Run with -benchmem — the hot-path
// budget is 0 allocs/op (TestZeroAlloc enforces it).
func BenchmarkObserve(b *testing.B) {
	recs := benchRecords(1024)
	f := NewFlow(Config{RingCap: 256})
	for i := range recs {
		f.Observe(&recs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(&recs[i%len(recs)])
	}
}

// benchLifecycle runs one whole flow life — admit, grow the ring
// through its ladder to RingCap, release — per iteration. The
// fresh/arena pair isolates what ring recycling saves at connection
// rate.
func benchLifecycle(b *testing.B, arena *Arena) {
	recs := benchRecords(256)
	cfg := Config{RingCap: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFlowIn(cfg, arena)
		for j := range recs {
			f.Observe(&recs[j])
		}
		f.Release()
	}
}

func BenchmarkRingGrowthFresh(b *testing.B) { benchLifecycle(b, nil) }
func BenchmarkRingGrowthArena(b *testing.B) { benchLifecycle(b, NewArena()) }

// TestArenaRecycleAllocs: once the arena is warm, a whole flow
// lifecycle allocates only the Flow struct itself — every rung of the
// ring ladder comes back recycled.
func TestArenaRecycleAllocs(t *testing.T) {
	a := NewArena()
	recs := benchRecords(256)
	cfg := Config{RingCap: 256}
	lifecycle := func() {
		f := NewFlowIn(cfg, a)
		for j := range recs {
			f.Observe(&recs[j])
		}
		f.Release()
	}
	lifecycle() // seed the arena with the full ladder
	allocs := testing.AllocsPerRun(50, lifecycle)
	if allocs > 2 {
		t.Fatalf("warm-arena flow lifecycle allocates %v, want <= 2 (the Flow struct)", allocs)
	}
}
