package sim

// Timer is a restartable one-shot timer bound to a simulator, in the
// style of the kernel timers the TCP model needs (RTO timer, delayed
// ACK timer, probe timers). Resetting an armed timer reschedules it;
// stopping it cancels the pending event.
type Timer struct {
	sim    *Simulator
	fn     func()
	handle Handle
	armed  bool
}

// NewTimer returns a stopped timer that runs fn when it fires.
func NewTimer(s *Simulator, fn func()) *Timer {
	return &Timer{sim: s, fn: fn}
}

// Reset (re)arms the timer to fire after d.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.armed = true
	t.handle = t.sim.Schedule(d, func() {
		t.armed = false
		t.fn()
	})
}

// ResetAt (re)arms the timer to fire at instant at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.armed = true
	t.handle = t.sim.ScheduleAt(at, func() {
		t.armed = false
		t.fn()
	})
}

// Stop cancels the timer if armed.
func (t *Timer) Stop() {
	if t.armed {
		t.sim.Cancel(t.handle)
		t.armed = false
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.armed }

// Deadline reports when the timer will fire. Meaningless when !Armed().
func (t *Timer) Deadline() Time { return t.handle.At() }
