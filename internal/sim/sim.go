// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (network paths, TCP endpoints, application
// models) share a single Simulator, which owns a virtual clock and a
// priority queue of pending events. Events scheduled for the same
// instant fire in the order they were scheduled, which keeps runs
// bit-for-bit reproducible for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the simulation's virtual clock, measured as an
// offset from the start of the run.
type Time time.Duration

// Duration is re-exported for call-site readability.
type Duration = time.Duration

// String formats the instant with millisecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(time.Millisecond))
}

// Seconds reports the instant in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports the instant in milliseconds as a float.
func (t Time) Milliseconds() float64 {
	return float64(t) / float64(time.Millisecond)
}

// Add offsets the instant by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// An event is a function scheduled to run at a virtual instant.
type event struct {
	at     Time
	seq    uint64 // tiebreaker: FIFO among same-instant events
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event scheduler.
// The zero value is not usable; call New.
type Simulator struct {
	now    Time
	queue  eventQueue
	nextID uint64
	// Processed counts events executed so far (cancelled events are
	// not counted).
	processed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed reports how many events have executed.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled (including cancelled
// events not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Valid reports whether the handle refers to an event that has neither
// fired nor been cancelled.
func (h Handle) Valid() bool {
	return h.ev != nil && !h.ev.cancel && h.ev.index >= 0
}

// At reports the instant the event will fire. Meaningless if !Valid().
func (h Handle) At() Time {
	if h.ev == nil {
		return 0
	}
	return h.ev.at
}

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (s *Simulator) Schedule(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at instant t. Instants in the past are clamped to
// the present.
func (s *Simulator) ScheduleAt(t Time, fn func()) Handle {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.nextID, fn: fn}
	s.nextID++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev}
}

// Cancel prevents a scheduled event from firing. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
func (s *Simulator) Cancel(h Handle) {
	if h.ev == nil || h.ev.index < 0 {
		return
	}
	h.ev.cancel = true
}

// Step executes the single next event, advancing the clock to its
// instant. It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.cancel {
			continue
		}
		s.now = ev.at
		s.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with instants ≤ deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for a span of virtual time from now.
func (s *Simulator) RunFor(d Duration) {
	s.RunUntil(s.now.Add(d))
}

// NextAt reports the instant of the earliest pending event, if any.
// Live drivers use it to pace virtual time against a wall clock: peek
// the next instant, sleep the scaled difference, then Step.
func (s *Simulator) NextAt() (Time, bool) {
	ev := s.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (s *Simulator) peek() *event {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if ev.cancel {
			heap.Pop(&s.queue)
			continue
		}
		return ev
	}
	return nil
}
