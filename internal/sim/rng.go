package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded source with the distributions the simulator's
// traffic and path models draw from. All randomness in a run flows
// through RNGs derived from the run seed, so runs are reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator; useful to decouple the random
// streams of different components so adding draws to one does not
// perturb another.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exponential returns an exponential sample with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal sample.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normal sample parameterized by the mean and
// standard deviation of the underlying normal (mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// LogNormalMean returns a log-normal sample parameterized by the
// desired mean of the log-normal itself and the sigma of the
// underlying normal. Handy for calibrating flow-size models to a
// target average.
func (g *RNG) LogNormalMean(mean, sigma float64) float64 {
	mu := math.Log(mean) - sigma*sigma/2
	return g.LogNormal(mu, sigma)
}

// Pareto returns a bounded Pareto-ish sample: scale xm, shape alpha.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Choice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Panics if all weights are zero.
func (g *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("sim: Choice with non-positive total weight")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
