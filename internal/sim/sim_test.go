package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != Time(time.Millisecond) || fired[1] != Time(2*time.Millisecond) {
		t.Errorf("fired at %v, want [1ms 2ms]", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.Schedule(time.Millisecond, func() { ran = true })
	if !h.Valid() {
		t.Fatal("fresh handle should be valid")
	}
	s.Cancel(h)
	if h.Valid() {
		t.Error("cancelled handle should be invalid")
	}
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	// Double-cancel and cancel-after-run are no-ops.
	s.Cancel(h)
	h2 := s.Schedule(0, func() {})
	s.Run()
	s.Cancel(h2)
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired int
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { fired++ })
	}
	s.RunUntil(Time(3 * time.Second))
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if s.Now() != Time(3*time.Second) {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.RunFor(10 * time.Second)
	if fired != 5 {
		t.Errorf("after RunFor fired = %d, want 5", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(Time(time.Hour))
	if s.Now() != Time(time.Hour) {
		t.Errorf("Now() = %v, want 1h", s.Now())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {
		// Scheduling into the past must clamp to the present, not
		// rewind the clock.
		s.ScheduleAt(0, func() {
			if s.Now() != Time(time.Second) {
				t.Errorf("past-scheduled event ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Error("negative-delay event did not run")
	}
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
}

func TestTimerResetStop(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	if tm.Armed() {
		t.Fatal("new timer should be stopped")
	}
	tm.Reset(10 * time.Millisecond)
	tm.Reset(20 * time.Millisecond) // supersedes the first arming
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	if tm.Deadline() != Time(20*time.Millisecond) {
		t.Errorf("Deadline() = %v, want 20ms", tm.Deadline())
	}
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (reset must cancel prior arming)", fired)
	}
	if tm.Armed() {
		t.Error("timer should disarm after firing")
	}

	tm.Reset(time.Millisecond)
	tm.Stop()
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d after Stop, want 1", fired)
	}
}

func TestTimerResetAt(t *testing.T) {
	s := New()
	var at Time
	tm := NewTimer(s, func() { at = s.Now() })
	tm.ResetAt(Time(5 * time.Millisecond))
	s.Run()
	if at != Time(5*time.Millisecond) {
		t.Errorf("fired at %v, want 5ms", at)
	}
}

func TestProcessedCountsOnlyExecuted(t *testing.T) {
	s := New()
	h := s.Schedule(time.Millisecond, func() {})
	s.Schedule(time.Millisecond, func() {})
	s.Cancel(h)
	s.Run()
	if s.Processed() != 1 {
		t.Errorf("Processed() = %d, want 1", s.Processed())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(1500 * time.Millisecond)
	if a.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v", a.Seconds())
	}
	if a.Milliseconds() != 1500 {
		t.Errorf("Milliseconds() = %v", a.Milliseconds())
	}
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Errorf("Sub = %v", b.Sub(a))
	}
	if a.String() != "1500.000ms" {
		t.Errorf("String() = %q", a.String())
	}
}

// Property: for any batch of scheduled delays, events fire in
// nondecreasing time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		if len(delaysMS) == 0 {
			return true
		}
		s := New()
		var fired []Time
		var maxT Time
		for _, d := range delaysMS {
			dd := time.Duration(d) * time.Millisecond
			if Time(dd) > maxT {
				maxT = Time(dd)
			}
			s.Schedule(dd, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	// Draws on g after forking must not affect f1's stream.
	want := make([]float64, 10)
	g2 := NewRNG(7)
	f2 := g2.Fork()
	for i := range want {
		want[i] = f2.Float64()
	}
	g.Float64()
	g.Float64()
	for i := range want {
		if got := f1.Float64(); got != want[i] {
			t.Fatal("fork stream perturbed by parent draws")
		}
	}
}

func TestRNGDistributionMoments(t *testing.T) {
	g := NewRNG(1)
	const n = 200000

	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(100)
	}
	if mean := sum / n; math.Abs(mean-100) > 2 {
		t.Errorf("exponential mean = %.2f, want ≈100", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += g.LogNormalMean(50, 1.0)
	}
	if mean := sum / n; math.Abs(mean-50)/50 > 0.05 {
		t.Errorf("lognormal mean = %.2f, want ≈50", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += g.Normal(10, 3)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("normal mean = %.2f, want ≈10", mean)
	}

	// Pareto samples are bounded below by xm.
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(5, 1.5); v < 5 {
			t.Fatalf("pareto sample %v < xm", v)
		}
	}
}

func TestRNGBoolAndUniform(t *testing.T) {
	g := NewRNG(3)
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %.3f", p)
	}
	for i := 0; i < 1000; i++ {
		v := g.Uniform(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestRNGChoice(t *testing.T) {
	g := NewRNG(9)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Choice(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Choice[%d] rate = %.3f, want %.3f", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Choice with zero weights should panic")
		}
	}()
	g.Choice([]float64{0, 0})
}
