// Package pcap reads and writes the classic libpcap capture file
// format (the .pcap files produced by tcpdump -w). Both byte orders
// and both timestamp resolutions (microsecond 0xa1b2c3d4 and
// nanosecond 0xa1b23c4d magics) are supported.
//
// The package is the bridge between the simulator's trace capture and
// real-world tooling: synthetic traces written here open in
// tcpdump/tshark, and TAPO accepts real captures read here.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers of the classic pcap format.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkType identifies the capture's layer-2 framing.
type LinkType uint32

// Link types this toolkit uses.
const (
	LinkTypeNull     LinkType = 0
	LinkTypeEthernet LinkType = 1
	LinkTypeRaw      LinkType = 101 // raw IP
)

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcap: bad magic number")
	ErrTruncated = errors.New("pcap: truncated file")
	ErrSnaplen   = errors.New("pcap: record exceeds snap length")
)

// MaxRecordLen bounds a single record's captured length (64MB, far
// above any real link MTU). A corrupt or hostile length field would
// otherwise drive a multi-gigabyte allocation before the read fails.
const MaxRecordLen = 1 << 26

const (
	fileHeaderLen   = 24
	recordHeaderLen = 16
	versionMajor    = 2
	versionMinor    = 4
	// DefaultSnaplen is what tcpdump uses by default nowadays.
	DefaultSnaplen = 262144
)

// Packet is one captured record.
type Packet struct {
	// Timestamp is the capture instant as an absolute time.
	Timestamp time.Time
	// Data is the captured bytes (up to snaplen).
	Data []byte
	// OrigLen is the original wire length; ≥ len(Data).
	OrigLen int
}

// Header describes a capture file.
type Header struct {
	LinkType LinkType
	Snaplen  uint32
	// Nanosecond reports whether timestamps carry nanosecond
	// resolution.
	Nanosecond bool
}

// Writer emits a pcap stream.
type Writer struct {
	w   io.Writer
	hdr Header
	buf [recordHeaderLen]byte
}

// NewWriter writes a file header for the given link type with
// microsecond timestamps and the default snaplen.
func NewWriter(w io.Writer, link LinkType) (*Writer, error) {
	return NewWriterHeader(w, Header{LinkType: link, Snaplen: DefaultSnaplen})
}

// NewWriterHeader writes a file header with full control over snaplen
// and timestamp resolution.
func NewWriterHeader(w io.Writer, hdr Header) (*Writer, error) {
	if hdr.Snaplen == 0 {
		hdr.Snaplen = DefaultSnaplen
	}
	var fh [fileHeaderLen]byte
	magic := uint32(MagicMicroseconds)
	if hdr.Nanosecond {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(fh[0:4], magic)
	binary.LittleEndian.PutUint16(fh[4:6], versionMajor)
	binary.LittleEndian.PutUint16(fh[6:8], versionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(fh[16:20], hdr.Snaplen)
	binary.LittleEndian.PutUint32(fh[20:24], uint32(hdr.LinkType))
	if _, err := w.Write(fh[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: w, hdr: hdr}, nil
}

// WritePacket appends one record. Data longer than snaplen is
// truncated (with OrigLen preserving the full length).
func (w *Writer) WritePacket(p Packet) error {
	data := p.Data
	origLen := p.OrigLen
	if origLen < len(data) {
		origLen = len(data)
	}
	if uint32(len(data)) > w.hdr.Snaplen {
		data = data[:w.hdr.Snaplen]
	}
	sec := p.Timestamp.Unix()
	var sub int64
	if w.hdr.Nanosecond {
		sub = int64(p.Timestamp.Nanosecond())
	} else {
		sub = int64(p.Timestamp.Nanosecond()) / 1000
	}
	binary.LittleEndian.PutUint32(w.buf[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(w.buf[4:8], uint32(sub))
	binary.LittleEndian.PutUint32(w.buf[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.buf[12:16], uint32(origLen))
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Reader consumes a pcap stream.
type Reader struct {
	r     io.Reader
	hdr   Header
	order binary.ByteOrder
	buf   [recordHeaderLen]byte
}

// NewReader parses the file header and prepares to iterate records.
func NewReader(r io.Reader) (*Reader, error) {
	var fh [fileHeaderLen]byte
	if _, err := io.ReadFull(r, fh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", errors.Join(ErrTruncated, err))
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(fh[0:4])
	magicBE := binary.BigEndian.Uint32(fh[0:4])
	switch {
	case magicLE == MagicMicroseconds:
		rd.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		rd.order, rd.hdr.Nanosecond = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		rd.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		rd.order, rd.hdr.Nanosecond = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magicLE)
	}
	rd.hdr.Snaplen = rd.order.Uint32(fh[16:20])
	rd.hdr.LinkType = LinkType(rd.order.Uint32(fh[20:24]))
	return rd, nil
}

// Header reports the parsed file header.
func (r *Reader) Header() Header { return r.hdr }

// ReadPacket returns the next record, or io.EOF at a clean end of
// stream.
func (r *Reader) ReadPacket() (Packet, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: reading record header: %w", errors.Join(ErrTruncated, err))
	}
	sec := r.order.Uint32(r.buf[0:4])
	sub := r.order.Uint32(r.buf[4:8])
	inclLen := r.order.Uint32(r.buf[8:12])
	origLen := r.order.Uint32(r.buf[12:16])
	if r.hdr.Snaplen != 0 && inclLen > r.hdr.Snaplen {
		return Packet{}, fmt.Errorf("%w: %d > %d", ErrSnaplen, inclLen, r.hdr.Snaplen)
	}
	if inclLen > MaxRecordLen {
		return Packet{}, fmt.Errorf("%w: record length %d", ErrSnaplen, inclLen)
	}
	data := make([]byte, inclLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: reading record data: %w", errors.Join(ErrTruncated, err))
	}
	nanos := int64(sub)
	if !r.hdr.Nanosecond {
		nanos *= 1000
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		Data:      data,
		OrigLen:   int(origLen),
	}, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Packet, error) {
	var pkts []Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}
