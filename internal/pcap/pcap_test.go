package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripMicroseconds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1419244800, 123456000).UTC() // µs-representable
	pkts := []Packet{
		{Timestamp: t0, Data: []byte{1, 2, 3, 4}},
		{Timestamp: t0.Add(time.Millisecond), Data: []byte{5}},
		{Timestamp: t0.Add(time.Second), Data: bytes.Repeat([]byte{0xaa}, 1500)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkTypeEthernet {
		t.Errorf("link type = %v", r.Header().LinkType)
	}
	if r.Header().Nanosecond {
		t.Error("µs file claims ns resolution")
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i, p := range pkts {
		if !got[i].Timestamp.Equal(p.Timestamp) {
			t.Errorf("pkt %d ts = %v, want %v", i, got[i].Timestamp, p.Timestamp)
		}
		if !bytes.Equal(got[i].Data, p.Data) {
			t.Errorf("pkt %d data mismatch", i)
		}
		if got[i].OrigLen != len(p.Data) {
			t.Errorf("pkt %d origlen = %d", i, got[i].OrigLen)
		}
	}
}

func TestRoundTripNanoseconds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterHeader(&buf, Header{LinkType: LinkTypeRaw, Nanosecond: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1419244800, 987654321).UTC()
	if err := w.WritePacket(Packet{Timestamp: ts, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().Nanosecond {
		t.Fatal("ns flag lost")
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Timestamp.Equal(ts) {
		t.Errorf("ts = %v, want %v (full ns preserved)", p.Timestamp, ts)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian µs capture with one 3-byte record.
	var buf bytes.Buffer
	var fh [24]byte
	binary.BigEndian.PutUint32(fh[0:4], MagicMicroseconds)
	binary.BigEndian.PutUint16(fh[4:6], 2)
	binary.BigEndian.PutUint16(fh[6:8], 4)
	binary.BigEndian.PutUint32(fh[16:20], 65535)
	binary.BigEndian.PutUint32(fh[20:24], uint32(LinkTypeEthernet))
	buf.Write(fh[:])
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:4], 1000)
	binary.BigEndian.PutUint32(rh[4:8], 500000)
	binary.BigEndian.PutUint32(rh[8:12], 3)
	binary.BigEndian.PutUint32(rh[12:16], 60)
	buf.Write(rh[:])
	buf.Write([]byte{0xa, 0xb, 0xc})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1000, 500000000).UTC()
	if !p.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", p.Timestamp, want)
	}
	if p.OrigLen != 60 || len(p.Data) != 3 {
		t.Errorf("lens = %d/%d", len(p.Data), p.OrigLen)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewReader(make([]byte, 24))
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFileHeader(t *testing.T) {
	buf := bytes.NewReader(make([]byte, 10))
	if _, err := NewReader(buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	w.WritePacket(Packet{Timestamp: time.Unix(0, 0), Data: []byte{1, 2, 3, 4, 5}})
	full := buf.Bytes()

	// Cut mid-record-data.
	r, _ := NewReader(bytes.NewReader(full[:len(full)-2]))
	if _, err := r.ReadPacket(); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-data: err = %v, want ErrTruncated", err)
	}
	// Cut mid-record-header.
	r, _ = NewReader(bytes.NewReader(full[:24+8]))
	if _, err := r.ReadPacket(); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-header: err = %v, want ErrTruncated", err)
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterHeader(&buf, Header{LinkType: LinkTypeEthernet, Snaplen: 8})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 100)
	if err := w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: data}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 8 {
		t.Errorf("data len = %d, want snaplen 8", len(p.Data))
	}
	if p.OrigLen != 100 {
		t.Errorf("origlen = %d, want 100", p.OrigLen)
	}
}

func TestRecordExceedingSnaplenRejected(t *testing.T) {
	var buf bytes.Buffer
	var fh [24]byte
	binary.LittleEndian.PutUint32(fh[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint32(fh[16:20], 4) // snaplen 4
	buf.Write(fh[:])
	var rh [16]byte
	binary.LittleEndian.PutUint32(rh[8:12], 100) // incl_len 100 > snaplen
	buf.Write(rh[:])
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, ErrSnaplen) {
		t.Errorf("err = %v, want ErrSnaplen", err)
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, LinkTypeEthernet); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil || len(pkts) != 0 {
		t.Errorf("ReadAll = %d pkts, %v", len(pkts), err)
	}
}

// Property: any sequence of packets round-trips byte-identically in
// data, original length, and (µs-truncated) timestamps.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw [][]byte, secs []uint32) bool {
		var buf bytes.Buffer
		w, err := NewWriterHeader(&buf, Header{LinkType: LinkTypeEthernet, Nanosecond: true})
		if err != nil {
			return false
		}
		n := len(raw)
		if len(secs) < n {
			n = len(secs)
		}
		in := make([]Packet, 0, n)
		for i := 0; i < n; i++ {
			p := Packet{
				Timestamp: time.Unix(int64(secs[i]), int64(i%1e9)).UTC(),
				Data:      raw[i],
			}
			if err := w.WritePacket(p); err != nil {
				return false
			}
			in = append(in, p)
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out, err := r.ReadAll()
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !bytes.Equal(out[i].Data, in[i].Data) {
				return false
			}
			if !out[i].Timestamp.Equal(in[i].Timestamp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
