package live

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// fakeClock is an injectable wall clock for deterministic sweeps.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// events converts a generated flow into its ingest event sequence.
func events(f *trace.Flow) []trace.RecordEvent {
	out := make([]trace.RecordEvent, len(f.Records))
	for i := range f.Records {
		out[i] = trace.RecordEvent{
			FlowID:   f.ID,
			Service:  f.Service,
			MSS:      f.MSS,
			InitRwnd: f.InitRwnd,
			Rec:      f.Records[i],
		}
	}
	return out
}

// TestMonitorMatchesBatch is the subsystem's equivalence guarantee:
// flows from every service model, their records interleaved
// round-robin across flows and pushed through the concurrent shard
// workers, must come out of eviction with FlowAnalysis JSON
// byte-identical to the batch analyzer's. Run under -race this also
// guards the shard locking.
func TestMonitorMatchesBatch(t *testing.T) {
	var flows []*trace.Flow
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 7, workload.GenOptions{Flows: 8}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
	}
	if len(flows) < 20 {
		t.Fatalf("generated only %d usable flows", len(flows))
	}

	var mu sync.Mutex
	got := map[string][]byte{}
	m := New(Config{
		Shards:   4,
		MaxFlows: 1024,
		RingSize: 1 << 14,
		OnFlow: func(reason string, a *core.FlowAnalysis) {
			b, err := core.MarshalAnalyses([]*core.FlowAnalysis{a})
			if err != nil {
				t.Errorf("marshal %s: %v", a.FlowID, err)
				return
			}
			mu.Lock()
			got[a.FlowID] = b
			mu.Unlock()
		},
	})
	m.Start()

	// Interleave: one record from each flow per round, so shard rings
	// carry a realistic multi-flow mix.
	evs := make([][]trace.RecordEvent, len(flows))
	for i, f := range flows {
		evs[i] = events(f)
	}
	for round := 0; ; round++ {
		fed := false
		for i := range evs {
			if round < len(evs[i]) {
				if !m.IngestWait(evs[i][round]) {
					t.Fatal("IngestWait refused while open")
				}
				fed = true
			}
		}
		if !fed {
			break
		}
	}
	m.Close()

	for _, f := range flows {
		want, err := core.MarshalAnalyses([]*core.FlowAnalysis{core.Analyze(f, core.Config{})})
		if err != nil {
			t.Fatal(err)
		}
		g, ok := got[f.ID]
		if !ok {
			t.Fatalf("flow %s never evicted", f.ID)
		}
		if !bytes.Equal(g, want) {
			t.Errorf("flow %s: live analysis differs from batch\nlive:  %s\nbatch: %s", f.ID, g, want)
		}
	}

	s := m.Snapshot()
	if s.RingDrops != 0 {
		t.Errorf("IngestWait path dropped %d records", s.RingDrops)
	}
	if int(s.FlowsSeen) != len(flows) {
		t.Errorf("FlowsSeen = %d, want %d", s.FlowsSeen, len(flows))
	}
}

// dataEvent builds a minimal outgoing data record event.
func dataEvent(id string, at sim.Time, seq uint32, n int) trace.RecordEvent {
	return trace.RecordEvent{
		FlowID: id,
		Rec: trace.Record{
			T:   at,
			Dir: tcpsim.DirOut,
			Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: seq, Len: n, Wnd: 65535},
		},
	}
}

// feedDirect pushes an event through its shard synchronously (monitor
// not started), keeping the test deterministic.
func feedDirect(m *Monitor, ev trace.RecordEvent) {
	m.shardOf(ev.FlowID).process(&ev)
}

func TestLRUEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var evicted []string
	m := New(Config{
		Shards:   1,
		MaxFlows: 3,
		Clock:    clk.Now,
		OnFlow: func(reason string, a *core.FlowAnalysis) {
			if reason == EvictLRU {
				evicted = append(evicted, a.FlowID)
			}
		},
	})
	for i, id := range []string{"a", "b", "c"} {
		feedDirect(m, dataEvent(id, sim.Time(i)*sim.Time(time.Millisecond), 1000, 1460))
	}
	// Touch "a" so "b" is now least recently active.
	feedDirect(m, dataEvent("a", sim.Time(10*time.Millisecond), 2460, 1460))
	feedDirect(m, dataEvent("d", sim.Time(11*time.Millisecond), 1000, 1460))

	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("LRU evicted %v, want [b]", evicted)
	}
	s := m.Snapshot()
	if s.ActiveFlows != 3 {
		t.Errorf("ActiveFlows = %d, want 3", s.ActiveFlows)
	}
	if s.FlowsEvicted[EvictLRU] != 1 {
		t.Errorf("lru evictions = %d, want 1", s.FlowsEvicted[EvictLRU])
	}
}

func TestRecordCapTruncates(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New(Config{Shards: 1, MaxRecordsPerFlow: 5, Clock: clk.Now})
	for i := 0; i < 9; i++ {
		feedDirect(m, dataEvent("f", sim.Time(i)*sim.Time(time.Millisecond), 1000+uint32(i)*1460, 1460))
	}
	s := m.Snapshot()
	if s.RecordsFed != 5 {
		t.Errorf("RecordsFed = %d, want 5", s.RecordsFed)
	}
	if s.RecordsCapDrop != 4 {
		t.Errorf("RecordsCapDrop = %d, want 4", s.RecordsCapDrop)
	}
	for _, fi := range m.Flows() {
		if !fi.Truncated {
			t.Errorf("flow %s not marked truncated", fi.ID)
		}
		if fi.Records != 5 {
			t.Errorf("flow %s retained %d records, want 5", fi.ID, fi.Records)
		}
	}
	// Truncation is surfaced again at eviction.
	m.SweepIdleNow(t)
	if got := m.Snapshot().FlowsTruncated; got != 1 {
		t.Errorf("FlowsTruncated = %d, want 1", got)
	}
}

// SweepIdleNow forces every flow out via the idle path regardless of
// configured timeout (test helper).
func (m *Monitor) SweepIdleNow(t *testing.T) {
	t.Helper()
	for _, sh := range m.shards {
		sh.mu.Lock()
		for sh.lru.Len() > 0 {
			sh.evictLocked(sh.lru.Back().Value.(*flowEntry), EvictIdle)
		}
		sh.mu.Unlock()
	}
}

func TestIdleSweep(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New(Config{Shards: 1, IdleTimeout: time.Minute, Clock: clk.Now})
	feedDirect(m, dataEvent("old", 0, 1000, 1460))
	clk.Advance(45 * time.Second)
	feedDirect(m, dataEvent("fresh", sim.Time(time.Second), 1000, 1460))

	m.SweepIdle()
	if got := m.Snapshot().ActiveFlows; got != 2 {
		t.Fatalf("premature idle eviction: ActiveFlows = %d, want 2", got)
	}

	clk.Advance(30 * time.Second) // "old" is 75s idle, "fresh" 30s
	m.SweepIdle()
	s := m.Snapshot()
	if s.ActiveFlows != 1 {
		t.Fatalf("ActiveFlows = %d, want 1", s.ActiveFlows)
	}
	if s.FlowsEvicted[EvictIdle] != 1 {
		t.Errorf("idle evictions = %d, want 1", s.FlowsEvicted[EvictIdle])
	}
	if fl := m.Flows(); len(fl) != 1 || fl[0].ID != "fresh" {
		t.Errorf("surviving flows = %+v, want [fresh]", fl)
	}
}

func TestTeardownEvicts(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	reasons := map[string]string{}
	m := New(Config{Shards: 1, Clock: clk.Now,
		OnFlow: func(reason string, a *core.FlowAnalysis) { reasons[a.FlowID] = reason }})

	// RST tears down immediately.
	feedDirect(m, dataEvent("rst", 0, 1000, 1460))
	rst := trace.RecordEvent{FlowID: "rst", Rec: trace.Record{
		T: sim.Time(time.Millisecond), Dir: tcpsim.DirIn,
		Seg: tcpsim.Segment{Flags: packet.FlagRST, Seq: 5000},
	}}
	feedDirect(m, rst)
	if reasons["rst"] != EvictDone {
		t.Fatalf("RST eviction reason = %q, want %q", reasons["rst"], EvictDone)
	}

	// FIN both ways, then the closing pure ACK.
	finOut := trace.RecordEvent{FlowID: "fin", Rec: trace.Record{
		T: 0, Dir: tcpsim.DirOut,
		Seg: tcpsim.Segment{Flags: packet.FlagFIN | packet.FlagACK, Seq: 2000},
	}}
	finIn := trace.RecordEvent{FlowID: "fin", Rec: trace.Record{
		T: sim.Time(time.Millisecond), Dir: tcpsim.DirIn,
		Seg: tcpsim.Segment{Flags: packet.FlagFIN | packet.FlagACK, Seq: 9000},
	}}
	lastAck := trace.RecordEvent{FlowID: "fin", Rec: trace.Record{
		T: sim.Time(2 * time.Millisecond), Dir: tcpsim.DirOut,
		Seg: tcpsim.Segment{Flags: packet.FlagACK, Seq: 2001, Ack: 9001},
	}}
	feedDirect(m, finOut)
	feedDirect(m, finIn)
	if r, ok := reasons["fin"]; ok {
		t.Fatalf("evicted before handshake completed (reason %q)", r)
	}
	feedDirect(m, lastAck)
	if reasons["fin"] != EvictDone {
		t.Fatalf("FIN eviction reason = %q, want %q", reasons["fin"], EvictDone)
	}
	if got := m.Snapshot().ActiveFlows; got != 0 {
		t.Errorf("ActiveFlows = %d after teardown, want 0", got)
	}
}

// TestRingFullDrops pins the shed-load contract: with the workers not
// started, the ring fills deterministically and Ingest refuses —
// counting, not blocking.
func TestRingFullDrops(t *testing.T) {
	m := New(Config{Shards: 1, RingSize: 2})
	ok1 := m.Ingest(dataEvent("f", 0, 1000, 1460))
	ok2 := m.Ingest(dataEvent("f", sim.Time(time.Millisecond), 2460, 1460))
	ok3 := m.Ingest(dataEvent("f", sim.Time(2*time.Millisecond), 3920, 1460))
	if !ok1 || !ok2 {
		t.Fatal("ring rejected records below capacity")
	}
	if ok3 {
		t.Fatal("ring accepted a record beyond capacity")
	}
	s := m.Snapshot()
	if s.Ingested != 2 || s.RingDrops != 1 {
		t.Errorf("Ingested/RingDrops = %d/%d, want 2/1", s.Ingested, s.RingDrops)
	}
	m.Start()
	m.Close()
	if !m.closed.Load() {
		t.Error("monitor did not close")
	}
	if m.Ingest(dataEvent("f", sim.Time(3*time.Millisecond), 5380, 1460)) {
		t.Error("Ingest accepted a record after Close")
	}
}

func TestShutdownFlushesAll(t *testing.T) {
	var mu sync.Mutex
	reasons := map[string]string{}
	m := New(Config{Shards: 2, OnFlow: func(reason string, a *core.FlowAnalysis) {
		mu.Lock()
		reasons[a.FlowID] = reason
		mu.Unlock()
	}})
	m.Start()
	for _, id := range []string{"x", "y", "z"} {
		m.IngestWait(dataEvent(id, 0, 1000, 1460))
	}
	m.Close()
	for _, id := range []string{"x", "y", "z"} {
		if reasons[id] != EvictShutdown {
			t.Errorf("flow %s eviction reason = %q, want %q", id, reasons[id], EvictShutdown)
		}
	}
	if got := m.Snapshot().ActiveFlows; got != 0 {
		t.Errorf("ActiveFlows after Close = %d, want 0", got)
	}
}
