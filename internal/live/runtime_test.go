package live

import (
	"fmt"
	"testing"
	"time"

	"tcpstall/internal/flight"
	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
	"tcpstall/internal/triage"
)

// rtEvent builds one outgoing data record for a flow — enough to
// admit it and advance its analyzer.
func rtEvent(flowID string, i int) trace.RecordEvent {
	return trace.RecordEvent{
		FlowID: flowID,
		MSS:    1460,
		Rec: trace.Record{
			T:   sim.Time(time.Duration(i) * 10 * time.Millisecond),
			Dir: tcpsim.DirOut,
			Seg: tcpsim.Segment{
				Seq:   uint32(1 + i*100),
				Len:   100,
				Wnd:   65535,
				Flags: packet.FlagACK | packet.FlagPSH,
			},
		},
	}
}

func feedN(m *Monitor, flowID string, n int) {
	evs := make([]trace.RecordEvent, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, rtEvent(flowID, i))
	}
	m.IngestBatchWait(evs)
}

// drain waits until the monitor's counters have settled: the shard
// rings are empty for two consecutive polls. Promotion replays can
// double-count a record (fast path + analyzer), so summed counters
// cannot be compared to Ingested directly.
func drain(m *Monitor) {
	deadline := time.Now().Add(5 * time.Second)
	stable := 0
	var last Snapshot
	for time.Now().Before(deadline) {
		s := m.Snapshot()
		if s.Ingested == last.Ingested &&
			s.RecordsFed == last.RecordsFed &&
			s.RecordsCapDrop == last.RecordsCapDrop &&
			s.TriageFastRecords == last.TriageFastRecords &&
			s.FlowsSeen == last.FlowsSeen {
			stable++
			if stable >= 3 {
				return
			}
		} else {
			stable = 0
		}
		last = s
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSetMaxRecordsPerFlowBetweenBatches(t *testing.T) {
	m := New(Config{Shards: 1, RingSize: 1 << 12})
	m.Start()
	defer m.Close()

	feedN(m, "f1", 10)
	drain(m)
	if s := m.Snapshot(); s.RecordsCapDrop != 0 {
		t.Fatalf("cap drops before retune: %d", s.RecordsCapDrop)
	}

	m.SetMaxRecordsPerFlow(12)
	if got := m.MaxRecordsPerFlow(); got != 12 {
		t.Fatalf("MaxRecordsPerFlow = %d, want 12", got)
	}
	// 10 already fed; the next batch may add 2 more, the other 8 must
	// be dropped and counted.
	feedN(m, "f1", 10)
	drain(m)
	s := m.Snapshot()
	if s.RecordsFed != 12 {
		t.Errorf("records fed = %d, want 12", s.RecordsFed)
	}
	if s.RecordsCapDrop != 8 {
		t.Errorf("cap drops = %d, want 8", s.RecordsCapDrop)
	}

	// 0 restores the constructed default (100000): a fresh flow runs
	// uncapped again.
	m.SetMaxRecordsPerFlow(0)
	if got := m.MaxRecordsPerFlow(); got != 100000 {
		t.Errorf("reset MaxRecordsPerFlow = %d, want constructed default 100000", got)
	}
	// Negative disables the cap outright.
	m.SetMaxRecordsPerFlow(-1)
	feedN(m, "f2", 20)
	drain(m)
	if s := m.Snapshot(); s.RecordsCapDrop != 8 {
		t.Errorf("cap drops after disable = %d, want unchanged 8", s.RecordsCapDrop)
	}
}

func TestSetTriageEnabledAffectsNewAdmissionsOnly(t *testing.T) {
	m := New(Config{Shards: 1, RingSize: 1 << 12, Triage: &triage.Config{}})
	m.Start()
	defer m.Close()

	if !m.TriageEnabled() {
		t.Fatal("triage should default on when configured")
	}
	feedN(m, "tri-flow", 3)
	drain(m)

	if !m.SetTriageEnabled(false) {
		t.Fatal("disabling triage rejected")
	}
	feedN(m, "full-flow", 3)
	// The pre-existing flow must stay on its fast path.
	feedN(m, "tri-flow", 3)
	drain(m)

	byID := map[string]FlowInfo{}
	for _, fi := range m.Flows() {
		byID[fi.ID] = fi
	}
	if !byID["tri-flow"].Triaged {
		t.Error("flow admitted under triage lost its fast path after the toggle")
	}
	if byID["full-flow"].Triaged {
		t.Error("flow admitted with triage disabled still went to the fast path")
	}

	if !m.SetTriageEnabled(true) {
		t.Fatal("re-enabling triage rejected")
	}
	feedN(m, "tri-flow-2", 3)
	drain(m)
	fi, ok := m.Flow("tri-flow-2")
	if !ok || !fi.Triaged {
		t.Errorf("flow admitted after re-enable not triaged: %+v (ok=%v)", fi, ok)
	}
}

func TestSetTriageEnabledRequiresConfiguredTriage(t *testing.T) {
	m := New(Config{Shards: 1})
	if m.SetTriageEnabled(true) {
		t.Error("enabling triage without Config.Triage should be rejected")
	}
	if m.TriageEnabled() {
		t.Error("TriageEnabled true without Config.Triage")
	}
	// Disabling is always allowed (it is already the effective state).
	if !m.SetTriageEnabled(false) {
		t.Error("disabling triage should always succeed")
	}
}

func TestSetFlightEnabledAffectsNewAnalyzers(t *testing.T) {
	m := New(Config{Shards: 1, RingSize: 1 << 12, Flight: &flight.Config{}})
	m.Start()
	defer m.Close()

	feedN(m, "with-flight", 3)
	drain(m)
	if !m.SetFlightEnabled(false) {
		t.Fatal("disabling flight rejected")
	}
	feedN(m, "no-flight", 3)
	drain(m)

	ft, ok := m.FlowTrace("with-flight")
	if !ok || !ft.Flight {
		t.Errorf("flow admitted with flight enabled has no recorder (ok=%v flight=%v)", ok, ft.Flight)
	}
	ft, ok = m.FlowTrace("no-flight")
	if !ok || ft.Flight {
		t.Errorf("flow admitted with flight disabled still has a recorder (ok=%v flight=%v)", ok, ft.Flight)
	}

	m2 := New(Config{Shards: 1})
	if m2.SetFlightEnabled(true) {
		t.Error("enabling flight without Config.Flight should be rejected")
	}
}

// TestRuntimeDefaultsMatchConfig pins that the knobs start exactly
// where the constructed Config put them, for every combination.
func TestRuntimeDefaultsMatchConfig(t *testing.T) {
	for _, tc := range []struct {
		triage, flight bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		t.Run(fmt.Sprintf("triage=%v flight=%v", tc.triage, tc.flight), func(t *testing.T) {
			cfg := Config{}
			if tc.triage {
				cfg.Triage = &triage.Config{}
			}
			if tc.flight {
				cfg.Flight = &flight.Config{}
			}
			m := New(cfg)
			if m.TriageEnabled() != tc.triage {
				t.Errorf("TriageEnabled = %v, want %v", m.TriageEnabled(), tc.triage)
			}
			if m.FlightEnabled() != tc.flight {
				t.Errorf("FlightEnabled = %v, want %v", m.FlightEnabled(), tc.flight)
			}
			if m.MaxRecordsPerFlow() != m.Config().MaxRecordsPerFlow {
				t.Errorf("MaxRecordsPerFlow = %d, want %d", m.MaxRecordsPerFlow(), m.Config().MaxRecordsPerFlow)
			}
		})
	}
}
