package live

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcpstall/internal/flight"
	"tcpstall/internal/sim"
)

// flightMonitor builds an unstarted monitor with recorders attached
// and one flow ("tapo-ev") that has stalled twice.
func flightMonitor(fcfg flight.Config) *Monitor {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New(Config{Shards: 1, Clock: clk.Now, Flight: &fcfg})
	feedDirect(m, dataEvent("tapo-ev", 0, 1000, 1460))
	feedDirect(m, dataEvent("tapo-ev", sim.Time(2*time.Second), 2460, 1460))
	feedDirect(m, dataEvent("tapo-ev", sim.Time(4*time.Second), 3920, 1460))
	return m
}

func TestHTTPFlowByID(t *testing.T) {
	m := flightMonitor(flight.Config{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	code, body := get(t, srv, "/flows/tapo-ev")
	if code != 200 {
		t.Fatalf("/flows/tapo-ev = %d %q", code, body)
	}
	var info FlowInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "tapo-ev" || info.Records != 3 || info.Stalls != 2 {
		t.Errorf("flow detail = %+v", info)
	}

	if code, body := get(t, srv, "/flows/no-such-flow"); code != 404 ||
		!strings.Contains(body, "unknown flow") {
		t.Errorf("/flows/no-such-flow = %d %q, want 404", code, body)
	}
}

func TestHTTPMalformedQuery(t *testing.T) {
	m := flightMonitor(flight.Config{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	for _, path := range []string{"/flows?n=abc", "/stalls?n=abc", "/flows?n=-1", "/stalls?n=-3"} {
		if code, body := get(t, srv, path); code != 400 || !strings.Contains(body, "bad query") {
			t.Errorf("%s = %d %q, want 400", path, code, body)
		}
	}

	// A valid limit trims the result set but keeps the true total.
	code, body := get(t, srv, "/stalls?n=1")
	if code != 200 {
		t.Fatalf("/stalls?n=1 = %d", code)
	}
	var stalls struct {
		Count  int         `json:"count"`
		Stalls []stallJSON `json:"stalls"`
	}
	if err := json.Unmarshal([]byte(body), &stalls); err != nil {
		t.Fatal(err)
	}
	if len(stalls.Stalls) != 1 || stalls.Stalls[0].ID != 1 {
		t.Errorf("limited /stalls kept %+v, want only the newest stall", stalls.Stalls)
	}
}

// /stalls must keep serving the retained ring while — and after — the
// monitor drains: observability cannot die before the process does.
func TestHTTPStallsDuringDrain(t *testing.T) {
	m := flightMonitor(flight.Config{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	m.Start()
	m.Close() // drains the (already processed) flow and stops the shards

	code, body := get(t, srv, "/stalls")
	if code != 200 {
		t.Fatalf("/stalls after drain = %d %q", code, body)
	}
	var stalls struct {
		Count  int         `json:"count"`
		Stalls []stallJSON `json:"stalls"`
	}
	if err := json.Unmarshal([]byte(body), &stalls); err != nil {
		t.Fatal(err)
	}
	if stalls.Count != 2 {
		t.Errorf("stall ring after drain = %+v", stalls)
	}
	for i, sj := range stalls.Stalls {
		if sj.ID != i {
			t.Errorf("stall %d carries ID %d — live IDs must match flow-scoped order", i, sj.ID)
		}
		if sj.Evidence == "" {
			t.Errorf("stall %d has no evidence ref", i)
		}
	}
	// Metrics stay scrapable too.
	if code, _ := get(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics after drain = %d", code)
	}
}

func TestHTTPDebugFlowTrace(t *testing.T) {
	m := flightMonitor(flight.Config{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	code, body := get(t, srv, "/debug/flows/tapo-ev/trace")
	if code != 200 {
		t.Fatalf("/debug/flows/tapo-ev/trace = %d %q", code, body)
	}
	var ft FlowTrace
	if err := json.Unmarshal([]byte(body), &ft); err != nil {
		t.Fatal(err)
	}
	if !ft.Flight || len(ft.Evidences) != 2 || len(ft.Events) == 0 {
		t.Fatalf("trace = flight=%v evidences=%d events=%d", ft.Flight, len(ft.Evidences), len(ft.Events))
	}
	ev := ft.Evidences[0]
	if len(ev.Decision) == 0 || len(ev.Window) == 0 {
		t.Errorf("evidence lacks decision path or window: %+v", ev)
	}
	// Live evidence is provisional until the flow is flushed.
	if !ev.Provisional {
		t.Errorf("mid-flow evidence should be provisional")
	}

	if code, _ := get(t, srv, "/debug/flows/gone/trace"); code != 404 {
		t.Errorf("unknown flow trace = %d, want 404", code)
	}

	// Without Config.Flight the endpoint still answers, flagged off.
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m2 := New(Config{Shards: 1, Clock: clk.Now})
	feedDirect(m2, dataEvent("plain", 0, 1000, 1460))
	srv2 := httptest.NewServer(NewHandler(m2))
	defer srv2.Close()
	code, body = get(t, srv2, "/debug/flows/plain/trace")
	if code != 200 {
		t.Fatalf("disabled-flight trace = %d", code)
	}
	var ft2 FlowTrace
	if err := json.Unmarshal([]byte(body), &ft2); err != nil {
		t.Fatal(err)
	}
	if ft2.Flight || len(ft2.Evidences) != 0 {
		t.Errorf("disabled-flight trace = %+v", ft2)
	}
}

// Evidence-ring truncation must be visible end to end: the per-flow
// debug endpoint reports live drop counts, and /metrics folds them in
// once the flow is evicted.
func TestEvidenceRingTruncationAccounting(t *testing.T) {
	// MaxStalls 1 forces an evidence eviction on the second stall;
	// RingSize 2 forces event overwrites.
	m := flightMonitor(flight.Config{MaxStalls: 1, RingSize: 2})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	code, body := get(t, srv, "/debug/flows/tapo-ev/trace")
	if code != 200 {
		t.Fatalf("trace = %d", code)
	}
	var ft FlowTrace
	if err := json.Unmarshal([]byte(body), &ft); err != nil {
		t.Fatal(err)
	}
	if ft.EvidenceDrops != 1 {
		t.Errorf("evidence_drops = %d, want 1 (cap 1, two stalls)", ft.EvidenceDrops)
	}
	if ft.EventDrops == 0 {
		t.Errorf("event_drops = 0, want >0 with a 2-slot ring")
	}
	if len(ft.Evidences) != 1 || ft.Evidences[0].Ref.Stall != 1 {
		t.Errorf("retained evidence = %+v, want only stall 1", ft.Evidences)
	}

	// Before eviction the flight counters haven't settled.
	if _, body := get(t, srv, "/metrics"); !strings.Contains(body, `tapod_flight_drops_total{kind="evidence"} 0`) {
		t.Errorf("flight drops settled before eviction:\n%s", grepLines(body, "tapod_flight"))
	}

	m.Start()
	m.Close() // evicts the flow (reason shutdown), folding drops in

	_, body = get(t, srv, "/metrics")
	for _, want := range []string{
		`tapod_flight_drops_total{kind="evidence"} 1`,
		`tapod_shard_ring_drops_total{shard="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q after eviction:\n%s", want, grepLines(body, "tapod_flight|tapod_shard"))
		}
	}
	if !strings.Contains(body, `tapod_flight_drops_total{kind="event"}`) ||
		strings.Contains(body, `tapod_flight_drops_total{kind="event"} 0`) {
		t.Errorf("event drops not folded in:\n%s", grepLines(body, "tapod_flight"))
	}
}

// Runtime self-observability gauges must be part of every scrape.
func TestMetricsRuntimeGauges(t *testing.T) {
	m := flightMonitor(flight.Config{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	for _, want := range []string{
		"tapod_goroutines ",
		"tapod_heap_alloc_bytes ",
		"tapod_gc_pause_seconds_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing runtime gauge %q", want)
		}
	}
}

// grepLines filters body to lines matching any |-separated substring,
// keeping failure output readable.
func grepLines(body, pats string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		for _, p := range strings.Split(pats, "|") {
			if strings.Contains(line, p) {
				out = append(out, line)
				break
			}
		}
	}
	return strings.Join(out, "\n")
}
