// Package live turns TAPO into an always-on, bounded-memory server
// monitor. A Monitor shards live flows over per-shard goroutines fed
// by bounded ingest rings; each flow's records stream through the
// same incremental analyzer (core.Incremental) the batch path uses,
// so a flow evicted after teardown carries exactly the analysis
// core.Analyze would have produced from its completed trace.
//
// Memory is hard-bounded: the flow table caps active flows (LRU
// eviction), each flow caps retained analyzer records, and the ingest
// rings cap queued events — every discard is counted, never silent.
// Stalls surface the moment they close; per-service cause counters, a
// rolling aggregation window, stall-duration histograms and the
// Table-5 retransmission breakdown feed the /metrics and admin planes
// (see NewHandler).
package live

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/flight"
	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/stats"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
	"tcpstall/internal/triage"
)

// Eviction reasons, as they appear in metrics labels.
const (
	EvictDone     = "done"     // connection tore down (RST or FIN handshake)
	EvictIdle     = "idle"     // no packet for Config.IdleTimeout
	EvictLRU      = "lru"      // flow table full; least-recently-active flow displaced
	EvictShutdown = "shutdown" // monitor closing
)

// Config tunes a Monitor. The zero value selects the documented
// defaults.
type Config struct {
	// Shards is the number of flow-table shards, each owned by one
	// goroutine (default: GOMAXPROCS).
	Shards int
	// MaxFlows caps active flows across all shards (default 65536).
	// Admitting a flow to a full shard evicts its least-recently-active
	// flow first (reason "lru").
	MaxFlows int
	// MaxRecordsPerFlow caps the records fed to any one flow's
	// analyzer (default 100000; <0 disables). Beyond the cap the
	// flow's later records are dropped and counted, and its analysis
	// covers the retained prefix — one elephant flow cannot grow
	// scoreboard memory without bound.
	MaxRecordsPerFlow int
	// IdleTimeout evicts flows with no packet for this long on the
	// wall clock (default 5m; sweeps run on SweepEvery).
	IdleTimeout time.Duration
	// SweepEvery is the idle-sweep period (default IdleTimeout/4).
	SweepEvery time.Duration
	// RingSize is the per-shard ingest buffer in events (default
	// 4096). Ingest drops (with accounting) when a ring is full;
	// IngestWait blocks instead — that is the backpressure mode.
	RingSize int
	// Window/WindowBuckets shape the rolling aggregation window
	// (default 60s over 12 buckets).
	Window        time.Duration
	WindowBuckets int
	// RecentStalls bounds the admin plane's recent-stall ring
	// (default 256).
	RecentStalls int
	// DigestSize bounds the stall digest — the drain-and-reset event
	// buffer a fleet member attaches to each snapshot push (default
	// 256; negative disables). The digest keeps the FIRST DigestSize
	// stall closes between drains and counts the overflow, so a stall
	// storm bounds push size instead of growing it.
	DigestSize int
	// Analysis parameterizes the per-flow analyzer (zero value:
	// core.DefaultConfig).
	Analysis core.Config
	// Flight, when non-nil, attaches a flight recorder (with these
	// settings; zero fields select flight defaults) to every admitted
	// flow, so /debug/flows/{id}/trace can serve per-stall evidence.
	// Nil keeps the analyzers on their zero-overhead path.
	Flight *flight.Config
	// Triage, when non-nil, enables two-phase monitoring: every flow
	// starts on the triage fast path (counters plus a bounded ring of
	// recent records, no scoreboard) and is promoted to a full
	// analyzer — the ring replayed so the analyzer sees the exact
	// history — only when a stall symptom fires. A promoted flow that
	// stays symptom-free for Triage.DemoteAfter parks its analyzer;
	// repromotion replays the parked suffix into the same analyzer,
	// so verdicts stay byte-identical to always-on analysis whenever
	// the ring is deep enough. Zero fields inherit the documented
	// triage defaults, with Tau/MinRTO/InitRTO mirroring Analysis.
	Triage *triage.Config
	// Clock supplies wall time (default time.Now; injectable for
	// tests).
	Clock func() time.Time
	// OnFlow, when set, receives each evicted flow's settled
	// analysis. Called from shard goroutines with the shard locked:
	// it must be fast and must not call back into the Monitor.
	OnFlow func(reason string, a *core.FlowAnalysis)
	// OnStall, when set, receives each stall as it closes. Same
	// constraints as OnFlow.
	OnStall func(core.LiveStall)
}

func (c *Config) defaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 65536
	}
	if c.MaxRecordsPerFlow == 0 {
		c.MaxRecordsPerFlow = 100000
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.IdleTimeout / 4
	}
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = 12
	}
	if c.RecentStalls <= 0 {
		c.RecentStalls = 256
	}
	if c.DigestSize == 0 {
		c.DigestSize = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Triage != nil {
		// The fast path's conservative thresholds must mirror the
		// analyzer configuration actually in use, or the
		// no-missed-stall argument breaks.
		eff := c.Analysis
		if eff.Tau <= 0 {
			eff = core.DefaultConfig()
		}
		t := *c.Triage
		if t.Tau <= 0 {
			t.Tau = eff.Tau
		}
		if t.MinRTO <= 0 {
			t.MinRTO = eff.MinRTO
		}
		if t.InitRTO <= 0 {
			t.InitRTO = eff.InitRTO
		}
		t = t.WithDefaults()
		c.Triage = &t
	}
}

// Monitor is the live flow table. Create with New, Start, feed with
// Ingest/IngestWait, and Close to drain.
type Monitor struct {
	cfg     Config
	shards  []*shard
	started atomic.Bool
	closed  atomic.Bool
	wg      sync.WaitGroup
	startAt time.Time

	ingested  atomic.Uint64
	ringDrops atomic.Uint64

	// Runtime-tunable knobs — the subset of Config a fleet head may
	// re-push while the monitor runs. Reads are single atomic loads on
	// the feed path; writes take effect for subsequent records
	// (dynMaxRecs) or subsequently admitted flows (dynTriage,
	// dynFlight), so a caller that only writes between ingest batches
	// gets batch-atomic semantics.
	dynMaxRecs atomic.Int64
	dynTriage  atomic.Bool
	dynFlight  atomic.Bool

	// batchFree recycles the per-shard event buffers IngestBatchWait
	// splits a batch into: the shard returns each buffer after
	// draining it, so steady-state batch intake allocates nothing.
	batchFree batchFreeList

	recent stallRing
	digest stallDigest
}

// batchFreeList is a mutex-guarded stack of event buffers shared by
// IngestBatchWait (producer side) and the shard goroutines (return
// side). One lock operation per batch, not per record.
type batchFreeList struct {
	mu   sync.Mutex
	free [][]trace.RecordEvent
}

// batchFreeMax bounds retained buffers so a burst cannot pin memory.
const batchFreeMax = 64

func (p *batchFreeList) get() []trace.RecordEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b[:0]
	}
	return nil
}

func (p *batchFreeList) put(b []trace.RecordEvent) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < batchFreeMax {
		p.free = append(p.free, b[:0])
	}
}

// New builds a Monitor (not yet running; call Start).
func New(cfg Config) *Monitor {
	cfg.defaults()
	m := &Monitor{cfg: cfg}
	m.dynMaxRecs.Store(int64(cfg.MaxRecordsPerFlow))
	m.dynTriage.Store(cfg.Triage != nil)
	m.dynFlight.Store(cfg.Flight != nil)
	m.recent.buf = make([]core.LiveStall, cfg.RecentStalls)
	if cfg.DigestSize > 0 {
		m.digest.cap = cfg.DigestSize
	}
	perShard := cfg.MaxFlows / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			m:        m,
			in:       make(chan trace.RecordEvent, cfg.RingSize),
			inb:      make(chan []trace.RecordEvent, 64),
			flows:    map[string]*flowEntry{},
			maxFlows: perShard,
			agg:      newAggregates(cfg.Window, cfg.WindowBuckets),
		}
		if cfg.Triage != nil {
			sh.arena = triage.NewArena()
		}
		m.shards = append(m.shards, sh)
	}
	return m
}

// Config reports the (defaulted) configuration in effect.
func (m *Monitor) Config() Config { return m.cfg }

// SetMaxRecordsPerFlow retunes the per-flow analyzer record cap at
// runtime: n > 0 sets the cap, n < 0 disables it, n == 0 restores the
// constructed configuration's value. Takes effect for the next record
// of every flow (already-truncated flows stay truncated).
func (m *Monitor) SetMaxRecordsPerFlow(n int) {
	if n == 0 {
		n = m.cfg.MaxRecordsPerFlow
	}
	m.dynMaxRecs.Store(int64(n))
}

// MaxRecordsPerFlow reports the per-flow record cap currently in
// effect (negative: unlimited).
func (m *Monitor) MaxRecordsPerFlow() int { return int(m.dynMaxRecs.Load()) }

// SetTriageEnabled steers subsequently admitted flows onto (true) or
// off (false) the two-phase fast path. Flows already admitted keep
// the mode they started with — mid-flow conversion would forfeit the
// byte-identical-verdict guarantee. Enabling requires Config.Triage
// to have been set at construction (the fast-path thresholds and
// shard arenas exist only then); it reports whether the request took
// effect.
func (m *Monitor) SetTriageEnabled(on bool) bool {
	if on && m.cfg.Triage == nil {
		return false
	}
	m.dynTriage.Store(on)
	return true
}

// TriageEnabled reports whether newly admitted flows start on the
// triage fast path.
func (m *Monitor) TriageEnabled() bool { return m.cfg.Triage != nil && m.dynTriage.Load() }

// SetFlightEnabled attaches (true) or withholds (false) flight
// recorders on subsequently created analyzers. Requires Config.Flight
// at construction; reports whether the request took effect.
func (m *Monitor) SetFlightEnabled(on bool) bool {
	if on && m.cfg.Flight == nil {
		return false
	}
	m.dynFlight.Store(on)
	return true
}

// FlightEnabled reports whether new analyzers get a flight recorder.
func (m *Monitor) FlightEnabled() bool { return m.cfg.Flight != nil && m.dynFlight.Load() }

// Start launches the shard workers.
func (m *Monitor) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	m.startAt = m.cfg.Clock()
	for _, sh := range m.shards {
		m.wg.Add(1)
		go sh.run()
	}
}

// shardOf maps a flow ID onto its shard (FNV-1a).
func (m *Monitor) shardOf(id string) *shard {
	return m.shards[m.shardIdx(id)]
}

func (m *Monitor) shardIdx(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(len(m.shards)))
}

// Ingest offers one record without blocking. It reports false — and
// counts the drop — when the target shard's ring is full or the
// monitor is closed. This is the shed-load mode: the capture keeps
// up, the monitor sees what it can.
func (m *Monitor) Ingest(ev trace.RecordEvent) bool {
	if m.closed.Load() {
		m.ringDrops.Add(1)
		return false
	}
	sh := m.shardOf(ev.FlowID)
	select {
	case sh.in <- ev:
		m.ingested.Add(1)
		return true
	default:
		m.ringDrops.Add(1)
		sh.ringDrops.Add(1)
		return false
	}
}

// IngestWait blocks until the record is queued — backpressure mode
// for replay sources that prefer slowing down to dropping. It reports
// false only when the monitor is closed.
func (m *Monitor) IngestWait(ev trace.RecordEvent) bool {
	if m.closed.Load() {
		m.ringDrops.Add(1)
		return false
	}
	m.shardOf(ev.FlowID).in <- ev
	m.ingested.Add(1)
	return true
}

// IngestBatchWait queues a slice of records in one pass, blocking
// like IngestWait: events are grouped by shard (order preserved
// within each flow) and handed over one channel operation per shard
// instead of per record — the line-rate intake path for replay and
// generation sources that produce records faster than a per-record
// channel hop can move them. The caller keeps ownership of evs; its
// contents are copied. Records of one flow must not be split between
// concurrent IngestBatchWait calls or mixed with per-record Ingest
// calls, or their relative order is undefined. It reports false only
// when the monitor is closed.
func (m *Monitor) IngestBatchWait(evs []trace.RecordEvent) bool {
	if len(evs) == 0 {
		return true
	}
	if m.closed.Load() {
		m.ringDrops.Add(uint64(len(evs)))
		return false
	}
	if len(m.shards) == 1 {
		b := append(m.batchFree.get(), evs...)
		m.shards[0].inb <- b
		m.ingested.Add(uint64(len(evs)))
		return true
	}
	// Split by shard into recycled buffers; each shard returns its
	// buffer to the free list once drained. The outer index array is
	// stack-sized for the common shard counts.
	var bufArr [64][]trace.RecordEvent
	var bufs [][]trace.RecordEvent
	if len(m.shards) <= len(bufArr) {
		bufs = bufArr[:len(m.shards)]
	} else {
		bufs = make([][]trace.RecordEvent, len(m.shards))
	}
	for i := range evs {
		s := m.shardIdx(evs[i].FlowID)
		if bufs[s] == nil {
			bufs[s] = m.batchFree.get()
			if bufs[s] == nil {
				bufs[s] = make([]trace.RecordEvent, 0, len(evs))
			}
		}
		bufs[s] = append(bufs[s], evs[i])
	}
	for s, b := range bufs {
		if len(b) > 0 {
			m.shards[s].inb <- b
		}
	}
	m.ingested.Add(uint64(len(evs)))
	return true
}

// Close stops intake, drains the rings, flushes every remaining flow
// (reason "shutdown") and waits for the shard workers to exit.
func (m *Monitor) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range m.shards {
		close(sh.in)
		close(sh.inb)
	}
	if m.started.Load() {
		m.wg.Wait()
	}
}

// flowEntry is one live flow's state, owned by its shard. In triage
// mode inc is nil until the flow's first promotion; once created it
// survives demotion (parked, so repromotion replays into warm state)
// until eviction.
type flowEntry struct {
	id        string
	inc       *core.Incremental // guarded by the owning shard's mu (external)
	rec       *flight.Recorder  // nil unless Config.Flight is set
	tri       *triage.Flow      // guarded by the owning shard's mu (external)
	promoted  bool              // guarded by the owning shard's mu (external)
	meta      core.FlowMeta
	el        *list.Element // guarded by the owning shard's mu (external)
	lastSeen  time.Time     // guarded by the owning shard's mu (external)
	finOut    bool          // guarded by the owning shard's mu (external)
	finIn     bool          // guarded by the owning shard's mu (external)
	dropped   int           // guarded by the owning shard's mu (external)
	truncated bool          // guarded by the owning shard's mu (external)
}

// shard owns one slice of the flow table. Its goroutine is the only
// writer; Snapshot and the admin plane read under mu.
type shard struct {
	m  *Monitor
	in chan trace.RecordEvent
	// inb carries pre-grouped event batches (IngestBatchWait): one
	// channel operation per batch instead of per record.
	inb      chan []trace.RecordEvent
	maxFlows int
	// ringDrops counts records shed at THIS shard's full ring — the
	// per-shard split of Monitor.ringDrops, so /metrics can show which
	// shard a hot flow is overloading.
	ringDrops atomic.Uint64

	mu sync.Mutex
	// flows is the live flow table. guarded by mu
	flows map[string]*flowEntry
	// arena recycles triage ring backings across this shard's flows
	// (nil outside triage mode). guarded by mu
	arena *triage.Arena
	// scratch batches consecutive same-flow records for FeedBatch;
	// reused across runs so the batch path allocates nothing in
	// steady state. guarded by mu
	scratch []trace.Record
	// lru orders entries front = most recently active; values are
	// *flowEntry. guarded by mu
	lru list.List
	// agg folds per-shard counters and stall aggregates. guarded by mu
	agg *aggregates
	// promoted/parked count triage-mode flows with a live analyzer
	// (actively fed / demoted but retained). guarded by mu
	promoted int
	parked   int
}

// drainBatch bounds how many queued events one lock acquisition may
// process: large enough to amortize the mutex and clock read to
// noise, small enough that Snapshot and the admin plane never wait
// behind a full ring.
const drainBatch = 256

func (sh *shard) run() {
	defer sh.m.wg.Done()
	sweep := time.NewTicker(sh.m.cfg.SweepEvery)
	defer sweep.Stop()
	for {
		select {
		case ev, ok := <-sh.in:
			if !ok {
				sh.drainAndShutdown()
				return
			}
			// Batch drain: everything already queued behind this event
			// is processed under one lock with one clock read — the
			// per-record overhead that would otherwise dominate the
			// triage fast path.
			closed := false
			now := sh.m.cfg.Clock()
			sh.mu.Lock()
			sh.processLocked(now, &ev)
			for n := 1; n < drainBatch && !closed; n++ {
				select {
				case ev, ok = <-sh.in:
					if !ok {
						closed = true
						break
					}
					sh.processLocked(now, &ev)
				default:
					n = drainBatch
				}
			}
			sh.mu.Unlock()
			if closed {
				sh.drainAndShutdown()
				return
			}
		case evs, ok := <-sh.inb:
			if !ok {
				sh.drainAndShutdown()
				return
			}
			sh.processBatch(evs)
			sh.m.batchFree.put(evs)
		case <-sweep.C:
			sh.SweepIdle()
		}
	}
}

// processBatch runs one pre-grouped event batch under a single lock
// acquisition and clock read, splitting it into consecutive same-flow
// runs so always-on flows are fed through FeedBatch instead of
// re-entering Feed per record.
func (sh *shard) processBatch(evs []trace.RecordEvent) {
	now := sh.m.cfg.Clock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < len(evs); {
		j := i + 1
		for j < len(evs) && evs[j].FlowID == evs[i].FlowID {
			j++
		}
		for i < j {
			i += sh.processRunLocked(now, evs[i:j])
		}
	}
}

// drainAndShutdown empties both intake channels, then evicts
// everything. Close closes them together, so both ranges terminate.
func (sh *shard) drainAndShutdown() {
	for ev := range sh.in {
		sh.process(&ev)
	}
	for evs := range sh.inb {
		sh.processBatch(evs)
		sh.m.batchFree.put(evs)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.lru.Len() > 0 {
		sh.evictLocked(sh.lru.Back().Value.(*flowEntry), EvictShutdown)
	}
}

// process feeds one event through its flow's analyzer, admitting,
// truncating or evicting as the caps and teardown dictate.
func (sh *shard) process(ev *trace.RecordEvent) {
	now := sh.m.cfg.Clock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.processLocked(now, ev)
}

// processLocked is process with the lock held and the wall clock
// read, so a batch drain pays for both once.
func (sh *shard) processLocked(now time.Time, ev *trace.RecordEvent) {
	e := sh.admitLocked(now, ev)
	sh.feedLocked(e, ev)
}

// admitLocked looks up ev's flow, admitting it (displacing the
// least-recently-active flow when full) if new, refreshes its recency
// and absorbs late-arriving meta facts. Callers hold sh.mu.
func (sh *shard) admitLocked(now time.Time, ev *trace.RecordEvent) *flowEntry {
	e := sh.flows[ev.FlowID]
	if e == nil {
		// Admission: displace the least-recently-active flow when full.
		for len(sh.flows) >= sh.maxFlows && sh.lru.Len() > 0 {
			sh.evictLocked(sh.lru.Back().Value.(*flowEntry), EvictLRU)
		}
		e = &flowEntry{
			id: ev.FlowID,
			meta: core.FlowMeta{
				ID:       ev.FlowID,
				Service:  ev.Service,
				MSS:      ev.MSS,
				InitRwnd: ev.InitRwnd,
			},
		}
		if sh.m.TriageEnabled() {
			// Two-phase mode: the flow starts on the fast path; the
			// analyzer is built lazily at first promotion. Ring backings
			// come from the shard arena and return at eviction.
			e.tri = triage.NewFlowIn(*sh.m.cfg.Triage, sh.arena)
		} else {
			e.inc = core.NewIncremental(sh.m.cfg.Analysis)
			e.inc.SetMeta(e.meta)
			e.inc.OnStall = sh.stallClosedLocked
			if sh.m.FlightEnabled() {
				e.rec = flight.NewRecorder(*sh.m.cfg.Flight)
				e.inc.SetRecorder(e.rec)
			}
		}
		e.el = sh.lru.PushFront(e)
		sh.flows[ev.FlowID] = e
		sh.agg.flowsSeen++
	} else {
		if sh.lru.Front() != e.el {
			sh.lru.MoveToFront(e.el)
		}
		sh.absorbMetaLocked(e, ev)
	}
	e.lastSeen = now
	return e
}

// absorbMetaLocked folds late facts — the SYN's MSS, the client's
// initial window — into an admitted flow. Callers hold sh.mu.
func (sh *shard) absorbMetaLocked(e *flowEntry, ev *trace.RecordEvent) {
	if (ev.MSS > 0 && ev.MSS != e.meta.MSS) || (ev.InitRwnd != 0 && e.meta.InitRwnd == 0) {
		if ev.MSS > 0 {
			e.meta.MSS = ev.MSS
		}
		if ev.InitRwnd != 0 && e.meta.InitRwnd == 0 {
			e.meta.InitRwnd = ev.InitRwnd
		}
		if e.inc != nil {
			e.inc.SetMeta(e.meta)
		}
	}
}

// feedLocked runs the cap check, the feed (triage fast path or
// always-on analyzer) and the teardown check for one event of an
// already-admitted flow, reporting whether the flow was evicted.
// Callers hold sh.mu.
func (sh *shard) feedLocked(e *flowEntry, ev *trace.RecordEvent) bool {
	capRecs := int(sh.m.dynMaxRecs.Load())
	over := false
	if capRecs > 0 {
		if e.tri != nil {
			over = e.tri.Total() >= uint64(capRecs)
		} else {
			over = e.inc.Records() >= capRecs
		}
	}
	switch {
	case over:
		// Elephant-flow guard: analysis covers the retained prefix.
		e.truncated = true
		e.dropped++
		sh.agg.recordsCapDrop++
	case e.tri != nil:
		sh.processTriagedLocked(e, ev)
	default:
		e.inc.Feed(&ev.Rec)
		sh.agg.recordsFed++
	}

	if done := observeTeardown(e, ev); done || ev.FlowDone {
		sh.evictLocked(e, EvictDone)
		return true
	}
	return false
}

// processRunLocked processes a prefix of run — events that all carry
// one flow ID — and returns how many it consumed. Always-on flows
// take the FeedBatch path; triage flows stay per-record, since
// Observe's symptom machine wants each record individually. A
// teardown mid-run evicts the flow and returns early: the caller
// re-enters with the remainder, which then opens a fresh flow exactly
// as the per-record path would. Callers hold sh.mu.
func (sh *shard) processRunLocked(now time.Time, run []trace.RecordEvent) int {
	e := sh.admitLocked(now, &run[0])
	if e.tri == nil {
		return sh.feedRunLocked(e, run)
	}
	for i := range run {
		if i > 0 {
			sh.absorbMetaLocked(e, &run[i])
		}
		if sh.feedLocked(e, &run[i]) {
			return i + 1
		}
	}
	return len(run)
}

// feedRunLocked streams one always-on flow's run through FeedBatch:
// records accumulate in the shard scratch buffer and flush at exactly
// the boundaries where per-record processing would have acted — a
// meta change (SetMeta must not overtake earlier records), the
// per-flow record cap, teardown, and the end of the run. Returns how
// many events it consumed. Callers hold sh.mu.
func (sh *shard) feedRunLocked(e *flowEntry, run []trace.RecordEvent) int {
	pending := sh.scratch[:0]
	capRecs := int(sh.m.dynMaxRecs.Load())
	consumed := len(run)
	evict := false
	for i := range run {
		ev := &run[i]
		if (ev.MSS > 0 && ev.MSS != e.meta.MSS) || (ev.InitRwnd != 0 && e.meta.InitRwnd == 0) {
			if len(pending) > 0 {
				e.inc.FeedBatch(pending)
				sh.agg.recordsFed += uint64(len(pending))
				pending = pending[:0]
			}
			if ev.MSS > 0 {
				e.meta.MSS = ev.MSS
			}
			if ev.InitRwnd != 0 && e.meta.InitRwnd == 0 {
				e.meta.InitRwnd = ev.InitRwnd
			}
			e.inc.SetMeta(e.meta)
		}
		if capRecs > 0 && e.inc.Records()+len(pending) >= capRecs {
			// Elephant-flow guard: analysis covers the retained prefix.
			e.truncated = true
			e.dropped++
			sh.agg.recordsCapDrop++
		} else {
			pending = append(pending, ev.Rec)
		}
		if done := observeTeardown(e, ev); done || ev.FlowDone {
			consumed = i + 1
			evict = true
			break
		}
	}
	if len(pending) > 0 {
		e.inc.FeedBatch(pending)
		sh.agg.recordsFed += uint64(len(pending))
	}
	sh.scratch = pending[:0]
	if evict {
		sh.evictLocked(e, EvictDone)
	}
	return consumed
}

// processTriagedLocked runs one record of a triage-mode flow: fast path
// first, promotion on symptom, then synchronous replay while
// promoted. Callers hold sh.mu.
func (sh *shard) processTriagedLocked(e *flowEntry, ev *trace.RecordEvent) {
	sym, spill, spilled := e.tri.Observe(&ev.Rec)
	sh.agg.triFastRecords++
	if spilled {
		// The ring overwrote a record the parked analyzer had not
		// consumed: trickle-feed it so parked state stays exact at
		// bounded lag.
		e.inc.Feed(&spill)
		sh.agg.recordsFed++
	}
	if sym != triage.SymNone && !e.promoted {
		sh.promoteLocked(e, sym)
	}
	if !e.promoted {
		return
	}
	e.tri.ReplayUnfed(func(r *trace.Record) {
		e.inc.Feed(r)
		sh.agg.recordsFed++
	})
	if sym == triage.SymNone && e.tri.SinceSymptom(ev.Rec.T) > sh.m.cfg.Triage.DemoteAfter {
		// Healed: park the analyzer. Its state is retained so a later
		// repromotion replays the buffered suffix into warm state and
		// the stall set stays identical to always-on analysis.
		e.promoted = false
		sh.promoted--
		sh.parked++
		sh.agg.triDemotions++
	}
}

// promoteLocked attaches a full analyzer to a symptomatic flow —
// fresh on first promotion (flight recorder included when
// configured), re-attached from parked state afterwards. Callers hold
// sh.mu; the caller replays the buffered suffix right after.
func (sh *shard) promoteLocked(e *flowEntry, sym triage.Symptom) {
	if e.inc == nil {
		e.inc = core.NewIncremental(sh.m.cfg.Analysis)
		e.inc.SetMeta(e.meta)
		e.inc.OnStall = sh.stallClosedLocked
		if sh.m.FlightEnabled() {
			e.rec = flight.NewRecorder(*sh.m.cfg.Flight)
			e.inc.SetRecorder(e.rec)
		}
	} else {
		sh.parked--
		sh.agg.triRepromotions++
	}
	if e.tri.Attach() {
		// The symptom's earliest evidence predates the ring: the
		// analyzer replays from the ring start, conservatively.
		sh.agg.triTruncatedPromotions++
	}
	e.promoted = true
	sh.promoted++
	sh.agg.triPromotions[sym.String()]++
}

// observeTeardown mirrors the pcap demuxer's completion rule: RST
// ends the connection outright; after FINs both ways, the next pure
// ACK does.
func observeTeardown(e *flowEntry, ev *trace.RecordEvent) bool {
	seg := &ev.Rec.Seg
	switch {
	case seg.Flags.Has(packet.FlagRST):
		return true
	case seg.Flags.Has(packet.FlagFIN):
		if ev.Rec.Dir == tcpsim.DirOut {
			e.finOut = true
		} else {
			e.finIn = true
		}
	case e.finOut && e.finIn && seg.Len == 0 && !seg.Flags.Has(packet.FlagSYN):
		return true
	}
	return false
}

// stallClosedLocked runs synchronously inside Feed; the caller (the
// shard goroutine, via process) holds sh.mu.
func (sh *shard) stallClosedLocked(ls core.LiveStall) {
	now := sh.m.cfg.Clock()
	sh.agg.stallClosed(now, ls)
	sh.m.recent.push(ls)
	sh.m.digest.push(now, ls)
	if sh.m.cfg.OnStall != nil {
		sh.m.cfg.OnStall(ls)
	}
}

// evictLocked flushes and removes one flow. Callers hold sh.mu.
//
// In triage mode an ever-promoted flow may still hold buffered
// records its analyzer has not consumed — including the records that
// would close a pending stall. Those are replayed through the
// analyzer BEFORE Flush, so eviction mid-stall settles the stall
// instead of silently dropping it. A never-promoted flow is provably
// stall-free (any stall-closing record would have raised the gap
// symptom), so it gets a cheap synthesized summary with no replay —
// that is the whole speedup.
func (sh *shard) evictLocked(e *flowEntry, reason string) {
	delete(sh.flows, e.id)
	sh.lru.Remove(e.el)
	var a *core.FlowAnalysis
	if e.inc != nil {
		if e.tri != nil {
			e.tri.ReplayUnfed(func(r *trace.Record) {
				e.inc.Feed(r)
				sh.agg.recordsFed++
			})
		}
		a = e.inc.Flush()
	} else {
		a = synthesizeSummary(e)
	}
	if e.tri != nil {
		if e.promoted {
			sh.promoted--
		} else if e.inc != nil {
			sh.parked--
		}
		// The summary and any replay are settled; the ring backing can
		// go back to the shard arena for the next admitted flow.
		e.tri.Release()
	}
	sh.agg.flowEvicted(reason, a, e.truncated)
	if e.rec != nil {
		// Flight-ring truncation is settled at eviction: what the
		// rings overwrote while the flow lived is final now.
		sh.agg.flightEventDrops += e.rec.EventDrops()
		sh.agg.flightEvidenceDrops += e.rec.EvidenceDrops()
	}
	if sh.m.cfg.OnFlow != nil {
		sh.m.cfg.OnFlow(reason, a)
	}
}

// satInt narrows a uint64 counter to int for reporting, saturating at
// the platform maximum instead of wrapping negative.
func satInt(u uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if u > uint64(maxInt) {
		return maxInt
	}
	return int(u)
}

// synthesizeSummary builds the eviction analysis for a flow the fast
// path never promoted. Such a flow provably has zero stalls — the
// fast gap threshold lower-bounds the analyzer's at every record, so
// a stall-closing gap would have promoted — and, having never raised
// the retransmission symptom, every outgoing data segment advanced
// the send edge, so the segment count equals the analyzer's
// DataPackets. The per-ACK series (RTT samples, in_flight) are the
// price of the fast path and stay empty.
func synthesizeSummary(e *flowEntry) *core.FlowAnalysis {
	a := &core.FlowAnalysis{
		FlowID:      e.meta.ID,
		Service:     e.meta.Service,
		InitRwnd:    e.meta.InitRwnd,
		DataPackets: e.tri.OutDataSegments(),
		DataBytes:   e.tri.DataBytes(),
	}
	if e.tri.Total() > 1 {
		a.TransmissionTime = e.tri.LastT().Sub(e.tri.FirstT())
	}
	return a
}

// SweepIdle evicts flows idle past the configured timeout. The shard
// workers call it periodically; tests may call it directly.
func (sh *shard) SweepIdle() {
	cutoff := sh.m.cfg.Clock().Add(-sh.m.cfg.IdleTimeout)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Walk from the LRU tail: the first fresh-enough flow ends the
	// sweep, since recency is monotone along the list.
	for sh.lru.Len() > 0 {
		e := sh.lru.Back().Value.(*flowEntry)
		if !e.lastSeen.Before(cutoff) {
			return
		}
		sh.evictLocked(e, EvictIdle)
	}
}

// SweepIdle runs an idle sweep across every shard (exposed for tests
// and the admin plane).
func (m *Monitor) SweepIdle() {
	for _, sh := range m.shards {
		sh.SweepIdle()
	}
}

// stallRing keeps the most recent stall events for the admin plane.
type stallRing struct {
	mu sync.Mutex
	// buf is the fixed ring storage. guarded by mu
	buf []core.LiveStall
	// next is the slot the next push lands in. guarded by mu
	next int
	// n is the number of live entries. guarded by mu
	n int
}

func (r *stallRing) push(ls core.LiveStall) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = ls
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns the retained stalls, oldest first.
func (r *stallRing) list() []core.LiveStall {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.LiveStall, 0, r.n)
	if len(r.buf) == 0 {
		return out
	}
	start := (r.next - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// RecentStalls returns the most recent closed stalls, oldest first.
func (m *Monitor) RecentStalls() []core.LiveStall { return m.recent.list() }

// DigestedStall is one stall close retained by the stall digest: the
// live event plus the wall-clock time it closed at.
type DigestedStall struct {
	At    time.Time
	Stall core.LiveStall
}

// stallDigest is the drain-and-reset event buffer behind
// DrainStallDigest. Unlike stallRing (which rotates, keeping the
// newest), the digest keeps the FIRST cap events of each drain
// interval and counts the rest — a deterministic sampling bound, so
// one stall storm cannot grow a fleet push without bound while the
// overflow still surfaces as a count.
type stallDigest struct {
	// cap bounds retained events per drain interval; 0 disables.
	cap int

	mu sync.Mutex
	// buf holds the retained events, oldest first. guarded by mu
	buf []DigestedStall
	// dropped counts events past cap since the last drain. guarded by mu
	dropped uint64
}

func (d *stallDigest) push(now time.Time, ls core.LiveStall) {
	if d.cap <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) >= d.cap {
		d.dropped++
		return
	}
	d.buf = append(d.buf, DigestedStall{At: now, Stall: ls})
}

// DrainStallDigest returns the stall events digested since the last
// drain (oldest first) plus the count dropped past the digest bound,
// and resets both. Fleet members call this once per push; with the
// digest disabled it returns nothing.
func (m *Monitor) DrainStallDigest() ([]DigestedStall, uint64) {
	d := &m.digest
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.buf
	dropped := d.dropped
	d.buf = nil
	d.dropped = 0
	return out, dropped
}

// Snapshot is a point-in-time view of the monitor's counters.
type Snapshot struct {
	Uptime      time.Duration
	ActiveFlows int
	Ingested    uint64
	RingDrops   uint64
	// ShardRingDrops splits RingDrops by shard (drops charged to the
	// monitor as a whole — e.g. ingest after Close — appear only in
	// the total).
	ShardRingDrops []uint64

	FlowsSeen      uint64
	FlowsEvicted   map[string]uint64
	FlowsTruncated uint64
	RecordsFed     uint64
	RecordsCapDrop uint64

	// FlightEventDrops / FlightEvidenceDrops count flight-recorder
	// ring overwrites and evidence evictions, settled at flow
	// eviction. Zero when Config.Flight is nil.
	FlightEventDrops    uint64
	FlightEvidenceDrops uint64

	// Two-phase triage state (all zero when Config.Triage is nil).
	// PromotedFlows/ParkedFlows are gauges over the live flow table;
	// the rest are cumulative counters, promotions keyed by symptom
	// name.
	PromotedFlows             int
	ParkedFlows               int
	TriageFastRecords         uint64
	TriagePromotions          map[string]uint64
	TriageRepromotions        uint64
	TriageDemotions           uint64
	TriageTruncatedPromotions uint64

	StallCount     map[CauseKey]uint64
	StallSeconds   map[CauseKey]float64
	DurationsMS    *stats.Histogram
	RetransCount   map[core.RetransCause]uint64
	RetransSeconds map[core.RetransCause]float64

	Window WindowSnapshot
}

// Snapshot merges every shard's counters under their locks.
func (m *Monitor) Snapshot() Snapshot {
	now := m.cfg.Clock()
	total := newAggregates(m.cfg.Window, m.cfg.WindowBuckets)
	win := WindowSnapshot{
		Span:         m.cfg.Window,
		StallCount:   map[CauseKey]uint64{},
		StallSeconds: map[CauseKey]float64{},
		DurationsMS:  stats.NewHistogram(DurationBoundsMS),
	}
	active := 0
	promoted, parked := 0, 0
	shardDrops := make([]uint64, len(m.shards))
	for i, sh := range m.shards {
		sh.mu.Lock()
		total.merge(sh.agg)
		win.mergeWindow(sh.agg.window.snapshot(now))
		active += len(sh.flows)
		promoted += sh.promoted
		parked += sh.parked
		sh.mu.Unlock()
		shardDrops[i] = sh.ringDrops.Load()
	}
	s := Snapshot{
		ActiveFlows:    active,
		Ingested:       m.ingested.Load(),
		RingDrops:      m.ringDrops.Load(),
		ShardRingDrops: shardDrops,
		FlowsSeen:      total.flowsSeen,
		FlowsEvicted:   total.flowsEvicted,
		FlowsTruncated: total.flowsTruncated,
		RecordsFed:     total.recordsFed,
		RecordsCapDrop: total.recordsCapDrop,

		FlightEventDrops:    total.flightEventDrops,
		FlightEvidenceDrops: total.flightEvidenceDrops,

		PromotedFlows:             promoted,
		ParkedFlows:               parked,
		TriageFastRecords:         total.triFastRecords,
		TriagePromotions:          total.triPromotions,
		TriageRepromotions:        total.triRepromotions,
		TriageDemotions:           total.triDemotions,
		TriageTruncatedPromotions: total.triTruncatedPromotions,

		StallCount:     total.stallCount,
		StallSeconds:   total.stallSeconds,
		DurationsMS:    total.durationsMS,
		RetransCount:   total.retransCount,
		RetransSeconds: total.retransSeconds,
		Window:         win,
	}
	if m.started.Load() {
		s.Uptime = now.Sub(m.startAt)
	}
	return s
}

// FlowInfo is one active flow as the admin plane reports it.
type FlowInfo struct {
	ID        string    `json:"id"`
	Service   string    `json:"service,omitempty"`
	Records   int       `json:"records"`
	DataBytes int64     `json:"data_bytes"`
	Stalls    int       `json:"stalls"`
	LastT     float64   `json:"last_record_s"`
	LastSeen  time.Time `json:"last_seen"`
	Truncated bool      `json:"truncated,omitempty"`

	// Triage-mode state: Triaged marks a flow on the two-phase path;
	// Promoted means its full analyzer is live-fed, Parked that the
	// analyzer is retained but demoted. LastSymptom names the most
	// recent promotion symptom.
	Triaged     bool   `json:"triaged,omitempty"`
	Promoted    bool   `json:"promoted,omitempty"`
	Parked      bool   `json:"parked,omitempty"`
	LastSymptom string `json:"last_symptom,omitempty"`
}

// Flows lists the active flows across all shards (unordered between
// shards; insertion-recency order within one).
func (m *Monitor) Flows() []FlowInfo {
	var out []FlowInfo
	for _, sh := range m.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			out = append(out, infoOf(el.Value.(*flowEntry)))
		}
		sh.mu.Unlock()
	}
	return out
}

func infoOf(e *flowEntry) FlowInfo {
	fi := FlowInfo{
		ID:        e.id,
		Service:   e.meta.Service,
		LastSeen:  e.lastSeen,
		Truncated: e.truncated,
	}
	if e.tri != nil {
		fi.Triaged = true
		fi.Records = satInt(e.tri.Total())
		fi.DataBytes = e.tri.DataBytes()
		fi.LastT = e.tri.LastT().Seconds()
		fi.Promoted = e.promoted
		fi.Parked = !e.promoted && e.inc != nil
		if s := e.tri.LastSymptom(); s != triage.SymNone {
			fi.LastSymptom = s.String()
		}
		if e.inc != nil {
			fi.Stalls = e.inc.Stalls()
		}
		return fi
	}
	fi.Records = e.inc.Records()
	fi.DataBytes = e.inc.DataBytesSoFar()
	fi.Stalls = e.inc.Stalls()
	fi.LastT = sim.Time(e.inc.LastT()).Seconds()
	return fi
}

// Flow looks up one active flow by exact ID.
func (m *Monitor) Flow(id string) (FlowInfo, bool) {
	var info FlowInfo
	ok := m.withFlow(id, func(e *flowEntry) { info = infoOf(e) })
	return info, ok
}

// FlowTrace is the /debug/flows/{id}/trace payload: everything the
// flow's flight recorder holds, deep-copied so it can be marshalled
// after the shard lock is released.
type FlowTrace struct {
	FlowInfo
	// Flight is false when the monitor runs without recorders; the
	// evidence fields are then empty.
	Flight        bool                  `json:"flight"`
	EventDrops    uint64                `json:"event_drops"`
	EvidenceDrops uint64                `json:"evidence_drops"`
	Evidences     []flight.EvidenceJSON `json:"evidences"`
	Events        []flight.EventJSON    `json:"events"`
}

// FlowTrace snapshots one active flow's flight-recorder state.
func (m *Monitor) FlowTrace(id string) (FlowTrace, bool) {
	var ft FlowTrace
	ok := m.withFlow(id, func(e *flowEntry) {
		ft.FlowInfo = infoOf(e)
		if e.rec == nil {
			return
		}
		ft.Flight = true
		ft.EventDrops = e.rec.EventDrops()
		ft.EvidenceDrops = e.rec.EvidenceDrops()
		for _, ev := range e.rec.Evidences() {
			ft.Evidences = append(ft.Evidences, ev.JSON())
		}
		for _, e := range e.rec.Events() {
			ft.Events = append(ft.Events, e.JSON())
		}
	})
	return ft, ok
}

// withFlow runs fn on one active flow under its shard's lock,
// reporting whether the flow exists. fn must not call back into the
// Monitor.
func (m *Monitor) withFlow(id string, fn func(*flowEntry)) bool {
	sh := m.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.flows[id]
	if e == nil {
		return false
	}
	fn(e)
	return true
}
