package live

import (
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/stats"
)

// CauseKey labels a stall counter by generating service and Figure-5
// cause.
type CauseKey struct {
	Service string
	Cause   core.Cause
}

// DurationBoundsMS is the stall-duration histogram layout: roughly
// logarithmic from one delayed-ACK up to the paper's multi-minute RTO
// backoff tail, in milliseconds.
var DurationBoundsMS = []float64{
	50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400,
}

// aggregates accumulates one shard's counters. All fields are owned
// by the shard (guarded by its mutex); snapshot() copies them out.
// Stall counters are fed live as stalls close (top-level causes are
// final at close); the Table-5 retransmission breakdown is folded in
// at eviction from each flow's settled analysis, since sub-causes can
// be refined by post-hoc evidence.
type aggregates struct {
	flowsSeen      uint64
	flowsEvicted   map[string]uint64 // by eviction reason
	flowsTruncated uint64
	recordsFed     uint64
	recordsCapDrop uint64 // dropped by the per-flow record cap

	// flight-recorder ring truncation, folded in at flow eviction.
	flightEventDrops    uint64
	flightEvidenceDrops uint64

	// Two-phase triage accounting (all zero when Config.Triage is
	// nil). triFastRecords counts records handled by the fast path;
	// triPromotions counts promotions by symptom name, of which
	// triRepromotions re-attached a parked analyzer and
	// triTruncatedPromotions replayed from a ring that had already
	// dropped history.
	triFastRecords         uint64
	triPromotions          map[string]uint64
	triRepromotions        uint64
	triDemotions           uint64
	triTruncatedPromotions uint64

	stallCount   map[CauseKey]uint64
	stallSeconds map[CauseKey]float64
	durationsMS  *stats.Histogram

	retransCount   map[core.RetransCause]uint64
	retransSeconds map[core.RetransCause]float64

	window *rollWindow
}

func newAggregates(window time.Duration, buckets int) *aggregates {
	return &aggregates{
		flowsEvicted:   map[string]uint64{},
		triPromotions:  map[string]uint64{},
		stallCount:     map[CauseKey]uint64{},
		stallSeconds:   map[CauseKey]float64{},
		durationsMS:    stats.NewHistogram(DurationBoundsMS),
		retransCount:   map[core.RetransCause]uint64{},
		retransSeconds: map[core.RetransCause]float64{},
		window:         newRollWindow(window, buckets),
	}
}

// stallClosed folds one live stall event in.
func (ag *aggregates) stallClosed(now time.Time, ls core.LiveStall) {
	k := CauseKey{Service: ls.Service, Cause: ls.Stall.Cause}
	ms := float64(ls.Stall.Duration) / float64(time.Millisecond)
	ag.stallCount[k]++
	ag.stallSeconds[k] += ls.Stall.Duration.Seconds()
	ag.durationsMS.Add(ms)
	b := ag.window.bucket(now)
	b.count[k]++
	b.secs[k] += ls.Stall.Duration.Seconds()
	b.durs.Add(ms)
}

// flowEvicted folds a completed flow's settled analysis in.
func (ag *aggregates) flowEvicted(reason string, a *core.FlowAnalysis, truncated bool) {
	ag.flowsEvicted[reason]++
	if truncated {
		ag.flowsTruncated++
	}
	for _, st := range a.Stalls {
		if st.Cause != core.CauseTimeoutRetrans {
			continue
		}
		ag.retransCount[st.RetransCause]++
		ag.retransSeconds[st.RetransCause] += st.Duration.Seconds()
	}
}

// merge folds o into ag (for cross-shard snapshots). The rolling
// windows merge bucket-by-epoch.
func (ag *aggregates) merge(o *aggregates) {
	ag.flowsSeen += o.flowsSeen
	ag.flowsTruncated += o.flowsTruncated
	ag.recordsFed += o.recordsFed
	ag.recordsCapDrop += o.recordsCapDrop
	ag.flightEventDrops += o.flightEventDrops
	ag.flightEvidenceDrops += o.flightEvidenceDrops
	ag.triFastRecords += o.triFastRecords
	ag.triRepromotions += o.triRepromotions
	ag.triDemotions += o.triDemotions
	ag.triTruncatedPromotions += o.triTruncatedPromotions
	for s, n := range o.triPromotions {
		ag.triPromotions[s] += n
	}
	for r, n := range o.flowsEvicted {
		ag.flowsEvicted[r] += n
	}
	for k, n := range o.stallCount {
		ag.stallCount[k] += n
	}
	for k, s := range o.stallSeconds {
		ag.stallSeconds[k] += s
	}
	ag.durationsMS.Merge(o.durationsMS)
	for c, n := range o.retransCount {
		ag.retransCount[c] += n
	}
	for c, s := range o.retransSeconds {
		ag.retransSeconds[c] += s
	}
}

// clone deep-copies ag (called with the owning shard locked).
func (ag *aggregates) clone() *aggregates {
	c := newAggregates(ag.window.step*time.Duration(len(ag.window.buckets)), len(ag.window.buckets))
	c.merge(ag)
	for i := range ag.window.buckets {
		src := &ag.window.buckets[i]
		dst := &c.window.buckets[i]
		dst.epoch = src.epoch
		for k, n := range src.count {
			dst.count[k] = n
		}
		for k, s := range src.secs {
			dst.secs[k] = s
		}
		dst.durs.Merge(src.durs)
	}
	return c
}

// rollWindow is a ring of time buckets implementing the rolling
// aggregation window: bucket i holds epoch e ≡ i (mod len), and a
// bucket is reset the first time a newer epoch lands on it, so stale
// counters age out without a sweeper.
type rollWindow struct {
	step    time.Duration
	buckets []wbucket
}

type wbucket struct {
	epoch int64 // step index since the Unix epoch; -1 = empty
	count map[CauseKey]uint64
	secs  map[CauseKey]float64
	durs  *stats.Histogram
}

func newRollWindow(span time.Duration, buckets int) *rollWindow {
	if buckets < 1 {
		buckets = 1
	}
	step := span / time.Duration(buckets)
	if step <= 0 {
		step = time.Second
	}
	w := &rollWindow{step: step, buckets: make([]wbucket, buckets)}
	for i := range w.buckets {
		w.buckets[i] = wbucket{
			epoch: -1,
			count: map[CauseKey]uint64{},
			secs:  map[CauseKey]float64{},
			durs:  stats.NewHistogram(DurationBoundsMS),
		}
	}
	return w
}

func (w *rollWindow) bucket(now time.Time) *wbucket {
	epoch := now.UnixNano() / int64(w.step)
	b := &w.buckets[int(epoch%int64(len(w.buckets)))]
	if b.epoch != epoch {
		b.epoch = epoch
		for k := range b.count {
			delete(b.count, k)
		}
		for k := range b.secs {
			delete(b.secs, k)
		}
		b.durs.Reset()
	}
	return b
}

// WindowSnapshot is the rolling window summed over its live buckets.
type WindowSnapshot struct {
	Span         time.Duration
	StallCount   map[CauseKey]uint64
	StallSeconds map[CauseKey]float64
	DurationsMS  *stats.Histogram
}

// snapshot sums the buckets still inside the window ending at now.
func (w *rollWindow) snapshot(now time.Time) WindowSnapshot {
	s := WindowSnapshot{
		Span:         w.step * time.Duration(len(w.buckets)),
		StallCount:   map[CauseKey]uint64{},
		StallSeconds: map[CauseKey]float64{},
		DurationsMS:  stats.NewHistogram(DurationBoundsMS),
	}
	epoch := now.UnixNano() / int64(w.step)
	oldest := epoch - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch < oldest || b.epoch > epoch {
			continue
		}
		for k, n := range b.count {
			s.StallCount[k] += n
		}
		for k, sec := range b.secs {
			s.StallSeconds[k] += sec
		}
		s.DurationsMS.Merge(b.durs)
	}
	return s
}

// mergeWindow folds o's live buckets into s (cross-shard snapshot).
func (s *WindowSnapshot) mergeWindow(o WindowSnapshot) {
	for k, n := range o.StallCount {
		s.StallCount[k] += n
	}
	for k, sec := range o.StallSeconds {
		s.StallSeconds[k] += sec
	}
	s.DurationsMS.Merge(o.DurationsMS)
}
