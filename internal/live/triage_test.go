package live

import (
	"bytes"
	"encoding/binary"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/groundtruth"
	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
	"tcpstall/internal/triage"
	"tcpstall/internal/workload"
)

// capture holds one evicted flow's analysis and its canonical JSON.
type capture struct {
	a *core.FlowAnalysis
	b []byte
}

// collector returns an OnFlow callback storing every eviction, keyed
// by flow ID, plus the map and its guarding mutex.
func collector(t *testing.T) (func(string, *core.FlowAnalysis), map[string]capture, *sync.Mutex) {
	t.Helper()
	got := map[string]capture{}
	var mu sync.Mutex
	return func(reason string, a *core.FlowAnalysis) {
		b, err := core.MarshalAnalyses([]*core.FlowAnalysis{a})
		if err != nil {
			t.Errorf("marshal %s: %v", a.FlowID, err)
			return
		}
		mu.Lock()
		got[a.FlowID] = capture{a: a, b: b}
		mu.Unlock()
	}, got, &mu
}

// assertTriageEquiv checks the triage equivalence contract for one
// flow and reports whether the live output was byte-identical to the
// batch analyzer's. Byte inequality is legal only on the
// never-promoted path, where the synthesized summary omits the
// per-ACK series — and there the batch verdict must be "no stalls"
// with matching volume counters, or the fast path let a stall escape.
func assertTriageEquiv(t *testing.T, f *trace.Flow, c capture) bool {
	t.Helper()
	batch := core.Analyze(f, core.Config{})
	want, err := core.MarshalAnalyses([]*core.FlowAnalysis{batch})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c.b, want) {
		return true
	}
	if len(batch.Stalls) != 0 {
		t.Errorf("flow %s: batch found %d stalls but live output differs\nlive:  %s\nbatch: %s",
			f.ID, len(batch.Stalls), c.b, want)
		return false
	}
	if len(c.a.Stalls) != 0 {
		t.Errorf("flow %s: live invented %d stalls on a stall-free flow", f.ID, len(c.a.Stalls))
	}
	if c.a.DataPackets != batch.DataPackets || c.a.DataBytes != batch.DataBytes ||
		c.a.TransmissionTime != batch.TransmissionTime {
		t.Errorf("flow %s: synthesized summary diverges: packets %d/%d bytes %d/%d span %v/%v",
			f.ID, c.a.DataPackets, batch.DataPackets, c.a.DataBytes, batch.DataBytes,
			c.a.TransmissionTime, batch.TransmissionTime)
	}
	return false
}

// TestTriageMatchesBatch is the two-phase subsystem's equivalence
// guarantee over generated workloads: every pathological service plus
// its healthy twin, records interleaved round-robin across flows and
// pushed through the concurrent shard workers with triage enabled.
// Every flow the batch analyzer finds stalls in must come out
// byte-identical (it was promoted in time); stall-free flows may take
// the synthesized fast-path exit. Run under -race this also guards
// the promotion/demotion locking.
func TestTriageMatchesBatch(t *testing.T) {
	var flows []*trace.Flow
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 7, workload.GenOptions{Flows: 6}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
		for _, fr := range workload.Generate(workload.Healthy(svc), 11, workload.GenOptions{Flows: 6}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
	}
	if len(flows) < 20 {
		t.Fatalf("generated only %d usable flows", len(flows))
	}

	onFlow, got, mu := collector(t)
	m := New(Config{
		Shards:   4,
		MaxFlows: 4096,
		RingSize: 1 << 14,
		Triage:   &triage.Config{},
		OnFlow:   onFlow,
	})
	m.Start()

	evs := make([][]trace.RecordEvent, len(flows))
	for i, f := range flows {
		evs[i] = events(f)
	}
	for round := 0; ; round++ {
		fed := false
		for i := range evs {
			if round < len(evs[i]) {
				if !m.IngestWait(evs[i][round]) {
					t.Fatal("IngestWait refused while open")
				}
				fed = true
			}
		}
		if !fed {
			break
		}
	}
	m.Close()

	mu.Lock()
	defer mu.Unlock()
	var stalled, clean int
	for _, f := range flows {
		c, ok := got[f.ID]
		if !ok {
			t.Fatalf("flow %s never evicted", f.ID)
		}
		if assertTriageEquiv(t, f, c) && len(c.a.Stalls) > 0 {
			stalled++
		} else if len(c.a.Stalls) == 0 {
			clean++
		}
	}
	if stalled == 0 {
		t.Error("no flow exercised the promoted path (want some stalls)")
	}
	if clean == 0 {
		t.Error("no flow exercised the fast path (want some stall-free flows)")
	}

	s := m.Snapshot()
	if s.TriageFastRecords == 0 {
		t.Error("TriageFastRecords = 0: triage never engaged")
	}
	var promos uint64
	for _, v := range s.TriagePromotions {
		promos += v
	}
	if promos == 0 {
		t.Error("no promotions recorded despite stalling flows")
	}
	if s.PromotedFlows != 0 || s.ParkedFlows != 0 {
		t.Errorf("gauges not drained after Close: promoted=%d parked=%d",
			s.PromotedFlows, s.ParkedFlows)
	}
}

// TestTriageBatchIngestMatchesBatch drives the same contract through
// IngestBatchWait, the bulk intake the bench harness and pcap replay
// use, with arbitrary chunk boundaries slicing across flows.
func TestTriageBatchIngestMatchesBatch(t *testing.T) {
	var flows []*trace.Flow
	svcs := workload.Services()
	for _, svc := range svcs[:2] {
		for _, fr := range workload.Generate(svc, 3, workload.GenOptions{Flows: 5}) {
			if len(fr.Flow.Records) > 0 {
				flows = append(flows, fr.Flow)
			}
		}
	}
	var all []trace.RecordEvent
	evs := make([][]trace.RecordEvent, len(flows))
	for i, f := range flows {
		evs[i] = events(f)
	}
	for round := 0; ; round++ {
		fed := false
		for i := range evs {
			if round < len(evs[i]) {
				all = append(all, evs[i][round])
				fed = true
			}
		}
		if !fed {
			break
		}
	}

	onFlow, got, mu := collector(t)
	m := New(Config{Shards: 4, MaxFlows: 4096, RingSize: 1 << 14,
		Triage: &triage.Config{}, OnFlow: onFlow})
	m.Start()
	const chunk = 237 // deliberately unaligned with flow boundaries
	for i := 0; i < len(all); i += chunk {
		end := i + chunk
		if end > len(all) {
			end = len(all)
		}
		if !m.IngestBatchWait(all[i:end]) {
			t.Fatal("IngestBatchWait refused while open")
		}
	}
	m.Close()

	mu.Lock()
	defer mu.Unlock()
	for _, f := range flows {
		c, ok := got[f.ID]
		if !ok {
			t.Fatalf("flow %s never evicted", f.ID)
		}
		assertTriageEquiv(t, f, c)
	}
	if s := m.Snapshot(); s.RingDrops != 0 {
		t.Errorf("IngestBatchWait dropped %d records", s.RingDrops)
	}
}

// loadGoldenPcap imports one Figure-5 golden capture from the core
// testdata.
func loadGoldenPcap(t *testing.T, name string) []*trace.Flow {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "core", "testdata", name+".pcap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	flows, err := trace.ImportPcap(f, trace.ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("golden pcap contains no flows")
	}
	return flows
}

// feedFlowsDirect pushes every flow's events through the shards
// synchronously and then forces eviction, returning nothing; results
// land in the caller's collector.
func feedFlowsDirect(t *testing.T, m *Monitor, flows []*trace.Flow) {
	t.Helper()
	for _, f := range flows {
		for _, ev := range events(f) {
			feedDirect(m, ev)
		}
	}
	m.SweepIdleNow(t)
}

// TestTriageMatchesBatchGolden pins byte-identical triaged output on
// the three Figure-5 golden captures — each stalls by construction,
// so each must take the promoted path.
func TestTriageMatchesBatchGolden(t *testing.T) {
	for _, name := range []string{"golden_server", "golden_client", "golden_network"} {
		name := name
		t.Run(name, func(t *testing.T) {
			flows := loadGoldenPcap(t, name)
			clk := &fakeClock{now: time.Unix(1000, 0)}
			onFlow, got, mu := collector(t)
			m := New(Config{Shards: 1, Clock: clk.Now,
				Triage: &triage.Config{}, OnFlow: onFlow})
			feedFlowsDirect(t, m, flows)

			mu.Lock()
			defer mu.Unlock()
			stalled := 0
			for _, f := range flows {
				c, ok := got[f.ID]
				if !ok {
					t.Fatalf("flow %s never evicted", f.ID)
				}
				if assertTriageEquiv(t, f, c) && len(c.a.Stalls) > 0 {
					stalled++
				}
			}
			if stalled == 0 {
				t.Error("no golden flow came out of the promoted path with stalls")
			}
			var promos uint64
			for _, v := range m.Snapshot().TriagePromotions {
				promos += v
			}
			if promos == 0 {
				t.Error("golden trace produced no promotions")
			}
		})
	}
}

// ms converts integer milliseconds to a record timestamp.
func msAt(v int64) sim.Time { return sim.Time(v) * sim.Time(time.Millisecond) }

// wrappedStallFlow hand-builds a stalling flow whose server ISN sits
// just below 2^32, so the data stream, the cumulative ACKs and the
// retransmission all cross the wrap: the fast path's unwrapper and
// the analyzer must agree byte-for-byte through the boundary.
func wrappedStallFlow() *trace.Flow {
	const mss = 1000
	isn := uint32(0xFFFFFB00)
	var recs []trace.Record
	add := func(tms int64, dir tcpsim.Dir, seg tcpsim.Segment) {
		recs = append(recs, trace.Record{T: msAt(tms), Dir: dir, Seg: seg})
	}
	add(0, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagSYN, Seq: 42, Wnd: 60000})
	add(10, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: isn, Ack: 43, Wnd: 65535})
	add(110, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 43, Ack: isn + 1, Wnd: 60000})
	for i := uint32(0); i < 6; i++ {
		add(200+60*int64(i), tcpsim.DirOut,
			tcpsim.Segment{Flags: packet.FlagACK, Seq: isn + 1 + i*mss, Len: mss, Wnd: 65535})
		if i < 5 {
			add(230+60*int64(i), tcpsim.DirIn,
				tcpsim.Segment{Flags: packet.FlagACK, Seq: 43, Ack: isn + 1 + (i+1)*mss, Wnd: 60000})
		}
	}
	// Five seconds of silence with one segment outstanding, closed by
	// its timeout retransmission (below the send edge, past the wrap).
	add(5500, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagACK, Seq: isn + 1 + 5*mss, Len: mss, Wnd: 65535})
	add(5530, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 43, Ack: isn + 1 + 6*mss, Wnd: 60000})
	add(5600, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagACK, Seq: isn + 1 + 6*mss, Len: mss, Wnd: 65535})
	add(5630, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 43, Ack: isn + 1 + 7*mss, Wnd: 60000})
	return &trace.Flow{ID: "wrap", Service: "crafted", Records: recs}
}

func TestTriageWrappedISNMatchesBatch(t *testing.T) {
	f := wrappedStallFlow()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	onFlow, got, mu := collector(t)
	m := New(Config{Shards: 1, Clock: clk.Now, Triage: &triage.Config{}, OnFlow: onFlow})
	feedFlowsDirect(t, m, []*trace.Flow{f})

	mu.Lock()
	defer mu.Unlock()
	c, ok := got[f.ID]
	if !ok {
		t.Fatal("flow never evicted")
	}
	if !assertTriageEquiv(t, f, c) {
		t.Fatal("wrapped-ISN flow did not take the promoted byte-identical path")
	}
	if len(c.a.Stalls) == 0 {
		t.Fatal("wrapped-ISN flow found no stall; the scenario is broken")
	}
}

// churnFlow builds a deliberately oscillating flow: bursts of healthy
// paced transfer long enough to demote a promoted flow (under a small
// DemoteAfter), separated by multi-second silences that each close a
// stall and repromote it.
func churnFlow(cycles int) *trace.Flow {
	const mss = 1460
	var recs []trace.Record
	add := func(tms int64, dir tcpsim.Dir, seg tcpsim.Segment) {
		recs = append(recs, trace.Record{T: msAt(tms), Dir: dir, Seg: seg})
	}
	add(0, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagSYN, Seq: 100, Wnd: 60000})
	add(10, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: 5000, Ack: 101, Wnd: 65535})
	add(110, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: 5001, Wnd: 60000})
	seq := uint32(5001)
	tms := int64(200)
	for c := 0; c < cycles; c++ {
		if c > 0 {
			tms += 3000 // a stall under any RTT estimate
		}
		// Healthy burst: a data/ack pair every 50ms for 1.2s, each ACK
		// advancing the edge — long enough to outlast DemoteAfter.
		for i := 0; i < 24; i++ {
			add(tms, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagACK, Seq: seq, Len: mss, Wnd: 65535})
			seq += mss
			add(tms+25, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: seq, Wnd: 60000})
			tms += 50
		}
	}
	return &trace.Flow{ID: "churn", Service: "crafted", Records: recs}
}

// TestTriageChurnMatchesAlwaysOn oscillates one flow through
// promote → demote → repromote cycles with an aggressively small
// DemoteAfter and requires the final verdict to stay byte-identical
// to the batch analyzer — demotion parks state, it never loses it.
func TestTriageChurnMatchesAlwaysOn(t *testing.T) {
	f := churnFlow(6)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	onFlow, got, mu := collector(t)
	m := New(Config{Shards: 1, Clock: clk.Now,
		Triage: &triage.Config{DemoteAfter: 500 * time.Millisecond},
		OnFlow: onFlow})
	feedFlowsDirect(t, m, []*trace.Flow{f})

	mu.Lock()
	c, ok := got[f.ID]
	mu.Unlock()
	if !ok {
		t.Fatal("flow never evicted")
	}
	if !assertTriageEquiv(t, f, c) {
		t.Fatal("churning flow did not stay byte-identical to batch")
	}
	if want := 5; len(c.a.Stalls) != want {
		t.Errorf("stall count = %d, want %d", len(c.a.Stalls), want)
	}
	s := m.Snapshot()
	if s.TriageDemotions < 2 {
		t.Errorf("TriageDemotions = %d, want >= 2 (flow never oscillated)", s.TriageDemotions)
	}
	if s.TriageRepromotions < 2 {
		t.Errorf("TriageRepromotions = %d, want >= 2 (flow never oscillated)", s.TriageRepromotions)
	}
}

// TestTriageChurnGolden replays the golden captures with the same
// aggressive DemoteAfter: even when every quiet spell demotes, the
// output is pinned to the batch analyzer's bytes.
func TestTriageChurnGolden(t *testing.T) {
	for _, name := range []string{"golden_server", "golden_client", "golden_network"} {
		flows := loadGoldenPcap(t, name)
		clk := &fakeClock{now: time.Unix(1000, 0)}
		onFlow, got, mu := collector(t)
		m := New(Config{Shards: 1, Clock: clk.Now,
			Triage: &triage.Config{DemoteAfter: 100 * time.Millisecond},
			OnFlow: onFlow})
		feedFlowsDirect(t, m, flows)

		mu.Lock()
		for _, f := range flows {
			c, ok := got[f.ID]
			if !ok {
				t.Fatalf("%s: flow %s never evicted", name, f.ID)
			}
			assertTriageEquiv(t, f, c)
		}
		mu.Unlock()
	}
}

// TestTriageEvictionFlushesPendingStall evicts a stalling, churning
// flow at every possible record index and requires the flushed
// verdict to match the batch analyzer over the same prefix — in
// particular a promoted (or parked-with-unfed-records) flow evicted
// mid-stall must flush the pending stall instead of dropping it.
func TestTriageEvictionFlushesPendingStall(t *testing.T) {
	full := churnFlow(3)
	recs := full.Records
	maxStalls := 0
	for i := 1; i <= len(recs); i++ {
		prefix := &trace.Flow{ID: full.ID, Service: full.Service, Records: recs[:i]}
		clk := &fakeClock{now: time.Unix(1000, 0)}
		onFlow, got, mu := collector(t)
		m := New(Config{Shards: 1, Clock: clk.Now,
			Triage: &triage.Config{DemoteAfter: 500 * time.Millisecond},
			OnFlow: onFlow})
		for _, ev := range events(prefix) {
			feedDirect(m, ev)
		}
		m.SweepIdleNow(t)

		mu.Lock()
		c, ok := got[prefix.ID]
		mu.Unlock()
		if !ok {
			t.Fatalf("prefix %d: flow never evicted", i)
		}
		batch := core.Analyze(prefix, core.Config{})
		if len(c.a.Stalls) != len(batch.Stalls) {
			t.Fatalf("prefix %d: eviction flushed %d stalls, batch found %d",
				i, len(c.a.Stalls), len(batch.Stalls))
		}
		assertTriageEquiv(t, prefix, c)
		if len(batch.Stalls) > maxStalls {
			maxStalls = len(batch.Stalls)
		}
	}
	if maxStalls < 2 {
		t.Fatalf("scenario too weak: max stalls over prefixes = %d, want >= 2", maxStalls)
	}
}

// truncationFlow runs long enough healthy traffic that a small triage
// ring has overwritten the flow's early records before the first
// symptom fires.
func truncationFlow() *trace.Flow {
	const mss = 1460
	var recs []trace.Record
	add := func(tms int64, dir tcpsim.Dir, seg tcpsim.Segment) {
		recs = append(recs, trace.Record{T: msAt(tms), Dir: dir, Seg: seg})
	}
	add(0, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagSYN, Seq: 100, Wnd: 60000})
	add(10, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: 5000, Ack: 101, Wnd: 65535})
	add(110, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: 5001, Wnd: 60000})
	seq := uint32(5001)
	tms := int64(200)
	for i := 0; i < 30; i++ {
		add(tms, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagACK, Seq: seq, Len: mss, Wnd: 65535})
		seq += mss
		add(tms+25, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: seq, Wnd: 60000})
		tms += 50
	}
	// Ten seconds of silence closed by the next send.
	tms += 10000
	add(tms, tcpsim.DirOut, tcpsim.Segment{Flags: packet.FlagACK, Seq: seq, Len: mss, Wnd: 65535})
	add(tms+30, tcpsim.DirIn, tcpsim.Segment{Flags: packet.FlagACK, Seq: 101, Ack: seq + mss, Wnd: 60000})
	return &trace.Flow{ID: "trunc", Service: "crafted", Records: recs}
}

// TestTriageTruncatedPromotionMetric pins the conservative behaviour
// when symptom evidence predates the ring: promotion replays from the
// ring start, the event is counted in the truncated-promotions
// metric (snapshot and /metrics), and the stall's bounds still match
// the batch analyzer even though earlier context was lost.
func TestTriageTruncatedPromotionMetric(t *testing.T) {
	f := truncationFlow()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	onFlow, got, mu := collector(t)
	m := New(Config{Shards: 1, Clock: clk.Now,
		Triage: &triage.Config{RingCap: 8}, OnFlow: onFlow})
	for _, ev := range events(f) {
		feedDirect(m, ev)
	}

	s := m.Snapshot()
	if s.TriageTruncatedPromotions != 1 {
		t.Fatalf("TriageTruncatedPromotions = %d, want 1", s.TriageTruncatedPromotions)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "tapod_triage_truncated_promotions_total 1") {
		t.Error("/metrics does not report tapod_triage_truncated_promotions_total 1")
	}

	m.SweepIdleNow(t)
	mu.Lock()
	c, ok := got[f.ID]
	mu.Unlock()
	if !ok {
		t.Fatal("flow never evicted")
	}
	batch := core.Analyze(f, core.Config{})
	if len(batch.Stalls) != 1 {
		t.Fatalf("batch stalls = %d, want 1", len(batch.Stalls))
	}
	if len(c.a.Stalls) != 1 {
		t.Fatalf("truncated promotion lost the stall: live stalls = %d, want 1", len(c.a.Stalls))
	}
	lv, bt := c.a.Stalls[0], batch.Stalls[0]
	if lv.Start != bt.Start || lv.End != bt.End {
		t.Errorf("stall bounds diverge after truncation: live [%v, %v] batch [%v, %v]",
			lv.Start, lv.End, bt.Start, bt.End)
	}
	// The cause may legitimately differ — the evidence before the
	// ring is gone. That accuracy cost is bounded by
	// TestTriageTruncationAccuracyBound.
	t.Logf("truncated stall cause: live=%v batch=%v", lv.Cause, bt.Cause)
}

// TestTriageTruncationAccuracyBound quantifies the classification
// cost of truncated promotions: with a deliberately small ring (64 records), graded
// against simulator ground truth, triaged accuracy must stay within
// 0.25 of the batch analyzer's on the same flows.
func TestTriageTruncationAccuracyBound(t *testing.T) {
	var flows []*trace.Flow
	var truths []*groundtruth.FlowTruth
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 7, workload.GenOptions{Flows: 12, WithTruth: true}) {
			if len(fr.Flow.Records) > 0 && fr.Truth != nil {
				flows = append(flows, fr.Flow)
				truths = append(truths, fr.Truth)
			}
		}
	}
	batchRep := groundtruth.Validate(flows, truths, core.DefaultConfig())

	clk := &fakeClock{now: time.Unix(1000, 0)}
	onFlow, got, mu := collector(t)
	m := New(Config{Shards: 1, MaxFlows: 4096, Clock: clk.Now,
		Triage: &triage.Config{RingCap: 64}, OnFlow: onFlow})
	feedFlowsDirect(t, m, flows)

	s := m.Snapshot()
	if s.TriageTruncatedPromotions == 0 {
		t.Fatal("small ring produced no truncated promotions; the bound is vacuous")
	}
	liveRep := groundtruth.NewReport()
	mu.Lock()
	for i, f := range flows {
		c, ok := got[f.ID]
		if !ok {
			t.Fatalf("flow %s never evicted", f.ID)
		}
		liveRep.AddFlow(f, truths[i], c.a, nil)
	}
	mu.Unlock()

	t.Logf("accuracy: batch=%.3f triaged(ring=64)=%.3f truncated_promotions=%d graded_stalls=%d/%d",
		batchRep.Accuracy(), liveRep.Accuracy(), s.TriageTruncatedPromotions,
		liveRep.Stalls, batchRep.Stalls)
	if liveRep.Accuracy() < batchRep.Accuracy()-0.25 {
		t.Errorf("triaged accuracy %.3f fell more than 0.25 below batch %.3f",
			liveRep.Accuracy(), batchRep.Accuracy())
	}
}

// --- FuzzTriagePromotion -------------------------------------------
//
// The wire format mirrors core.FuzzIncrementalFeed so corpus entries
// stress both analyzers the same way: 14 bytes per record (control,
// seq, ack, wnd, len code, time delta), +8 bytes for one SACK block
// when bit 6 of the control byte is set.

const fuzzRecSize = 14

func decodeFuzzRecords(data []byte) []trace.Record {
	var recs []trace.Record
	var tt sim.Time
	for len(data) >= fuzzRecSize && len(recs) < 4096 {
		ctl := data[0]
		dir := tcpsim.DirOut
		if ctl&1 != 0 {
			dir = tcpsim.DirIn
		}
		var flags packet.TCPFlags
		if ctl&2 != 0 {
			flags |= packet.FlagSYN
		}
		if ctl&4 != 0 {
			flags |= packet.FlagACK
		}
		if ctl&8 != 0 {
			flags |= packet.FlagFIN
		}
		if ctl&16 != 0 {
			flags |= packet.FlagRST
		}
		if ctl&32 != 0 {
			flags |= packet.FlagPSH
		}
		seg := tcpsim.Segment{
			Flags: flags,
			Seq:   binary.LittleEndian.Uint32(data[1:5]),
			Ack:   binary.LittleEndian.Uint32(data[5:9]),
			Wnd:   int(binary.LittleEndian.Uint16(data[9:11])),
			Len:   int(data[11]) * 97,
		}
		dt := binary.LittleEndian.Uint16(data[12:14])
		data = data[fuzzRecSize:]
		if ctl&64 != 0 && len(data) >= 8 {
			s := binary.LittleEndian.Uint32(data[0:4])
			e := binary.LittleEndian.Uint32(data[4:8])
			seg.SACK = packet.SACKBlocks(packet.SACKBlock{Left: s, Right: e})
			data = data[8:]
		}
		tt += sim.Time(dt) * sim.Time(time.Millisecond)
		recs = append(recs, trace.Record{T: tt, Dir: dir, Seg: seg})
	}
	return recs
}

func encodeFuzzRecord(dir tcpsim.Dir, flags packet.TCPFlags, seq, ack uint32, wnd, lenCode int, dtMS uint16) []byte {
	b := make([]byte, fuzzRecSize)
	if dir == tcpsim.DirIn {
		b[0] |= 1
	}
	if flags.Has(packet.FlagSYN) {
		b[0] |= 2
	}
	if flags.Has(packet.FlagACK) {
		b[0] |= 4
	}
	if flags.Has(packet.FlagFIN) {
		b[0] |= 8
	}
	if flags.Has(packet.FlagRST) {
		b[0] |= 16
	}
	binary.LittleEndian.PutUint32(b[1:5], seq)
	binary.LittleEndian.PutUint32(b[5:9], ack)
	binary.LittleEndian.PutUint16(b[9:11], uint16(wnd))
	b[11] = byte(lenCode)
	binary.LittleEndian.PutUint16(b[12:14], dtMS)
	return b
}

// fuzzSeedHealthyRun appends n healthy data/ack pairs, each ACK
// advancing, paced at dtMS — below any gap threshold the handshake
// seeds, so no symptom fires during the run.
func fuzzSeedHealthyRun(b []byte, seq *uint32, n int, dtMS uint16) []byte {
	for i := 0; i < n; i++ {
		b = append(b, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, *seq, 101, 65535, 10, dtMS)...)
		*seq += 970
		b = append(b, encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 101, *seq, 60000, 0, dtMS)...)
	}
	return b
}

// fuzzSeedHandshake is a SYN / SYN-ACK / ACK preamble seeding a 30ms
// RTT on both paths.
func fuzzSeedHandshake() []byte {
	var b []byte
	b = append(b, encodeFuzzRecord(tcpsim.DirIn, packet.FlagSYN, 100, 0, 60000, 0, 0)...)
	b = append(b, encodeFuzzRecord(tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, 5000, 101, 65535, 0, 1)...)
	b = append(b, encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 101, 5001, 60000, 0, 30)...)
	return b
}

// FuzzTriagePromotion hammers the promotion boundary: arbitrary record
// streams go through a triage-enabled monitor shard (ring large
// enough that promotion never truncates) and the evicted verdict must
// match the batch analyzer over exactly the records the monitor
// consumed — byte-identical when promoted, zero-stall when not.
func FuzzTriagePromotion(f *testing.F) {
	// Seed: plausible handshake + response with promoting gaps.
	var normal []byte
	normal = append(normal, fuzzSeedHandshake()...)
	for i := 0; i < 6; i++ {
		normal = append(normal, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, 5001+uint32(i)*1455, 101, 65535, 15, uint16(20+400*(i%2)))...)
	}
	f.Add(normal)

	// Seed: ISN near 2^32 so the stream wraps mid-flow.
	var wrapped []byte
	wrapISN := uint32(0xFFFFF000)
	wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirIn, packet.FlagSYN, 7, 0, 60000, 0, 0)...)
	wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, wrapISN, 8, 65535, 0, 1)...)
	for i := 0; i < 8; i++ {
		wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, wrapISN+1+uint32(i)*1455, 8, 65535, 15, uint16(25+700*(i%3/2)))...)
		wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 8, wrapISN+1+uint32(i+1)*1455, 60000, 0, 5)...)
	}
	f.Add(wrapped)

	// Seed: wrapped ISN + clock skew, SACK blocks straddling the wrap.
	var skew []byte
	skewISN := uint32(0xFFFFFB00)
	skew = append(skew, encodeFuzzRecord(tcpsim.DirIn, packet.FlagSYN, 42, 0, 60000, 0, 0)...)
	skew = append(skew, encodeFuzzRecord(tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, skewISN, 43, 65535, 0, 1)...)
	for i := 0; i < 6; i++ {
		dt := uint16(1)
		if i%2 == 1 {
			dt = 65000
		}
		skew = append(skew, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, skewISN+1+uint32(i)*1455, 43, 65535, 15, dt)...)
		ackRec := encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 43, skewISN+1, 60000, 0, 1)
		ackRec[0] |= 64
		var blk [8]byte
		binary.LittleEndian.PutUint32(blk[0:4], skewISN+1+uint32(i)*1455)
		binary.LittleEndian.PutUint32(blk[4:8], skewISN+1+uint32(i+1)*1455)
		skew = append(skew, ackRec...)
		skew = append(skew, blk[:]...)
	}
	f.Add(skew)

	// Seed: the symptom is the very first record (incoming zero
	// window) — promotion with a single-record ring.
	first := encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 43, 5001, 0, 0, 0)
	f.Add(first)

	// Seed: symptom exactly at a ring-growth edge — 33 healthy pairs
	// cross the 8→16→32→64 doubling boundaries, then a promoting gap.
	var edge []byte
	edge = append(edge, fuzzSeedHandshake()...)
	seq := uint32(5001)
	edge = fuzzSeedHealthyRun(edge, &seq, 33, 10)
	edge = append(edge, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, seq, 101, 65535, 10, 5000)...)
	f.Add(edge)

	// Seed: demote-then-repromote — promote on a gap, stay healthy
	// past DemoteAfter (2s) so the flow parks, then stall again.
	var churn []byte
	churn = append(churn, fuzzSeedHandshake()...)
	seq = uint32(5001)
	churn = fuzzSeedHealthyRun(churn, &seq, 4, 10)
	churn = append(churn, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, seq, 101, 65535, 10, 3000)...)
	seq += 970
	churn = fuzzSeedHealthyRun(churn, &seq, 50, 50) // 2.5s of health: demotes
	churn = append(churn, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, seq, 101, 65535, 10, 5000)...)
	f.Add(churn)

	// Seed: hostile — retransmission-shaped repeat plus RST teardown
	// mid-stream (the monitor evicts on the RST; remaining bytes are
	// a second life the harness ignores).
	var hostile []byte
	hostile = append(hostile, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, 1000, 1, 0, 20, 0)...)
	hostile = append(hostile, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, 1000, 1, 0, 20, 9000)...)
	hostile = append(hostile, encodeFuzzRecord(tcpsim.DirIn, packet.FlagRST, 1, 0, 0, 0, 1)...)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeFuzzRecords(data)
		if len(recs) == 0 {
			return
		}
		clk := &fakeClock{now: time.Unix(1000, 0)}
		var got []*core.FlowAnalysis
		m := New(Config{Shards: 1, Clock: clk.Now,
			Triage: &triage.Config{RingCap: 4096},
			OnFlow: func(reason string, a *core.FlowAnalysis) { got = append(got, a) }})
		sh := m.shardOf("fuzz")
		fed := 0
		for i := range recs {
			ev := trace.RecordEvent{FlowID: "fuzz", Service: "fuzz", Rec: recs[i]}
			sh.process(&ev)
			fed = i + 1
			if len(got) > 0 {
				// Teardown evicted the flow mid-stream; grade the
				// consumed prefix and ignore the remainder.
				break
			}
		}
		if len(got) == 0 {
			m.SweepIdleNow(t)
		}
		if len(got) != 1 {
			t.Fatalf("eviction produced %d analyses, want 1", len(got))
		}
		a := got[0]
		flow := &trace.Flow{ID: "fuzz", Service: "fuzz", Records: recs[:fed]}
		batch := core.Analyze(flow, core.Config{})
		want, err := core.MarshalAnalyses([]*core.FlowAnalysis{batch})
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := core.MarshalAnalyses([]*core.FlowAnalysis{a})
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(gotB, want) {
			return
		}
		if len(batch.Stalls) != 0 {
			t.Fatalf("batch found %d stalls but triaged output differs\nlive:  %s\nbatch: %s",
				len(batch.Stalls), gotB, want)
		}
		if len(a.Stalls) != 0 {
			t.Fatalf("triaged path invented %d stalls on a stall-free input", len(a.Stalls))
		}
		if a.DataPackets != batch.DataPackets || a.DataBytes != batch.DataBytes ||
			a.TransmissionTime != batch.TransmissionTime {
			t.Fatalf("synthesized summary diverges: packets %d/%d bytes %d/%d span %v/%v",
				a.DataPackets, batch.DataPackets, a.DataBytes, batch.DataBytes,
				a.TransmissionTime, batch.TransmissionTime)
		}
	})
}
