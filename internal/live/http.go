package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/stats"
)

// NewHandler exposes a Monitor's metrics and admin planes:
//
//	GET /metrics                 Prometheus text exposition (see writeMetrics)
//	GET /healthz                 liveness — 200 "ok" while the monitor accepts records
//	GET /flows                   JSON list of active flows (?n= limits)
//	GET /flows/{id}              one active flow, 404 when unknown/evicted
//	GET /debug/flows/{id}/trace  the flow's flight-recorder evidence
//	GET /stalls                  JSON ring of the most recent closed stalls (?n= limits)
//	GET /config                  JSON of the effective (defaulted) configuration
func NewHandler(m *Monitor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, m.Snapshot())
		writeRuntimeMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if m.closed.Load() {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /flows", func(w http.ResponseWriter, r *http.Request) {
		limit, ok := limitParam(w, r)
		if !ok {
			return
		}
		flows := m.Flows()
		sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })
		active := len(flows)
		if limit > 0 && limit < len(flows) {
			flows = flows[:limit]
		}
		writeJSON(w, map[string]any{"active": active, "flows": flows})
	})
	mux.HandleFunc("GET /flows/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Flow(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown flow (never seen, or already evicted)", http.StatusNotFound)
			return
		}
		writeJSON(w, info)
	})
	mux.HandleFunc("GET /debug/flows/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		ft, ok := m.FlowTrace(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown flow (never seen, or already evicted)", http.StatusNotFound)
			return
		}
		writeJSON(w, ft)
	})
	mux.HandleFunc("GET /stalls", func(w http.ResponseWriter, r *http.Request) {
		limit, ok := limitParam(w, r)
		if !ok {
			return
		}
		stalls := m.RecentStalls()
		if limit > 0 && limit < len(stalls) {
			stalls = stalls[len(stalls)-limit:] // newest-biased tail
		}
		out := make([]stallJSON, 0, len(stalls))
		for _, ls := range stalls {
			out = append(out, newStallJSON(ls))
		}
		writeJSON(w, map[string]any{"count": len(out), "stalls": out})
	})
	mux.HandleFunc("GET /config", func(w http.ResponseWriter, r *http.Request) {
		cfg := m.Config()
		out := map[string]any{
			"shards":               cfg.Shards,
			"max_flows":            cfg.MaxFlows,
			"max_records_per_flow": cfg.MaxRecordsPerFlow,
			"idle_timeout":         cfg.IdleTimeout.String(),
			"ring_size":            cfg.RingSize,
			"window":               cfg.Window.String(),
			"window_buckets":       cfg.WindowBuckets,
			"recent_stalls":        cfg.RecentStalls,
			"analysis": map[string]any{
				"tau":        cfg.Analysis.Tau,
				"dup_thresh": cfg.Analysis.DupThresh,
				"init_cwnd":  cfg.Analysis.InitCwnd,
				"init_rto":   cfg.Analysis.InitRTO.String(),
				"min_rto":    cfg.Analysis.MinRTO.String(),
			},
			// The runtime block is the live truth: these values start as
			// the constructed configuration but can be retuned while the
			// monitor runs (a fleet head pushes them via the member's
			// heartbeat responses).
			"runtime": map[string]any{
				"max_records_per_flow": m.MaxRecordsPerFlow(),
				"triage_enabled":       m.TriageEnabled(),
				"flight_enabled":       m.FlightEnabled(),
			},
		}
		if cfg.Triage != nil {
			out["triage"] = map[string]any{
				"ring_cap":     cfg.Triage.RingCap,
				"tau":          cfg.Triage.Tau,
				"min_rto":      cfg.Triage.MinRTO.String(),
				"init_rto":     cfg.Triage.InitRTO.String(),
				"dup_burst":    cfg.Triage.DupBurst,
				"demote_after": cfg.Triage.DemoteAfter.String(),
			}
		}
		writeJSON(w, out)
	})
	return mux
}

// maxLimitParam bounds ?n=: anything past it cannot be a real paging
// request (the flow table itself caps far lower) and is rejected
// rather than silently clamped, so a fat-fingered or adversarial
// value surfaces as a 400 instead of an unbounded-looking query that
// quietly worked.
const maxLimitParam = 1 << 20

// limitParam parses the optional ?n= result cap; on a malformed,
// negative or absurdly large value it writes 400 and reports false.
func limitParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return 0, true
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		http.Error(w, "bad query: n must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	if n > maxLimitParam {
		http.Error(w, "bad query: n exceeds the maximum of 1048576", http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

// stallJSON flattens a LiveStall for the admin plane. ID is the
// stall's flow-scoped identifier — the same one evidence refs and
// groundtruth grading use.
type stallJSON struct {
	FlowID       string  `json:"flow_id"`
	Service      string  `json:"service,omitempty"`
	ID           int     `json:"id"`
	StartS       float64 `json:"start_s"`
	EndS         float64 `json:"end_s"`
	DurationMS   float64 `json:"duration_ms"`
	Cause        string  `json:"cause"`
	Category     string  `json:"category"`
	RetransCause string  `json:"retrans_cause,omitempty"`
	// Evidence names the flight-recorder entry for this stall
	// (resolve via /debug/flows/{flow_id}/trace); absent when the
	// recorder is disabled.
	Evidence string `json:"evidence,omitempty"`
}

func newStallJSON(ls core.LiveStall) stallJSON {
	sj := stallJSON{
		FlowID:     ls.FlowID,
		Service:    ls.Service,
		ID:         ls.Stall.ID,
		StartS:     ls.Stall.Start.Seconds(),
		EndS:       ls.Stall.End.Seconds(),
		DurationMS: float64(ls.Stall.Duration) / float64(time.Millisecond),
		Cause:      ls.Stall.Cause.String(),
		Category:   core.CategoryOf(ls.Stall.Cause).String(),
	}
	if ls.Stall.Cause == core.CauseTimeoutRetrans {
		sj.RetransCause = ls.Stall.RetransCause.String()
	}
	if ls.Stall.Evidence != nil {
		sj.Evidence = ls.Stall.Evidence.String()
	}
	return sj
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeMetrics renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the monitor stays
// dependency-free. Label sets are emitted in sorted order so scrapes
// are deterministic and diffable.
func writeMetrics(w io.Writer, s Snapshot) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP tapod_uptime_seconds Time since the monitor started.\n")
	p("# TYPE tapod_uptime_seconds gauge\n")
	p("tapod_uptime_seconds %s\n", fnum(s.Uptime.Seconds()))

	p("# HELP tapod_records_ingested_total Records accepted into shard rings.\n")
	p("# TYPE tapod_records_ingested_total counter\n")
	p("tapod_records_ingested_total %d\n", s.Ingested)

	p("# HELP tapod_records_dropped_total Records discarded, by reason.\n")
	p("# TYPE tapod_records_dropped_total counter\n")
	p("tapod_records_dropped_total{reason=%q} %d\n", "ring_full", s.RingDrops)
	p("tapod_records_dropped_total{reason=%q} %d\n", "flow_record_cap", s.RecordsCapDrop)

	p("# HELP tapod_shard_ring_drops_total Records shed at each shard's full ingest ring.\n")
	p("# TYPE tapod_shard_ring_drops_total counter\n")
	for i, n := range s.ShardRingDrops {
		p("tapod_shard_ring_drops_total{shard=\"%d\"} %d\n", i, n)
	}

	p("# HELP tapod_flight_drops_total Flight-recorder ring truncation (settled at flow eviction), by kind.\n")
	p("# TYPE tapod_flight_drops_total counter\n")
	p("tapod_flight_drops_total{kind=%q} %d\n", "event", s.FlightEventDrops)
	p("tapod_flight_drops_total{kind=%q} %d\n", "evidence", s.FlightEvidenceDrops)

	p("# HELP tapod_records_fed_total Records fed into per-flow analyzers.\n")
	p("# TYPE tapod_records_fed_total counter\n")
	p("tapod_records_fed_total %d\n", s.RecordsFed)

	p("# HELP tapod_triage_records_total Records handled by the triage fast path.\n")
	p("# TYPE tapod_triage_records_total counter\n")
	p("tapod_triage_records_total %d\n", s.TriageFastRecords)

	p("# HELP tapod_triage_promotions_total Flow promotions to full analysis, by symptom.\n")
	p("# TYPE tapod_triage_promotions_total counter\n")
	for _, sym := range sortedKeys(s.TriagePromotions) {
		p("tapod_triage_promotions_total{symptom=%q} %d\n", sym, s.TriagePromotions[sym])
	}

	p("# HELP tapod_triage_repromotions_total Promotions that re-attached a parked analyzer.\n")
	p("# TYPE tapod_triage_repromotions_total counter\n")
	p("tapod_triage_repromotions_total %d\n", s.TriageRepromotions)

	p("# HELP tapod_triage_demotions_total Promoted flows parked after staying symptom-free.\n")
	p("# TYPE tapod_triage_demotions_total counter\n")
	p("tapod_triage_demotions_total %d\n", s.TriageDemotions)

	p("# HELP tapod_triage_truncated_promotions_total Promotions whose symptom evidence predated the record ring (replayed from ring start).\n")
	p("# TYPE tapod_triage_truncated_promotions_total counter\n")
	p("tapod_triage_truncated_promotions_total %d\n", s.TriageTruncatedPromotions)

	p("# HELP tapod_triage_promoted_flows Live flows currently promoted to full analysis.\n")
	p("# TYPE tapod_triage_promoted_flows gauge\n")
	p("tapod_triage_promoted_flows %d\n", s.PromotedFlows)

	p("# HELP tapod_triage_parked_flows Live flows holding a demoted (parked) analyzer.\n")
	p("# TYPE tapod_triage_parked_flows gauge\n")
	p("tapod_triage_parked_flows %d\n", s.ParkedFlows)

	p("# HELP tapod_flows_active Flows currently tracked.\n")
	p("# TYPE tapod_flows_active gauge\n")
	p("tapod_flows_active %d\n", s.ActiveFlows)

	p("# HELP tapod_flows_seen_total Flows ever admitted.\n")
	p("# TYPE tapod_flows_seen_total counter\n")
	p("tapod_flows_seen_total %d\n", s.FlowsSeen)

	p("# HELP tapod_flows_evicted_total Flows evicted, by reason.\n")
	p("# TYPE tapod_flows_evicted_total counter\n")
	for _, r := range sortedKeys(s.FlowsEvicted) {
		p("tapod_flows_evicted_total{reason=%q} %d\n", r, s.FlowsEvicted[r])
	}

	p("# HELP tapod_flows_truncated_total Flows that hit the per-flow record cap.\n")
	p("# TYPE tapod_flows_truncated_total counter\n")
	p("tapod_flows_truncated_total %d\n", s.FlowsTruncated)

	p("# HELP tapod_stalls_total Closed stalls by service and Figure-5 cause.\n")
	p("# TYPE tapod_stalls_total counter\n")
	forEachCause(s.StallCount, func(k CauseKey) {
		p("tapod_stalls_total{service=%q,cause=%q,category=%q} %d\n",
			k.Service, k.Cause.String(), core.CategoryOf(k.Cause).String(), s.StallCount[k])
	})

	p("# HELP tapod_stall_seconds_total Total stalled seconds by service and cause.\n")
	p("# TYPE tapod_stall_seconds_total counter\n")
	forEachCause(s.StallSeconds, func(k CauseKey) {
		p("tapod_stall_seconds_total{service=%q,cause=%q} %s\n",
			k.Service, k.Cause.String(), fnum(s.StallSeconds[k]))
	})

	writeHistogram(p, "tapod_stall_duration_ms", "Closed stall durations in milliseconds.", s.DurationsMS)

	p("# HELP tapod_retrans_stalls_total Retransmission stalls by Table-5 sub-cause (settled at eviction).\n")
	p("# TYPE tapod_retrans_stalls_total counter\n")
	for _, c := range sortedRetrans(s.RetransCount) {
		p("tapod_retrans_stalls_total{subcause=%q} %d\n", c.String(), s.RetransCount[c])
	}

	p("# HELP tapod_retrans_stall_seconds_total Retransmission stall seconds by Table-5 sub-cause.\n")
	p("# TYPE tapod_retrans_stall_seconds_total counter\n")
	for _, c := range sortedRetrans(s.RetransSeconds) {
		p("tapod_retrans_stall_seconds_total{subcause=%q} %s\n", c.String(), fnum(s.RetransSeconds[c]))
	}

	p("# HELP tapod_window_stalls Stalls closed inside the rolling window, by service and cause.\n")
	p("# TYPE tapod_window_stalls gauge\n")
	forEachCause(s.Window.StallCount, func(k CauseKey) {
		p("tapod_window_stalls{service=%q,cause=%q} %d\n", k.Service, k.Cause.String(), s.Window.StallCount[k])
	})

	p("# HELP tapod_window_stall_seconds Stalled seconds inside the rolling window.\n")
	p("# TYPE tapod_window_stall_seconds gauge\n")
	forEachCause(s.Window.StallSeconds, func(k CauseKey) {
		p("tapod_window_stall_seconds{service=%q,cause=%q} %s\n", k.Service, k.Cause.String(), fnum(s.Window.StallSeconds[k]))
	})

	p("# HELP tapod_window_span_seconds Width of the rolling window.\n")
	p("# TYPE tapod_window_span_seconds gauge\n")
	p("tapod_window_span_seconds %s\n", fnum(s.Window.Span.Seconds()))
}

// writeRuntimeMetrics emits the daemon's own Go runtime health —
// goroutine count, heap, GC pause — so the monitor watches itself
// with the same scrape that watches the flows.
func writeRuntimeMetrics(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	p("# HELP tapod_goroutines Current goroutine count.\n")
	p("# TYPE tapod_goroutines gauge\n")
	p("tapod_goroutines %d\n", runtime.NumGoroutine())

	p("# HELP tapod_heap_alloc_bytes Bytes of allocated heap objects.\n")
	p("# TYPE tapod_heap_alloc_bytes gauge\n")
	p("tapod_heap_alloc_bytes %d\n", ms.HeapAlloc)

	p("# HELP tapod_heap_sys_bytes Heap memory obtained from the OS.\n")
	p("# TYPE tapod_heap_sys_bytes gauge\n")
	p("tapod_heap_sys_bytes %d\n", ms.HeapSys)

	p("# HELP tapod_gc_cycles_total Completed GC cycles.\n")
	p("# TYPE tapod_gc_cycles_total counter\n")
	p("tapod_gc_cycles_total %d\n", ms.NumGC)

	p("# HELP tapod_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n")
	p("# TYPE tapod_gc_pause_seconds_total counter\n")
	p("tapod_gc_pause_seconds_total %s\n", fnum(float64(ms.PauseTotalNs)/1e9))
}

// writeHistogram emits one Prometheus histogram family from a
// stats.Histogram whose bounds are in milliseconds.
func writeHistogram(p func(string, ...any), name, help string, h *stats.Histogram) {
	p("# HELP %s %s\n", name, help)
	p("# TYPE %s histogram\n", name)
	if h == nil {
		h = stats.NewHistogram(DurationBoundsMS)
	}
	bounds := h.Bounds()
	for i, ub := range bounds {
		p("%s_bucket{le=%q} %d\n", name, fnum(ub), h.Cumulative(i))
	}
	p("%s_bucket{le=\"+Inf\"} %d\n", name, h.N())
	p("%s_sum %s\n", name, fnum(h.Sum()))
	p("%s_count %d\n", name, h.N())
}

// fnum formats a float the way Prometheus clients do: shortest
// round-trip representation.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedRetrans[V any](m map[core.RetransCause]V) []core.RetransCause {
	keys := make([]core.RetransCause, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// forEachCause visits cause-keyed counters sorted by (service, cause).
func forEachCause[V any](m map[CauseKey]V, fn func(CauseKey)) {
	keys := make([]CauseKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Service != keys[j].Service {
			return keys[i].Service < keys[j].Service
		}
		return keys[i].Cause < keys[j].Cause
	})
	for _, k := range keys {
		fn(k)
	}
}
