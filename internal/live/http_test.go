package live

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcpstall/internal/sim"
)

func get(t *testing.T, h *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHTTPPlane(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New(Config{Shards: 1, Clock: clk.Now})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// A flow with one large inter-packet gap: a guaranteed stall.
	feedDirect(m, dataEvent("tapo-1", 0, 1000, 1460))
	feedDirect(m, dataEvent("tapo-1", sim.Time(2*time.Second), 2460, 1460))

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"tapod_flows_active 1",
		"tapod_records_fed_total 2",
		"tapod_records_dropped_total{reason=\"ring_full\"} 0",
		// With no client SYN or ACKs the advertised window is unknown
		// (0), so the classifier reads the gap as zero-rwnd.
		"tapod_stalls_total{service=\"\",cause=\"zero-rwnd\",category=\"client\"} 1",
		"tapod_stall_duration_ms_count 1",
		"tapod_window_span_seconds 60",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/flows")
	if code != 200 {
		t.Fatalf("/flows = %d", code)
	}
	var flows struct {
		Active int        `json:"active"`
		Flows  []FlowInfo `json:"flows"`
	}
	if err := json.Unmarshal([]byte(body), &flows); err != nil {
		t.Fatalf("/flows JSON: %v\n%s", err, body)
	}
	if flows.Active != 1 || len(flows.Flows) != 1 || flows.Flows[0].ID != "tapo-1" {
		t.Errorf("/flows = %+v", flows)
	}
	if flows.Flows[0].Records != 2 {
		t.Errorf("flow records = %d, want 2", flows.Flows[0].Records)
	}

	code, body = get(t, srv, "/stalls")
	if code != 200 {
		t.Fatalf("/stalls = %d", code)
	}
	var stalls struct {
		Count  int         `json:"count"`
		Stalls []stallJSON `json:"stalls"`
	}
	if err := json.Unmarshal([]byte(body), &stalls); err != nil {
		t.Fatalf("/stalls JSON: %v\n%s", err, body)
	}
	if stalls.Count != 1 || stalls.Stalls[0].FlowID != "tapo-1" {
		t.Fatalf("/stalls = %+v", stalls)
	}
	if stalls.Stalls[0].Cause != "zero-rwnd" || stalls.Stalls[0].Category != "client" {
		t.Errorf("stall classification = %+v", stalls.Stalls[0])
	}

	code, body = get(t, srv, "/config")
	if code != 200 || !strings.Contains(body, "\"max_flows\": 65536") {
		t.Errorf("/config = %d %q", code, body)
	}

	// Shutdown flips the health check.
	m.Close()
	if code, _ := get(t, srv, "/healthz"); code != 503 {
		t.Errorf("/healthz after Close = %d, want 503", code)
	}
}

// TestLimitParam pins the ?n= contract on /flows and /stalls: 0 and
// anything at or above the list length return the whole list,
// in-range values truncate, and negative, absurd, or non-numeric
// values are 400s — never a silent clamp.
func TestLimitParam(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New(Config{Shards: 1, Clock: clk.Now})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	feedDirect(m, dataEvent("lim-1", 0, 1000, 1460))
	feedDirect(m, dataEvent("lim-2", 0, 1000, 1460))

	countFlows := func(body string) int {
		t.Helper()
		var flows struct {
			Flows []FlowInfo `json:"flows"`
		}
		if err := json.Unmarshal([]byte(body), &flows); err != nil {
			t.Fatalf("JSON: %v\n%s", err, body)
		}
		return len(flows.Flows)
	}

	for _, tc := range []struct {
		path string
		code int
		n    int // expected list length when code == 200
	}{
		{"/flows", 200, 2},           // no n: everything
		{"/flows?n=0", 200, 2},       // 0 means no cap
		{"/flows?n=1", 200, 1},       // in-range truncation
		{"/flows?n=2", 200, 2},       // exactly the length
		{"/flows?n=1000", 200, 2},    // above the length, below the bound
		{"/flows?n=1048576", 200, 2}, // the bound itself is accepted
		{"/flows?n=-1", 400, 0},
		{"/flows?n=1048577", 400, 0},
		{"/flows?n=9999999999999999999", 400, 0}, // overflows int64 too
		{"/flows?n=ten", 400, 0},
		{"/stalls?n=-1", 400, 0},
		{"/stalls?n=1048577", 400, 0},
	} {
		code, body := get(t, srv, tc.path)
		if code != tc.code {
			t.Errorf("%s = %d, want %d (%s)", tc.path, code, tc.code, body)
			continue
		}
		if code == 200 && strings.HasPrefix(tc.path, "/flows") {
			if got := countFlows(body); got != tc.n {
				t.Errorf("%s returned %d flows, want %d", tc.path, got, tc.n)
			}
		}
	}
}
