package live

import (
	"testing"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/sim"
)

func stallEvent(service string, cause core.Cause, d time.Duration) core.LiveStall {
	return core.LiveStall{
		Service: service,
		Stall:   core.Stall{Cause: cause, Duration: sim.Duration(d)},
	}
}

func TestRollWindowAges(t *testing.T) {
	ag := newAggregates(10*time.Second, 5) // 2s buckets
	base := time.Unix(10_000, 0)
	k := CauseKey{Service: "svc", Cause: core.CausePacketDelay}

	ag.stallClosed(base, stallEvent("svc", core.CausePacketDelay, 100*time.Millisecond))
	ag.stallClosed(base.Add(4*time.Second), stallEvent("svc", core.CausePacketDelay, 200*time.Millisecond))

	// Both stalls inside the window.
	win := ag.window.snapshot(base.Add(5 * time.Second))
	if win.StallCount[k] != 2 {
		t.Fatalf("window count = %d, want 2", win.StallCount[k])
	}

	// 11s after the first stall: only the second remains.
	win = ag.window.snapshot(base.Add(11 * time.Second))
	if win.StallCount[k] != 1 {
		t.Fatalf("aged window count = %d, want 1", win.StallCount[k])
	}
	if got := win.StallSeconds[k]; got < 0.19 || got > 0.21 {
		t.Errorf("aged window seconds = %v, want 0.2", got)
	}

	// Far future: empty window, but cumulative totals persist.
	win = ag.window.snapshot(base.Add(time.Hour))
	if len(win.StallCount) != 0 {
		t.Errorf("stale window still counts %v", win.StallCount)
	}
	if ag.stallCount[k] != 2 {
		t.Errorf("cumulative count = %d, want 2", ag.stallCount[k])
	}
	if ag.durationsMS.N() != 2 {
		t.Errorf("duration histogram N = %d, want 2", ag.durationsMS.N())
	}
}

func TestRollWindowBucketReuse(t *testing.T) {
	ag := newAggregates(4*time.Second, 4) // 1s buckets
	base := time.Unix(20_000, 0)
	k := CauseKey{Service: "s", Cause: core.CauseClientIdle}

	ag.stallClosed(base, stallEvent("s", core.CauseClientIdle, time.Second))
	// Same ring slot, 4 steps later: the old epoch must be wiped, not
	// accumulated into.
	ag.stallClosed(base.Add(4*time.Second), stallEvent("s", core.CauseClientIdle, time.Second))

	win := ag.window.snapshot(base.Add(4 * time.Second))
	if win.StallCount[k] != 1 {
		t.Fatalf("reused bucket count = %d, want 1 (stale epoch leaked)", win.StallCount[k])
	}
}

func TestAggregatesMerge(t *testing.T) {
	a := newAggregates(time.Minute, 6)
	b := newAggregates(time.Minute, 6)
	now := time.Unix(30_000, 0)

	a.stallClosed(now, stallEvent("s1", core.CauseZeroWindow, time.Second))
	b.stallClosed(now, stallEvent("s1", core.CauseZeroWindow, 2*time.Second))
	b.stallClosed(now, stallEvent("s2", core.CauseDataUnavailable, 50*time.Millisecond))
	a.flowsSeen, b.flowsSeen = 3, 4
	a.flowsEvicted[EvictDone] = 2
	b.flowsEvicted[EvictDone] = 1
	b.flowsEvicted[EvictLRU] = 5

	a.merge(b)
	if a.flowsSeen != 7 {
		t.Errorf("flowsSeen = %d, want 7", a.flowsSeen)
	}
	if a.flowsEvicted[EvictDone] != 3 || a.flowsEvicted[EvictLRU] != 5 {
		t.Errorf("flowsEvicted = %v", a.flowsEvicted)
	}
	k := CauseKey{Service: "s1", Cause: core.CauseZeroWindow}
	if a.stallCount[k] != 2 {
		t.Errorf("merged count = %d, want 2", a.stallCount[k])
	}
	if got := a.stallSeconds[k]; got != 3 {
		t.Errorf("merged seconds = %v, want 3", got)
	}
	if a.durationsMS.N() != 3 {
		t.Errorf("merged histogram N = %d, want 3", a.durationsMS.N())
	}
}

func TestRetransBreakdownAtEviction(t *testing.T) {
	ag := newAggregates(time.Minute, 6)
	a := &core.FlowAnalysis{Stalls: []core.Stall{
		{Cause: core.CauseTimeoutRetrans, RetransCause: core.RetransTail, Duration: sim.Duration(time.Second)},
		{Cause: core.CauseTimeoutRetrans, RetransCause: core.RetransDouble, Duration: sim.Duration(2 * time.Second)},
		{Cause: core.CauseClientIdle, Duration: sim.Duration(5 * time.Second)}, // not a retrans stall
	}}
	ag.flowEvicted(EvictDone, a, true)

	if ag.retransCount[core.RetransTail] != 1 || ag.retransCount[core.RetransDouble] != 1 {
		t.Errorf("retransCount = %v", ag.retransCount)
	}
	if len(ag.retransCount) != 2 {
		t.Errorf("non-retrans stall leaked into breakdown: %v", ag.retransCount)
	}
	if ag.flowsTruncated != 1 {
		t.Errorf("flowsTruncated = %d, want 1", ag.flowsTruncated)
	}
}
