package live

import (
	"testing"
	"time"

	"tcpstall/internal/core"
)

func digestStall(flow string) core.LiveStall {
	return core.LiveStall{FlowID: flow, Service: "svc", Stall: core.Stall{Cause: core.CauseTimeoutRetrans}}
}

// TestStallDigestFirstK pins the sampling rule: the digest keeps the
// FIRST cap events of a drain interval and counts the overflow — a
// deterministic bound, unlike the newest-wins stall ring.
func TestStallDigestFirstK(t *testing.T) {
	m := New(Config{DigestSize: 3})
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		m.digest.push(now.Add(time.Duration(i)*time.Second), digestStall(string(rune('a'+i))))
	}
	evs, dropped := m.DrainStallDigest()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	// First-K, oldest first: the survivors are the first three pushes.
	for i, ev := range evs {
		if want := string(rune('a' + i)); ev.Stall.FlowID != want {
			t.Errorf("event %d flow = %q, want %q", i, ev.Stall.FlowID, want)
		}
		if want := now.Add(time.Duration(i) * time.Second); !ev.At.Equal(want) {
			t.Errorf("event %d at = %v, want %v", i, ev.At, want)
		}
	}
	// Drain resets both the buffer and the overflow count.
	evs, dropped = m.DrainStallDigest()
	if len(evs) != 0 || dropped != 0 {
		t.Errorf("second drain = %d events, %d dropped; want empty", len(evs), dropped)
	}
	// And the next interval samples fresh.
	m.digest.push(now, digestStall("z"))
	evs, dropped = m.DrainStallDigest()
	if len(evs) != 1 || dropped != 0 || evs[0].Stall.FlowID != "z" {
		t.Errorf("post-reset drain = %+v dropped=%d, want one event z", evs, dropped)
	}
}

// TestStallDigestDisabled pins the opt-out: DigestSize -1 disables the
// digest entirely — no retention, no overflow accounting — for members
// that only want counters on the wire.
func TestStallDigestDisabled(t *testing.T) {
	m := New(Config{DigestSize: -1})
	for i := 0; i < 4; i++ {
		m.digest.push(time.Unix(1000, 0), digestStall("f"))
	}
	if evs, dropped := m.DrainStallDigest(); len(evs) != 0 || dropped != 0 {
		t.Errorf("disabled digest retained %d events, %d dropped", len(evs), dropped)
	}
}

// TestStallDigestDefaultSize pins the zero-value default: an untouched
// Config digests up to 256 events per push, so fleet members get the
// event stream without any flag.
func TestStallDigestDefaultSize(t *testing.T) {
	m := New(Config{})
	if m.digest.cap != 256 {
		t.Errorf("default digest cap = %d, want 256", m.digest.cap)
	}
}
