// Package netem models unidirectional network paths for the
// simulator: propagation delay with jitter, random and bursty loss, a
// token-rate bottleneck with a DropTail queue, and probabilistic
// reordering. Two Path values back to back form the bidirectional
// link a simulated TCP connection runs over.
package netem

import (
	"time"

	"tcpstall/internal/sim"
)

// Config parameterizes one direction of a path.
type Config struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform [0, Jitter) component per packet.
	Jitter time.Duration
	// JitterExp adds an exponential component with this mean per
	// packet — the heavy-tailed delay variation of wireless/DSL
	// access links that keeps RTTVAR (and hence the RTO) an order of
	// magnitude above the RTT, as in Figure 1b.
	JitterExp time.Duration
	// Loss decides random drops; nil means no loss.
	Loss LossModel
	// Bandwidth is the bottleneck rate in bytes/second; 0 means
	// unlimited (no serialization delay, no queue).
	Bandwidth int64
	// QueueLimit caps the bottleneck queue in packets (DropTail).
	// 0 means unlimited. Only meaningful with Bandwidth > 0.
	QueueLimit int
	// ReorderProb delays a packet by ReorderExtra with this
	// probability, modelling path-level reordering.
	ReorderProb  float64
	ReorderExtra time.Duration
	// SpikeEvery > 0 enables a background delay-spike process: at
	// exponential intervals (mean SpikeEvery) the path delay rises
	// by ~exp(SpikeExtra) for ~exp(SpikeDur) — the RTT-variation
	// episodes behind the paper's packet-delay stalls (Figure 2).
	SpikeEvery time.Duration
	SpikeExtra time.Duration
	SpikeDur   time.Duration
	// FIFOEnforce prevents later packets from overtaking earlier
	// ones (queue-like behaviour during spikes).
	FIFOEnforce bool
	// BurstEvery > 0 enables time-based loss bursts: at exponential
	// intervals (mean BurstEvery) the path drops packets with
	// probability BurstLossP for ~exp(BurstDur). Unlike the
	// packet-indexed Gilbert–Elliott model, these bursts span wall
	// time, so retransmissions sent an RTT later can be swallowed by
	// the same episode — the paper's double-retransmission and
	// continuous-loss conditions.
	BurstEvery time.Duration
	BurstDur   time.Duration
	BurstLossP float64
}

// Stats counts a path's traffic.
type Stats struct {
	Sent         int
	Delivered    int
	LossDrops    int
	QueueDrops   int
	Reordered    int
	Spikes       int
	Bursts       int
	BytesIn      int64
	BytesOut     int64
	MaxQueueSeen int
}

// Path is one direction of a network link. Deliver is invoked (at a
// later virtual instant) for every packet that survives the path.
type Path struct {
	sim *sim.Simulator
	rng *sim.RNG
	cfg Config

	// Deliver receives surviving packets. Must be set before Send.
	Deliver func(pkt any)

	// OnDrop, if set, observes every dropped packet.
	OnDrop func(pkt any)

	busyUntil    sim.Time
	queueLen     int
	burstActive  bool
	spikeExtra   time.Duration
	lastDelivery sim.Time
	stats        Stats
}

// New builds a path on the simulator with its own forked RNG.
func New(s *sim.Simulator, rng *sim.RNG, cfg Config) *Path {
	if cfg.Loss == nil {
		cfg.Loss = NoLoss{}
	}
	p := &Path{sim: s, rng: rng.Fork(), cfg: cfg}
	if cfg.SpikeEvery > 0 {
		p.scheduleSpike()
	}
	if cfg.BurstEvery > 0 {
		p.scheduleBurst()
	}
	return p
}

func (p *Path) scheduleBurst() {
	wait := time.Duration(p.rng.Exponential(float64(p.cfg.BurstEvery)))
	p.sim.Schedule(wait, func() {
		p.burstActive = true
		p.stats.Bursts++
		dur := time.Duration(p.rng.Exponential(float64(p.cfg.BurstDur)))
		p.sim.Schedule(dur, func() { p.burstActive = false })
		p.scheduleBurst()
	})
}

func (p *Path) scheduleSpike() {
	wait := time.Duration(p.rng.Exponential(float64(p.cfg.SpikeEvery)))
	p.sim.Schedule(wait, func() {
		p.spikeExtra = time.Duration(p.rng.Exponential(float64(p.cfg.SpikeExtra)))
		p.stats.Spikes++
		dur := time.Duration(p.rng.Exponential(float64(p.cfg.SpikeDur)))
		p.sim.Schedule(dur, func() { p.spikeExtra = 0 })
		p.scheduleSpike()
	})
}

// Stats returns a copy of the path's counters.
func (p *Path) Stats() Stats { return p.stats }

// Config returns the path configuration.
func (p *Path) Config() Config { return p.cfg }

// SetDelay changes the propagation delay mid-run (used by scripted
// scenarios that inject RTT variation).
func (p *Path) SetDelay(d time.Duration) { p.cfg.Delay = d }

// SetLoss swaps the loss model mid-run.
func (p *Path) SetLoss(m LossModel) {
	if m == nil {
		m = NoLoss{}
	}
	p.cfg.Loss = m
}

// Send pushes a packet of the given wire size into the path. The
// packet is dropped (loss model or full queue) or scheduled for
// delivery after serialization + propagation + jitter.
func (p *Path) Send(pkt any, size int) {
	p.stats.Sent++
	p.stats.BytesIn += int64(size)
	now := p.sim.Now()

	if p.cfg.Loss.Drop(p.rng, now) || (p.burstActive && p.rng.Bool(p.cfg.BurstLossP)) {
		p.stats.LossDrops++
		if p.OnDrop != nil {
			p.OnDrop(pkt)
		}
		return
	}

	var depart sim.Time
	if p.cfg.Bandwidth > 0 {
		if p.cfg.QueueLimit > 0 && p.queueLen >= p.cfg.QueueLimit {
			p.stats.QueueDrops++
			if p.OnDrop != nil {
				p.OnDrop(pkt)
			}
			return
		}
		ser := time.Duration(float64(size) / float64(p.cfg.Bandwidth) * float64(time.Second))
		start := now
		if p.busyUntil > start {
			start = p.busyUntil
		}
		depart = start.Add(ser)
		p.busyUntil = depart
		p.queueLen++
		if p.queueLen > p.stats.MaxQueueSeen {
			p.stats.MaxQueueSeen = p.queueLen
		}
		p.sim.ScheduleAt(depart, func() { p.queueLen-- })
	} else {
		depart = now
	}

	delay := p.cfg.Delay + p.spikeExtra
	if p.cfg.Jitter > 0 {
		delay += time.Duration(p.rng.Float64() * float64(p.cfg.Jitter))
	}
	if p.cfg.JitterExp > 0 {
		delay += time.Duration(p.rng.Exponential(float64(p.cfg.JitterExp)))
	}
	if p.cfg.ReorderProb > 0 && p.rng.Bool(p.cfg.ReorderProb) {
		delay += p.cfg.ReorderExtra
		p.stats.Reordered++
	}

	deliverAt := depart.Add(delay)
	if p.cfg.FIFOEnforce && deliverAt < p.lastDelivery {
		deliverAt = p.lastDelivery
	}
	if p.cfg.FIFOEnforce {
		p.lastDelivery = deliverAt
	}

	p.sim.ScheduleAt(deliverAt, func() {
		p.stats.Delivered++
		p.stats.BytesOut += int64(size)
		if p.Deliver == nil {
			panic("netem: Path.Deliver not set")
		}
		p.Deliver(pkt)
	})
}
