package netem

import (
	"time"

	"tcpstall/internal/sim"
)

// LossModel decides, packet by packet, whether the path drops it.
// Implementations draw from the supplied RNG so a path's drop pattern
// is reproducible for a fixed seed; they also see the virtual time so
// burst state can decay across idle periods.
type LossModel interface {
	Drop(rng *sim.RNG, now sim.Time) bool
}

// NoLoss never drops.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*sim.RNG, sim.Time) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	P float64
}

// Drop implements LossModel.
func (b Bernoulli) Drop(rng *sim.RNG, _ sim.Time) bool { return rng.Bool(b.P) }

// GilbertElliott is the classic two-state burst-loss model: the
// channel alternates between a Good state (loss probability LossGood,
// usually ~0) and a Bad state (loss probability LossBad, high), with
// geometric sojourn times. It produces the clustered drops behind the
// paper's "continuous loss" and "double retransmission" stalls.
type GilbertElliott struct {
	// PGoodToBad is the per-packet probability of entering the Bad
	// state from Good; PBadToGood the reverse.
	PGoodToBad float64
	PBadToGood float64
	// LossGood and LossBad are the per-packet drop probabilities in
	// each state.
	LossGood float64
	LossBad  float64
	// IdleReset returns the channel to Good after this much silence
	// (default 250ms): congestion episodes are time-correlated, so a
	// retransmission seconds later must not resample a bad state
	// frozen from the last packet. Without it, RTO backoff chains
	// can be swallowed whole — an artifact, not a network.
	IdleReset time.Duration

	bad      bool
	lastSeen sim.Time
	seenAny  bool
}

// Drop implements LossModel, advancing the channel state first.
func (g *GilbertElliott) Drop(rng *sim.RNG, now sim.Time) bool {
	reset := g.IdleReset
	if reset <= 0 {
		reset = 250 * time.Millisecond
	}
	if g.seenAny && now.Sub(g.lastSeen) > reset {
		g.bad = false
	}
	g.lastSeen = now
	g.seenAny = true
	if g.bad {
		if rng.Bool(g.PBadToGood) {
			g.bad = false
		}
	} else {
		if rng.Bool(g.PGoodToBad) {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return rng.Bool(p)
}

// Bad reports the current channel state (exported for tests and
// instrumentation).
func (g *GilbertElliott) Bad() bool { return g.bad }

// Deterministic drops exactly the packets whose 0-based index is
// listed. It exists for scripted scenarios (e.g. the Figure 2
// illustrative flow) and for classifier ground-truth tests.
type Deterministic struct {
	Indices map[int]bool
	count   int
}

// DropList builds a Deterministic model from explicit indices.
func DropList(indices ...int) *Deterministic {
	m := make(map[int]bool, len(indices))
	for _, i := range indices {
		m[i] = true
	}
	return &Deterministic{Indices: m}
}

// Drop implements LossModel.
func (d *Deterministic) Drop(_ *sim.RNG, _ sim.Time) bool {
	drop := d.Indices[d.count]
	d.count++
	return drop
}

// Count reports how many packets the model has examined.
func (d *Deterministic) Count() int { return d.count }
