package netem

import (
	"math"
	"testing"
	"time"

	"tcpstall/internal/sim"
)

func newPath(cfg Config) (*sim.Simulator, *Path, *[]any, *[]sim.Time) {
	s := sim.New()
	p := New(s, sim.NewRNG(1), cfg)
	var got []any
	var at []sim.Time
	p.Deliver = func(pkt any) {
		got = append(got, pkt)
		at = append(at, s.Now())
	}
	return s, p, &got, &at
}

func TestPropagationDelay(t *testing.T) {
	s, p, got, at := newPath(Config{Delay: 50 * time.Millisecond})
	p.Send("a", 100)
	s.Run()
	if len(*got) != 1 || (*got)[0] != "a" {
		t.Fatalf("delivered = %v", *got)
	}
	if (*at)[0] != sim.Time(50*time.Millisecond) {
		t.Errorf("delivered at %v, want 50ms", (*at)[0])
	}
}

func TestJitterBounds(t *testing.T) {
	s, p, _, at := newPath(Config{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	for i := 0; i < 200; i++ {
		p.Send(i, 100)
	}
	s.Run()
	for _, ts := range *at {
		d := time.Duration(ts)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("delivery at %v outside [10ms, 15ms)", d)
		}
	}
}

func TestBernoulliLossRate(t *testing.T) {
	s, p, got, _ := newPath(Config{Loss: Bernoulli{P: 0.3}})
	const n = 20000
	for i := 0; i < n; i++ {
		p.Send(i, 100)
	}
	s.Run()
	rate := 1 - float64(len(*got))/n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("loss rate = %.3f, want ≈0.3", rate)
	}
	st := p.Stats()
	if st.Sent != n || st.LossDrops+st.Delivered != n {
		t.Errorf("stats don't add up: %+v", st)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// A GE channel with sticky Bad state must produce more
	// consecutive-loss pairs than an iid channel at the same average
	// rate.
	rng := sim.NewRNG(7)
	ge := &GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.3, LossGood: 0, LossBad: 0.8}
	const n = 100000
	var drops []bool
	lost := 0
	for i := 0; i < n; i++ {
		// Tight packet spacing (1ms) keeps the burst state alive.
		d := ge.Drop(rng, sim.Time(time.Duration(i)*time.Millisecond))
		drops = append(drops, d)
		if d {
			lost++
		}
	}
	rate := float64(lost) / n
	if rate <= 0.005 || rate >= 0.1 {
		t.Fatalf("GE loss rate = %.4f, outside sane band", rate)
	}
	pairs := 0
	for i := 1; i < n; i++ {
		if drops[i] && drops[i-1] {
			pairs++
		}
	}
	pPairGE := float64(pairs) / float64(lost)
	// For iid at the same rate, P(next also lost) = rate. GE should
	// be far above it.
	if pPairGE < 3*rate {
		t.Errorf("GE conditional loss %.4f not bursty vs marginal %.4f", pPairGE, rate)
	}
}

func TestDeterministicLoss(t *testing.T) {
	s, p, got, _ := newPath(Config{Loss: DropList(1, 3)})
	var dropped []any
	p.OnDrop = func(pkt any) { dropped = append(dropped, pkt) }
	for i := 0; i < 5; i++ {
		p.Send(i, 100)
	}
	s.Run()
	if len(*got) != 3 {
		t.Fatalf("delivered %d, want 3", len(*got))
	}
	if len(dropped) != 2 || dropped[0] != 1 || dropped[1] != 3 {
		t.Errorf("dropped = %v, want [1 3]", dropped)
	}
	if m := p.Stats(); m.LossDrops != 2 {
		t.Errorf("LossDrops = %d", m.LossDrops)
	}
}

func TestBottleneckSerialization(t *testing.T) {
	// 1000 B/s, two 500-byte packets sent together: second departs
	// 0.5s after the first.
	s, p, _, at := newPath(Config{Bandwidth: 1000})
	p.Send("a", 500)
	p.Send("b", 500)
	s.Run()
	if len(*at) != 2 {
		t.Fatalf("delivered %d", len(*at))
	}
	if (*at)[0] != sim.Time(500*time.Millisecond) {
		t.Errorf("first at %v, want 500ms", (*at)[0])
	}
	if (*at)[1] != sim.Time(time.Second) {
		t.Errorf("second at %v, want 1s", (*at)[1])
	}
}

func TestBottleneckIdleReset(t *testing.T) {
	// After the queue drains, a later packet sees only its own
	// serialization time.
	s, p, _, at := newPath(Config{Bandwidth: 1000})
	p.Send("a", 1000)
	s.RunUntil(sim.Time(5 * time.Second))
	p.Send("b", 1000)
	s.Run()
	if (*at)[1] != sim.Time(6*time.Second) {
		t.Errorf("second at %v, want 6s", (*at)[1])
	}
}

func TestDropTailQueue(t *testing.T) {
	s, p, got, _ := newPath(Config{Bandwidth: 1000, QueueLimit: 2})
	for i := 0; i < 10; i++ {
		p.Send(i, 1000) // 1s serialization each; only 2 fit
	}
	s.Run()
	if len(*got) != 2 {
		t.Errorf("delivered %d, want 2 (DropTail)", len(*got))
	}
	st := p.Stats()
	if st.QueueDrops != 8 {
		t.Errorf("QueueDrops = %d, want 8", st.QueueDrops)
	}
	if st.MaxQueueSeen != 2 {
		t.Errorf("MaxQueueSeen = %d, want 2", st.MaxQueueSeen)
	}
}

func TestQueueDrainAllowsLaterTraffic(t *testing.T) {
	s, p, got, _ := newPath(Config{Bandwidth: 1000, QueueLimit: 1})
	p.Send("a", 1000)
	p.Send("b", 1000) // dropped, queue full
	s.RunUntil(sim.Time(1500 * time.Millisecond))
	p.Send("c", 1000) // queue drained at 1s, accepted
	s.Run()
	if len(*got) != 2 {
		t.Errorf("delivered %d, want 2", len(*got))
	}
}

func TestReordering(t *testing.T) {
	s, p, got, _ := newPath(Config{
		Delay: 10 * time.Millisecond, ReorderProb: 1, ReorderExtra: 20 * time.Millisecond,
	})
	p.Send("late", 100)
	// Second packet sent 1ms later but without the reorder penalty
	// (swap probability to 0 before it).
	s.Schedule(time.Millisecond, func() {
		p.cfg.ReorderProb = 0
		p.Send("early", 100)
	})
	s.Run()
	if (*got)[0] != "early" || (*got)[1] != "late" {
		t.Errorf("order = %v, want [early late]", *got)
	}
	if p.Stats().Reordered != 1 {
		t.Errorf("Reordered = %d", p.Stats().Reordered)
	}
}

func TestFIFOWithoutPerturbation(t *testing.T) {
	s, p, got, _ := newPath(Config{Delay: 30 * time.Millisecond, Bandwidth: 1e6})
	for i := 0; i < 50; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Millisecond, func() { p.Send(i, 1500) })
	}
	s.Run()
	for i := 0; i < 50; i++ {
		if (*got)[i] != i {
			t.Fatalf("FIFO violated at %d: %v", i, (*got)[i])
		}
	}
}

func TestSetDelayAndLossMidRun(t *testing.T) {
	s, p, _, at := newPath(Config{Delay: 10 * time.Millisecond})
	p.Send(1, 100)
	s.Schedule(5*time.Millisecond, func() {
		p.SetDelay(100 * time.Millisecond)
		p.SetLoss(Bernoulli{P: 1})
		p.Send(2, 100) // lost
		p.SetLoss(nil) // back to NoLoss
		p.Send(3, 100) // delivered with new delay
	})
	s.Run()
	if len(*at) != 2 {
		t.Fatalf("delivered %d, want 2", len(*at))
	}
	if (*at)[1] != sim.Time(105*time.Millisecond) {
		t.Errorf("second delivery at %v, want 105ms", (*at)[1])
	}
}

func TestDeliverUnsetPanics(t *testing.T) {
	s := sim.New()
	p := New(s, sim.NewRNG(1), Config{})
	p.Send("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic with unset Deliver")
		}
	}()
	s.Run()
}

func TestStatsBytes(t *testing.T) {
	s, p, _, _ := newPath(Config{Loss: DropList(0)})
	p.Send("a", 100) // dropped
	p.Send("b", 200)
	s.Run()
	st := p.Stats()
	if st.BytesIn != 300 || st.BytesOut != 200 {
		t.Errorf("bytes = %d/%d, want 300/200", st.BytesIn, st.BytesOut)
	}
}

func TestDelaySpikes(t *testing.T) {
	s := sim.New()
	p := New(s, sim.NewRNG(3), Config{
		Delay:      10 * time.Millisecond,
		SpikeEvery: 200 * time.Millisecond,
		SpikeExtra: 100 * time.Millisecond,
		SpikeDur:   100 * time.Millisecond,
	})
	var delays []time.Duration
	var sentAt []sim.Time
	p.Deliver = func(pkt any) {
		i := pkt.(int)
		delays = append(delays, time.Duration(s.Now()-sentAt[i]))
	}
	for i := 0; i < 300; i++ {
		i := i
		s.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			sentAt = append(sentAt, s.Now())
			p.Send(i, 100)
		})
	}
	s.RunUntil(sim.Time(4 * time.Second))
	if p.Stats().Spikes == 0 {
		t.Fatal("no spikes fired")
	}
	spiked := 0
	for _, d := range delays {
		if d > 15*time.Millisecond {
			spiked++
		}
	}
	if spiked == 0 {
		t.Error("no packet saw spike-inflated delay")
	}
	if spiked == len(delays) {
		t.Error("every packet inflated: spikes should be episodic")
	}
}

func TestLossBursts(t *testing.T) {
	s := sim.New()
	p := New(s, sim.NewRNG(5), Config{
		BurstEvery: 300 * time.Millisecond,
		BurstDur:   150 * time.Millisecond,
		BurstLossP: 1,
	})
	delivered := 0
	p.Deliver = func(any) { delivered++ }
	const n = 1000
	for i := 0; i < n; i++ {
		s.Schedule(time.Duration(i)*5*time.Millisecond, func() { p.Send(0, 100) })
	}
	s.RunUntil(sim.Time(6 * time.Second))
	st := p.Stats()
	if st.Bursts == 0 {
		t.Fatal("no bursts fired")
	}
	if st.LossDrops == 0 {
		t.Fatal("bursts dropped nothing")
	}
	rate := float64(st.LossDrops) / n
	// Expected ≈ dur/(every+dur) ≈ 1/3, loosely.
	if rate < 0.1 || rate > 0.6 {
		t.Errorf("burst loss rate = %.2f, outside plausible band", rate)
	}
	// Drops must be clustered: conditional drop probability after a
	// drop far above the marginal is implied by full-burst drops; we
	// check at least one run of ≥5 consecutive drops occurred by
	// construction (150ms burst spans 30 packets at 5ms spacing).
	if st.LossDrops < 20 {
		t.Errorf("LossDrops = %d, want sizable clusters", st.LossDrops)
	}
}

func TestGilbertElliottIdleReset(t *testing.T) {
	rng := sim.NewRNG(11)
	ge := &GilbertElliott{PGoodToBad: 1, PBadToGood: 0, LossBad: 1, IdleReset: 100 * time.Millisecond}
	// First packet flips to Bad and drops; state is now stuck Bad.
	if !ge.Drop(rng, 0) {
		t.Fatal("first packet should drop (PGoodToBad=1, LossBad=1)")
	}
	if !ge.Bad() {
		t.Fatal("channel should be Bad")
	}
	// A packet 50ms later still sees the Bad state.
	if !ge.Drop(rng, sim.Time(50*time.Millisecond)) {
		t.Error("within IdleReset the burst persists")
	}
	// After 200ms of silence the episode has passed... though with
	// PGoodToBad=1 it immediately re-enters Bad; use a fresh model to
	// observe the reset itself.
	ge2 := &GilbertElliott{PGoodToBad: 0, PBadToGood: 0, LossBad: 1, IdleReset: 100 * time.Millisecond}
	ge2.bad = true
	ge2.seenAny = true
	ge2.lastSeen = 0
	if ge2.Drop(rng, sim.Time(500*time.Millisecond)) {
		t.Error("idle reset should have returned the channel to Good")
	}
	if ge2.Bad() {
		t.Error("Bad() after idle reset")
	}
}

func TestDeterministicCount(t *testing.T) {
	d := DropList(0)
	d.Drop(nil, 0)
	d.Drop(nil, 0)
	if d.Count() != 2 {
		t.Errorf("Count = %d", d.Count())
	}
}

func TestConfigAccessor(t *testing.T) {
	s := sim.New()
	cfg := Config{Delay: 7 * time.Millisecond}
	p := New(s, sim.NewRNG(1), cfg)
	if p.Config().Delay != 7*time.Millisecond {
		t.Error("Config() mismatch")
	}
}

func TestJitterExp(t *testing.T) {
	s, p, _, at := newPath(Config{Delay: 10 * time.Millisecond, JitterExp: 20 * time.Millisecond})
	for i := 0; i < 500; i++ {
		p.Send(i, 100)
	}
	s.Run()
	var sum time.Duration
	maxD := time.Duration(0)
	for _, ts := range *at {
		d := time.Duration(ts)
		if d < 10*time.Millisecond {
			t.Fatalf("delay below base: %v", d)
		}
		if d > maxD {
			maxD = d
		}
		sum += d - 10*time.Millisecond
	}
	mean := sum / time.Duration(len(*at))
	if mean < 15*time.Millisecond || mean > 25*time.Millisecond {
		t.Errorf("exp jitter mean = %v, want ≈20ms", mean)
	}
	if maxD < 50*time.Millisecond {
		t.Errorf("exp jitter lacks a heavy tail: max extra %v", maxD-10*time.Millisecond)
	}
}
