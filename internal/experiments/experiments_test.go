package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/mitigation"
	"tcpstall/internal/tcpsim"
)

// The dataset is expensive; build it once for all tests.
var (
	dsOnce sync.Once
	dsAll  []*Dataset
)

func testDatasets(t *testing.T) []*Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsAll = BuildAll(Options{Seed: 20141222, FlowsOverride: 160})
	})
	return dsAll
}

func byName(ds []*Dataset, name string) *Dataset {
	for _, d := range ds {
		if d.Service.Name == name {
			return d
		}
	}
	return nil
}

func TestBuildAllThreeServices(t *testing.T) {
	ds := testDatasets(t)
	if len(ds) != 3 {
		t.Fatalf("datasets = %d", len(ds))
	}
	for _, d := range ds {
		if len(d.Analyses) < 140 {
			t.Errorf("%s: only %d analyses", d.Service.Name, len(d.Analyses))
		}
		if d.Report.TotalStalls == 0 {
			t.Errorf("%s: no stalls at all", d.Service.Name)
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, rendered := Table1(testDatasets(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(name string) Table1Row {
		for _, r := range rows {
			if r.Service == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return Table1Row{}
	}
	cs, sd, ws := get("cloud-storage"), get("software-download"), get("web-search")
	// Size ordering: cloud storage ≫ software download ≫ web search
	// (one and two orders of magnitude, per the paper).
	if cs.AvgSize < 8*sd.AvgSize {
		t.Errorf("cloud size %.0f not ≫ download size %.0f", cs.AvgSize, sd.AvgSize)
	}
	if sd.AvgSize < 4*ws.AvgSize {
		t.Errorf("download size %.0f not ≫ search size %.0f", sd.AvgSize, ws.AvgSize)
	}
	// Loss: ~2% web search, ~4% the other two.
	if ws.LossPct >= cs.LossPct || ws.LossPct >= sd.LossPct {
		t.Errorf("web search loss %.1f should be lowest (cs %.1f, sd %.1f)",
			ws.LossPct, cs.LossPct, sd.LossPct)
	}
	for _, r := range rows {
		if r.LossPct < 0.5 || r.LossPct > 12 {
			t.Errorf("%s loss %.1f%% outside sane band", r.Service, r.LossPct)
		}
		if r.AvgRTTms < 50 || r.AvgRTTms > 300 {
			t.Errorf("%s RTT %.0fms outside band", r.Service, r.AvgRTTms)
		}
		// RTO an order of magnitude above RTT (Figure 1b).
		if r.AvgRTOms < 1.5*r.AvgRTTms {
			t.Errorf("%s RTO %.0fms not ≫ RTT %.0fms", r.Service, r.AvgRTOms, r.AvgRTTms)
		}
	}
	// Web search RTT lowest.
	if ws.AvgRTTms >= cs.AvgRTTms || ws.AvgRTTms >= sd.AvgRTTms {
		t.Errorf("web search RTT %.0f should be lowest", ws.AvgRTTms)
	}
	if !strings.Contains(rendered, "Table 1") {
		t.Error("render missing title")
	}
}

func TestFigure1RTOAboveRTT(t *testing.T) {
	rtt, rto, ratio, rendered := Figure1(testDatasets(t))
	if len(rtt.Series) != 3 || len(rto.Series) != 3 || len(ratio.Series) != 3 {
		t.Fatal("series counts")
	}
	for i := range ratio.Series {
		med := ratio.Series[i].Median()
		if med < 1.5 {
			t.Errorf("%s: median RTO/RTT = %.1f, want well above 1", ratio.Names[i], med)
		}
	}
	if !strings.Contains(rendered, "Figure 1a") || !strings.Contains(rendered, "Figure 1b") {
		t.Error("render labels")
	}
}

func TestFigure2Narrative(t *testing.T) {
	res, rendered := Figure2(99)
	if res.TotalTime < 4*time.Second {
		t.Errorf("transfer time %.1fs, want several seconds", res.TotalTime.Seconds())
	}
	if res.Analysis.StalledFraction() < 0.35 {
		t.Errorf("stalled fraction %.2f, want the majority of lifetime impaired",
			res.Analysis.StalledFraction())
	}
	// The three narrative stall classes must all appear.
	seen := map[core.Cause]bool{}
	var retransSeen bool
	for _, st := range res.Analysis.Stalls {
		seen[st.Cause] = true
		if st.Cause == core.CauseTimeoutRetrans && st.Duration > 500*time.Millisecond {
			retransSeen = true
		}
	}
	if !seen[core.CauseZeroWindow] {
		t.Error("no zero-window stall in the Figure 2 scenario")
	}
	if !seen[core.CausePacketDelay] {
		t.Error("no packet-delay stall in the Figure 2 scenario")
	}
	if !retransSeen {
		t.Error("no long timeout-retransmission stall in the Figure 2 scenario")
	}
	if !strings.Contains(rendered, "Figure 2") {
		t.Error("render title")
	}
}

func TestFigure3HeavyStalling(t *testing.T) {
	fs, rendered := Figure3(testDatasets(t))
	if len(fs.Series) != 3 {
		t.Fatal("series")
	}
	// Per the paper, a sizable share of flows stall; a subset spends
	// more than half its lifetime stalled.
	for i, s := range fs.Series {
		stalledAtAll := 1 - s.CDF(0.0001)
		if fs.Names[i] != "web search" && stalledAtAll < 0.15 {
			t.Errorf("%s: only %.0f%% of flows stall", fs.Names[i], 100*stalledAtAll)
		}
	}
	if !strings.Contains(rendered, "Figure 3") {
		t.Error("render")
	}
}

func TestTable3Shapes(t *testing.T) {
	res, rendered := Table3(testDatasets(t))
	// Retransmission stalls are the most significant stall-time
	// contributor for every service (30–60% band in the paper).
	for svc, m := range res {
		rt := m[core.CauseTimeoutRetrans].TimePct
		if rt < 15 {
			t.Errorf("%s: retrans stall time %.1f%%, want dominant contribution", svc, rt)
		}
		for c, cell := range m {
			if cell.TimePct < 0 || cell.TimePct > 100 {
				t.Errorf("%s/%v: time pct %.1f", svc, c, cell.TimePct)
			}
		}
	}
	// Zero-window stalls concentrate in software download.
	sd := res["software-download"][core.CauseZeroWindow].TimePct
	cs := res["cloud-storage"][core.CauseZeroWindow].TimePct
	ws := res["web-search"][core.CauseZeroWindow].TimePct
	if sd <= cs || sd <= ws {
		t.Errorf("zero-window time: sd %.1f should exceed cs %.1f and ws %.1f", sd, cs, ws)
	}
	// Client idle matters most for cloud storage (shared
	// connections).
	if res["cloud-storage"][core.CauseClientIdle].TimePct <=
		res["software-download"][core.CauseClientIdle].TimePct {
		t.Error("client-idle should weigh more in cloud storage")
	}
	// Data-unavailable volume is highest for web search (dynamic
	// content).
	if res["web-search"][core.CauseDataUnavailable].CountPct <=
		res["software-download"][core.CauseDataUnavailable].CountPct {
		t.Error("data-unavailable volume should be highest for web search")
	}
	if !strings.Contains(rendered, "Table 3") {
		t.Error("render")
	}
}

func TestTable4Monotone(t *testing.T) {
	rows, rendered := Table4(testDatasets(t))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Within software download, smaller init rwnd ⇒ higher
	// zero-window probability (allowing noise between adjacent
	// buckets, the ends must order correctly).
	var sdRows []Table4Row
	for _, r := range rows {
		if r.Service == "software-download" {
			sdRows = append(sdRows, r)
		}
	}
	if len(sdRows) < 3 {
		t.Fatalf("software-download buckets = %d", len(sdRows))
	}
	first, last := sdRows[0], sdRows[len(sdRows)-1]
	if first.InitMSS >= last.InitMSS {
		t.Fatalf("bucket ordering broken")
	}
	if first.ZeroPct <= last.ZeroPct {
		t.Errorf("zero-window pct should fall with init rwnd: %d MSS → %.1f%%, %d MSS → %.1f%%",
			first.InitMSS, first.ZeroPct, last.InitMSS, last.ZeroPct)
	}
	// Small windows suffer a lot (paper: >50% at ≤11 MSS).
	if first.ZeroPct < 25 {
		t.Errorf("smallest bucket zero-window pct = %.1f%%, want high", first.ZeroPct)
	}
	if !strings.Contains(rendered, "Table 4") {
		t.Error("render")
	}
}

func TestTable5Shapes(t *testing.T) {
	res, rendered := Table5(testDatasets(t))
	for svc, m := range res {
		double := m[core.RetransDouble].TimePct
		// Double retransmissions are the most expensive type for all
		// three services (with modest slack: the paper's web search
		// has tail at 36.0%% vs double at 41.9%%, a close race).
		for c, cell := range m {
			if c == core.RetransDouble {
				continue
			}
			if cell.TimePct > 1.2*double {
				t.Errorf("%s: %v time %.1f%% exceeds double-retrans %.1f%%",
					svc, c, cell.TimePct, double)
			}
		}
	}
	// Tail retransmission matters far more for web search.
	wsTail := res["web-search"][core.RetransTail].TimePct
	csTail := res["cloud-storage"][core.RetransTail].TimePct
	if wsTail <= csTail {
		t.Errorf("tail time: ws %.1f should exceed cs %.1f", wsTail, csTail)
	}
	if wsTail < 10 {
		t.Errorf("web-search tail share %.1f%%, want substantial", wsTail)
	}
	if !strings.Contains(rendered, "Table 5") {
		t.Error("render")
	}
}

func TestTable6FDoubleDominates(t *testing.T) {
	res, rendered := Table6(testDatasets(t))
	for svc, m := range res {
		f, tt := m[core.DoubleFast], m[core.DoubleTimeout]
		if f+tt < 99 || f+tt > 101 {
			t.Errorf("%s: kinds sum to %.1f", svc, f+tt)
		}
		if f < 50 {
			t.Errorf("%s: f-double %.1f%%, paper finds >50%% in every service", svc, f)
		}
	}
	if !strings.Contains(rendered, "Table 6") {
		t.Error("render")
	}
}

func TestTable7TailStates(t *testing.T) {
	res, rendered := Table7(testDatasets(t))
	for svc, m := range res {
		sum := m[tcpsim.StateOpen] + m[tcpsim.StateRecovery]
		if sum > 0 && (sum < 99 || sum > 101) {
			t.Errorf("%s: states sum to %.1f", svc, sum)
		}
	}
	if !strings.Contains(rendered, "Table 7") {
		t.Error("render")
	}
}

func TestFigure7DoubleContext(t *testing.T) {
	pos, inflight, rendered := Figure7(testDatasets(t))
	// Positions spread across the flow (roughly uniform, per 7a).
	// Web search is exempt: its flows are so short that positions
	// quantize to the head (the paper notes ~10%% of its stalls hit
	// the very first packet).
	for i, s := range pos.Series {
		if s.Len() < 5 || pos.Names[i] == "web search" {
			continue
		}
		med := s.Median()
		if med < 0.1 || med > 0.9 {
			t.Errorf("%s: median double position %.2f, want mid-flow spread", pos.Names[i], med)
		}
	}
	// Web search in-flight at double stalls is smaller than cloud
	// storage's (7b).
	var wsIF, csIF float64
	for i, s := range inflight.Series {
		if s.Len() == 0 {
			continue
		}
		switch inflight.Names[i] {
		case "web search":
			wsIF = s.Median()
		case "cloud stor.":
			csIF = s.Median()
		}
	}
	if wsIF > 0 && csIF > 0 && wsIF > csIF {
		t.Errorf("double in-flight: ws median %.1f should be ≤ cs %.1f", wsIF, csIF)
	}
	if !strings.Contains(rendered, "Figure 7a") {
		t.Error("render")
	}
}

func TestFigure10TailContext(t *testing.T) {
	_, inflight, rendered := Figure10(testDatasets(t))
	// Tail stalls happen at tiny in-flight sizes (most ≤ 3).
	for i, s := range inflight.Series {
		if s.Len() < 3 {
			continue
		}
		if med := s.Median(); med > 4 {
			t.Errorf("%s: median tail in-flight %.1f, want small", inflight.Names[i], med)
		}
	}
	if !strings.Contains(rendered, "Figure 10a") {
		t.Error("render")
	}
}

func TestFigure11SmallWindows(t *testing.T) {
	fs, rendered := Figure11(testDatasets(t))
	for i, s := range fs.Series {
		if s.Len() == 0 {
			t.Fatalf("%s: no samples", fs.Names[i])
		}
		below4 := s.CDF(3.999)
		if below4 < 0.05 {
			t.Errorf("%s: only %.1f%% of in-flight samples below 4", fs.Names[i], 100*below4)
		}
	}
	// Web search has the most tiny windows (short flows).
	var ws, cs float64
	for i, s := range fs.Series {
		switch fs.Names[i] {
		case "web search":
			ws = s.CDF(1.5)
		case "cloud stor.":
			cs = s.CDF(1.5)
		}
	}
	if ws <= cs {
		t.Errorf("P(in_flight ≤ 1): ws %.2f should exceed cs %.2f", ws, cs)
	}
	if !strings.Contains(rendered, "Figure 11") {
		t.Error("render")
	}
}

func TestFigure12ContinuousLoss(t *testing.T) {
	fs, rendered := Figure12(testDatasets(t))
	// Only the two download services are plotted.
	if len(fs.Series) != 2 {
		t.Fatalf("series = %d", len(fs.Series))
	}
	for i, s := range fs.Series {
		for _, v := range s.Values() {
			if v < float64(core.DefaultConfig().SmallInFlight) {
				t.Errorf("%s: continuous-loss in-flight %v below threshold", fs.Names[i], v)
			}
		}
	}
	if !strings.Contains(rendered, "Figure 12") {
		t.Error("render")
	}
}

func TestFigure6InitRwnd(t *testing.T) {
	fs, rendered := Figure6(testDatasets(t))
	var sd, cs *int
	for i, s := range fs.Series {
		frac := s.CDF(11)
		switch fs.Names[i] {
		case "soft. down.":
			v := int(100 * frac)
			sd = &v
		case "cloud stor.":
			v := int(100 * frac)
			cs = &v
		}
	}
	if sd == nil || cs == nil {
		t.Fatal("missing series")
	}
	if *sd < 8 || *sd > 30 {
		t.Errorf("software-download small-window fraction = %d%%, want ≈18%%", *sd)
	}
	if *cs != 0 {
		t.Errorf("cloud-storage small-window fraction = %d%%, want 0", *cs)
	}
	if !strings.Contains(rendered, "Figure 6") {
		t.Error("render")
	}
}

func TestTable8Shapes(t *testing.T) {
	rows, rendered := Table8(777, 400, 400)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		tlp := row.Reduction[string(mitigation.KindTLP)]
		srto := row.Reduction[string(mitigation.KindSRTO)]
		// Neither mechanism may do harm on average (small noise
		// slack), and both should help or break even.
		if srto["mean"] > 0.03 {
			t.Errorf("%s: S-RTO mean change %+.1f%%, want no harm", row.Workload, 100*srto["mean"])
		}
		if tlp["mean"] > 0.03 {
			t.Errorf("%s: TLP mean change %+.1f%%, want no harm", row.Workload, 100*tlp["mean"])
		}
		// The two probes should land within a few percent of each
		// other on this delay-heavy workload; EXPERIMENTS.md explains
		// why the paper's larger S-RTO margin needs the RTO ≫ RTT
		// regime (see TestFloorRegimeSRTOWins).
		if srto["mean"] > tlp["mean"]+0.04 {
			t.Errorf("%s: S-RTO mean %+.1f%% far behind TLP %+.1f%%",
				row.Workload, 100*srto["mean"], 100*tlp["mean"])
		}
	}
	if !strings.Contains(rendered, "Table 8") {
		t.Error("render")
	}
}

// TestFloorRegimeSRTOWins pins the paper's headline ordering in the
// regime its deployment sat in (stable paths, floor-dominated RTO ≈
// several RTTs, real loss): S-RTO's mean reduction clearly exceeds
// TLP's, as in Table 8.
func TestFloorRegimeSRTOWins(t *testing.T) {
	rows, rendered := FloorRegimeComparison(777, 500)
	srto := rows[0].Reduction[string(mitigation.KindSRTO)]
	tlp := rows[0].Reduction[string(mitigation.KindTLP)]
	if srto["mean"] >= -0.02 {
		t.Errorf("S-RTO mean change %+.1f%%, want a clear reduction", 100*srto["mean"])
	}
	if srto["mean"] > tlp["mean"] {
		t.Errorf("S-RTO mean %+.1f%% should beat TLP %+.1f%% in the floor regime",
			100*srto["mean"], 100*tlp["mean"])
	}
	if !strings.Contains(rendered, "Floor-regime") {
		t.Error("render")
	}
}

func TestTable9RetransRatioOrdering(t *testing.T) {
	rows, rendered := Table9(777, 220, 160)
	for _, row := range rows {
		linux := row.RatioPct[string(mitigation.KindNative)]
		tlp := row.RatioPct[string(mitigation.KindTLP)]
		srto := row.RatioPct[string(mitigation.KindSRTO)]
		if linux <= 0 {
			t.Errorf("%s: zero native retransmissions", row.Service)
		}
		// Probing adds a modest amount of retransmissions
		// (Linux ≤ TLP ≤ S-RTO shape, with slack for noise: TLP can
		// even save retransmissions by preventing RTO slow-start
		// retransmission trains).
		if tlp < linux*0.75 {
			t.Errorf("%s: TLP ratio %.2f below native %.2f", row.Service, tlp, linux)
		}
		if srto < linux*0.9 {
			t.Errorf("%s: S-RTO ratio %.2f below native %.2f", row.Service, srto, linux)
		}
		if srto > linux*3 {
			t.Errorf("%s: S-RTO ratio %.2f unreasonably above native %.2f", row.Service, srto, linux)
		}
	}
	if !strings.Contains(rendered, "Table 9") {
		t.Error("render")
	}
}

func TestLargeFlowThroughputUnchanged(t *testing.T) {
	chg, txt := LargeFlowThroughput(777, 120)
	for k, v := range chg {
		if v < -0.25 || v > 0.6 {
			t.Errorf("%s: large-flow throughput change %+.1f%%, want near zero", k, 100*v)
		}
	}
	if !strings.Contains(txt, "Large-flow") {
		t.Error("render")
	}
}

func TestFigure2SeriesShape(t *testing.T) {
	res, _ := Figure2(99)
	if len(res.Series) < 100 {
		t.Fatalf("series has %d points", len(res.Series))
	}
	// First-transmission sequence numbers are nondecreasing; at least
	// one retransmission appears (the scripted blackouts).
	var prev uint64
	retrans := 0
	for _, p := range res.Series {
		if p.Retrans {
			retrans++
			continue
		}
		if p.Seq < prev {
			t.Fatalf("first-transmission seq went backwards: %d < %d", p.Seq, prev)
		}
		prev = p.Seq
	}
	if retrans == 0 {
		t.Error("no retransmissions in the Figure 2 series")
	}
	// The plot covers the whole 400KB transfer.
	if prev < 390_000 {
		t.Errorf("series tops out at %d bytes", prev)
	}
}
