package experiments

import (
	"tcpstall/internal/core"
	"tcpstall/internal/stats"
)

// FigureSeries bundles one named empirical distribution per service.
type FigureSeries struct {
	Names  []string
	Series []*stats.Sample
}

// add appends a named sample.
func (f *FigureSeries) add(name string, s *stats.Sample) {
	f.Names = append(f.Names, name)
	f.Series = append(f.Series, s)
}

func (f *FigureSeries) render(title, xLabel string, grid []float64) string {
	pts := make([][]stats.CDFPoint, len(f.Series))
	for i, s := range f.Series {
		pts[i] = s.CDFSeries(grid)
	}
	return stats.RenderCDFs(title, xLabel, f.Names, pts)
}

// Figure1 computes the per-flow RTT and RTO distributions (1a) and
// the RTO/RTT ratio (1b).
func Figure1(ds []*Dataset) (rtt, rto, ratio FigureSeries, rendered string) {
	for _, d := range ds {
		sRTT := stats.NewSample(len(d.Analyses))
		sRTO := stats.NewSample(len(d.Analyses))
		sRatio := stats.NewSample(len(d.Analyses))
		for _, a := range d.Analyses {
			r := a.AvgRTT()
			o := a.AvgRTO()
			if r > 0 {
				sRTT.Add(r)
			}
			if o > 0 {
				sRTO.Add(o)
				if r > 0 {
					sRatio.Add(o / r)
				}
			}
		}
		rtt.add(ShortName(d.Service.Name)+" RTT", sRTT)
		rto.add(ShortName(d.Service.Name)+" RTO", sRTO)
		ratio.add(ShortName(d.Service.Name), sRatio)
	}
	gridMS := stats.LogGrid(1, 10000, 16)
	gridRatio := stats.LogGrid(1, 100, 8)
	all := FigureSeries{
		Names:  append(append([]string{}, rtt.Names...), rto.Names...),
		Series: append(append([]*stats.Sample{}, rtt.Series...), rto.Series...),
	}
	rendered = all.render("Figure 1a: Per-flow RTT and RTO (CDF).", "ms", gridMS) +
		"\n" + ratio.render("Figure 1b: RTO / RTT (CDF).", "RTO/RTT", gridRatio)
	return rtt, rto, ratio, rendered
}

// Figure3 computes the CDF of stalled time over transmission time.
func Figure3(ds []*Dataset) (FigureSeries, string) {
	var fs FigureSeries
	for _, d := range ds {
		s := stats.NewSample(len(d.Analyses))
		for _, a := range d.Analyses {
			s.Add(a.StalledFraction())
		}
		fs.add(ShortName(d.Service.Name), s)
	}
	grid := stats.LinearGrid(0, 1, 20)
	return fs, fs.render("Figure 3: Ratio of stalled time to transmission time (CDF).", "stalled/total", grid)
}

// Figure6 computes the initial receive window distribution in MSS.
func Figure6(ds []*Dataset) (FigureSeries, string) {
	var fs FigureSeries
	for _, d := range ds {
		s := stats.NewSample(len(d.Analyses))
		for _, a := range d.Analyses {
			if a.InitRwnd > 0 {
				s.Add(float64(a.InitRwnd) / float64(d.Service.MSS))
			}
		}
		fs.add(ShortName(d.Service.Name), s)
	}
	grid := []float64{2, 5, 11, 22, 45, 182, 364, 648, 1297, 1456}
	return fs, fs.render("Figure 6: Initial receive windows (CDF).", "init rwnd (MSS)", grid)
}

// stallFilter selects stalls for the context figures.
type stallFilter func(st *core.Stall) bool

// contextCDFs extracts per-service position and in-flight samples for
// stalls matching the filter (Figures 7 and 10).
func contextCDFs(ds []*Dataset, keep stallFilter) (pos, inflight FigureSeries) {
	for _, d := range ds {
		sPos := stats.NewSample(64)
		sIF := stats.NewSample(64)
		for _, a := range d.Analyses {
			for i := range a.Stalls {
				st := &a.Stalls[i]
				if !keep(st) {
					continue
				}
				if st.Position >= 0 {
					sPos.Add(st.Position)
				}
				sIF.Add(float64(st.InFlight))
			}
		}
		pos.add(ShortName(d.Service.Name), sPos)
		inflight.add(ShortName(d.Service.Name), sIF)
	}
	return pos, inflight
}

// Figure7 computes the double-retransmission stall context: relative
// position (7a) and in-flight size (7b).
func Figure7(ds []*Dataset) (pos, inflight FigureSeries, rendered string) {
	pos, inflight = contextCDFs(ds, func(st *core.Stall) bool {
		return st.Cause == core.CauseTimeoutRetrans && st.RetransCause == core.RetransDouble
	})
	rendered = pos.render("Figure 7a: Relative position of double retransmission stalls (CDF).",
		"position", stats.LinearGrid(0, 1, 10)) + "\n" +
		inflight.render("Figure 7b: in_flight size at double retransmission stalls (CDF).",
			"#(in-flight)", stats.LinearGrid(0, 20, 20))
	return pos, inflight, rendered
}

// Figure10 computes the tail-retransmission stall context.
func Figure10(ds []*Dataset) (pos, inflight FigureSeries, rendered string) {
	pos, inflight = contextCDFs(ds, func(st *core.Stall) bool {
		return st.Cause == core.CauseTimeoutRetrans && st.RetransCause == core.RetransTail
	})
	rendered = pos.render("Figure 10a: Relative position of tail retransmission stalls (CDF).",
		"position", stats.LinearGrid(0, 1, 10)) + "\n" +
		inflight.render("Figure 10b: in_flight size at tail retransmission stalls (CDF).",
			"#(in-flight)", stats.LinearGrid(0, 10, 10))
	return pos, inflight, rendered
}

// Figure11 computes the distribution of Equation-1 in_flight
// evaluated on every ACK.
func Figure11(ds []*Dataset) (FigureSeries, string) {
	var fs FigureSeries
	for _, d := range ds {
		s := stats.NewSample(4096)
		for _, a := range d.Analyses {
			for _, v := range a.InFlightOnAck {
				s.Add(float64(v))
			}
		}
		fs.add(ShortName(d.Service.Name), s)
	}
	grid := stats.LogGrid(1, 100, 10)
	return fs, fs.render("Figure 11: in_flight size computed on each ACK (CDF).", "#(in-flight)", grid)
}

// Figure12 computes the in-flight distribution at continuous-loss
// stalls (outstanding packets, all lost).
func Figure12(ds []*Dataset) (FigureSeries, string) {
	var fs FigureSeries
	for _, d := range ds {
		if d.Service.Name == "web-search" {
			continue // as in the paper, too few events to plot
		}
		s := stats.NewSample(64)
		for _, a := range d.Analyses {
			for i := range a.Stalls {
				st := &a.Stalls[i]
				if st.Cause == core.CauseTimeoutRetrans && st.RetransCause == core.RetransContinuousLoss {
					s.Add(float64(st.PacketsOut))
				}
			}
		}
		fs.add(ShortName(d.Service.Name), s)
	}
	grid := stats.LinearGrid(0, 30, 15)
	return fs, fs.render("Figure 12: in-flight size when continuous loss stalls happen (CDF).", "#(in-flight)", grid)
}
