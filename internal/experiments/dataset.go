// Package experiments regenerates every table and figure of the
// paper's evaluation from the synthetic dataset: Table 1 (dataset
// statistics), Figures 1/3/6/7/10/11/12 (distributions), Tables 3–7
// (stall breakdowns) and Tables 8–9 (the S-RTO production A/B). Each
// experiment returns structured rows for tests plus a rendered
// paper-style table.
package experiments

import (
	"tcpstall/internal/core"
	"tcpstall/internal/pipeline"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// Options tunes dataset generation.
type Options struct {
	// Seed drives all randomness (default 20141222, the dataset's
	// first capture day).
	Seed int64
	// Scale multiplies each service's default flow count (default 1).
	Scale float64
	// FlowsOverride fixes the per-service flow count when > 0.
	FlowsOverride int
	// Workers bounds the simulation and analysis pools (<= 0:
	// one per CPU). The dataset is identical for every worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 20141222
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
}

// Dataset is one service's generated flows plus their TAPO analyses.
type Dataset struct {
	Service  workload.Service
	Results  []workload.FlowResult
	Analyses []*core.FlowAnalysis
	Report   *core.Report
}

// BuildDataset generates and analyzes one service on the parallel
// pipeline, using one worker per CPU.
func BuildDataset(svc workload.Service, seed int64, flows int) *Dataset {
	return buildDataset(svc, seed, flows, 0)
}

func buildDataset(svc workload.Service, seed int64, flows, workers int) *Dataset {
	res := workload.Generate(svc, seed, workload.GenOptions{Flows: flows, Workers: workers})
	ds := &Dataset{Service: svc, Results: res}
	pr, err := pipeline.Run(pipeline.FromResults(res), pipeline.Options{
		Workers: workers,
		Config:  core.DefaultConfig(),
	})
	if err != nil {
		// FromResults cannot fail; a non-nil error would be a pipeline
		// bug, and an empty dataset is the loudest downstream signal.
		return ds
	}
	ds.Analyses = pr.Analyses
	ds.Report = pr.Report
	return ds
}

// BuildAll generates the three services.
func BuildAll(opt Options) []*Dataset {
	opt.defaults()
	var out []*Dataset
	for i, svc := range workload.Services() {
		n := opt.FlowsOverride
		if n <= 0 {
			n = int(float64(svc.DefaultFlows) * opt.Scale)
			if n < 10 {
				n = 10
			}
		}
		out = append(out, buildDataset(svc, opt.Seed+int64(i)*7919, n, opt.Workers))
	}
	return out
}

// ShortName compresses service names for table headers, following the
// paper ("cloud stor.", "soft. down.", "web search").
func ShortName(s string) string {
	switch s {
	case "cloud-storage":
		return "cloud stor."
	case "software-download":
		return "soft. down."
	case "web-search":
		return "web search"
	default:
		return s
	}
}

// doneFlows filters to completed connections.
func (d *Dataset) doneFlows() []workload.FlowResult {
	out := make([]workload.FlowResult, 0, len(d.Results))
	for _, r := range d.Results {
		if r.Metrics.Done {
			out = append(out, r)
		}
	}
	return out
}

// analysisByID indexes analyses for joint flow/analysis walks.
func (d *Dataset) analysisByID() map[string]*core.FlowAnalysis {
	m := make(map[string]*core.FlowAnalysis, len(d.Analyses))
	for _, a := range d.Analyses {
		m[a.FlowID] = a
	}
	return m
}

// filterShort keeps flows under the paper's 200KB short-flow bound.
func filterShort(res []workload.FlowResult) []workload.FlowResult {
	var out []workload.FlowResult
	for _, r := range res {
		if r.Metrics.Done && r.Metrics.BytesServed < workload.ShortFlowLimit {
			out = append(out, r)
		}
	}
	return out
}

// flowOf is a small helper for tests.
func flowOf(r workload.FlowResult) *trace.Flow { return r.Flow }
