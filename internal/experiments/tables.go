package experiments

import (
	"fmt"

	"tcpstall/internal/core"
	"tcpstall/internal/stats"
	"tcpstall/internal/tcpsim"
)

// Table1Row reproduces one row of Table 1 (flow-level dataset
// statistics).
type Table1Row struct {
	Service  string
	Flows    int
	AvgSpeed float64 // bytes/second
	AvgSize  float64 // bytes
	LossPct  float64 // retransmitted packets / data packets
	AvgRTTms float64
	AvgRTOms float64
}

// Table1 computes the dataset statistics.
func Table1(ds []*Dataset) ([]Table1Row, string) {
	rows := make([]Table1Row, 0, len(ds))
	t := stats.NewTable("Table 1: Flow-level statistics of the dataset.",
		"service", "#flows", "avg.speed(B/s)", "avg.flow size", "pkt loss", "avg.RTT", "avg.RTO")
	for _, d := range ds {
		var speedSum, sizeSum, rttSum, rtoSum float64
		var rttN, rtoN, lossPkts, totPkts float64
		done := 0
		aix := d.analysisByID()
		for _, r := range d.doneFlows() {
			done++
			sizeSum += float64(r.Metrics.BytesServed)
			if lat := r.Metrics.FlowLatency(); lat > 0 {
				speedSum += float64(r.Metrics.BytesServed) / lat.Seconds()
			}
			a := aix[r.Flow.ID]
			if a == nil {
				continue
			}
			lossPkts += float64(a.RetransPackets)
			totPkts += float64(a.DataPackets + a.RetransPackets)
			if v := a.AvgRTT(); v > 0 {
				rttSum += v
				rttN++
			}
			if v := a.AvgRTO(); v > 0 {
				rtoSum += v
				rtoN++
			}
		}
		row := Table1Row{
			Service:  d.Service.Name,
			Flows:    done,
			AvgSize:  sizeSum / maxF(float64(done), 1),
			AvgSpeed: speedSum / maxF(float64(done), 1),
			LossPct:  100 * lossPkts / maxF(totPkts, 1),
			AvgRTTms: rttSum / maxF(rttN, 1),
			AvgRTOms: rtoSum / maxF(rtoN, 1),
		}
		rows = append(rows, row)
		t.AddRow(ShortName(row.Service),
			fmt.Sprintf("%d", row.Flows),
			fmt.Sprintf("%.0fK", row.AvgSpeed/1000),
			humanBytes(row.AvgSize),
			fmt.Sprintf("%.1f%%", row.LossPct),
			fmt.Sprintf("%.0fms", row.AvgRTTms),
			fmt.Sprintf("%.1fs", row.AvgRTOms/1000),
		)
	}
	return rows, t.String()
}

func humanBytes(b float64) string {
	switch {
	case b >= 1e6:
		return fmt.Sprintf("%.1fMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.0fKB", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Table3Cell is one (volume%, time%) pair of Table 3.
type Table3Cell struct{ CountPct, TimePct float64 }

// Table3Result maps service → cause → cell.
type Table3Result map[string]map[core.Cause]Table3Cell

// Table3 computes the stall-cause breakdown by volume and time.
func Table3(ds []*Dataset) (Table3Result, string) {
	causes := []core.Cause{
		core.CauseDataUnavailable, core.CauseResourceConstraint,
		core.CauseClientIdle, core.CauseZeroWindow,
		core.CausePacketDelay, core.CauseTimeoutRetrans,
		core.CauseUndetermined,
	}
	res := Table3Result{}
	header := []string{"category", "stall type"}
	for _, d := range ds {
		header = append(header, ShortName(d.Service.Name)+" #", "T")
	}
	t := stats.NewTable("Table 3: Percentage of stalls (%) in terms of volume (#) and time (T).", header...)
	for _, d := range ds {
		m := map[core.Cause]Table3Cell{}
		for _, c := range causes {
			m[c] = Table3Cell{
				CountPct: 100 * d.Report.CausePctCount(c),
				TimePct:  100 * d.Report.CausePctTime(c),
			}
		}
		res[d.Service.Name] = m
	}
	for _, c := range causes {
		row := []string{core.CategoryOf(c).String(), c.String()}
		for _, d := range ds {
			cell := res[d.Service.Name][c]
			row = append(row, fmt.Sprintf("%.1f", cell.CountPct), fmt.Sprintf("%.1f", cell.TimePct))
		}
		t.AddRow(row...)
	}
	return res, t.String()
}

// Table4Row is one init-rwnd bucket's zero-window probability.
type Table4Row struct {
	Service string
	InitMSS int
	Flows   int
	ZeroPct float64
}

// Table4Buckets are the paper's init-rwnd columns (MSS).
var Table4Buckets = []int{2, 11, 45, 182, 648, 1297}

// Table4 computes the probability of a flow suffering a zero receive
// window as a function of the SYN-advertised window.
func Table4(ds []*Dataset) ([]Table4Row, string) {
	var rows []Table4Row
	header := append([]string{"init rwnd (MSS)"}, func() []string {
		var h []string
		for _, b := range Table4Buckets {
			h = append(h, fmt.Sprintf("%d", b))
		}
		return h
	}()...)
	t := stats.NewTable("Table 4: Percentage of flows suffering from zero rwnd as a function of the initial rwnd (%).", header...)
	for _, d := range ds {
		if d.Service.Name == "web-search" {
			continue // the paper tabulates the two download services
		}
		aix := d.analysisByID()
		type agg struct{ flows, zero int }
		byBucket := map[int]*agg{}
		for _, r := range d.doneFlows() {
			a := aix[r.Flow.ID]
			if a == nil {
				continue
			}
			b := nearestBucket(a.InitRwnd / d.Service.MSS)
			if byBucket[b] == nil {
				byBucket[b] = &agg{}
			}
			byBucket[b].flows++
			if a.ZeroRwndSeen {
				byBucket[b].zero++
			}
		}
		row := []string{ShortName(d.Service.Name)}
		for _, b := range Table4Buckets {
			if ag := byBucket[b]; ag != nil && ag.flows > 0 {
				pct := 100 * float64(ag.zero) / float64(ag.flows)
				rows = append(rows, Table4Row{Service: d.Service.Name, InitMSS: b, Flows: ag.flows, ZeroPct: pct})
				row = append(row, fmt.Sprintf("%.1f", pct))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return rows, t.String()
}

// nearestBucket snaps an init-rwnd (in MSS) to the closest Table-4
// column.
func nearestBucket(mss int) int {
	best := Table4Buckets[0]
	bestD := abs(mss - best)
	for _, b := range Table4Buckets[1:] {
		if d := abs(mss - b); d < bestD {
			best, bestD = b, d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Table5Result maps service → retransmission sub-cause → cell.
type Table5Result map[string]map[core.RetransCause]Table3Cell

// Table5 computes the retransmission-stall breakdown.
func Table5(ds []*Dataset) (Table5Result, string) {
	causes := []core.RetransCause{
		core.RetransDouble, core.RetransTail,
		core.RetransSmallCwnd, core.RetransSmallRwnd,
		core.RetransContinuousLoss, core.RetransAckDelayLoss,
		core.RetransUndetermined,
	}
	res := Table5Result{}
	header := []string{"stall type"}
	for _, d := range ds {
		header = append(header, ShortName(d.Service.Name)+" #", "T")
	}
	t := stats.NewTable("Table 5: Percentage of retransmission stalls (%) in terms of volume (#) and time (T).", header...)
	for _, d := range ds {
		m := map[core.RetransCause]Table3Cell{}
		for _, c := range causes {
			m[c] = Table3Cell{
				CountPct: 100 * d.Report.RetransPctCount(c),
				TimePct:  100 * d.Report.RetransPctTime(c),
			}
		}
		res[d.Service.Name] = m
	}
	for _, c := range causes {
		row := []string{c.String()}
		for _, d := range ds {
			cell := res[d.Service.Name][c]
			row = append(row, fmt.Sprintf("%.1f", cell.CountPct), fmt.Sprintf("%.1f", cell.TimePct))
		}
		t.AddRow(row...)
	}
	return res, t.String()
}

// Table6Result maps service → f-double / t-double stall-time shares.
type Table6Result map[string]map[core.DoubleKind]float64

// Table6 computes the double-retransmission kind split.
func Table6(ds []*Dataset) (Table6Result, string) {
	res := Table6Result{}
	header := []string{"kind"}
	for _, d := range ds {
		header = append(header, ShortName(d.Service.Name))
	}
	t := stats.NewTable("Table 6: Percentage of each type of double retransmission stalls in terms of stalled time.", header...)
	for _, d := range ds {
		res[d.Service.Name] = map[core.DoubleKind]float64{
			core.DoubleFast:    100 * d.Report.DoublePctTime(core.DoubleFast),
			core.DoubleTimeout: 100 * d.Report.DoublePctTime(core.DoubleTimeout),
		}
	}
	for _, k := range []core.DoubleKind{core.DoubleFast, core.DoubleTimeout} {
		row := []string{k.String() + " stall"}
		for _, d := range ds {
			row = append(row, fmt.Sprintf("%.1f%%", res[d.Service.Name][k]))
		}
		t.AddRow(row...)
	}
	return res, t.String()
}

// Table7Result maps service → congestion state → tail-stall-time
// share.
type Table7Result map[string]map[tcpsim.CongState]float64

// Table7 computes where tail retransmission stalls happen.
func Table7(ds []*Dataset) (Table7Result, string) {
	res := Table7Result{}
	header := []string{"state"}
	for _, d := range ds {
		header = append(header, ShortName(d.Service.Name))
	}
	t := stats.NewTable("Table 7: Percentage of each type of tail retransmission stalls in terms of stalled time.", header...)
	for _, d := range ds {
		res[d.Service.Name] = map[tcpsim.CongState]float64{
			tcpsim.StateOpen:     100 * d.Report.TailPctTime(tcpsim.StateOpen),
			tcpsim.StateRecovery: 100 * d.Report.TailPctTime(tcpsim.StateRecovery),
		}
	}
	for _, st := range []tcpsim.CongState{tcpsim.StateOpen, tcpsim.StateRecovery} {
		row := []string{st.String() + " state"}
		for _, d := range ds {
			row = append(row, fmt.Sprintf("%.1f%%", res[d.Service.Name][st]))
		}
		t.AddRow(row...)
	}
	return res, t.String()
}
