package experiments

import (
	"fmt"
	"strings"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/netem"
	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// SeqPoint is one point of the Figure-2 sequence/time plot.
type SeqPoint struct {
	T time.Duration
	// Seq is the relative stream offset of an outgoing data segment,
	// unwrapped past 2^32 so a transfer crossing an ISN wrap still
	// plots monotonically.
	Seq uint64
	// Retrans marks retransmitted copies (plotted distinctly in the
	// paper's figure).
	Retrans bool
}

// Figure2Result is the illustrative single-flow stall timeline of
// Figure 2: a 400KB cloud-storage transfer stalled first by a zero
// receive window (~250ms), then by RTT variation (~300ms), then by
// timeout retransmissions exceeding a second, totalling >5s of stall
// across ~9s of transfer.
type Figure2Result struct {
	Analysis *core.FlowAnalysis
	Flow     *trace.Flow
	// Series is the sequence/time plot data (the figure's left
	// axis); RTTSamplesMS on the analysis carries the right axis.
	Series []SeqPoint
	// TotalTime and StalledTime summarize the run.
	TotalTime   time.Duration
	StalledTime time.Duration
}

// seqSeries extracts the outgoing-data sequence plot from a flow.
// Wire sequence numbers go through a seqspace.Unwrapper before any
// arithmetic: subtracting the base or keying the retransmission set on
// raw uint32 values would alias across a 2^32 wrap.
func seqSeries(fl *trace.Flow) []SeqPoint {
	var out []SeqPoint
	seen := map[uint64]bool{}
	var uw seqspace.Unwrapper
	var base uint64
	haveBase := false
	for i := range fl.Records {
		r := &fl.Records[i]
		if r.Dir != tcpsim.DirOut || r.Seg.Len == 0 {
			continue
		}
		off := uw.Unwrap(r.Seg.Seq)
		if !haveBase {
			base = off
			haveBase = true
		}
		out = append(out, SeqPoint{
			T:       time.Duration(r.T),
			Seq:     off - base,
			Retrans: seen[off],
		})
		seen[off] = true
	}
	return out
}

// Figure2 runs the scripted scenario and renders the stall timeline.
func Figure2(seed int64) (*Figure2Result, string) {
	s := sim.New()
	rng := sim.NewRNG(seed)
	// A modest client behind a ~70ms, 300KB/s path.
	down := netem.New(s, rng, netem.Config{
		Delay: 35 * time.Millisecond, Jitter: 4 * time.Millisecond,
		Bandwidth: 300_000, QueueLimit: 12,
	})
	up := netem.New(s, rng, netem.Config{Delay: 35 * time.Millisecond, FIFOEnforce: true})
	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: 400_000}},
	}
	cfg.Receiver.BufSize = 32 * 1024
	cfg.Receiver.ReadRate = 400_000
	col := trace.NewCollector("figure2", "cloud-storage")
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, col)
	conn.Start()

	// Scripted events, mirroring the narrative of Figure 2:
	// 1. the client app stops reading → zero receive window;
	s.Schedule(700*time.Millisecond, func() {
		conn.Receiver().PauseReading(1300 * time.Millisecond)
	})
	// 2. an RTT-variation episode delays the ACK stream;
	s.Schedule(2600*time.Millisecond, func() {
		up.SetDelay(265 * time.Millisecond)
		s.Schedule(100*time.Millisecond, func() { up.SetDelay(35 * time.Millisecond) })
	})
	// 3. loss bursts force timeout retransmissions, including a
	//    double retransmission with RTO backoff.
	blackout := func(at, dur time.Duration) {
		s.Schedule(at, func() {
			down.SetLoss(netem.Bernoulli{P: 1})
			s.Schedule(dur, func() { down.SetLoss(nil) })
		})
	}
	blackout(2900*time.Millisecond, 500*time.Millisecond)
	blackout(4100*time.Millisecond, 900*time.Millisecond)

	s.RunUntil(sim.Time(60 * time.Second))
	col.Flow.Done = conn.Metrics().Done
	a := core.Analyze(col.Flow, core.DefaultConfig())

	res := &Figure2Result{
		Analysis:    a,
		Flow:        col.Flow,
		Series:      seqSeries(col.Flow),
		TotalTime:   a.TransmissionTime,
		StalledTime: a.TotalStallTime,
	}

	var b strings.Builder
	b.WriteString("Figure 2: Illustrative example of TCP stalls within a flow (400KB transfer).\n")
	fmt.Fprintf(&b, "total transfer time %.1fs, stalled %.1fs (%.0f%%)\n",
		res.TotalTime.Seconds(), res.StalledTime.Seconds(), 100*a.StalledFraction())
	b.WriteString("start      end        dur      cause\n")
	b.WriteString("--------------------------------------------------\n")
	for _, st := range a.Stalls {
		cause := st.Cause.String()
		if st.Cause == core.CauseTimeoutRetrans {
			cause += "/" + st.RetransCause.String()
		}
		fmt.Fprintf(&b, "%8.2fs %8.2fs %7.0fms  %s\n",
			st.Start.Seconds(), st.End.Seconds(),
			float64(st.Duration)/float64(time.Millisecond), cause)
	}
	// The sequence/time plot, decimated to ~40 rows for the console.
	b.WriteString("sequence/time series (• = first transmission, R = retransmission):\n")
	step := len(res.Series)/40 + 1
	for i := 0; i < len(res.Series); i += step {
		p := res.Series[i]
		mark := "•"
		if p.Retrans {
			mark = "R"
		}
		fmt.Fprintf(&b, "%8.2fs %8.1fKB %s\n", p.T.Seconds(), float64(p.Seq)/1000, mark)
	}
	return res, b.String()
}
