package experiments

import (
	"fmt"
	"strings"

	"tcpstall/internal/core"
	"tcpstall/internal/groundtruth"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// ValidationRow is one service's differential-validation outcome:
// TAPO's stall classifications graded against simulator ground truth
// (the repo's analogue of the paper's §3.4 kernel-instrumented
// check, which reported ~97% accuracy).
type ValidationRow struct {
	Service  string
	Flows    int
	Stalls   int
	Agree    int
	Accuracy float64 // in [0, 1]
}

// ValidationTable regenerates the three services with ground-truth
// recording (and random ISNs, the generator default), replays TAPO
// over each wire trace, and reports per-service and aggregate
// classification agreement plus the pooled confusion matrix.
func ValidationTable(opt Options) ([]ValidationRow, string) {
	opt.defaults()
	t := stats.NewTable("Validation: TAPO vs. simulator ground truth (paper §3.4).",
		"service", "#flows", "#stalls", "agree", "accuracy")
	rows := make([]ValidationRow, 0, 4)
	agg := groundtruth.NewReport()
	for i, svc := range workload.Services() {
		n := opt.FlowsOverride
		if n <= 0 {
			n = int(float64(svc.DefaultFlows) * opt.Scale)
			if n < 10 {
				n = 10
			}
		}
		res := workload.Generate(svc, opt.Seed+int64(i)*7919, workload.GenOptions{
			Flows: n, Workers: opt.Workers, WithTruth: true,
		})
		flows := make([]*trace.Flow, len(res))
		truths := make([]*groundtruth.FlowTruth, len(res))
		for j, r := range res {
			flows[j] = r.Flow
			truths[j] = r.Truth
		}
		rep := groundtruth.Validate(flows, truths, core.DefaultConfig())
		agg.Merge(rep)
		row := ValidationRow{
			Service:  svc.Name,
			Flows:    rep.Flows,
			Stalls:   rep.Stalls,
			Agree:    rep.Agree,
			Accuracy: rep.Accuracy(),
		}
		rows = append(rows, row)
		t.AddRow(ShortName(row.Service),
			fmt.Sprintf("%d", row.Flows),
			fmt.Sprintf("%d", row.Stalls),
			fmt.Sprintf("%d", row.Agree),
			fmt.Sprintf("%.2f%%", 100*row.Accuracy),
		)
	}
	rows = append(rows, ValidationRow{
		Service:  "all",
		Flows:    agg.Flows,
		Stalls:   agg.Stalls,
		Agree:    agg.Agree,
		Accuracy: agg.Accuracy(),
	})
	t.AddRow("all",
		fmt.Sprintf("%d", agg.Flows),
		fmt.Sprintf("%d", agg.Stalls),
		fmt.Sprintf("%d", agg.Agree),
		fmt.Sprintf("%.2f%%", 100*agg.Accuracy()),
	)
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteByte('\n')
	b.WriteString(agg.String())
	return rows, b.String()
}
