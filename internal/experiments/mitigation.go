package experiments

import (
	"fmt"
	"time"

	"tcpstall/internal/mitigation"
	"tcpstall/internal/stats"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/workload"
)

// ABResult holds one workload generated under the three recovery
// strategies with identical seeds — the reproduction of the paper's
// round-robin production deployment.
type ABResult struct {
	Workload string
	// ByStrategy maps strategy name → flow results.
	ByStrategy map[string][]workload.FlowResult
}

// Strategies lists the Table-8/9 contenders in paper order.
var Strategies = []mitigation.Kind{mitigation.KindNative, mitigation.KindTLP, mitigation.KindSRTO}

// srtoConfigFor returns the deployed S-RTO parameters: T1 = 5 for web
// search, 10 for cloud storage (Section 5.1), T2 = 5.
func srtoConfigFor(service string) mitigation.SRTOConfig {
	t1 := 10
	if service == "web-search" {
		t1 = 5
	}
	return mitigation.SRTOConfig{T1: t1, T2: 5}
}

// newStrategy builds a fresh per-connection strategy instance.
func newStrategy(kind mitigation.Kind, service string) func() tcpsim.Recovery {
	switch kind {
	case mitigation.KindSRTO:
		cfg := srtoConfigFor(service)
		return func() tcpsim.Recovery { return mitigation.NewSRTO(cfg) }
	case mitigation.KindTLP:
		return func() tcpsim.Recovery { return mitigation.NewTLP(mitigation.TLPConfig{}) }
	default:
		return func() tcpsim.Recovery { return tcpsim.NativeRecovery{} }
	}
}

// RunAB generates the service under each strategy with the same seed.
// Traces are skipped for speed; the latency/retransmission metrics
// carry everything Tables 8 and 9 need.
func RunAB(svc workload.Service, seed int64, flows int) *ABResult {
	res := &ABResult{Workload: svc.Name, ByStrategy: map[string][]workload.FlowResult{}}
	for _, kind := range Strategies {
		res.ByStrategy[string(kind)] = workload.Generate(svc, seed, workload.GenOptions{
			Flows:       flows,
			SkipTraces:  true,
			NewRecovery: newStrategy(kind, svc.Name),
		})
	}
	return res
}

// latencySample extracts completed-flow latencies in milliseconds,
// optionally keeping only short flows.
func latencySample(res []workload.FlowResult, shortOnly bool) *stats.Sample {
	s := stats.NewSample(len(res))
	for _, r := range res {
		if !r.Metrics.Done {
			continue
		}
		if shortOnly && r.Metrics.BytesServed >= workload.ShortFlowLimit {
			continue
		}
		s.Add(float64(r.Metrics.FlowLatency().Milliseconds()))
	}
	return s
}

// Table8Row is one workload's latency-reduction comparison.
type Table8Row struct {
	Workload string
	// Reduction maps strategy → metric → relative latency change vs
	// native (negative = faster). Metrics: "p50", "p90", "p95",
	// "mean".
	Reduction map[string]map[string]float64
	// Flows counts the evaluated flows per strategy.
	Flows map[string]int
}

var table8Metrics = []string{"p50", "p90", "p95", "mean"}

func metricsOf(s *stats.Sample) map[string]float64 {
	return map[string]float64{
		"p50":  s.Quantile(0.50),
		"p90":  s.Quantile(0.90),
		"p95":  s.Quantile(0.95),
		"mean": s.Mean(),
	}
}

// Table8 reproduces the latency-reduction comparison: web search
// (all flows are short) and cloud-storage short flows, TLP and S-RTO
// relative to native Linux.
func Table8(seed int64, wsFlows, csFlows int) ([]Table8Row, string) {
	type job struct {
		svc       workload.Service
		flows     int
		shortOnly bool
		label     string
	}
	jobs := []job{
		{workload.WebSearch(), wsFlows, false, "web search"},
		{workload.CloudStorageShort(), csFlows, true, "cloud s. (short flows)"},
	}
	var rows []Table8Row
	t := stats.NewTable("Table 8: Comparison of latency reduction between TLP and S-RTO (vs native Linux).",
		"quantile", "web search TLP", "S-RTO", "cloud s. TLP", "S-RTO")
	cells := map[string]map[string]map[string]float64{} // label → strategy → metric
	for _, j := range jobs {
		ab := RunAB(j.svc, seed, j.flows)
		base := metricsOf(latencySample(ab.ByStrategy[string(mitigation.KindNative)], j.shortOnly))
		row := Table8Row{
			Workload:  j.label,
			Reduction: map[string]map[string]float64{},
			Flows:     map[string]int{},
		}
		for _, kind := range Strategies[1:] {
			s := latencySample(ab.ByStrategy[string(kind)], j.shortOnly)
			m := metricsOf(s)
			red := map[string]float64{}
			for _, k := range table8Metrics {
				if base[k] > 0 {
					red[k] = (m[k] - base[k]) / base[k]
				}
			}
			row.Reduction[string(kind)] = red
			row.Flows[string(kind)] = s.Len()
		}
		rows = append(rows, row)
		cells[j.label] = row.Reduction
	}
	for _, metric := range table8Metrics {
		t.AddRow(metric,
			pct(cells["web search"]["tlp"][metric]),
			pct(cells["web search"]["srto"][metric]),
			pct(cells["cloud s. (short flows)"]["tlp"][metric]),
			pct(cells["cloud s. (short flows)"]["srto"][metric]),
		)
	}
	return rows, t.String()
}

func pct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*v) }

// Table9Row is one service's retransmission packet ratio per
// strategy.
type Table9Row struct {
	Service string
	// RatioPct maps strategy → retransmitted packets / all data
	// packets, in percent.
	RatioPct map[string]float64
}

// Table9 reproduces the retransmission packet ratio comparison.
func Table9(seed int64, wsFlows, csFlows int) ([]Table9Row, string) {
	jobs := []struct {
		svc   workload.Service
		flows int
	}{
		{workload.WebSearch(), wsFlows},
		{workload.CloudStorage(), csFlows},
	}
	var rows []Table9Row
	t := stats.NewTable("Table 9: Retransmission packet ratio.",
		"service", "Linux", "TLP", "S-RTO")
	for _, j := range jobs {
		ab := RunAB(j.svc, seed+1, j.flows)
		row := Table9Row{Service: j.svc.Name, RatioPct: map[string]float64{}}
		cells := []string{ShortName(j.svc.Name)}
		for _, kind := range Strategies {
			var retrans, total float64
			for _, r := range ab.ByStrategy[string(kind)] {
				retrans += float64(r.Metrics.Sender.Retransmissions)
				total += float64(r.Metrics.Sender.DataSegmentsSent)
			}
			ratio := 100 * retrans / maxF(total, 1)
			row.RatioPct[string(kind)] = ratio
			cells = append(cells, fmt.Sprintf("%.1f%%", ratio))
		}
		rows = append(rows, row)
		t.AddRow(cells...)
	}
	return rows, t.String()
}

// FloorRegimeComparison isolates the network regime the paper's
// deployment sat in: short, floor-dominated RTOs. For a 40ms-RTT path
// the Linux RTO is pinned near SRTT + 200ms ≈ 6×RTT, so converting a
// timeout into a 2·RTT probe saves several RTTs per loss event while
// a spurious probe costs about one. Here S-RTO's advantage over TLP
// is structural (it also fires in Disorder/Recovery, catching
// f-double stalls), reproducing the shape of the paper's Table 8.
func FloorRegimeComparison(seed int64, flows int) ([]Table8Row, string) {
	svc := workload.CloudStorageShort()
	// A stable metro path: low base RTT, no wireless jitter, no
	// delay spikes — the Linux RTO is pinned at SRTT + 200ms, several
	// RTTs above the path RTT. Small control responses keep
	// packets_out under the deployed T1 so the probe can arm, and
	// bursty loss supplies the tail/double events S-RTO converts.
	svc.RTTMean = 40 * time.Millisecond
	svc.RTTSigma = 0.3
	svc.WirelessProb = 0
	svc.SpikeEvery = 0
	svc.JitterFrac = 0.1
	svc.RespSizeMean = 8_000
	svc.RespSizeSigma = 0.6
	svc.BurstEvery = 2500 * time.Millisecond
	svc.BurstDur = 400 * time.Millisecond
	svc.BurstLossP = 0.6
	svc.LossGB = 0.018

	ab := &ABResult{Workload: "floor-regime", ByStrategy: map[string][]workload.FlowResult{}}
	for _, kind := range Strategies {
		ab.ByStrategy[string(kind)] = workload.Generate(svc, seed, workload.GenOptions{
			Flows:       flows,
			SkipTraces:  true,
			NewRecovery: newStrategy(kind, svc.Name),
		})
	}
	base := metricsOf(latencySample(ab.ByStrategy[string(mitigation.KindNative)], true))
	row := Table8Row{
		Workload:  "floor-regime short flows",
		Reduction: map[string]map[string]float64{},
		Flows:     map[string]int{},
	}
	t := stats.NewTable("Floor-regime A/B (40ms RTT, RTO ≈ 6×RTT): latency change vs native.",
		"quantile", "TLP", "S-RTO")
	for _, kind := range Strategies[1:] {
		s := latencySample(ab.ByStrategy[string(kind)], true)
		m := metricsOf(s)
		red := map[string]float64{}
		for _, k := range table8Metrics {
			if base[k] > 0 {
				red[k] = (m[k] - base[k]) / base[k]
			}
		}
		row.Reduction[string(kind)] = red
		row.Flows[string(kind)] = s.Len()
	}
	for _, metric := range table8Metrics {
		t.AddRow(metric,
			pct(row.Reduction[string(mitigation.KindTLP)][metric]),
			pct(row.Reduction[string(mitigation.KindSRTO)][metric]))
	}
	return []Table8Row{row}, t.String()
}

// LargeFlowThroughput reproduces the Section-5.2 side observation:
// neither mechanism moves large-flow throughput much. It returns the
// mean throughput change vs native for flows ≥ 200KB.
func LargeFlowThroughput(seed int64, flows int) (map[string]float64, string) {
	ab := RunAB(workload.CloudStorage(), seed+2, flows)
	tput := func(res []workload.FlowResult) float64 {
		var sum float64
		var n int
		for _, r := range res {
			if !r.Metrics.Done || r.Metrics.BytesServed < workload.ShortFlowLimit {
				continue
			}
			if lat := r.Metrics.FlowLatency(); lat > 0 {
				sum += float64(r.Metrics.BytesServed) / lat.Seconds()
				n++
			}
		}
		return sum / maxF(float64(n), 1)
	}
	base := tput(ab.ByStrategy[string(mitigation.KindNative)])
	out := map[string]float64{}
	txt := "Large-flow (≥200KB) mean throughput change vs native:"
	for _, kind := range Strategies[1:] {
		chg := (tput(ab.ByStrategy[string(kind)]) - base) / base
		out[string(kind)] = chg
		txt += fmt.Sprintf(" %s %+.1f%%", kind, 100*chg)
	}
	return out, txt + "\n"
}
