// Package core implements TAPO, the paper's TCP performance
// diagnosis tool: it replays a server-side packet trace through a
// mimic of the Linux TCP stack to reconstruct the Table-2 variables
// (congestion state, in_flight, sacked_out/lost_out/retrans_out,
// SRTT/RTO, rwnd, file position), detects stalls — inter-packet gaps
// exceeding min(τ·SRTT, RTO) — and classifies each stall's root cause
// with the decision tree of Figure 5, breaking timeout-retransmission
// stalls down further per Table 5.
package core

import (
	"time"

	"tcpstall/internal/flight"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// Cause is a top-level stall cause (Figure 5 / Table 3).
type Cause int

// Top-level causes, grouped as the paper groups them: server, client,
// network.
const (
	CauseUndetermined Cause = iota
	// Server-side.
	CauseDataUnavailable    // head-of-response wait on the back end
	CauseResourceConstraint // mid-response server app stall
	// Client-side.
	CauseClientIdle // no request outstanding, client thinking
	CauseZeroWindow // client advertised rwnd = 0
	// Network.
	CausePacketDelay    // delayed packets/ACKs without retransmission
	CauseTimeoutRetrans // stall ended by a timeout retransmission
)

var causeNames = map[Cause]string{
	CauseUndetermined:       "undetermined",
	CauseDataUnavailable:    "data-unavailable",
	CauseResourceConstraint: "resource-constraint",
	CauseClientIdle:         "client-idle",
	CauseZeroWindow:         "zero-rwnd",
	CausePacketDelay:        "pkt-delay",
	CauseTimeoutRetrans:     "retransmission",
}

func (c Cause) String() string { return causeNames[c] }

// Category buckets a cause as in Table 3.
type Category int

// Categories of Table 3.
const (
	CategoryServer Category = iota
	CategoryClient
	CategoryNetwork
	CategoryUnknown
)

func (c Category) String() string {
	switch c {
	case CategoryServer:
		return "server"
	case CategoryClient:
		return "client"
	case CategoryNetwork:
		return "network"
	default:
		return "unknown"
	}
}

// CategoryOf maps causes to Table-3 categories.
func CategoryOf(c Cause) Category {
	switch c {
	case CauseDataUnavailable, CauseResourceConstraint:
		return CategoryServer
	case CauseClientIdle, CauseZeroWindow:
		return CategoryClient
	case CausePacketDelay, CauseTimeoutRetrans:
		return CategoryNetwork
	default:
		return CategoryUnknown
	}
}

// RetransCause is a timeout-retransmission sub-cause (Table 5). The
// declaration order IS the paper's examination precedence.
type RetransCause int

// Sub-causes in Table-5 precedence order.
const (
	RetransNone RetransCause = iota
	RetransDouble
	RetransTail
	RetransSmallCwnd
	RetransSmallRwnd
	RetransContinuousLoss
	RetransAckDelayLoss
	RetransUndetermined
)

var retransNames = map[RetransCause]string{
	RetransNone:           "none",
	RetransDouble:         "double-retrans",
	RetransTail:           "tail-retrans",
	RetransSmallCwnd:      "small-cwnd",
	RetransSmallRwnd:      "small-rwnd",
	RetransContinuousLoss: "continuous-loss",
	RetransAckDelayLoss:   "ack-delay-loss",
	RetransUndetermined:   "undetermined",
}

func (c RetransCause) String() string { return retransNames[c] }

// DoubleKind splits double-retransmission stalls (Table 6) by how the
// FIRST retransmission was recovered.
type DoubleKind int

// Kinds of double retransmission.
const (
	DoubleNone    DoubleKind = iota
	DoubleFast               // f-double: first retransmission was a fast retransmit
	DoubleTimeout            // t-double: first retransmission was itself a timeout
)

func (k DoubleKind) String() string {
	switch k {
	case DoubleFast:
		return "f-double"
	case DoubleTimeout:
		return "t-double"
	default:
		return "none"
	}
}

// Stall is one detected-and-classified stall event.
type Stall struct {
	// ID is the stall's flow-scoped monotonic identifier (0-based, in
	// detection order). Live stall events, the admin planes,
	// groundtruth grading and flight-recorder evidence all key on it.
	ID int
	// Start/End bound the silent gap; Duration = End − Start.
	Start    sim.Time
	End      sim.Time
	Duration time.Duration
	// EndRecIdx indexes the record ending the stall (cur_pkt).
	EndRecIdx int

	// Evidence, when a flight recorder was attached, names the
	// recorder entry holding this stall's decision path and record
	// window; nil in disabled mode.
	Evidence *flight.Ref

	Cause        Cause
	RetransCause RetransCause
	DoubleKind   DoubleKind

	// Context captured at stall start (after processing the last
	// pre-stall record).
	CaState    tcpsim.CongState
	InFlight   int // Equation 1
	PacketsOut int
	Rwnd       int
	CwndEst    int

	// Position is the retransmitted packet's ordinal divided by the
	// flow's distinct data packet count (Figures 7a/10a); −1 when not
	// a retransmission stall.
	Position float64
	// TailState is the congestion state for tail stalls (Table 7).
	TailState tcpsim.CongState
}

// FlowAnalysis is TAPO's per-flow output.
type FlowAnalysis struct {
	FlowID  string
	Service string

	Stalls []Stall
	// TotalStallTime sums stall durations; TransmissionTime is the
	// flow's first-to-last-record span.
	TotalStallTime   time.Duration
	TransmissionTime time.Duration

	// RTTSamplesMS holds one sample per non-retransmitted segment;
	// RTOSamplesMS one per timeout retransmission (Figure 1).
	RTTSamplesMS []float64
	RTOSamplesMS []float64

	// InFlightOnAck records Equation-1 in_flight evaluated on every
	// incoming ACK (Figure 11).
	InFlightOnAck []int

	// InitRwnd is the SYN-advertised window; ZeroRwndSeen reports
	// whether any incoming segment advertised zero (Table 4).
	InitRwnd     int
	ZeroRwndSeen bool

	// DataPackets counts distinct data segments; DataBytes the
	// stream span.
	DataPackets int
	DataBytes   int64
	// RetransPackets counts retransmitted copies (Table 9).
	RetransPackets int
}

// StalledFraction reports stall time over transmission time (Fig 3).
func (a *FlowAnalysis) StalledFraction() float64 {
	if a.TransmissionTime <= 0 {
		return 0
	}
	f := float64(a.TotalStallTime) / float64(a.TransmissionTime)
	if f > 1 {
		f = 1
	}
	return f
}

// AvgRTT reports the mean RTT sample in milliseconds.
func (a *FlowAnalysis) AvgRTT() float64 { return mean(a.RTTSamplesMS) }

// AvgRTO reports the mean RTO sample in milliseconds.
func (a *FlowAnalysis) AvgRTO() float64 { return mean(a.RTOSamplesMS) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
