package core

import (
	"sort"

	"tcpstall/internal/flight"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// finalize resolves response boundaries, classifies every pending
// stall with the Figure-5 tree and Table-5 precedence, and fills the
// flow-level aggregates. With a flight recorder attached, each
// stall's settled decision path replaces the provisional one captured
// at close time.
func (a *analyzer) finalize() {
	a.out.DataBytes = int64(a.maxEnd - a.base)
	if !a.haveBase {
		a.out.DataBytes = 0
	}
	sort.Slice(a.respBounds, func(i, j int) bool { return a.respBounds[i] < a.respBounds[j] })

	total := a.out.DataPackets
	if total < 1 {
		total = 1
	}
	for i := range a.pending {
		ps := &a.pending[i]
		st := &ps.stall
		var tr *flight.Trail
		if a.rec != nil {
			tr = &flight.Trail{}
		}
		st.Cause = a.topCause(ps, tr)
		if st.Cause == CauseTimeoutRetrans {
			st.RetransCause, st.DoubleKind, st.TailState = a.retransCause(ps, tr)
			st.Position = float64(a.segs[ps.retransSegIdx].ordinal) / float64(total)
		}
		if a.rec != nil {
			sub, dk := "", ""
			if st.Cause == CauseTimeoutRetrans {
				sub = st.RetransCause.String()
				if st.DoubleKind != DoubleNone {
					dk = st.DoubleKind.String()
				}
			}
			a.rec.Finalize(st.ID, st.Cause.String(), sub, dk, tr)
		}
		a.out.Stalls = append(a.out.Stalls, *st)
		a.out.TotalStallTime += st.Duration
	}
}

// respRange locates the response containing unwrapped stream offset
// seq and returns its [start, end) bounds. The end of the last
// response is the flow's final snd_nxt.
func (a *analyzer) respRange(seq uint64) (start, end uint64) {
	start = a.base
	end = a.maxEnd
	for _, b := range a.respBounds {
		if b <= seq && b >= start {
			start = b
		}
		if b > seq {
			end = b
			break
		}
	}
	return start, end
}

// isRespHead reports whether unwrapped offset seq starts a response.
func (a *analyzer) isRespHead(seq uint64) bool {
	for _, b := range a.respBounds {
		if b == seq {
			return true
		}
	}
	return seq == a.base
}

// topCause walks the Figure-5 tree for one stall, reading the
// stall-ending record from the facts captured when the stall closed.
// A non-nil trail records every branch test with the concrete values
// that decided it; classification is identical either way.
func (a *analyzer) topCause(ps *pendingStall, tr *flight.Trail) Cause {
	// Receive-window branch: a closed window at stall start explains
	// the silence regardless of what reopens it (window update or
	// zero-window probe).
	if tr.Check("rwnd == 0 when the silence began (receiver closed the window)",
		ps.stall.Rwnd == 0 && ps.haveBaseAtEnd,
		flight.V("rwnd", ps.stall.Rwnd), flight.V("data_seen", ps.haveBaseAtEnd)) {
		return CauseZeroWindow
	}

	if tr.Check("cur_pkt is outgoing data (server sent after the silence)",
		ps.endDir == tcpsim.DirOut && ps.endLen > 0,
		flight.V("dir", ps.endDir.String()), flight.V("len", ps.endLen),
		flight.V("end_rec", ps.stall.EndRecIdx)) {
		if tr.Check("cur_pkt retransmits a sent, unacked segment",
			ps.retransSegIdx >= 0,
			flight.V("offset", a.rel(ps.endOff)), flight.V("copies_before", ps.copiesBefore)) {
			return CauseTimeoutRetrans
		}
		// New data after silence: the transport was willing but had
		// nothing to send — server-side cause, split by position.
		if tr.Check("cur_pkt starts a response (head-of-response wait)",
			a.isRespHead(ps.endOff),
			flight.V("offset", a.rel(ps.endOff)), flight.V("responses", len(a.respBounds))) {
			return CauseDataUnavailable
		}
		if tr.Check("no data was outstanding when the silence began",
			ps.outstandingAtStart == 0,
			flight.V("packets_out", ps.outstandingAtStart)) {
			return CauseResourceConstraint
		}
		// New data while old data was outstanding: the window opened
		// after a delayed ACK run — network delay.
		tr.Note("new data with old data outstanding: the window opened late (delayed ACKs)")
		return CausePacketDelay
	}

	if tr.Check("cur_pkt is incoming (client broke the silence)",
		ps.endDir == tcpsim.DirIn, flight.V("dir", ps.endDir.String())) {
		if tr.Check("cur_pkt carries a client request",
			ps.endLen > 0, flight.V("len", ps.endLen)) {
			// A client request ends the stall.
			if tr.Check("no response data was outstanding (client was thinking)",
				ps.outstandingAtStart == 0,
				flight.V("packets_out", ps.outstandingAtStart)) {
				return CauseClientIdle
			}
			return CausePacketDelay
		}
		// Pure ACK ends the stall.
		if tr.Check("a pure ACK ended the stall with data outstanding (delayed ACK/packet)",
			ps.outstandingAtStart > 0,
			flight.V("packets_out", ps.outstandingAtStart)) {
			return CausePacketDelay
		}
		return CauseUndetermined
	}

	return CauseUndetermined
}

// retransCause applies the Table-5 precedence to a
// timeout-retransmission stall, optionally recording each examined
// rule into the trail.
func (a *analyzer) retransCause(ps *pendingStall, tr *flight.Trail) (RetransCause, DoubleKind, tcpsim.CongState) {
	g := &a.segs[ps.retransSegIdx]

	// 1. Double retransmission: the packet had been retransmitted
	// before this stall-ending retransmission.
	if tr.Check("T5.1 double: segment was already retransmitted before this stall",
		ps.copiesBefore >= 2,
		flight.V("copies_before", ps.copiesBefore), flight.V("seg_ordinal", g.ordinal),
		flight.V("first_retrans_by_timeout", ps.firstRetransTimeout)) {
		kind := DoubleFast
		if ps.firstRetransTimeout {
			kind = DoubleTimeout
		}
		return RetransDouble, kind, 0
	}

	// 2. Tail retransmission: every byte of the response was already
	// sent and too few segments sit above the loss to produce
	// dupthres dupacks.
	_, respEnd := a.respRange(g.seq)
	allSent := ps.maxEndAtStall >= respEnd
	if tr.Check("T5.2 tail: response fully sent and too few segments above the loss",
		allSent && ps.segsAboveOutstanding < a.cfg.DupThresh,
		flight.V("all_sent", allSent), flight.V("snd_nxt", a.rel(ps.maxEndAtStall)),
		flight.V("resp_end", a.rel(respEnd)),
		flight.V("segs_above", ps.segsAboveOutstanding), flight.V("dupthresh", a.cfg.DupThresh)) {
		tailState := ps.stall.CaState
		switch tailState {
		case tcpsim.StateDisorder:
			tailState = tcpsim.StateOpen
		case tcpsim.StateLoss:
			tailState = tcpsim.StateRecovery
		}
		return RetransTail, 0, tailState
	}

	// 3. ACK delay/loss: the retransmission turns out spurious — a
	// DSACK for it arrives shortly after the stall, meaning the data
	// was never lost (Figure 5's "spurious" branch). This must
	// precede the small-window tests: a spurious retransmission
	// almost always happens at small in-flight and would otherwise
	// be swallowed by them.
	spurious := false
	var spuriousAt sim.Time
	for _, t := range g.spuriousAt {
		if t > ps.stall.End && t.Sub(ps.stall.End) <= a.cfg.DSACKHorizon {
			spurious = true
			spuriousAt = t
			break
		}
	}
	if tr.Check("T5.3 spurious: a DSACK covered the retransmission within the horizon",
		spurious,
		flight.V("dsacks_for_seg", len(g.spuriousAt)), flight.V("dsack_at", spuriousAt),
		flight.V("horizon", a.cfg.DSACKHorizon)) {
		return RetransAckDelayLoss, 0, 0
	}

	// 4/5. Small in-flight: fast retransmit starved of dupacks.
	if tr.Check("T5.4 small window: in_flight below the 4-segment boundary",
		ps.stall.InFlight < a.cfg.SmallInFlight,
		flight.V("in_flight", ps.stall.InFlight), flight.V("boundary", a.cfg.SmallInFlight)) {
		limit := a.cfg.SmallInFlight * a.mss
		if tr.Check("T5.5 rwnd-limited: rwnd under 4 MSS and at or below cwnd",
			ps.stall.Rwnd > 0 && ps.stall.Rwnd < limit && ps.stall.Rwnd <= ps.stall.CwndEst*a.mss,
			flight.V("rwnd", ps.stall.Rwnd), flight.V("limit", limit),
			flight.V("cwnd_bytes", ps.stall.CwndEst*a.mss)) {
			return RetransSmallRwnd, 0, 0
		}
		return RetransSmallCwnd, 0, 0
	}

	// 6. Continuous loss: a full window (≥ SmallInFlight segments)
	// outstanding with zero SACK/dupack feedback.
	if tr.Check("T5.6 continuous loss: full window outstanding, zero SACK/dupack feedback",
		ps.outstandingAtStart >= a.cfg.SmallInFlight &&
			ps.sackedOutAtStart == 0 && ps.dupacksAtStart == 0,
		flight.V("packets_out", ps.outstandingAtStart),
		flight.V("sacked_out", ps.sackedOutAtStart), flight.V("dupacks", ps.dupacksAtStart)) {
		return RetransContinuousLoss, 0, 0
	}

	// 7. Undetermined.
	tr.Note("T5.7 no rule matched: undetermined")
	return RetransUndetermined, 0, 0
}
