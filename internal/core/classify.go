package core

import (
	"sort"

	"tcpstall/internal/tcpsim"
)

// finalize resolves response boundaries, classifies every pending
// stall with the Figure-5 tree and Table-5 precedence, and fills the
// flow-level aggregates.
func (a *analyzer) finalize() {
	a.out.DataBytes = int64(a.maxEnd - a.base)
	if !a.haveBase {
		a.out.DataBytes = 0
	}
	sort.Slice(a.respBounds, func(i, j int) bool { return a.respBounds[i] < a.respBounds[j] })

	total := a.out.DataPackets
	if total < 1 {
		total = 1
	}
	for i := range a.pending {
		ps := &a.pending[i]
		st := &ps.stall
		st.Cause = a.topCause(ps)
		if st.Cause == CauseTimeoutRetrans {
			st.RetransCause, st.DoubleKind, st.TailState = a.retransCause(ps)
			st.Position = float64(a.segs[ps.retransSegIdx].ordinal) / float64(total)
		}
		a.out.Stalls = append(a.out.Stalls, *st)
		a.out.TotalStallTime += st.Duration
	}
}

// respRange locates the response containing unwrapped stream offset
// seq and returns its [start, end) bounds. The end of the last
// response is the flow's final snd_nxt.
func (a *analyzer) respRange(seq uint64) (start, end uint64) {
	start = a.base
	end = a.maxEnd
	for _, b := range a.respBounds {
		if b <= seq && b >= start {
			start = b
		}
		if b > seq {
			end = b
			break
		}
	}
	return start, end
}

// isRespHead reports whether unwrapped offset seq starts a response.
func (a *analyzer) isRespHead(seq uint64) bool {
	for _, b := range a.respBounds {
		if b == seq {
			return true
		}
	}
	return seq == a.base
}

// topCause walks the Figure-5 tree for one stall, reading the
// stall-ending record from the facts captured when the stall closed.
func (a *analyzer) topCause(ps *pendingStall) Cause {
	// Receive-window branch: a closed window at stall start explains
	// the silence regardless of what reopens it (window update or
	// zero-window probe).
	if ps.stall.Rwnd == 0 && ps.haveBaseAtEnd {
		return CauseZeroWindow
	}

	if ps.endDir == tcpsim.DirOut && ps.endLen > 0 {
		if ps.retransSegIdx >= 0 {
			return CauseTimeoutRetrans
		}
		// New data after silence: the transport was willing but had
		// nothing to send — server-side cause, split by position.
		if a.isRespHead(ps.endOff) {
			return CauseDataUnavailable
		}
		if ps.outstandingAtStart == 0 {
			return CauseResourceConstraint
		}
		// New data while old data was outstanding: the window opened
		// after a delayed ACK run — network delay.
		return CausePacketDelay
	}

	if ps.endDir == tcpsim.DirIn {
		if ps.endLen > 0 {
			// A client request ends the stall.
			if ps.outstandingAtStart == 0 {
				return CauseClientIdle
			}
			return CausePacketDelay
		}
		// Pure ACK ends the stall.
		if ps.outstandingAtStart > 0 {
			return CausePacketDelay
		}
		return CauseUndetermined
	}

	return CauseUndetermined
}

// retransCause applies the Table-5 precedence to a
// timeout-retransmission stall.
func (a *analyzer) retransCause(ps *pendingStall) (RetransCause, DoubleKind, tcpsim.CongState) {
	g := &a.segs[ps.retransSegIdx]

	// 1. Double retransmission: the packet had been retransmitted
	// before this stall-ending retransmission.
	if ps.copiesBefore >= 2 {
		kind := DoubleFast
		if ps.firstRetransTimeout {
			kind = DoubleTimeout
		}
		return RetransDouble, kind, 0
	}

	// 2. Tail retransmission: every byte of the response was already
	// sent and too few segments sit above the loss to produce
	// dupthres dupacks.
	_, respEnd := a.respRange(g.seq)
	allSent := ps.maxEndAtStall >= respEnd
	if allSent && ps.segsAboveOutstanding < a.cfg.DupThresh {
		tailState := ps.stall.CaState
		switch tailState {
		case tcpsim.StateDisorder:
			tailState = tcpsim.StateOpen
		case tcpsim.StateLoss:
			tailState = tcpsim.StateRecovery
		}
		return RetransTail, 0, tailState
	}

	// 3. ACK delay/loss: the retransmission turns out spurious — a
	// DSACK for it arrives shortly after the stall, meaning the data
	// was never lost (Figure 5's "spurious" branch). This must
	// precede the small-window tests: a spurious retransmission
	// almost always happens at small in-flight and would otherwise
	// be swallowed by them.
	for _, t := range g.spuriousAt {
		if t > ps.stall.End && t.Sub(ps.stall.End) <= a.cfg.DSACKHorizon {
			return RetransAckDelayLoss, 0, 0
		}
	}

	// 4/5. Small in-flight: fast retransmit starved of dupacks.
	if ps.stall.InFlight < a.cfg.SmallInFlight {
		limit := a.cfg.SmallInFlight * a.mss
		if ps.stall.Rwnd > 0 && ps.stall.Rwnd < limit &&
			ps.stall.Rwnd <= ps.stall.CwndEst*a.mss {
			return RetransSmallRwnd, 0, 0
		}
		return RetransSmallCwnd, 0, 0
	}

	// 6. Continuous loss: a full window (≥ SmallInFlight segments)
	// outstanding with zero SACK/dupack feedback.
	if ps.outstandingAtStart >= a.cfg.SmallInFlight &&
		ps.sackedOutAtStart == 0 && ps.dupacksAtStart == 0 {
		return RetransContinuousLoss, 0, 0
	}

	// 7. Undetermined.
	return RetransUndetermined, 0, 0
}
