package core

import (
	"time"

	"tcpstall/internal/flight"
	"tcpstall/internal/packet"
	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// Config parameterizes the analysis.
type Config struct {
	// Tau is the stall threshold multiplier: a gap is a stall when it
	// exceeds min(Tau·SRTT, RTO). The paper uses 2.
	Tau float64
	// InitCwnd seeds the congestion-window mimic (3, as in the
	// paper's 2.6.32 kernel).
	InitCwnd int
	// MinRTO/MaxRTO/InitRTO mirror RFC 6298 as implemented in Linux.
	MinRTO  time.Duration
	MaxRTO  time.Duration
	InitRTO time.Duration
	// DupThresh is the fast-retransmit threshold mimic.
	DupThresh int
	// SmallInFlight is the "small window" boundary in segments
	// (4 MSS in the paper).
	SmallInFlight int
	// DSACKHorizon bounds how long after a retransmission a DSACK
	// still marks it spurious.
	DSACKHorizon time.Duration
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Tau:           2,
		InitCwnd:      3,
		MinRTO:        200 * time.Millisecond,
		MaxRTO:        120 * time.Second,
		InitRTO:       time.Second,
		DupThresh:     3,
		SmallInFlight: 4,
		DSACKHorizon:  2 * time.Second,
	}
}

// aSeg is the replayer's per-segment scoreboard entry. seq is an
// unwrapped stream offset (low 32 bits = wire value), so entries stay
// distinct even when a >4 GiB flow reuses wire sequence numbers.
type aSeg struct {
	seq     uint64
	len     int
	ordinal int
	sent    int // transmissions seen (1 = original only)
	sacked  bool
	acked   bool
	// firstRetransTimeout records whether the FIRST retransmission
	// ended a stall (timeout-driven) — the f-double/t-double split.
	firstRetransTimeout bool
	lastSent            sim.Time
	// spuriousAt holds times a DSACK covered this segment.
	spuriousAt []sim.Time
}

func (g *aSeg) end() uint64 { return g.seq + uint64(g.len) }

// pendingStall is a detected stall awaiting post-hoc classification.
type pendingStall struct {
	stall Stall
	// endDir/endLen/endOff capture the stall-ending record (cur_pkt):
	// its direction, payload length and — for outgoing data — the
	// unwrapped stream offset at the moment the stall closed. Holding
	// these here frees classification from the record slice, so the
	// incremental analyzer never needs the flow history.
	endDir tcpsim.Dir
	endLen int
	endOff uint64
	// retransSegIdx / copiesBefore describe the stall-ending
	// retransmission, when there is one.
	retransSegIdx       int
	copiesBefore        int
	firstRetransTimeout bool
	// sackedDuringStall reports whether any SACK progress arrived in
	// the stall window (continuous-loss test).
	sackedOutAtStart     int
	dupacksAtStart       int
	outstandingAtStart   int
	segsAboveOutstanding int
	maxEndAtStall        uint64
	// haveBaseAtEnd freezes whether any data had been seen once the
	// stall-ending record was processed, so classification reads the
	// same value at stall close and at flush.
	haveBaseAtEnd bool
}

// analyzer replays one flow.
type analyzer struct {
	cfg Config
	mss int

	segs   []aSeg
	segIdx map[uint64]int

	// u maps wire sequence/ACK values of the server's data stream onto
	// monotonic uint64 offsets; every scoreboard comparison below is in
	// offset space, so wrapped ISNs and >4 GiB flows replay correctly.
	u seqspace.Unwrapper

	haveBase bool
	base     uint64
	sndUna   uint64
	maxEnd   uint64

	dupacks    int
	dupThresh  int
	caState    tcpsim.CongState
	recoverSeq uint64

	cwnd     float64
	ssthresh float64

	srtt       time.Duration
	rttvar     time.Duration
	hasRTT     bool
	rto        time.Duration
	rtoBackoff int

	rwnd     int
	haveRwnd bool

	// respBounds[i] is the unwrapped stream offset where response i
	// starts.
	respBounds  []uint64
	pendingResp int

	lastInT sim.Time
	prevWnd int

	synackAt  sim.Time
	rttSeeded bool

	// firstT/lastT/nRecs replace the record slice: the state machine
	// only ever looks one record back.
	firstT sim.Time
	lastT  sim.Time
	nRecs  int

	// curT is the record timestamp currently being processed (event
	// attribution); stallSeq issues flow-scoped monotonic stall IDs.
	curT     sim.Time
	stallSeq int

	// rec, when non-nil, is the flight recorder receiving typed
	// events, record windows and per-stall decision evidence. The
	// nil case is the hot path: every emission site is one pointer
	// test.
	rec *flight.Recorder

	pending []pendingStall
	out     FlowAnalysis

	// onStall, when set, fires synchronously as each stall closes
	// (before the closing record is processed). The incremental
	// analyzer uses it to surface live stall events.
	stallHook func(a *analyzer, ps *pendingStall)
}

// Analyze runs TAPO on one flow. It is the batch entry point and is
// defined as "stream then flush": every record is fed through the
// same incremental state machine the live monitor uses, so the two
// paths cannot diverge.
func Analyze(f *trace.Flow, cfg Config) *FlowAnalysis {
	inc := NewIncremental(cfg)
	inc.SetMeta(FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
	inc.FeedBatch(f.Records)
	return inc.Flush()
}

// AnalyzeFlight is Analyze with a flight recorder attached: the
// returned recorder holds the per-stall evidence (decision paths,
// record windows) and the flow's event ring. Apart from the extra
// Stall.ID/Evidence references, the analysis itself is byte-identical
// to Analyze's.
func AnalyzeFlight(f *trace.Flow, cfg Config, fcfg flight.Config) (*FlowAnalysis, *flight.Recorder) {
	inc := NewIncremental(cfg)
	inc.SetMeta(FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
	rec := flight.NewRecorder(fcfg)
	inc.SetRecorder(rec)
	inc.FeedBatch(f.Records)
	return inc.Flush(), rec
}

// threshold is the stall boundary min(τ·SRTT, RTO).
func (a *analyzer) threshold() time.Duration {
	if !a.hasRTT {
		return a.rto
	}
	th := time.Duration(a.cfg.Tau * float64(a.srtt))
	if a.rto < th {
		th = a.rto
	}
	return th
}

// feed advances the state machine by one record. It is the only way
// records enter the analyzer — the batch replay and the live monitor
// both call it, in record order.
func (a *analyzer) feed(r *trace.Record) {
	a.curT = r.T
	if a.rec != nil {
		a.rec.Sample(a.nRecs, r)
	}
	closed := false
	if a.nRecs > 0 {
		gap := r.T.Sub(a.lastT)
		if th := a.threshold(); gap > th {
			a.onStall(a.nRecs, a.lastT, r)
			closed = true
			if a.rec != nil {
				id := int64(a.pending[len(a.pending)-1].stall.ID)
				a.rec.Emit(a.nRecs-1, a.lastT, flight.KindStallOpen, "gap exceeded min(tau*SRTT, RTO)",
					int64(gap/time.Microsecond), int64(th/time.Microsecond), id)
				a.rec.Emit(a.nRecs, r.T, flight.KindStallClose, "silence broken",
					id, int64(gap/time.Microsecond), 0)
			}
		}
	} else {
		a.firstT = r.T
	}
	switch r.Dir {
	case tcpsim.DirOut:
		a.processOut(r)
	case tcpsim.DirIn:
		a.processIn(r)
	}
	a.lastT = r.T
	a.nRecs++
	// Facts frozen after the closing record is processed: a stall
	// ending at the flow's first data packet needs that record's own
	// processing to anchor the first response boundary (isRespHead)
	// and to settle haveBase. The live hook fires only now, so the
	// provisional classification reads the same frozen facts as the
	// final one.
	if closed {
		ps := &a.pending[len(a.pending)-1]
		ps.haveBaseAtEnd = a.haveBase
		if a.rec != nil {
			a.recordEvidence(ps)
		}
		if a.stallHook != nil {
			a.stallHook(a, ps)
		}
	}
}

// emit forwards one typed event to the flight recorder; with no
// recorder attached it is a single pointer test.
func (a *analyzer) emit(k flight.Kind, name string, v1, v2, v3 int64) {
	if a.rec == nil {
		return
	}
	a.rec.Emit(a.nRecs, a.curT, k, name, v1, v2, v3)
}

// rel maps an unwrapped stream offset to a position relative to the
// flow's first data byte — the coordinate evidence and events use.
func (a *analyzer) rel(off uint64) int64 {
	if !a.haveBase {
		return 0
	}
	return int64(off - a.base)
}

// recordEvidence classifies one stall with a decision trail attached
// and stores the provisional evidence as the stall closes; finalize
// replaces the trail with the settled one once post-hoc facts (DSACK
// horizon, final response bounds) are known.
func (a *analyzer) recordEvidence(ps *pendingStall) {
	tr := &flight.Trail{}
	cause := a.topCause(ps, tr)
	sub, dk := "", ""
	if cause == CauseTimeoutRetrans {
		rc, kind, _ := a.retransCause(ps, tr)
		sub = rc.String()
		if kind != DoubleNone {
			dk = kind.String()
		}
	}
	a.rec.StallClosed(flight.Ref{Flow: a.out.FlowID, Stall: ps.stall.ID},
		ps.stall.EndRecIdx-1, ps.stall.EndRecIdx, ps.stall.Start, ps.stall.End,
		cause.String(), sub, dk, tr)
}

// onStall captures a stall event; classification happens in
// finalize, once post-hoc facts (response ends, DSACKs, totals) are
// known. cur is the record ending the stall.
func (a *analyzer) onStall(endIdx int, start sim.Time, cur *trace.Record) {
	id := a.stallSeq
	a.stallSeq++
	ps := pendingStall{
		stall: Stall{
			ID:         id,
			Start:      start,
			End:        cur.T,
			Duration:   cur.T.Sub(start),
			EndRecIdx:  endIdx,
			CaState:    a.caState,
			InFlight:   a.inFlight(),
			PacketsOut: a.packetsOut(),
			Rwnd:       a.rwnd,
			CwndEst:    int(a.cwnd),
			Position:   -1,
		},
		endDir:             cur.Dir,
		endLen:             cur.Seg.Len,
		retransSegIdx:      -1,
		sackedOutAtStart:   a.sackedOut(),
		dupacksAtStart:     a.dupacks,
		outstandingAtStart: a.packetsOut(),
		maxEndAtStall:      a.maxEnd,
	}
	// Is cur_pkt a retransmission of an already-sent segment?
	if cur.Dir == tcpsim.DirOut && cur.Seg.Len > 0 {
		ps.endOff = a.u.Unwrap(cur.Seg.Seq)
		if idx, ok := a.segIdx[ps.endOff]; ok && a.segs[idx].sent >= 1 && !a.segs[idx].acked {
			g := &a.segs[idx]
			ps.retransSegIdx = idx
			ps.copiesBefore = g.sent
			ps.firstRetransTimeout = g.firstRetransTimeout
			ps.segsAboveOutstanding = a.segsAbove(g.seq)
		}
	}
	if a.rec != nil {
		ps.stall.Evidence = &flight.Ref{Flow: a.out.FlowID, Stall: id}
	}
	a.pending = append(a.pending, ps)
}

// segsAbove counts distinct sent, unacked segments strictly above seq.
func (a *analyzer) segsAbove(seq uint64) int {
	n := 0
	for i := range a.segs {
		g := &a.segs[i]
		if g.seq > seq && !g.acked {
			n++
		}
	}
	return n
}

func (a *analyzer) sackedOut() int {
	n := 0
	for i := range a.segs {
		g := &a.segs[i]
		if g.sacked && !g.acked {
			n++
		}
	}
	return n
}

// packetsOut is snd_nxt − snd_una in segments.
func (a *analyzer) packetsOut() int {
	n := 0
	for i := range a.segs {
		g := &a.segs[i]
		if !g.acked && g.sent > 0 {
			n++
		}
	}
	return n
}

// inFlight evaluates Equation 1 with the replayer's best estimates:
// packets_out + retrans_out − (sacked_out + lost_out). The replayer
// approximates lost_out as segments that were retransmitted (known
// lost) and retrans_out likewise, which cancels; the dominant terms
// are packets_out − sacked_out.
func (a *analyzer) inFlight() int {
	fl := a.packetsOut() - a.sackedOut()
	if fl < 0 {
		fl = 0
	}
	return fl
}

func (a *analyzer) processOut(r *trace.Record) {
	seg := &r.Seg
	if seg.Len == 0 {
		if seg.Flags.Has(packet.FlagSYN) {
			// The SYN-ACK carries the server's ISN; seed the unwrapper
			// here so the first data byte (ISN+1) lands next to it.
			a.u.Unwrap(seg.Seq)
			a.synackAt = r.T
		}
		return // pure ACK, probe, SYN-ACK, FIN
	}
	off := a.u.Unwrap(seg.Seq)
	if !a.haveBase {
		a.haveBase = true
		a.base = off
		a.sndUna = off
		a.maxEnd = off
		// The first response starts at the first data byte; requests
		// seen before any data anchor here too.
		a.respBounds = append(a.respBounds, off)
		a.pendingResp = 0
	}
	idx, seen := a.segIdx[off]
	if !seen {
		idx = len(a.segs)
		a.segIdx[off] = idx
		a.segs = append(a.segs, aSeg{
			seq:      off,
			len:      seg.Len,
			ordinal:  idx,
			lastSent: r.T,
		})
		a.out.DataPackets++
	}
	g := &a.segs[idx]
	g.sent++
	g.lastSent = r.T
	if off+uint64(seg.Len) > a.maxEnd {
		a.maxEnd = off + uint64(seg.Len)
	}
	if !seen {
		a.emit(flight.KindSeg, "data-sent", a.rel(off), int64(seg.Len), 1)
	}
	if g.sent > 1 {
		// Retransmission.
		a.out.RetransPackets++
		isTimeout := a.wasStallEnding(r.T)
		if g.sent == 2 {
			g.firstRetransTimeout = isTimeout
		}
		a.emit(flight.KindSeg, "retransmit", a.rel(off), int64(seg.Len), int64(g.sent))
		if isTimeout {
			// Mimic tcp_enter_loss.
			a.out.RTOSamplesMS = append(a.out.RTOSamplesMS, float64(a.rto)/1e6)
			a.emit(flight.KindState, "enter-loss", int64(a.caState), int64(tcpsim.StateLoss), int64(a.rtoBackoff+1))
			a.caState = tcpsim.StateLoss
			a.recoverSeq = a.maxEnd
			a.ssthresh = maxf(float64(a.inFlight())/2, 2)
			a.cwnd = 1
			a.dupacks = 0
			a.rtoBackoff++
			a.rto *= 2
			if a.rto > a.cfg.MaxRTO {
				a.rto = a.cfg.MaxRTO
			}
			a.emit(flight.KindCwnd, "loss-reset", int64(a.cwnd), int64(a.ssthresh), int64(a.rto/time.Microsecond))
		} else if a.caState != tcpsim.StateLoss && a.caState != tcpsim.StateRecovery {
			// Fast retransmit observed: Recovery.
			a.enterRecovery()
		}
	}
}

// wasStallEnding reports whether the record at time t ended a
// detected stall (used to split timeout vs fast retransmissions).
func (a *analyzer) wasStallEnding(t sim.Time) bool {
	if len(a.pending) == 0 {
		return false
	}
	return a.pending[len(a.pending)-1].stall.End == t
}

func (a *analyzer) enterRecovery() {
	a.emit(flight.KindState, "enter-recovery", int64(a.caState), int64(tcpsim.StateRecovery), 0)
	a.caState = tcpsim.StateRecovery
	a.recoverSeq = a.maxEnd
	a.ssthresh = maxf(float64(a.inFlight())/2, 2)
	a.cwnd = a.ssthresh
	a.emit(flight.KindCwnd, "recovery-halve", int64(a.cwnd), int64(a.ssthresh), int64(a.rto/time.Microsecond))
}

func (a *analyzer) processIn(r *trace.Record) {
	seg := &r.Seg
	a.lastInT = r.T

	if seg.Flags.Has(packet.FlagSYN) {
		if a.out.InitRwnd == 0 {
			a.out.InitRwnd = seg.Wnd
		}
		a.rwnd = seg.Wnd
		a.haveRwnd = true
		return
	}

	// Handshake RTT seed: the first post-SYN incoming segment
	// acknowledges the SYN-ACK, as in the Linux setup path.
	if !a.rttSeeded && a.synackAt > 0 {
		a.rttSeeded = true
		a.rttSample(r.T.Sub(a.synackAt))
	}

	prevRwnd := a.rwnd
	a.rwnd = seg.Wnd
	a.haveRwnd = true
	if seg.Wnd == 0 {
		a.out.ZeroRwndSeen = true
		if prevRwnd != 0 {
			a.emit(flight.KindState, "zero-window", int64(prevRwnd), 0, 0)
		}
	} else if prevRwnd == 0 && a.out.ZeroRwndSeen {
		a.emit(flight.KindState, "window-reopen", 0, int64(seg.Wnd), 0)
	}

	if seg.Len > 0 {
		// A client request: the next response starts at the current
		// snd_nxt. Requests arriving before any response data map to
		// the stream base once it is known.
		if a.haveBase {
			a.respBounds = append(a.respBounds, a.maxEnd)
		} else {
			a.pendingResp++
		}
	}

	// ACK values and SACK edges live in the server's data sequence
	// space: unwrap them with the same unwrapper as outgoing data.
	var ack uint64
	hasAck := seg.Flags.Has(packet.FlagACK)
	if hasAck {
		ack = a.u.Unwrap(seg.Ack)
	}

	// DSACK detection (RFC 2883): first block at/below the ACK or
	// contained in the second block. Wire-space modular comparisons
	// suffice here — the blocks sit within one window of each other.
	dsacked := false
	sblocks := seg.SACK.Slice()
	if len(sblocks) > 0 {
		b0 := sblocks[0]
		if (hasAck && seqspace.LessEq(b0.Right, seg.Ack)) ||
			(len(sblocks) > 1 && seqspace.LessEq(sblocks[1].Left, b0.Left) &&
				seqspace.LessEq(b0.Right, sblocks[1].Right)) {
			dsacked = true
			l0, r0 := a.u.Unwrap(b0.Left), a.u.Unwrap(b0.Right)
			for i := range a.segs {
				g := &a.segs[i]
				if g.seq >= l0 && g.end() <= r0 {
					g.spuriousAt = append(g.spuriousAt, r.T)
				}
			}
			a.emit(flight.KindSack, "dsack", a.rel(l0), int64(r0-l0), int64(a.dupacks))
		}
	}

	// SACK marking.
	sackedNew := false
	sackedCount := 0
	for bi, b := range sblocks {
		if dsacked && bi == 0 {
			continue
		}
		l, rr := a.u.Unwrap(b.Left), a.u.Unwrap(b.Right)
		for i := range a.segs {
			g := &a.segs[i]
			if g.acked || g.sacked {
				continue
			}
			if g.seq >= l && g.end() <= rr {
				g.sacked = true
				sackedNew = true
				sackedCount++
			}
		}
	}
	if sackedCount > 0 {
		a.emit(flight.KindSack, "sack-mark", int64(sackedCount), 0, int64(a.dupacks))
	}

	switch {
	case a.haveBase && hasAck && ack > a.sndUna:
		a.newAck(r, seg, ack)
	case a.haveBase && hasAck && ack == a.sndUna && seg.Len == 0 &&
		a.packetsOut() > 0 && (sackedNew || len(sblocks) > 0 || seg.Wnd == prevRwnd):
		a.dupacks++
		a.emit(flight.KindAck, "dupack", int64(a.dupacks), int64(a.dupThresh), 0)
		if a.caState == tcpsim.StateOpen {
			a.emit(flight.KindState, "enter-disorder", int64(tcpsim.StateOpen), int64(tcpsim.StateDisorder), 0)
			a.caState = tcpsim.StateDisorder
		}
		if a.caState == tcpsim.StateDisorder && a.dupacks >= a.dupThresh {
			a.enterRecovery()
		}
	}

	// Figure 11: in_flight evaluated on each ACK.
	a.out.InFlightOnAck = append(a.out.InFlightOnAck, a.inFlight())
}

func (a *analyzer) newAck(r *trace.Record, seg *tcpsim.Segment, ack uint64) {
	newlyAcked := 0
	var edge *aSeg
	for i := range a.segs {
		g := &a.segs[i]
		if !g.acked && g.end() <= ack {
			g.acked = true
			newlyAcked++
			if g.end() == ack {
				edge = g
			}
		}
	}
	a.sndUna = ack
	a.dupacks = 0
	a.rtoBackoff = 0

	// RTT sampling. Prefer timestamps (unambiguous even across
	// cumulative-ACK jumps); fall back to the ack-edge segment when
	// it was never retransmitted and the advance is a normal 1–2
	// segment step (a jump's edge segment sat in the receiver's
	// out-of-order queue and would inflate the sample).
	switch {
	case seg.TSEcr > 0:
		rtt := r.T.Sub(seg.TSEcr)
		a.rttSample(rtt)
		if rtt > 0 {
			a.out.RTTSamplesMS = append(a.out.RTTSamplesMS, float64(rtt)/1e6)
		}
	case edge != nil && edge.sent == 1 && newlyAcked <= 2:
		rtt := r.T.Sub(edge.lastSent)
		a.rttSample(rtt)
		if rtt > 0 {
			a.out.RTTSamplesMS = append(a.out.RTTSamplesMS, float64(rtt)/1e6)
		}
	}

	// State transitions.
	switch a.caState {
	case tcpsim.StateRecovery, tcpsim.StateLoss:
		if ack >= a.recoverSeq {
			a.emit(flight.KindState, "recovery-point-acked", int64(a.caState), int64(tcpsim.StateOpen), 0)
			a.caState = tcpsim.StateOpen
			a.cwnd = maxf(a.ssthresh, 2)
		}
	case tcpsim.StateDisorder:
		a.emit(flight.KindState, "disorder-cleared", int64(tcpsim.StateDisorder), int64(tcpsim.StateOpen), 0)
		a.caState = tcpsim.StateOpen
	}
	if a.caState == tcpsim.StateOpen {
		for i := 0; i < newlyAcked; i++ {
			if a.cwnd < a.ssthresh {
				a.cwnd++
			} else {
				a.cwnd += 1 / a.cwnd
			}
		}
	}
	a.emit(flight.KindAck, "ack-advance", a.rel(ack), int64(newlyAcked), int64(a.cwnd))
}

// rttSample applies RFC 6298.
func (a *analyzer) rttSample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !a.hasRTT {
		a.srtt = rtt
		a.rttvar = rtt / 2
		a.hasRTT = true
	} else {
		d := a.srtt - rtt
		if d < 0 {
			d = -d
		}
		a.rttvar = (3*a.rttvar + d) / 4
		a.srtt = (7*a.srtt + rtt) / 8
	}
	// Mirror the kernel: RTO = SRTT + max(4·RTTVAR, minRTO).
	v := 4 * a.rttvar
	if v < a.cfg.MinRTO {
		v = a.cfg.MinRTO
	}
	rto := a.srtt + v
	for i := 0; i < a.rtoBackoff; i++ {
		rto *= 2
	}
	if rto > a.cfg.MaxRTO {
		rto = a.cfg.MaxRTO
	}
	a.rto = rto
	a.emit(flight.KindRTT, "rtt-sample",
		int64(a.srtt/time.Microsecond), int64(a.rttvar/time.Microsecond), int64(a.rto/time.Microsecond))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
