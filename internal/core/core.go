package core
