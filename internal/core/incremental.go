package core

import (
	"tcpstall/internal/flight"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// FlowMeta carries the per-flow identity the batch analyzer reads
// from trace.Flow. For live flows it is known at admission time (from
// the demuxer's key and the SYN options); every field is optional —
// zero values fall back to the same defaults Analyze applies.
type FlowMeta struct {
	ID       string
	Service  string
	MSS      int // default 1460
	InitRwnd int // client SYN window; learned from the SYN when 0
}

// LiveStall is a stall event surfaced the moment it closes, before
// the flow ends. The top-level Cause is final: every Figure-5 branch
// tests facts that are frozen once the closing record is known (a
// later response boundary can never equal the closing segment's
// offset, because boundaries only appear at the ever-growing send
// edge). The Table-5 retransmission sub-cause is provisional — it may
// still be refined by post-hoc evidence (a DSACK inside the horizon,
// the final response boundary) — and Flush reports the settled value.
type LiveStall struct {
	FlowID  string
	Service string
	Stall   Stall
	// Index is the stall's ordinal within its flow (0-based).
	Index int
}

// Incremental is the streaming form of the TAPO analyzer: records
// enter one at a time through Feed, stalls surface through OnStall as
// they close, and Flush classifies and returns the completed
// FlowAnalysis. Feeding a completed flow's records in order and
// flushing produces byte-identical output to Analyze — Analyze is
// implemented as exactly that loop.
//
// An Incremental is not safe for concurrent use; the live monitor
// gives each flow to exactly one shard goroutine.
type Incremental struct {
	a       analyzer
	meta    FlowMeta
	flushed bool
	// OnStall, when set before records are fed, is called
	// synchronously from Feed as each stall closes. The event's
	// top-level cause is final; its retransmission sub-cause is the
	// best estimate at close time (see LiveStall).
	OnStall func(LiveStall)
}

// NewIncremental returns a streaming analyzer with the given
// configuration (zero-value Tau selects DefaultConfig, as in
// Analyze).
func NewIncremental(cfg Config) *Incremental {
	if cfg.Tau <= 0 {
		cfg = DefaultConfig()
	}
	inc := &Incremental{}
	inc.a = analyzer{
		cfg:       cfg,
		mss:       1460,
		segIdx:    make(map[uint64]int),
		dupThresh: cfg.DupThresh,
		caState:   tcpsim.StateOpen,
		cwnd:      float64(cfg.InitCwnd),
		ssthresh:  1 << 30,
		rto:       cfg.InitRTO,
	}
	inc.a.stallHook = func(a *analyzer, ps *pendingStall) {
		if inc.OnStall == nil {
			return
		}
		st := ps.stall
		st.Cause = a.topCause(ps, nil)
		if st.Cause == CauseTimeoutRetrans {
			st.RetransCause, st.DoubleKind, st.TailState = a.retransCause(ps, nil)
			total := a.out.DataPackets
			if total < 1 {
				total = 1
			}
			st.Position = float64(a.segs[ps.retransSegIdx].ordinal) / float64(total)
		}
		inc.OnStall(LiveStall{
			FlowID:  inc.meta.ID,
			Service: inc.meta.Service,
			Stall:   st,
			Index:   st.ID,
		})
	}
	return inc
}

// SetRecorder attaches a flight recorder. A nil recorder (the
// default) keeps the analyzer on its zero-overhead path. Attach
// before the first Feed so the event stream covers the whole flow.
func (inc *Incremental) SetRecorder(rec *flight.Recorder) { inc.a.rec = rec }

// Recorder reports the attached flight recorder (nil when disabled).
func (inc *Incremental) Recorder() *flight.Recorder { return inc.a.rec }

// SetMeta attaches the flow identity. The live monitor calls it again
// as facts arrive mid-flow (the SYN's MSS, the client window), so a
// zero InitRwnd never erases a value the analyzer already learned
// from the SYN itself.
func (inc *Incremental) SetMeta(m FlowMeta) {
	inc.meta = m
	inc.a.out.FlowID = m.ID
	inc.a.out.Service = m.Service
	if m.InitRwnd != 0 {
		inc.a.out.InitRwnd = m.InitRwnd
	}
	if m.MSS > 0 {
		inc.a.mss = m.MSS
	}
}

// Meta reports the flow identity currently attached.
func (inc *Incremental) Meta() FlowMeta { return inc.meta }

// Feed advances the analyzer by one record. Records must arrive in
// capture order. Feed panics if called after Flush.
//
// tapo:hotpath
func (inc *Incremental) Feed(r *trace.Record) {
	if inc.flushed {
		panic("core: Incremental.Feed after Flush")
	}
	inc.a.feed(r)
}

// FeedBatch advances the analyzer by a run of records in capture
// order. It is exactly equivalent to calling Feed on each record —
// batch ≡ incremental by construction — but pays the flushed check
// and the call overhead once per run instead of once per record,
// which is what the live shard loop wants: it already drains its
// ingest channel in batches, so re-entering Feed per record was pure
// overhead. FeedBatch panics if called after Flush.
//
// tapo:hotpath
func (inc *Incremental) FeedBatch(recs []trace.Record) {
	if inc.flushed {
		panic("core: Incremental.FeedBatch after Flush")
	}
	for i := range recs {
		inc.a.feed(&recs[i])
	}
}

// Records reports how many records have been fed.
func (inc *Incremental) Records() int { return inc.a.nRecs }

// Stalls reports how many stalls have closed so far (classified or
// not).
func (inc *Incremental) Stalls() int { return len(inc.a.pending) }

// LastT reports the timestamp of the most recent record (zero before
// the first Feed).
func (inc *Incremental) LastT() sim.Time { return inc.a.lastT }

// DataBytesSoFar reports the stream span covered so far.
func (inc *Incremental) DataBytesSoFar() int64 {
	if !inc.a.haveBase {
		return 0
	}
	return int64(inc.a.maxEnd - inc.a.base)
}

// Flush finalizes classification and returns the flow's analysis.
// Flush is terminal: further Feed calls panic. Calling Flush again
// returns the same analysis.
func (inc *Incremental) Flush() *FlowAnalysis {
	if !inc.flushed {
		inc.flushed = true
		if inc.a.nRecs > 1 {
			inc.a.out.TransmissionTime = inc.a.lastT.Sub(inc.a.firstT)
		}
		inc.a.finalize()
	}
	return &inc.a.out
}
