package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// scenario builds a simulated connection, runs it, and returns TAPO's
// analysis of the server-side trace — the ground-truth loop the
// classifier tests ride on.
type scenario struct {
	seed     int64
	reqs     []tcpsim.Request
	mutate   func(*tcpsim.ConnConfig)
	downLoss netem.LossModel
	upLoss   netem.LossModel
	// dropPlan drops the first N copies of the ordinal-th distinct
	// data segment (by first transmission order).
	dropPlan map[int]int
	// script runs after Start with access to the sim and conn.
	script func(s *sim.Simulator, c *tcpsim.Conn)
	// rttMS is the one-way delay in ms (default 20).
	rttMS int
}

func (sc scenario) run(t *testing.T) *FlowAnalysis {
	t.Helper()
	return Analyze(sc.runFlow(t), DefaultConfig())
}

// runFlow runs the scenario and returns the raw server-side trace,
// for tests that want to drive the analyzer themselves.
func (sc scenario) runFlow(t *testing.T) *trace.Flow {
	t.Helper()
	s := sim.New()
	rng := sim.NewRNG(sc.seed)
	delay := 20 * time.Millisecond
	if sc.rttMS > 0 {
		delay = time.Duration(sc.rttMS) * time.Millisecond / 2
	}
	down := netem.New(s, rng, netem.Config{Delay: delay, Loss: sc.downLoss})
	up := netem.New(s, rng, netem.Config{Delay: delay, Loss: sc.upLoss})
	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: sc.reqs,
	}
	if sc.mutate != nil {
		sc.mutate(&cfg)
	}
	col := trace.NewCollector("scenario", "test")
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, col)
	if sc.dropPlan != nil {
		inner := conn.Sender().Output
		distinct := 0
		ordinalOf := map[uint32]int{}
		copies := map[uint32]int{}
		conn.Sender().Output = func(seg *tcpsim.Segment) {
			if seg.Len > 0 {
				if _, ok := ordinalOf[seg.Seq]; !ok {
					distinct++
					ordinalOf[seg.Seq] = distinct
				}
				copies[seg.Seq]++
				if n, ok := sc.dropPlan[ordinalOf[seg.Seq]]; ok && copies[seg.Seq] <= n {
					// The server NIC saw it; the network ate it.
					col.Record(s.Now(), tcpsim.DirOut, *seg)
					return
				}
			}
			inner(seg)
		}
	}
	conn.Start()
	if sc.script != nil {
		sc.script(s, conn)
	}
	s.Run()
	if !conn.Metrics().Done {
		t.Fatal("scenario did not complete")
	}
	col.Flow.Done = true
	return col.Flow
}

// stallsOf filters stalls by cause.
func stallsOf(a *FlowAnalysis, c Cause) []Stall {
	var out []Stall
	for _, st := range a.Stalls {
		if st.Cause == c {
			out = append(out, st)
		}
	}
	return out
}

func retransOf(a *FlowAnalysis, rc RetransCause) []Stall {
	var out []Stall
	for _, st := range a.Stalls {
		if st.Cause == CauseTimeoutRetrans && st.RetransCause == rc {
			out = append(out, st)
		}
	}
	return out
}

func TestCleanFlowNoStalls(t *testing.T) {
	a := scenario{seed: 1, reqs: []tcpsim.Request{{Size: 100_000}}}.run(t)
	if len(a.Stalls) != 0 {
		t.Errorf("clean flow produced %d stalls: %+v", len(a.Stalls), a.Stalls)
	}
	if a.DataBytes != 100_000 {
		t.Errorf("DataBytes = %d", a.DataBytes)
	}
	if want := (100_000 + 1459) / 1460; a.DataPackets != want {
		t.Errorf("DataPackets = %d want %d", a.DataPackets, want)
	}
	if a.RetransPackets != 0 {
		t.Errorf("RetransPackets = %d", a.RetransPackets)
	}
	if len(a.RTTSamplesMS) == 0 {
		t.Error("no RTT samples")
	}
	if a.AvgRTT() < 35 || a.AvgRTT() > 120 {
		t.Errorf("AvgRTT = %.1fms, expected ≈40-100ms", a.AvgRTT())
	}
}

func TestClientIdleStall(t *testing.T) {
	a := scenario{seed: 2, reqs: []tcpsim.Request{
		{Size: 20_000},
		{IdleBefore: 500 * time.Millisecond, Size: 20_000},
	}}.run(t)
	idles := stallsOf(a, CauseClientIdle)
	if len(idles) != 1 {
		t.Fatalf("client-idle stalls = %d, want 1 (all: %+v)", len(idles), a.Stalls)
	}
	if d := idles[0].Duration; d < 350*time.Millisecond || d > 600*time.Millisecond {
		t.Errorf("idle stall duration = %v", d)
	}
}

func TestDataUnavailableStall(t *testing.T) {
	a := scenario{seed: 3, reqs: []tcpsim.Request{
		{Size: 20_000, HeadDelay: 400 * time.Millisecond},
	}}.run(t)
	got := stallsOf(a, CauseDataUnavailable)
	if len(got) != 1 {
		t.Fatalf("data-unavailable stalls = %d (all: %+v)", len(got), a.Stalls)
	}
	if d := got[0].Duration; d < 300*time.Millisecond {
		t.Errorf("duration = %v, want ≈400ms", d)
	}
}

func TestDataUnavailableOnSecondResponse(t *testing.T) {
	a := scenario{seed: 4, reqs: []tcpsim.Request{
		{Size: 20_000},
		{Size: 20_000, HeadDelay: 400 * time.Millisecond},
	}}.run(t)
	got := stallsOf(a, CauseDataUnavailable)
	if len(got) != 1 {
		t.Fatalf("data-unavailable stalls = %d (all: %+v)", len(got), a.Stalls)
	}
}

func TestResourceConstraintStall(t *testing.T) {
	a := scenario{seed: 5, reqs: []tcpsim.Request{{
		Size:   40_000,
		Pauses: []tcpsim.AppPause{{AfterBytes: 14_600, Duration: 400 * time.Millisecond}},
	}}}.run(t)
	got := stallsOf(a, CauseResourceConstraint)
	if len(got) != 1 {
		t.Fatalf("resource-constraint stalls = %d (all: %+v)", len(got), a.Stalls)
	}
}

func TestZeroWindowStall(t *testing.T) {
	a := scenario{
		seed: 6,
		reqs: []tcpsim.Request{{Size: 200_000}},
		mutate: func(c *tcpsim.ConnConfig) {
			c.Receiver.InitRwnd = 8 * 1460
			c.Receiver.BufSize = 8 * 1460
		},
		script: func(s *sim.Simulator, c *tcpsim.Conn) {
			s.Schedule(150*time.Millisecond, func() {
				c.Receiver().PauseReading(800 * time.Millisecond)
			})
		},
	}.run(t)
	got := stallsOf(a, CauseZeroWindow)
	if len(got) == 0 {
		t.Fatalf("no zero-window stalls (all: %+v)", a.Stalls)
	}
	if !a.ZeroRwndSeen {
		t.Error("ZeroRwndSeen not set")
	}
}

func TestPacketDelayStall(t *testing.T) {
	// A one-off ~300ms jitter burst on the ACK path mid-flow: the
	// server goes silent past 2·SRTT but the late ACKs land before
	// the (raised) RTO — the stall ends with an incoming ACK and no
	// retransmission.
	s := sim.New()
	rng := sim.NewRNG(7)
	down := netem.New(s, rng, netem.Config{Delay: 50 * time.Millisecond})
	up := netem.New(s, rng, netem.Config{Delay: 50 * time.Millisecond})
	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: 200_000}},
	}
	cfg.Sender.MinRTO = 500 * time.Millisecond
	col := trace.NewCollector("pd", "test")
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, col)
	conn.Start()
	s.Schedule(400*time.Millisecond, func() {
		up.SetDelay(350 * time.Millisecond)
		s.Schedule(50*time.Millisecond, func() { up.SetDelay(50 * time.Millisecond) })
	})
	s.Run()
	if !conn.Metrics().Done {
		t.Fatal("did not complete")
	}
	res := Analyze(col.Flow, DefaultConfig())
	if conn.Metrics().Sender.RTOFirings != 0 {
		t.Skip("delay bump triggered RTO; scenario not applicable")
	}
	got := stallsOf(res, CausePacketDelay)
	if len(got) == 0 {
		t.Fatalf("no packet-delay stalls (all: %+v)", res.Stalls)
	}
}

func TestTailRetransmissionStall(t *testing.T) {
	a := scenario{
		seed:     8,
		reqs:     []tcpsim.Request{{Size: 3 * 1460}},
		dropPlan: map[int]int{3: 1},
	}.run(t)
	got := retransOf(a, RetransTail)
	if len(got) != 1 {
		t.Fatalf("tail-retrans stalls = %d (all: %+v)", len(got), a.Stalls)
	}
	if got[0].TailState != tcpsim.StateOpen {
		t.Errorf("tail state = %v, want Open", got[0].TailState)
	}
	if got[0].Position < 0 {
		t.Error("position unset")
	}
}

func TestFDoubleRetransmissionStall(t *testing.T) {
	// Drop a mid-flow segment and its fast retransmission.
	a := scenario{
		seed:     9,
		reqs:     []tcpsim.Request{{Size: 40_000}},
		dropPlan: map[int]int{10: 2},
	}.run(t)
	got := retransOf(a, RetransDouble)
	if len(got) != 1 {
		t.Fatalf("double-retrans stalls = %d (all: %+v)", len(got), a.Stalls)
	}
	if got[0].DoubleKind != DoubleFast {
		t.Errorf("kind = %v, want f-double", got[0].DoubleKind)
	}
}

func TestTDoubleRetransmissionStall(t *testing.T) {
	// Drop the tail segment twice: both recoveries are timeouts, so
	// the second stall is a t-double.
	a := scenario{
		seed:     10,
		reqs:     []tcpsim.Request{{Size: 3 * 1460}},
		dropPlan: map[int]int{3: 2},
	}.run(t)
	got := retransOf(a, RetransDouble)
	if len(got) != 1 {
		t.Fatalf("double-retrans stalls = %d (all: %+v)", len(got), a.Stalls)
	}
	if got[0].DoubleKind != DoubleTimeout {
		t.Errorf("kind = %v, want t-double", got[0].DoubleKind)
	}
	// The first timeout shows up as a tail stall.
	if tails := retransOf(a, RetransTail); len(tails) != 1 {
		t.Errorf("tail stalls = %d, want 1 (the first timeout)", len(tails))
	}
}

func TestSmallCwndRetransmissionStall(t *testing.T) {
	// IW=1 and the very first segment dropped: 1 packet in flight,
	// plenty of data left (not a tail), huge rwnd (not rwnd-limited).
	a := scenario{
		seed: 11,
		reqs: []tcpsim.Request{{Size: 30_000}},
		mutate: func(c *tcpsim.ConnConfig) {
			c.Sender.InitCwnd = 1
		},
		dropPlan: map[int]int{1: 1},
	}.run(t)
	got := retransOf(a, RetransSmallCwnd)
	if len(got) != 1 {
		t.Fatalf("small-cwnd stalls = %d (all: %+v)", len(got), a.Stalls)
	}
	if got[0].InFlight >= 4 {
		t.Errorf("in-flight = %d, want < 4", got[0].InFlight)
	}
}

func TestSmallRwndRetransmissionStall(t *testing.T) {
	// rwnd of 2 MSS caps in-flight at 2; a drop mid-flow cannot be
	// fast-retransmitted.
	a := scenario{
		seed: 12,
		reqs: []tcpsim.Request{{Size: 30_000}},
		mutate: func(c *tcpsim.ConnConfig) {
			c.Receiver.InitRwnd = 2 * 1460
			c.Receiver.BufSize = 2 * 1460
		},
		dropPlan: map[int]int{6: 1},
	}.run(t)
	got := retransOf(a, RetransSmallRwnd)
	if len(got) == 0 {
		t.Fatalf("no small-rwnd stalls (all: %+v)", a.Stalls)
	}
}

func TestContinuousLossStall(t *testing.T) {
	// Mid-flow, black-hole the downlink briefly so an entire window
	// (> 4 segments) vanishes with zero dupack feedback.
	s := sim.New()
	rng := sim.NewRNG(13)
	down := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	up := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	cfg := tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: 400_000}},
	}
	col := trace.NewCollector("cl", "test")
	conn := tcpsim.NewLinkedConn(s, cfg, down, up, col)
	conn.Start()
	s.Schedule(250*time.Millisecond, func() {
		down.SetLoss(netem.Bernoulli{P: 1})
		s.Schedule(60*time.Millisecond, func() { down.SetLoss(nil) })
	})
	s.Run()
	if !conn.Metrics().Done {
		t.Fatal("did not complete")
	}
	a := Analyze(col.Flow, DefaultConfig())
	got := retransOf(a, RetransContinuousLoss)
	if len(got) == 0 {
		t.Fatalf("no continuous-loss stalls (all: %+v)", a.Stalls)
	}
	if got[0].PacketsOut < 4 {
		t.Errorf("outstanding = %d, want ≥ 4", got[0].PacketsOut)
	}
}

func TestAckDelayLossStall(t *testing.T) {
	// 500ms delayed ACK beats the RTO mid-flow: the retransmission is
	// spurious and DSACKed — ACK delay/loss. ACK loss on the uplink
	// creates the mid-flow lone-segment situations where the delack
	// holds the only pending acknowledgment (the paper's
	// software-download pathology).
	a := scenario{
		seed:   14,
		reqs:   []tcpsim.Request{{Size: 60 * 1460}},
		upLoss: netem.Bernoulli{P: 0.15},
		mutate: func(c *tcpsim.ConnConfig) {
			c.Receiver.DelAckDelay = 500 * time.Millisecond
			// 2-MSS window makes odd in-flight counts (and thus held
			// ACKs) frequent, as with the paper's software-download
			// clients.
			c.Receiver.InitRwnd = 2 * 1460
			c.Receiver.BufSize = 2 * 1460
		},
	}.run(t)
	got := retransOf(a, RetransAckDelayLoss)
	if len(got) == 0 {
		t.Fatalf("no ack-delay-loss stalls (all: %+v)", a.Stalls)
	}
}

func TestStalledFractionAndTotals(t *testing.T) {
	a := scenario{seed: 15, reqs: []tcpsim.Request{
		{Size: 10_000, HeadDelay: time.Second},
	}}.run(t)
	if a.TotalStallTime < 800*time.Millisecond {
		t.Errorf("TotalStallTime = %v", a.TotalStallTime)
	}
	f := a.StalledFraction()
	if f <= 0.3 || f > 1 {
		t.Errorf("StalledFraction = %v", f)
	}
}

func TestRTOSamplesRecorded(t *testing.T) {
	a := scenario{
		seed:     16,
		reqs:     []tcpsim.Request{{Size: 3 * 1460}},
		dropPlan: map[int]int{3: 1},
	}.run(t)
	if len(a.RTOSamplesMS) != 1 {
		t.Fatalf("RTO samples = %d, want 1", len(a.RTOSamplesMS))
	}
	if a.RTOSamplesMS[0] < 150 {
		t.Errorf("RTO sample = %.0fms", a.RTOSamplesMS[0])
	}
}

func TestInFlightOnAckSamples(t *testing.T) {
	a := scenario{seed: 17, reqs: []tcpsim.Request{{Size: 100_000}}}.run(t)
	if len(a.InFlightOnAck) == 0 {
		t.Fatal("no in-flight samples")
	}
	maxSeen := 0
	for _, v := range a.InFlightOnAck {
		if v < 0 {
			t.Fatal("negative in-flight")
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen < 3 {
		t.Errorf("max in-flight on ack = %d, expected growth beyond IW", maxSeen)
	}
}

func TestClassificationDeterminism(t *testing.T) {
	run := func() []Stall {
		return scenario{
			seed:     18,
			reqs:     []tcpsim.Request{{Size: 60_000}},
			downLoss: netem.Bernoulli{P: 0.05},
		}.run(t).Stalls
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stall counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cause != b[i].Cause || a[i].RetransCause != b[i].RetransCause {
			t.Errorf("stall %d classification differs", i)
		}
	}
}

func TestEveryStallHasExactlyOneCause(t *testing.T) {
	a := scenario{
		seed:     19,
		reqs:     []tcpsim.Request{{Size: 300_000}},
		downLoss: netem.Bernoulli{P: 0.08},
		upLoss:   netem.Bernoulli{P: 0.03},
	}.run(t)
	for i, st := range a.Stalls {
		if st.Cause == CauseTimeoutRetrans && st.RetransCause == RetransNone {
			t.Errorf("stall %d: retrans cause missing", i)
		}
		if st.Cause != CauseTimeoutRetrans && st.RetransCause != RetransNone {
			t.Errorf("stall %d: retrans cause %v on non-retrans stall", i, st.RetransCause)
		}
		if st.Duration <= 0 {
			t.Errorf("stall %d: non-positive duration", i)
		}
	}
}

func TestReportAggregation(t *testing.T) {
	var analyses []*FlowAnalysis
	for seed := int64(30); seed < 40; seed++ {
		analyses = append(analyses, scenario{
			seed:     seed,
			reqs:     []tcpsim.Request{{Size: 80_000}},
			downLoss: netem.Bernoulli{P: 0.06},
		}.run(t))
	}
	r := NewReport(analyses)
	if r.Flows != 10 {
		t.Errorf("Flows = %d", r.Flows)
	}
	if r.TotalStalls == 0 {
		t.Fatal("no stalls across 10 lossy flows")
	}
	sumCount := 0.0
	for c := range r.CountByCause {
		sumCount += r.CausePctCount(c)
	}
	if sumCount < 0.999 || sumCount > 1.001 {
		t.Errorf("cause count shares sum to %v", sumCount)
	}
	sumTime := 0.0
	for c := range r.TimeByCause {
		sumTime += r.CausePctTime(c)
	}
	if sumTime < 0.999 || sumTime > 1.001 {
		t.Errorf("cause time shares sum to %v", sumTime)
	}
	if n := r.RetransCountByCause; len(n) > 0 {
		sum := 0.0
		for c := range n {
			sum += r.RetransPctCount(c)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("retrans shares sum to %v", sum)
		}
	}
}

func TestCauseStrings(t *testing.T) {
	if CauseTimeoutRetrans.String() != "retransmission" {
		t.Error("cause string")
	}
	if RetransDouble.String() != "double-retrans" {
		t.Error("retrans string")
	}
	if DoubleFast.String() != "f-double" || DoubleTimeout.String() != "t-double" || DoubleNone.String() != "none" {
		t.Error("double kind strings")
	}
	if CategoryOf(CauseZeroWindow) != CategoryClient ||
		CategoryOf(CauseTimeoutRetrans) != CategoryNetwork ||
		CategoryOf(CauseDataUnavailable) != CategoryServer ||
		CategoryOf(CauseUndetermined) != CategoryUnknown {
		t.Error("categories")
	}
	if CategoryServer.String() != "server" || CategoryUnknown.String() != "unknown" {
		t.Error("category strings")
	}
}

func TestAnalyzeEmptyFlow(t *testing.T) {
	a := Analyze(&trace.Flow{ID: "empty"}, DefaultConfig())
	if len(a.Stalls) != 0 || a.DataBytes != 0 {
		t.Error("empty flow analysis not empty")
	}
	if a.StalledFraction() != 0 {
		t.Error("stalled fraction of empty flow")
	}
}

func TestAnalyzeMidCaptureFlow(t *testing.T) {
	// A capture that starts mid-connection (no SYN, no handshake):
	// TAPO must still detect and classify the retransmission stall.
	full := scenario{
		seed:     40,
		reqs:     []tcpsim.Request{{Size: 30_000}},
		dropPlan: map[int]int{21: 1}, // tail segment: forces an RTO
	}
	s := sim.New()
	rng := sim.NewRNG(full.seed)
	down := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	up := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
	col := trace.NewCollector("mid", "test")
	conn := tcpsim.NewLinkedConn(s, tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: full.reqs,
	}, down, up, col)
	inner := conn.Sender().Output
	n := 0
	conn.Sender().Output = func(seg *tcpsim.Segment) {
		if seg.Len > 0 {
			n++
			if n == 21 {
				col.Record(s.Now(), tcpsim.DirOut, *seg)
				return
			}
		}
		inner(seg)
	}
	conn.Start()
	s.Run()
	if !conn.Metrics().Done {
		t.Fatal("did not complete")
	}
	// Chop the first 8 records (handshake + early data) off the
	// trace, as a capture started mid-flow would.
	fl := col.Flow
	fl.Records = fl.Records[8:]
	fl.InitRwnd = 0
	a := Analyze(fl, DefaultConfig())
	if a.DataBytes == 0 || a.DataPackets == 0 {
		t.Fatal("mid-capture flow not parsed")
	}
	found := false
	for _, st := range a.Stalls {
		if st.Cause == CauseTimeoutRetrans {
			found = true
		}
	}
	if !found {
		t.Errorf("retransmission stall lost in mid-capture analysis: %+v", a.Stalls)
	}
}

func TestTailRetransInRecoveryState(t *testing.T) {
	// A mid-window hole (fast-retransmitted) plus a tail loss in the
	// same window: the SACK-scoreboard sender leaves the tail to the
	// RTO while still in Recovery — the paper's Table-7
	// "tail retransmission in Recovery state".
	a := scenario{
		seed:     77,
		reqs:     []tcpsim.Request{{Size: 15 * 1460}},
		dropPlan: map[int]int{9: 1, 15: 1},
	}.run(t)
	tails := retransOf(a, RetransTail)
	if len(tails) == 0 {
		t.Fatalf("no tail stall (all: %+v)", a.Stalls)
	}
	if tails[0].TailState != tcpsim.StateRecovery {
		t.Errorf("tail state = %v, want Recovery", tails[0].TailState)
	}
	if tails[0].CaState != tcpsim.StateRecovery {
		t.Errorf("ca state at stall = %v, want Recovery", tails[0].CaState)
	}
}

// ---------------------------------------------------------------------------
// Golden traces: three committed pcaps, one per Figure-5 stall family,
// whose full JSON analyses are pinned under testdata/. Regenerate with
//
//	go run internal/core/testdata/gen_golden.go
//
// and refresh only the JSON (after an intentional classifier change)
// with
//
//	go test ./internal/core -run TestGoldenTraces -update
// ---------------------------------------------------------------------------

var updateGolden = flag.Bool("update", false, "rewrite golden JSON from the committed pcaps")

func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		name string
		want Cause
	}{
		{"golden_server", CauseDataUnavailable},
		{"golden_client", CauseZeroWindow},
		{"golden_network", CauseTimeoutRetrans},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", tc.name+".pcap"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			flows, err := trace.ImportPcap(f, trace.ImportConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if len(flows) == 0 {
				t.Fatal("golden pcap contains no flows")
			}
			var analyses []*FlowAnalysis
			hits := 0
			for _, fl := range flows {
				a := Analyze(fl, DefaultConfig())
				for _, s := range a.Stalls {
					if s.Cause == tc.want {
						hits++
					}
				}
				analyses = append(analyses, a)
			}
			if hits == 0 {
				t.Errorf("no %v stall in %s — fixture no longer covers its family", tc.want, tc.name)
			}
			got, err := MarshalAnalyses(analyses)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("analysis of %s.pcap diverges from %s (got %d bytes, want %d); run with -update after intentional classifier changes",
					tc.name, goldenPath, len(got), len(want))
			}
		})
	}
}
