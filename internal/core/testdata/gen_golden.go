//go:build ignore

// gen_golden regenerates the golden stall traces and their expected
// analyses. Each pcap is a small synthetic capture whose stalls
// exercise one Figure-5 family:
//
//	golden_server.pcap   server family  (data unavailable)
//	golden_client.pcap   client family  (zero window)
//	golden_network.pcap  network family (timeout retransmission)
//
// Run from the repo root:
//
//	go run internal/core/testdata/gen_golden.go
//
// With -search it instead scans seeds for small captures containing
// the wanted causes (used once to pick the seeds below).
package main

import (
	"flag"
	"fmt"
	"os"

	"tcpstall/internal/core"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

type golden struct {
	name    string
	svc     workload.Service
	seed    int64
	flows   int
	want    core.Cause
	minHits int
	maxPkts int
}

// The seeds were found with -search: the smallest seed whose capture
// stays compact and contains the family's cause at least minHits
// times.
var goldens = []golden{
	{"golden_server", workload.WebSearch(), 2, 4, core.CauseDataUnavailable, 2, 1500},
	{"golden_client", workload.SoftwareDownload(), 2, 3, core.CauseZeroWindow, 1, 8000},
	{"golden_network", workload.CloudStorage(), 10, 1, core.CauseTimeoutRetrans, 2, 2500},
}

func main() {
	search := flag.Bool("search", false, "scan seeds instead of writing goldens")
	dir := flag.String("dir", "internal/core/testdata", "output directory")
	flag.Parse()

	if *search {
		for i := range goldens {
			g := &goldens[i]
			for seed := int64(1); seed < 500; seed++ {
				hits, pkts := analyze(g.svc, seed, g.flows, g.want)
				if hits >= g.minHits && pkts <= g.maxPkts {
					fmt.Printf("%s: seed=%d pkts=%d hits=%d\n", g.name, seed, pkts, hits)
					break
				}
			}
		}
		return
	}

	for _, g := range goldens {
		hits, pkts := analyze(g.svc, g.seed, g.flows, g.want)
		if hits < g.minHits {
			fmt.Fprintf(os.Stderr, "gen_golden: %s seed %d yields %d %v stalls, want >= %d\n",
				g.name, g.seed, hits, g.want, g.minHits)
			os.Exit(1)
		}
		flows := genFlows(g.svc, g.seed, g.flows)

		pf, err := os.Create(fmt.Sprintf("%s/%s.pcap", *dir, g.name))
		must(err)
		// Snaplen 96 keeps every header (Ethernet 14 + IPv4 20 + TCP
		// <= 60) while dropping the zero-filled payloads; the importer
		// takes segment lengths from the IP headers, so analysis is
		// unchanged and the fixtures stay small.
		must(trace.ExportPcap(pf, flows, trace.ExportConfig{Snaplen: 96}))
		must(pf.Close())

		// Golden JSON is computed from the round-tripped pcap, exactly
		// as the test will, so export/import quantization is baked in.
		imported, err := trace.ImportPcap(mustOpen(fmt.Sprintf("%s/%s.pcap", *dir, g.name)), trace.ImportConfig{})
		must(err)
		var analyses []*core.FlowAnalysis
		for _, f := range imported {
			analyses = append(analyses, core.Analyze(f, core.DefaultConfig()))
		}
		buf, err := core.MarshalAnalyses(analyses)
		must(err)
		must(os.WriteFile(fmt.Sprintf("%s/%s.json", *dir, g.name), buf, 0o644))
		fmt.Printf("%s: %d flows, %d packets, %d %v stalls\n", g.name, len(flows), pkts, hits, g.want)
	}
}

func genFlows(svc workload.Service, seed int64, n int) []*trace.Flow {
	var flows []*trace.Flow
	for _, r := range workload.Generate(svc, seed, workload.GenOptions{Flows: n}) {
		if r.Flow != nil {
			flows = append(flows, r.Flow)
		}
	}
	return flows
}

func analyze(svc workload.Service, seed int64, n int, want core.Cause) (hits, pkts int) {
	for _, f := range genFlows(svc, seed, n) {
		pkts += len(f.Records)
		a := core.Analyze(f, core.DefaultConfig())
		for _, s := range a.Stalls {
			if s.Cause == want {
				hits++
			}
		}
	}
	return hits, pkts
}

func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	must(err)
	return f
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gen_golden:", err)
		os.Exit(1)
	}
}
