package core

import (
	"testing"
	"time"

	"tcpstall/internal/flight"
	"tcpstall/internal/tcpsim"
)

// retransScenario produces one tail-retransmission stall plus a
// client-idle stall — two causes, so evidence tests can check both
// Figure-5 branches and the Table-5 walk.
func retransScenario() scenario {
	return scenario{seed: 7, reqs: []tcpsim.Request{
		{Size: 20_000},
		{IdleBefore: 500 * time.Millisecond, Size: 20_000},
	}, dropPlan: map[int]int{14: 1}}
}

// AnalyzeFlight must classify identically to Analyze — the recorder
// may observe, never steer.
func TestAnalyzeFlightMatchesAnalyze(t *testing.T) {
	f := retransScenario().runFlow(t)
	plain := Analyze(f, DefaultConfig())
	traced, rec := AnalyzeFlight(f, DefaultConfig(), flight.Config{})
	if rec == nil || !rec.Enabled() {
		t.Fatal("AnalyzeFlight returned no recorder")
	}
	if len(plain.Stalls) != len(traced.Stalls) {
		t.Fatalf("stall counts differ: %d vs %d", len(plain.Stalls), len(traced.Stalls))
	}
	for i := range plain.Stalls {
		p, q := plain.Stalls[i], traced.Stalls[i]
		q.Evidence = nil // the only permitted difference
		if p != q {
			t.Errorf("stall %d diverges:\nplain:  %+v\ntraced: %+v", i, p, q)
		}
	}
}

// Every stall must carry a resolvable evidence ref whose settled
// decision path ends at the reported cause, with the stall-ending
// record inside the captured window.
func TestEvidenceResolvesPerStall(t *testing.T) {
	f := retransScenario().runFlow(t)
	a, rec := AnalyzeFlight(f, DefaultConfig(), flight.Config{})
	if len(a.Stalls) == 0 {
		t.Fatal("scenario produced no stalls")
	}
	for i, st := range a.Stalls {
		if st.ID != i {
			t.Errorf("stall %d has ID %d: IDs must be monotonic in detection order", i, st.ID)
		}
		if st.Evidence == nil {
			t.Fatalf("stall %d has no evidence ref", i)
		}
		if st.Evidence.Flow != a.FlowID || st.Evidence.Stall != st.ID {
			t.Errorf("stall %d evidence ref = %v", i, st.Evidence)
		}
		ev := rec.Evidence(st.Evidence.Stall)
		if ev == nil {
			t.Fatalf("evidence %v does not resolve", st.Evidence)
		}
		if ev.Provisional {
			t.Errorf("stall %d evidence still provisional after Flush", i)
		}
		if ev.Cause != st.Cause.String() {
			t.Errorf("stall %d evidence cause %q, stall cause %q", i, ev.Cause, st.Cause)
		}
		if st.Cause == CauseTimeoutRetrans && ev.SubCause != st.RetransCause.String() {
			t.Errorf("stall %d evidence sub-cause %q, stall %q", i, ev.SubCause, st.RetransCause)
		}
		if len(ev.Decision) == 0 {
			t.Errorf("stall %d evidence has no decision path", i)
		}
		// The decision path must end on a taken branch (the verdict).
		if last := ev.Decision[len(ev.Decision)-1]; !last.Taken {
			t.Errorf("stall %d decision path ends on a non-taken branch: %v", i, last)
		}
		found := false
		for _, s := range ev.Window {
			if s.Idx == st.EndRecIdx {
				found = true
				if s.T != st.End {
					t.Errorf("stall %d closing sample at %v, stall end %v", i, s.T, st.End)
				}
			}
		}
		if !found {
			t.Errorf("stall %d window %v misses closing record %d", i, ev.Window, st.EndRecIdx)
		}
	}
	// A retransmission stall's trail must include the Table-5 walk.
	retrans := retransOf(a, RetransTail)
	if len(retrans) == 0 {
		t.Fatalf("scenario produced no tail-retransmission stall: %+v", a.Stalls)
	}
	ev := rec.Evidence(retrans[0].ID)
	sawT5 := false
	for _, s := range ev.Decision {
		if len(s.Rule) > 2 && s.Rule[:2] == "T5" {
			sawT5 = true
		}
	}
	if !sawT5 {
		t.Errorf("tail stall decision path has no Table-5 steps: %+v", ev.Decision)
	}
}

// The recorder must have seen typed events from the flow: segment
// sends, RTT updates, and a stall open/close pair per stall.
func TestRecorderEventStream(t *testing.T) {
	f := retransScenario().runFlow(t)
	a, rec := AnalyzeFlight(f, DefaultConfig(), flight.Config{RingSize: 1 << 14})
	byKind := map[flight.Kind]int{}
	for _, e := range rec.Events() {
		byKind[e.Kind]++
	}
	if rec.EventDrops() != 0 {
		t.Fatalf("oversized ring still dropped %d events", rec.EventDrops())
	}
	if byKind[flight.KindSeg] < a.DataPackets {
		t.Errorf("seg events = %d, want ≥ %d data packets", byKind[flight.KindSeg], a.DataPackets)
	}
	if byKind[flight.KindRTT] == 0 {
		t.Error("no RTT events")
	}
	if byKind[flight.KindStallOpen] != len(a.Stalls) || byKind[flight.KindStallClose] != len(a.Stalls) {
		t.Errorf("stall open/close events = %d/%d, want %d each",
			byKind[flight.KindStallOpen], byKind[flight.KindStallClose], len(a.Stalls))
	}
}

// Stall IDs surfaced through OnStall must match the flushed stalls
// and the evidence refs — one identifier, every plane.
func TestLiveStallIDsMatchFlush(t *testing.T) {
	f := retransScenario().runFlow(t)
	inc := NewIncremental(DefaultConfig())
	inc.SetMeta(FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
	rec := flight.NewRecorder(flight.Config{})
	inc.SetRecorder(rec)
	var liveIDs []int
	inc.OnStall = func(ls LiveStall) { liveIDs = append(liveIDs, ls.Stall.ID) }
	for i := range f.Records {
		inc.Feed(&f.Records[i])
	}
	a := inc.Flush()
	if len(liveIDs) != len(a.Stalls) {
		t.Fatalf("live events = %d, flushed stalls = %d", len(liveIDs), len(a.Stalls))
	}
	for i, st := range a.Stalls {
		if liveIDs[i] != st.ID {
			t.Errorf("live stall %d has ID %d, flushed ID %d", i, liveIDs[i], st.ID)
		}
		ev := rec.Evidence(st.ID)
		if ev == nil || ev.Ref.Stall != st.ID {
			t.Errorf("stall %d evidence keyed off a different ID", st.ID)
		}
	}
}
