package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tcpstall/internal/core"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// incremental runs a flow through the streaming analyzer one record
// at a time and returns its marshalled analysis.
func incremental(t *testing.T, f *trace.Flow, onStall func(core.LiveStall)) []byte {
	t.Helper()
	inc := core.NewIncremental(core.Config{})
	inc.SetMeta(core.FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
	inc.OnStall = onStall
	for i := range f.Records {
		inc.Feed(&f.Records[i])
	}
	b, err := core.MarshalAnalyses([]*core.FlowAnalysis{inc.Flush()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func batch(t *testing.T, f *trace.Flow) []byte {
	t.Helper()
	b, err := core.MarshalAnalyses([]*core.FlowAnalysis{core.Analyze(f, core.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestIncrementalMatchesBatchGolden pins the streaming analyzer to
// the batch analyzer on the three committed golden pcaps — one per
// Figure-5 stall family.
func TestIncrementalMatchesBatchGolden(t *testing.T) {
	for _, name := range []string{"golden_server", "golden_client", "golden_network"} {
		fh, err := os.Open(filepath.Join("testdata", name+".pcap"))
		if err != nil {
			t.Fatal(err)
		}
		flows, err := trace.ImportPcap(fh, trace.ImportConfig{})
		fh.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flows {
			if got, want := incremental(t, f, nil), batch(t, f); !bytes.Equal(got, want) {
				t.Errorf("%s flow %s: incremental != batch\ninc:   %s\nbatch: %s", name, f.ID, got, want)
			}
		}
	}
}

// TestIncrementalMatchesBatchGenerated sweeps generated flows from
// every service model — wireless jitter, slow readers, loss bursts,
// random ISNs — and requires byte-identical JSON from both paths.
func TestIncrementalMatchesBatchGenerated(t *testing.T) {
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 3, workload.GenOptions{Flows: 10}) {
			f := fr.Flow
			if len(f.Records) == 0 {
				continue
			}
			if got, want := incremental(t, f, nil), batch(t, f); !bytes.Equal(got, want) {
				t.Errorf("%s: incremental != batch\ninc:   %s\nbatch: %s", f.ID, got, want)
			}
		}
	}
}

// TestIncrementalLiveStalls checks the streaming event contract: one
// event per final stall, in order, with the top-level cause already
// final at close time and stall end times nondecreasing.
func TestIncrementalLiveStalls(t *testing.T) {
	checked := 0
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 5, workload.GenOptions{Flows: 8}) {
			f := fr.Flow
			if len(f.Records) == 0 {
				continue
			}
			var events []core.LiveStall
			inc := core.NewIncremental(core.Config{})
			inc.SetMeta(core.FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
			inc.OnStall = func(ls core.LiveStall) { events = append(events, ls) }
			for i := range f.Records {
				inc.Feed(&f.Records[i])
			}
			a := inc.Flush()

			if len(events) != len(a.Stalls) {
				t.Fatalf("%s: %d live events, %d final stalls", f.ID, len(events), len(a.Stalls))
			}
			for i, ev := range events {
				if ev.Index != i {
					t.Errorf("%s: event %d carries index %d", f.ID, i, ev.Index)
				}
				if ev.FlowID != f.ID || ev.Service != f.Service {
					t.Errorf("%s: event identity = %s/%s", f.ID, ev.FlowID, ev.Service)
				}
				st := a.Stalls[i]
				if ev.Stall.Start != st.Start || ev.Stall.End != st.End {
					t.Errorf("%s stall %d: live bounds [%v,%v] != final [%v,%v]",
						f.ID, i, ev.Stall.Start, ev.Stall.End, st.Start, st.End)
				}
				if ev.Stall.Cause != st.Cause {
					t.Errorf("%s stall %d: live cause %v != final %v (top cause must be final at close)",
						f.ID, i, ev.Stall.Cause, st.Cause)
				}
				if ev.Stall.Start >= ev.Stall.End {
					t.Errorf("%s stall %d: Start %v >= End %v", f.ID, i, ev.Stall.Start, ev.Stall.End)
				}
				if i > 0 && ev.Stall.End < events[i-1].Stall.End {
					t.Errorf("%s: stall end times regress at %d", f.ID, i)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("generated workload produced no stalls; test is vacuous")
	}
}

func TestIncrementalFlushTerminal(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	a1 := inc.Flush()
	a2 := inc.Flush()
	if a1 != a2 {
		t.Error("repeated Flush returned different analyses")
	}
	defer func() {
		if recover() == nil {
			t.Error("Feed after Flush did not panic")
		}
	}()
	inc.Feed(&trace.Record{})
}

// TestFeedBatchMatchesFeed: FeedBatch is defined as the per-record
// Feed loop, so any chunking of a flow's records — including the
// degenerate 1-record and whole-flow chunkings, with empty batches
// sprinkled in — must produce byte-identical JSON.
func TestFeedBatchMatchesFeed(t *testing.T) {
	for _, svc := range workload.Services() {
		for _, fr := range workload.Generate(svc, 7, workload.GenOptions{Flows: 4}) {
			f := fr.Flow
			if len(f.Records) == 0 {
				continue
			}
			want := incremental(t, f, nil)
			for _, chunk := range []int{1, 3, 64, len(f.Records)} {
				inc := core.NewIncremental(core.Config{})
				inc.SetMeta(core.FlowMeta{ID: f.ID, Service: f.Service, MSS: f.MSS, InitRwnd: f.InitRwnd})
				inc.FeedBatch(nil) // empty batch is a no-op
				for lo := 0; lo < len(f.Records); lo += chunk {
					hi := lo + chunk
					if hi > len(f.Records) {
						hi = len(f.Records)
					}
					inc.FeedBatch(f.Records[lo:hi])
				}
				got, err := core.MarshalAnalyses([]*core.FlowAnalysis{inc.Flush()})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s chunk=%d: FeedBatch != Feed\nbatch: %s\nfeed:  %s", f.ID, chunk, got, want)
				}
			}
		}
	}
}

// TestFeedBatchAfterFlushPanics pins the terminal contract.
func TestFeedBatchAfterFlushPanics(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	inc.Flush()
	defer func() {
		if recover() == nil {
			t.Fatal("FeedBatch after Flush did not panic")
		}
	}()
	inc.FeedBatch(make([]trace.Record, 1))
}
