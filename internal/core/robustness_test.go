package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// TAPO must accept arbitrary (including nonsensical) record
// sequences without panicking: real captures contain middlebox
// mangling, resets, and truncation.
func TestPropertyAnalyzerNeverPanics(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := sim.NewRNG(seed)
		fl := &trace.Flow{ID: "fuzz", MSS: 1460}
		var now sim.Time
		for i := 0; i < int(n); i++ {
			now = now.Add(time.Duration(rng.Intn(1_000_000)) * time.Microsecond)
			seg := tcpsim.Segment{
				Flags: packet.TCPFlags(rng.Intn(256)),
				Seq:   uint32(rng.Intn(1 << 20)),
				Ack:   uint32(rng.Intn(1 << 20)),
				Len:   rng.Intn(3000),
				Wnd:   rng.Intn(1 << 17),
			}
			if rng.Bool(0.3) {
				for b := 0; b < rng.Intn(4); b++ {
					l := uint32(rng.Intn(1 << 20))
					seg.SACK = append(seg.SACK, packet.SACKBlock{Left: l, Right: l + uint32(rng.Intn(5000))})
				}
			}
			if rng.Bool(0.5) {
				seg.TSVal = sim.Time(rng.Intn(1 << 30))
				seg.TSEcr = sim.Time(rng.Intn(1 << 30))
			}
			dir := tcpsim.DirOut
			if rng.Bool(0.5) {
				dir = tcpsim.DirIn
			}
			fl.Records = append(fl.Records, trace.Record{T: now, Dir: dir, Seg: seg})
		}
		a := Analyze(fl, DefaultConfig())
		// Sanity: outputs well-formed.
		for _, st := range a.Stalls {
			if st.Duration <= 0 {
				return false
			}
			if st.Cause == CauseTimeoutRetrans && st.RetransCause == RetransNone {
				return false
			}
		}
		return !math.IsNaN(a.StalledFraction())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Analyzing a flow and analyzing its pcap round trip must agree: the
// classifier sees the same world through both paths (timestamps
// differ only at sub-ms resolution, which the stall taxonomy ignores
// at these scales).
func TestPcapRoundTripAnalysisConsistency(t *testing.T) {
	res := workload.Generate(workload.SoftwareDownload(), 31, workload.GenOptions{Flows: 25})
	var flows []*trace.Flow
	for _, r := range res {
		if r.Flow != nil && r.Metrics.Done {
			flows = append(flows, r.Flow)
		}
	}
	if len(flows) < 20 {
		t.Fatalf("only %d flows", len(flows))
	}
	var buf bytes.Buffer
	if err := trace.ExportPcap(&buf, flows, trace.ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	imported, err := trace.ImportPcap(&buf, trace.ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != len(flows) {
		t.Fatalf("imported %d of %d flows", len(imported), len(flows))
	}
	// Imported flows lose their IDs; match by record count + bytes.
	type key struct {
		recs  int
		bytes int64
	}
	direct := map[key][]*FlowAnalysis{}
	for _, fl := range flows {
		a := Analyze(fl, DefaultConfig())
		k := key{len(fl.Records), fl.DataBytes()}
		direct[k] = append(direct[k], a)
	}
	// RFC 7323 timestamps quantize to millisecond ticks in the pcap,
	// so RTT samples (and hence the min(2·SRTT, RTO) threshold) shift
	// slightly: gaps sitting at the boundary may (dis)appear in
	// either representation — exactly as between two real captures
	// of the same connection at different clock resolutions. The
	// classification of the stalls detected in both must agree, so we
	// allow per-cause drift of 1 and total drift of 3.
	matched := 0
	for _, fl := range imported {
		a := Analyze(fl, DefaultConfig())
		k := key{len(fl.Records), fl.DataBytes()}
		cands := direct[k]
		if len(cands) == 0 {
			t.Errorf("no direct analysis matches imported flow %s (%v)", fl.ID, k)
			continue
		}
		ok := false
		for _, d := range cands {
			if closeRetransMix(a, d) && sameStructuralMix(a, d) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("flow %s: stall mix diverges between direct and pcap paths\n direct: %v\n import: %v",
				fl.ID, mixOf(cands[0]), mixOf(a))
			continue
		}
		matched++
	}
	if matched < len(imported)*9/10 {
		t.Errorf("only %d/%d flows matched", matched, len(imported))
	}
}

// sameStructuralMix compares the timing-insensitive causes (server
// and client side): unlike packet-delay stalls, these ride on
// sequence/window analysis and must survive the round trip exactly.
func sameStructuralMix(a, b *FlowAnalysis) bool {
	count := func(x *FlowAnalysis) map[Cause]int {
		m := map[Cause]int{}
		for _, st := range x.Stalls {
			switch st.Cause {
			case CauseDataUnavailable, CauseResourceConstraint,
				CauseClientIdle, CauseZeroWindow:
				m[st.Cause]++
			}
		}
		return m
	}
	ma, mb := count(a), count(b)
	for k := range mb {
		if _, ok := ma[k]; !ok {
			ma[k] = 0
		}
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// closeRetransMix compares the timeout-retransmission stall multisets
// allowing a drift of one event per cause (boundary effects of the
// millisecond timestamp resolution).
func closeRetransMix(a, b *FlowAnalysis) bool {
	ra, rb := map[RetransCause]int{}, map[RetransCause]int{}
	for _, st := range a.Stalls {
		if st.Cause == CauseTimeoutRetrans {
			ra[st.RetransCause]++
		}
	}
	for _, st := range b.Stalls {
		if st.Cause == CauseTimeoutRetrans {
			rb[st.RetransCause]++
		}
	}
	for k := range rb {
		if _, ok := ra[k]; !ok {
			ra[k] = 0
		}
	}
	for k, v := range ra {
		if absInt(rb[k]-v) > 1 {
			return false
		}
	}
	return true
}

func mixOf(a *FlowAnalysis) map[string]int {
	m := map[string]int{}
	for _, st := range a.Stalls {
		k := st.Cause.String()
		if st.Cause == CauseTimeoutRetrans {
			k += "/" + st.RetransCause.String()
		}
		m[k]++
	}
	return m
}

// The stall threshold must always sit between the configured floor
// behaviour and the RTO: a property over random RTT feeding.
func TestPropertyThresholdBounds(t *testing.T) {
	f := func(rtts []uint16) bool {
		a := &analyzer{cfg: DefaultConfig(), rto: DefaultConfig().InitRTO}
		for _, r := range rtts {
			a.rttSample(time.Duration(r%2000) * time.Millisecond)
		}
		th := a.threshold()
		if th <= 0 {
			return false
		}
		return th <= a.rto
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
