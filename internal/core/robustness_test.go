package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// TAPO must accept arbitrary (including nonsensical) record
// sequences without panicking: real captures contain middlebox
// mangling, resets, and truncation.
func TestPropertyAnalyzerNeverPanics(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := sim.NewRNG(seed)
		fl := &trace.Flow{ID: "fuzz", MSS: 1460}
		var now sim.Time
		for i := 0; i < int(n); i++ {
			now = now.Add(time.Duration(rng.Intn(1_000_000)) * time.Microsecond)
			seg := tcpsim.Segment{
				Flags: packet.TCPFlags(rng.Intn(256)),
				Seq:   uint32(rng.Intn(1 << 20)),
				Ack:   uint32(rng.Intn(1 << 20)),
				Len:   rng.Intn(3000),
				Wnd:   rng.Intn(1 << 17),
			}
			if rng.Bool(0.3) {
				for b := 0; b < rng.Intn(4); b++ {
					l := uint32(rng.Intn(1 << 20))
					seg.SACK.Append(packet.SACKBlock{Left: l, Right: l + uint32(rng.Intn(5000))})
				}
			}
			if rng.Bool(0.5) {
				seg.TSVal = sim.Time(rng.Intn(1 << 30))
				seg.TSEcr = sim.Time(rng.Intn(1 << 30))
			}
			dir := tcpsim.DirOut
			if rng.Bool(0.5) {
				dir = tcpsim.DirIn
			}
			fl.Records = append(fl.Records, trace.Record{T: now, Dir: dir, Seg: seg})
		}
		a := Analyze(fl, DefaultConfig())
		// Sanity: outputs well-formed.
		for _, st := range a.Stalls {
			if st.Duration <= 0 {
				return false
			}
			if st.Cause == CauseTimeoutRetrans && st.RetransCause == RetransNone {
				return false
			}
		}
		return !math.IsNaN(a.StalledFraction())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The stall threshold must always sit between the configured floor
// behaviour and the RTO: a property over random RTT feeding.
func TestPropertyThresholdBounds(t *testing.T) {
	f := func(rtts []uint16) bool {
		a := &analyzer{cfg: DefaultConfig(), rto: DefaultConfig().InitRTO}
		for _, r := range rtts {
			a.rttSample(time.Duration(r%2000) * time.Millisecond)
		}
		th := a.threshold()
		if th <= 0 {
			return false
		}
		return th <= a.rto
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
