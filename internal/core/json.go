package core

import (
	"bytes"
	"encoding/json"
	"time"
)

// JSONStall is the machine-readable stall record.
type JSONStall struct {
	ID         int     `json:"id"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Cause      string  `json:"cause"`
	Retrans    string  `json:"retrans_cause,omitempty"`
	DoubleKind string  `json:"double_kind,omitempty"`
	CaState    string  `json:"ca_state"`
	InFlight   int     `json:"in_flight"`
	Rwnd       int     `json:"rwnd"`
}

// JSONFlow is the machine-readable per-flow analysis.
type JSONFlow struct {
	ID            string      `json:"id"`
	Service       string      `json:"service,omitempty"`
	DataBytes     int64       `json:"data_bytes"`
	DataPackets   int         `json:"data_packets"`
	Retrans       int         `json:"retransmissions"`
	AvgRTTms      float64     `json:"avg_rtt_ms"`
	AvgRTOms      float64     `json:"avg_rto_ms,omitempty"`
	InitRwnd      int         `json:"init_rwnd"`
	ZeroRwnd      bool        `json:"zero_rwnd_seen"`
	TransmissionS float64     `json:"transmission_s"`
	StalledS      float64     `json:"stalled_s"`
	Stalls        []JSONStall `json:"stalls"`
}

// ToJSON converts one analysis to its machine-readable form.
func (a *FlowAnalysis) ToJSON() JSONFlow {
	jf := JSONFlow{
		ID:            a.FlowID,
		Service:       a.Service,
		DataBytes:     a.DataBytes,
		DataPackets:   a.DataPackets,
		Retrans:       a.RetransPackets,
		AvgRTTms:      a.AvgRTT(),
		AvgRTOms:      a.AvgRTO(),
		InitRwnd:      a.InitRwnd,
		ZeroRwnd:      a.ZeroRwndSeen,
		TransmissionS: a.TransmissionTime.Seconds(),
		StalledS:      a.TotalStallTime.Seconds(),
		Stalls:        []JSONStall{},
	}
	for _, st := range a.Stalls {
		js := JSONStall{
			ID:         st.ID,
			StartMS:    st.Start.Milliseconds(),
			DurationMS: float64(st.Duration) / float64(time.Millisecond),
			Cause:      st.Cause.String(),
			CaState:    st.CaState.String(),
			InFlight:   st.InFlight,
			Rwnd:       st.Rwnd,
		}
		if st.Cause == CauseTimeoutRetrans {
			js.Retrans = st.RetransCause.String()
			if st.RetransCause == RetransDouble {
				js.DoubleKind = st.DoubleKind.String()
			}
		}
		jf.Stalls = append(jf.Stalls, js)
	}
	return jf
}

// MarshalAnalyses renders analyses as the canonical indented JSON
// report. The encoding is deterministic: identical analyses in
// identical order produce identical bytes, which is the contract the
// pipeline's sequential-equivalence tests compare on.
func MarshalAnalyses(analyses []*FlowAnalysis) ([]byte, error) {
	out := make([]JSONFlow, 0, len(analyses))
	for _, a := range analyses {
		out = append(out, a.ToJSON())
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
