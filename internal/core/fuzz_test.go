package core

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// fuzzRecSize is the fixed per-record encoding used by
// FuzzIncrementalFeed: control byte, seq, ack, wnd, len code, time
// delta — plus 8 more bytes for one SACK block when bit 6 of the
// control byte is set.
const fuzzRecSize = 14

// decodeFuzzRecords maps arbitrary bytes onto a syntactically valid
// record sequence: timestamps are accumulated deltas (so they never
// decrease), everything else is attacker-controlled.
func decodeFuzzRecords(data []byte) []trace.Record {
	var recs []trace.Record
	var t sim.Time
	for len(data) >= fuzzRecSize && len(recs) < 4096 {
		ctl := data[0]
		dir := tcpsim.DirOut
		if ctl&1 != 0 {
			dir = tcpsim.DirIn
		}
		var flags packet.TCPFlags
		if ctl&2 != 0 {
			flags |= packet.FlagSYN
		}
		if ctl&4 != 0 {
			flags |= packet.FlagACK
		}
		if ctl&8 != 0 {
			flags |= packet.FlagFIN
		}
		if ctl&16 != 0 {
			flags |= packet.FlagRST
		}
		if ctl&32 != 0 {
			flags |= packet.FlagPSH
		}
		seg := tcpsim.Segment{
			Flags: flags,
			Seq:   binary.LittleEndian.Uint32(data[1:5]),
			Ack:   binary.LittleEndian.Uint32(data[5:9]),
			Wnd:   int(binary.LittleEndian.Uint16(data[9:11])),
			Len:   int(data[11]) * 97, // 0..24735 bytes
		}
		dt := binary.LittleEndian.Uint16(data[12:14])
		data = data[fuzzRecSize:]
		if ctl&64 != 0 && len(data) >= 8 {
			s := binary.LittleEndian.Uint32(data[0:4])
			e := binary.LittleEndian.Uint32(data[4:8])
			seg.SACK = packet.SACKBlocks(packet.SACKBlock{Left: s, Right: e})
			data = data[8:]
		}
		t += sim.Time(dt) * sim.Time(time.Millisecond)
		recs = append(recs, trace.Record{T: t, Dir: dir, Seg: seg})
	}
	return recs
}

// encodeFuzzRecord builds one seed record in the fuzz wire format.
func encodeFuzzRecord(dir tcpsim.Dir, flags packet.TCPFlags, seq, ack uint32, wnd, lenCode int, dtMS uint16) []byte {
	b := make([]byte, fuzzRecSize)
	if dir == tcpsim.DirIn {
		b[0] |= 1
	}
	if flags.Has(packet.FlagSYN) {
		b[0] |= 2
	}
	if flags.Has(packet.FlagACK) {
		b[0] |= 4
	}
	if flags.Has(packet.FlagFIN) {
		b[0] |= 8
	}
	binary.LittleEndian.PutUint32(b[1:5], seq)
	binary.LittleEndian.PutUint32(b[5:9], ack)
	binary.LittleEndian.PutUint16(b[9:11], uint16(wnd))
	b[11] = byte(lenCode)
	binary.LittleEndian.PutUint16(b[12:14], dtMS)
	return b
}

// FuzzIncrementalFeed drives the streaming analyzer with arbitrary
// record sequences and checks the invariants no input may break:
// no panic, byte-identical output to the batch analyzer over the same
// records, stall bounds ordered with nondecreasing close times, and
// exactly one live event per final stall.
func FuzzIncrementalFeed(f *testing.F) {
	// Seed: a plausible handshake + request + paced response.
	var normal []byte
	normal = append(normal, encodeFuzzRecord(tcpsim.DirIn, packet.FlagSYN, 100, 0, 65535, 0, 0)...)
	normal = append(normal, encodeFuzzRecord(tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, 5000, 101, 65535, 0, 1)...)
	normal = append(normal, encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 101, 5001, 65535, 3, 30)...)
	for i := 0; i < 6; i++ {
		normal = append(normal, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, 5001+uint32(i)*1455, 101, 65535, 15, uint16(20+400*(i%2)))...)
	}
	f.Add(normal)

	// Seed: ISN near the top of sequence space, so the response wraps
	// through 2^32 — the seqspace.Unwrapper's hard case.
	var wrapped []byte
	wrapISN := uint32(0xFFFFF000)
	wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirIn, packet.FlagSYN, 7, 0, 60000, 0, 0)...)
	wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, wrapISN, 8, 65535, 0, 1)...)
	for i := 0; i < 8; i++ {
		wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, wrapISN+1+uint32(i)*1455, 8, 65535, 15, uint16(25+700*(i%3/2)))...)
		wrapped = append(wrapped, encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 8, wrapISN+1+uint32(i+1)*1455, 60000, 0, 5)...)
	}
	f.Add(wrapped)

	// Seed: wrapped ISN combined with clock skew — SACK blocks that
	// straddle the 2^32 boundary while the time deltas alternate
	// between near-zero and near-maximum, so every seqsafe-protected
	// comparison (SACK edges, dup-ACK runs, RTT pairing) is exercised
	// right at the wrap with hostile pacing.
	var skew []byte
	skewISN := uint32(0xFFFFFB00)
	skew = append(skew, encodeFuzzRecord(tcpsim.DirIn, packet.FlagSYN, 42, 0, 60000, 0, 0)...)
	skew = append(skew, encodeFuzzRecord(tcpsim.DirOut, packet.FlagSYN|packet.FlagACK, skewISN, 43, 65535, 0, 1)...)
	for i := 0; i < 6; i++ {
		dt := uint16(1)
		if i%2 == 1 {
			dt = 65000 // ~65s jump: alternating tiny/huge deltas
		}
		skew = append(skew, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, skewISN+1+uint32(i)*1455, 43, 65535, 15, dt)...)
		// Cumulative ACK lags behind; a SACK block crosses the wrap.
		ackRec := encodeFuzzRecord(tcpsim.DirIn, packet.FlagACK, 43, skewISN+1, 60000, 0, 1)
		ackRec[0] |= 64 // attach a SACK block
		var blk [8]byte
		binary.LittleEndian.PutUint32(blk[0:4], skewISN+1+uint32(i)*1455)   // left edge below the wrap…
		binary.LittleEndian.PutUint32(blk[4:8], skewISN+1+uint32(i+1)*1455) // …right edge past it
		skew = append(skew, ackRec...)
		skew = append(skew, blk[:]...)
	}
	f.Add(skew)

	// Seed: pathological — a retransmission-shaped repeat with RST.
	var hostile []byte
	hostile = append(hostile, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, 1000, 1, 0, 20, 0)...)
	hostile = append(hostile, encodeFuzzRecord(tcpsim.DirOut, packet.FlagACK, 1000, 1, 0, 20, 9000)...)
	hostile = append(hostile, encodeFuzzRecord(tcpsim.DirIn, packet.FlagRST, 1, 0, 0, 0, 1)...)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeFuzzRecords(data)
		if len(recs) == 0 {
			return
		}

		var events []LiveStall
		inc := NewIncremental(Config{})
		inc.SetMeta(FlowMeta{ID: "fuzz", Service: "fuzz"})
		inc.OnStall = func(ls LiveStall) { events = append(events, ls) }
		for i := range recs {
			inc.Feed(&recs[i])
		}
		a := inc.Flush()

		flow := &trace.Flow{ID: "fuzz", Service: "fuzz", Records: recs}
		want := Analyze(flow, Config{})

		got, err := MarshalAnalyses([]*FlowAnalysis{a})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := MarshalAnalyses([]*FlowAnalysis{want})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("incremental != batch\ninc:   %s\nbatch: %s", got, ref)
		}

		if len(events) != len(a.Stalls) {
			t.Fatalf("%d live events, %d final stalls", len(events), len(a.Stalls))
		}
		var prevEnd sim.Time
		for i, st := range a.Stalls {
			if st.Start >= st.End {
				t.Errorf("stall %d: Start %v >= End %v", i, st.Start, st.End)
			}
			if st.End < prevEnd {
				t.Errorf("stall %d: close time %v regresses below %v", i, st.End, prevEnd)
			}
			prevEnd = st.End
			if events[i].Stall.Cause != st.Cause {
				t.Errorf("stall %d: live cause %v != final %v", i, events[i].Stall.Cause, st.Cause)
			}
		}
	})
}
