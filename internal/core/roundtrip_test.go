// Round-trip consistency between the direct and pcap analysis
// paths. This lives in the external test package because it drives
// the workload generator, which (via ground-truth recording) imports
// core itself.
package core_test

import (
	"bytes"
	"testing"

	"tcpstall/internal/core"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// Analyzing a flow and analyzing its pcap round trip must agree: the
// classifier sees the same world through both paths (timestamps
// differ only at sub-ms resolution, which the stall taxonomy ignores
// at these scales).
func TestPcapRoundTripAnalysisConsistency(t *testing.T) {
	res := workload.Generate(workload.SoftwareDownload(), 31, workload.GenOptions{Flows: 25})
	var flows []*trace.Flow
	for _, r := range res {
		if r.Flow != nil && r.Metrics.Done {
			flows = append(flows, r.Flow)
		}
	}
	if len(flows) < 20 {
		t.Fatalf("only %d flows", len(flows))
	}
	var buf bytes.Buffer
	if err := trace.ExportPcap(&buf, flows, trace.ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	imported, err := trace.ImportPcap(&buf, trace.ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != len(flows) {
		t.Fatalf("imported %d of %d flows", len(imported), len(flows))
	}
	// Imported flows lose their IDs; match by record count + bytes.
	type key struct {
		recs  int
		bytes int64
	}
	direct := map[key][]*core.FlowAnalysis{}
	for _, fl := range flows {
		a := core.Analyze(fl, core.DefaultConfig())
		k := key{len(fl.Records), fl.DataBytes()}
		direct[k] = append(direct[k], a)
	}
	// RFC 7323 timestamps quantize to millisecond ticks in the pcap,
	// so RTT samples (and hence the min(2·SRTT, RTO) threshold) shift
	// slightly: gaps sitting at the boundary may (dis)appear in
	// either representation — exactly as between two real captures
	// of the same connection at different clock resolutions. The
	// classification of the stalls detected in both must agree, so we
	// allow per-cause drift of 1 and total drift of 3.
	matched := 0
	for _, fl := range imported {
		a := core.Analyze(fl, core.DefaultConfig())
		k := key{len(fl.Records), fl.DataBytes()}
		cands := direct[k]
		if len(cands) == 0 {
			t.Errorf("no direct analysis matches imported flow %s (%v)", fl.ID, k)
			continue
		}
		ok := false
		for _, d := range cands {
			if closeRetransMix(a, d) && sameStructuralMix(a, d) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("flow %s: stall mix diverges between direct and pcap paths\n direct: %v\n import: %v",
				fl.ID, mixOf(cands[0]), mixOf(a))
			continue
		}
		matched++
	}
	if matched < len(imported)*9/10 {
		t.Errorf("only %d/%d flows matched", matched, len(imported))
	}
}

// sameStructuralMix compares the timing-insensitive causes (server
// and client side): unlike packet-delay stalls, these ride on
// sequence/window analysis and must survive the round trip exactly.
func sameStructuralMix(a, b *core.FlowAnalysis) bool {
	count := func(x *core.FlowAnalysis) map[core.Cause]int {
		m := map[core.Cause]int{}
		for _, st := range x.Stalls {
			switch st.Cause {
			case core.CauseDataUnavailable, core.CauseResourceConstraint,
				core.CauseClientIdle, core.CauseZeroWindow:
				m[st.Cause]++
			}
		}
		return m
	}
	ma, mb := count(a), count(b)
	for k := range mb {
		if _, ok := ma[k]; !ok {
			ma[k] = 0
		}
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// closeRetransMix compares the timeout-retransmission stall multisets
// allowing a drift of one event per cause (boundary effects of the
// millisecond timestamp resolution).
func closeRetransMix(a, b *core.FlowAnalysis) bool {
	ra, rb := map[core.RetransCause]int{}, map[core.RetransCause]int{}
	for _, st := range a.Stalls {
		if st.Cause == core.CauseTimeoutRetrans {
			ra[st.RetransCause]++
		}
	}
	for _, st := range b.Stalls {
		if st.Cause == core.CauseTimeoutRetrans {
			rb[st.RetransCause]++
		}
	}
	for k := range rb {
		if _, ok := ra[k]; !ok {
			ra[k] = 0
		}
	}
	for k, v := range ra {
		if absInt(rb[k]-v) > 1 {
			return false
		}
	}
	return true
}

func mixOf(a *core.FlowAnalysis) map[string]int {
	m := map[string]int{}
	for _, st := range a.Stalls {
		k := st.Cause.String()
		if st.Cause == core.CauseTimeoutRetrans {
			k += "/" + st.RetransCause.String()
		}
		m[k]++
	}
	return m
}
