package core

import (
	"time"

	"tcpstall/internal/tcpsim"
)

// Report aggregates per-flow analyses into the paper's table shapes.
type Report struct {
	Flows        int
	FlowsStalled int

	TotalStalls    int
	TotalStallTime time.Duration

	// Table 3: volume and time per cause.
	CountByCause map[Cause]int
	TimeByCause  map[Cause]time.Duration

	// Table 5: retransmission-stall breakdown.
	RetransCountByCause map[RetransCause]int
	RetransTimeByCause  map[RetransCause]time.Duration

	// Table 6: double-retransmission kinds by stall time.
	DoubleTimeByKind map[DoubleKind]time.Duration

	// Table 7: tail-retransmission stalls by congestion state.
	TailTimeByState map[tcpsim.CongState]time.Duration

	// Table 4 ingredients.
	FlowsZeroRwnd int
}

// NewReport aggregates analyses.
func NewReport(analyses []*FlowAnalysis) *Report {
	r := &Report{
		CountByCause:        map[Cause]int{},
		TimeByCause:         map[Cause]time.Duration{},
		RetransCountByCause: map[RetransCause]int{},
		RetransTimeByCause:  map[RetransCause]time.Duration{},
		DoubleTimeByKind:    map[DoubleKind]time.Duration{},
		TailTimeByState:     map[tcpsim.CongState]time.Duration{},
	}
	for _, a := range analyses {
		r.Add(a)
	}
	return r
}

// Add folds one flow's analysis into the report.
func (r *Report) Add(a *FlowAnalysis) {
	r.Flows++
	if len(a.Stalls) > 0 {
		r.FlowsStalled++
	}
	if a.ZeroRwndSeen {
		r.FlowsZeroRwnd++
	}
	for _, st := range a.Stalls {
		r.TotalStalls++
		r.TotalStallTime += st.Duration
		r.CountByCause[st.Cause]++
		r.TimeByCause[st.Cause] += st.Duration
		if st.Cause == CauseTimeoutRetrans {
			r.RetransCountByCause[st.RetransCause]++
			r.RetransTimeByCause[st.RetransCause] += st.Duration
			switch st.RetransCause {
			case RetransDouble:
				r.DoubleTimeByKind[st.DoubleKind] += st.Duration
			case RetransTail:
				r.TailTimeByState[st.TailState] += st.Duration
			}
		}
	}
}

// Merge folds another report into r. Every field is a count or a
// duration sum, so merging is associative and commutative: per-worker
// reports built over any sharding of the flows combine into exactly
// the report NewReport would build over all of them.
func (r *Report) Merge(o *Report) {
	r.Flows += o.Flows
	r.FlowsStalled += o.FlowsStalled
	r.FlowsZeroRwnd += o.FlowsZeroRwnd
	r.TotalStalls += o.TotalStalls
	r.TotalStallTime += o.TotalStallTime
	for c, n := range o.CountByCause {
		r.CountByCause[c] += n
	}
	for c, d := range o.TimeByCause {
		r.TimeByCause[c] += d
	}
	for c, n := range o.RetransCountByCause {
		r.RetransCountByCause[c] += n
	}
	for c, d := range o.RetransTimeByCause {
		r.RetransTimeByCause[c] += d
	}
	for k, d := range o.DoubleTimeByKind {
		r.DoubleTimeByKind[k] += d
	}
	for s, d := range o.TailTimeByState {
		r.TailTimeByState[s] += d
	}
}

// CausePctCount reports the volume share of a cause (0..1).
func (r *Report) CausePctCount(c Cause) float64 {
	if r.TotalStalls == 0 {
		return 0
	}
	return float64(r.CountByCause[c]) / float64(r.TotalStalls)
}

// CausePctTime reports the time share of a cause (0..1).
func (r *Report) CausePctTime(c Cause) float64 {
	if r.TotalStallTime == 0 {
		return 0
	}
	return float64(r.TimeByCause[c]) / float64(r.TotalStallTime)
}

// RetransPctCount reports a sub-cause's share of retransmission-stall
// volume.
func (r *Report) RetransPctCount(c RetransCause) float64 {
	total := r.CountByCause[CauseTimeoutRetrans]
	if total == 0 {
		return 0
	}
	return float64(r.RetransCountByCause[c]) / float64(total)
}

// RetransPctTime reports a sub-cause's share of retransmission-stall
// time.
func (r *Report) RetransPctTime(c RetransCause) float64 {
	total := r.TimeByCause[CauseTimeoutRetrans]
	if total == 0 {
		return 0
	}
	return float64(r.RetransTimeByCause[c]) / float64(total)
}

// DoublePctTime reports a kind's share of double-retransmission stall
// time (Table 6).
func (r *Report) DoublePctTime(k DoubleKind) float64 {
	total := r.RetransTimeByCause[RetransDouble]
	if total == 0 {
		return 0
	}
	return float64(r.DoubleTimeByKind[k]) / float64(total)
}

// TailPctTime reports a state's share of tail-retransmission stall
// time (Table 7).
func (r *Report) TailPctTime(s tcpsim.CongState) float64 {
	total := r.RetransTimeByCause[RetransTail]
	if total == 0 {
		return 0
	}
	return float64(r.TailTimeByState[s]) / float64(total)
}
