package core

import (
	"fmt"
	"testing"
	"time"

	"tcpstall/internal/tcpsim"
)

// summarize flattens the analysis facts that must be invariant under a
// sequence-space shift: the byte/packet accounting and the full stall
// list (cause, sub-cause, timing).
func summarize(a *FlowAnalysis) string {
	s := fmt.Sprintf("data=%dB/%dp retrans=%dp zerownd=%v stalls=%d",
		a.DataBytes, a.DataPackets, a.RetransPackets,
		a.ZeroRwndSeen, len(a.Stalls))
	for _, st := range a.Stalls {
		s += fmt.Sprintf("\n  %v/%v start=%v dur=%v", st.Cause, st.RetransCause, st.Start, st.Duration)
	}
	return s
}

// TCP sequence numbers are modular; TAPO must produce the same
// analysis whether a flow's ISN is 0 or a few kilobytes below 2^32 so
// that the transfer crosses the wrap. Each case replays a
// stall-producing scenario twice — identical seed and dynamics, only
// the ISNs shifted — and requires byte-for-byte identical summaries.
// With the analyzer's raw uint32 comparisons reinstated (pre-seqspace
// behaviour), post-wrap segments compare below maxEnd, are miscounted
// as retransmissions, and this test fails.
func TestAnalysisInvariantUnderISNWrap(t *testing.T) {
	// Both ISNs sit close enough to 2^32 that the handshake-relative
	// streams wrap within the first handful of segments.
	wrap := func(c *tcpsim.ConnConfig) {
		c.ServerISN = 0xFFFFF000 // wraps ~4 KB into the response
		c.ClientISN = 0xFFFFFF80 // wraps during the first request
	}
	cases := []struct {
		name string
		sc   scenario
	}{
		{"clean", scenario{seed: 101, reqs: []tcpsim.Request{{Size: 100_000}}}},
		{"data-unavailable", scenario{seed: 102, reqs: []tcpsim.Request{
			{Size: 20_000, HeadDelay: 400 * time.Millisecond},
		}}},
		{"client-idle", scenario{seed: 103, reqs: []tcpsim.Request{
			{Size: 20_000},
			{IdleBefore: 500 * time.Millisecond, Size: 20_000},
		}}},
		// Drop the 3rd distinct data segment twice: with the server ISN
		// at 0xFFFFF000 the loss, the SACK blocks, and the RTO-driven
		// retransmission all straddle the 2^32 boundary.
		{"retrans-across-wrap", scenario{seed: 104,
			reqs:     []tcpsim.Request{{Size: 60_000}},
			dropPlan: map[int]int{3: 2},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.sc
			base.mutate = nil
			got0 := summarize(base.run(t))

			shifted := tc.sc
			shifted.mutate = wrap
			got1 := summarize(shifted.run(t))

			if got0 != got1 {
				t.Errorf("analysis diverged under ISN wrap\nISN 0:\n%s\nISN near 2^32:\n%s", got0, got1)
			}
		})
	}
}

// A wrapped flow must still account every payload byte exactly once:
// DataBytes is computed from unwrapped offsets, so a retransmission
// whose original sat below the wrap and whose copy sits above it must
// not double-count.
func TestDataBytesExactAcrossWrap(t *testing.T) {
	a := scenario{
		seed:     105,
		reqs:     []tcpsim.Request{{Size: 60_000}},
		dropPlan: map[int]int{3: 2},
		mutate: func(c *tcpsim.ConnConfig) {
			c.ServerISN = 0xFFFFF000
		},
	}.run(t)
	if a.DataBytes != 60_000 {
		t.Errorf("DataBytes = %d, want 60000", a.DataBytes)
	}
	if a.RetransPackets == 0 {
		t.Error("expected retransmissions across the wrap")
	}
}
