package core_test

import (
	"fmt"
	"time"

	"tcpstall/internal/core"
	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// ExampleAnalyze classifies the stalls of one simulated flow whose
// tail segment is lost: the paper's canonical tail-retransmission
// timeout.
func ExampleAnalyze() {
	s := sim.New()
	rng := sim.NewRNG(1)
	// Drop the 3rd data segment (the tail of a 3-segment response).
	down := netem.New(s, rng, netem.Config{
		Delay: 20 * time.Millisecond,
		Loss:  netem.DropList(4), // SYN-ACK, req-ACK, then data 1..3
	})
	up := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})

	col := trace.NewCollector("example", "demo")
	conn := tcpsim.NewLinkedConn(s, tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: 3 * 1460}},
	}, down, up, col)
	conn.Start()
	s.Run()

	a := core.Analyze(col.Flow, core.DefaultConfig())
	for _, st := range a.Stalls {
		fmt.Printf("%s/%s in %s state\n", st.Cause, st.RetransCause, st.TailState)
	}
	// Output:
	// retransmission/tail-retrans in Open state
}

// ExampleNewReport aggregates analyses into the paper's Table-3
// shape.
func ExampleNewReport() {
	a := &core.FlowAnalysis{
		Stalls: []core.Stall{
			{Cause: core.CauseZeroWindow, Duration: 400 * time.Millisecond},
			{Cause: core.CauseTimeoutRetrans, RetransCause: core.RetransDouble,
				DoubleKind: core.DoubleFast, Duration: 600 * time.Millisecond},
		},
	}
	r := core.NewReport([]*core.FlowAnalysis{a})
	fmt.Printf("stalls=%d zero-window time share=%.0f%% double f-share=%.0f%%\n",
		r.TotalStalls,
		100*r.CausePctTime(core.CauseZeroWindow),
		100*r.DoublePctTime(core.DoubleFast))
	// Output:
	// stalls=2 zero-window time share=40% double f-share=100%
}
