package core

import (
	"testing"

	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// benchFlow builds one large lossy flow for classifier throughput
// measurement.
func benchFlow(b *testing.B, size int64) *trace.Flow {
	b.Helper()
	s := sim.New()
	rng := sim.NewRNG(1)
	down := netem.New(s, rng, netem.Config{Delay: 20e6, Loss: netem.Bernoulli{P: 0.02}})
	up := netem.New(s, rng, netem.Config{Delay: 20e6})
	col := trace.NewCollector("bench", "bench")
	conn := tcpsim.NewLinkedConn(s, tcpsim.ConnConfig{
		Sender:   tcpsim.DefaultSenderConfig(),
		Receiver: tcpsim.DefaultReceiverConfig(),
		Requests: []tcpsim.Request{{Size: size}},
	}, down, up, col)
	conn.Start()
	s.Run()
	if !conn.Metrics().Done {
		b.Fatal("bench flow did not complete")
	}
	return col.Flow
}

// BenchmarkAnalyze measures TAPO throughput on a ~2MB lossy flow
// (thousands of records), in bytes of analyzed stream per op.
func BenchmarkAnalyze(b *testing.B) {
	fl := benchFlow(b, 2_000_000)
	cfg := DefaultConfig()
	b.SetBytes(fl.DataBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(fl, cfg)
	}
}

// BenchmarkAnalyzeShort measures the per-flow overhead on web-search
// sized flows.
func BenchmarkAnalyzeShort(b *testing.B) {
	fl := benchFlow(b, 14_000)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(fl, cfg)
	}
}

// BenchmarkFeed and BenchmarkFeedBatch drive the incremental analyzer
// over the same ~2MB lossy flow per-record and batched. The delta is
// the pure call overhead FeedBatch amortizes — exactly what the live
// shard loop saves by grouping its drained batches into per-flow
// runs. Run with -benchmem to see the per-flow allocation profile.
func BenchmarkFeed(b *testing.B) {
	fl := benchFlow(b, 2_000_000)
	cfg := DefaultConfig()
	b.SetBytes(fl.DataBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := NewIncremental(cfg)
		for j := range fl.Records {
			inc.Feed(&fl.Records[j])
		}
		inc.Flush()
	}
}

func BenchmarkFeedBatch(b *testing.B) {
	fl := benchFlow(b, 2_000_000)
	cfg := DefaultConfig()
	b.SetBytes(fl.DataBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := NewIncremental(cfg)
		inc.FeedBatch(fl.Records)
		inc.Flush()
	}
}
