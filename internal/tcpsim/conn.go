package tcpsim

import (
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
)

// TraceSink observes the connection's packets from the server's
// vantage point, exactly as tcpdump on the front-end server would:
// outgoing segments at transmit time (before any network drop),
// incoming segments at delivery time.
type TraceSink interface {
	Record(t sim.Time, dir Dir, seg Segment)
}

// AppPause models a mid-transfer server application stall (the
// paper's "resource constraint" cause): after AfterBytes of the
// response have been handed to TCP, the next bytes arrive only
// Duration later.
type AppPause struct {
	AfterBytes int64
	Duration   time.Duration
}

// Request is one client request → server response exchange.
type Request struct {
	// IdleBefore is client think-time before issuing the request
	// (after the handshake, or after the previous response
	// completed). Produces the paper's "client idle" stalls.
	IdleBefore time.Duration
	// Size is the response length in bytes.
	Size int64
	// HeadDelay is the server-side delay before the first response
	// byte (back-end fetch): the paper's "data unavailable" stalls.
	HeadDelay time.Duration
	// Pauses inject resource-constraint stalls mid-response.
	Pauses []AppPause
}

// ConnConfig assembles a full connection.
type ConnConfig struct {
	Sender   SenderConfig
	Receiver ReceiverConfig
	// Requests drive the application exchange; at least one is
	// required.
	Requests []Request
	// RequestSize is the client request length in bytes (default
	// 300, a typical HTTP GET).
	RequestSize int
	// ClientRTO is the client's own retransmission timeout for SYNs
	// and requests (default 1s, doubling).
	ClientRTO time.Duration
	// Deadline aborts the connection after this much virtual time
	// (default 300s); aborted connections report Done=false.
	Deadline time.Duration
	// ClientISN and ServerISN set the initial sequence numbers
	// explicitly (default 0, the historical behaviour every golden
	// trace pins). ISNRng, when non-nil, overrides both with random
	// draws — the realistic case, exercising sequence wraparound for
	// ISNs near 2^32−1.
	ClientISN uint32
	ServerISN uint32
	ISNRng    *sim.RNG
	// Truth, when non-nil, receives privileged ground-truth events
	// (RTO firings, retransmissions, zero-window transitions, app
	// writes, request arrivals) for differential validation.
	Truth TruthSink
}

// ConnMetrics summarizes one connection for the evaluation harness.
type ConnMetrics struct {
	Start         sim.Time
	EstablishedAt sim.Time
	Done          bool
	DoneAt        sim.Time
	BytesServed   int64
	// RequestSentAt and RequestDoneAt (response fully acknowledged)
	// are per request; the paper's "flow latency" for short flows is
	// RequestDoneAt[last] − RequestSentAt[0].
	RequestSentAt []sim.Time
	RequestDoneAt []sim.Time
	Sender        SenderStats
	Receiver      ReceiverStats
}

// FlowLatency reports the paper's latency metric: first request
// initiation to last response byte acknowledged. Zero if incomplete.
func (m *ConnMetrics) FlowLatency() time.Duration {
	if !m.Done || len(m.RequestSentAt) == 0 {
		return 0
	}
	return m.RequestDoneAt[len(m.RequestDoneAt)-1].Sub(m.RequestSentAt[0])
}

// PathPair is the bidirectional link a connection runs over. Sending
// is performed through user-supplied functions so the connection
// composes with netem paths without importing them.
type PathPair struct {
	// Down carries server→client segments; Up the reverse. Both
	// take the segment and its wire size.
	Down func(seg *Segment, size int)
	Up   func(seg *Segment, size int)
}

// Conn is a simulated server↔client TCP connection.
type Conn struct {
	sm    *sim.Simulator
	cfg   ConnConfig
	paths PathPair
	sink  TraceSink

	snd *Sender
	rcv *Receiver

	// ISNs resolved at construction (wire values).
	cliISN uint32
	srvISN uint32

	// server receive state (client requests); srvRcvNxt is an
	// unwrapped stream offset via srvRcvU.
	srvRcvNxt uint64
	srvRcvU   seqspace.Unwrapper
	srvWnd    int

	// client send state; cliSndNxt is an unwrapped stream offset.
	cliSndNxt   uint64
	established bool
	synSent     bool
	cliTimer    *sim.Timer
	cliBackoff  int
	pendingReq  *Segment // unacknowledged request (or SYN) to retransmit

	reqIdx      int      // next request to issue
	served      int      // requests handed to the server app
	deliveredSz int64    // bytes the client app consumed
	respEnd     []uint64 // unwrapped offsets of each response's end
	doneFired   bool

	truth TruthSink

	synackSentAt sim.Time
	rttSeeded    bool

	metrics ConnMetrics

	// OnDone fires when the connection completes or is aborted.
	OnDone func(m *ConnMetrics)
}

// NewConn builds a connection. sink may be nil.
func NewConn(s *sim.Simulator, cfg ConnConfig, paths PathPair, sink TraceSink) *Conn {
	if len(cfg.Requests) == 0 {
		panic("tcpsim: connection needs at least one request")
	}
	if cfg.RequestSize <= 0 {
		cfg.RequestSize = 300
	}
	if cfg.ClientRTO <= 0 {
		cfg.ClientRTO = time.Second
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 300 * time.Second
	}
	c := &Conn{
		sm:     s,
		cfg:    cfg,
		paths:  paths,
		sink:   sink,
		srvWnd: 65535,
		cliISN: cfg.ClientISN,
		srvISN: cfg.ServerISN,
		truth:  cfg.Truth,
	}
	if cfg.ISNRng != nil {
		c.cliISN = uint32(cfg.ISNRng.Int63())
		c.srvISN = uint32(cfg.ISNRng.Int63())
	}
	c.snd = NewSender(s, cfg.Sender, c.srvISN+1)
	c.rcv = NewReceiver(s, cfg.Receiver, c.srvISN+1)
	c.cliTimer = sim.NewTimer(s, c.onClientTimer)

	c.snd.Output = c.serverTransmit
	c.rcv.Output = c.clientTransmit
	c.rcv.OnDeliver = c.onClientDeliver
	c.snd.OnAllAcked = nil // completion is tracked per request
	c.snd.truth = cfg.Truth
	c.rcv.truth = cfg.Truth
	return c
}

// Sender exposes the server-side sender (for strategy installation
// and inspection).
func (c *Conn) Sender() *Sender { return c.snd }

// Receiver exposes the client-side receiver.
func (c *Conn) Receiver() *Receiver { return c.rcv }

// Metrics returns the connection metrics (final once OnDone fired).
func (c *Conn) Metrics() *ConnMetrics { return &c.metrics }

// Start initiates the client's SYN at the current virtual time.
func (c *Conn) Start() {
	c.metrics.Start = c.sm.Now()
	c.sendSYN()
	c.sm.Schedule(c.cfg.Deadline, c.abortIfUnfinished)
}

func (c *Conn) abortIfUnfinished() {
	if !c.doneFired {
		c.finish(false)
	}
}

func (c *Conn) finish(done bool) {
	if c.doneFired {
		return
	}
	c.doneFired = true
	c.metrics.Done = done
	c.metrics.DoneAt = c.sm.Now()
	c.metrics.Sender = c.snd.Stats()
	c.metrics.Receiver = c.rcv.Stats()
	c.cliTimer.Stop()
	c.snd.rtoTimer.Stop()
	c.snd.persistTimer.Stop()
	if c.snd.paceTimer != nil {
		c.snd.paceTimer.Stop()
	}
	c.rcv.delack.Stop()
	c.rcv.readTimer.Stop()
	if done {
		c.exchangeFINs()
	}
	if c.OnDone != nil {
		c.OnDone(&c.metrics)
	}
}

// exchangeFINs emits the closing handshake for trace completeness.
// Loss of these segments is tolerated without retransmission; the
// analysis metrics are already final.
func (c *Conn) exchangeFINs() {
	fin := &Segment{Flags: packet.FlagFIN | packet.FlagACK, Seq: c.snd.SndNxt(), Ack: uint32(c.srvRcvNxt), Wnd: c.srvWnd}
	c.record(DirOut, fin)
	c.paths.Down(fin, fin.WireSize())
}

// --- client side ---

func (c *Conn) sendSYN() {
	c.synSent = true
	syn := &Segment{Flags: packet.FlagSYN, Seq: c.cliISN, Wnd: c.cfg.Receiver.InitRwnd}
	c.pendingReq = syn
	c.cliTimer.Reset(c.clientRTO())
	c.paths.Up(syn, syn.WireSize())
}

func (c *Conn) clientRTO() time.Duration {
	d := c.cfg.ClientRTO
	for i := 0; i < c.cliBackoff; i++ {
		d *= 2
	}
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

func (c *Conn) onClientTimer() {
	if c.doneFired || c.pendingReq == nil {
		return
	}
	c.cliBackoff++
	seg := *c.pendingReq
	c.cliTimer.Reset(c.clientRTO())
	c.paths.Up(&seg, seg.WireSize())
}

// clientTransmit sends a receiver-generated pure ACK upstream.
func (c *Conn) clientTransmit(seg *Segment) {
	seg.Seq = uint32(c.cliSndNxt)
	c.paths.Up(seg, seg.WireSize())
}

// ClientDeliver is the downlink path's delivery callback: a segment
// has reached the client.
func (c *Conn) ClientDeliver(pkt any) {
	if c.doneFired {
		return
	}
	seg := pkt.(*Segment)
	if seg.Flags.Has(packet.FlagSYN | packet.FlagACK) {
		if !c.established {
			c.established = true
			c.metrics.EstablishedAt = c.sm.Now()
			c.pendingReq = nil
			c.cliTimer.Stop()
			c.cliBackoff = 0
			c.cliSndNxt = seqspace.Expand(c.cliISN) + 1
			// Handshake-completing ACK.
			ack := &Segment{Flags: packet.FlagACK, Seq: uint32(c.cliSndNxt), Ack: seg.Seq + 1, Wnd: c.rcv.Window()}
			c.paths.Up(ack, ack.WireSize())
			c.scheduleNextRequest()
		}
		return
	}
	if seg.Flags.Has(packet.FlagFIN) {
		// Passive close: ACK the FIN; nothing else matters.
		ack := &Segment{Flags: packet.FlagACK | packet.FlagFIN, Seq: uint32(c.cliSndNxt), Ack: seg.End(), Wnd: c.rcv.Window()}
		c.paths.Up(ack, ack.WireSize())
		return
	}
	// The server's ACK state rides on every downlink segment; once it
	// covers the in-flight request, stop the client retransmit timer.
	if c.pendingReq != nil && c.established && seg.Flags.Has(packet.FlagACK) {
		if seqspace.LessEq(c.pendingReq.Seq+uint32(c.pendingReq.Len), seg.Ack) {
			c.pendingReq = nil
			c.cliTimer.Stop()
		}
	}
	c.rcv.HandleData(seg)
}

func (c *Conn) scheduleNextRequest() {
	if c.reqIdx >= len(c.cfg.Requests) {
		return
	}
	req := c.cfg.Requests[c.reqIdx]
	idx := c.reqIdx
	c.reqIdx++
	c.sm.Schedule(req.IdleBefore, func() { c.issueRequest(idx) })
}

func (c *Conn) issueRequest(idx int) {
	if c.doneFired {
		return
	}
	seg := &Segment{
		Flags: packet.FlagACK | packet.FlagPSH,
		Seq:   uint32(c.cliSndNxt),
		Len:   c.cfg.RequestSize,
		Ack:   c.rcv.RcvNxt(),
		Wnd:   c.rcv.Window(),
	}
	c.cliSndNxt += uint64(c.cfg.RequestSize)
	c.metrics.RequestSentAt = append(c.metrics.RequestSentAt, c.sm.Now())
	c.metrics.RequestDoneAt = append(c.metrics.RequestDoneAt, 0)
	c.pendingReq = seg
	c.cliBackoff = 0
	c.cliTimer.Reset(c.clientRTO())
	cp := *seg
	c.paths.Up(&cp, cp.WireSize())
}

// onClientDeliver tracks how much response data the client app has
// consumed, to pace follow-up requests.
func (c *Conn) onClientDeliver(n int) {
	c.deliveredSz += int64(n)
	// When the response for the most recent request is fully
	// consumed, think, then issue the next request.
	var cum int64
	for i := 0; i < c.reqIdx; i++ {
		cum += c.cfg.Requests[i].Size
	}
	if c.deliveredSz >= cum && c.reqIdx < len(c.cfg.Requests) {
		c.scheduleNextRequest()
	}
}

// --- server side ---

// serverTransmit stamps server receive state onto an outgoing
// sender segment, records it, and puts it on the downlink.
func (c *Conn) serverTransmit(seg *Segment) {
	seg.Ack = uint32(c.srvRcvNxt)
	seg.Wnd = c.srvWnd
	c.record(DirOut, seg)
	c.paths.Down(seg, seg.WireSize())
}

// ServerDeliver is the uplink path's delivery callback: a segment has
// reached the server.
func (c *Conn) ServerDeliver(pkt any) {
	if c.doneFired {
		return
	}
	seg := pkt.(*Segment)
	c.record(DirIn, seg)

	if seg.Flags.Has(packet.FlagSYN) {
		// (Re)send SYN-ACK; duplicates are harmless (the unwrapper
		// resolves a retransmitted SYN to the same offset).
		if off := c.srvRcvU.Unwrap(seg.Seq); off+1 > c.srvRcvNxt {
			c.srvRcvNxt = off + 1
		}
		synack := &Segment{Flags: packet.FlagSYN | packet.FlagACK, Seq: c.srvISN, Ack: uint32(c.srvRcvNxt), Wnd: c.srvWnd}
		c.synackSentAt = c.sm.Now()
		c.record(DirOut, synack)
		c.paths.Down(synack, synack.WireSize())
		return
	}
	// Seed the RTT estimator from the handshake, as Linux does: the
	// first post-SYN segment acknowledges our SYN-ACK.
	if !c.rttSeeded && c.synackSentAt > 0 {
		c.rttSeeded = true
		c.snd.SeedRTT(c.sm.Now().Sub(c.synackSentAt))
	}
	if seg.Flags.Has(packet.FlagFIN) {
		return // client's closing FIN; connection already done
	}

	if seg.Len > 0 {
		// Client request data. A duplicate copy (client retransmission)
		// still marks a request arrival for the ground truth: it is the
		// event that ends a client-side stall on the wire.
		end := c.srvRcvU.Unwrap(seg.Seq) + uint64(seg.Len)
		isNew := end > c.srvRcvNxt
		if isNew {
			c.srvRcvNxt = end
		}
		if c.truth != nil {
			c.truth.RequestArrival(c.sm.Now(), c.snd.HasOutstanding())
		}
		// Quick-ACK the request so the client timer disarms.
		ack := &Segment{Flags: packet.FlagACK, Seq: c.snd.SndNxt(), Ack: uint32(c.srvRcvNxt), Wnd: c.srvWnd}
		c.record(DirOut, ack)
		c.paths.Down(ack, ack.WireSize())
		if isNew {
			c.serveRequest()
		}
	}

	// Every incoming segment carries acknowledgment state for the
	// server's data stream.
	c.snd.HandleAck(seg)
	c.checkRequestCompletion()
}

// serveRequest starts the server application handling for the next
// unserved request.
func (c *Conn) serveRequest() {
	if c.served >= len(c.cfg.Requests) {
		return
	}
	req := c.cfg.Requests[c.served]
	c.served++
	prevEnd := c.snd.base // stream start: unwrapped offset of srvISN+1
	if n := len(c.respEnd); n > 0 {
		prevEnd = c.respEnd[n-1]
	}
	c.respEnd = append(c.respEnd, prevEnd+uint64(req.Size))
	c.metrics.BytesServed += req.Size

	// Feed the sender in chunks separated by the configured pauses.
	type chunk struct {
		bytes int64
		after time.Duration
	}
	var chunks []chunk
	first := chunk{after: req.HeadDelay}
	prevOff := int64(0)
	for _, p := range req.Pauses {
		if p.AfterBytes <= prevOff || p.AfterBytes >= req.Size {
			continue
		}
		first.bytes = p.AfterBytes - prevOff
		chunks = append(chunks, first)
		first = chunk{after: p.Duration}
		prevOff = p.AfterBytes
	}
	first.bytes = req.Size - prevOff
	chunks = append(chunks, first)

	var feed func(i int)
	feed = func(i int) {
		if c.doneFired || i >= len(chunks) {
			return
		}
		c.sm.Schedule(chunks[i].after, func() {
			if c.doneFired {
				return
			}
			if c.truth != nil && chunks[i].after > 0 {
				kind := WriteAfterPause
				if i == 0 {
					kind = WriteAfterHeadDelay
				}
				c.truth.AppWrite(c.sm.Now(), kind)
			}
			c.snd.Write(chunks[i].bytes)
			feed(i + 1)
		})
	}
	feed(0)
}

// checkRequestCompletion records response-acked times and finishes
// the connection when the last response is fully acknowledged.
func (c *Conn) checkRequestCompletion() {
	una := c.snd.sndUna64()
	for i, end := range c.respEnd {
		if c.metrics.RequestDoneAt[i] == 0 && una >= end && i < len(c.metrics.RequestDoneAt) {
			c.metrics.RequestDoneAt[i] = c.sm.Now()
		}
	}
	if len(c.respEnd) == len(c.cfg.Requests) && una >= c.respEnd[len(c.respEnd)-1] {
		c.finish(true)
	}
}

func (c *Conn) record(dir Dir, seg *Segment) {
	if c.sink == nil {
		return
	}
	// Segment stores SACK blocks inline, so a value copy is deep.
	c.sink.Record(c.sm.Now(), dir, *seg)
}
