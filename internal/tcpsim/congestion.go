package tcpsim

import (
	"math"
	"time"

	"tcpstall/internal/sim"
)

// CongestionControl abstracts the congestion-avoidance window growth
// and the post-loss reduction target. Slow start (cwnd < ssthresh,
// +1 per ACKed segment), the Recovery rate-halving and the Loss-state
// cwnd=1 are mechanics shared by all algorithms and stay in the
// Sender; the algorithm decides how cwnd grows past ssthresh and
// where ssthresh lands after a loss event.
type CongestionControl interface {
	// Name identifies the algorithm ("reno", "cubic").
	Name() string
	// OnAckCA returns the new cwnd after one segment is cumulatively
	// acknowledged in congestion avoidance (Open state,
	// cwnd ≥ ssthresh).
	OnAckCA(cwnd float64, now sim.Time) float64
	// AfterLoss returns the new ssthresh for a loss event observed
	// at the given in-flight size, and records the epoch internally.
	AfterLoss(cwnd, inFlight float64, now sim.Time) float64
	// Reset clears epoch state (new connection reuse).
	Reset()
}

// RenoCC is classic Reno/NewReno congestion avoidance: cwnd grows by
// 1/cwnd per ACK; ssthresh halves the in-flight on loss. This matches
// the paper's Section 3.1 description of the production stack's
// behaviour and is the default.
type RenoCC struct{}

// Name implements CongestionControl.
func (RenoCC) Name() string { return "reno" }

// OnAckCA implements CongestionControl.
func (RenoCC) OnAckCA(cwnd float64, _ sim.Time) float64 {
	return cwnd + 1/cwnd
}

// AfterLoss implements CongestionControl.
func (RenoCC) AfterLoss(_, inFlight float64, _ sim.Time) float64 {
	s := inFlight / 2
	if s < 2 {
		s = 2
	}
	return s
}

// Reset implements CongestionControl.
func (RenoCC) Reset() {}

// CubicCC implements CUBIC (Ha, Rhee, Xu 2008) — the actual default
// congestion control of the paper's 2.6.32 kernel. The window grows
// along W(t) = C·(t−K)³ + Wmax with K = ∛(Wmax·β/C), clamped from
// below by the TCP-friendly Reno estimate.
type CubicCC struct {
	// C is the scaling constant (0.4 in the kernel) and Beta the
	// multiplicative decrease (0.3 ⇒ window ×0.7 after loss).
	C    float64
	Beta float64

	wMax       float64
	epochStart sim.Time
	hasEpoch   bool
	// Reno-friendly estimate state.
	ackCount  float64
	tcpCwnd   float64
	originRTT time.Duration
}

// NewCubic returns a CUBIC instance with the kernel's constants.
func NewCubic() *CubicCC {
	return &CubicCC{C: 0.4, Beta: 0.3}
}

// Name implements CongestionControl.
func (c *CubicCC) Name() string { return "cubic" }

// k returns the time (seconds) to grow back to wMax.
func (c *CubicCC) k() float64 {
	return math.Cbrt(c.wMax * c.Beta / c.C)
}

// OnAckCA implements CongestionControl.
func (c *CubicCC) OnAckCA(cwnd float64, now sim.Time) float64 {
	if !c.hasEpoch {
		// First CA ack after slow start without a loss epoch: treat
		// the current window as the plateau.
		c.hasEpoch = true
		c.epochStart = now
		if c.wMax < cwnd {
			c.wMax = cwnd
		}
		c.tcpCwnd = cwnd
		c.ackCount = 0
	}
	t := now.Sub(c.epochStart).Seconds()
	target := c.C*math.Pow(t-c.k(), 3) + c.wMax

	// TCP-friendly region: emulate Reno's growth so CUBIC never
	// underperforms it on short-RTT paths.
	c.ackCount++
	c.tcpCwnd += 1 / cwnd // ≈ Reno's per-ack increase
	if c.tcpCwnd > target {
		target = c.tcpCwnd
	}

	if target <= cwnd {
		// In the concave plateau: creep forward slowly.
		return cwnd + 0.01
	}
	// Standard CUBIC pacing: close the gap over one RTT's worth of
	// acks; per-ack increment (target − cwnd)/cwnd.
	return cwnd + (target-cwnd)/cwnd
}

// AfterLoss implements CongestionControl.
func (c *CubicCC) AfterLoss(cwnd, _ float64, now sim.Time) float64 {
	// Fast convergence: if the new max is below the previous one,
	// release extra bandwidth.
	if cwnd < c.wMax {
		c.wMax = cwnd * (2 - c.Beta) / 2
	} else {
		c.wMax = cwnd
	}
	c.epochStart = now
	c.hasEpoch = true
	c.tcpCwnd = cwnd * (1 - c.Beta)
	c.ackCount = 0
	s := cwnd * (1 - c.Beta)
	if s < 2 {
		s = 2
	}
	return s
}

// Reset implements CongestionControl.
func (c *CubicCC) Reset() {
	c.wMax = 0
	c.hasEpoch = false
	c.ackCount = 0
	c.tcpCwnd = 0
}
