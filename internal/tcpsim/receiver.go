package tcpsim

import (
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
)

// ReceiverConfig parameterizes the client-side receiver model.
type ReceiverConfig struct {
	// MSS is the maximum segment size in bytes.
	MSS int
	// InitRwnd is the receive window advertised in the SYN, bytes.
	// The paper found old client software advertising as little as
	// 4096 bytes (2 MSS), with strong knock-on effects (Table 4).
	InitRwnd int
	// BufSize is the receive buffer capacity; the window can never
	// exceed it. Defaults to InitRwnd when zero (the old-client
	// behaviour: no buffer auto-tuning).
	BufSize int
	// DelAckDelay is the delayed-ACK timer. RFC 1122 allows up to
	// 500ms; Linux uses 40–200ms. Old client stacks sit at the high
	// end, producing the paper's ACK-delay stalls.
	DelAckDelay time.Duration
	// AckEvery forces an immediate ACK after this many unacked
	// full segments (2 per RFC 1122).
	AckEvery int
	// SACK enables selective acknowledgments (on for all services
	// in the dataset).
	SACK bool
	// ReadRate limits how fast the client application drains the
	// receive buffer, in bytes/second. 0 means the app reads
	// instantly (window never closes).
	ReadRate int64
	// ReadInterval is the granularity of rate-limited reads.
	ReadInterval time.Duration
	// ReadPauses schedules application read stalls (disk flushes,
	// UI freezes) relative to connection start; they close the
	// window when data keeps arriving.
	ReadPauses []ReadPause
}

// ReadPause is one scheduled application read stall.
type ReadPause struct {
	At  time.Duration
	Dur time.Duration
}

// DefaultReceiverConfig models a modern desktop client.
func DefaultReceiverConfig() ReceiverConfig {
	return ReceiverConfig{
		MSS:          1460,
		InitRwnd:     65535,
		DelAckDelay:  40 * time.Millisecond,
		AckEvery:     2,
		SACK:         true,
		ReadInterval: 10 * time.Millisecond,
	}
}

// ReceiverStats counts receiver-side events.
type ReceiverStats struct {
	BytesReceived      int64
	SegmentsReceived   int
	DuplicateSegments  int
	OutOfOrderSegments int
	DSACKsSent         int
	AcksSent           int
	ZeroWindowAcks     int
	WindowUpdates      int
}

// span is a half-open byte range [l, r) in unwrapped stream offsets.
type span struct{ l, r uint64 }

// Receiver is the client-side endpoint: reassembly, delayed ACKs,
// SACK/DSACK generation and finite-buffer window management.
type Receiver struct {
	sm  *sim.Simulator
	cfg ReceiverConfig

	// Output transmits a pure ACK toward the server; the connection
	// stamps the client's Seq before the wire.
	Output func(seg *Segment)

	// OnDeliver, if set, observes in-order data as the app would
	// read it (byte count per advance).
	OnDeliver func(n int)

	// rcvNxt and readPtr are unwrapped stream offsets; the low 32 bits
	// are the wire value. Reassembly happens entirely in offset space
	// so ordering survives sequence numbers wrapping past 2^32.
	rcvNxt  uint64
	readPtr uint64
	u       seqspace.Unwrapper
	ooo     []span // recency-ordered (most recent first)

	pendingSegs int // full segments since last ACK
	delack      *sim.Timer
	readTimer   *sim.Timer
	readPaused  bool
	pausedUntil sim.Time

	lastAdvertised int
	everAdvertised bool

	// tsRecent is the RFC 7323 ts_recent: the TSVal of the last
	// segment that touched the left edge of the window, echoed back
	// in every ACK so the sender can take unambiguous RTT samples.
	tsRecent sim.Time

	// truth, when set, observes zero-window open/close transitions for
	// the ground-truth recorder; truthZero tracks the reported state.
	truth     TruthSink
	truthZero bool

	stats ReceiverStats
}

// NewReceiver builds a receiver whose stream starts at startSeq (1
// after the SYN).
func NewReceiver(s *sim.Simulator, cfg ReceiverConfig, startSeq uint32) *Receiver {
	if cfg.MSS <= 0 {
		panic("tcpsim: MSS must be positive")
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = cfg.InitRwnd
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 2
	}
	if cfg.ReadInterval <= 0 {
		cfg.ReadInterval = 10 * time.Millisecond
	}
	r := &Receiver{
		sm:  s,
		cfg: cfg,
	}
	r.rcvNxt = r.u.Unwrap(startSeq)
	r.readPtr = r.rcvNxt
	r.delack = sim.NewTimer(s, r.onDelAck)
	r.readTimer = sim.NewTimer(s, r.onRead)
	for _, p := range cfg.ReadPauses {
		dur := p.Dur
		s.Schedule(p.At, func() { r.PauseReading(dur) })
	}
	return r
}

// Stats returns a copy of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// RcvNxt reports the next expected in-order byte as a wire value.
func (r *Receiver) RcvNxt() uint32 { return uint32(r.rcvNxt) }

// rawWindow is the free buffer space in bytes.
func (r *Receiver) rawWindow() int {
	used := int(r.rcvNxt - r.readPtr)
	for _, sp := range r.ooo {
		used += int(sp.r - sp.l)
	}
	w := r.cfg.BufSize - used
	if w < 0 {
		w = 0
	}
	return w
}

// Window reports the advertisable receive window with receiver-side
// silly-window-syndrome avoidance (RFC 1122 §4.2.3.3): windows below
// min(MSS, BufSize/2) are advertised as zero rather than dribbled
// out. This is the mechanism that turns a slow-reading client with a
// small buffer into the paper's zero-window stalls.
func (r *Receiver) Window() int {
	w := r.rawWindow()
	threshold := r.cfg.MSS
	if half := r.cfg.BufSize / 2; half < threshold {
		threshold = half
	}
	if w < threshold {
		return 0
	}
	return w
}

// PauseReading suspends the application's buffer drain for d,
// modelling a stalled client app (disk write, UI freeze); the window
// closes if data keeps arriving. It applies to both rate-limited and
// instant-read receivers.
func (r *Receiver) PauseReading(d time.Duration) {
	until := r.sm.Now().Add(d)
	if until > r.pausedUntil {
		r.pausedUntil = until
	}
	r.readPaused = true
	r.readTimer.Stop()
	r.sm.Schedule(d, func() {
		// Overlapping pauses: only the last one unpauses.
		if r.sm.Now() < r.pausedUntil {
			return
		}
		r.readPaused = false
		if r.cfg.ReadRate == 0 {
			r.drainInstant()
		} else {
			r.scheduleRead()
		}
	})
}

// drainInstant consumes everything buffered (instant-read mode) and
// reopens the window if it had closed.
func (r *Receiver) drainInstant() {
	prevWnd := r.Window()
	delivered := int(r.rcvNxt - r.readPtr)
	r.readPtr = r.rcvNxt
	if r.OnDeliver != nil && delivered > 0 {
		r.OnDeliver(delivered)
	}
	if prevWnd < r.cfg.MSS && r.Window() >= r.cfg.MSS {
		r.stats.WindowUpdates++
		r.sendAck(nil)
	}
}

// HandleData processes an arriving server segment (data, zero-window
// probe, or FIN-bearing).
func (r *Receiver) HandleData(seg *Segment) {
	r.stats.SegmentsReceived++
	// Unwrap the wire sequence into offset space once; every ordering
	// decision below compares offsets, never raw uint32s.
	off := r.u.Unwrap(seg.Seq)
	// RFC 7323: update ts_recent when the segment covers (or abuts)
	// the next expected byte.
	if seg.TSVal > 0 && off <= r.rcvNxt {
		r.tsRecent = seg.TSVal
	}
	if seg.Len == 0 {
		// A bare segment below the window edge is a zero-window probe
		// (seq = snd_una − 1 in Linux); RFC 793 obliges an ACK with
		// the current window. In-window bare ACKs are not answered —
		// ACKing ACKs would loop.
		if off < r.rcvNxt {
			r.sendAck(nil)
		}
		return
	}
	r.stats.BytesReceived += int64(seg.Len)
	end := off + uint64(seg.Len)
	switch {
	case end <= r.rcvNxt:
		// Full duplicate: DSACK (RFC 2883) right away.
		r.stats.DuplicateSegments++
		r.stats.DSACKsSent++
		dup := span{off, end}
		r.sendAck(&dup)
		return
	case off > r.rcvNxt:
		// Out of order: queue and emit an immediate dupack with SACK.
		r.stats.OutOfOrderSegments++
		r.insertOOO(span{off, end})
		r.sendAck(nil)
		return
	default:
		// In-order (possibly overlapping the left edge).
		wasDup := off < r.rcvNxt
		r.advance(end)
		if wasDup {
			r.stats.DuplicateSegments++
		}
		// Filling a gap (ooo pending before) warrants an immediate
		// ACK so the sender sees progress.
		if len(r.ooo) > 0 || wasDup {
			r.sendAck(nil)
			return
		}
		r.pendingSegs++
		if r.pendingSegs >= r.cfg.AckEvery {
			r.sendAck(nil)
		} else if !r.delack.Armed() {
			r.delack.Reset(r.cfg.DelAckDelay)
		}
	}
}

// advance moves rcvNxt to at least end, merging any contiguous
// out-of-order spans, and drives the app-read model.
func (r *Receiver) advance(end uint64) {
	if end > r.rcvNxt {
		r.rcvNxt = end
	}
	merged := true
	for merged {
		merged = false
		for i, sp := range r.ooo {
			if sp.l <= r.rcvNxt {
				if sp.r > r.rcvNxt {
					r.rcvNxt = sp.r
				}
				r.ooo = append(r.ooo[:i], r.ooo[i+1:]...)
				merged = true
				break
			}
		}
	}
	if r.cfg.ReadRate == 0 {
		if !r.readPaused {
			delivered := int(r.rcvNxt - r.readPtr)
			r.readPtr = r.rcvNxt
			if r.OnDeliver != nil && delivered > 0 {
				r.OnDeliver(delivered)
			}
		}
	} else {
		r.scheduleRead()
	}
}

func (r *Receiver) scheduleRead() {
	if r.readPaused || r.readTimer.Armed() || r.readPtr >= r.rcvNxt {
		return
	}
	r.readTimer.Reset(r.cfg.ReadInterval)
}

func (r *Receiver) onRead() {
	if r.readPaused {
		return
	}
	chunk := int64(float64(r.cfg.ReadRate) * r.cfg.ReadInterval.Seconds())
	if chunk < 1 {
		chunk = 1
	}
	avail := int64(r.rcvNxt - r.readPtr)
	if chunk > avail {
		chunk = avail
	}
	prevWnd := r.Window()
	r.readPtr += uint64(chunk)
	if r.OnDeliver != nil && chunk > 0 {
		r.OnDeliver(int(chunk))
	}
	// Window update: if we had advertised a closed (or sub-MSS)
	// window and it reopened meaningfully, tell the sender.
	if prevWnd < r.cfg.MSS && r.Window() >= r.cfg.MSS {
		r.stats.WindowUpdates++
		r.sendAck(nil)
	}
	r.scheduleRead()
}

// insertOOO records an out-of-order span, most recent first, merging
// overlaps.
func (r *Receiver) insertOOO(sp span) {
	out := r.ooo[:0]
	for _, old := range r.ooo {
		if old.r < sp.l || old.l > sp.r {
			out = append(out, old)
			continue
		}
		if old.l < sp.l {
			sp.l = old.l
		}
		if old.r > sp.r {
			sp.r = old.r
		}
	}
	r.ooo = append([]span{sp}, out...)
}

func (r *Receiver) onDelAck() {
	if r.pendingSegs > 0 {
		r.sendAck(nil)
	}
}

// sendAck emits a pure ACK with the current cumulative point, window
// and SACK blocks; dsack, when non-nil, is prepended per RFC 2883.
func (r *Receiver) sendAck(dsack *span) {
	r.pendingSegs = 0
	r.delack.Stop()
	w := r.Window()
	seg := &Segment{
		Flags: packet.FlagACK,
		Ack:   uint32(r.rcvNxt),
		Wnd:   w,
		TSVal: r.sm.Now(),
		TSEcr: r.tsRecent,
	}
	if r.cfg.SACK {
		if dsack != nil {
			seg.SACK.Append(packet.SACKBlock{Left: uint32(dsack.l), Right: uint32(dsack.r)})
		}
		max := packet.MaxSACKBlocks - seg.SACK.Len()
		for i, sp := range r.ooo {
			if i >= max {
				break
			}
			seg.SACK.Append(packet.SACKBlock{Left: uint32(sp.l), Right: uint32(sp.r)})
		}
	}
	if w == 0 {
		r.stats.ZeroWindowAcks++
	}
	if r.truth != nil && (w == 0) != r.truthZero {
		r.truthZero = w == 0
		r.truth.ZeroWindow(r.sm.Now(), r.truthZero)
	}
	r.lastAdvertised = w
	r.everAdvertised = true
	r.stats.AcksSent++
	if r.Output == nil {
		panic("tcpsim: Receiver.Output not set")
	}
	r.Output(seg)
}
