// Package tcpsim models a server-side TCP connection at segment
// granularity: a full-featured data sender (congestion control,
// RFC 6298 retransmission timer, SACK scoreboard, the Linux 4-state
// congestion state machine) facing a client receiver (out-of-order
// reassembly, delayed ACKs, SACK/DSACK generation, finite receive
// buffer with zero-window behaviour) over a pair of netem paths.
//
// It is the stand-in for the production Linux 2.6.32 stack the paper
// measured: every stall class the paper's TAPO classifier knows —
// data-unavailable, resource-constraint, client-idle, zero-window,
// packet-delay and the six timeout-retransmission sub-causes — arises
// organically from these mechanisms under the right workload.
package tcpsim

import (
	"fmt"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
)

// Dir distinguishes the two directions as seen from the server.
type Dir int

// Directions of travel relative to the server.
const (
	DirOut Dir = iota // server → client
	DirIn             // client → server
)

func (d Dir) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// Segment is the unit exchanged between the endpoints. Sequence
// numbers are 32-bit wire values starting at each direction's ISN
// (0 by default, random when ConnConfig.ISNRng is set) and wrap
// modulo 2^32; the SYN and FIN each consume one sequence number, as
// in real TCP.
type Segment struct {
	Flags packet.TCPFlags
	// Seq is the first stream byte carried (sender's direction).
	Seq uint32
	// Ack is the next expected byte of the opposite direction
	// (valid when FlagACK set).
	Ack uint32
	// Len is the payload length in bytes (0 for pure ACKs).
	Len int
	// Wnd is the advertised receive window in bytes.
	Wnd int
	// SACK carries selective acknowledgment blocks inline (a DSACK is
	// signalled by a first block at or below Ack). Inline storage
	// makes Segment a plain value: copying a record never allocates
	// and never aliases another record's blocks.
	SACK packet.SACKList
	// TSVal is the sender's clock at transmit time and TSEcr the
	// echoed peer timestamp (RFC 7323). The simulator uses virtual
	// time directly; the trace exporter converts to millisecond
	// ticks. A zero TSEcr means "nothing to echo".
	TSVal sim.Time
	TSEcr sim.Time
}

// End reports Seq + Len (+1 for SYN/FIN).
func (s *Segment) End() uint32 {
	e := s.Seq + uint32(s.Len)
	if s.Flags.Has(packet.FlagSYN) || s.Flags.Has(packet.FlagFIN) {
		e++
	}
	return e
}

// WireSize estimates the frame's on-the-wire size for bandwidth
// accounting: Ethernet + IPv4 + TCP (with SACK options) + payload.
func (s *Segment) WireSize() int {
	n := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.TCPHeaderLen + s.Len
	if blocks := s.SACK.Len(); blocks > 0 {
		n += 4 + 8*blocks // kind+len+2 NOPs alignment, blocks
	}
	return n
}

func (s *Segment) String() string {
	return fmt.Sprintf("[%s] seq=%d len=%d ack=%d wnd=%d sack=%v",
		s.Flags, s.Seq, s.Len, s.Ack, s.Wnd, s.SACK)
}

// CongState is the Linux congestion-avoidance machine state
// (tcp_ca_state).
type CongState int

// The four states of Figure 4.
const (
	StateOpen CongState = iota
	StateDisorder
	StateRecovery
	StateLoss
)

func (s CongState) String() string {
	switch s {
	case StateOpen:
		return "Open"
	case StateDisorder:
		return "Disorder"
	case StateRecovery:
		return "Recovery"
	case StateLoss:
		return "Loss"
	default:
		return fmt.Sprintf("CongState(%d)", int(s))
	}
}
