package tcpsim

import (
	"testing"
	"testing/quick"
	"time"

	"tcpstall/internal/netem"
	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
)

// recSink captures trace records for assertions.
type recSink struct {
	recs []traceRec
}

type traceRec struct {
	t   sim.Time
	dir Dir
	seg Segment
}

func (r *recSink) Record(t sim.Time, dir Dir, seg Segment) {
	r.recs = append(r.recs, traceRec{t, dir, seg})
}

type harness struct {
	sim  *sim.Simulator
	conn *Conn
	down *netem.Path
	up   *netem.Path
	sink *recSink
}

type harnessOpt func(*ConnConfig, *netem.Config, *netem.Config)

func withDownLoss(m netem.LossModel) harnessOpt {
	return func(_ *ConnConfig, d, _ *netem.Config) { d.Loss = m }
}

func withUpLoss(m netem.LossModel) harnessOpt {
	return func(_ *ConnConfig, _, u *netem.Config) { u.Loss = m }
}

func withConn(f func(*ConnConfig)) harnessOpt {
	return func(c *ConnConfig, _, _ *netem.Config) { f(c) }
}

// newHarness builds a 40ms-RTT connection serving the given
// responses.
func newHarness(seed int64, reqs []Request, opts ...harnessOpt) *harness {
	s := sim.New()
	rng := sim.NewRNG(seed)
	cfg := ConnConfig{
		Sender:   DefaultSenderConfig(),
		Receiver: DefaultReceiverConfig(),
		Requests: reqs,
	}
	downCfg := netem.Config{Delay: 20 * time.Millisecond}
	upCfg := netem.Config{Delay: 20 * time.Millisecond}
	for _, o := range opts {
		o(&cfg, &downCfg, &upCfg)
	}
	down := netem.New(s, rng, downCfg)
	up := netem.New(s, rng, upCfg)
	sink := &recSink{}
	conn := NewLinkedConn(s, cfg, down, up, sink)
	return &harness{sim: s, conn: conn, down: down, up: up, sink: sink}
}

func (h *harness) run(t *testing.T) *ConnMetrics {
	t.Helper()
	h.conn.Start()
	h.sim.Run()
	return h.conn.Metrics()
}

func oneReq(size int64) []Request { return []Request{{Size: size}} }

func TestCleanTransfer(t *testing.T) {
	h := newHarness(1, oneReq(100_000))
	m := h.run(t)
	if !m.Done {
		t.Fatal("transfer did not complete")
	}
	if m.Sender.Retransmissions != 0 {
		t.Errorf("retransmissions = %d on a clean path", m.Sender.Retransmissions)
	}
	if m.Receiver.BytesReceived != 100_000 {
		t.Errorf("received %d bytes", m.Receiver.BytesReceived)
	}
	if m.Sender.RTOFirings != 0 {
		t.Errorf("RTO fired %d times on a clean path", m.Sender.RTOFirings)
	}
	lat := m.FlowLatency()
	if lat <= 0 || lat > 5*time.Second {
		t.Errorf("flow latency = %v", lat)
	}
}

func TestHandshakeRTT(t *testing.T) {
	h := newHarness(1, oneReq(1000))
	m := h.run(t)
	// SYN (20ms) + SYN-ACK (20ms) = established at 40ms.
	if m.EstablishedAt != sim.Time(40*time.Millisecond) {
		t.Errorf("established at %v, want 40ms", m.EstablishedAt)
	}
}

func TestSingleLossFastRetransmit(t *testing.T) {
	// Drop one data segment in the middle of a large window; SACK
	// dupacks must trigger fast retransmit, not RTO.
	// Downlink packet order: SYN-ACK(0), req-ACK(1), then data...
	h := newHarness(2, oneReq(200_000), withDownLoss(netem.DropList(30)))
	m := h.run(t)
	if !m.Done {
		t.Fatal("transfer did not complete")
	}
	if m.Sender.FastRetransmits == 0 {
		t.Error("no fast retransmit recorded")
	}
	if m.Sender.RTOFirings != 0 {
		t.Errorf("RTO fired %d times; loss should be recovered fast", m.Sender.RTOFirings)
	}
	if m.Receiver.BytesReceived < 200_000 {
		t.Errorf("received %d bytes", m.Receiver.BytesReceived)
	}
}

func TestTailLossRequiresRTO(t *testing.T) {
	// Flow of 3 segments (IW=3, all sent at once); drop the last.
	// No further data ⇒ no dupacks ⇒ timeout retransmission.
	h := newHarness(3, oneReq(3*1460), withDownLoss(netem.DropList(4)))
	m := h.run(t)
	if !m.Done {
		t.Fatal("transfer did not complete")
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("tail loss should force an RTO")
	}
	if m.Sender.FastRetransmits != 0 {
		t.Errorf("unexpected fast retransmits: %d", m.Sender.FastRetransmits)
	}
}

// dropCopies wires a harness so that transmissions of the chosen
// distinct data segment (ordinal-th new sequence seen) are dropped
// for the first `copies` copies.
func dropCopies(h *harness, ordinal, copies int) {
	inner := h.conn.snd.Output
	distinct := 0
	var target uint32
	haveTarget := false
	perSeq := map[uint32]int{}
	h.conn.snd.Output = func(seg *Segment) {
		if seg.Len > 0 {
			if perSeq[seg.Seq] == 0 {
				distinct++
				if distinct == ordinal {
					target = seg.Seq
					haveTarget = true
				}
			}
			perSeq[seg.Seq]++
			if haveTarget && seg.Seq == target && perSeq[seg.Seq] <= copies {
				// Swallowed by the "network": record it as the server
				// NIC would have, but never deliver.
				seg.Ack = uint32(h.conn.srvRcvNxt)
				seg.Wnd = h.conn.srvWnd
				h.conn.record(DirOut, seg)
				return
			}
		}
		inner(seg)
	}
}

func TestFDoubleRetransmissionNeedsRTO(t *testing.T) {
	// Drop a middle segment AND its fast retransmission: the second
	// copy can only be recovered by timeout (the paper's f-double
	// stall, Figure 9).
	h := newHarness(4, oneReq(60_000))
	dropCopies(h, 10, 2)
	m := h.run(t)
	if !m.Done {
		t.Fatal("transfer did not complete")
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("double loss of the same segment must end in RTO")
	}
	if m.Sender.FastRetransmits == 0 {
		t.Error("first recovery should have been a fast retransmit")
	}
}

func TestZeroWindowStallAndRecovery(t *testing.T) {
	h := newHarness(5, oneReq(50_000), withConn(func(c *ConnConfig) {
		c.Receiver.InitRwnd = 4 * 1460
		c.Receiver.BufSize = 4 * 1460
		// Under one MSS per RTT: SWS avoidance forces zero-window
		// advertisements.
		c.Receiver.ReadRate = 20_000
		c.Receiver.ReadInterval = 5 * time.Millisecond
	}))
	// A mid-transfer app pause closes the window outright for 300ms.
	h.sim.Schedule(500*time.Millisecond, func() {
		h.conn.Receiver().PauseReading(300 * time.Millisecond)
	})
	m := h.run(t)
	if !m.Done {
		t.Fatal("transfer did not complete")
	}
	if m.Receiver.ZeroWindowAcks == 0 {
		t.Error("expected zero-window advertisements with a tiny slow-drained buffer")
	}
	if m.Receiver.BytesReceived < 50_000 {
		t.Errorf("received %d bytes", m.Receiver.BytesReceived)
	}
}

func TestDelayedAckSingleSegment(t *testing.T) {
	// A 1-segment response: the client must hold the ACK for the
	// delayed-ACK timer, then release it.
	h := newHarness(6, oneReq(500), withConn(func(c *ConnConfig) {
		c.Receiver.DelAckDelay = 100 * time.Millisecond
	}))
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete")
	}
	// Latency = req(20) + data(20) + delack(100) + ack(20) ≈ 160ms.
	lat := m.FlowLatency()
	if lat < 150*time.Millisecond || lat > 200*time.Millisecond {
		t.Errorf("latency = %v, want ≈160ms (delayed ACK)", lat)
	}
	if m.Sender.RTOFirings != 0 {
		t.Error("delayed ack below RTO must not cause retransmission")
	}
}

func TestAckDelayBeyondRTOCausesSpuriousRetrans(t *testing.T) {
	// Delayed-ACK (500ms) far above min-RTO: once the SRTT is
	// established (RTO ≈ 200ms floor), an odd tail segment whose ACK
	// the client holds for 500ms forces a spurious timeout
	// retransmission, which the client DSACKs. 15 segments ensure an
	// odd tail arrival.
	h := newHarness(7, oneReq(15*1460), withConn(func(c *ConnConfig) {
		c.Receiver.DelAckDelay = 500 * time.Millisecond
	}))
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete")
	}
	if m.Sender.RTOFirings == 0 {
		t.Error("500ms delack must beat the RTO")
	}
	if m.Receiver.DSACKsSent == 0 {
		t.Error("client should have DSACKed the spurious retransmission")
	}
	if m.Sender.SpuriousRetrans == 0 {
		t.Error("sender should have counted a spurious retransmission via DSACK")
	}
}

func TestMultipleRequestsClientIdle(t *testing.T) {
	reqs := []Request{
		{Size: 20_000},
		{IdleBefore: 300 * time.Millisecond, Size: 20_000},
		{IdleBefore: 500 * time.Millisecond, Size: 20_000},
	}
	h := newHarness(8, reqs)
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete")
	}
	if len(m.RequestSentAt) != 3 || len(m.RequestDoneAt) != 3 {
		t.Fatalf("request bookkeeping: %d/%d", len(m.RequestSentAt), len(m.RequestDoneAt))
	}
	if m.BytesServed != 60_000 {
		t.Errorf("served %d bytes", m.BytesServed)
	}
	// Idle gaps must show up between request completions. The gap
	// seen at the server is the 300ms think time minus the ACK's
	// travel (~20ms) and any delayed-ACK holdback (~40ms).
	gap := m.RequestSentAt[1].Sub(m.RequestDoneAt[0])
	if gap < 200*time.Millisecond {
		t.Errorf("idle gap before request 2 = %v, want ≥ ~240ms", gap)
	}
}

func TestDataUnavailableHeadDelay(t *testing.T) {
	h := newHarness(9, []Request{{Size: 10_000, HeadDelay: 400 * time.Millisecond}})
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete")
	}
	if lat := m.FlowLatency(); lat < 400*time.Millisecond {
		t.Errorf("latency %v should include the 400ms head delay", lat)
	}
}

func TestResourceConstraintPause(t *testing.T) {
	h := newHarness(10, []Request{{
		Size:   30_000,
		Pauses: []AppPause{{AfterBytes: 10_000, Duration: 300 * time.Millisecond}},
	}})
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete")
	}
	if lat := m.FlowLatency(); lat < 300*time.Millisecond {
		t.Errorf("latency %v should include the 300ms pause", lat)
	}
	if m.Receiver.BytesReceived < 30_000 {
		t.Errorf("received %d", m.Receiver.BytesReceived)
	}
}

func TestRequestLossClientRetransmits(t *testing.T) {
	// Uplink drop of the first request (packet index: SYN=0,
	// handshake-ACK=1, request=2).
	h := newHarness(11, oneReq(5000), withUpLoss(netem.DropList(2)))
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete despite client request retransmission")
	}
}

func TestSYNLossHandshakeRetry(t *testing.T) {
	h := newHarness(12, oneReq(5000), withUpLoss(netem.DropList(0)))
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete")
	}
	// SYN retransmitted after ~1s: established ≈ 1s + 40ms.
	if m.EstablishedAt < sim.Time(time.Second) {
		t.Errorf("established at %v, want ≥1s (SYN retry)", m.EstablishedAt)
	}
}

func TestAckLossTolerated(t *testing.T) {
	// Heavy ACK loss on the uplink: cumulative ACKs cover the gaps.
	h := newHarness(13, oneReq(100_000), withUpLoss(netem.Bernoulli{P: 0.2}))
	m := h.run(t)
	if !m.Done {
		t.Fatal("did not complete under 20% ACK loss")
	}
	if m.Receiver.BytesReceived < 100_000 {
		t.Errorf("received %d", m.Receiver.BytesReceived)
	}
}

func TestTraceRecordsBothDirections(t *testing.T) {
	h := newHarness(14, oneReq(10_000))
	h.run(t)
	var in, out, syn, data int
	for _, r := range h.sink.recs {
		switch r.dir {
		case DirIn:
			in++
		case DirOut:
			out++
		}
		if r.seg.Flags.Has(packet.FlagSYN) {
			syn++
		}
		if r.dir == DirOut && r.seg.Len > 0 {
			data++
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("trace in=%d out=%d", in, out)
	}
	if syn < 2 {
		t.Errorf("handshake records = %d, want SYN + SYN-ACK", syn)
	}
	if want := (10_000 + 1459) / 1460; data != want {
		t.Errorf("data records = %d, want %d", data, want)
	}
}

func TestReproducibility(t *testing.T) {
	run := func() (time.Duration, int, int) {
		h := newHarness(99, oneReq(500_000), withDownLoss(netem.Bernoulli{P: 0.03}))
		m := h.run(t)
		return m.FlowLatency(), m.Sender.Retransmissions, len(h.sink.recs)
	}
	l1, r1, n1 := run()
	l2, r2, n2 := run()
	if l1 != l2 || r1 != r2 || n1 != n2 {
		t.Errorf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)", l1, r1, n1, l2, r2, n2)
	}
}

func TestCwndGrowsInSlowStart(t *testing.T) {
	h := newHarness(15, oneReq(300_000))
	snd := h.conn.Sender()
	h.run(t)
	if snd.Cwnd() <= DefaultSenderConfig().InitCwnd {
		t.Errorf("cwnd = %d never grew beyond IW", snd.Cwnd())
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	// Black-hole the downlink after the handshake: successive RTO
	// firings must be spaced exponentially.
	h := newHarness(16, oneReq(1460), withConn(func(c *ConnConfig) {
		c.Deadline = 30 * time.Second
	}))
	dropAll := false
	inner := h.conn.snd.Output
	var firings []sim.Time
	h.conn.snd.Output = func(seg *Segment) {
		if dropAll && seg.Len > 0 {
			firings = append(firings, h.sim.Now())
			return
		}
		inner(seg)
	}
	h.sim.Schedule(30*time.Millisecond, func() { dropAll = true })
	h.conn.Start()
	h.sim.Run()
	if len(firings) < 4 {
		t.Fatalf("only %d retransmissions seen", len(firings))
	}
	g1 := firings[2].Sub(firings[1])
	g2 := firings[3].Sub(firings[2])
	if g2 < g1*3/2 {
		t.Errorf("backoff gaps %v then %v: not exponential", g1, g2)
	}
}

func TestEquation1Invariant(t *testing.T) {
	// in_flight per Equation 1 stays within [0, cwnd+dupthresh] and
	// the counters never go negative across a lossy transfer.
	h := newHarness(17, oneReq(400_000), withDownLoss(netem.Bernoulli{P: 0.05}))
	snd := h.conn.Sender()
	bad := 0
	inner := h.conn.snd.Output
	h.conn.snd.Output = func(seg *Segment) {
		sacked, lost, retrans := snd.counters()
		if sacked < 0 || lost < 0 || retrans < 0 {
			bad++
		}
		if snd.PacketsOut() < 0 {
			bad++
		}
		inner(seg)
	}
	h.conn.Start()
	h.sim.Run()
	if bad != 0 {
		t.Errorf("%d invariant violations", bad)
	}
	if !h.conn.Metrics().Done {
		t.Fatal("did not complete")
	}
}

// Property: transfers complete and deliver exactly the written bytes
// under arbitrary loss rates up to 15% in both directions.
func TestPropertyLossyTransferCompletes(t *testing.T) {
	f := func(seed int64, sizeK uint16, lossDownPct, lossUpPct uint8) bool {
		size := int64(sizeK%512)*1000 + 1 // 1 B .. 512 KB
		pd := float64(lossDownPct%16) / 100
		pu := float64(lossUpPct%16) / 100
		h := newHarness(seed, oneReq(size),
			withDownLoss(netem.Bernoulli{P: pd}),
			withUpLoss(netem.Bernoulli{P: pu}),
			withConn(func(c *ConnConfig) { c.Deadline = 280 * time.Second }))
		m := h.run(t)
		if !m.Done {
			return false
		}
		return h.conn.deliveredSz == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEarlyRetransmitLowersThreshold(t *testing.T) {
	// 2-segment flow, drop the first: without ER this needs an RTO
	// (only 1 dupack possible); with ER the single dupack triggers
	// fast retransmit.
	run := func(er bool) SenderStats {
		h := newHarness(18, oneReq(2*1460), withDownLoss(netem.DropList(2)),
			withConn(func(c *ConnConfig) { c.Sender.EarlyRetransmit = er }))
		m := h.run(t)
		if !m.Done {
			t.Fatal("did not complete")
		}
		return m.Sender
	}
	without := run(false)
	if without.RTOFirings == 0 {
		t.Error("without ER: expected RTO")
	}
	with := run(true)
	if with.RTOFirings != 0 {
		t.Errorf("with ER: RTO fired %d times, want fast retransmit", with.RTOFirings)
	}
	if with.FastRetransmits == 0 {
		t.Error("with ER: no fast retransmit")
	}
}

func TestReorderingAdaptiveDupThresh(t *testing.T) {
	// A lossless but reordering path: with the adaptive threshold the
	// sender should produce far fewer spurious retransmissions than
	// with the fixed threshold of 3.
	run := func(adapt bool) int {
		s := sim.New()
		rng := sim.NewRNG(42)
		down := netem.New(s, rng, netem.Config{
			Delay: 20 * time.Millisecond, ReorderProb: 0.08,
			ReorderExtra: 15 * time.Millisecond,
		})
		up := netem.New(s, rng, netem.Config{Delay: 20 * time.Millisecond})
		cfg := ConnConfig{
			Sender:   DefaultSenderConfig(),
			Receiver: DefaultReceiverConfig(),
			Requests: oneReq(600_000),
		}
		cfg.Sender.AdaptDupThresh = adapt
		conn := NewLinkedConn(s, cfg, down, up, nil)
		conn.Start()
		s.Run()
		if !conn.Metrics().Done {
			t.Fatal("did not complete")
		}
		return conn.Metrics().Sender.Retransmissions
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive > fixed {
		t.Errorf("adaptive dupthres retransmitted more (%d) than fixed (%d)", adaptive, fixed)
	}
}

func TestSenderPanicsWithoutOutput(t *testing.T) {
	s := sim.New()
	snd := NewSender(s, DefaultSenderConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	snd.Write(100)
}

func TestWriteAfterClosePanics(t *testing.T) {
	s := sim.New()
	snd := NewSender(s, DefaultSenderConfig(), 1)
	snd.Output = func(*Segment) {}
	snd.Close()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	snd.Write(1)
}

func TestSegmentHelpers(t *testing.T) {
	s := Segment{Flags: packet.FlagSYN, Seq: 0}
	if s.End() != 1 {
		t.Errorf("SYN End = %d", s.End())
	}
	d := Segment{Flags: packet.FlagACK, Seq: 100, Len: 50}
	if d.End() != 150 {
		t.Errorf("data End = %d", d.End())
	}
	if d.WireSize() != 14+20+20+50 {
		t.Errorf("WireSize = %d", d.WireSize())
	}
	withSack := Segment{SACK: packet.SACKBlocks(packet.SACKBlock{Left: 1, Right: 2})}
	if withSack.WireSize() <= 54 {
		t.Errorf("SACK wire size = %d", withSack.WireSize())
	}
	if DirOut.String() != "out" || DirIn.String() != "in" {
		t.Error("Dir strings")
	}
	if StateOpen.String() != "Open" || StateLoss.String() != "Loss" ||
		StateDisorder.String() != "Disorder" || StateRecovery.String() != "Recovery" {
		t.Error("state strings")
	}
}
