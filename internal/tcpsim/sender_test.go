package tcpsim

import (
	"testing"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
)

// senderRig wires a sender to a capture buffer with no network: the
// test plays the client by calling HandleAck directly.
type senderRig struct {
	sim  *sim.Simulator
	snd  *Sender
	sent []Segment
}

func newSenderRig(cfg SenderConfig) *senderRig {
	s := sim.New()
	r := &senderRig{sim: s, snd: NewSender(s, cfg, 1)}
	r.snd.Output = func(seg *Segment) {
		cp := *seg
		r.sent = append(r.sent, cp)
	}
	return r
}

// ackUpTo delivers a cumulative ACK for everything below seq.
func (r *senderRig) ackUpTo(seq uint32, wnd int) {
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: seq, Wnd: wnd})
}

// dupack delivers a duplicate ACK carrying one SACK block.
func (r *senderRig) dupack(ack uint32, wnd int, blocks ...packet.SACKBlock) {
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: ack, Wnd: wnd, SACK: packet.SACKBlocks(blocks...)})
}

func TestSenderWriteSegmentation(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(3000) // 1460 + 1460 + 80
	if got := len(r.sent); got != 3 {
		t.Fatalf("sent %d segments with IW=3, want 3", got)
	}
	if r.sent[0].Seq != 1 || r.sent[0].Len != 1460 {
		t.Errorf("seg0 = %+v", r.sent[0])
	}
	if r.sent[2].Len != 80 {
		t.Errorf("tail len = %d, want 80", r.sent[2].Len)
	}
	if r.snd.SndNxt() != 1+3000 {
		t.Errorf("SndNxt = %d", r.snd.SndNxt())
	}
}

func TestSenderTailCoalescing(t *testing.T) {
	// A short unsent tail segment absorbs a follow-up Write.
	cfg := DefaultSenderConfig()
	cfg.InitCwnd = 0 // hold everything back
	r := newSenderRig(cfg)
	r.snd.Write(100)
	r.snd.Write(200)
	if r.snd.AvailableNewData() != true {
		t.Fatal("data should be pending")
	}
	// One coalesced 300-byte segment, not two tiny ones.
	if n := len(r.snd.segs); n != 1 {
		t.Fatalf("segments = %d, want 1 (coalesced)", n)
	}
	if r.snd.segs[0].len != 300 {
		t.Errorf("coalesced len = %d", r.snd.segs[0].len)
	}
}

func TestSenderCwndLimitsBurst(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.InitCwnd = 2
	r := newSenderRig(cfg)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(100_000)
	if len(r.sent) != 2 {
		t.Fatalf("IW=2 sent %d segments", len(r.sent))
	}
	// Each new cumulative ACK in slow start grows cwnd by 1 per
	// segment acked and releases more.
	r.ackUpTo(r.sent[1].Seq+uint32(r.sent[1].Len), 1<<20)
	// cwnd 2 → 4, nothing outstanding: 4 new segments.
	if len(r.sent) != 6 {
		t.Errorf("after first ACK sent total %d, want 6", len(r.sent))
	}
}

func TestSenderRwndLimits(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	// Peer advertises only 2 MSS.
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 2 * 1460})
	r.snd.Write(100_000)
	if len(r.sent) != 2 {
		t.Fatalf("rwnd 2 MSS: sent %d", len(r.sent))
	}
	if r.snd.PeerWindow() != 2*1460 {
		t.Errorf("PeerWindow = %d", r.snd.PeerWindow())
	}
}

func TestSenderZeroWindowProbing(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1460})
	r.snd.Write(10_000)
	if len(r.sent) != 1 {
		t.Fatalf("sent %d", len(r.sent))
	}
	// ACK closes the window entirely.
	r.ackUpTo(1461, 0)
	r.sim.RunFor(10 * time.Second)
	st := r.snd.Stats()
	if st.ZeroWindowProbes == 0 {
		t.Fatal("no zero-window probes")
	}
	// Probes are out-of-window: seq = snd_una − 1.
	probe := r.sent[1]
	if probe.Len != 0 || probe.Seq != 1460 {
		t.Errorf("probe = %+v, want len 0 seq snd_una-1", probe)
	}
	// Window reopens: transmission resumes.
	before := len(r.sent)
	r.ackUpTo(1461, 1<<20)
	if len(r.sent) <= before {
		t.Error("no transmission after window update")
	}
}

func TestSenderFastRetransmitAtDupThresh(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(20 * 1460)
	firstEnd := uint32(1 + 1460)
	// Segment 1 (seq 1) is lost; SACKs arrive for segments above.
	r.dupack(1, 1<<20, packet.SACKBlock{Left: firstEnd, Right: firstEnd + 1460})
	if r.snd.State() != StateDisorder {
		t.Fatalf("after 1 dupack state = %v", r.snd.State())
	}
	r.dupack(1, 1<<20, packet.SACKBlock{Left: firstEnd, Right: firstEnd + 2*1460})
	if r.snd.State() != StateDisorder {
		t.Fatalf("after 2 dupacks state = %v", r.snd.State())
	}
	countBefore := r.snd.Stats().FastRetransmits
	r.dupack(1, 1<<20, packet.SACKBlock{Left: firstEnd, Right: firstEnd + 3*1460})
	if r.snd.State() != StateRecovery {
		t.Fatalf("after 3 dupacks state = %v, want Recovery", r.snd.State())
	}
	if r.snd.Stats().FastRetransmits != countBefore+1 {
		t.Errorf("fast retransmits = %d", r.snd.Stats().FastRetransmits)
	}
	// The retransmission is of the head segment.
	last := r.sent[len(r.sent)-1]
	found := false
	for i := len(r.sent) - 1; i >= 0; i-- {
		if r.sent[i].Seq == 1 && r.sent[i].Len == 1460 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("head not retransmitted; last sent %+v", last)
	}
}

func TestSenderLimitedTransmit(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.InitCwnd = 4
	r := newSenderRig(cfg)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(40 * 1460)
	sentBefore := len(r.sent) // 4 (IW)
	// First dupack → limited transmit sends 1 new segment.
	r.dupack(1, 1<<20, packet.SACKBlock{Left: 1461, Right: 2921})
	if len(r.sent) != sentBefore+1 {
		t.Errorf("after dupack 1: sent %d, want %d", len(r.sent), sentBefore+1)
	}
	newest := r.sent[len(r.sent)-1]
	if newest.Seq <= r.sent[sentBefore-1].Seq {
		t.Error("limited transmit should send NEW data")
	}
}

func TestSenderRTOFormulaKernelStyle(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	// Feed a stable 100ms RTT: RTO must converge to SRTT + 200ms
	// (variance term floored), not to the 200ms floor itself.
	for i := 0; i < 50; i++ {
		r.snd.SeedRTT(100 * time.Millisecond)
	}
	rto := r.snd.RTO()
	if rto < 290*time.Millisecond || rto > 320*time.Millisecond {
		t.Errorf("RTO = %v, want ≈300ms (SRTT+200ms)", rto)
	}
	if r.snd.SRTT() < 95*time.Millisecond || r.snd.SRTT() > 105*time.Millisecond {
		t.Errorf("SRTT = %v", r.snd.SRTT())
	}
	if r.snd.RTTSamples() != 50 {
		t.Errorf("RTTSamples = %d", r.snd.RTTSamples())
	}
}

func TestSenderRTOBackoffAndExpiry(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	r.snd.SeedRTT(50 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(1460)
	rto1 := r.snd.RTO()
	r.sim.RunFor(rto1 + time.Millisecond)
	if r.snd.Stats().RTOFirings != 1 {
		t.Fatalf("RTO firings = %d", r.snd.Stats().RTOFirings)
	}
	if r.snd.State() != StateLoss {
		t.Errorf("state = %v, want Loss", r.snd.State())
	}
	if r.snd.Cwnd() != 1 {
		t.Errorf("cwnd = %d, want 1", r.snd.Cwnd())
	}
	if r.snd.RTO() < 2*rto1 {
		t.Errorf("RTO after firing = %v, want ≥ 2×%v", r.snd.RTO(), rto1)
	}
	if !r.snd.FirstUnackedRTORetransmitted() {
		t.Error("head should be flagged RTO-retransmitted")
	}
}

func TestSenderDSACKUndo(t *testing.T) {
	// A spurious RTO (data delayed, not lost): the DSACK must restore
	// cwnd and return the state to Open.
	r := newSenderRig(DefaultSenderConfig())
	r.snd.SeedRTT(50 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(3 * 1460)
	r.ackUpTo(1461, 1<<20)
	cwndBefore := r.snd.Cwnd()
	// Let the timer expire exactly once (backoff retransmissions
	// would each need their own DSACK for the undo to engage).
	r.sim.RunFor(r.snd.RTO() + 5*time.Millisecond)
	if r.snd.State() != StateLoss {
		t.Fatalf("state = %v", r.snd.State())
	}
	if r.snd.Stats().RTOFirings != 1 {
		t.Fatalf("RTO firings = %d, want exactly 1", r.snd.Stats().RTOFirings)
	}
	// Late ACK covers everything and DSACKs the spurious copy.
	r.snd.HandleAck(&Segment{
		Flags: packet.FlagACK, Ack: 1 + 3*1460, Wnd: 1 << 20,
		SACK: packet.SACKBlocks(packet.SACKBlock{Left: 1461, Right: 2921}), // below ack ⇒ DSACK
	})
	if r.snd.Stats().SpuriousRetrans == 0 {
		t.Error("spurious retransmission not detected")
	}
	if r.snd.State() != StateOpen {
		t.Errorf("state = %v after undo, want Open", r.snd.State())
	}
	if r.snd.Cwnd() < cwndBefore {
		t.Errorf("cwnd = %d after undo, want ≥ %d", r.snd.Cwnd(), cwndBefore)
	}
}

func TestSenderRecoveryExitNeverRaisesCwnd(t *testing.T) {
	// Entering Recovery externally (S-RTO) leaves ssthresh at its
	// initial huge value; exiting must not explode cwnd.
	r := newSenderRig(DefaultSenderConfig())
	r.snd.SeedRTT(50 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(10 * 1460)
	r.snd.EnterRecoveryExternal()
	if r.snd.State() != StateRecovery {
		t.Fatal("not in recovery")
	}
	cwnd := r.snd.Cwnd()
	r.ackUpTo(1+10*1460, 1<<20)
	if r.snd.State() != StateOpen {
		t.Fatalf("state = %v", r.snd.State())
	}
	if r.snd.Cwnd() > cwnd+10 {
		t.Errorf("cwnd exploded on recovery exit: %d → %d", cwnd, r.snd.Cwnd())
	}
}

func TestSenderEquation1Accessors(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(5 * 1460)
	if r.snd.PacketsOut() != 3 { // IW
		t.Fatalf("PacketsOut = %d", r.snd.PacketsOut())
	}
	if r.snd.InFlight() != 3 {
		t.Errorf("InFlight = %d", r.snd.InFlight())
	}
	// SACK one: in_flight drops, packets_out unchanged.
	r.dupack(1, 1<<20, packet.SACKBlock{Left: 1461, Right: 2921})
	if r.snd.PacketsOut() < 3 {
		t.Errorf("PacketsOut = %d after SACK", r.snd.PacketsOut())
	}
	if r.snd.InFlight() >= r.snd.PacketsOut() {
		t.Errorf("InFlight %d should be below PacketsOut %d after SACK",
			r.snd.InFlight(), r.snd.PacketsOut())
	}
	if !r.snd.HasOutstanding() {
		t.Error("HasOutstanding")
	}
	if r.snd.SndUna() != 1 {
		t.Errorf("SndUna = %d", r.snd.SndUna())
	}
}

func TestSenderAdaptiveDupThresh(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.InitCwnd = 10
	r := newSenderRig(cfg)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(10 * 1460)
	// SACK segments 4..8 first, then segment 1 arrives late (SACKed):
	// reordering extent ≥ 3 should raise dupThresh above 3.
	r.dupack(1, 1<<20, packet.SACKBlock{Left: 1 + 3*1460, Right: 1 + 8*1460})
	before := r.snd.dupThresh
	r.dupack(1, 1<<20, packet.SACKBlock{Left: 1 + 1*1460, Right: 1 + 2*1460})
	if r.snd.dupThresh <= before && r.snd.dupThresh == 3 {
		t.Errorf("dupThresh = %d, want adapted above 3", r.snd.dupThresh)
	}
}

func TestSenderCloseAndAllAcked(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	done := false
	r.snd.OnAllAcked = func() { done = true }
	r.snd.Write(1000)
	r.snd.Close()
	if !r.snd.Closed() {
		t.Error("Closed() = false")
	}
	if r.snd.AllDataAcked() {
		t.Error("AllDataAcked before the ACK")
	}
	r.ackUpTo(1001, 1<<20)
	if !done {
		t.Error("OnAllAcked did not fire")
	}
	if !r.snd.AllDataAcked() {
		t.Error("AllDataAcked after the ACK")
	}
}

func TestSenderAccessorsMisc(t *testing.T) {
	r := newSenderRig(DefaultSenderConfig())
	if r.snd.Sim() != r.sim {
		t.Error("Sim()")
	}
	if r.snd.Config().MSS != 1460 {
		t.Error("Config()")
	}
	r.snd.SetCwnd(0)
	if r.snd.Cwnd() != 1 {
		t.Errorf("SetCwnd clamps to 1, got %d", r.snd.Cwnd())
	}
	r.snd.SetRecovery(nil) // resets to native; must not panic
	seg := Segment{Flags: packet.FlagACK, Seq: 9, Len: 5, Ack: 2, Wnd: 7}
	if seg.String() == "" {
		t.Error("Segment.String empty")
	}
	var nr NativeRecovery
	if nr.Name() != "linux" {
		t.Error("native recovery name")
	}
	nr.Attach(nil)
	nr.OnSent(false)
	nr.OnAck()
	nr.OnRTO()
}

func TestSenderMSSValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MSS=0 should panic")
		}
	}()
	NewSender(sim.New(), SenderConfig{}, 1)
}

func TestSenderPacingSpacesTransmissions(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.Pacing = true
	cfg.InitCwnd = 4
	r := newSenderRig(cfg)
	r.snd.SeedRTT(100 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})

	var sentAt []sim.Time
	inner := r.snd.Output
	r.snd.Output = func(seg *Segment) {
		sentAt = append(sentAt, r.sim.Now())
		inner(seg)
	}
	r.snd.Write(4 * 1460)
	// Stop before the (unacknowledged) RTO fires at ≈300ms.
	r.sim.RunFor(120 * time.Millisecond)
	if len(sentAt) != 4 {
		t.Fatalf("sent %d segments", len(sentAt))
	}
	// gap = SRTT/cwnd = 100ms/4 = 25ms between transmissions.
	for i := 1; i < len(sentAt); i++ {
		gap := sentAt[i].Sub(sentAt[i-1])
		if gap < 20*time.Millisecond || gap > 30*time.Millisecond {
			t.Errorf("pacing gap %d = %v, want ≈25ms", i, gap)
		}
	}
}

func TestSenderPacingCompletesTransfer(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.Pacing = true
	r := newSenderRig(cfg)
	r.snd.SeedRTT(40 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(50 * 1460)
	// Ack everything the pacer sends, repeatedly.
	for i := 0; i < 200; i++ {
		r.sim.RunFor(50 * time.Millisecond)
		if n := len(r.sent); n > 0 {
			last := r.sent[n-1]
			if last.Len > 0 {
				r.ackUpTo(last.Seq+uint32(last.Len), 1<<20)
			}
		}
		if r.snd.AllDataAcked() {
			break
		}
	}
	if !r.snd.AllDataAcked() {
		t.Fatal("paced transfer did not complete")
	}
}

func TestSenderSlowStartAfterIdle(t *testing.T) {
	cfg := DefaultSenderConfig()
	r := newSenderRig(cfg)
	r.snd.SeedRTT(50 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	// Grow the window with a first response.
	r.snd.Write(30 * 1460)
	for r.snd.HasOutstanding() {
		last := r.sent[len(r.sent)-1]
		r.sim.RunFor(10 * time.Millisecond)
		r.ackUpTo(last.Seq+uint32(last.Len), 1<<20)
	}
	grown := r.snd.Cwnd()
	if grown <= DefaultSenderConfig().InitCwnd {
		t.Fatalf("cwnd did not grow: %d", grown)
	}
	// Idle well past the RTO, then serve another response: the
	// window must restart from IW.
	r.sim.RunFor(5 * time.Second)
	before := len(r.sent)
	r.snd.Write(20 * 1460)
	burst := len(r.sent) - before
	if burst != DefaultSenderConfig().InitCwnd {
		t.Errorf("burst after idle = %d segments, want IW=%d", burst, DefaultSenderConfig().InitCwnd)
	}
}

func TestSenderNoIdleRestartWhenDisabled(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.SlowStartAfterIdle = false
	r := newSenderRig(cfg)
	r.snd.SeedRTT(50 * time.Millisecond)
	r.snd.HandleAck(&Segment{Flags: packet.FlagACK, Ack: 1, Wnd: 1 << 20})
	r.snd.Write(30 * 1460)
	for r.snd.HasOutstanding() {
		last := r.sent[len(r.sent)-1]
		r.sim.RunFor(10 * time.Millisecond)
		r.ackUpTo(last.Seq+uint32(last.Len), 1<<20)
	}
	grown := r.snd.Cwnd()
	r.sim.RunFor(5 * time.Second)
	before := len(r.sent)
	r.snd.Write(40 * 1460)
	burst := len(r.sent) - before
	if burst < grown {
		t.Errorf("burst after idle = %d, want the grown window %d", burst, grown)
	}
}
