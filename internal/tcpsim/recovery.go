package tcpsim

// Recovery is the pluggable loss-recovery strategy interface. The
// paper's evaluation switches the production servers between native
// Linux, TLP and S-RTO via sysctl; here a strategy attaches to a
// Sender and observes its transmissions, ACKs and timeouts, arming
// its own probe timers and driving retransmissions through the
// Sender's exported probe methods.
type Recovery interface {
	// Name identifies the strategy in reports.
	Name() string
	// Attach binds the strategy to its sender. Called once, by
	// Sender.SetRecovery.
	Attach(s *Sender)
	// OnSent fires after every data transmission.
	OnSent(isRetrans bool)
	// OnAck fires after every processed incoming ACK.
	OnAck()
	// OnRTO fires after a retransmission timeout was handled.
	OnRTO()
}

// NativeRecovery is the do-nothing strategy: plain RFC 6298 + fast
// retransmit, exactly what the paper's unmodified servers ran.
type NativeRecovery struct{}

// Name implements Recovery.
func (NativeRecovery) Name() string { return "linux" }

// Attach implements Recovery.
func (NativeRecovery) Attach(*Sender) {}

// OnSent implements Recovery.
func (NativeRecovery) OnSent(bool) {}

// OnAck implements Recovery.
func (NativeRecovery) OnAck() {}

// OnRTO implements Recovery.
func (NativeRecovery) OnRTO() {}
