package tcpsim

import (
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/seqspace"
	"tcpstall/internal/sim"
)

// SenderConfig parameterizes the server-side TCP sender.
type SenderConfig struct {
	// MSS is the maximum segment size in bytes.
	MSS int
	// InitCwnd is the initial congestion window in segments
	// (Linux 2.6.32 used 3).
	InitCwnd int
	// MinRTO, MaxRTO and InitRTO bound the retransmission timer
	// (RFC 6298 with the Linux 200ms floor).
	MinRTO  time.Duration
	MaxRTO  time.Duration
	InitRTO time.Duration
	// DupThresh is the initial fast-retransmit duplicate-ACK
	// threshold.
	DupThresh int
	// AdaptDupThresh raises the threshold to the largest observed
	// reordering extent, as the Linux stack does.
	AdaptDupThresh bool
	// LimitedTransmit sends one new segment for each of the first
	// two dupacks (RFC 3042).
	LimitedTransmit bool
	// EarlyRetransmit lowers the dupack threshold to
	// outstanding−1 when fewer than 4 segments are outstanding and
	// there is no new data to send (RFC 5827). Off in the paper's
	// 2.6.32 kernel.
	EarlyRetransmit bool
	// SlowStartAfterIdle restarts the congestion window from
	// InitCwnd when the sender has been idle longer than one RTO
	// (RFC 2861 / tcp_slow_start_after_idle=1, the 2.6.32 default).
	// Shared cloud-storage connections idle between requests, so
	// every response after think time begins at IW — the origin of
	// many of the paper's small-cwnd stalls.
	SlowStartAfterIdle bool
	// Pacing spreads a window's transmissions across the RTT
	// (gap = SRTT/cwnd) instead of sending back-to-back bursts — the
	// Section-4.3 suggestion for mitigating continuous-loss stalls
	// at shallow bottleneck queues.
	Pacing bool
	// CC selects the congestion-avoidance algorithm (nil = Reno).
	// The paper's kernel defaulted to CUBIC; the evaluation here uses
	// Reno-style avoidance, matching the Section 3.1 description the
	// classifier mimics. CUBIC is available for ablations.
	CC CongestionControl
}

// DefaultSenderConfig mirrors the paper's production kernel.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{
		MSS:                1460,
		InitCwnd:           3,
		MinRTO:             200 * time.Millisecond,
		MaxRTO:             120 * time.Second,
		InitRTO:            time.Second,
		DupThresh:          3,
		AdaptDupThresh:     true,
		LimitedTransmit:    true,
		SlowStartAfterIdle: true,
	}
}

// SenderStats counts sender-side events for the evaluation tables.
type SenderStats struct {
	DataSegmentsSent int // includes retransmissions
	Retransmissions  int
	FastRetransmits  int
	RTORetransmits   int
	ProbeRetransmits int // strategy-driven (TLP / S-RTO)
	RTOFirings       int
	SpuriousRetrans  int // detected via DSACK
	ZeroWindowProbes int
	EnteredRecovery  int
	EnteredLoss      int
}

// sndSeg is one scoreboard entry. The flag semantics mirror the Linux
// skb marks: lost stays set across a retransmission (the original
// copy is still gone); retransOut marks that a retransmitted copy is
// in the network. A segment whose retransmission is itself dropped
// can only be recovered by the RTO — the mechanism behind the paper's
// f-double stalls (Figure 9).
type sndSeg struct {
	seq        uint64 // unwrapped stream offset; uint32(seq) is the wire value
	len        int
	acked      bool
	sacked     bool
	lost       bool
	retransOut bool // a retransmission is outstanding
	retrans    int  // times retransmitted
	rtoRetrans bool
	everSent   bool
	sentAt     sim.Time
	firstSent  sim.Time
}

func (g *sndSeg) end() uint64 { return g.seq + uint64(g.len) }

// Sender is the server-side TCP data sender. The application feeds it
// bytes with Write/Close; the connection wires Output to the downlink
// path and calls HandleAck for every arriving client segment.
type Sender struct {
	sm  *sim.Simulator
	cfg SenderConfig

	// Output transmits a segment (set by the connection). The
	// connection stamps Ack/Wnd before putting it on the wire.
	Output func(seg *Segment)

	// OnAllAcked, if set, fires once when every written byte has
	// been cumulatively acknowledged and the stream is closed.
	OnAllAcked func()

	// base is the unwrapped offset of data byte 0 (wire value ISN+1).
	// All scoreboard offsets are unwrapped uint64 so comparisons stay
	// correct across 2^32 wraps; ackU maps incoming wire values into
	// the same space.
	base   uint64
	ackU   seqspace.Unwrapper
	segs   []sndSeg
	unaIdx int   // index of first un-cumulatively-acked segment
	nxtIdx int   // index of next never-sent segment
	avail  int64 // bytes the app has provided
	closed bool

	rwnd        int // peer's advertised window, bytes
	maxAckSeen  uint64
	cwnd        float64
	ssthresh    float64
	state       CongState
	dupacks     int
	dupThresh   int
	recoverSeq  uint64 // snd_nxt at recovery/loss entry (unwrapped)
	prrOut      int    // ACKs seen in recovery (rate-halving counter)
	targetCwnd  float64
	maxReorder  int
	rtoSRTT     time.Duration // srtt per RFC 6298
	rttvar      time.Duration
	rto         time.Duration
	hasRTT      bool
	rttSamples  int
	rtoBackoffN int

	rtoTimer     *sim.Timer
	persistTimer *sim.Timer
	paceTimer    *sim.Timer
	persistN     int
	lastSendAt   sim.Time

	// DSACK undo state (tcp_try_undo_recovery): when every
	// retransmission of the current episode is reported duplicate by
	// DSACKs, the congestion reduction is reverted.
	undoRetrans   int
	priorCwnd     float64
	priorSsthresh float64
	inEpisode     bool

	recovery Recovery
	cc       CongestionControl

	truth TruthSink // optional ground-truth event sink

	stats SenderStats
}

// NewSender builds a sender on the simulator. startSeq is the stream
// offset of the first data byte (1 when a SYN consumed offset 0).
func NewSender(s *sim.Simulator, cfg SenderConfig, startSeq uint32) *Sender {
	if cfg.MSS <= 0 {
		panic("tcpsim: MSS must be positive")
	}
	cc := cfg.CC
	if cc == nil {
		cc = RenoCC{}
	}
	snd := &Sender{
		sm:        s,
		cfg:       cfg,
		cc:        cc,
		rwnd:      cfg.MSS, // until the first ACK tells us better
		cwnd:      float64(cfg.InitCwnd),
		ssthresh:  1 << 30,
		dupThresh: cfg.DupThresh,
		rto:       cfg.InitRTO,
		recovery:  NativeRecovery{},
	}
	// Seeding the unwrapper at startSeq anchors base and every
	// incoming ACK/SACK edge in the same unwrapped space.
	snd.base = snd.ackU.Unwrap(startSeq)
	snd.rtoTimer = sim.NewTimer(s, snd.onRTO)
	snd.persistTimer = sim.NewTimer(s, snd.onPersist)
	return snd
}

// SetRecovery installs a loss-recovery strategy (TLP, S-RTO, …).
// Call before any data is written.
func (s *Sender) SetRecovery(r Recovery) {
	if r == nil {
		r = NativeRecovery{}
	}
	s.recovery = r
	r.Attach(s)
}

// --- accessors used by strategies, the connection and tests ---

// Sim returns the simulator the sender runs on.
func (s *Sender) Sim() *sim.Simulator { return s.sm }

// Config returns the sender configuration.
func (s *Sender) Config() SenderConfig { return s.cfg }

// Stats returns a copy of the counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// State reports the congestion-avoidance state.
func (s *Sender) State() CongState { return s.state }

// Cwnd reports the congestion window in whole segments.
func (s *Sender) Cwnd() int { return int(s.cwnd) }

// SetCwnd overrides the congestion window (strategy use).
func (s *Sender) SetCwnd(c int) {
	if c < 1 {
		c = 1
	}
	s.cwnd = float64(c)
}

// EnterRecoveryExternal forces the Recovery state without a
// retransmission (S-RTO's state adjustment).
func (s *Sender) EnterRecoveryExternal() {
	if s.state != StateRecovery {
		s.beginEpisode()
		s.state = StateRecovery
		s.recoverSeq = s.sndNxt64()
		// The strategy manages its own window reduction (Algorithm 1
		// halves cwnd at most once); disable rate-halving for this
		// episode by aiming it at the current window.
		s.targetCwnd = s.cwnd
		s.stats.EnteredRecovery++
	}
}

// SetEarlyRetransmit toggles RFC 5827 behaviour at runtime (strategy
// use).
func (s *Sender) SetEarlyRetransmit(on bool) { s.cfg.EarlyRetransmit = on }

// SRTT reports the smoothed RTT (0 before the first sample).
func (s *Sender) SRTT() time.Duration { return s.rtoSRTT }

// RTTSamples reports how many RTT measurements have fed the
// estimator. Probe-based strategies use it as a warmup guard: a
// 2·SRTT timer armed off a single (possibly lucky) handshake sample
// fires spuriously on jittery paths.
func (s *Sender) RTTSamples() int { return s.rttSamples }

// RTO reports the current retransmission timeout.
func (s *Sender) RTO() time.Duration { return s.rto }

// SndUna reports the first unacknowledged stream byte as a wire
// sequence number.
func (s *Sender) SndUna() uint32 { return uint32(s.sndUna64()) }

// sndUna64 is the first unacknowledged byte's unwrapped offset.
func (s *Sender) sndUna64() uint64 {
	if s.unaIdx < len(s.segs) {
		return s.segs[s.unaIdx].seq
	}
	return s.sndNxt64()
}

// sndNxt64 is the next new stream byte's unwrapped offset.
func (s *Sender) sndNxt64() uint64 {
	if s.nxtIdx < len(s.segs) {
		return s.segs[s.nxtIdx].seq
	}
	if n := len(s.segs); n > 0 {
		return s.segs[n-1].end()
	}
	return s.base
}

// SndNxt reports the next new stream byte as a wire sequence number.
func (s *Sender) SndNxt() uint32 { return uint32(s.sndNxt64()) }

// PacketsOut reports snd_nxt − snd_una in segments (the kernel's
// packets_out).
func (s *Sender) PacketsOut() int { return s.nxtIdx - s.unaIdx }

// counters scans the outstanding window and reports the kernel's
// bookkeeping variables.
func (s *Sender) counters() (sackedOut, lostOut, retransOut int) {
	for i := s.unaIdx; i < s.nxtIdx; i++ {
		g := &s.segs[i]
		if g.acked || g.sacked {
			if g.sacked && !g.acked {
				sackedOut++
			}
			continue
		}
		if g.lost {
			lostOut++
		}
		if g.retransOut {
			retransOut++
		}
	}
	return
}

// InFlight evaluates Equation 1 of the paper:
// in_flight = packets_out + retrans_out − (sacked_out + lost_out).
func (s *Sender) InFlight() int {
	sacked, lost, retrans := s.counters()
	fl := s.PacketsOut() + retrans - sacked - lost
	if fl < 0 {
		fl = 0
	}
	return fl
}

// HasOutstanding reports whether any sent data awaits cumulative ACK.
func (s *Sender) HasOutstanding() bool { return s.unaIdx < s.nxtIdx }

// AvailableNewData reports whether unsent application data exists
// (Write segments eagerly, so the scoreboard is the whole truth).
func (s *Sender) AvailableNewData() bool {
	return s.nxtIdx < len(s.segs)
}

// FirstUnackedRTORetransmitted reports whether the first
// unacknowledged segment has already been retransmitted by the native
// RTO (S-RTO's activation guard).
func (s *Sender) FirstUnackedRTORetransmitted() bool {
	if s.unaIdx >= s.nxtIdx {
		return false
	}
	return s.segs[s.unaIdx].rtoRetrans
}

// PeerWindow reports the last advertised receive window in bytes.
func (s *Sender) PeerWindow() int { return s.rwnd }

// AllDataAcked reports whether every written byte is cumulatively
// acknowledged.
func (s *Sender) AllDataAcked() bool {
	return s.unaIdx == len(s.segs) && s.avail == s.segmentedBytes()
}

func (s *Sender) segmentedBytes() int64 {
	var n int64
	for i := range s.segs {
		n += int64(s.segs[i].len)
	}
	return n
}

// Closed reports whether the application closed the stream.
func (s *Sender) Closed() bool { return s.closed }

// --- application interface ---

// Write makes n more bytes available for transmission, segmenting
// them at MSS. It triggers transmission immediately if the window
// allows.
func (s *Sender) Write(n int64) {
	if s.closed {
		panic("tcpsim: Write after Close")
	}
	for n > 0 {
		l := int64(s.cfg.MSS)
		// Coalesce the tail into the previous segment if it was
		// never sent and is short (mimics filling a partial segment).
		if last := len(s.segs) - 1; last >= s.nxtIdx && last >= 0 && s.segs[last].len < s.cfg.MSS {
			room := int64(s.cfg.MSS - s.segs[last].len)
			if room > n {
				room = n
			}
			s.segs[last].len += int(room)
			// Shift nothing: this is the final segment so far.
			n -= room
			s.avail += room
			continue
		}
		if l > n {
			l = n
		}
		seq := s.base
		if len(s.segs) > 0 {
			seq = s.segs[len(s.segs)-1].end()
		}
		s.segs = append(s.segs, sndSeg{seq: seq, len: int(l)})
		s.avail += l
		n -= l
	}
	s.trySend()
}

// Close marks the end of the stream; OnAllAcked fires once the last
// byte is acknowledged.
func (s *Sender) Close() {
	s.closed = true
	s.maybeFinish()
}

func (s *Sender) maybeFinish() {
	if s.closed && s.unaIdx == len(s.segs) {
		s.rtoTimer.Stop()
		s.persistTimer.Stop()
		if s.OnAllAcked != nil {
			cb := s.OnAllAcked
			s.OnAllAcked = nil
			cb()
		}
	}
}

// --- transmission ---

// usableWindowSegs reports how many more segments congestion control
// admits right now.
func (s *Sender) usableWindowSegs() int {
	return int(s.cwnd) - s.InFlight()
}

// rwndAllows reports whether the peer window admits sending a segment
// of length l at unwrapped stream offset seq.
func (s *Sender) rwndAllows(seq uint64, l int) bool {
	una := s.sndUna64()
	return int64(seq-una)+int64(l) <= int64(s.rwnd)
}

// sendOne transmits the single next eligible segment —
// retransmissions of lost segments first, then new data — and
// reports whether anything went out.
func (s *Sender) sendOne() bool {
	if s.usableWindowSegs() <= 0 {
		return false
	}
	// Retransmissions of lost segments take priority.
	if s.state == StateRecovery || s.state == StateLoss {
		if i := s.firstLostIdx(); i >= 0 {
			s.transmit(i, false)
			return true
		}
	}
	// New data.
	if s.nxtIdx < len(s.segs) {
		g := &s.segs[s.nxtIdx]
		if !s.rwndAllows(g.seq, g.len) {
			s.armPersistIfNeeded()
			return false
		}
		idx := s.nxtIdx
		s.nxtIdx++
		s.transmit(idx, false)
		return true
	}
	return false
}

// maybeIdleRestart applies RFC 2861: after an idle period longer
// than the RTO with nothing in flight (true application idleness, not
// a loss stall), the congestion window restarts from IW.
func (s *Sender) maybeIdleRestart() {
	if !s.cfg.SlowStartAfterIdle || s.state != StateOpen ||
		s.HasOutstanding() || s.lastSendAt == 0 {
		return
	}
	if s.sm.Now().Sub(s.lastSendAt) > s.rto && s.cwnd > float64(s.cfg.InitCwnd) {
		s.cwnd = float64(s.cfg.InitCwnd)
	}
}

// trySend transmits everything currently eligible (back-to-back), or
// hands off to the pacer when pacing is enabled.
func (s *Sender) trySend() {
	s.maybeIdleRestart()
	if s.cfg.Pacing && s.hasRTT {
		s.paceDrain()
		return
	}
	guard := 0
	for s.sendOne() {
		guard++
		if guard > 1<<20 {
			panic("tcpsim: trySend did not converge")
		}
	}
	if s.HasOutstanding() && !s.rtoTimer.Armed() {
		s.armRTO()
	}
}

// paceDrain sends one segment now and schedules the next after
// SRTT/cwnd, spacing the window across the round trip.
func (s *Sender) paceDrain() {
	if s.paceTimer == nil {
		s.paceTimer = sim.NewTimer(s.sm, s.paceDrain)
	}
	if s.paceTimer.Armed() {
		return // the pacer is already draining
	}
	sent := s.sendOne()
	if s.HasOutstanding() && !s.rtoTimer.Armed() {
		s.armRTO()
	}
	if !sent {
		return
	}
	cw := s.cwnd
	if cw < 1 {
		cw = 1
	}
	gap := time.Duration(float64(s.rtoSRTT) / cw)
	if gap < 100*time.Microsecond {
		gap = 100 * time.Microsecond
	}
	s.paceTimer.Reset(gap)
}

func (s *Sender) firstLostIdx() int {
	for i := s.unaIdx; i < s.nxtIdx; i++ {
		g := &s.segs[i]
		// A lost segment whose retransmission is still outstanding is
		// NOT retransmitted again — if that copy is dropped too, only
		// the RTO can recover it (the f-double stall of Figure 9).
		if g.lost && !g.acked && !g.sacked && !g.retransOut {
			return i
		}
	}
	return -1
}

// transmit puts segment i on the wire. probe marks strategy-driven
// retransmissions (TLP / S-RTO), which do not count as fast
// retransmits.
func (s *Sender) transmit(i int, probe bool) {
	g := &s.segs[i]
	isRetrans := g.everSent
	now := s.sm.Now()
	s.lastSendAt = now
	if !g.everSent {
		g.everSent = true
		g.firstSent = now
	} else {
		g.retrans++
		g.retransOut = true
		s.undoRetrans++
		s.stats.Retransmissions++
		if probe {
			s.stats.ProbeRetransmits++
		} else if s.state == StateLoss {
			s.stats.RTORetransmits++
		} else {
			s.stats.FastRetransmits++
		}
	}
	g.sentAt = now
	s.stats.DataSegmentsSent++
	seg := &Segment{
		Flags: packet.FlagACK | packet.FlagPSH,
		Seq:   uint32(g.seq),
		Len:   g.len,
		TSVal: now,
	}
	if s.Output == nil {
		panic("tcpsim: Sender.Output not set")
	}
	if isRetrans && s.truth != nil {
		s.truth.RetransSent(now, seg.Seq)
	}
	s.Output(seg)
	s.recovery.OnSent(isRetrans)
	if !s.rtoTimer.Armed() {
		s.armRTO()
	}
}

// ProbeRetransmitFirstUnacked retransmits snd_una's segment outside
// the normal recovery flow (S-RTO trigger, TLP probe of last
// segment). No cwnd or state change is made here.
func (s *Sender) ProbeRetransmitFirstUnacked() bool {
	if s.unaIdx >= s.nxtIdx {
		return false
	}
	s.transmit(s.unaIdx, true)
	return true
}

// ProbeSendNewOrLast implements the TLP probe: transmit one new
// segment if available and window-permitted, else retransmit the
// highest-sequence sent segment.
func (s *Sender) ProbeSendNewOrLast() bool {
	if s.nxtIdx < len(s.segs) {
		g := &s.segs[s.nxtIdx]
		if s.rwndAllows(g.seq, g.len) {
			idx := s.nxtIdx
			s.nxtIdx++
			s.transmit(idx, true)
			return true
		}
	}
	if s.nxtIdx > s.unaIdx {
		s.transmit(s.nxtIdx-1, true)
		return true
	}
	return false
}

// --- timers ---

func (s *Sender) armRTO() {
	s.rtoTimer.Reset(s.rto)
}

// RearmRTO restarts the retransmission timer at the current RTO
// (strategy use, mirroring TLP's PTO→RTO handover).
func (s *Sender) RearmRTO() { s.armRTO() }

// StopRTOTimer cancels the retransmission timer (strategy use when a
// probe timer replaces it).
func (s *Sender) StopRTOTimer() { s.rtoTimer.Stop() }

// RTOTimerArmed reports whether the retransmission timer is pending.
func (s *Sender) RTOTimerArmed() bool { return s.rtoTimer.Armed() }

func (s *Sender) onRTO() {
	if !s.HasOutstanding() {
		return
	}
	if s.truth != nil {
		s.truth.RTOFire(s.sm.Now())
	}
	s.stats.RTOFirings++
	s.stats.EnteredLoss++
	s.beginEpisode()
	// RFC 6298 5.5–5.7 + Linux tcp_enter_loss.
	fl := s.InFlight()
	if fl < 2 {
		fl = 2
	}
	s.ssthresh = s.cc.AfterLoss(s.cwnd, float64(fl), s.sm.Now())
	s.cwnd = 1
	s.state = StateLoss
	s.dupacks = 0
	s.prrOut = 0
	s.recoverSeq = s.sndNxt64()
	// Mark every outstanding non-SACKed segment lost, clearing the
	// retransmission-outstanding hint so they are retransmitted anew
	// (tcp_enter_loss semantics).
	for i := s.unaIdx; i < s.nxtIdx; i++ {
		g := &s.segs[i]
		if !g.acked && !g.sacked {
			g.lost = true
			g.retransOut = false
		}
	}
	// Retransmit the head segment with timer backoff.
	head := s.unaIdx
	s.segs[head].rtoRetrans = true
	s.transmit(head, false)
	s.rtoBackoffN++
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.armRTO()
	s.recovery.OnRTO()
}

func (s *Sender) armPersistIfNeeded() {
	if s.rwnd == 0 && !s.persistTimer.Armed() && s.nxtIdx < len(s.segs) {
		iv := s.rto << s.persistN
		if iv > s.cfg.MaxRTO {
			iv = s.cfg.MaxRTO
		}
		s.persistTimer.Reset(iv)
	}
}

func (s *Sender) onPersist() {
	if s.rwnd > 0 {
		return
	}
	// Zero-window probe: like Linux's tcp_xmit_probe_skb, an
	// out-of-window segment (seq = snd_una − 1) that the receiver
	// must answer with an ACK carrying the current window.
	s.stats.ZeroWindowProbes++
	seg := &Segment{Flags: packet.FlagACK, Seq: uint32(s.sndUna64() - 1), Len: 0, TSVal: s.sm.Now()}
	s.Output(seg)
	if s.persistN < 10 {
		s.persistN++
	}
	s.armPersistIfNeeded()
}

// --- ACK processing ---

// HandleAck processes an arriving client segment's acknowledgment
// fields (cumulative ACK, SACK blocks, advertised window).
func (s *Sender) HandleAck(seg *Segment) {
	prevRwnd := s.rwnd
	s.rwnd = seg.Wnd
	if prevRwnd == 0 && s.rwnd > 0 {
		s.persistTimer.Stop()
		s.persistN = 0
	}

	dsack, sackedNew := s.applySACK(seg)
	if dsack {
		s.stats.SpuriousRetrans++
		s.undoRetrans--
		s.maybeUndo()
	}

	ack := s.ackU.Unwrap(seg.Ack)
	switch {
	case ack > s.maxAckSeen:
		s.maxAckSeen = ack
		s.handleNewAck(ack, seg.TSEcr)
	case s.isDupAck(seg, ack, prevRwnd, sackedNew):
		s.handleDupAck(sackedNew)
	}

	s.updateLostMarks()
	if s.state == StateRecovery {
		s.rateHalve()
	}
	s.trySend()
	s.recovery.OnAck()
	s.maybeFinish()
}

// isDupAck mirrors the kernel's notion of a duplicate ACK: carries no
// data, does not advance snd_una, does not change the window, and
// arrives while data is outstanding. Both classic NewReno dupacks and
// SACK-bearing ACKs qualify (the paper folds both into "dupack").
func (s *Sender) isDupAck(seg *Segment, ack uint64, prevRwnd int, sackedNew bool) bool {
	if !s.HasOutstanding() {
		return false
	}
	if seg.Len != 0 || ack != s.maxAckSeen {
		return false
	}
	if seg.Wnd != prevRwnd && !sackedNew && seg.SACK.Len() == 0 {
		return false // pure window update
	}
	return true
}

// applySACK marks scoreboard entries from the segment's SACK blocks.
// It reports whether a DSACK was present and whether any new segment
// got SACKed.
func (s *Sender) applySACK(seg *Segment) (dsack, sackedNew bool) {
	blocks := seg.SACK.Slice()
	if len(blocks) == 0 {
		return false, false
	}
	// DSACK: first block at or below the cumulative ACK, or
	// contained in a later block (RFC 2883). Modular comparisons: the
	// blocks sit within one window of the ACK by construction.
	b0 := blocks[0]
	if seqspace.LessEq(b0.Right, seg.Ack) {
		dsack = true
	} else if len(blocks) > 1 && seqspace.LessEq(blocks[1].Left, b0.Left) &&
		seqspace.LessEq(b0.Right, blocks[1].Right) {
		dsack = true
	}
	for bi, b := range blocks {
		if dsack && bi == 0 {
			continue
		}
		// Unwrap the block edges into the scoreboard's offset space.
		left := s.ackU.Unwrap(b.Left)
		right := s.ackU.Unwrap(b.Right)
		for i := s.unaIdx; i < s.nxtIdx; i++ {
			g := &s.segs[i]
			if g.acked || g.sacked {
				continue
			}
			if g.seq >= left && g.end() <= right {
				g.sacked = true
				g.lost = false
				g.retransOut = false
				sackedNew = true
				// Reordering extent: a SACKed segment below a
				// previously SACKed/acked one indicates reordering.
				if ext := s.reorderExtent(i); ext > s.maxReorder {
					s.maxReorder = ext
					if s.cfg.AdaptDupThresh && ext > s.dupThresh {
						s.dupThresh = ext
					}
				}
			}
		}
	}
	return dsack, sackedNew
}

// reorderExtent estimates how far segment i was reordered: the number
// of already-SACKed segments above it.
func (s *Sender) reorderExtent(i int) int {
	n := 0
	for j := i + 1; j < s.nxtIdx; j++ {
		if s.segs[j].sacked {
			n++
		}
	}
	return n
}

func (s *Sender) handleNewAck(ack uint64, tsecr sim.Time) {
	// Advance the scoreboard.
	newlyAcked := 0
	coveredRetrans := false
	var latestSent sim.Time
	haveSample := false
	for s.unaIdx < len(s.segs) && s.segs[s.unaIdx].end() <= ack {
		g := &s.segs[s.unaIdx]
		g.acked = true
		newlyAcked++
		if g.retrans > 0 {
			coveredRetrans = true
		}
		// Fallback RTT sampling per Karn's rule: only
		// never-retransmitted segments, and only the most recently
		// sent one (segments that waited in the receiver's
		// out-of-order queue through a long recovery would otherwise
		// poison SRTT with multi-second samples).
		if g.retrans == 0 && g.sentAt >= latestSent {
			latestSent = g.sentAt
			haveSample = true
		}
		s.unaIdx++
	}
	if tsecr > 0 {
		// RFC 7323 timestamps give the true RTT even across
		// retransmissions and cumulative-ACK jumps.
		s.rttSample(s.sm.Now().Sub(tsecr))
	} else if haveSample {
		s.rttSample(s.sm.Now().Sub(latestSent))
	}
	s.dupacks = 0
	s.rtoBackoffN = 0
	s.recomputeRTO()

	// State transitions out of Recovery/Loss once the recovery point
	// is acked.
	switch s.state {
	case StateRecovery, StateLoss:
		if ack >= s.recoverSeq {
			s.state = StateOpen
			s.inEpisode = false
			// tcp_complete_cwr: never RAISE cwnd on recovery exit —
			// an externally-entered recovery (S-RTO) may have left
			// ssthresh untouched.
			if s.ssthresh < s.cwnd {
				s.cwnd = s.ssthresh
			}
			if s.cwnd < 2 {
				s.cwnd = 2
			}
			s.prrOut = 0
		}
		// Note: no blind NewReno partial-ACK retransmission. With
		// SACK (all flows here), the 2.6.32-era recovery is
		// scoreboard-driven: a hole is retransmitted only when
		// dupThresh SACKed segments sit above it. A tail segment
		// lost in the same window as a recovered hole therefore
		// waits for the RTO — the paper's "tail retransmission in
		// Recovery state" (Table 7).
		_ = coveredRetrans
	case StateDisorder:
		s.state = StateOpen
	}

	// Congestion window growth in Open state.
	if s.state == StateOpen {
		for i := 0; i < newlyAcked; i++ {
			if s.cwnd < s.ssthresh {
				s.cwnd++ // slow start
			} else {
				s.cwnd = s.cc.OnAckCA(s.cwnd, s.sm.Now())
			}
		}
	}

	if s.HasOutstanding() {
		s.armRTO()
	} else {
		s.rtoTimer.Stop()
	}
}

func (s *Sender) handleDupAck(sackedNew bool) {
	s.dupacks++
	if s.state == StateOpen {
		s.state = StateDisorder
	}
	if s.state == StateDisorder {
		// Limited transmit: send a new segment for each of the first
		// two dupacks.
		if s.cfg.LimitedTransmit && s.dupacks <= 2 && s.nxtIdx < len(s.segs) {
			g := &s.segs[s.nxtIdx]
			if s.rwndAllows(g.seq, g.len) {
				idx := s.nxtIdx
				s.nxtIdx++
				s.transmit(idx, false)
			}
		}
		if s.dupacks >= s.effectiveDupThresh() {
			s.enterRecovery()
		}
	}
	_ = sackedNew
}

// effectiveDupThresh applies early retransmit when enabled.
func (s *Sender) effectiveDupThresh() int {
	th := s.dupThresh
	if s.cfg.EarlyRetransmit {
		out := s.PacketsOut()
		if out < 4 && s.nxtIdx >= len(s.segs) {
			er := out - 1
			if er < 1 {
				er = 1
			}
			if er < th {
				th = er
			}
		}
	}
	return th
}

// beginEpisode snapshots pre-reduction state for DSACK undo.
func (s *Sender) beginEpisode() {
	if !s.inEpisode {
		s.inEpisode = true
		s.undoRetrans = 0
		s.priorCwnd = s.cwnd
		s.priorSsthresh = s.ssthresh
	}
}

// maybeUndo reverts the congestion reduction when DSACKs have proven
// every retransmission of the episode spurious (the data was never
// lost — only ACKs were delayed or dropped).
func (s *Sender) maybeUndo() {
	if !s.inEpisode || s.undoRetrans > 0 {
		return
	}
	if s.state != StateRecovery && s.state != StateLoss {
		return
	}
	s.state = StateOpen
	if s.priorCwnd > s.cwnd {
		s.cwnd = s.priorCwnd
	}
	s.ssthresh = s.priorSsthresh
	s.inEpisode = false
	// Nothing was actually lost: clear the marks.
	for i := s.unaIdx; i < s.nxtIdx; i++ {
		s.segs[i].lost = false
	}
}

func (s *Sender) enterRecovery() {
	s.beginEpisode()
	s.state = StateRecovery
	s.stats.EnteredRecovery++
	s.recoverSeq = s.sndNxt64()
	fl := float64(s.InFlight())
	if fl < 2 {
		fl = 2
	}
	s.ssthresh = s.cc.AfterLoss(s.cwnd, fl, s.sm.Now())
	s.targetCwnd = s.ssthresh
	s.prrOut = 0
	// Fast-retransmit the head segment.
	if s.unaIdx < s.nxtIdx {
		g := &s.segs[s.unaIdx]
		if !g.acked && !g.sacked {
			g.lost = true
			g.retransOut = false
		}
	}
}

// rateHalve implements the Linux CWR-style reduction the paper
// describes: cwnd drops by one for every second ACK until halved.
func (s *Sender) rateHalve() {
	s.prrOut++
	if s.prrOut%2 == 0 && s.cwnd > s.targetCwnd {
		s.cwnd--
		if s.cwnd < 1 {
			s.cwnd = 1
		}
	}
}

// updateLostMarks applies the RFC 6675-style IsLost heuristic: a
// segment with ≥ dupThresh SACKed segments above it is lost.
func (s *Sender) updateLostMarks() {
	if s.state != StateRecovery && s.state != StateDisorder {
		return
	}
	sackedAbove := 0
	for i := s.nxtIdx - 1; i >= s.unaIdx; i-- {
		g := &s.segs[i]
		if g.sacked {
			sackedAbove++
			continue
		}
		if g.acked || g.lost || g.retransOut {
			continue
		}
		if sackedAbove >= s.dupThresh && s.state == StateRecovery {
			g.lost = true
		}
	}
}

// SeedRTT feeds an out-of-band RTT measurement (the SYN/SYN-ACK
// exchange) into the estimator, as Linux does at connection setup.
func (s *Sender) SeedRTT(rtt time.Duration) { s.rttSample(rtt) }

// --- RTT estimation (RFC 6298) ---

func (s *Sender) rttSample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	s.rttSamples++
	if !s.hasRTT {
		s.rtoSRTT = rtt
		s.rttvar = rtt / 2
		s.hasRTT = true
	} else {
		delta := s.rtoSRTT - rtt
		if delta < 0 {
			delta = -delta
		}
		s.rttvar = (3*s.rttvar + delta) / 4
		s.rtoSRTT = (7*s.rtoSRTT + rtt) / 8
	}
	s.recomputeRTO()
}

func (s *Sender) recomputeRTO() {
	if !s.hasRTT {
		return
	}
	// Linux applies the 200ms floor to the variance term, not to the
	// whole RTO (tcp_set_rto): RTO = SRTT + max(4·RTTVAR, minRTO).
	// This is why production RTOs sit an order of magnitude above the
	// RTT (Figure 1b).
	v := 4 * s.rttvar
	if v < s.cfg.MinRTO {
		v = s.cfg.MinRTO
	}
	rto := s.rtoSRTT + v
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	// Preserve exponential backoff until new data is acked.
	for i := 0; i < s.rtoBackoffN; i++ {
		rto *= 2
		if rto > s.cfg.MaxRTO {
			rto = s.cfg.MaxRTO
			break
		}
	}
	s.rto = rto
}
