package tcpsim

import "tcpstall/internal/sim"

// AppWriteKind distinguishes why an application write was delayed —
// the simulator-privileged fact behind the paper's two server-side
// stall causes.
type AppWriteKind int

// Application write kinds.
const (
	// WriteAfterHeadDelay is the first response byte arriving after a
	// back-end fetch (the "data unavailable" cause).
	WriteAfterHeadDelay AppWriteKind = iota
	// WriteAfterPause is a mid-response chunk arriving after a server
	// resource stall (the "resource constraint" cause).
	WriteAfterPause
)

// TruthSink observes privileged simulator-internal events that the
// wire view cannot see directly: why the sender went silent and what
// broke the silence. The ground-truth validator records them to grade
// TAPO's wire-only classifications. All methods are called from the
// simulator goroutine; implementations need no locking. Every hook is
// optional — a nil sink disables recording at zero cost.
type TruthSink interface {
	// RTOFire fires when the retransmission timer expires with data
	// outstanding, before the head segment is retransmitted.
	RTOFire(t sim.Time)
	// RetransSent fires for every retransmitted data segment put on
	// the wire, with the segment's wire sequence number.
	RetransSent(t sim.Time, wireSeq uint32)
	// ZeroWindow fires when the receiver's advertised window
	// transitions to zero (zero=true) or reopens (zero=false).
	ZeroWindow(t sim.Time, zero bool)
	// AppWrite fires when the server application hands delayed bytes
	// to TCP (head delay or mid-response pause).
	AppWrite(t sim.Time, kind AppWriteKind)
	// RequestArrival fires when a client request reaches the server
	// (including duplicate copies after client retransmission);
	// outstanding reports whether response data was still unacked.
	RequestArrival(t sim.Time, outstanding bool)
}
