package tcpsim

import (
	"testing"
	"time"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
)

// receiverRig wires a receiver to a capture buffer; the test plays
// the server by calling HandleData directly.
type receiverRig struct {
	sim  *sim.Simulator
	rcv  *Receiver
	acks []Segment
}

func newReceiverRig(cfg ReceiverConfig) *receiverRig {
	s := sim.New()
	r := &receiverRig{sim: s, rcv: NewReceiver(s, cfg, 1)}
	r.rcv.Output = func(seg *Segment) {
		// Inline SACK storage: a value copy is deep.
		r.acks = append(r.acks, *seg)
	}
	return r
}

func (r *receiverRig) data(seq uint32, length int) {
	r.rcv.HandleData(&Segment{Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Len: length, TSVal: r.sim.Now()})
}

func (r *receiverRig) lastAck(t *testing.T) Segment {
	t.Helper()
	if len(r.acks) == 0 {
		t.Fatal("no ACK emitted")
	}
	return r.acks[len(r.acks)-1]
}

func TestReceiverInOrderDelayedAck(t *testing.T) {
	cfg := DefaultReceiverConfig()
	cfg.DelAckDelay = 40 * time.Millisecond
	r := newReceiverRig(cfg)
	r.data(1, 1460)
	if len(r.acks) != 0 {
		t.Fatalf("single segment should be delack'd, got %d ACKs", len(r.acks))
	}
	r.sim.RunFor(50 * time.Millisecond)
	if len(r.acks) != 1 {
		t.Fatalf("delack timer did not fire: %d ACKs", len(r.acks))
	}
	if a := r.lastAck(t); a.Ack != 1461 {
		t.Errorf("ack = %d", a.Ack)
	}
}

func TestReceiverAckEverySecondSegment(t *testing.T) {
	r := newReceiverRig(DefaultReceiverConfig())
	r.data(1, 1460)
	r.data(1461, 1460)
	if len(r.acks) != 1 {
		t.Fatalf("2 segments should force 1 immediate ACK, got %d", len(r.acks))
	}
	if a := r.lastAck(t); a.Ack != 2921 {
		t.Errorf("ack = %d", a.Ack)
	}
}

func TestReceiverOutOfOrderSACK(t *testing.T) {
	r := newReceiverRig(DefaultReceiverConfig())
	r.data(1, 1460)
	r.data(1461, 1460) // immediate ack @2921
	r.data(4381, 1460) // hole at 2921
	a := r.lastAck(t)
	if a.Ack != 2921 {
		t.Fatalf("dupack cum = %d", a.Ack)
	}
	if a.SACK.Len() != 1 || a.SACK.At(0) != (packet.SACKBlock{Left: 4381, Right: 5841}) {
		t.Fatalf("SACK = %v", a.SACK)
	}
	// Second ooo range: most recent block first.
	r.data(8761, 1460)
	a = r.lastAck(t)
	if a.SACK.Len() != 2 || a.SACK.At(0).Left != 8761 || a.SACK.At(1).Left != 4381 {
		t.Fatalf("SACK recency order = %v", a.SACK)
	}
	// Fill the first hole: rcvNxt jumps over the merged range.
	r.data(2921, 1460)
	a = r.lastAck(t)
	if a.Ack != 5841 {
		t.Errorf("after fill ack = %d, want 5841", a.Ack)
	}
	if r.rcv.RcvNxt() != 5841 {
		t.Errorf("RcvNxt = %d", r.rcv.RcvNxt())
	}
}

func TestReceiverAdjacentOOOMerge(t *testing.T) {
	r := newReceiverRig(DefaultReceiverConfig())
	r.data(2921, 1460)
	r.data(4381, 1460)
	a := r.lastAck(t)
	if a.SACK.Len() != 1 || a.SACK.At(0) != (packet.SACKBlock{Left: 2921, Right: 5841}) {
		t.Fatalf("adjacent spans should merge: %v", a.SACK)
	}
}

func TestReceiverDSACKOnDuplicate(t *testing.T) {
	r := newReceiverRig(DefaultReceiverConfig())
	r.data(1, 1460)
	r.data(1461, 1460)
	n := len(r.acks)
	r.data(1, 1460) // full duplicate
	if len(r.acks) != n+1 {
		t.Fatal("duplicate must be ACKed immediately")
	}
	a := r.lastAck(t)
	if a.SACK.Len() == 0 || a.SACK.At(0) != (packet.SACKBlock{Left: 1, Right: 1461}) {
		t.Fatalf("DSACK = %v", a.SACK)
	}
	if a.SACK.At(0).Right > a.Ack == false && a.Ack < a.SACK.At(0).Right {
		t.Error("DSACK block must sit at/below the cumulative ACK")
	}
	if r.rcv.Stats().DSACKsSent != 1 {
		t.Errorf("DSACKsSent = %d", r.rcv.Stats().DSACKsSent)
	}
}

func TestReceiverWindowAndSWS(t *testing.T) {
	cfg := DefaultReceiverConfig()
	cfg.InitRwnd = 4 * 1460
	cfg.BufSize = 4 * 1460
	cfg.ReadRate = 1 // effectively frozen reader
	r := newReceiverRig(cfg)
	if r.rcv.Window() != 4*1460 {
		t.Fatalf("initial window = %d", r.rcv.Window())
	}
	// Fill 3 of 4 MSS: window = 1 MSS, at the SWS threshold.
	for i := 0; i < 3; i++ {
		r.data(uint32(1+i*1460), 1460)
	}
	if w := r.rcv.Window(); w != 1460 {
		t.Fatalf("window = %d, want exactly 1 MSS", w)
	}
	// One more byte below a full MSS of space → advertise zero.
	r.data(uint32(1+3*1460), 100)
	if w := r.rcv.Window(); w != 0 {
		t.Errorf("window = %d, want 0 (silly-window avoidance)", w)
	}
	if r.rcv.Stats().ZeroWindowAcks == 0 {
		t.Error("no zero-window advertisement counted")
	}
}

func TestReceiverZeroWindowProbeResponse(t *testing.T) {
	cfg := DefaultReceiverConfig()
	cfg.InitRwnd = 2 * 1460
	cfg.BufSize = 2 * 1460
	cfg.ReadRate = 1
	r := newReceiverRig(cfg)
	r.data(1, 1460)
	r.data(1461, 1460) // buffer full → zero window
	n := len(r.acks)
	// Out-of-window probe (seq = snd_una − 1 = 2920).
	r.rcv.HandleData(&Segment{Flags: packet.FlagACK, Seq: 2920, Len: 0})
	if len(r.acks) != n+1 {
		t.Fatal("probe not answered")
	}
	// An in-window bare ACK must NOT be answered (no ack loops).
	r.rcv.HandleData(&Segment{Flags: packet.FlagACK, Seq: 2921, Len: 0})
	if len(r.acks) != n+1 {
		t.Error("bare in-window ACK was answered")
	}
}

func TestReceiverPauseAndDrainInstant(t *testing.T) {
	cfg := DefaultReceiverConfig()
	cfg.InitRwnd = 2 * 1460
	cfg.BufSize = 2 * 1460
	r := newReceiverRig(cfg)
	var delivered int
	r.rcv.OnDeliver = func(n int) { delivered += n }
	r.rcv.PauseReading(100 * time.Millisecond)
	r.data(1, 1460)
	r.data(1461, 1460)
	if delivered != 0 {
		t.Fatalf("delivered %d during pause", delivered)
	}
	if r.rcv.Window() != 0 {
		t.Fatalf("window = %d with full buffer", r.rcv.Window())
	}
	r.sim.RunFor(150 * time.Millisecond)
	if delivered != 2920 {
		t.Errorf("delivered = %d after unpause, want 2920", delivered)
	}
	if r.rcv.Window() != 2*1460 {
		t.Errorf("window = %d after drain", r.rcv.Window())
	}
	// The reopening must be advertised.
	if r.rcv.Stats().WindowUpdates == 0 {
		t.Error("no window update after drain")
	}
}

func TestReceiverOverlappingPauses(t *testing.T) {
	cfg := DefaultReceiverConfig()
	r := newReceiverRig(cfg)
	var delivered int
	r.rcv.OnDeliver = func(n int) { delivered += n }
	r.rcv.PauseReading(50 * time.Millisecond)
	r.sim.RunFor(20 * time.Millisecond)
	r.rcv.PauseReading(100 * time.Millisecond) // extends to t=120ms
	r.data(1, 1000)
	r.sim.RunFor(40 * time.Millisecond) // t=60ms: first pause expired
	if delivered != 0 {
		t.Fatalf("first pause's expiry unpaused despite overlap")
	}
	r.sim.RunFor(100 * time.Millisecond)
	if delivered != 1000 {
		t.Errorf("delivered = %d after all pauses", delivered)
	}
}

func TestReceiverScheduledReadPauses(t *testing.T) {
	cfg := DefaultReceiverConfig()
	cfg.ReadPauses = []ReadPause{{At: 10 * time.Millisecond, Dur: 50 * time.Millisecond}}
	r := newReceiverRig(cfg)
	var delivered int
	r.rcv.OnDeliver = func(n int) { delivered += n }
	r.sim.RunFor(20 * time.Millisecond) // pause active
	r.data(1, 500)
	if delivered != 0 {
		t.Fatal("delivered during scheduled pause")
	}
	r.sim.RunFor(60 * time.Millisecond)
	if delivered != 500 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestReceiverRateLimitedRead(t *testing.T) {
	cfg := DefaultReceiverConfig()
	cfg.ReadRate = 100_000 // 100KB/s
	cfg.ReadInterval = 10 * time.Millisecond
	r := newReceiverRig(cfg)
	var delivered int
	r.rcv.OnDeliver = func(n int) { delivered += n }
	r.data(1, 1460)
	r.data(1461, 1460)
	if delivered != 0 {
		t.Fatal("rate-limited read should not be instant")
	}
	r.sim.RunFor(15 * time.Millisecond)
	if delivered == 0 || delivered > 1100 {
		t.Errorf("delivered = %d after ~1 interval, want ≈1000", delivered)
	}
	r.sim.RunFor(100 * time.Millisecond)
	if delivered != 2920 {
		t.Errorf("delivered = %d total", delivered)
	}
}

func TestReceiverTimestampEcho(t *testing.T) {
	r := newReceiverRig(DefaultReceiverConfig())
	ts := sim.Time(123 * time.Millisecond)
	r.rcv.HandleData(&Segment{Flags: packet.FlagACK, Seq: 1, Len: 1460, TSVal: ts})
	r.rcv.HandleData(&Segment{Flags: packet.FlagACK, Seq: 1461, Len: 1460, TSVal: ts + 1})
	a := r.lastAck(t)
	// ts_recent = TSVal of the segment advancing the left edge.
	if a.TSEcr != ts+1 {
		t.Errorf("TSEcr = %v, want %v", a.TSEcr, ts+1)
	}
	// An out-of-order segment must NOT update ts_recent.
	r.rcv.HandleData(&Segment{Flags: packet.FlagACK, Seq: 10000, Len: 100, TSVal: ts + 99})
	a = r.lastAck(t)
	if a.TSEcr != ts+1 {
		t.Errorf("ooo segment updated ts_recent: TSEcr = %v", a.TSEcr)
	}
}

func TestReceiverConfigDefaults(t *testing.T) {
	s := sim.New()
	r := NewReceiver(s, ReceiverConfig{MSS: 1460, InitRwnd: 1000}, 1)
	if r.cfg.BufSize != 1000 {
		t.Errorf("BufSize default = %d, want InitRwnd", r.cfg.BufSize)
	}
	if r.cfg.AckEvery != 2 || r.cfg.ReadInterval <= 0 {
		t.Error("defaults not applied")
	}
	defer func() {
		if recover() == nil {
			t.Error("MSS=0 should panic")
		}
	}()
	NewReceiver(s, ReceiverConfig{}, 1)
}

func TestReceiverStatsCounting(t *testing.T) {
	r := newReceiverRig(DefaultReceiverConfig())
	r.data(1, 1460)
	r.data(1461, 1460)
	r.data(5841, 1460) // ooo
	r.data(1, 1460)    // dup
	st := r.rcv.Stats()
	if st.SegmentsReceived != 4 {
		t.Errorf("SegmentsReceived = %d", st.SegmentsReceived)
	}
	if st.OutOfOrderSegments != 1 {
		t.Errorf("OutOfOrderSegments = %d", st.OutOfOrderSegments)
	}
	if st.DuplicateSegments != 1 {
		t.Errorf("DuplicateSegments = %d", st.DuplicateSegments)
	}
	if st.BytesReceived != 4*1460 {
		t.Errorf("BytesReceived = %d", st.BytesReceived)
	}
	if st.AcksSent == 0 {
		t.Error("AcksSent = 0")
	}
}
