package tcpsim

import (
	"testing"
	"time"

	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
)

func TestRenoCC(t *testing.T) {
	var cc RenoCC
	if cc.Name() != "reno" {
		t.Error("name")
	}
	// +1/cwnd per ack: one full window of acks grows cwnd by ~1.
	cwnd := 10.0
	for i := 0; i < 10; i++ {
		cwnd = cc.OnAckCA(cwnd, 0)
	}
	if cwnd < 10.9 || cwnd > 11.1 {
		t.Errorf("cwnd after one window of CA acks = %.2f, want ≈11", cwnd)
	}
	if s := cc.AfterLoss(20, 16, 0); s != 8 {
		t.Errorf("AfterLoss = %v, want inflight/2 = 8", s)
	}
	if s := cc.AfterLoss(20, 1, 0); s != 2 {
		t.Errorf("AfterLoss floor = %v, want 2", s)
	}
	cc.Reset() // no-op, must not panic
}

func TestCubicWindowCurve(t *testing.T) {
	cc := NewCubic()
	if cc.Name() != "cubic" {
		t.Error("name")
	}
	// After a loss at cwnd 100, ssthresh = 70 and the window should
	// grow back toward Wmax=100 following the cubic curve: concave
	// (fast, then flattening) as it approaches the plateau.
	s := cc.AfterLoss(100, 100, 0)
	if s < 69 || s > 71 {
		t.Fatalf("ssthresh after loss = %.1f, want 70", s)
	}
	cwnd := s
	now := sim.Time(0)
	var at50, atK float64
	k := time.Duration(cc.k() * float64(time.Second))
	for tms := 0; tms < 60000; tms += 20 {
		now = sim.Time(time.Duration(tms) * time.Millisecond)
		// Roughly one CA ack per 20ms step per cwnd/10 segments.
		for i := 0; i < int(cwnd/10)+1; i++ {
			cwnd = cc.OnAckCA(cwnd, now)
		}
		if at50 == 0 && time.Duration(now) >= k/2 {
			at50 = cwnd
		}
		if atK == 0 && time.Duration(now) >= k {
			atK = cwnd
		}
	}
	if atK < 90 || atK > 115 {
		t.Errorf("cwnd at t=K is %.1f, want ≈ Wmax (100)", atK)
	}
	// Concavity: the first half of the epoch covers most of the gap.
	if at50 < 80 {
		t.Errorf("cwnd at K/2 = %.1f, want most of the recovery done (concave)", at50)
	}
	// And it keeps growing past the plateau (convex region).
	if cwnd <= atK {
		t.Errorf("cwnd stuck at plateau: %.1f ≤ %.1f", cwnd, atK)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	cc := NewCubic()
	cc.AfterLoss(100, 100, 0)
	// A second loss at a LOWER window: Wmax must shrink below the
	// new cwnd ((2−β)/2 factor) to release bandwidth faster.
	cc.AfterLoss(50, 50, sim.Time(time.Second))
	if cc.wMax >= 50 {
		t.Errorf("fast convergence: wMax = %.1f, want < 50", cc.wMax)
	}
	cc.Reset()
	if cc.hasEpoch || cc.wMax != 0 {
		t.Error("Reset did not clear epoch state")
	}
}

func TestCubicTCPFriendlyFloor(t *testing.T) {
	// Immediately after a loss, CUBIC's cubic term is tiny; the
	// TCP-friendly estimate must keep growth at least Reno-like.
	cc := NewCubic()
	start := cc.AfterLoss(10, 10, 0)
	cwnd := start
	// Three RTTs worth of acks at small t: the cubic term is nearly
	// flat here, so only the TCP-friendly floor produces growth. The
	// pacing closes in on the Reno estimate asymptotically, so expect
	// at least half of Reno's +3.
	for rtt := 0; rtt < 3; rtt++ {
		for i := 0; i < int(cwnd); i++ {
			cwnd = cc.OnAckCA(cwnd, sim.Time(time.Duration(rtt+1)*10*time.Millisecond))
		}
	}
	if cwnd < start+1.5 {
		t.Errorf("cwnd %.2f after 3 windows of acks, want ≥ %.2f (Reno-friendly floor)", cwnd, start+1.5)
	}
}

// A full transfer under CUBIC must behave: complete, no spurious
// retransmissions on a clean path, and reach a larger steady-state
// window than Reno over a long lossy transfer on a fat path.
func TestCubicEndToEnd(t *testing.T) {
	run := func(cc CongestionControl) (*ConnMetrics, int) {
		s := sim.New()
		rng := sim.NewRNG(5)
		down := netem.New(s, rng, netem.Config{
			Delay: 50 * time.Millisecond, Loss: netem.Bernoulli{P: 0.0005},
		})
		up := netem.New(s, rng, netem.Config{Delay: 50 * time.Millisecond})
		cfg := ConnConfig{
			Sender:   DefaultSenderConfig(),
			Receiver: DefaultReceiverConfig(),
			Requests: []Request{{Size: 6_000_000}},
		}
		cfg.Receiver.InitRwnd = 1 << 20
		cfg.Receiver.BufSize = 1 << 20
		cfg.Sender.CC = cc
		conn := NewLinkedConn(s, cfg, down, up, nil)
		conn.Start()
		s.Run()
		return conn.Metrics(), conn.Sender().Cwnd()
	}
	reno, _ := run(RenoCC{})
	cubic, _ := run(NewCubic())
	if !reno.Done || !cubic.Done {
		t.Fatal("transfers did not complete")
	}
	// CUBIC recovers its window faster after losses on this
	// long-RTT path, so it should not be slower overall.
	if cubic.FlowLatency() > reno.FlowLatency()*13/10 {
		t.Errorf("cubic %.2fs much slower than reno %.2fs",
			cubic.FlowLatency().Seconds(), reno.FlowLatency().Seconds())
	}
}
