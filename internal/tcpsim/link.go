package tcpsim

import (
	"tcpstall/internal/netem"
	"tcpstall/internal/sim"
)

// NewLinkedConn builds a connection over a netem path pair (down:
// server→client, up: client→server), wiring delivery callbacks in
// both directions.
func NewLinkedConn(s *sim.Simulator, cfg ConnConfig, down, up *netem.Path, sink TraceSink) *Conn {
	c := NewConn(s, cfg, PathPair{
		Down: func(seg *Segment, size int) { down.Send(seg, size) },
		Up:   func(seg *Segment, size int) { up.Send(seg, size) },
	}, sink)
	down.Deliver = c.ClientDeliver
	up.Deliver = c.ServerDeliver
	return c
}
